#!/usr/bin/env bash
# Markdown doc lint: every relative link target in the repo's *.md files
# must exist, and the load-bearing docs must be present at all. No
# external dependencies — plain bash + grep, run from the repo root (CI
# "docs" job and locally via `bash scripts/check_docs.sh`).
set -euo pipefail

fail=0

# The documentation set the README promises.
for required in README.md DESIGN.md ROADMAP.md CHANGES.md PAPER.md \
                docs/snapshot_format.md docs/observability.md \
                docs/protocol.md docs/quantization.md docs/retrieval.md \
                docs/evolution.md; do
  if [ ! -f "$required" ]; then
    echo "MISSING required doc: $required"
    fail=1
  fi
done

# Relative-link check: [text](target) where target is not a URL/anchor.
while IFS= read -r md; do
  dir=$(dirname "$md")
  # Pull out every](...) link target, one per line.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"          # strip fragment
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "BROKEN link in $md: ($target)"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//' || true)
done < <(find . -name '*.md' -not -path './build*' -not -path './.git/*' \
              -not -path './.claude/*')

if [ "$fail" -ne 0 ]; then
  echo "docs check FAILED"
  exit 1
fi
echo "docs check OK"
