// Sharded scatter/gather retrieval: the gathered top-k must equal the flat
// store's full argsort exactly — labels AND scores — on both scoring paths,
// for balanced and ragged shard layouts, k > C, S > C, and through the
// engine / registry / snapshot-format layers (old version-1 .hdcsnap files
// load as S = 1).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <sstream>

#include "core/zsc_model.hpp"
#include "data/attribute_space.hpp"
#include "serve/model_registry.hpp"
#include "serve/sharded_store.hpp"
#include "tensor/ops.hpp"

namespace hdczsc {
namespace {

using serve::PrototypeStore;
using serve::ShardedPrototypeStore;
using serve::TopK;
using tensor::Tensor;

/// The ordering contract shared by the sharded gather and this file's flat
/// reference: score descending, label ascending on exact ties.
bool better(const TopK& a, const TopK& b) {
  return a.score > b.score || (a.score == b.score && a.label < b.label);
}

/// Flat reference: full argsort of a [B, C] logit matrix, cut to k.
std::vector<std::vector<TopK>> flat_topk(const Tensor& logits, std::size_t k) {
  const std::size_t batch = logits.size(0), classes = logits.size(1);
  std::vector<std::vector<TopK>> out(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = logits.data() + b * classes;
    std::vector<TopK> all(classes);
    for (std::size_t c = 0; c < classes; ++c) all[c] = TopK{c, row[c]};
    std::sort(all.begin(), all.end(), better);
    all.resize(std::min(k, classes));
    out[b] = std::move(all);
  }
  return out;
}

void expect_identical(const std::vector<std::vector<TopK>>& got,
                      const std::vector<std::vector<TopK>>& want, const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t b = 0; b < got.size(); ++b) {
    ASSERT_EQ(got[b].size(), want[b].size()) << what << " query " << b;
    for (std::size_t i = 0; i < got[b].size(); ++i) {
      EXPECT_EQ(got[b][i].label, want[b][i].label)
          << what << " query " << b << " rank " << i;
      // Bit-identical, not approximately equal: the sharded scan must
      // produce the same float the flat path materializes.
      EXPECT_EQ(got[b][i].score, want[b][i].score)
          << what << " query " << b << " rank " << i;
    }
  }
}

PrototypeStore make_store(std::size_t classes, std::size_t dim, std::size_t expansion = 1,
                          std::uint64_t seed = 7, float scale = 4.0f) {
  util::Rng rng(seed);
  return PrototypeStore(Tensor::randn({classes, dim}, rng), scale, expansion);
}

// -- exactness against the flat argsort --------------------------------------

TEST(ShardedStore, FloatTopkMatchesFlatArgsort) {
  // Sizes keep every GEMM (flat and per-shard) on one deterministic kernel
  // path, so scores are bit-identical, not merely rank-identical.
  const PrototypeStore store = make_store(100, 64);
  util::Rng rng(11);
  const Tensor emb = Tensor::randn({5, 64}, rng);
  const auto want = flat_topk(store.score_float(emb), 7);
  for (std::size_t shards : {1u, 2u, 3u, 5u, 16u, 100u}) {
    const ShardedPrototypeStore sharded(store, shards);
    expect_identical(sharded.topk_float(emb, 7), want,
                     "float S=" + std::to_string(shards));
  }
}

TEST(ShardedStore, BinaryTopkMatchesFlatArgsort) {
  // The binary path selects in the integer Hamming domain, so exact
  // equality holds at any scale; 999 rows / 7 shards is deliberately
  // ragged (142×6 + 147... i.e. non-uniform shard heights).
  const PrototypeStore store = make_store(999, 128, /*expansion=*/2);
  util::Rng rng(13);
  const Tensor emb = Tensor::randn({4, 128}, rng);
  const auto want = flat_topk(store.score_binary(emb), 10);
  for (std::size_t shards : {1u, 4u, 7u, 64u}) {
    const ShardedPrototypeStore sharded(store, shards);
    expect_identical(sharded.topk_binary(emb, 10), want,
                     "binary S=" + std::to_string(shards));
  }
}

TEST(ShardedStore, FloatRankingSurvivesBlockedGemmScale) {
  // Above the naive-GEMM cutoff the flat and per-shard scans may take
  // different blocking paths; the *ranking* must still agree.
  const PrototypeStore store = make_store(600, 128);
  util::Rng rng(17);
  const Tensor emb = Tensor::randn({4, 128}, rng);
  const auto want = flat_topk(store.score_float(emb), 8);
  const ShardedPrototypeStore sharded(store, 4);
  const auto got = sharded.topk_float(emb, 8);
  for (std::size_t b = 0; b < got.size(); ++b)
    for (std::size_t i = 0; i < got[b].size(); ++i)
      EXPECT_EQ(got[b][i].label, want[b][i].label) << "query " << b << " rank " << i;
}

TEST(ShardedStore, MultiQueryKernelMatchesPerQueryKernel) {
  // The query-blocked sweep must agree with the single-query kernel for
  // every block-remainder shape (1..6 queries) and ragged word counts.
  util::Rng rng(5);
  for (std::size_t words : {1u, 3u, 4u, 9u}) {
    for (std::size_t n_queries : {1u, 2u, 4u, 5u, 6u}) {
      const std::size_t n_rows = 37;
      std::vector<std::uint64_t> rows(n_rows * words), queries(n_queries * words);
      for (auto& w : rows) w = rng.next_u64();
      for (auto& w : queries) w = rng.next_u64();
      std::vector<std::uint32_t> got(n_queries * n_rows), want(n_queries * n_rows);
      hdc::hamming_many_packed_multi(queries.data(), n_queries, rows.data(), n_rows, words,
                                     got.data());
      for (std::size_t q = 0; q < n_queries; ++q)
        hdc::hamming_many_packed(queries.data() + q * words, rows.data(), n_rows, words,
                                 want.data() + q * n_rows);
      EXPECT_EQ(got, want) << "words=" << words << " queries=" << n_queries;
    }
  }
}

// -- shard layout and edge cases ---------------------------------------------

TEST(ShardedStore, RaggedShardLayoutPartitionsRows) {
  const PrototypeStore store = make_store(101, 32);
  const ShardedPrototypeStore sharded(store, 7);
  ASSERT_EQ(sharded.n_shards(), 7u);
  std::size_t next = 0, min_rows = 101, max_rows = 0;
  for (std::size_t s = 0; s < sharded.n_shards(); ++s) {
    EXPECT_EQ(sharded.shard_begin(s), next);
    const std::size_t rows = sharded.shard_end(s) - sharded.shard_begin(s);
    min_rows = std::min(min_rows, rows);
    max_rows = std::max(max_rows, rows);
    next = sharded.shard_end(s);
  }
  EXPECT_EQ(next, 101u);          // exact cover, no gaps or overlap
  EXPECT_EQ(max_rows - min_rows, 1u);  // balanced: heights differ by ≤ 1
}

TEST(ShardedStore, KLargerThanClassesReturnsFullRanking) {
  const PrototypeStore store = make_store(12, 48);
  util::Rng rng(19);
  const Tensor emb = Tensor::randn({3, 48}, rng);
  const ShardedPrototypeStore sharded(store, 5);
  const auto got_f = sharded.topk_float(emb, 50);
  const auto got_b = sharded.topk_binary(emb, 50);
  expect_identical(got_f, flat_topk(store.score_float(emb), 50), "float k>C");
  expect_identical(got_b, flat_topk(store.score_binary(emb), 50), "binary k>C");
  ASSERT_EQ(got_f[0].size(), 12u);  // min(k, C) entries
}

TEST(ShardedStore, MoreShardsThanClassesClampsToOneRowEach) {
  const PrototypeStore store = make_store(12, 48);
  const ShardedPrototypeStore sharded(store, 40);
  EXPECT_EQ(sharded.n_shards(), 12u);
  util::Rng rng(23);
  const Tensor emb = Tensor::randn({2, 48}, rng);
  expect_identical(sharded.topk_binary(emb, 3), flat_topk(store.score_binary(emb), 3),
                   "binary S>C");
  expect_identical(sharded.topk_float(emb, 3), flat_topk(store.score_float(emb), 3),
                   "float S>C");
}

TEST(ShardedStore, KZeroYieldsEmptyResults) {
  const PrototypeStore store = make_store(10, 32);
  util::Rng rng(29);
  const Tensor emb = Tensor::randn({3, 32}, rng);
  const ShardedPrototypeStore sharded(store, 3);
  for (const auto& hits : sharded.topk_float(emb, 0)) EXPECT_TRUE(hits.empty());
  for (const auto& hits : sharded.topk_binary(emb, 0)) EXPECT_TRUE(hits.empty());
}

TEST(ShardedStore, ShardStatsCountScans) {
  const PrototypeStore store = make_store(100, 32);
  util::Rng rng(31);
  const Tensor emb = Tensor::randn({4, 32}, rng);
  const ShardedPrototypeStore sharded(store, 3);
  sharded.topk_binary(emb, 5);
  sharded.topk_float(emb, 5);
  const auto stats = sharded.shard_stats();
  ASSERT_EQ(stats.size(), 3u);
  for (const auto& s : stats) {
    EXPECT_EQ(s.scans, 8u);  // 4 queries × 2 scoring paths
    EXPECT_EQ(s.rows_swept, 8u * s.rows);
  }
}

// -- engine / registry / snapshot layers -------------------------------------

/// Minimal untrained model (the serving layers only need eval forwards).
std::shared_ptr<core::ZscModel> make_model(std::size_t n_attributes, std::size_t dim) {
  util::Rng rng(0xABCDULL);
  core::ImageEncoderConfig icfg;
  icfg.arch = "resnet_micro_flat";
  icfg.proj_dim = dim;
  auto img = std::make_unique<core::ImageEncoder>(icfg, rng);
  data::AttributeSpace space = data::AttributeSpace::toy(n_attributes, 1, 1);
  auto attr = std::make_unique<core::HdcAttributeEncoder>(space, img->dim(), rng);
  return std::make_shared<core::ZscModel>(std::move(img), std::move(attr), 4.0f);
}

std::shared_ptr<const serve::ModelSnapshot> make_snapshot(std::size_t classes,
                                                          std::size_t preferred_shards = 1) {
  const std::size_t n_attributes = 24, dim = 64;
  util::Rng rng(0xFACEULL);
  return std::make_shared<const serve::ModelSnapshot>(
      make_model(n_attributes, dim), Tensor::randn({classes, n_attributes}, rng),
      /*binary_expansion=*/1, preferred_shards);
}

TEST(ShardedEngine, TopkBatchMatchesFlatLogits) {
  auto snapshot = make_snapshot(40);
  util::Rng rng(37);
  const Tensor images = Tensor::randn({6, 3, 32, 32}, rng);
  for (serve::ScoringMode mode :
       {serve::ScoringMode::kFloatCosine, serve::ScoringMode::kBinaryHamming}) {
    const serve::InferenceEngine engine(snapshot, mode, /*n_shards=*/3);
    EXPECT_EQ(engine.n_shards(), 3u);
    expect_identical(engine.topk_batch(images, 5), flat_topk(engine.logits(images), 5),
                     scoring_mode_name(mode));
  }
}

TEST(ShardedEngine, ClassifyBatchAgreesAcrossShardCounts) {
  auto snapshot = make_snapshot(40);
  util::Rng rng(41);
  const Tensor images = Tensor::randn({5, 3, 32, 32}, rng);
  const serve::InferenceEngine flat(snapshot, serve::ScoringMode::kBinaryHamming, 1);
  const serve::InferenceEngine sharded(snapshot, serve::ScoringMode::kBinaryHamming, 4);
  const auto a = flat.classify_batch(images);
  const auto b = sharded.classify_batch(images);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label) << "image " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "image " << i;
  }
}

TEST(ShardedEngine, ZeroShardsUsesSnapshotPreference) {
  auto snapshot = make_snapshot(40, /*preferred_shards=*/5);
  const serve::InferenceEngine engine(snapshot, serve::ScoringMode::kFloatCosine, 0);
  EXPECT_EQ(engine.n_shards(), 5u);
  const serve::InferenceEngine overridden(snapshot, serve::ScoringMode::kFloatCosine, 2);
  EXPECT_EQ(overridden.n_shards(), 2u);
}

TEST(ShardedRegistry, ShardKnobAndPerShardStats) {
  serve::ServerConfig cfg;
  cfg.batch.max_delay_ms = 1.0;
  cfg.n_shards = 3;
  serve::ModelRegistry registry(cfg);
  registry.load("m", make_snapshot(40), serve::ScoringMode::kBinaryHamming);
  util::Rng rng(43);
  for (int i = 0; i < 4; ++i) {
    serve::InferRequest req;
    req.model_key = "m";
    req.input = Tensor::randn({3, 32, 32}, rng);
    req.k = 1;
    ASSERT_EQ(registry.submit(std::move(req)).get().status, serve::InferStatus::kOk);
  }
  const auto stats = registry.shard_stats("m");
  ASSERT_EQ(stats.size(), 3u);
  std::uint64_t scans = 0;
  for (const auto& s : stats) scans += s.scans;
  EXPECT_GT(scans, 0u);
  registry.to_table().print();  // shards column renders
  registry.stop_all();
  EXPECT_THROW(registry.shard_stats("nope"), serve::ModelNotFound);
}

// -- snapshot format: v2 shard record, v1 backward compatibility -------------

TEST(ShardedSnapshotIo, V2RoundTripPreservesPreferredShards) {
  auto snapshot = make_snapshot(40, /*preferred_shards=*/4);
  std::stringstream ss;
  serve::save_snapshot(ss, *snapshot);
  const auto info = serve::inspect_snapshot(ss);
  EXPECT_EQ(info.version, serve::kSnapshotVersion);
  EXPECT_EQ(info.preferred_shards, 4u);
  ss.seekg(0);
  auto loaded = serve::load_snapshot(ss);
  EXPECT_EQ(loaded->preferred_shards(), 4u);
  // n_shards = 0 ⇒ the engine adopts the artifact's layout.
  const serve::InferenceEngine engine(loaded, serve::ScoringMode::kFloatCosine);
  EXPECT_EQ(engine.n_shards(), 4u);
}

TEST(ShardedSnapshotIo, V1FileLoadsAsFlatStore) {
  auto snapshot = make_snapshot(40, /*preferred_shards=*/4);
  std::stringstream ss;
  serve::save_snapshot(ss, *snapshot);
  std::string bytes = ss.str();
  // Reconstruct the version-1 layout byte-for-byte: v2 appended one u64
  // shard record, v3 one u64 seen count + ⌈C/64⌉ u64 mask words, v4 one
  // u8 has_quant flag, v5 one u8 has_ivf flag, and v6 the 20-byte lineage
  // block (u64 version + f32 penalty + u64 checksum), all immediately
  // before the end marker — so for C = 40 dropping those
  // 8 + 8 + 8 + 1 + 1 + 20 bytes and rewriting the u32 version field
  // yields a genuine v1 file.
  ASSERT_EQ(bytes.substr(bytes.size() - 4), "PANS");
  bytes.erase(bytes.size() - 4 - 46, 46);
  const std::uint32_t v1 = 1;
  bytes.replace(4, 4, reinterpret_cast<const char*>(&v1), 4);

  std::istringstream v1_file(bytes);
  auto loaded = serve::load_snapshot(v1_file);
  EXPECT_EQ(loaded->preferred_shards(), 1u);

  std::istringstream v1_again(bytes);
  const auto info = serve::inspect_snapshot(v1_again);
  EXPECT_EQ(info.version, 1u);
  EXPECT_EQ(info.preferred_shards, 1u);

  // And the v1 artifact still scores bit-identically to the v2 one.
  util::Rng rng(47);
  const Tensor probe = Tensor::randn({4, 3, 32, 32}, rng);
  std::stringstream v2_file(ss.str());
  auto v2_loaded = serve::load_snapshot(v2_file);
  EXPECT_EQ(tensor::max_abs_diff(
                loaded->prototypes().score_float(loaded->embed(probe)),
                v2_loaded->prototypes().score_float(v2_loaded->embed(probe))),
            0.0f);
}

TEST(ShardedSnapshotIo, FutureVersionRejectedNamingSupportedRange) {
  auto snapshot = make_snapshot(12);
  std::stringstream ss;
  serve::save_snapshot(ss, *snapshot);
  std::string bytes = ss.str();
  const std::uint32_t future = serve::kSnapshotVersion + 1;
  bytes.replace(4, 4, reinterpret_cast<const char*>(&future), 4);
  std::istringstream f(bytes);
  try {
    serve::load_snapshot(f);
    FAIL() << "future version must not parse";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported snapshot version"), std::string::npos);
  }
}

}  // namespace
}  // namespace hdczsc
