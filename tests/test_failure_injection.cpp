// Failure-injection and robustness tests: corrupted checkpoints must be
// rejected atomically, mis-sized inputs must throw rather than corrupt
// state, and the HDC associative structures must degrade gracefully (not
// catastrophically) under increasing bit noise — the robustness property
// the paper's §V hardware argument rests on.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/image_encoder.hpp"
#include "core/zsc_model.hpp"
#include "hdc/encoding.hpp"
#include "nn/serialize.hpp"
#include "optim/optimizer.hpp"
#include "tensor/ops.hpp"

namespace hdczsc {
namespace {

TEST(FailureInjection, CorruptedCheckpointRejectedAtomically) {
  util::Rng rng(1);
  nn::Linear model(6, 6, rng);
  std::stringstream ss;
  nn::save_parameters(ss, model.parameters());
  std::string bytes = ss.str();
  // Flip a byte inside the header region (name length) — must throw.
  bytes[10] = static_cast<char>(bytes[10] ^ 0x7F);
  std::stringstream corrupted(bytes);
  tensor::Tensor before = model.weight().value.clone();
  EXPECT_THROW(nn::load_parameters(corrupted, model.parameters()), std::runtime_error);
  EXPECT_LT(tensor::max_abs_diff(before, model.weight().value), 1e-12f);
}

TEST(FailureInjection, TruncatedCheckpointRejected) {
  util::Rng rng(2);
  nn::Linear model(8, 8, rng);
  std::stringstream ss;
  nn::save_parameters(ss, model.parameters());
  std::string bytes = ss.str();
  std::stringstream cut(bytes.substr(0, bytes.size() - 16));
  EXPECT_THROW(nn::load_parameters(cut, model.parameters()), std::runtime_error);
}

TEST(FailureInjection, FlatBackboneRejectsWrongInputSize) {
  // resnet_micro_flat is built for 32x32; a 16x16 batch must throw at the
  // projection (flattened width mismatch), not silently mis-project.
  util::Rng rng(3);
  core::ImageEncoderConfig cfg;
  cfg.arch = "resnet_micro_flat";
  cfg.proj_dim = 32;
  core::ImageEncoder enc(cfg, rng);
  nn::Tensor bad({1, 3, 16, 16});
  EXPECT_THROW(enc.forward(bad, false), std::invalid_argument);
}

TEST(FailureInjection, ClassLogitsRejectWrongAttributeWidth) {
  auto space = data::AttributeSpace::cub();
  util::Rng rng(4);
  core::ZscModelConfig cfg;
  cfg.image.arch = "resnet_micro";
  cfg.image.proj_dim = 32;
  auto model = core::make_zsc_model(cfg, space, rng);
  nn::Tensor images({1, 3, 16, 16});
  nn::Tensor bad_attrs({4, 100});  // alpha must be 312
  EXPECT_THROW(model->class_logits(images, bad_attrs, false), std::invalid_argument);
}

class NoiseRecall : public ::testing::TestWithParam<double> {};

TEST_P(NoiseRecall, AssociativeMemoryDegradesGracefully) {
  // Recall over the 312-attribute dictionary as a function of bit-flip
  // noise: at d=1024 recall must remain perfect up to 20% noise and fall
  // off smoothly, never catastrophically, below 30%.
  const double noise = GetParam();
  auto space = data::AttributeSpace::cub();
  util::Rng rng(5);
  hdc::FactoredDictionary dict(space.n_groups(), space.n_values(), space.hdc_pairs(), 1024,
                               rng);
  std::vector<hdc::BipolarHV> protos;
  for (std::size_t x = 0; x < space.n_attributes(); ++x)
    protos.push_back(dict.attribute_vector(x));
  hdc::AssociativeMemory mem(protos);

  util::Rng noise_rng(42);
  std::size_t hits = 0;
  const std::size_t probes = 80;
  for (std::size_t t = 0; t < probes; ++t) {
    const std::size_t x = static_cast<std::size_t>(noise_rng.next_below(312));
    hdc::BipolarHV probe = protos[x];
    for (std::size_t i = 0; i < probe.dim(); ++i)
      if (noise_rng.bernoulli(noise)) probe[i] = static_cast<std::int8_t>(-probe[i]);
    if (mem.nearest(probe) == x) ++hits;
  }
  const double recall = static_cast<double>(hits) / static_cast<double>(probes);
  if (noise <= 0.20) EXPECT_DOUBLE_EQ(recall, 1.0) << "noise " << noise;
  else EXPECT_GT(recall, 0.5) << "noise " << noise;  // graceful, not cliff-edge
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, NoiseRecall,
                         ::testing::Values(0.0, 0.05, 0.10, 0.15, 0.20, 0.30));

TEST(FailureInjection, ZeroNormEmbeddingDoesNotPoisonSimilarity) {
  // An all-zero embedding row (dead network) must give finite logits, not
  // NaNs, thanks to the normalization epsilon guard.
  core::SimilarityKernel kernel(1.0f);
  nn::Tensor e({2, 4});        // first row all zeros
  e.at(1, 0) = 1.0f;
  util::Rng rng(6);
  nn::Tensor c = nn::Tensor::randn({3, 4}, rng);
  nn::Tensor p = kernel.forward(e, c, false);
  for (std::size_t i = 0; i < p.numel(); ++i) EXPECT_TRUE(std::isfinite(p[i]));
}

TEST(FailureInjection, GradClipHandlesAllZeroGradients) {
  nn::Parameter p(nn::Tensor({3}));
  optim::Sgd opt({&p}, 0.1f);
  const float norm = opt.clip_grad_norm(1.0f);
  EXPECT_FLOAT_EQ(norm, 0.0f);
  opt.step();  // must not produce NaNs
  for (std::size_t i = 0; i < 3; ++i) EXPECT_TRUE(std::isfinite(p.value[i]));
}

}  // namespace
}  // namespace hdczsc
