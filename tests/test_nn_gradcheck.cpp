// Finite-difference gradient verification for every differentiable layer
// and for the similarity kernel — the backbone of trust in the hand-written
// backward passes.
#include <gtest/gtest.h>

#include "core/similarity.hpp"
#include "gradcheck.hpp"
#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/resnet.hpp"

namespace hdczsc {
namespace {

using nn::Tensor;
using testing::grad_rel_err;
using testing::numerical_grad;

/// Scalar loss used in all checks: weighted sum of outputs with fixed
/// pseudo-random weights (exposes every output element).
Tensor loss_weights(const tensor::Shape& shape, std::uint64_t seed) {
  util::Rng rng(seed);
  return Tensor::randn(shape, rng);
}

double weighted_sum(const Tensor& y, const Tensor& w) {
  double s = 0.0;
  for (std::size_t i = 0; i < y.numel(); ++i) s += static_cast<double>(y[i]) * w[i];
  return s;
}

/// Check dL/dx of `layer` at a handful of probe indices. Composite blocks
/// with internal ReLUs have kinks where central differences are invalid;
/// `max_outliers` probes are allowed to exceed the tolerance there.
void check_input_grad(nn::Layer& layer, const Tensor& x0, double tol = 2e-2,
                      int max_outliers = 0) {
  Tensor probe = layer.forward(x0, true);
  Tensor w = loss_weights(probe.shape(), 999);
  Tensor dx = layer.backward(w.clone());

  auto f = [&](const Tensor& x) { return weighted_sum(layer.forward(x, true), w); };
  util::Rng pick(123);
  int outliers = 0;
  for (int t = 0; t < 12; ++t) {
    const std::size_t i = static_cast<std::size_t>(pick.next_below(x0.numel()));
    const double num = numerical_grad(f, x0.clone(), i);
    const double err = grad_rel_err(dx[i], num);
    if (err >= tol) {
      ++outliers;
      if (outliers > max_outliers)
        ADD_FAILURE() << "input grad idx " << i << " rel err " << err << " (outlier "
                      << outliers << " > " << max_outliers << " allowed)";
    }
  }
  // Restore cache state for parameter checks.
  layer.forward(x0, true);
  layer.backward(w.clone());
}

/// Check dL/dθ for every parameter of `layer` at probe indices.
void check_param_grads(nn::Layer& layer, const Tensor& x0, double tol = 2e-2) {
  Tensor probe = layer.forward(x0, true);
  Tensor w = loss_weights(probe.shape(), 999);
  for (auto* p : layer.parameters()) p->zero_grad();
  layer.backward(w.clone());

  util::Rng pick(321);
  for (auto* p : layer.parameters()) {
    for (int t = 0; t < 6; ++t) {
      const std::size_t i = static_cast<std::size_t>(pick.next_below(p->value.numel()));
      const float orig = p->value[i];
      const double eps = 1e-3;
      p->value[i] = static_cast<float>(orig + eps);
      const double up = weighted_sum(layer.forward(x0, true), w);
      p->value[i] = static_cast<float>(orig - eps);
      const double down = weighted_sum(layer.forward(x0, true), w);
      p->value[i] = orig;
      const double num = (up - down) / (2.0 * eps);
      EXPECT_LT(grad_rel_err(p->grad[i], num), tol)
          << p->name << " grad idx " << i << " analytic " << p->grad[i] << " numeric " << num;
    }
  }
}

TEST(GradCheck, Linear) {
  util::Rng rng(1);
  nn::Linear fc(6, 4, rng);
  Tensor x = Tensor::randn({3, 6}, rng);
  check_input_grad(fc, x);
  check_param_grads(fc, x);
}

TEST(GradCheck, Conv2d) {
  util::Rng rng(2);
  nn::Conv2d conv(2, 3, 3, 1, 1, rng, /*bias=*/true);
  Tensor x = Tensor::randn({2, 2, 5, 5}, rng);
  check_input_grad(conv, x);
  check_param_grads(conv, x);
}

TEST(GradCheck, Conv2dStrided) {
  util::Rng rng(3);
  nn::Conv2d conv(1, 2, 3, 2, 1, rng);
  Tensor x = Tensor::randn({2, 1, 6, 6}, rng);
  check_input_grad(conv, x);
  check_param_grads(conv, x);
}

TEST(GradCheck, BatchNorm) {
  util::Rng rng(4);
  nn::BatchNorm2d bn(3);
  Tensor x = Tensor::randn({4, 3, 3, 3}, rng);
  check_input_grad(bn, x, 5e-2);
  check_param_grads(bn, x, 5e-2);
}

TEST(GradCheck, ReLUAwayFromKink) {
  util::Rng rng(5);
  nn::ReLU relu;
  // Keep activations away from 0 so finite differences are valid.
  Tensor x = Tensor::randn({2, 10}, rng);
  for (std::size_t i = 0; i < x.numel(); ++i)
    if (std::abs(x[i]) < 0.1f) x[i] = 0.5f;
  check_input_grad(relu, x);
}

TEST(GradCheck, LeakyReLU) {
  util::Rng rng(6);
  nn::LeakyReLU lrelu(0.2f);
  Tensor x = Tensor::randn({2, 10}, rng);
  for (std::size_t i = 0; i < x.numel(); ++i)
    if (std::abs(x[i]) < 0.1f) x[i] = -0.5f;
  check_input_grad(lrelu, x);
}

TEST(GradCheck, TanhAndSigmoid) {
  util::Rng rng(7);
  nn::Tanh th;
  Tensor x = Tensor::randn({2, 8}, rng);
  check_input_grad(th, x);
  nn::Sigmoid sig;
  check_input_grad(sig, x);
}

TEST(GradCheck, MaxPool) {
  util::Rng rng(8);
  nn::MaxPool2d pool(2, 2);
  Tensor x = Tensor::randn({2, 2, 4, 4}, rng);
  check_input_grad(pool, x);
}

TEST(GradCheck, GlobalAvgPool) {
  util::Rng rng(9);
  nn::GlobalAvgPool gap;
  Tensor x = Tensor::randn({2, 3, 4, 4}, rng);
  check_input_grad(gap, x);
}

TEST(GradCheck, BasicBlock) {
  util::Rng rng(10);
  nn::BasicBlock block(4, 8, 2, rng);
  Tensor x = Tensor::randn({2, 4, 6, 6}, rng);
  check_input_grad(block, x, 5e-2, /*max_outliers=*/2);
}

TEST(GradCheck, Bottleneck) {
  util::Rng rng(11);
  nn::Bottleneck block(8, 4, 1, rng);
  Tensor x = Tensor::randn({2, 8, 4, 4}, rng);
  check_input_grad(block, x, 5e-2, /*max_outliers=*/2);
}

TEST(GradCheck, SimilarityKernelEmbeddingGrad) {
  util::Rng rng(12);
  core::SimilarityKernel kernel(0.5f);
  Tensor e = Tensor::randn({3, 8}, rng);
  Tensor c = Tensor::randn({4, 8}, rng);
  Tensor logits = kernel.forward(e, c, true);
  Tensor w = loss_weights(logits.shape(), 777);
  auto grads = kernel.backward(w);

  auto fe = [&](const Tensor& ee) { return weighted_sum(kernel.forward(ee, c, true), w); };
  auto fc = [&](const Tensor& cc) { return weighted_sum(kernel.forward(e, cc, true), w); };
  util::Rng pick(55);
  for (int t = 0; t < 10; ++t) {
    const std::size_t i = static_cast<std::size_t>(pick.next_below(e.numel()));
    EXPECT_LT(grad_rel_err(grads.grad_e[i], numerical_grad(fe, e.clone(), i)), 3e-2);
    const std::size_t j = static_cast<std::size_t>(pick.next_below(c.numel()));
    EXPECT_LT(grad_rel_err(grads.grad_c[j], numerical_grad(fc, c.clone(), j)), 3e-2);
  }
  // Restore cache then re-run for the next assertions.
  kernel.forward(e, c, true);
}

TEST(GradCheck, SimilarityKernelTemperatureGrad) {
  util::Rng rng(13);
  core::SimilarityKernel kernel(0.2f);
  Tensor e = Tensor::randn({2, 6}, rng);
  Tensor c = Tensor::randn({3, 6}, rng);
  Tensor w = loss_weights({2, 3}, 778);

  kernel.forward(e, c, true);
  kernel.log_scale().zero_grad();
  kernel.backward(w);
  const double analytic = kernel.log_scale().grad[0];

  const double eps = 1e-3;
  auto eval_at = [&](float lambda) {
    core::SimilarityKernel k2(std::exp(lambda));
    return weighted_sum(k2.forward(e, c, false), w);
  };
  const float lam = kernel.log_scale().value[0];
  const double num = (eval_at(lam + static_cast<float>(eps)) -
                      eval_at(lam - static_cast<float>(eps))) / (2.0 * eps);
  EXPECT_LT(grad_rel_err(analytic, num), 2e-2);
}

}  // namespace
}  // namespace hdczsc
