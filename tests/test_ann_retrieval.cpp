// Approximate retrieval property suite: the IVF + early-exit + cascade tier
// (serve/ann_store.hpp) must *degenerate to the exact sharded scan
// bit-for-bit* when its approximation knobs are opened up (nprobe == Cc,
// unbounded rerank) — on both scoring paths, across early-exit splits,
// ragged code widths and GZSL penalty forms — and at its defaults must hold
// recall@10 ≥ 0.99 on clustered label spaces. The index persists through
// the .hdcsnap v5 record pair (older versions load exact-only), rebuilds
// deterministically, rejects truncated/corrupt records by name, and stays
// safe under concurrent probe/hot-swap storms.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <numeric>
#include <set>
#include <sstream>
#include <thread>

#include "core/zsc_model.hpp"
#include "data/attribute_space.hpp"
#include "obs/metrics.hpp"
#include "serve/ann_store.hpp"
#include "serve/model_registry.hpp"
#include "serve/snapshot_io.hpp"
#include "tensor/ops.hpp"

namespace hdczsc {
namespace {

using serve::IvfIndex;
using serve::PrototypeStore;
using serve::RetrievalMode;
using serve::SeenPenalty;
using serve::ShardedPrototypeStore;
using serve::TopK;
using tensor::Tensor;

/// The ordering contract shared by every retrieval tier: score descending,
/// label ascending on exact ties.
bool better(const TopK& a, const TopK& b) {
  return a.score > b.score || (a.score == b.score && a.label < b.label);
}

/// Flat reference: full argsort of a [B, C] logit matrix, cut to k.
std::vector<std::vector<TopK>> flat_topk(const Tensor& logits, std::size_t k) {
  const std::size_t batch = logits.size(0), classes = logits.size(1);
  std::vector<std::vector<TopK>> out(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = logits.data() + b * classes;
    std::vector<TopK> all(classes);
    for (std::size_t c = 0; c < classes; ++c) all[c] = TopK{c, row[c]};
    std::sort(all.begin(), all.end(), better);
    all.resize(std::min(k, classes));
    out[b] = std::move(all);
  }
  return out;
}

void expect_identical(const std::vector<std::vector<TopK>>& got,
                      const std::vector<std::vector<TopK>>& want, const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t b = 0; b < got.size(); ++b) {
    ASSERT_EQ(got[b].size(), want[b].size()) << what << " query " << b;
    for (std::size_t i = 0; i < got[b].size(); ++i) {
      EXPECT_EQ(got[b][i].label, want[b][i].label) << what << " query " << b << " rank " << i;
      // Bit-identical, not approximately equal: opening the approximation
      // knobs must reproduce the exact scan's floats, not resemble them.
      EXPECT_EQ(got[b][i].score, want[b][i].score) << what << " query " << b << " rank " << i;
    }
  }
}

PrototypeStore make_store(std::size_t classes, std::size_t dim, std::size_t expansion = 1,
                          std::uint64_t seed = 7, float scale = 4.0f) {
  util::Rng rng(seed);
  return PrototypeStore(Tensor::randn({classes, dim}, rng), scale, expansion);
}

/// Mask with every third class seen — interleaved, never contiguous.
std::vector<std::uint8_t> striped_mask(std::size_t classes) {
  std::vector<std::uint8_t> mask(classes, 0);
  for (std::size_t c = 0; c < classes; c += 3) mask[c] = 1;
  return mask;
}

/// Minimal untrained model (the serving layers only need eval forwards).
std::shared_ptr<core::ZscModel> make_model(std::size_t n_attributes, std::size_t dim) {
  util::Rng rng(0xABCDULL);
  core::ImageEncoderConfig icfg;
  icfg.arch = "resnet_micro_flat";
  icfg.proj_dim = dim;
  auto img = std::make_unique<core::ImageEncoder>(icfg, rng);
  data::AttributeSpace space = data::AttributeSpace::toy(n_attributes, 1, 1);
  auto attr = std::make_unique<core::HdcAttributeEncoder>(space, img->dim(), rng);
  return std::make_shared<core::ZscModel>(std::move(img), std::move(attr), 4.0f);
}

std::shared_ptr<serve::ModelSnapshot> make_snapshot(std::size_t classes,
                                                    bool with_ivf = false) {
  const std::size_t n_attributes = 24, dim = 64;
  util::Rng rng(0xFACEULL);
  auto snap = std::make_shared<serve::ModelSnapshot>(
      make_model(n_attributes, dim), Tensor::randn({classes, n_attributes}, rng),
      /*binary_expansion=*/1, /*preferred_shards=*/1);
  if (with_ivf) snap->build_ivf();
  return snap;
}

serve::InferResult submit_one(serve::ModelRegistry& registry, const std::string& key,
                              Tensor input) {
  serve::InferRequest req;
  req.model_key = key;
  req.input = std::move(input);
  req.k = 1;
  return registry.submit(std::move(req)).get();
}

// -- mode plumbing -----------------------------------------------------------

TEST(AnnRetrieval, ModeNamesRoundTrip) {
  for (RetrievalMode m : {RetrievalMode::kExact, RetrievalMode::kIvf, RetrievalMode::kCascade})
    EXPECT_EQ(serve::retrieval_mode_from_name(serve::retrieval_mode_name(m)), m);
  EXPECT_EQ(serve::retrieval_mode_name(RetrievalMode::kExact), "exact");
  EXPECT_EQ(serve::retrieval_mode_name(RetrievalMode::kIvf), "ivf");
  EXPECT_EQ(serve::retrieval_mode_name(RetrievalMode::kCascade), "cascade");
  EXPECT_THROW(serve::retrieval_mode_from_name("annoy"), std::invalid_argument);
}

// -- coarse quantizer build --------------------------------------------------

TEST(IvfBuild, KMeansPartitionCoversEveryRowOnce) {
  const PrototypeStore store = make_store(300, 64);
  const IvfIndex ivf(store);
  // Auto centroid count ~√C, clamped into [1, C].
  EXPECT_GE(ivf.n_centroids(), 2u);
  EXPECT_LE(ivf.n_centroids(), 300u);
  ASSERT_EQ(ivf.assignments().size(), 300u);
  std::size_t listed = 0;
  for (std::size_t c = 0; c < ivf.n_centroids(); ++c) listed += ivf.list_size(c);
  EXPECT_EQ(listed, 300u);  // the inverted lists partition the rows exactly
  for (std::uint32_t a : ivf.assignments()) EXPECT_LT(a, ivf.n_centroids());
  // Spherical k-means: every centroid row is unit-norm.
  const Tensor& cm = ivf.centroids();
  ASSERT_EQ(cm.size(0), ivf.n_centroids());
  ASSERT_EQ(cm.size(1), 64u);
  for (std::size_t c = 0; c < ivf.n_centroids(); ++c) {
    double n2 = 0.0;
    const float* row = cm.data() + c * 64;
    for (std::size_t j = 0; j < 64; ++j) n2 += double(row[j]) * row[j];
    EXPECT_NEAR(n2, 1.0, 1e-4) << "centroid " << c;
  }
}

TEST(IvfBuild, RebuildIsDeterministic) {
  // Pre-v5 snapshots rebuild the index on load; the rebuild must equal the
  // index a v5 writer would have persisted — seeded k-means, bit-for-bit.
  const PrototypeStore store = make_store(257, 48, /*expansion=*/2);
  const IvfIndex a(store);
  const IvfIndex b(store);
  EXPECT_EQ(a.n_centroids(), b.n_centroids());
  EXPECT_EQ(a.assignments(), b.assignments());
  EXPECT_EQ(tensor::max_abs_diff(a.centroids(), b.centroids()), 0.0f);
}

TEST(IvfBuild, FromPartsRejectsMismatchedGeometry) {
  const PrototypeStore store = make_store(50, 32);
  const IvfIndex built(store);
  // Wrong centroid width.
  util::Rng rng(3);
  EXPECT_THROW(IvfIndex::from_parts(store, Tensor::randn({4, 16}, rng),
                                    std::vector<std::uint32_t>(50, 0)),
               std::invalid_argument);
  // Wrong assignment count.
  EXPECT_THROW(
      IvfIndex::from_parts(store, built.centroids(), std::vector<std::uint32_t>(49, 0)),
      std::invalid_argument);
  // Assignment out of centroid range.
  std::vector<std::uint32_t> bad = built.assignments();
  bad[7] = static_cast<std::uint32_t>(built.n_centroids());
  EXPECT_THROW(IvfIndex::from_parts(store, built.centroids(), bad), std::invalid_argument);
  // And the good parts round-trip into an identical index.
  const IvfIndex adopted =
      IvfIndex::from_parts(store, built.centroids(), built.assignments());
  EXPECT_EQ(adopted.assignments(), built.assignments());
  EXPECT_EQ(tensor::max_abs_diff(adopted.centroids(), built.centroids()), 0.0f);
}

// -- full-probe degeneracy: the tier's central property ----------------------

TEST(IvfExact, FloatFullProbeMatchesShardedBitwise) {
  // Sizes keep every GEMM on the deterministic naive kernel so the
  // double-accumulated per-row dot reproduces the sharded scores exactly.
  const PrototypeStore store = make_store(100, 64);
  const ShardedPrototypeStore sharded(store, 1);
  const IvfIndex ivf(store);
  util::Rng rng(11);
  const Tensor emb = Tensor::randn({5, 64}, rng);
  for (std::size_t k : {1u, 7u, 100u})
    expect_identical(ivf.topk_float(emb, k, ivf.n_centroids()), sharded.topk_float(emb, k),
                     "float full-probe k=" + std::to_string(k));
}

TEST(IvfExact, BinaryFullProbeMatchesShardedBitwise) {
  // Integer-domain selection holds exactly at any scale; sweep ragged code
  // widths (2, 4 and 7 words per row) and both expansion regimes.
  struct Shape {
    std::size_t classes, dim, expansion;
  };
  for (const Shape s : {Shape{999, 128, 2}, Shape{300, 40, 5}, Shape{101, 96, 1}}) {
    const PrototypeStore store = make_store(s.classes, s.dim, s.expansion);
    const ShardedPrototypeStore sharded(store, 3);
    const IvfIndex ivf(store);
    util::Rng rng(13);
    const Tensor emb = Tensor::randn({4, s.dim}, rng);
    expect_identical(ivf.topk_binary(emb, 10, ivf.n_centroids()),
                     sharded.topk_binary(emb, 10),
                     "binary full-probe C=" + std::to_string(s.classes));
  }
}

TEST(IvfExact, CascadeUnboundedRerankMatchesExactFloat) {
  const PrototypeStore store = make_store(100, 64);
  const ShardedPrototypeStore sharded(store, 1);
  const IvfIndex ivf(store);
  util::Rng rng(17);
  const Tensor emb = Tensor::randn({5, 64}, rng);
  const auto want = sharded.topk_float(emb, 7);
  // rerank == 0 (unbounded) and any rerank whose budget covers every probed
  // row both skip nothing — exact float top-k either way.
  expect_identical(ivf.topk_cascade(emb, 7, ivf.n_centroids(), 0), want,
                   "cascade rerank=0");
  expect_identical(ivf.topk_cascade(emb, 7, ivf.n_centroids(), 1000), want,
                   "cascade rerank=1000");
}

// -- Hamming early exit ------------------------------------------------------

TEST(EarlyExit, AdmissibleAcrossEveryPrefixSplit) {
  // D = 512 → 8 words per row: force every prefix/suffix split and demand
  // the same bits as the exact scan. The prune may fire or not — it must
  // never change the answer.
  const PrototypeStore store = make_store(400, 64, /*expansion=*/8);
  const ShardedPrototypeStore sharded(store, 1);
  IvfIndex ivf(store);
  util::Rng rng(19);
  const Tensor emb = Tensor::randn({3, 64}, rng);
  const auto want = sharded.topk_binary(emb, 5);
  std::uint64_t pruned_somewhere = 0;
  for (std::size_t split = 1; split <= store.words_per_row(); ++split) {
    ivf.set_prefix_words(split);
    ASSERT_EQ(ivf.prefix_words(), split);
    expect_identical(ivf.topk_binary(emb, 5, ivf.n_centroids()), want,
                     "prefix_words=" + std::to_string(split));
    pruned_somewhere += ivf.probe_stats().rows_pruned;
  }
  // With a 1-word prefix over 8-word codes the cutoff must actually fire.
  EXPECT_GT(pruned_somewhere, 0u);
  ivf.set_prefix_words(0);  // back to the automatic split
  EXPECT_GT(ivf.prefix_words(), 0u);
}

TEST(EarlyExit, GzslIntegerOffsetStaysExact) {
  // Integer-exact handicap (scale 4, D = 256 ⇒ penalty = Δ/32): the prune
  // threshold and the fold both live in the integer Hamming domain, so the
  // penalized early-exit scan must equal the penalized exact scan bitwise,
  // under every split.
  const PrototypeStore store = make_store(500, 128, /*expansion=*/2);
  const SeenPenalty p = store.resolve_penalty(6.0f / 32.0f, striped_mask(500));
  ASSERT_TRUE(p.integer_exact);
  const ShardedPrototypeStore sharded(store, 2);
  IvfIndex ivf(store);
  util::Rng rng(23);
  const Tensor emb = Tensor::randn({4, 128}, rng);
  const auto want = sharded.topk_binary(emb, 8, &p);
  for (std::size_t split = 1; split <= store.words_per_row(); ++split) {
    ivf.set_prefix_words(split);
    expect_identical(ivf.topk_binary(emb, 8, ivf.n_centroids(), &p),
                     want, "gzsl split=" + std::to_string(split));
  }
}

TEST(EarlyExit, NonIntegerPenaltyFallsBackFullWidth) {
  // A fractional handicap can't fold into integer keys; the scan must take
  // the full-width float-domain path (no prune) and still match the exact
  // sharded fallback bitwise.
  const PrototypeStore store = make_store(300, 128, /*expansion=*/2);
  const SeenPenalty p = store.resolve_penalty(0.1f, striped_mask(300));
  ASSERT_FALSE(p.integer_exact);
  const ShardedPrototypeStore sharded(store, 2);
  const IvfIndex ivf(store);
  util::Rng rng(29);
  const Tensor emb = Tensor::randn({3, 128}, rng);
  const auto before = ivf.probe_stats().rows_pruned;
  expect_identical(ivf.topk_binary(emb, 6, ivf.n_centroids(), &p),
                   sharded.topk_binary(emb, 6, &p), "float-domain fallback");
  EXPECT_EQ(ivf.probe_stats().rows_pruned, before);  // full width: nothing pruned
}

TEST(Cascade, PenaltyAppliedInRerank) {
  // The cascade's float rerank always applies the exact row_penalty
  // subtraction, so the penalized unbounded cascade equals the penalized
  // exact float scan — even when the handicap is not integer-exact and the
  // binary prefilter ranked unpenalized.
  const PrototypeStore store = make_store(80, 64);
  const ShardedPrototypeStore sharded(store, 1);
  const IvfIndex ivf(store);
  util::Rng rng(31);
  const Tensor emb = Tensor::randn({6, 64}, rng);
  for (float penalty : {6.0f / 32.0f, 0.1f}) {
    const SeenPenalty p = store.resolve_penalty(penalty, striped_mask(80));
    expect_identical(ivf.topk_cascade(emb, 7, ivf.n_centroids(), 0, &p),
                     sharded.topk_float(emb, 7, &p),
                     "cascade penalty=" + std::to_string(penalty));
  }
}

// -- probing behaviour -------------------------------------------------------

TEST(IvfProbe, ResultsComeFromProbedLists) {
  const PrototypeStore store = make_store(400, 32);
  const IvfIndex ivf(store);
  const std::size_t nprobe = 2;
  util::Rng rng(37);
  const Tensor emb = Tensor::randn({4, 32}, rng);
  const Tensor e_hat = tensor::l2_normalize_rows(emb);
  const Tensor& cm = ivf.centroids();
  const auto hits = ivf.topk_float(emb, 50, nprobe);
  for (std::size_t b = 0; b < 4; ++b) {
    // Reference probe: nprobe nearest centroids by (dot desc, id asc).
    std::vector<std::pair<float, std::size_t>> dots(ivf.n_centroids());
    for (std::size_t c = 0; c < ivf.n_centroids(); ++c) {
      float d = 0.0f;
      for (std::size_t j = 0; j < 32; ++j)
        d += e_hat.data()[b * 32 + j] * cm.data()[c * 32 + j];
      dots[c] = {d, c};
    }
    std::sort(dots.begin(), dots.end(), [](const auto& x, const auto& y) {
      return x.first > y.first || (x.first == y.first && x.second < y.second);
    });
    std::set<std::uint32_t> probed;
    std::size_t expect_rows = 0;
    for (std::size_t i = 0; i < nprobe; ++i) {
      probed.insert(static_cast<std::uint32_t>(dots[i].second));
      expect_rows += ivf.list_size(dots[i].second);
    }
    EXPECT_EQ(hits[b].size(), std::min<std::size_t>(50, expect_rows)) << "query " << b;
    for (const TopK& h : hits[b])
      EXPECT_TRUE(probed.count(ivf.assignments()[h.label]))
          << "query " << b << " label " << h.label << " outside the probed lists";
  }
}

TEST(IvfProbe, NprobeResolutionClampsIntoRange) {
  const PrototypeStore store = make_store(256, 32);
  const IvfIndex ivf(store);
  const std::size_t cc = ivf.n_centroids();
  EXPECT_EQ(ivf.default_nprobe(), std::max<std::size_t>(1, cc / 8));
  EXPECT_EQ(ivf.resolve_nprobe(0), ivf.default_nprobe());
  EXPECT_EQ(ivf.resolve_nprobe(1), 1u);
  EXPECT_EQ(ivf.resolve_nprobe(cc), cc);
  EXPECT_EQ(ivf.resolve_nprobe(cc + 100), cc);  // over-asking clamps to Cc
}

TEST(IvfProbe, KEdgesBehaveLikeExactPaths) {
  const PrototypeStore store = make_store(60, 64);
  const ShardedPrototypeStore sharded(store, 1);
  const IvfIndex ivf(store);
  util::Rng rng(41);
  const Tensor emb = Tensor::randn({3, 64}, rng);
  for (const auto& hits : ivf.topk_float(emb, 0, ivf.n_centroids()))
    EXPECT_TRUE(hits.empty());
  for (const auto& hits : ivf.topk_binary(emb, 0, ivf.n_centroids()))
    EXPECT_TRUE(hits.empty());
  // k > C with a full probe returns the complete exact ranking.
  const auto all = ivf.topk_float(emb, 100, ivf.n_centroids());
  expect_identical(all, sharded.topk_float(emb, 100), "k>C full ranking");
  ASSERT_EQ(all[0].size(), 60u);
}

TEST(IvfProbe, StatsAccountForSweepAndPrune) {
  const PrototypeStore store = make_store(300, 64, /*expansion=*/8);
  const IvfIndex ivf(store);
  const std::size_t nprobe = ivf.resolve_nprobe(3);
  util::Rng rng(43);
  const Tensor emb = Tensor::randn({5, 64}, rng);
  ivf.topk_binary(emb, 4, nprobe);
  auto s = ivf.probe_stats();
  EXPECT_EQ(s.queries, 5u);
  EXPECT_EQ(s.centroids_probed, 5u * nprobe);
  EXPECT_GT(s.rows_swept, 0u);
  EXPECT_LE(s.rows_pruned, s.rows_swept);
  EXPECT_EQ(s.rows_reranked, 0u);  // no cascade ran yet
  ivf.topk_cascade(emb, 4, nprobe, 2);
  s = ivf.probe_stats();
  EXPECT_EQ(s.queries, 10u);
  EXPECT_GT(s.rows_reranked, 0u);
  // The process-wide serve_ivf_* counters mirror the per-index telemetry.
  EXPECT_GT(obs::default_registry()
                .counter("serve_ivf_rows_swept_total", {},
                         "prototype rows prefix-scored by IVF scans")
                ->value(),
            0u);
}

// -- recall at the serving defaults ------------------------------------------

TEST(Recall, ClusteredLabelSpaceRecallAtDefaults) {
  // Clustered prototypes (the regime IVF is built for): 45 well-separated
  // unit centers, rows = center + small noise, queries near true rows.
  // At the serving defaults (nprobe = Cc/8, rerank = 4) both approximate
  // tiers must hold recall@10 ≥ 0.99 against the exact float top-10.
  const std::size_t n_centers = 45, per = 45, dim = 64, classes = n_centers * per;
  util::Rng rng(0xC1u);
  const Tensor centers = tensor::l2_normalize_rows(Tensor::randn({n_centers, dim}, rng));
  Tensor protos({classes, dim});
  for (std::size_t c = 0; c < classes; ++c) {
    const float* mu = centers.data() + (c % n_centers) * dim;
    for (std::size_t j = 0; j < dim; ++j)
      protos.data()[c * dim + j] = mu[j] + 0.05f * static_cast<float>(rng.normal());
  }
  const PrototypeStore store(protos, 4.0f, /*expansion=*/4);
  const IvfIndex ivf(store);

  const std::size_t n_queries = 64, k = 10;
  Tensor emb({n_queries, dim});
  for (std::size_t q = 0; q < n_queries; ++q) {
    const std::size_t row = rng.next_below(classes);
    for (std::size_t j = 0; j < dim; ++j)
      emb.data()[q * dim + j] =
          protos.data()[row * dim + j] + 0.01f * static_cast<float>(rng.normal());
  }
  const auto want = flat_topk(store.score_float(emb), k);

  auto recall = [&](const std::vector<std::vector<TopK>>& got) {
    std::size_t inter = 0;
    for (std::size_t q = 0; q < n_queries; ++q) {
      std::set<std::size_t> truth;
      for (const TopK& h : want[q]) truth.insert(h.label);
      for (const TopK& h : got[q]) inter += truth.count(h.label);
    }
    return double(inter) / double(n_queries * k);
  };
  const double r_ivf = recall(ivf.topk_float(emb, k, /*nprobe=*/0));
  const double r_cascade = recall(ivf.topk_cascade(emb, k, /*nprobe=*/0, /*rerank=*/4));
  EXPECT_GE(r_ivf, 0.99) << "ivf-float recall@10";
  EXPECT_GE(r_cascade, 0.99) << "cascade recall@10";
}

// -- engine routing ----------------------------------------------------------

TEST(AnnEngine, RoutesEveryRetrievalMode) {
  auto snapshot = make_snapshot(40, /*with_ivf=*/true);
  const std::size_t cc = snapshot->ivf()->n_centroids();
  util::Rng rng(47);
  const Tensor images = Tensor::randn({6, 3, 32, 32}, rng);

  const serve::InferenceEngine exact_f(snapshot, serve::ScoringMode::kFloatCosine);
  const serve::InferenceEngine exact_b(snapshot, serve::ScoringMode::kBinaryHamming);
  EXPECT_EQ(exact_f.retrieval(), RetrievalMode::kExact);
  EXPECT_EQ(exact_f.ivf(), nullptr);

  // kIvf scans in the engine's scoring mode; a full probe equals exact.
  const serve::InferenceEngine ivf_b(snapshot, serve::ScoringMode::kBinaryHamming, 0, 0.0f,
                                     serve::Precision::kFloat32, RetrievalMode::kIvf, cc);
  ASSERT_NE(ivf_b.ivf(), nullptr);
  EXPECT_EQ(ivf_b.retrieval(), RetrievalMode::kIvf);
  EXPECT_EQ(ivf_b.nprobe(), cc);
  expect_identical(ivf_b.topk_batch(images, 5), exact_b.topk_batch(images, 5),
                   "engine ivf binary full probe");

  // kCascade with an unbounded rerank equals the exact float ranking.
  const serve::InferenceEngine casc(snapshot, serve::ScoringMode::kFloatCosine, 0, 0.0f,
                                    serve::Precision::kFloat32, RetrievalMode::kCascade, cc,
                                    /*rerank=*/0);
  EXPECT_EQ(casc.rerank(), 0u);
  expect_identical(casc.topk_batch(images, 5), exact_f.topk_batch(images, 5),
                   "engine cascade full probe");
  // classify_batch routes through the same tier.
  const auto a = casc.classify_batch(images);
  const auto b = exact_f.classify_batch(images);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label) << "image " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "image " << i;
  }
  // logits() stays exact regardless of the retrieval tier.
  EXPECT_EQ(tensor::max_abs_diff(casc.logits(images), exact_f.logits(images)), 0.0f);
}

TEST(AnnEngine, DefaultsServeWithoutPersistedIndex) {
  // A snapshot without an IVF record (any pre-v5 artifact): the engine
  // clusters one deterministically at construction and serves.
  auto snapshot = make_snapshot(40);
  ASSERT_FALSE(snapshot->has_ivf());
  const serve::InferenceEngine engine(snapshot, serve::ScoringMode::kFloatCosine, 0, 0.0f,
                                      serve::Precision::kFloat32, RetrievalMode::kIvf);
  ASSERT_NE(engine.ivf(), nullptr);
  util::Rng rng(53);
  const auto hits = engine.topk_batch(Tensor::randn({2, 3, 32, 32}, rng), 3);
  ASSERT_EQ(hits.size(), 2u);
  for (const auto& h : hits) {
    ASSERT_EQ(h.size(), 3u);
    for (const TopK& t : h) EXPECT_LT(t.label, 40u);
  }
}

// -- snapshot format: v5 record pair -----------------------------------------

TEST(AnnSnapshotIo, V5RoundTripPreservesIndexBitwise) {
  auto snapshot = make_snapshot(40, /*with_ivf=*/true);
  std::stringstream ss;
  serve::save_snapshot(ss, *snapshot);
  const auto info = serve::inspect_snapshot(ss);
  EXPECT_EQ(info.version, serve::kSnapshotVersion);
  EXPECT_TRUE(info.has_ivf);
  EXPECT_EQ(info.n_centroids, snapshot->ivf()->n_centroids());
  ss.seekg(0);
  auto loaded = serve::load_snapshot(ss);
  ASSERT_TRUE(loaded->has_ivf());
  EXPECT_EQ(loaded->ivf()->assignments(), snapshot->ivf()->assignments());
  EXPECT_EQ(tensor::max_abs_diff(loaded->ivf()->centroids(), snapshot->ivf()->centroids()),
            0.0f);
  // A loaded index probes identically to the one that was saved.
  util::Rng rng(59);
  const Tensor emb = Tensor::randn({3, 64}, rng);
  expect_identical(loaded->ivf()->topk_binary(emb, 5, 2),
                   snapshot->ivf()->topk_binary(emb, 5, 2), "loaded probe");
}

TEST(AnnSnapshotIo, PreV5FilesLoadExactOnlyAndRebuildMatchesPersisted) {
  auto snapshot = make_snapshot(40, /*with_ivf=*/true);
  std::stringstream with;
  serve::save_snapshot(with, *snapshot);

  // Byte-genuine v4: save the same snapshot without the index, drop the
  // v6 lineage block (20 bytes) plus the v5 has_ivf flag byte and rewrite
  // the version field.
  auto bare = make_snapshot(40);
  std::stringstream ss;
  serve::save_snapshot(ss, *bare);
  std::string bytes = ss.str();
  ASSERT_EQ(bytes.substr(bytes.size() - 4), "PANS");
  bytes.erase(bytes.size() - 4 - 21, 21);
  const std::uint32_t v4 = 4;
  bytes.replace(4, 4, reinterpret_cast<const char*>(&v4), 4);

  std::istringstream v4_file(bytes);
  auto loaded = serve::load_snapshot(v4_file);
  EXPECT_FALSE(loaded->has_ivf());
  std::istringstream v4_again(bytes);
  EXPECT_FALSE(serve::inspect_snapshot(v4_again).has_ivf);

  // An approximate engine over the v4 artifact rebuilds deterministically
  // and must serve the same results as one over the persisted v5 index.
  std::istringstream v5_file(with.str());
  auto persisted = serve::load_snapshot(v5_file);
  const serve::InferenceEngine rebuilt(loaded, serve::ScoringMode::kBinaryHamming, 0, 0.0f,
                                       serve::Precision::kFloat32, RetrievalMode::kIvf, 2);
  const serve::InferenceEngine adopted(persisted, serve::ScoringMode::kBinaryHamming, 0,
                                       0.0f, serve::Precision::kFloat32, RetrievalMode::kIvf,
                                       2);
  util::Rng rng(61);
  const Tensor images = Tensor::randn({3, 3, 32, 32}, rng);
  expect_identical(rebuilt.topk_batch(images, 4), adopted.topk_batch(images, 4),
                   "rebuilt vs persisted");
}

TEST(AnnSnapshotIo, TruncationInsideIvfRecordsAlwaysThrows) {
  // Bracket the IVF region by saving with and without the index; a cut
  // anywhere inside it must throw — for load_snapshot AND the no-rebuild
  // inspect walk — never read short.
  auto bare = make_snapshot(40);
  std::stringstream without;
  serve::save_snapshot(without, *bare);
  const std::size_t ivf_begin = without.str().size() - 4 - 1;  // at the has_ivf flag

  auto snapshot = make_snapshot(40, /*with_ivf=*/true);
  std::stringstream with;
  serve::save_snapshot(with, *snapshot);
  const std::string bytes = with.str();
  ASSERT_GT(bytes.size(), without.str().size());

  for (std::size_t cut = ivf_begin; cut < bytes.size(); cut += 97) {
    std::istringstream in(bytes.substr(0, cut));
    EXPECT_THROW(serve::load_snapshot(in), std::runtime_error) << "cut at " << cut;
    std::istringstream in2(bytes.substr(0, cut));
    EXPECT_THROW(serve::inspect_snapshot(in2), std::runtime_error) << "inspect at " << cut;
  }
}

TEST(AnnSnapshotIo, CorruptIvfRecordsRejectedByName) {
  auto snapshot = make_snapshot(40, /*with_ivf=*/true);
  std::stringstream ss;
  serve::save_snapshot(ss, *snapshot);
  const std::string bytes = ss.str();
  ASSERT_EQ(bytes.substr(bytes.size() - 4), "PANS");
  // Tail layout (back to front): "PANS" | v6 lineage block (20 bytes) |
  // 40 u32 assignments | u64 count.
  const std::size_t assign_off = bytes.size() - 4 - 20 - 40 * 4;
  const std::size_t count_off = assign_off - 8;

  {  // Out-of-range assignment value → named reject, not a bad index.
    std::string bad = bytes;
    const std::uint32_t huge = 0xFFFFFFFFu;
    bad.replace(assign_off, 4, reinterpret_cast<const char*>(&huge), 4);
    std::istringstream in(bad);
    try {
      serve::load_snapshot(in);
      FAIL() << "out-of-range assignment must not load";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("ivf assignments"), std::string::npos)
          << e.what();
    }
  }
  {  // Assignment count disagreeing with the class count → named reject.
    std::string bad = bytes;
    const std::uint64_t wrong = 39;
    bad.replace(count_off, 8, reinterpret_cast<const char*>(&wrong), 8);
    std::istringstream in(bad);
    try {
      serve::load_snapshot(in);
      FAIL() << "assignment-count mismatch must not load";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("ivf assignment count"), std::string::npos)
          << e.what();
    }
  }
}

// -- registry surface and concurrency ----------------------------------------

TEST(AnnRegistry, RetrievalColumnAndAnnStats) {
  serve::ServerConfig cfg;
  cfg.batch.max_delay_ms = 0.5;
  cfg.retrieval = RetrievalMode::kIvf;
  serve::ModelRegistry registry(cfg);
  registry.load("approx", make_snapshot(40, /*with_ivf=*/true),
                serve::ScoringMode::kBinaryHamming);

  serve::ServerConfig exact_cfg;
  exact_cfg.batch.max_delay_ms = 0.5;
  serve::ModelRegistry exact_registry(exact_cfg);
  exact_registry.load("plain", make_snapshot(40));

  util::Rng rng(67);
  for (int i = 0; i < 3; ++i)
    ASSERT_EQ(submit_one(registry, "approx", Tensor::randn({3, 32, 32}, rng)).status,
              serve::InferStatus::kOk);

  const auto stats = registry.ann_stats("approx");
  ASSERT_TRUE(stats.has_value());
  EXPECT_GE(stats->queries, 3u);
  EXPECT_GT(stats->centroids_probed, 0u);
  EXPECT_FALSE(exact_registry.ann_stats("plain").has_value());  // exact: no index
  EXPECT_THROW(registry.ann_stats("nope"), serve::ModelNotFound);
  registry.to_table().print();  // the retr column renders
  registry.stop_all();
  exact_registry.stop_all();
}

TEST(AnnRegistry, ConcurrentProbeAndSwapStorm) {
  // Client threads storm an approximate-tier model while the control thread
  // hot-swaps the snapshot behind it. Requests racing a swap may come back
  // kShutdown / kOverloaded, but every future must resolve with a named
  // status and the probes must never touch a freed index.
  serve::ServerConfig cfg;
  cfg.batch.max_delay_ms = 0.5;
  cfg.batch.max_queue_depth = 1024;
  cfg.retrieval = RetrievalMode::kCascade;
  cfg.rerank = 2;
  serve::ModelRegistry registry(cfg);
  auto snap_a = make_snapshot(40, /*with_ivf=*/true);
  auto snap_b = make_snapshot(40);  // forces an engine-side rebuild on swap
  registry.load("hot", snap_a);

  const std::size_t per_client = 40;
  std::atomic<std::size_t> ok{0}, rejected{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng(100 + c);
      for (std::size_t r = 0; r < per_client; ++r) {
        const serve::InferResult res =
            submit_one(registry, "hot", Tensor::randn({3, 32, 32}, rng));
        if (res.ok()) {
          EXPECT_FALSE(res.topk.empty());
          ++ok;
        } else {
          EXPECT_TRUE(res.status == serve::InferStatus::kShutdown ||
                      res.status == serve::InferStatus::kOverloaded)
              << infer_status_name(res.status);
          ++rejected;
        }
      }
    });
  }
  for (int i = 0; i < 6; ++i) registry.load("hot", i % 2 ? snap_a : snap_b);
  for (auto& c : clients) c.join();

  EXPECT_EQ(ok.load() + rejected.load(), 2 * per_client);
  EXPECT_GT(ok.load(), 0u);
  util::Rng rng(71);
  EXPECT_EQ(submit_one(registry, "hot", Tensor::randn({3, 32, 32}, rng)).status,
            serve::InferStatus::kOk);
  registry.stop_all();
}

}  // namespace
}  // namespace hdczsc
