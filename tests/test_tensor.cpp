#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace hdczsc {
namespace {

using tensor::Tensor;

TEST(Tensor, ZerosShapeAndValues) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  EXPECT_EQ(t.dim(), 2u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(t[i], 0.0f);
}

TEST(Tensor, FromVectorChecksSize) {
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}), std::invalid_argument);
  Tensor ok({2, 2}, std::vector<float>{1, 2, 3, 4});
  EXPECT_FLOAT_EQ(ok.at(1, 1), 4.0f);
}

TEST(Tensor, ReshapeSharesStorage) {
  Tensor t({2, 3}, 1.0f);
  Tensor v = t.reshape({3, 2});
  EXPECT_TRUE(t.shares_storage(v));
  v[0] = 9.0f;
  EXPECT_FLOAT_EQ(t[0], 9.0f);
  EXPECT_THROW(t.reshape({4, 2}), std::invalid_argument);
}

TEST(Tensor, CloneIsDeep) {
  Tensor t({4}, 2.0f);
  Tensor c = t.clone();
  EXPECT_FALSE(t.shares_storage(c));
  c[0] = -1.0f;
  EXPECT_FLOAT_EQ(t[0], 2.0f);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t({2, 2});
  EXPECT_THROW(t.at(2, 0), std::out_of_range);
  EXPECT_THROW(t.at(0), std::out_of_range);  // wrong rank
}

TEST(Tensor, Reductions) {
  Tensor t = Tensor::from_vector({1, -2, 3, 4});
  EXPECT_FLOAT_EQ(t.sum(), 6.0f);
  EXPECT_FLOAT_EQ(t.mean(), 1.5f);
  EXPECT_FLOAT_EQ(t.min(), -2.0f);
  EXPECT_FLOAT_EQ(t.max(), 4.0f);
  EXPECT_NEAR(t.norm(), std::sqrt(1 + 4 + 9 + 16.0f), 1e-5);
}

TEST(Tensor, EyeAndRandn) {
  Tensor i3 = Tensor::eye(3);
  EXPECT_FLOAT_EQ(i3.at(1, 1), 1.0f);
  EXPECT_FLOAT_EQ(i3.at(0, 1), 0.0f);
  util::Rng rng(3);
  Tensor r = Tensor::randn({1000}, rng);
  EXPECT_NEAR(r.mean(), 0.0f, 0.1f);
}

TEST(Tensor, RademacherOnlyPlusMinusOne) {
  util::Rng rng(5);
  Tensor r = Tensor::rademacher({256}, rng);
  for (std::size_t i = 0; i < r.numel(); ++i)
    EXPECT_TRUE(r[i] == 1.0f || r[i] == -1.0f);
}

TEST(Ops, ElementwiseAddSubMul) {
  Tensor a = Tensor::from_vector({1, 2, 3});
  Tensor b = Tensor::from_vector({4, 5, 6});
  EXPECT_FLOAT_EQ(tensor::add(a, b)[1], 7.0f);
  EXPECT_FLOAT_EQ(tensor::sub(a, b)[2], -3.0f);
  EXPECT_FLOAT_EQ(tensor::mul(a, b)[0], 4.0f);
  EXPECT_FLOAT_EQ(tensor::add_scalar(a, 1.0f)[0], 2.0f);
  EXPECT_FLOAT_EQ(tensor::mul_scalar(a, -2.0f)[2], -6.0f);
}

TEST(Ops, ShapeMismatchThrows) {
  Tensor a({2, 2});
  Tensor b({4});
  EXPECT_THROW(tensor::add(a, b), std::invalid_argument);
}

TEST(Ops, MatmulKnownValues) {
  Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
  Tensor c = tensor::matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Ops, MatmulVariantsAgree) {
  util::Rng rng(7);
  Tensor a = Tensor::randn({4, 5}, rng);
  Tensor b = Tensor::randn({5, 6}, rng);
  Tensor ref = tensor::matmul(a, b);
  // tn: (Aᵀ)ᵀ B using transpose(a) as the k×m input.
  Tensor tn = tensor::matmul_tn(tensor::transpose(a), b);
  EXPECT_LT(tensor::max_abs_diff(ref, tn), 1e-4f);
  // nt: A (Bᵀ)ᵀ using transpose(b) as the n×k input.
  Tensor nt = tensor::matmul_nt(a, tensor::transpose(b));
  EXPECT_LT(tensor::max_abs_diff(ref, nt), 1e-4f);
}

TEST(Ops, MatvecMatchesMatmul) {
  util::Rng rng(9);
  Tensor a = Tensor::randn({3, 4}, rng);
  Tensor x = Tensor::randn({4}, rng);
  Tensor y = tensor::matvec(a, x);
  Tensor ref = tensor::matmul(a, x.reshape({4, 1}));
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(y[i], ref[i], 1e-5);
}

TEST(Ops, TransposeInvolution) {
  util::Rng rng(11);
  Tensor a = Tensor::randn({3, 7}, rng);
  EXPECT_LT(tensor::max_abs_diff(a, tensor::transpose(tensor::transpose(a))), 0.0f + 1e-9f);
}

TEST(Ops, SumRowsAndCols) {
  Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor rows = tensor::sum_rows(a);
  EXPECT_FLOAT_EQ(rows[0], 5.0f);
  EXPECT_FLOAT_EQ(rows[2], 9.0f);
  Tensor cols = tensor::sum_cols(a);
  EXPECT_FLOAT_EQ(cols[0], 6.0f);
  EXPECT_FLOAT_EQ(cols[1], 15.0f);
}

TEST(Ops, ArgmaxAndTopk) {
  Tensor a({2, 4}, std::vector<float>{0.1f, 0.9f, 0.3f, 0.5f, 2.0f, -1.0f, 1.5f, 0.0f});
  auto am = tensor::argmax_rows(a);
  EXPECT_EQ(am[0], 1u);
  EXPECT_EQ(am[1], 0u);
  auto tk = tensor::topk_rows(a, 2);
  EXPECT_EQ(tk[0][0], 1u);
  EXPECT_EQ(tk[0][1], 3u);
  EXPECT_EQ(tk[1][0], 0u);
  EXPECT_EQ(tk[1][1], 2u);
  EXPECT_THROW(tensor::topk_rows(a, 5), std::invalid_argument);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  util::Rng rng(13);
  Tensor l = Tensor::randn({5, 8}, rng, 0.0f, 3.0f);
  Tensor p = tensor::softmax_rows(l);
  for (std::size_t i = 0; i < 5; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < 8; ++j) s += p.at(i, j);
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Ops, SoftmaxStableUnderLargeLogits) {
  Tensor l({1, 3}, std::vector<float>{1000.0f, 1000.0f, 900.0f});
  Tensor p = tensor::softmax_rows(l);
  EXPECT_NEAR(p[0], 0.5f, 1e-4);
  EXPECT_NEAR(p[2], 0.0f, 1e-4);
}

TEST(Ops, LogSoftmaxMatchesLogOfSoftmax) {
  util::Rng rng(15);
  Tensor l = Tensor::randn({3, 5}, rng);
  Tensor ls = tensor::log_softmax_rows(l);
  Tensor p = tensor::softmax_rows(l);
  for (std::size_t i = 0; i < ls.numel(); ++i)
    EXPECT_NEAR(ls[i], std::log(p[i]), 1e-4);
}

TEST(Ops, L2NormalizeRows) {
  Tensor a({2, 2}, std::vector<float>{3, 4, 0, 0});
  Tensor norms;
  Tensor n = tensor::l2_normalize_rows(a, &norms);
  EXPECT_NEAR(n.at(0, 0), 0.6f, 1e-6);
  EXPECT_NEAR(n.at(0, 1), 0.8f, 1e-6);
  EXPECT_FLOAT_EQ(norms[0], 5.0f);
  // Zero row untouched.
  EXPECT_FLOAT_EQ(n.at(1, 0), 0.0f);
}

TEST(Ops, CosineSimilaritySelfIsOne) {
  util::Rng rng(17);
  Tensor a = Tensor::randn({4, 16}, rng);
  Tensor s = tensor::cosine_similarity(a, a);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(s.at(i, i), 1.0f, 1e-5);
}

TEST(Ops, CosineSimilarityOrthogonalIsZero) {
  Tensor a({1, 2}, std::vector<float>{1, 0});
  Tensor b({1, 2}, std::vector<float>{0, 1});
  EXPECT_NEAR(tensor::cosine_similarity(a, b)[0], 0.0f, 1e-6);
}

TEST(Ops, MeanStd) {
  auto ms = tensor::mean_std({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(ms.mean, 2.5);
  EXPECT_NEAR(ms.stddev, std::sqrt(1.25), 1e-12);
}

// Parameterized sweep: matmul correctness against a naive reference over
// many shapes.
class MatmulShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulShapes, MatchesNaive) {
  auto [m, k, n] = GetParam();
  util::Rng rng(100 + m * 7 + k * 3 + n);
  Tensor a = Tensor::randn({static_cast<std::size_t>(m), static_cast<std::size_t>(k)}, rng);
  Tensor b = Tensor::randn({static_cast<std::size_t>(k), static_cast<std::size_t>(n)}, rng);
  Tensor c = tensor::matmul(a, b);
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int kk = 0; kk < k; ++kk)
        acc += static_cast<double>(a.at(i, kk)) * b.at(kk, j);
      EXPECT_NEAR(c.at(i, j), acc, 1e-3) << "at (" << i << "," << j << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulShapes,
                         ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                                           std::make_tuple(7, 5, 3), std::make_tuple(16, 16, 16),
                                           std::make_tuple(1, 64, 1), std::make_tuple(33, 17, 9)));

}  // namespace
}  // namespace hdczsc
