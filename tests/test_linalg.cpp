#include <gtest/gtest.h>

#include "tensor/linalg.hpp"
#include "tensor/ops.hpp"

namespace hdczsc {
namespace {

using tensor::Tensor;

Tensor random_spd(std::size_t n, util::Rng& rng) {
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor spd = tensor::matmul_nt(a, a);  // A Aᵀ
  for (std::size_t i = 0; i < n; ++i) spd[i * n + i] += static_cast<float>(n);
  return spd;
}

TEST(Linalg, CholeskyReconstructs) {
  util::Rng rng(1);
  Tensor a = random_spd(6, rng);
  Tensor l = tensor::cholesky(a);
  Tensor recon = tensor::matmul_nt(l, l);
  EXPECT_LT(tensor::max_abs_diff(a, recon), 1e-3f);
}

TEST(Linalg, CholeskyRejectsIndefinite) {
  Tensor bad({2, 2}, std::vector<float>{1, 2, 2, 1});  // eigenvalues 3, -1
  EXPECT_THROW(tensor::cholesky(bad), std::domain_error);
}

TEST(Linalg, SolveSpdRoundTrip) {
  util::Rng rng(2);
  Tensor a = random_spd(8, rng);
  Tensor x_true = Tensor::randn({8, 3}, rng);
  Tensor b = tensor::matmul(a, x_true);
  Tensor x = tensor::solve_spd(a, b);
  EXPECT_LT(tensor::max_abs_diff(x, x_true), 1e-2f);
}

TEST(Linalg, GeneralSolveRoundTrip) {
  util::Rng rng(3);
  Tensor a = Tensor::randn({7, 7}, rng);
  for (std::size_t i = 0; i < 7; ++i) a[i * 7 + i] += 5.0f;  // well-conditioned
  Tensor x_true = Tensor::randn({7, 2}, rng);
  Tensor b = tensor::matmul(a, x_true);
  Tensor x = tensor::solve(a, b);
  EXPECT_LT(tensor::max_abs_diff(x, x_true), 1e-2f);
}

TEST(Linalg, SolveNeedsPivoting) {
  // Zero on the initial pivot: only solvable with row exchange.
  Tensor a({2, 2}, std::vector<float>{0, 1, 1, 0});
  Tensor b({2, 1}, std::vector<float>{3, 4});
  Tensor x = tensor::solve(a, b);
  EXPECT_NEAR(x[0], 4.0f, 1e-5);
  EXPECT_NEAR(x[1], 3.0f, 1e-5);
}

TEST(Linalg, SingularMatrixThrows) {
  Tensor a({2, 2}, std::vector<float>{1, 2, 2, 4});
  Tensor b({2, 1}, std::vector<float>{1, 1});
  EXPECT_THROW(tensor::solve(a, b), std::domain_error);
}

TEST(Linalg, InverseTimesSelfIsIdentity) {
  util::Rng rng(4);
  Tensor a = Tensor::randn({5, 5}, rng);
  for (std::size_t i = 0; i < 5; ++i) a[i * 5 + i] += 4.0f;
  Tensor inv = tensor::inverse(a);
  Tensor prod = tensor::matmul(a, inv);
  EXPECT_LT(tensor::max_abs_diff(prod, Tensor::eye(5)), 1e-3f);
}

TEST(Linalg, NonSquareRejected) {
  Tensor a({2, 3});
  EXPECT_THROW(tensor::cholesky(a), std::invalid_argument);
  EXPECT_THROW(tensor::inverse(a), std::invalid_argument);
}

class SpdSolveSizes : public ::testing::TestWithParam<int> {};

TEST_P(SpdSolveSizes, ResidualSmall) {
  const std::size_t n = static_cast<std::size_t>(GetParam());
  util::Rng rng(50 + n);
  Tensor a = random_spd(n, rng);
  Tensor b = Tensor::randn({n, 2}, rng);
  Tensor x = tensor::solve_spd(a, b);
  Tensor resid = tensor::sub(tensor::matmul(a, x), b);
  EXPECT_LT(resid.norm() / (b.norm() + 1e-9f), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpdSolveSizes, ::testing::Values(1, 2, 4, 9, 16, 32));

}  // namespace
}  // namespace hdczsc
