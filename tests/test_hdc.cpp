#include <gtest/gtest.h>

#include "hdc/codebook.hpp"
#include "hdc/hypervector.hpp"
#include "hdc/memory_report.hpp"

namespace hdczsc {
namespace {

using hdc::BinaryHV;
using hdc::BipolarHV;

TEST(BipolarHV, RandomIsPlusMinusOne) {
  util::Rng rng(1);
  auto hv = BipolarHV::random(512, rng);
  for (std::size_t i = 0; i < hv.dim(); ++i)
    EXPECT_TRUE(hv[i] == 1 || hv[i] == -1);
}

TEST(BipolarHV, BindSelfInverse) {
  util::Rng rng(2);
  auto a = BipolarHV::random(256, rng);
  auto b = BipolarHV::random(256, rng);
  EXPECT_EQ(a.bind(b).unbind(b), a);
}

TEST(BipolarHV, BindWithIdentityIsIdentity) {
  util::Rng rng(3);
  auto a = BipolarHV::random(128, rng);
  BipolarHV identity(128);  // all +1
  EXPECT_EQ(a.bind(identity), a);
}

TEST(BipolarHV, CosineSelfIsOne) {
  util::Rng rng(4);
  auto a = BipolarHV::random(100, rng);
  EXPECT_DOUBLE_EQ(a.cosine(a), 1.0);
}

TEST(BipolarHV, DimensionMismatchThrows) {
  util::Rng rng(5);
  auto a = BipolarHV::random(64, rng);
  auto b = BipolarHV::random(65, rng);
  EXPECT_THROW(a.bind(b), std::invalid_argument);
  EXPECT_THROW(a.dot(b), std::invalid_argument);
}

TEST(BipolarHV, PermuteInvertible) {
  util::Rng rng(6);
  auto a = BipolarHV::random(97, rng);
  EXPECT_EQ(a.permute(13).permute(-13), a);
  EXPECT_EQ(a.permute(97), a);  // full cycle
}

TEST(BipolarHV, PermuteDecorrelates) {
  util::Rng rng(7);
  auto a = BipolarHV::random(4096, rng);
  EXPECT_LT(std::abs(a.cosine(a.permute(1))), 0.1);
}

TEST(BundleAccumulator, MajorityPreservesSimilarity) {
  // A bundle of K random vectors stays similar to each constituent
  // (expected cosine ~ sqrt(2/(pi*K)) for large d).
  util::Rng rng(8);
  const std::size_t d = 4096;
  std::vector<BipolarHV> items;
  hdc::BundleAccumulator acc(d);
  for (int k = 0; k < 5; ++k) {
    items.push_back(BipolarHV::random(d, rng));
    acc.add(items.back());
  }
  auto bundle = acc.finalize(rng);
  for (const auto& item : items) EXPECT_GT(bundle.cosine(item), 0.2);
  // And dissimilar to an unrelated vector.
  EXPECT_LT(std::abs(bundle.cosine(BipolarHV::random(d, rng))), 0.1);
}

TEST(BundleAccumulator, WeightedAddBiasesResult) {
  util::Rng rng(9);
  const std::size_t d = 2048;
  auto a = BipolarHV::random(d, rng);
  auto b = BipolarHV::random(d, rng);
  hdc::BundleAccumulator acc(d);
  acc.add_weighted(a, 5);
  acc.add(b);
  auto bundle = acc.finalize(rng);
  EXPECT_GT(bundle.cosine(a), 0.9);
}

TEST(BinaryHV, XorBindSelfInverse) {
  util::Rng rng(10);
  auto a = BinaryHV::random(300, rng);
  auto b = BinaryHV::random(300, rng);
  EXPECT_EQ(a.bind(b).unbind(b), a);
}

TEST(BinaryHV, TailBitsMasked) {
  util::Rng rng(11);
  auto a = BinaryHV::random(70, rng);  // 6 bits in second word
  EXPECT_EQ(a.words().back() >> 6, 0u);
}

TEST(BinaryHV, SetGetRoundTrip) {
  BinaryHV a(130);
  a.set(0, true);
  a.set(64, true);
  a.set(129, true);
  EXPECT_TRUE(a.get(0));
  EXPECT_TRUE(a.get(64));
  EXPECT_TRUE(a.get(129));
  EXPECT_FALSE(a.get(1));
  a.set(64, false);
  EXPECT_FALSE(a.get(64));
  EXPECT_THROW(a.get(130), std::out_of_range);
}

TEST(BinaryHV, HammingSelfZero) {
  util::Rng rng(12);
  auto a = BinaryHV::random(256, rng);
  EXPECT_EQ(a.hamming(a), 0u);
  EXPECT_DOUBLE_EQ(a.similarity(a), 1.0);
}

TEST(BinaryHV, ConversionsAreExactInverses) {
  util::Rng rng(13);
  auto bip = BipolarHV::random(200, rng);
  EXPECT_EQ(bip.to_binary().to_bipolar(), bip);
  auto bin = BinaryHV::random(200, rng);
  EXPECT_EQ(bin.to_bipolar().to_binary(), bin);
}

TEST(BinaryHV, SimilarityEqualsBipolarCosine) {
  util::Rng rng(14);
  auto a = BipolarHV::random(512, rng);
  auto b = BipolarHV::random(512, rng);
  EXPECT_NEAR(a.cosine(b), a.to_binary().similarity(b.to_binary()), 1e-12);
}

TEST(BinaryHV, XorBindMatchesBipolarMultiplyBind) {
  util::Rng rng(15);
  auto a = BipolarHV::random(256, rng);
  auto b = BipolarHV::random(256, rng);
  EXPECT_EQ(a.bind(b).to_binary(), a.to_binary().bind(b.to_binary()));
}

TEST(BinaryHV, StorageBytesPacked) {
  BinaryHV a(1536);
  EXPECT_EQ(a.storage_bytes(), 1536u / 8);
}

TEST(Codebook, NearestRetrievesOwnItem) {
  util::Rng rng(16);
  hdc::Codebook cb(20, 1024, rng);
  for (std::size_t i = 0; i < cb.size(); ++i) EXPECT_EQ(cb.nearest(cb[i]), i);
}

TEST(Codebook, NearestRetrievesNoisyItem) {
  util::Rng rng(17);
  hdc::Codebook cb(20, 2048, rng);
  // Flip 20% of the components of item 7; it must still be retrieved.
  BipolarHV noisy = cb[7];
  for (std::size_t i = 0; i < noisy.dim() / 5; ++i)
    noisy[i] = static_cast<std::int8_t>(-noisy[i]);
  EXPECT_EQ(cb.nearest(noisy), 7u);
}

TEST(Codebook, OutOfRangeThrows) {
  util::Rng rng(18);
  hdc::Codebook cb(3, 64, rng);
  EXPECT_THROW(cb[3], std::out_of_range);
}

TEST(FactoredDictionary, AttributeVectorIsBoundPair) {
  util::Rng rng(19);
  std::vector<hdc::GroupValuePair> pairs{{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  hdc::FactoredDictionary dict(2, 2, pairs, 512, rng);
  for (std::size_t x = 0; x < 4; ++x) {
    auto expect = dict.groups()[pairs[x].group].bind(dict.values()[pairs[x].value]);
    EXPECT_EQ(dict.attribute_vector(x), expect);
  }
}

TEST(FactoredDictionary, DictionaryTensorMatchesVectors) {
  util::Rng rng(20);
  std::vector<hdc::GroupValuePair> pairs{{0, 0}, {1, 1}, {2, 0}};
  hdc::FactoredDictionary dict(3, 2, pairs, 128, rng);
  auto b = dict.dictionary_tensor();
  EXPECT_EQ(b.shape(), (tensor::Shape{3, 128}));
  for (std::size_t x = 0; x < 3; ++x) {
    auto hv = dict.attribute_vector(x);
    for (std::size_t i = 0; i < 128; ++i)
      EXPECT_FLOAT_EQ(b.at(x, i), static_cast<float>(hv[i]));
  }
}

TEST(FactoredDictionary, RejectsOutOfRangePairs) {
  util::Rng rng(21);
  std::vector<hdc::GroupValuePair> bad{{5, 0}};
  EXPECT_THROW(hdc::FactoredDictionary(2, 2, bad, 64, rng), std::invalid_argument);
}

TEST(MemoryReport, PaperNumbers) {
  // §III-A: G=28, V=61, α=312, d=1536 binary -> ~17 KB and 71% reduction.
  auto r = hdc::memory_report(28, 61, 312, 1536);
  EXPECT_EQ(r.factored_bytes, (28u + 61u) * 1536 / 8);  // 17,088 B
  EXPECT_NEAR(static_cast<double>(r.factored_bytes) / 1024.0, 16.7, 0.3);
  EXPECT_NEAR(r.reduction_percent, 71.0, 1.0);
}

TEST(MemoryReport, FactoredMatchesDictionaryAccounting) {
  util::Rng rng(22);
  std::vector<hdc::GroupValuePair> pairs{{0, 0}, {0, 1}, {1, 0}};
  hdc::FactoredDictionary dict(2, 2, pairs, 256, rng);
  auto r = hdc::memory_report(2, 2, 3, 256);
  EXPECT_EQ(dict.factored_storage_bytes(), r.factored_bytes);
  EXPECT_EQ(dict.flat_storage_bytes(), r.flat_bytes);
}

}  // namespace
}  // namespace hdczsc
