// GZSL serving: the joint seen+unseen label space with calibrated stacking
// (Chao et al. 2016) must behave identically across every serving layer —
// the penalized binary top-k bit-identical to a penalized float full-
// argsort reference on the flat AND sharded paths, the float path
// bit-identical to Trainer::evaluate_gzsl's subtract form, the partition
// persisted through the .hdcsnap v3 record (v1/v2 load as all-seen), and
// the seen/unseen decision telemetry surfaced per model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "core/pipeline.hpp"
#include "core/zsc_model.hpp"
#include "data/attribute_space.hpp"
#include "serve/model_registry.hpp"
#include "serve/snapshot_io.hpp"
#include "tensor/ops.hpp"
#include "util/timer.hpp"

namespace hdczsc {
namespace {

using serve::PrototypeStore;
using serve::SeenPenalty;
using serve::ShardedPrototypeStore;
using serve::TopK;
using tensor::Tensor;

/// Retrieval order shared with the sharded gather: score desc, label asc.
bool better(const TopK& a, const TopK& b) {
  return a.score > b.score || (a.score == b.score && a.label < b.label);
}

/// Full argsort of a [B, C] logit matrix, cut to k — the flat reference.
std::vector<std::vector<TopK>> flat_topk(const Tensor& logits, std::size_t k) {
  const std::size_t batch = logits.size(0), classes = logits.size(1);
  std::vector<std::vector<TopK>> out(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = logits.data() + b * classes;
    std::vector<TopK> all(classes);
    for (std::size_t c = 0; c < classes; ++c) all[c] = TopK{c, row[c]};
    std::sort(all.begin(), all.end(), better);
    all.resize(std::min(k, classes));
    out[b] = std::move(all);
  }
  return out;
}

void expect_identical(const std::vector<std::vector<TopK>>& got,
                      const std::vector<std::vector<TopK>>& want, const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t b = 0; b < got.size(); ++b) {
    ASSERT_EQ(got[b].size(), want[b].size()) << what << " query " << b;
    for (std::size_t i = 0; i < got[b].size(); ++i) {
      EXPECT_EQ(got[b][i].label, want[b][i].label) << what << " query " << b << " rank " << i;
      // Bit-identical, not approximately equal.
      EXPECT_EQ(got[b][i].score, want[b][i].score) << what << " query " << b << " rank " << i;
    }
  }
}

/// Mask with every third class seen — deliberately interleaved, not the
/// seen-first block layout, so nothing silently assumes contiguity.
std::vector<std::uint8_t> striped_mask(std::size_t classes) {
  std::vector<std::uint8_t> mask(classes, 0);
  for (std::size_t c = 0; c < classes; c += 3) mask[c] = 1;
  return mask;
}

PrototypeStore make_store(std::size_t classes, std::size_t dim, std::size_t expansion = 1,
                          std::uint64_t seed = 7, float scale = 4.0f) {
  util::Rng rng(seed);
  return PrototypeStore(Tensor::randn({classes, dim}, rng), scale, expansion);
}

/// Minimal untrained model (the serving layers only need eval forwards).
std::shared_ptr<core::ZscModel> make_model(std::size_t n_attributes, std::size_t dim) {
  util::Rng rng(0xABCDULL);
  core::ImageEncoderConfig icfg;
  icfg.arch = "resnet_micro_flat";
  icfg.proj_dim = dim;
  auto img = std::make_unique<core::ImageEncoder>(icfg, rng);
  data::AttributeSpace space = data::AttributeSpace::toy(n_attributes, 1, 1);
  auto attr = std::make_unique<core::HdcAttributeEncoder>(space, img->dim(), rng);
  return std::make_shared<core::ZscModel>(std::move(img), std::move(attr), 4.0f);
}

/// Joint seen+unseen snapshot over random attribute rows (seen first).
std::shared_ptr<serve::ModelSnapshot> make_gzsl(std::size_t n_seen, std::size_t n_unseen,
                                                std::size_t expansion = 1,
                                                std::size_t preferred_shards = 1) {
  const std::size_t n_attributes = 24, dim = 64;
  util::Rng rng(0xFACEULL);
  const Tensor seen_a = Tensor::randn({n_seen, n_attributes}, rng);
  const Tensor unseen_a = Tensor::randn({n_unseen, n_attributes}, rng);
  return serve::make_gzsl_snapshot(make_model(n_attributes, dim), seen_a, unseen_a,
                                   expansion, preferred_shards);
}

// -- penalty resolution ------------------------------------------------------

TEST(SeenPenalty, IntegerExactHammingOffsetWhenRepresentable) {
  // scale 4, D = 256: penalty = 2·s·Δ/D = Δ/32 — exactly representable for
  // any small integer Δ.
  const PrototypeStore store = make_store(20, 256);
  const std::vector<std::uint8_t> mask = striped_mask(20);

  const SeenPenalty p = store.resolve_penalty(8.0f / 32.0f, mask);
  EXPECT_TRUE(p.active());
  EXPECT_TRUE(p.integer_exact);
  EXPECT_EQ(p.offset, 8u);
  ASSERT_EQ(p.row_penalty.size(), 20u);
  ASSERT_EQ(p.row_offset.size(), 20u);
  for (std::size_t c = 0; c < 20; ++c) {
    EXPECT_EQ(p.row_offset[c], mask[c] ? 8u : 0u) << c;
    EXPECT_EQ(p.row_penalty[c], mask[c] ? 0.25f : 0.0f) << c;
  }

  // Fractional offsets and negative penalties fall back to float form.
  EXPECT_FALSE(store.resolve_penalty(0.3f, mask).integer_exact);
  EXPECT_TRUE(store.resolve_penalty(0.3f, mask).active());
  EXPECT_FALSE(store.resolve_penalty(-0.25f, mask).integer_exact);

  // penalty == 0 resolves to an inactive no-op.
  EXPECT_FALSE(store.resolve_penalty(0.0f, mask).active());

  // Empty mask = all seen (uniform handicap); wrong-sized mask throws.
  const SeenPenalty uniform = store.resolve_penalty(0.25f, {});
  EXPECT_TRUE(uniform.integer_exact);
  for (float v : uniform.row_penalty) EXPECT_EQ(v, 0.25f);
  EXPECT_THROW(store.resolve_penalty(0.25f, std::vector<std::uint8_t>(7)),
               std::invalid_argument);
}

// -- flat scoring paths ------------------------------------------------------

TEST(SeenPenalty, FloatPathMatchesEvaluateGzslSubtractForm) {
  const PrototypeStore store = make_store(40, 64);
  const std::vector<std::uint8_t> mask = striped_mask(40);
  const SeenPenalty p = store.resolve_penalty(0.7f, mask);
  util::Rng rng(11);
  const Tensor emb = Tensor::randn({5, 64}, rng);

  Tensor want = store.score_float(emb);
  float* W = want.data();
  for (std::size_t b = 0; b < want.size(0); ++b)
    for (std::size_t c = 0; c < want.size(1); ++c)
      if (mask[c]) W[b * want.size(1) + c] -= 0.7f;  // the evaluate_gzsl loop

  const Tensor got = store.score_float(emb, &p);
  EXPECT_EQ(tensor::max_abs_diff(got, want), 0.0f)
      << "penalized float logits must equal the evaluate_gzsl subtract form bit-for-bit";
}

TEST(SeenPenalty, BinaryIntegerOffsetFormMatchesDefinition) {
  const PrototypeStore store = make_store(12, 256, /*expansion=*/1, 13);
  const std::vector<std::uint8_t> mask = striped_mask(12);
  const SeenPenalty p = store.resolve_penalty(4.0f / 32.0f, mask);  // Δ = 4
  ASSERT_TRUE(p.integer_exact);

  util::Rng rng(17);
  const Tensor emb = Tensor::randn({3, 256}, rng);
  const Tensor got = store.score_binary(emb, &p);

  const float inv_d = 1.0f / static_cast<float>(store.code_bits());
  for (std::size_t b = 0; b < emb.size(0); ++b) {
    const hdc::BinaryHV q = store.encode_query(emb.data() + b * emb.size(1));
    for (std::size_t c = 0; c < store.n_classes(); ++c) {
      const auto h = static_cast<std::uint32_t>(q.hamming(store.binary_prototype(c)));
      const float want =
          store.scale() * (1.0f - 2.0f * static_cast<float>(h + (mask[c] ? 4u : 0u)) * inv_d);
      EXPECT_EQ(got.at(b, c), want) << "query " << b << " class " << c;
    }
  }
}

// -- the acceptance bar: penalized top-k vs penalized argsort ----------------

TEST(GzslTopk, PenalizedBinaryTopkBitIdenticalToPenalizedArgsort) {
  // Integer-exact penalty on a ragged label space: selection runs on
  // (h + Δ) keys and must reproduce the penalized float reference exactly
  // on the flat (S = 1) and every sharded layout.
  const PrototypeStore store = make_store(999, 128, /*expansion=*/2);  // D = 256
  const std::vector<std::uint8_t> mask = striped_mask(999);
  const SeenPenalty p = store.resolve_penalty(16.0f / 32.0f, mask);  // Δ = 16
  ASSERT_TRUE(p.integer_exact);

  util::Rng rng(19);
  const Tensor emb = Tensor::randn({4, 128}, rng);
  const auto want = flat_topk(store.score_binary(emb, &p), 10);
  for (std::size_t shards : {1u, 4u, 7u, 64u}) {
    const ShardedPrototypeStore sharded(store, shards);
    expect_identical(sharded.topk_binary(emb, 10, &p), want,
                     "penalized binary S=" + std::to_string(shards));
  }
}

TEST(GzslTopk, NonRepresentablePenaltyFallsBackToFloatAndStaysExact) {
  const PrototypeStore store = make_store(500, 128, /*expansion=*/1, 23);
  const std::vector<std::uint8_t> mask = striped_mask(500);
  const SeenPenalty p = store.resolve_penalty(0.37f, mask);
  ASSERT_FALSE(p.integer_exact);
  ASSERT_TRUE(p.active());

  util::Rng rng(29);
  const Tensor emb = Tensor::randn({3, 128}, rng);
  const auto want = flat_topk(store.score_binary(emb, &p), 8);
  for (std::size_t shards : {1u, 3u, 9u}) {
    const ShardedPrototypeStore sharded(store, shards);
    expect_identical(sharded.topk_binary(emb, 8, &p), want,
                     "fallback binary S=" + std::to_string(shards));
  }
}

TEST(GzslTopk, PenalizedFloatTopkBitIdenticalToPenalizedArgsort) {
  // Small dims keep every GEMM on one deterministic kernel path, so the
  // scores are bit-identical, not merely rank-identical.
  const PrototypeStore store = make_store(100, 64);
  const std::vector<std::uint8_t> mask = striped_mask(100);
  const SeenPenalty p = store.resolve_penalty(0.42f, mask);

  util::Rng rng(31);
  const Tensor emb = Tensor::randn({5, 64}, rng);
  const auto want = flat_topk(store.score_float(emb, &p), 7);
  for (std::size_t shards : {1u, 2u, 5u, 16u}) {
    const ShardedPrototypeStore sharded(store, shards);
    expect_identical(sharded.topk_float(emb, 7, &p), want,
                     "penalized float S=" + std::to_string(shards));
  }
}

// -- engine: one knob, every entry point -------------------------------------

TEST(GzslEngine, LogitsTopkAndClassifyAgreeUnderPenalty) {
  auto snapshot = make_gzsl(30, 10);
  util::Rng rng(37);
  const Tensor images = Tensor::randn({5, 3, 32, 32}, rng);
  for (serve::ScoringMode mode :
       {serve::ScoringMode::kFloatCosine, serve::ScoringMode::kBinaryHamming}) {
    const serve::InferenceEngine engine(snapshot, mode, /*n_shards=*/3,
                                        /*seen_penalty=*/0.5f);
    EXPECT_EQ(engine.seen_penalty(), 0.5f);
    const auto want = flat_topk(engine.logits(images), 5);
    expect_identical(engine.topk_batch(images, 5), want, scoring_mode_name(mode));
    const auto preds = engine.classify_batch(images);
    for (std::size_t b = 0; b < preds.size(); ++b) {
      EXPECT_EQ(preds[b].label, want[b][0].label) << scoring_mode_name(mode);
      EXPECT_EQ(preds[b].score, want[b][0].score) << scoring_mode_name(mode);
    }
  }
}

TEST(GzslEngine, PenaltyShiftsDecisionsAcrossThePartition) {
  auto snapshot = make_gzsl(30, 10);
  EXPECT_TRUE(snapshot->has_partition());
  EXPECT_EQ(snapshot->n_seen(), 30u);
  EXPECT_EQ(snapshot->n_unseen(), 10u);

  util::Rng rng(41);
  const Tensor images = Tensor::randn({8, 3, 32, 32}, rng);
  // A penalty far beyond the logit range [-s, s] evicts every decision
  // from the seen domain; penalty 0 must leave the plain ranking intact.
  const serve::InferenceEngine plain(snapshot, serve::ScoringMode::kBinaryHamming, 1, 0.0f);
  const serve::InferenceEngine hard(snapshot, serve::ScoringMode::kBinaryHamming, 1,
                                    /*seen_penalty=*/100.0f);
  const serve::InferenceEngine unpartitioned(
      std::make_shared<const serve::ModelSnapshot>(make_model(24, 64),
                                                   snapshot->class_attributes()),
      serve::ScoringMode::kBinaryHamming, 1, 0.0f);
  for (const auto& p : hard.classify_batch(images))
    EXPECT_GE(p.label, 30u) << "a 100-point handicap must evict all seen-class decisions";
  const auto a = plain.classify_batch(images);
  const auto b = unpartitioned.classify_batch(images);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].label, b[i].label);
}

// -- snapshot layout and the v3 record ---------------------------------------

TEST(GzslSnapshot, MakeGzslSnapshotConcatenatesSeenFirst) {
  const std::size_t n_attributes = 24;
  util::Rng rng(0xFACEULL);
  const Tensor seen_a = Tensor::randn({6, n_attributes}, rng);
  const Tensor unseen_a = Tensor::randn({4, n_attributes}, rng);
  auto snap = serve::make_gzsl_snapshot(make_model(n_attributes, 64), seen_a, unseen_a);

  EXPECT_EQ(snap->n_classes(), 10u);
  EXPECT_EQ(snap->n_seen(), 6u);
  EXPECT_EQ(snap->n_unseen(), 4u);
  for (std::size_t c = 0; c < 10; ++c) EXPECT_EQ(snap->is_seen(c), c < 6) << c;
  const Tensor& joint = snap->class_attributes();
  ASSERT_EQ(joint.size(0), 10u);
  for (std::size_t i = 0; i < seen_a.numel(); ++i)
    ASSERT_EQ(joint.data()[i], seen_a.data()[i]);
  for (std::size_t i = 0; i < unseen_a.numel(); ++i)
    ASSERT_EQ(joint.data()[seen_a.numel() + i], unseen_a.data()[i]);

  // Attribute-width mismatch is rejected up front.
  util::Rng rng2(1);
  EXPECT_THROW(serve::make_gzsl_snapshot(make_model(n_attributes, 64), seen_a,
                                         Tensor::randn({4, n_attributes + 1}, rng2)),
               std::invalid_argument);
}

TEST(GzslSnapshotIo, V3RoundTripPreservesPartition) {
  auto snapshot = make_gzsl(30, 10, /*expansion=*/2, /*preferred_shards=*/4);
  std::stringstream ss;
  serve::save_snapshot(ss, *snapshot);

  const auto info = serve::inspect_snapshot(ss);
  EXPECT_EQ(info.version, serve::kSnapshotVersion);
  EXPECT_TRUE(info.has_partition);
  EXPECT_EQ(info.n_seen, 30u);
  EXPECT_EQ(info.n_classes, 40u);

  ss.seekg(0);
  auto loaded = serve::load_snapshot(ss);
  EXPECT_TRUE(loaded->has_partition());
  EXPECT_EQ(loaded->n_seen(), 30u);
  EXPECT_EQ(loaded->seen_mask(), snapshot->seen_mask());
  EXPECT_EQ(loaded->preferred_shards(), 4u);

  // The persisted partition drives the same penalized scores.
  util::Rng rng(43);
  const Tensor probe = Tensor::randn({4, 3, 32, 32}, rng);
  for (serve::ScoringMode mode :
       {serve::ScoringMode::kFloatCosine, serve::ScoringMode::kBinaryHamming}) {
    const serve::InferenceEngine a(snapshot, mode, 1, 0.5f);
    const serve::InferenceEngine b(loaded, mode, 1, 0.5f);
    EXPECT_EQ(tensor::max_abs_diff(a.logits(probe), b.logits(probe)), 0.0f)
        << scoring_mode_name(mode);
  }
}

TEST(GzslSnapshotIo, SingleSpaceSnapshotRoundTripsWithNoPartition) {
  util::Rng rng(47);
  auto snap = std::make_shared<const serve::ModelSnapshot>(make_model(24, 64),
                                                           Tensor::randn({13, 24}, rng));
  ASSERT_FALSE(snap->has_partition());
  std::stringstream ss;
  serve::save_snapshot(ss, *snap);
  const auto info = serve::inspect_snapshot(ss);
  EXPECT_FALSE(info.has_partition);
  EXPECT_EQ(info.n_seen, 13u);
  ss.seekg(0);
  auto loaded = serve::load_snapshot(ss);
  EXPECT_FALSE(loaded->has_partition());
  EXPECT_EQ(loaded->n_seen(), 13u);
}

TEST(GzslSnapshotIo, V2FileLoadsAsAllSeen) {
  auto snapshot = make_gzsl(30, 10);  // C = 40 → one mask word
  std::stringstream ss;
  serve::save_snapshot(ss, *snapshot);
  std::string bytes = ss.str();
  // Reconstruct the version-2 layout byte-for-byte: v3 appended exactly
  // one u64 seen count + ⌈40/64⌉ = 1 mask word, v4 one u8 has_quant flag,
  // v5 one u8 has_ivf flag and v6 the 20-byte lineage block (u64 version +
  // f32 penalty + u64 checksum) immediately before the end marker, so
  // dropping those 38 bytes and rewriting the u32 version field yields a
  // genuine v2 file.
  ASSERT_EQ(bytes.substr(bytes.size() - 4), "PANS");
  bytes.erase(bytes.size() - 4 - 38, 38);
  const std::uint32_t v2 = 2;
  bytes.replace(4, 4, reinterpret_cast<const char*>(&v2), 4);

  std::istringstream v2_file(bytes);
  auto loaded = serve::load_snapshot(v2_file);
  EXPECT_FALSE(loaded->has_partition());
  EXPECT_EQ(loaded->n_seen(), 40u);

  std::istringstream v2_again(bytes);
  const auto info = serve::inspect_snapshot(v2_again);
  EXPECT_EQ(info.version, 2u);
  EXPECT_FALSE(info.has_partition);

  // And it still scores bit-identically to the v3 artifact.
  util::Rng rng(53);
  const Tensor probe = Tensor::randn({3, 3, 32, 32}, rng);
  std::stringstream v3_file(ss.str());
  auto v3_loaded = serve::load_snapshot(v3_file);
  EXPECT_EQ(tensor::max_abs_diff(
                loaded->prototypes().score_float(loaded->embed(probe)),
                v3_loaded->prototypes().score_float(v3_loaded->embed(probe))),
            0.0f);
}

TEST(GzslSnapshotIo, CorruptPartitionRecordRejectedByName) {
  auto snapshot = make_gzsl(30, 10);  // C = 40: tail is n_seen u64 + 1 mask word +
                                      // has_quant u8 + has_ivf u8 + the 20-byte
                                      // v6 lineage block + "PANS"
  std::stringstream ss;
  serve::save_snapshot(ss, *snapshot);
  const std::string bytes = ss.str();
  const std::size_t mask_off = bytes.size() - 4 - 20 - 1 - 1 - 8;  // one mask word
  const std::size_t n_seen_off = mask_off - 8;

  // Seen count beyond the class count.
  {
    std::string bad = bytes;
    bad[n_seen_off] = 99;  // little-endian low byte: n_seen = 99 > 40
    std::istringstream f(bad);
    try {
      serve::load_snapshot(f);
      FAIL() << "expected the corrupt seen count to be rejected";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("seen-class count"), std::string::npos)
          << e.what();
    }
  }
  // Mask popcount disagreeing with the count.
  {
    std::string bad = bytes;
    bad[mask_off] = static_cast<char>(bad[mask_off] ^ 0x01);  // flip seen bit of class 0
    std::istringstream f(bad);
    try {
      serve::load_snapshot(f);
      FAIL() << "expected the corrupt mask to be rejected";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("seen mask"), std::string::npos) << e.what();
    }
  }
  // Mask bits beyond the class count (tail bits must be zero).
  {
    std::string bad = bytes;
    bad[mask_off + 5] = static_cast<char>(0xFF);  // bits 40..47
    std::istringstream f(bad);
    EXPECT_THROW(serve::load_snapshot(f), std::runtime_error);
  }
}

// -- registry: per-model penalty + decision telemetry ------------------------

TEST(GzslRegistry, PerModelPenaltyAndDomainTelemetry) {
  auto snapshot = make_gzsl(30, 10);
  serve::ServerConfig cfg;
  cfg.n_workers = 1;
  cfg.batch.max_batch = 4;
  cfg.batch.max_delay_ms = 0.5;
  cfg.seen_penalty = 100.0f;  // evict every decision from the seen domain
  serve::ModelRegistry registry(cfg);
  registry.load("gzsl", snapshot, serve::ScoringMode::kBinaryHamming);
  EXPECT_EQ(registry.engine("gzsl")->seen_penalty(), 100.0f);

  util::Rng rng(59);
  const std::size_t n = 12;
  for (std::size_t i = 0; i < n; ++i) {
    serve::InferRequest req;
    req.model_key = "gzsl";
    req.input = Tensor::randn({3, 32, 32}, rng);
    req.k = 1;
    const serve::InferResult r = registry.submit(std::move(req)).get();
    ASSERT_EQ(r.status, serve::InferStatus::kOk) << "request " << i;
    ASSERT_FALSE(r.topk.empty());
    EXPECT_GE(r.topk[0].label, 30u) << "request " << i;
  }
  // The worker records domain counters *after* resolving the future, so
  // give the last batch a moment to land before asserting.
  util::Timer t;
  serve::ServingStats::Summary s;
  do {
    s = registry.stats("gzsl");
  } while (s.seen_hits + s.unseen_hits < n && t.seconds() < 5.0);
  EXPECT_EQ(s.seen_hits, 0u);
  EXPECT_EQ(s.unseen_hits, n);
  EXPECT_EQ(s.domain_harmonic, 0.0);  // one-domain collapse ⇒ H = 0
  registry.to_table().print();        // penalty / seen / unseen / H columns render
  registry.stop_all();
}

// -- pipeline: snapshot_gzsl artifacts ---------------------------------------

TEST(GzslPipeline, EmitsJointSnapshotAndSeenEvalArtifacts) {
  core::PipelineConfig cfg;
  cfg.n_classes = 10;
  cfg.images_per_class = 3;
  cfg.train_instances = 2;
  cfg.image_size = 32;
  cfg.split = "zs";
  cfg.zs_train_classes = 7;
  cfg.model.image.arch = "resnet_micro_flat";
  cfg.model.image.proj_dim = 64;
  cfg.run_phase1 = false;
  cfg.run_phase2 = false;
  cfg.phase3 = {1, 8, 1e-2f, 1e-4f, 5.0f, true, false};
  cfg.augment.enabled = false;
  cfg.snapshot_gzsl = true;
  const std::string path = testing::TempDir() + "gzsl_pipeline.hdcsnap";
  cfg.snapshot_path = path;

  auto tp = core::run_pipeline_trained(cfg);
  ASSERT_EQ(tp.seen_class_attributes.size(0), 7u);
  ASSERT_EQ(tp.seen_classes.size(), 7u);
  // Held-out instance range [2, 3) of each of the 7 training classes.
  ASSERT_EQ(tp.seen_set.images.size(0), 7u);
  for (std::size_t l : tp.seen_set.labels) EXPECT_LT(l, 7u);

  auto loaded = serve::load_snapshot_file(path);
  EXPECT_TRUE(loaded->has_partition());
  EXPECT_EQ(loaded->n_seen(), 7u);
  EXPECT_EQ(loaded->n_unseen(), 3u);
  std::remove(path.c_str());

  // Guard rails: GZSL artifacts need held-out instances and a class split.
  core::PipelineConfig bad = cfg;
  bad.snapshot_path.clear();
  bad.train_instances = bad.images_per_class;
  EXPECT_THROW(core::run_pipeline_trained(bad), std::invalid_argument);
  core::PipelineConfig nozs = cfg;
  nozs.snapshot_path.clear();
  nozs.split = "nozs";
  nozs.nozs_classes = 10;
  EXPECT_THROW(core::run_pipeline_trained(nozs), std::invalid_argument);
}

}  // namespace
}  // namespace hdczsc
