#include <gtest/gtest.h>

#include <cmath>

#include "nn/linear.hpp"
#include "optim/optimizer.hpp"
#include "optim/scheduler.hpp"

namespace hdczsc {
namespace {

using nn::Parameter;
using nn::Tensor;

/// Quadratic bowl f(w) = 0.5 ||w - target||²; grad = w - target.
void quadratic_grad(Parameter& p, const Tensor& target) {
  p.zero_grad();
  for (std::size_t i = 0; i < p.value.numel(); ++i)
    p.grad[i] = p.value[i] - target[i];
}

TEST(Sgd, ConvergesOnQuadratic) {
  Parameter p(Tensor({4}, 5.0f));
  Tensor target = Tensor::from_vector({1.0f, -2.0f, 0.5f, 3.0f});
  optim::Sgd opt({&p}, 0.2f);
  for (int i = 0; i < 100; ++i) {
    quadratic_grad(p, target);
    opt.step();
  }
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(p.value[i], target[i], 1e-3);
}

TEST(Sgd, MomentumAcceleratesDescent) {
  Parameter plain(Tensor({1}, 10.0f));
  Parameter mom(Tensor({1}, 10.0f));
  Tensor target({1});
  optim::Sgd opt_plain({&plain}, 0.02f);
  optim::Sgd opt_mom({&mom}, 0.02f, 0.9f);
  for (int i = 0; i < 25; ++i) {
    quadratic_grad(plain, target);
    opt_plain.step();
    quadratic_grad(mom, target);
    opt_mom.step();
  }
  EXPECT_LT(std::abs(mom.value[0]), std::abs(plain.value[0]));
}

TEST(Adam, ConvergesOnQuadratic) {
  Parameter p(Tensor({3}, -4.0f));
  Tensor target = Tensor::from_vector({2.0f, 0.0f, -1.0f});
  optim::Adam opt({&p}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    quadratic_grad(p, target);
    opt.step();
  }
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(p.value[i], target[i], 1e-2);
}

TEST(AdamW, DecayIsDecoupledFromAdaptiveScaling) {
  // With zero gradient, AdamW still shrinks weights by lr*wd*w per step,
  // while coupled-decay Adam would divide by sqrt(v)+eps and blow up the
  // effective decay. Verify the exact decoupled trajectory.
  Parameter p(Tensor({1}, 1.0f));
  optim::AdamW opt({&p}, 0.1f, 0.5f);
  p.zero_grad();
  opt.step();
  EXPECT_NEAR(p.value[0], 1.0f - 0.1f * 0.5f * 1.0f, 1e-6);
}

TEST(AdamW, SkipsFrozenParameters) {
  Parameter p(Tensor({2}, 1.0f));
  p.requires_grad = false;
  optim::AdamW opt({&p}, 0.5f, 0.5f);
  p.grad.fill(1.0f);
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.0f);
}

TEST(Optimizer, ZeroGradClears) {
  Parameter p(Tensor({2}, 1.0f));
  p.grad.fill(3.0f);
  optim::Sgd opt({&p}, 0.1f);
  opt.zero_grad();
  EXPECT_FLOAT_EQ(p.grad[0], 0.0f);
}

TEST(Optimizer, ClipGradNormScalesDown) {
  Parameter p(Tensor({2}));
  p.grad = Tensor::from_vector({3.0f, 4.0f});  // norm 5
  optim::Sgd opt({&p}, 0.1f);
  const float pre = opt.clip_grad_norm(1.0f);
  EXPECT_NEAR(pre, 5.0f, 1e-5);
  EXPECT_NEAR(p.grad.norm(), 1.0f, 1e-5);
}

TEST(Optimizer, ClipGradNormNoopBelowThreshold) {
  Parameter p(Tensor({2}));
  p.grad = Tensor::from_vector({0.3f, 0.4f});
  optim::Sgd opt({&p}, 0.1f);
  opt.clip_grad_norm(10.0f);
  EXPECT_NEAR(p.grad.norm(), 0.5f, 1e-6);
}

TEST(Cosine, StartsAtBaseEndsAtMin) {
  Parameter p(Tensor({1}));
  optim::Sgd opt({&p}, 1.0f);
  optim::CosineAnnealingLR sched(opt, 10, 0.1f);
  EXPECT_NEAR(sched.lr_at(0), 1.0f, 1e-6);
  EXPECT_NEAR(sched.lr_at(10), 0.1f, 1e-6);
  EXPECT_NEAR(sched.lr_at(5), 0.55f, 1e-6);  // midpoint of cosine
}

TEST(Cosine, MonotoneNonIncreasing) {
  Parameter p(Tensor({1}));
  optim::Sgd opt({&p}, 1.0f);
  optim::CosineAnnealingLR sched(opt, 20);
  float prev = sched.lr_at(0);
  for (long t = 1; t <= 20; ++t) {
    const float cur = sched.lr_at(t);
    EXPECT_LE(cur, prev + 1e-7f);
    prev = cur;
  }
}

TEST(Cosine, StepUpdatesOptimizer) {
  Parameter p(Tensor({1}));
  optim::Sgd opt({&p}, 1.0f);
  optim::CosineAnnealingLR sched(opt, 2);
  sched.step();
  EXPECT_NEAR(opt.lr(), 0.5f, 1e-6);
  sched.step();
  EXPECT_NEAR(opt.lr(), 0.0f, 1e-6);
}

TEST(StepLr, DecaysEveryStepSize) {
  Parameter p(Tensor({1}));
  optim::Sgd opt({&p}, 1.0f);
  optim::StepLR sched(opt, 3, 0.1f);
  EXPECT_NEAR(sched.lr_at(2), 1.0f, 1e-6);
  EXPECT_NEAR(sched.lr_at(3), 0.1f, 1e-6);
  EXPECT_NEAR(sched.lr_at(6), 0.01f, 1e-6);
}

TEST(EndToEnd, LinearRegressionConvergesWithAdamW) {
  // y = x * Wᵀ + b recovery from noisy data: full optimizer + layer loop.
  util::Rng rng(9);
  nn::Linear model(3, 1, rng);
  Tensor w_true = Tensor::from_vector({1.5f, -2.0f, 0.5f});
  optim::AdamW opt(model.parameters(), 0.05f, 0.0f);
  for (int step = 0; step < 400; ++step) {
    Tensor x = Tensor::randn({16, 3}, rng);
    Tensor y_true({16, 1});
    for (std::size_t i = 0; i < 16; ++i) {
      float acc = 0.3f;  // true bias
      for (std::size_t j = 0; j < 3; ++j) acc += x.at(i, j) * w_true[j];
      y_true[i] = acc;
    }
    Tensor y = model.forward(x, true);
    Tensor grad({16, 1});
    for (std::size_t i = 0; i < 16; ++i) grad[i] = (y[i] - y_true[i]) / 16.0f;
    opt.zero_grad();
    model.backward(grad);
    opt.step();
  }
  for (std::size_t j = 0; j < 3; ++j)
    EXPECT_NEAR(model.weight().value[j], w_true[j], 0.05f);
  EXPECT_NEAR(model.bias().value[0], 0.3f, 0.05f);
}

}  // namespace
}  // namespace hdczsc
