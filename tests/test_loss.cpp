#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck.hpp"
#include "nn/loss.hpp"
#include "tensor/ops.hpp"

namespace hdczsc {
namespace {

using nn::Tensor;

TEST(CrossEntropy, UniformLogitsGiveLogC) {
  Tensor logits({2, 4});
  auto res = nn::cross_entropy(logits, {0, 3});
  EXPECT_NEAR(res.value, std::log(4.0f), 1e-5);
}

TEST(CrossEntropy, ConfidentCorrectIsNearZero) {
  Tensor logits({1, 3}, std::vector<float>{20.0f, 0.0f, 0.0f});
  auto res = nn::cross_entropy(logits, {0});
  EXPECT_LT(res.value, 1e-6f);
}

TEST(CrossEntropy, GradIsSoftmaxMinusOneHotOverB) {
  Tensor logits({2, 3}, std::vector<float>{1, 2, 3, 0, 0, 0});
  auto res = nn::cross_entropy(logits, {2, 1});
  Tensor p = tensor::softmax_rows(logits);
  EXPECT_NEAR(res.grad_logits.at(0, 2), (p.at(0, 2) - 1.0f) / 2.0f, 1e-6);
  EXPECT_NEAR(res.grad_logits.at(0, 0), p.at(0, 0) / 2.0f, 1e-6);
  EXPECT_NEAR(res.grad_logits.at(1, 1), (p.at(1, 1) - 1.0f) / 2.0f, 1e-6);
}

TEST(CrossEntropy, NumericalGradCheck) {
  util::Rng rng(1);
  Tensor logits = Tensor::randn({3, 5}, rng);
  std::vector<std::size_t> targets{1, 4, 0};
  auto res = nn::cross_entropy(logits, targets);
  auto f = [&](const Tensor& l) {
    return static_cast<double>(nn::cross_entropy(l, targets).value);
  };
  for (std::size_t i = 0; i < logits.numel(); i += 3) {
    const double num = testing::numerical_grad(f, logits.clone(), i);
    EXPECT_LT(testing::grad_rel_err(res.grad_logits[i], num), 2e-2) << "idx " << i;
  }
}

TEST(CrossEntropy, RejectsBadTargets) {
  Tensor logits({1, 2});
  EXPECT_THROW(nn::cross_entropy(logits, {5}), std::out_of_range);
  EXPECT_THROW(nn::cross_entropy(logits, {0, 1}), std::invalid_argument);
}

TEST(Bce, MatchesClosedFormAtZeroLogit) {
  Tensor logits({1, 2});
  Tensor targets({1, 2}, std::vector<float>{1.0f, 0.0f});
  auto res = nn::weighted_bce_with_logits(logits, targets);
  EXPECT_NEAR(res.value, std::log(2.0f), 1e-5);  // both terms are log 2
}

TEST(Bce, StableAtExtremeLogits) {
  Tensor logits({1, 2}, std::vector<float>{60.0f, -60.0f});
  Tensor targets({1, 2}, std::vector<float>{1.0f, 0.0f});
  auto res = nn::weighted_bce_with_logits(logits, targets);
  EXPECT_TRUE(std::isfinite(res.value));
  EXPECT_LT(res.value, 1e-5f);
}

TEST(Bce, PosWeightScalesPositiveTerm) {
  Tensor logits({1, 1}, std::vector<float>{0.0f});
  Tensor targets({1, 1}, std::vector<float>{1.0f});
  Tensor w({1}, std::vector<float>{3.0f});
  auto weighted = nn::weighted_bce_with_logits(logits, targets, w);
  auto plain = nn::weighted_bce_with_logits(logits, targets);
  EXPECT_NEAR(weighted.value, 3.0f * plain.value, 1e-5);
}

TEST(Bce, NumericalGradCheck) {
  util::Rng rng(2);
  Tensor logits = Tensor::randn({2, 4}, rng);
  Tensor targets({2, 4}, std::vector<float>{1, 0, 0, 1, 0, 1, 0, 0});
  Tensor w = Tensor::from_vector({2.0f, 1.0f, 0.5f, 4.0f});
  auto res = nn::weighted_bce_with_logits(logits, targets, w);
  auto f = [&](const Tensor& l) {
    return static_cast<double>(nn::weighted_bce_with_logits(l, targets, w).value);
  };
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    const double num = testing::numerical_grad(f, logits.clone(), i);
    EXPECT_LT(testing::grad_rel_err(res.grad_logits[i], num), 2e-2) << "idx " << i;
  }
}

TEST(Bce, ShapeMismatchThrows) {
  EXPECT_THROW(nn::weighted_bce_with_logits(Tensor({1, 2}), Tensor({2, 1})),
               std::invalid_argument);
  EXPECT_THROW(nn::weighted_bce_with_logits(Tensor({1, 2}), Tensor({1, 2}), Tensor({3})),
               std::invalid_argument);
}

TEST(BcePosWeights, ReflectsImbalance) {
  // Attribute 0 active in 1/4 rows -> ratio 3; attribute 1 active in all
  // rows -> ratio 0 clamped to min.
  Tensor targets({4, 2}, std::vector<float>{1, 1, 0, 1, 0, 1, 0, 1});
  Tensor w = nn::bce_pos_weights_from_targets(targets, 0.5f, 20.0f);
  EXPECT_NEAR(w[0], 3.0f, 1e-5);
  EXPECT_NEAR(w[1], 0.5f, 1e-5);
}

TEST(BcePosWeights, AllNegativeClampsToMax) {
  Tensor targets({4, 1});
  Tensor w = nn::bce_pos_weights_from_targets(targets, 0.5f, 20.0f);
  EXPECT_FLOAT_EQ(w[0], 20.0f);
}

}  // namespace
}  // namespace hdczsc
