// Property-style sweeps over hypervector dimensionality: the statistical
// claims HDC rests on ("randomly initialized vectors tend to become
// quasi-orthogonal as dimensionality grows", §II-b) and preservation of
// quasi-orthogonality under binding (§III-A).
#include <gtest/gtest.h>

#include <cmath>

#include "hdc/codebook.hpp"
#include "hdc/hypervector.hpp"

namespace hdczsc {
namespace {

using hdc::BipolarHV;

class QuasiOrthogonality : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuasiOrthogonality, MeanAbsCosineNearTheory) {
  const std::size_t d = GetParam();
  util::Rng rng(1000 + d);
  std::vector<BipolarHV> hvs;
  for (int i = 0; i < 12; ++i) hvs.push_back(BipolarHV::random(d, rng));
  const double measured = hdc::mean_abs_pairwise_cosine(hvs);
  // For i.i.d. Rademacher, |cos| has mean sqrt(2/(pi d)).
  const double theory = std::sqrt(2.0 / (3.14159265358979 * static_cast<double>(d)));
  EXPECT_NEAR(measured, theory, 3.0 * theory);
  EXPECT_LT(measured, 6.0 / std::sqrt(static_cast<double>(d)));
}

TEST_P(QuasiOrthogonality, ShrinksWithDimension) {
  const std::size_t d = GetParam();
  util::Rng rng(2000 + d);
  std::vector<BipolarHV> lo, hi;
  for (int i = 0; i < 10; ++i) {
    lo.push_back(BipolarHV::random(d, rng));
    hi.push_back(BipolarHV::random(d * 16, rng));
  }
  EXPECT_GT(hdc::mean_abs_pairwise_cosine(lo), hdc::mean_abs_pairwise_cosine(hi));
}

TEST_P(QuasiOrthogonality, BindingPreservesQuasiOrthogonality) {
  // b = g ⊙ v is quasi-orthogonal to both operands (§III-A).
  const std::size_t d = GetParam();
  util::Rng rng(3000 + d);
  const double bound = 5.0 / std::sqrt(static_cast<double>(d));
  for (int trial = 0; trial < 8; ++trial) {
    auto g = BipolarHV::random(d, rng);
    auto v = BipolarHV::random(d, rng);
    auto b = g.bind(v);
    EXPECT_LT(std::abs(b.cosine(g)), bound);
    EXPECT_LT(std::abs(b.cosine(v)), bound);
  }
}

TEST_P(QuasiOrthogonality, DistinctBoundPairsAreQuasiOrthogonal) {
  // b_x = g_y ⊙ v_z for distinct (y, z) pairs stay mutually
  // quasi-orthogonal — the factored dictionary acts like fresh random
  // codes at the attribute level.
  const std::size_t d = GetParam();
  util::Rng rng(4000 + d);
  hdc::Codebook groups(4, d, rng), values(4, d, rng);
  std::vector<BipolarHV> bound;
  for (std::size_t y = 0; y < 4; ++y)
    for (std::size_t z = 0; z < 4; ++z) bound.push_back(groups[y].bind(values[z]));
  // Pairs sharing a group (or value) factor are also quasi-orthogonal:
  // (g⊙v1)·(g⊙v2) = v1·v2.
  const double mean_cos = hdc::mean_abs_pairwise_cosine(bound);
  EXPECT_LT(mean_cos, 4.0 / std::sqrt(static_cast<double>(d)));
}

INSTANTIATE_TEST_SUITE_P(Dims, QuasiOrthogonality,
                         ::testing::Values(std::size_t{256}, std::size_t{512},
                                           std::size_t{1024}, std::size_t{1536},
                                           std::size_t{2048}));

class BundleCapacity : public ::testing::TestWithParam<int> {};

TEST_P(BundleCapacity, ConstituentsRemainDetectable) {
  // Bundling K items: each constituent stays the nearest codebook entry.
  const int k = GetParam();
  const std::size_t d = 4096;
  util::Rng rng(5000 + k);
  hdc::Codebook cb(32, d, rng);
  hdc::BundleAccumulator acc(d);
  for (int i = 0; i < k; ++i) acc.add(cb[static_cast<std::size_t>(i)]);
  auto bundle = acc.finalize(rng);
  for (int i = 0; i < k; ++i) {
    double sim_in = bundle.cosine(cb[static_cast<std::size_t>(i)]);
    // Any non-constituent must score lower.
    for (std::size_t j = static_cast<std::size_t>(k); j < cb.size(); ++j)
      EXPECT_GT(sim_in, bundle.cosine(cb[j]));
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, BundleCapacity, ::testing::Values(1, 3, 5, 7));

TEST(BinaryBipolarDuality, SimilarityIdentityHoldsAcrossDims) {
  for (std::size_t d : {63u, 64u, 65u, 127u, 1000u}) {
    util::Rng rng(6000 + d);
    auto a = BipolarHV::random(d, rng);
    auto b = BipolarHV::random(d, rng);
    EXPECT_NEAR(a.cosine(b), a.to_binary().similarity(b.to_binary()), 1e-12)
        << "dim " << d;
  }
}

}  // namespace
}  // namespace hdczsc
