#include <gtest/gtest.h>

#include <cmath>

#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "tensor/ops.hpp"

namespace hdczsc {
namespace {

using nn::Tensor;

TEST(Linear, ForwardKnownValues) {
  util::Rng rng(1);
  nn::Linear fc(2, 2, rng);
  fc.weight().value = Tensor({2, 2}, std::vector<float>{1, 2, 3, 4});
  fc.bias().value = Tensor({2}, std::vector<float>{10, 20});
  Tensor x({1, 2}, std::vector<float>{1, 1});
  Tensor y = fc.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 13.0f);  // 1*1+2*1+10
  EXPECT_FLOAT_EQ(y.at(0, 1), 27.0f);  // 3*1+4*1+20
}

TEST(Linear, RejectsWrongInputWidth) {
  util::Rng rng(2);
  nn::Linear fc(3, 2, rng);
  EXPECT_THROW(fc.forward(Tensor({1, 4}), false), std::invalid_argument);
}

TEST(Linear, BackwardBeforeForwardThrows) {
  util::Rng rng(3);
  nn::Linear fc(2, 2, rng);
  EXPECT_THROW(fc.backward(Tensor({1, 2})), std::logic_error);
}

TEST(Linear, ParameterCount) {
  util::Rng rng(4);
  nn::Linear fc(10, 5, rng);
  EXPECT_EQ(fc.parameter_count(), 10u * 5u + 5u);
  nn::Linear nb(10, 5, rng, false);
  EXPECT_EQ(nb.parameter_count(), 50u);
}

TEST(ReLU, ClampsNegative) {
  nn::ReLU relu;
  Tensor x = Tensor::from_vector({-1.0f, 0.0f, 2.0f});
  Tensor y = relu.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
}

TEST(ReLU, GradientMasksNegative) {
  nn::ReLU relu;
  Tensor x = Tensor::from_vector({-1.0f, 3.0f});
  relu.forward(x, true);
  Tensor g = relu.backward(Tensor::from_vector({5.0f, 7.0f}));
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[1], 7.0f);
}

TEST(Sigmoid, RangeAndMidpoint) {
  nn::Sigmoid sig;
  Tensor y = sig.forward(Tensor::from_vector({0.0f, 100.0f, -100.0f}), false);
  EXPECT_NEAR(y[0], 0.5f, 1e-6);
  EXPECT_NEAR(y[1], 1.0f, 1e-6);
  EXPECT_NEAR(y[2], 0.0f, 1e-6);
}

TEST(Tanh, OddSymmetry) {
  nn::Tanh th;
  Tensor y = th.forward(Tensor::from_vector({-2.0f, 2.0f}), false);
  EXPECT_NEAR(y[0], -y[1], 1e-6);
}

TEST(Dropout, EvalIsIdentity) {
  util::Rng rng(5);
  nn::Dropout drop(0.5f, rng);
  Tensor x = Tensor::from_vector({1, 2, 3});
  Tensor y = drop.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 1.0f);
  EXPECT_FLOAT_EQ(y[2], 3.0f);
}

TEST(Dropout, TrainPreservesExpectation) {
  util::Rng rng(6);
  nn::Dropout drop(0.3f, rng);
  Tensor x({10000}, 1.0f);
  Tensor y = drop.forward(x, true);
  EXPECT_NEAR(y.mean(), 1.0f, 0.05f);
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  util::Rng rng(7);
  nn::Conv2d conv(1, 1, 1, 1, 0, rng);
  conv.parameters()[0]->value.fill(1.0f);  // 1x1 kernel = identity
  Tensor x({1, 1, 3, 3}, std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor y = conv.forward(x, false);
  EXPECT_LT(tensor::max_abs_diff(x.reshape({9}), y.reshape({9})), 1e-6f);
}

TEST(Conv2d, KnownSmoothingKernel) {
  util::Rng rng(8);
  nn::Conv2d conv(1, 1, 3, 1, 1, rng);
  conv.parameters()[0]->value.fill(1.0f);  // 3x3 all-ones: local sum w/ zero pad
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  Tensor y = conv.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 10.0f);  // whole image within window
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 10.0f);
}

TEST(Conv2d, StrideReducesSpatial) {
  util::Rng rng(9);
  nn::Conv2d conv(3, 8, 3, 2, 1, rng);
  Tensor x({2, 3, 8, 8});
  Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 8, 4, 4}));
}

TEST(Conv2d, Im2colColumnLayout) {
  // 1 channel 3x3 input, 2x2 kernel, stride 1, no pad -> 4 rows x 4 cols.
  std::vector<float> input = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> cols(4 * 4, -1.0f);
  nn::im2col(input.data(), 1, 3, 3, 2, 2, 1, 0, cols.data());
  // Row 0 = kernel offset (0,0): top-left of each window.
  EXPECT_FLOAT_EQ(cols[0], 1.0f);
  EXPECT_FLOAT_EQ(cols[1], 2.0f);
  EXPECT_FLOAT_EQ(cols[2], 4.0f);
  EXPECT_FLOAT_EQ(cols[3], 5.0f);
  // Row 3 = kernel offset (1,1): bottom-right of each window.
  EXPECT_FLOAT_EQ(cols[12], 5.0f);
  EXPECT_FLOAT_EQ(cols[15], 9.0f);
}

TEST(Conv2d, Col2imInvertsOverlapCounts) {
  // col2im(im2col(x)) multiplies each pixel by its window multiplicity.
  std::vector<float> input(9);
  for (int i = 0; i < 9; ++i) input[static_cast<std::size_t>(i)] = static_cast<float>(i + 1);
  std::vector<float> cols(4 * 4);
  nn::im2col(input.data(), 1, 3, 3, 2, 2, 1, 0, cols.data());
  std::vector<float> back(9, 0.0f);
  nn::col2im(cols.data(), 1, 3, 3, 2, 2, 1, 0, back.data());
  // Center pixel (5) appears in all 4 windows; corners once.
  EXPECT_FLOAT_EQ(back[4], 4.0f * 5.0f);
  EXPECT_FLOAT_EQ(back[0], 1.0f);
  EXPECT_FLOAT_EQ(back[8], 9.0f);
}

TEST(BatchNorm, NormalizesTrainBatch) {
  util::Rng rng(10);
  nn::BatchNorm2d bn(2);
  Tensor x = Tensor::randn({4, 2, 5, 5}, rng, 3.0f, 2.0f);
  Tensor y = bn.forward(x, true);
  // Per-channel mean ~0, var ~1 after normalization (gamma=1, beta=0).
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    std::size_t n = 0;
    for (std::size_t b = 0; b < 4; ++b)
      for (std::size_t i = 0; i < 25; ++i) {
        mean += y.at(b, c, i / 5, i % 5);
        ++n;
      }
    mean /= static_cast<double>(n);
    for (std::size_t b = 0; b < 4; ++b)
      for (std::size_t i = 0; i < 25; ++i) {
        const double d = y.at(b, c, i / 5, i % 5) - mean;
        var += d * d;
      }
    var /= static_cast<double>(n);
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, RunningStatsConvergeToDataMoments) {
  util::Rng rng(11);
  nn::BatchNorm2d bn(1, /*momentum=*/0.5f);
  for (int step = 0; step < 30; ++step) {
    Tensor x = Tensor::randn({8, 1, 4, 4}, rng, 2.0f, 1.5f);
    bn.forward(x, true);
  }
  EXPECT_NEAR(bn.running_mean()[0], 2.0f, 0.3f);
  EXPECT_NEAR(bn.running_var()[0], 2.25f, 0.6f);
}

TEST(BatchNorm, EvalUsesRunningStats) {
  util::Rng rng(12);
  nn::BatchNorm2d bn(1);
  Tensor x = Tensor::randn({4, 1, 3, 3}, rng);
  Tensor y_eval = bn.forward(x, false);  // fresh stats: mean 0, var 1
  EXPECT_LT(tensor::max_abs_diff(x, y_eval), 1e-2f);
}

TEST(MaxPool, SelectsWindowMax) {
  nn::MaxPool2d pool(2, 2);
  Tensor x({1, 1, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.shape(), (tensor::Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 15.0f);
}

TEST(MaxPool, GradientRoutesToArgmax) {
  nn::MaxPool2d pool(2, 2);
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 9, 3, 4});
  pool.forward(x, true);
  Tensor g = pool.backward(Tensor({1, 1, 1, 1}, std::vector<float>{7}));
  EXPECT_FLOAT_EQ(g.at(0, 0, 0, 1), 7.0f);
  EXPECT_FLOAT_EQ(g.at(0, 0, 0, 0), 0.0f);
}

TEST(GlobalAvgPool, AveragesPlane) {
  nn::GlobalAvgPool gap;
  Tensor x({1, 2, 2, 2}, std::vector<float>{1, 2, 3, 4, 10, 10, 10, 10});
  Tensor y = gap.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 10.0f);
}

TEST(Flatten, RoundTripsShape) {
  nn::Flatten fl;
  Tensor x({2, 3, 4, 4});
  Tensor y = fl.forward(x, true);
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 48}));
  Tensor g = fl.backward(y);
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(Sequential, ComposesAndCollectsParams) {
  util::Rng rng(13);
  nn::Sequential seq;
  seq.emplace<nn::Linear>(4, 8, rng);
  seq.emplace<nn::ReLU>();
  seq.emplace<nn::Linear>(8, 2, rng);
  Tensor x({3, 4}, 0.5f);
  Tensor y = seq.forward(x, false);
  EXPECT_EQ(y.shape(), (tensor::Shape{3, 2}));
  EXPECT_EQ(seq.parameters().size(), 4u);  // 2 weights + 2 biases
  EXPECT_EQ(seq.parameter_count(), 4u * 8 + 8 + 8 * 2 + 2);
}

TEST(Sequential, FreezeMarksParameters) {
  util::Rng rng(14);
  nn::Sequential seq;
  seq.emplace<nn::Linear>(2, 2, rng);
  seq.set_frozen(true);
  for (auto* p : seq.parameters()) EXPECT_FALSE(p->requires_grad);
  seq.set_frozen(false);
  for (auto* p : seq.parameters()) EXPECT_TRUE(p->requires_grad);
}

}  // namespace
}  // namespace hdczsc
