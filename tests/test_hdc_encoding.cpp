#include <gtest/gtest.h>

#include "data/attribute_space.hpp"
#include "data/cub_synthetic.hpp"
#include "hdc/encoding.hpp"

namespace hdczsc {
namespace {

using hdc::BipolarHV;

TEST(LevelCodebook, EndpointsAreAntipodal) {
  util::Rng rng(1);
  hdc::LevelCodebook lc(8, 2048, rng);
  EXPECT_NEAR(lc[0].cosine(lc[7]), -1.0, 1e-12);
  EXPECT_NEAR(lc[0].cosine(lc[0]), 1.0, 1e-12);
}

TEST(LevelCodebook, SimilarityDecaysMonotonicallyWithDistance) {
  util::Rng rng(2);
  hdc::LevelCodebook lc(16, 4096, rng);
  double prev = 1.0;
  for (std::size_t k = 1; k < 16; ++k) {
    const double sim = lc[0].cosine(lc[k]);
    EXPECT_LT(sim, prev + 1e-9) << "level " << k;
    prev = sim;
  }
}

TEST(LevelCodebook, EncodeClampsAndQuantizes) {
  util::Rng rng(3);
  hdc::LevelCodebook lc(4, 512, rng);
  EXPECT_EQ(&lc.encode(-1.0), &lc[0]);
  EXPECT_EQ(&lc.encode(2.0), &lc[3]);
  EXPECT_EQ(&lc.encode(0.0), &lc[0]);
  EXPECT_EQ(&lc.encode(1.0), &lc[3]);
  EXPECT_THROW(hdc::LevelCodebook(1, 16, rng), std::invalid_argument);
}

TEST(ClassPrototype, SimilarToActiveAttributeVectors) {
  auto space = data::AttributeSpace::cub();
  util::Rng rng(4);
  hdc::FactoredDictionary dict(space.n_groups(), space.n_values(), space.hdc_pairs(), 2048,
                               rng);
  // Strength vector: one strong attribute per group (like a class row).
  std::vector<float> strengths(space.n_attributes(), 0.0f);
  std::vector<std::size_t> active;
  for (std::size_t g = 0; g < space.n_groups(); ++g) {
    const std::size_t x = space.attribute_index(g, g % space.group(g).value_ids.size());
    strengths[x] = 0.9f;
    active.push_back(x);
  }
  BipolarHV proto = hdc::class_prototype(dict, strengths.data(), strengths.size(), 4, rng);
  // The prototype must correlate with each bundled attribute vector and not
  // with unbundled ones.
  double active_sim = 0.0;
  for (std::size_t x : active) active_sim += proto.cosine(dict.attribute_vector(x));
  active_sim /= static_cast<double>(active.size());
  EXPECT_GT(active_sim, 0.08);  // ~1/sqrt(28 bundled items) scale

  double inactive_sim = 0.0;
  std::size_t counted = 0;
  for (std::size_t x = 0; x < space.n_attributes() && counted < 30; ++x) {
    if (strengths[x] > 0.0f) continue;
    inactive_sim += std::abs(proto.cosine(dict.attribute_vector(x)));
    ++counted;
  }
  inactive_sim /= static_cast<double>(counted);
  EXPECT_LT(inactive_sim, active_sim / 2.0);
}

TEST(ClassPrototype, ZeroStrengthsGiveRandomTieBreaks) {
  auto space = data::AttributeSpace::toy(2, 2, 4);
  util::Rng rng(5);
  hdc::FactoredDictionary dict(2, 4, space.hdc_pairs(), 256, rng);
  std::vector<float> zeros(space.n_attributes(), 0.0f);
  BipolarHV proto = hdc::class_prototype(dict, zeros.data(), zeros.size(), 4, rng);
  EXPECT_EQ(proto.dim(), 256u);  // defined (all ties) but arbitrary
}

TEST(ClassPrototypes, MatrixFormMatchesRowForm) {
  auto space = data::AttributeSpace::cub();
  data::CubSyntheticConfig cfg;
  cfg.n_classes = 4;
  data::CubSynthetic ds(space, cfg);
  util::Rng rng(6);
  hdc::FactoredDictionary dict(space.n_groups(), space.n_values(), space.hdc_pairs(), 1024,
                               rng);
  auto protos = hdc::class_prototypes(dict, ds.class_attribute_matrix(), 8, rng);
  EXPECT_EQ(protos.size(), 4u);
  // Distinct classes -> near-orthogonal prototypes.
  EXPECT_LT(hdc::mean_abs_pairwise_cosine(protos), 0.35);
}

TEST(AssociativeMemory, RetrievesNoisyPrototype) {
  auto space = data::AttributeSpace::cub();
  data::CubSyntheticConfig cfg;
  cfg.n_classes = 12;
  data::CubSynthetic ds(space, cfg);
  util::Rng rng(7);
  hdc::FactoredDictionary dict(space.n_groups(), space.n_values(), space.hdc_pairs(), 2048,
                               rng);
  auto protos = hdc::class_prototypes(dict, ds.class_attribute_matrix(), 8, rng);
  hdc::AssociativeMemory mem(protos);
  EXPECT_EQ(mem.size(), 12u);
  // 15% bit noise must not break retrieval.
  for (std::size_t c = 0; c < 12; ++c) {
    BipolarHV noisy = protos[c];
    for (std::size_t i = 0; i < noisy.dim(); ++i)
      if (rng.bernoulli(0.15)) noisy[i] = static_cast<std::int8_t>(-noisy[i]);
    EXPECT_EQ(mem.nearest(noisy), c) << "class " << c;
  }
}

TEST(AssociativeMemory, SimilaritiesOrderedAndSized) {
  util::Rng rng(8);
  std::vector<BipolarHV> protos;
  for (int i = 0; i < 5; ++i) protos.push_back(BipolarHV::random(512, rng));
  hdc::AssociativeMemory mem(protos);
  auto sims = mem.similarities(protos[3].to_binary());
  EXPECT_EQ(sims.size(), 5u);
  EXPECT_DOUBLE_EQ(sims[3], 1.0);
  EXPECT_EQ(mem.storage_bytes(), 5u * 512 / 8);
}

TEST(SequenceEncoding, OrderSensitive) {
  util::Rng rng(9);
  const std::size_t d = 4096;
  std::vector<BipolarHV> seq{BipolarHV::random(d, rng), BipolarHV::random(d, rng),
                             BipolarHV::random(d, rng)};
  BipolarHV fwd = hdc::encode_sequence(seq, rng);
  std::vector<BipolarHV> rev{seq[2], seq[1], seq[0]};
  BipolarHV bwd = hdc::encode_sequence(rev, rng);
  // Same multiset, different order -> quasi-orthogonal codes.
  EXPECT_LT(std::abs(fwd.cosine(bwd)), 0.35);
  // But each encodes its own items at their positions.
  EXPECT_GT(fwd.cosine(seq[1].permute(1)), 0.2);
  EXPECT_THROW(hdc::encode_sequence({}, rng), std::invalid_argument);
}

}  // namespace
}  // namespace hdczsc
