// Equivalence and steady-state-allocation tests for the blocked GEMM compute
// core (tensor/gemm.hpp) and the whole-batch im2col convolution that rides
// on it.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "hdc/hypervector.hpp"
#include "nn/conv2d.hpp"
#include "tensor/gemm.hpp"
#include "tensor/gemm_int8.hpp"
#include "tensor/ops.hpp"
#include "tensor/scratch.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace hdczsc {
namespace {

using tensor::Tensor;
using tensor::Trans;

/// Double-precision reference: C[m,n] = op(A) * op(B).
std::vector<double> reference(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
                              const std::vector<float>& A, const std::vector<float>& B) {
  auto a_at = [&](std::size_t i, std::size_t p) {
    return static_cast<double>(ta == Trans::N ? A[i * k + p] : A[p * m + i]);
  };
  auto b_at = [&](std::size_t p, std::size_t j) {
    return static_cast<double>(tb == Trans::N ? B[p * n + j] : B[j * k + p]);
  };
  std::vector<double> C(m * n, 0.0);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t p = 0; p < k; ++p)
      for (std::size_t j = 0; j < n; ++j) C[i * n + j] += a_at(i, p) * b_at(p, j);
  return C;
}

void expect_close(const std::vector<float>& got, const std::vector<double>& want,
                  const char* what) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double rel = std::abs(got[i] - want[i]) / (1.0 + std::abs(want[i]));
    ASSERT_LT(rel, 1e-4) << what << " at " << i << ": got " << got[i] << " want " << want[i];
  }
}

/// Run gemm_accumulate and gemm_naive for every transpose combination of one
/// (m, n, k) problem and check both against the double reference.
void check_shape(std::size_t m, std::size_t n, std::size_t k, std::uint64_t seed) {
  util::Rng rng(seed);
  for (Trans ta : {Trans::N, Trans::T}) {
    for (Trans tb : {Trans::N, Trans::T}) {
      const std::size_t lda = ta == Trans::N ? k : m;
      const std::size_t ldb = tb == Trans::N ? n : k;
      std::vector<float> A(m * k), B(k * n);
      for (auto& v : A) v = static_cast<float>(rng.normal(0.0, 1.0));
      for (auto& v : B) v = static_cast<float>(rng.normal(0.0, 1.0));
      const std::vector<double> want = reference(ta, tb, m, n, k, A, B);

      std::vector<float> blocked(m * n, 0.0f), naive(m * n, 0.0f);
      tensor::gemm_accumulate(ta, tb, m, n, k, A.data(), lda, B.data(), ldb, blocked.data(), n);
      tensor::gemm_naive(ta, tb, m, n, k, A.data(), lda, B.data(), ldb, naive.data(), n);
      expect_close(blocked, want, "gemm_accumulate");
      expect_close(naive, want, "gemm_naive");
    }
  }
}

TEST(Gemm, TinyShapesBelowBlockingCutoff) {
  check_shape(1, 1, 1, 1);
  check_shape(3, 5, 7, 2);
  check_shape(1, 24, 9, 3);
  check_shape(13, 2, 31, 4);
}

TEST(Gemm, ExactTileMultiples) {
  check_shape(8, 32, 256, 5);    // one avx512 tile, full KC block
  check_shape(4, 24, 64, 6);     // one avx2/portable tile
  check_shape(128, 1024, 256, 7);  // exactly one (MC, NC, KC) block
}

TEST(Gemm, RaggedEdges) {
  check_shape(5, 25, 33, 8);     // one past the 4x24 tile
  check_shape(65, 129, 130, 9);  // odd everything
  check_shape(129, 65, 257, 10);  // one past MC and KC
}

TEST(Gemm, TallSkinnyAndWide) {
  check_shape(1000, 8, 3, 11);
  check_shape(7, 1000, 9, 12);
  check_shape(2, 3, 1000, 13);  // deep k, thin output
}

TEST(Gemm, DeepKStaysWithinTolerance) {
  // Conv backward's GEMM-NT reduces over k = batch*oh*ow (deep). The
  // KC-blocked float accumulation must hold 1e-4 relative against a double
  // reference — the serial-float gemm_naive loop itself drifts past that
  // here, so only the blocked kernel is gated.
  const std::size_t m = 4, n = 24, k = 16384;
  util::Rng rng(21);
  for (Trans ta : {Trans::N, Trans::T}) {
    for (Trans tb : {Trans::N, Trans::T}) {
      const std::size_t lda = ta == Trans::N ? k : m;
      const std::size_t ldb = tb == Trans::N ? n : k;
      std::vector<float> A(m * k), B(k * n);
      for (auto& v : A) v = static_cast<float>(rng.normal(0.0, 1.0));
      for (auto& v : B) v = static_cast<float>(rng.normal(0.0, 1.0));
      const std::vector<double> want = reference(ta, tb, m, n, k, A, B);
      std::vector<float> blocked(m * n, 0.0f);
      tensor::gemm_accumulate(ta, tb, m, n, k, A.data(), lda, B.data(), ldb, blocked.data(), n);
      expect_close(blocked, want, "gemm_accumulate deep k");
    }
  }
}

TEST(Gemm, MultiWorkerTaskGridMatchesReference) {
  // Force several pool workers so small-m products exercise the shrunken
  // row-block task grid (single MC x NC block otherwise).
  util::set_worker_count(4);
  check_shape(64, 512, 300, 22);
  check_shape(100, 100, 100, 23);
  util::set_worker_count(0);
}

TEST(Gemm, AccumulatesIntoC) {
  const std::size_t m = 6, n = 30, k = 40;
  util::Rng rng(14);
  std::vector<float> A(m * k), B(k * n);
  for (auto& v : A) v = static_cast<float>(rng.normal(0.0, 1.0));
  for (auto& v : B) v = static_cast<float>(rng.normal(0.0, 1.0));
  std::vector<double> want = reference(Trans::N, Trans::N, m, n, k, A, B);
  for (auto& v : want) v += 2.5;

  std::vector<float> C(m * n, 2.5f);
  tensor::gemm_accumulate(Trans::N, Trans::N, m, n, k, A.data(), k, B.data(), n, C.data(), n);
  expect_close(C, want, "accumulate");
}

TEST(Gemm, MatmulWrappersMatchReference) {
  util::Rng rng(15);
  Tensor a = Tensor::randn({37, 53}, rng);
  Tensor b = Tensor::randn({53, 41}, rng);
  Tensor ref = tensor::matmul(a, b);
  Tensor tn = tensor::matmul_tn(tensor::transpose(a), b);
  Tensor nt = tensor::matmul_nt(a, tensor::transpose(b));
  EXPECT_LT(tensor::max_abs_diff(ref, tn), 1e-4f);
  EXPECT_LT(tensor::max_abs_diff(ref, nt), 1e-4f);
}

TEST(Gemm, KernelNameIsKnownVariant) {
  const std::string name = tensor::gemm_kernel_name();
  EXPECT_TRUE(name == "avx512" || name == "avx2" || name == "portable") << name;
}

// -- int8 GEMM (tensor/gemm_int8.hpp) ----------------------------------------

/// Fill one (m, n, k) problem with contract-range codes (A in ±63, B full
/// u8) and check the blocked kernel bit-exact against the naive triple loop.
void check_int8_shape(std::size_t m, std::size_t n, std::size_t k, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::int8_t> A(m * k);
  std::vector<std::uint8_t> B(k * n);
  for (auto& v : A) v = static_cast<std::int8_t>(static_cast<int>(rng.next_u64() % 127) - 63);
  for (auto& v : B) v = static_cast<std::uint8_t>(rng.next_u64() & 0xFF);
  std::vector<std::int32_t> want(m * n, 0), got(m * n, 0);
  tensor::gemm_s32_naive(m, n, k, A.data(), k, B.data(), n, want.data(), n);
  tensor::gemm_s8u8_accumulate(m, n, k, A.data(), k, B.data(), n, got.data(), n);
  ASSERT_EQ(got, want) << "int8 kernel '" << tensor::gemm_int8_kernel_name() << "' diverged at "
                       << m << "x" << n << "x" << k;
}

TEST(GemmInt8, EveryKernelBitExactAcrossEdgeShapes) {
  // Integer accumulation is exact, so every ISA variant this machine can
  // run must agree with the reference to the bit — including shapes that
  // stress tile remainders, the k-quad padding, and the blocking cutoffs.
  for (const char* kernel : {"portable", "avx2", "avx512vnni"}) {
    if (!tensor::gemm_int8_force_kernel(kernel)) continue;  // CPU can't run it
    check_int8_shape(1, 1, 1, 31);
    check_int8_shape(1, 1, 3, 32);      // k not a multiple of the packed quad
    check_int8_shape(3, 5, 7, 33);
    check_int8_shape(16, 64, 256, 34);  // exact tiles, full KC depth
    check_int8_shape(17, 65, 257, 35);  // one past everything
    check_int8_shape(1000, 8, 3, 36);   // tall-skinny
    check_int8_shape(7, 1000, 9, 37);   // short-wide
    check_int8_shape(2, 3, 1000, 38);   // deep k, thin output
  }
  ASSERT_TRUE(tensor::gemm_int8_force_kernel("auto"));
}

TEST(GemmInt8, DegenerateShapesAreNoOpsEvenWithNullBuffers) {
  // The m/n/k == 0 guards must return before touching scratch, packing, or
  // any operand — nullptr operands make a violation a crash, not a flake.
  tensor::gemm_s8u8_accumulate(0, 8, 8, nullptr, 1, nullptr, 8, nullptr, 8);
  tensor::gemm_s8u8_accumulate(8, 0, 8, nullptr, 8, nullptr, 1, nullptr, 1);
  tensor::gemm_s8u8_accumulate(8, 8, 0, nullptr, 1, nullptr, 8, nullptr, 8);
  tensor::gemm_s32_naive(0, 0, 0, nullptr, 1, nullptr, 1, nullptr, 1);

  // k == 0 with live C: still strictly accumulate — C must be untouched.
  std::vector<std::int32_t> C(4, 77);
  tensor::gemm_s8u8_accumulate(2, 2, 0, nullptr, 1, nullptr, 2, C.data(), 2);
  for (std::int32_t v : C) EXPECT_EQ(v, 77);
}

TEST(GemmInt8, AccumulatesIntoC) {
  const std::size_t m = 6, n = 30, k = 40;
  util::Rng rng(39);
  std::vector<std::int8_t> A(m * k);
  std::vector<std::uint8_t> B(k * n);
  for (auto& v : A) v = static_cast<std::int8_t>(static_cast<int>(rng.next_u64() % 127) - 63);
  for (auto& v : B) v = static_cast<std::uint8_t>(rng.next_u64() & 0xFF);
  std::vector<std::int32_t> want(m * n, 5), got(m * n, 5);
  tensor::gemm_s32_naive(m, n, k, A.data(), k, B.data(), n, want.data(), n);
  tensor::gemm_s8u8_accumulate(m, n, k, A.data(), k, B.data(), n, got.data(), n);
  EXPECT_EQ(got, want);
}

TEST(GemmInt8, ExtremeCodesStayExactAtDepth) {
  // Worst-case magnitudes of the range contract: A = -64 everywhere
  // (the one value past ±63 the contract still admits), B = 255, deep k.
  // The AVX2 path's s16 pair sums sit exactly at their -32640 bound and
  // the s32 accumulator at -64*255*4096 — any saturation or overflow shows
  // up as a wrong constant.
  const std::size_t m = 8, n = 48, k = 4096;
  std::vector<std::int8_t> A(m * k, -64);
  std::vector<std::uint8_t> B(k * n, 255);
  std::vector<std::int32_t> got(m * n, 0);
  tensor::gemm_s8u8_accumulate(m, n, k, A.data(), k, B.data(), n, got.data(), n);
  const std::int32_t want = -64 * 255 * static_cast<std::int32_t>(k);
  for (std::int32_t v : got) ASSERT_EQ(v, want);
}

TEST(GemmInt8, KernelNameIsKnownVariantAndForceRejectsUnknown) {
  const std::string name = tensor::gemm_int8_kernel_name();
  EXPECT_TRUE(name == "avx512vnni" || name == "avx2" || name == "portable") << name;
  EXPECT_FALSE(tensor::gemm_int8_force_kernel("not-a-kernel"));
  EXPECT_EQ(tensor::gemm_int8_kernel_name(), name) << "failed force must not change kernel";
  EXPECT_TRUE(tensor::gemm_int8_force_kernel("portable"));  // always available
  EXPECT_TRUE(tensor::gemm_int8_force_kernel("auto"));
}

// -- conv through the batched path -------------------------------------------

/// Seed-style reference conv forward: per-image im2col + naive axpy loops.
Tensor conv_reference_forward(nn::Conv2d& conv, const Tensor& x, const Tensor& w,
                              const Tensor& bias, bool has_bias) {
  const std::size_t batch = x.size(0), in_c = x.size(1), h = x.size(2), ww = x.size(3);
  const std::size_t kk = conv.kernel(), oh = conv.out_size(h), ow = conv.out_size(ww);
  const std::size_t out_c = conv.out_channels();
  const std::size_t krows = in_c * kk * kk, ncols = oh * ow;
  Tensor y({batch, out_c, oh, ow});
  std::vector<float> cols(krows * ncols);
  for (std::size_t b = 0; b < batch; ++b) {
    nn::im2col(x.data() + b * in_c * h * ww, in_c, h, ww, kk, kk, conv.stride(), conv.padding(),
               cols.data());
    float* yb = y.data() + b * out_c * ncols;
    for (std::size_t oc = 0; oc < out_c; ++oc) {
      float* yrow = yb + oc * ncols;
      const float* wrow = w.data() + oc * krows;
      for (std::size_t r = 0; r < krows; ++r) {
        const float wv = wrow[r];
        const float* crow = cols.data() + r * ncols;
        for (std::size_t c = 0; c < ncols; ++c) yrow[c] += wv * crow[c];
      }
      if (has_bias) {
        for (std::size_t c = 0; c < ncols; ++c) yrow[c] += bias[oc];
      }
    }
  }
  return y;
}

TEST(GemmConv, BatchedForwardMatchesPerImageReference) {
  util::Rng rng(16);
  nn::Conv2d conv(3, 8, 3, /*stride=*/1, /*pad=*/1, rng, /*bias=*/true);
  Tensor x = Tensor::randn({5, 3, 12, 12}, rng);
  Tensor y = conv.forward(x, /*train=*/false);
  Tensor w = conv.parameters()[0]->value;
  Tensor b = conv.parameters()[1]->value;
  Tensor ref = conv_reference_forward(conv, x, w, b, true);
  EXPECT_LT(tensor::max_abs_diff(y, ref), 1e-4f);
}

TEST(GemmConv, StridedNoPadForwardMatchesPerImageReference) {
  util::Rng rng(17);
  nn::Conv2d conv(4, 6, 5, /*stride=*/2, /*pad=*/0, rng, /*bias=*/false);
  Tensor x = Tensor::randn({3, 4, 17, 13}, rng);
  Tensor y = conv.forward(x, /*train=*/false);
  Tensor w = conv.parameters()[0]->value;
  Tensor ref = conv_reference_forward(conv, x, w, Tensor({6}), false);
  EXPECT_LT(tensor::max_abs_diff(y, ref), 1e-4f);
}

TEST(GemmConv, SteadyStateForwardDoesNotAllocateScratch) {
  // Pin to one worker: with a pool, which thread claims each GEMM task is a
  // cursor race, so a cold worker could grow its own pack slots after the
  // warm-up and flake the grow-count assertion.
  util::set_worker_count(1);
  util::Rng rng(18);
  nn::Conv2d conv(8, 16, 3, 1, 1, rng, /*bias=*/true);
  Tensor x = Tensor::randn({4, 8, 16, 16}, rng);
  conv.forward(x, false);  // warm-up: scratch slots grow to working size
  const std::size_t grown = tensor::scratch_grow_count();
  for (int i = 0; i < 5; ++i) conv.forward(x, false);
  EXPECT_EQ(tensor::scratch_grow_count(), grown)
      << "steady-state conv forward must reuse thread-local scratch";
  util::set_worker_count(0);
}

TEST(GemmConv, SteadyStateBackwardDoesNotAllocateScratch) {
  util::set_worker_count(1);  // see SteadyStateForwardDoesNotAllocateScratch
  util::Rng rng(19);
  nn::Conv2d conv(4, 8, 3, 1, 1, rng, /*bias=*/true);
  Tensor x = Tensor::randn({3, 4, 10, 10}, rng);
  Tensor g = Tensor::randn({3, 8, 10, 10}, rng);
  conv.forward(x, true);
  conv.backward(g);  // warm-up
  const std::size_t grown = tensor::scratch_grow_count();
  for (int i = 0; i < 3; ++i) {
    conv.forward(x, true);
    conv.backward(g);
  }
  EXPECT_EQ(tensor::scratch_grow_count(), grown)
      << "steady-state conv backward must reuse thread-local scratch";
  util::set_worker_count(0);
}

// -- parallel Hamming scan ----------------------------------------------------

TEST(GemmSatellites, ParallelHammingMatchesRowByRow) {
  // Big enough to cross the parallel threshold (n_rows * words >= 2^15).
  const std::size_t n_rows = 9000, words = 4;
  util::Rng rng(20);
  std::vector<std::uint64_t> rows(n_rows * words), query(words);
  for (auto& v : rows) v = rng.next_u64();
  for (auto& v : query) v = rng.next_u64();

  std::vector<std::uint32_t> bulk(n_rows), serial(n_rows);
  hdc::hamming_many_packed(query.data(), rows.data(), n_rows, words, bulk.data());
  for (std::size_t i = 0; i < n_rows; ++i)  // per-row calls stay below the threshold
    hdc::hamming_many_packed(query.data(), rows.data() + i * words, 1, words, &serial[i]);
  EXPECT_EQ(bulk, serial);
}

TEST(GemmSatellites, NumThreadsEnvOverride) {
  // Save the process-wide pins (CI sets HDCZSC_NUM_THREADS=2 job-wide) so
  // this test can't leak a different worker count into later tests.
  const char* saved_new = ::getenv("HDCZSC_NUM_THREADS");
  const std::string saved_new_v = saved_new ? saved_new : "";
  const char* saved_old = ::getenv("HDCZSC_THREADS");
  const std::string saved_old_v = saved_old ? saved_old : "";

  ::unsetenv("HDCZSC_THREADS");
  ::setenv("HDCZSC_NUM_THREADS", "3", 1);
  EXPECT_EQ(util::worker_count(), 3u);
  // Legacy spelling still honored when the new one is absent.
  ::unsetenv("HDCZSC_NUM_THREADS");
  ::setenv("HDCZSC_THREADS", "2", 1);
  EXPECT_EQ(util::worker_count(), 2u);
  // The preferred name wins when both are set.
  ::setenv("HDCZSC_NUM_THREADS", "5", 1);
  EXPECT_EQ(util::worker_count(), 5u);

  if (saved_new)
    ::setenv("HDCZSC_NUM_THREADS", saved_new_v.c_str(), 1);
  else
    ::unsetenv("HDCZSC_NUM_THREADS");
  if (saved_old)
    ::setenv("HDCZSC_THREADS", saved_old_v.c_str(), 1);
  else
    ::unsetenv("HDCZSC_THREADS");
}

TEST(GemmSatellites, NestedParallelForRunsInline) {
  // A parallel_for body that itself calls parallel_for must degrade to
  // serial instead of re-entering the (non-re-entrant) pool — this test
  // hangs on deadlock rather than failing an expectation if that breaks.
  util::set_worker_count(4);
  std::vector<int> out(64, 0);
  util::parallel_for(0, 8, [&](std::size_t i) {
    util::parallel_for(0, 8, [&](std::size_t j) {
      out[i * 8 + j] = static_cast<int>(i * 8 + j);
    }, 1);
  }, 1);
  util::set_worker_count(0);
  for (int i = 0; i < 64; ++i) ASSERT_EQ(out[i], i);
}

}  // namespace
}  // namespace hdczsc
