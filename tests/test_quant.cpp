// Post-training quantization (nn/quant.hpp): calibration, qparams,
// quantized-vs-float backbone agreement, serialization, steady-state
// allocation, thread-safety of a shared artifact, and the serving engine's
// precision contract.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "core/image_encoder.hpp"
#include "core/zsc_model.hpp"
#include "nn/quant.hpp"
#include "serve/engine.hpp"
#include "serve/snapshot.hpp"
#include "tensor/ops.hpp"
#include "tensor/scratch.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace hdczsc {
namespace {

using tensor::Tensor;

/// Mean per-row cosine similarity between two [B, d] embeddings.
double mean_cosine(const Tensor& a, const Tensor& b) {
  const std::size_t rows = a.size(0), d = a.size(1);
  double acc = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double x = a.data()[r * d + j], y = b.data()[r * d + j];
      dot += x * y;
      na += x * x;
      nb += y * y;
    }
    acc += dot / (std::sqrt(na * nb) + 1e-12);
  }
  return acc / static_cast<double>(rows);
}

core::ImageEncoder make_encoder(const std::string& arch, bool proj, std::uint64_t seed) {
  core::ImageEncoderConfig cfg;
  cfg.arch = arch;
  cfg.proj_dim = 64;
  cfg.use_projection = proj;
  util::Rng rng(seed);
  return core::ImageEncoder(cfg, rng);
}

// -- qparams and observers ----------------------------------------------------

TEST(QuantParams, RangeAlwaysCoversZeroSoPaddingIsExact) {
  // Zero must quantize exactly to the zero point: im2col pads with zp and
  // a lossy zero would smear phantom signal into every padded border.
  for (auto [lo, hi] : {std::pair<float, float>{0.5f, 4.0f},
                        {-3.0f, -0.25f},
                        {-1.0f, 2.0f}}) {
    const nn::QuantParams p = nn::choose_qparams(lo, hi);
    ASSERT_GT(p.scale, 0.0f);
    ASSERT_GE(p.zero_point, 0);
    ASSERT_LE(p.zero_point, 255);
    const float dequant_zero = p.scale * (static_cast<float>(p.zero_point) - p.zero_point);
    EXPECT_EQ(dequant_zero, 0.0f);
    // The widened range reaches both endpoints.
    EXPECT_LE(p.scale * (0.0f - static_cast<float>(p.zero_point)), std::min(lo, 0.0f) + 1e-4f);
    EXPECT_GE(p.scale * (255.0f - static_cast<float>(p.zero_point)),
              std::max(hi, 0.0f) - 1e-4f);
  }
}

TEST(QuantParams, DegenerateRangeFallsBackToIdentityScale) {
  const nn::QuantParams p = nn::choose_qparams(0.0f, 0.0f);
  EXPECT_EQ(p.scale, 1.0f);
  EXPECT_EQ(p.zero_point, 0);
}

TEST(QuantObserver, MinMaxTracksAnEmaOfBatchExtremes) {
  nn::RangeObserver ob;
  const float batch1[] = {-1.0f, 2.0f};
  const float batch2[] = {-3.0f, 1.0f};
  ob.observe(batch1, 2);  // init: [-1, 2]
  ob.observe(batch2, 2);  // EMA pulls lo toward -3
  const nn::QuantParams p = ob.finalize(nn::CalibMethod::kMinMax);
  EXPECT_GT(p.scale, 0.0f);
  // lo moved past the first batch's -1 but not all the way to -3.
  const float lo = p.scale * (0.0f - static_cast<float>(p.zero_point));
  EXPECT_LT(lo, -1.0f);
  EXPECT_GT(lo, -3.0f);
}

TEST(QuantObserver, EntropyClipsHeavyTailedActivations) {
  // 10k small values plus a handful of huge outliers: the KL threshold
  // must land far below the raw max (minmax would burn almost the whole
  // u8 range on the empty tail).
  util::Rng rng(5);
  std::vector<float> x(10000);
  for (auto& v : x) v = static_cast<float>(rng.normal(0.0, 1.0));
  x[17] = 120.0f;
  x[4000] = -150.0f;

  nn::RangeObserver ob;
  ob.observe(x.data(), x.size());
  ob.begin_hist();
  ob.observe_hist(x.data(), x.size());
  const nn::QuantParams entropy = ob.finalize(nn::CalibMethod::kEntropy);

  nn::RangeObserver ob2;
  ob2.observe(x.data(), x.size());
  const nn::QuantParams minmax = ob2.finalize(nn::CalibMethod::kMinMax);

  EXPECT_LT(entropy.scale, minmax.scale * 0.25f)
      << "entropy calibration failed to clip the outlier tail";
}

TEST(QuantCalibration, TableRoundTripsThroughStreams) {
  nn::CalibrationTable table;
  table.method = nn::CalibMethod::kEntropy;
  table.activations = {{0.5f, 3}, {0.0123f, 255}, {7.25f, 0}};
  std::stringstream ss;
  nn::save_calibration(ss, table);
  const nn::CalibrationTable back = nn::load_calibration(ss);
  ASSERT_EQ(back.method, table.method);
  ASSERT_EQ(back.activations.size(), table.activations.size());
  for (std::size_t i = 0; i < table.activations.size(); ++i) {
    EXPECT_EQ(back.activations[i].scale, table.activations[i].scale);
    EXPECT_EQ(back.activations[i].zero_point, table.activations[i].zero_point);
  }
}

// -- quantized embed vs the float backbone ------------------------------------

TEST(QuantizedEmbed, TracksFloatEncoderOnEveryArchAndMethod) {
  // The acceptance bar for PTQ: int8 embeddings stay directionally faithful
  // to float (cosine ≥ 0.99 per row on calibration-distribution inputs) —
  // scoring is cosine/Hamming over these rows, so direction is what serving
  // consumes. Covers the plain stem, the maxpool stem + downsample blocks,
  // and both calibration methods.
  struct Case {
    const char* arch;
    bool proj;
    std::size_t image;
  };
  for (const Case& c : {Case{"resnet_micro_flat", true, 32}, Case{"resnet_micro", false, 32},
                        Case{"resnet18", true, 32}}) {
    core::ImageEncoder enc = make_encoder(c.arch, c.proj, 21);
    util::Rng rng(22);
    const Tensor calib = Tensor::randn({32, 3, c.image, c.image}, rng);
    const Tensor probe = Tensor::randn({6, 3, c.image, c.image}, rng);
    const Tensor f = enc.forward(probe, /*train=*/false);
    for (auto method : {nn::CalibMethod::kMinMax, nn::CalibMethod::kEntropy}) {
      const auto table =
          nn::QuantizedEmbed::calibrate(enc.backbone(), enc.projection(), calib, method, 16);
      const auto q = nn::QuantizedEmbed::build(enc.backbone(), enc.projection(), table);
      const double cos = mean_cosine(f, q->forward(probe));
      EXPECT_GT(cos, 0.99) << c.arch << " / " << nn::calib_method_name(method);
    }
  }
}

TEST(QuantizedEmbed, SaveLoadRoundTripForwardIsBitExact) {
  core::ImageEncoder enc = make_encoder("resnet_micro_flat", true, 31);
  util::Rng rng(32);
  const Tensor calib = Tensor::randn({24, 3, 32, 32}, rng);
  const auto table = nn::QuantizedEmbed::calibrate(enc.backbone(), enc.projection(), calib,
                                                   nn::CalibMethod::kMinMax);
  const auto q = nn::QuantizedEmbed::build(enc.backbone(), enc.projection(), table);

  std::stringstream ss;
  q->save(ss);
  const auto back = nn::QuantizedEmbed::load(ss);

  const Tensor probe = Tensor::randn({5, 3, 32, 32}, rng);
  EXPECT_EQ(tensor::max_abs_diff(q->forward(probe), back->forward(probe)), 0.0f)
      << "integer weights and qparams must travel exactly";
  const auto qi = q->info();
  const auto bi = back->info();
  EXPECT_EQ(qi.n_conv, bi.n_conv);
  EXPECT_EQ(qi.n_linear, bi.n_linear);
  EXPECT_EQ(qi.weight_bytes, bi.weight_bytes);
}

TEST(QuantizedEmbed, BuildRejectsTableFromDifferentArchitecture) {
  core::ImageEncoder small = make_encoder("resnet_micro_flat", true, 41);
  core::ImageEncoder big = make_encoder("resnet18", true, 42);
  util::Rng rng(43);
  const Tensor calib = Tensor::randn({16, 3, 32, 32}, rng);
  const auto table = nn::QuantizedEmbed::calibrate(small.backbone(), small.projection(), calib,
                                                   nn::CalibMethod::kMinMax);
  EXPECT_THROW(nn::QuantizedEmbed::build(big.backbone(), big.projection(), table),
               std::invalid_argument);
}

TEST(QuantizedEmbed, SteadyStateForwardDoesNotAllocateScratch) {
  // Same contract as the float conv path: after one warm-up forward the
  // typed scratch pools are at working size — the serving loop must not
  // allocate per request. Pinned to one worker (see test_gemm.cpp).
  util::set_worker_count(1);
  core::ImageEncoder enc = make_encoder("resnet_micro_flat", true, 51);
  util::Rng rng(52);
  const Tensor calib = Tensor::randn({16, 3, 32, 32}, rng);
  const auto table = nn::QuantizedEmbed::calibrate(enc.backbone(), enc.projection(), calib,
                                                   nn::CalibMethod::kMinMax);
  const auto q = nn::QuantizedEmbed::build(enc.backbone(), enc.projection(), table);

  const Tensor probe = Tensor::randn({4, 3, 32, 32}, rng);
  q->forward(probe);  // warm-up
  const std::size_t grown = tensor::scratch_grow_count();
  for (int i = 0; i < 5; ++i) q->forward(probe);
  EXPECT_EQ(tensor::scratch_grow_count(), grown)
      << "steady-state int8 forward must reuse thread-local scratch";
  util::set_worker_count(0);
}

TEST(QuantizedEmbed, ConcurrentForwardsThroughOneSharedArtifactAgree) {
  // The serving engine shares one const QuantizedEmbed across worker
  // threads; concurrent forwards must race nothing (TSan gates this) and
  // return exactly the serial results.
  core::ImageEncoder enc = make_encoder("resnet_micro_flat", true, 61);
  util::Rng rng(62);
  const Tensor calib = Tensor::randn({16, 3, 32, 32}, rng);
  const auto table = nn::QuantizedEmbed::calibrate(enc.backbone(), enc.projection(), calib,
                                                   nn::CalibMethod::kMinMax);
  const std::shared_ptr<const nn::QuantizedEmbed> q =
      nn::QuantizedEmbed::build(enc.backbone(), enc.projection(), table);

  std::vector<Tensor> probes;
  for (int i = 0; i < 4; ++i) probes.push_back(Tensor::randn({3, 3, 32, 32}, rng));
  std::vector<Tensor> want;
  for (const Tensor& p : probes) want.push_back(q->forward(p));

  std::vector<std::thread> threads;
  std::vector<float> diffs(4, -1.0f);
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&, c] {
      for (int rep = 0; rep < 3; ++rep)
        diffs[c] = std::max(diffs[c], tensor::max_abs_diff(q->forward(probes[c]), want[c]));
    });
  }
  for (auto& th : threads) th.join();
  for (int c = 0; c < 4; ++c) EXPECT_EQ(diffs[c], 0.0f) << "thread " << c;
}

// -- serving precision contract ----------------------------------------------

TEST(ServingPrecision, NamesRoundTripAndRejectUnknown) {
  EXPECT_EQ(serve::precision_name(serve::Precision::kFloat32), "float32");
  EXPECT_EQ(serve::precision_name(serve::Precision::kInt8), "int8");
  EXPECT_EQ(serve::precision_from_name("int8"), serve::Precision::kInt8);
  EXPECT_EQ(serve::precision_from_name("fp32"), serve::Precision::kFloat32);
  EXPECT_THROW(serve::precision_from_name("int4"), std::invalid_argument);
}

TEST(ServingPrecision, Int8EngineRequiresAQuantizedSnapshotAtConstruction) {
  auto space = data::AttributeSpace::toy(6, 3, 9);
  core::ZscModelConfig mcfg;
  mcfg.image.arch = "resnet_micro_flat";
  mcfg.image.proj_dim = 64;
  util::Rng rng(71);
  std::shared_ptr<core::ZscModel> model = core::make_zsc_model(mcfg, space, rng);
  const Tensor attrs = Tensor::rand_uniform({5, space.n_attributes()}, rng);
  auto snap = std::make_shared<serve::ModelSnapshot>(model, attrs, /*binary_expansion=*/1);

  // Fail at load, not first request: a server must not come up healthy
  // and then 500 every image.
  EXPECT_THROW(serve::InferenceEngine(snap, serve::ScoringMode::kFloatCosine, 0, 0.0f,
                                      serve::Precision::kInt8),
               std::invalid_argument);

  snap->quantize(Tensor::randn({16, 3, 32, 32}, rng));
  serve::InferenceEngine engine(snap, serve::ScoringMode::kFloatCosine, 0, 0.0f,
                                serve::Precision::kInt8);
  EXPECT_EQ(engine.precision(), serve::Precision::kInt8);

  // The int8 engine serves images end to end, and its decisions track the
  // float engine's on the same inputs (identical prototypes, near-identical
  // embeddings).
  serve::InferenceEngine fengine(snap, serve::ScoringMode::kFloatCosine);
  const Tensor probe = Tensor::randn({6, 3, 32, 32}, rng);
  const auto qpred = engine.classify_batch(probe);
  const auto fpred = fengine.classify_batch(probe);
  ASSERT_EQ(qpred.size(), 6u);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < qpred.size(); ++i) agree += qpred[i].label == fpred[i].label;
  EXPECT_GE(agree, 5u) << "int8 and float top-1 decisions diverged on most probes";
}

}  // namespace
}  // namespace hdczsc
