#include <gtest/gtest.h>

#include "core/param_count.hpp"
#include "nn/resnet.hpp"

namespace hdczsc {
namespace {

using nn::Tensor;

TEST(ResNet, MiniForwardShape) {
  util::Rng rng(1);
  nn::Backbone bb = nn::resnet_mini(rng);
  EXPECT_EQ(bb.feature_dim, 64u);
  Tensor x({2, 3, 32, 32});
  Tensor y = bb.net->forward(x, false);
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 64}));
}

TEST(ResNet, MicroForwardShape) {
  util::Rng rng(2);
  nn::Backbone bb = nn::resnet_micro(rng);
  EXPECT_EQ(bb.feature_dim, 32u);
  Tensor y = bb.net->forward(Tensor({1, 3, 32, 32}), false);
  EXPECT_EQ(y.shape(), (tensor::Shape{1, 32}));
}

TEST(ResNet, Resnet18ForwardOnSmallImage) {
  util::Rng rng(3);
  nn::Backbone bb = nn::resnet18(rng);
  EXPECT_EQ(bb.feature_dim, 512u);
  // 64x64 keeps the test fast while exercising all four stages.
  Tensor y = bb.net->forward(Tensor({1, 3, 64, 64}), false);
  EXPECT_EQ(y.shape(), (tensor::Shape{1, 512}));
}

TEST(ResNet, MicroFlatForwardShape) {
  util::Rng rng(21);
  nn::Backbone bb = nn::resnet_micro_flat(rng);
  EXPECT_EQ(bb.feature_dim, 32u * 8 * 8);
  Tensor y = bb.net->forward(Tensor({2, 3, 32, 32}), false);
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 2048}));
}

TEST(ResNet, MiniFlatForwardShape) {
  util::Rng rng(22);
  nn::Backbone bb = nn::resnet_mini_flat(rng);
  EXPECT_EQ(bb.feature_dim, 64u * 8 * 8);
  Tensor y = bb.net->forward(Tensor({1, 3, 32, 32}), false);
  EXPECT_EQ(y.shape(), (tensor::Shape{1, 4096}));
}

TEST(ResNet, FlatRejectsBadInputSize) {
  util::Rng rng(23);
  EXPECT_THROW(nn::resnet_micro_flat(rng, 3, 30), std::invalid_argument);
}

TEST(ParamCount, AnalyticMatchesBuiltFlatVariants) {
  util::Rng rng(24);
  nn::Backbone micro = nn::resnet_micro_flat(rng);
  EXPECT_EQ(micro.net->parameter_count(), core::backbone_param_count("resnet_micro_flat"));
  EXPECT_EQ(core::backbone_feature_dim("resnet_micro_flat"), 2048u);
  nn::Backbone mini = nn::resnet_mini_flat(rng);
  EXPECT_EQ(mini.net->parameter_count(), core::backbone_param_count("resnet_mini_flat"));
  EXPECT_EQ(core::backbone_feature_dim("resnet_mini_flat"), 4096u);
}

TEST(ResNet, MakeBackboneRejectsUnknownArch) {
  util::Rng rng(4);
  EXPECT_THROW(nn::make_backbone("vgg16", rng), std::invalid_argument);
}

TEST(ResNet, BackwardProducesInputShapedGrad) {
  util::Rng rng(5);
  nn::Backbone bb = nn::resnet_micro(rng);
  Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  Tensor y = bb.net->forward(x, true);
  Tensor g = bb.net->backward(Tensor(y.shape(), 1.0f));
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(ParamCount, AnalyticMatchesBuiltMini) {
  util::Rng rng(6);
  nn::Backbone bb = nn::resnet_mini(rng);
  EXPECT_EQ(bb.net->parameter_count(), core::backbone_param_count("resnet_mini"));
}

TEST(ParamCount, AnalyticMatchesBuiltMicro) {
  util::Rng rng(7);
  nn::Backbone bb = nn::resnet_micro(rng);
  EXPECT_EQ(bb.net->parameter_count(), core::backbone_param_count("resnet_micro"));
}

TEST(ParamCount, AnalyticMatchesBuiltResnet18) {
  util::Rng rng(8);
  nn::Backbone bb = nn::resnet18(rng);
  EXPECT_EQ(bb.net->parameter_count(), core::backbone_param_count("resnet18"));
}

TEST(ParamCount, Resnet50MatchesLiterature) {
  // torchvision resnet50 has 25.557M params including the 1000-way fc
  // (2048*1000 + 1000 = 2.049M); backbone-only is ~23.5M.
  const double millions =
      static_cast<double>(core::backbone_param_count("resnet50")) / 1e6;
  EXPECT_NEAR(millions, 23.5, 0.3);
}

TEST(ParamCount, Resnet101MatchesLiterature) {
  const double millions =
      static_cast<double>(core::backbone_param_count("resnet101")) / 1e6;
  EXPECT_NEAR(millions, 42.5, 0.5);
}

TEST(ParamCount, PaperHdcZscIs26_6M) {
  // The paper's headline model: ResNet50 + FC(2048 -> 1536) = 26.6M.
  const double millions =
      static_cast<double>(core::hdczsc_param_count("resnet50", 1536, true)) / 1e6;
  EXPECT_NEAR(millions, 26.6, 0.3);
}

TEST(ParamCount, FeatureDims) {
  EXPECT_EQ(core::backbone_feature_dim("resnet50"), 2048u);
  EXPECT_EQ(core::backbone_feature_dim("resnet101"), 2048u);
  EXPECT_EQ(core::backbone_feature_dim("resnet18"), 512u);
  EXPECT_EQ(core::backbone_feature_dim("resnet_mini"), 64u);
}

TEST(ParamCount, MlpVariantAddsEncoderParams) {
  const std::size_t hdc = core::hdczsc_param_count("resnet50", 1536, true);
  const std::size_t mlp = core::mlp_zsc_param_count("resnet50", 1536, true, 312, 512);
  EXPECT_EQ(mlp - hdc, 312u * 512 + 512 + 512 * 1536 + 1536);
}

}  // namespace
}  // namespace hdczsc
