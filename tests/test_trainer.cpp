// Trainer-level behaviour: each phase runs, reduces its loss, freezes what
// the paper freezes, and the evaluation helpers agree with the metrics
// module. Kept CPU-tiny (resnet_micro, 16x16 images).
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/trainer.hpp"
#include "tensor/ops.hpp"

namespace hdczsc {
namespace {

using nn::Tensor;

struct Fixture {
  data::AttributeSpace space = data::AttributeSpace::cub();
  data::CubSynthetic dataset;
  core::ZscModelConfig model_cfg;

  explicit Fixture(std::uint64_t seed = 3)
      : dataset(space, make_ds_cfg(seed)) {
    model_cfg.image.arch = "resnet_micro";
    model_cfg.image.proj_dim = 32;
    model_cfg.temp_scale = 0.5f;
  }

  static data::CubSyntheticConfig make_ds_cfg(std::uint64_t seed) {
    data::CubSyntheticConfig cfg;
    cfg.n_classes = 8;
    cfg.images_per_class = 4;
    cfg.image_size = 16;
    cfg.seed = seed;
    return cfg;
  }

  data::DataLoader loader(std::vector<std::size_t> classes, std::size_t lo, std::size_t hi,
                          bool shuffle = true) {
    data::AugmentConfig aug;
    aug.enabled = false;
    return data::DataLoader(dataset, std::move(classes), lo, hi, 8, shuffle, aug, 7);
  }
};

core::TrainConfig quick(std::size_t epochs = 2) {
  core::TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 8;
  cfg.lr = 3e-3f;
  return cfg;
}

TEST(TrainerPhase1, ImprovesHeadAccuracy) {
  util::Rng rng(1);
  core::ImageEncoderConfig icfg;
  icfg.arch = "resnet_micro";
  icfg.proj_dim = 32;
  core::ImageEncoder enc(icfg, rng);

  data::ShapesSyntheticConfig scfg;
  scfg.n_classes = 4;
  scfg.images_per_class = 6;
  scfg.image_size = 16;
  data::ShapesSynthetic pretrain(scfg);

  core::Trainer trainer(11);
  const double acc = trainer.phase1_pretrain(enc, pretrain, quick(6));
  EXPECT_GT(acc, 0.5);  // far above the 25% chance level
}

TEST(TrainerPhase2, LossDecreases) {
  Fixture fx;
  util::Rng rng(2);
  auto model = core::make_zsc_model(fx.model_cfg, fx.space, rng);
  auto train = fx.loader({0, 1, 2, 3}, 0, 3);

  core::Trainer trainer(12);
  const double loss1 = trainer.phase2_attribute_extraction(*model, train, quick(1));
  auto train2 = fx.loader({0, 1, 2, 3}, 0, 3);
  const double loss8 = trainer.phase2_attribute_extraction(*model, train2, quick(8));
  EXPECT_LT(loss8, loss1);
}

TEST(TrainerPhase3, FreezesBackboneAndTrainsProjection) {
  Fixture fx;
  util::Rng rng(3);
  auto model = core::make_zsc_model(fx.model_cfg, fx.space, rng);
  auto train = fx.loader({0, 1, 2, 3, 4, 5}, 0, 3);

  // Snapshot a backbone weight and the projection weight.
  auto backbone_params = model->image_encoder().backbone_parameters();
  Tensor backbone_before = backbone_params[0]->value.clone();
  auto proj_params = model->image_encoder().projection_parameters();
  ASSERT_FALSE(proj_params.empty());
  Tensor proj_before = proj_params[0]->value.clone();

  core::Trainer trainer(13);
  trainer.phase3_zsc(*model, train, quick(2), /*freeze_backbone=*/true);

  EXPECT_LT(tensor::max_abs_diff(backbone_before, backbone_params[0]->value), 1e-9f)
      << "frozen backbone must not move";
  EXPECT_GT(tensor::max_abs_diff(proj_before, proj_params[0]->value), 1e-7f)
      << "projection must train";
}

TEST(TrainerPhase3, UnfrozenBackboneMoves) {
  Fixture fx;
  util::Rng rng(4);
  auto model = core::make_zsc_model(fx.model_cfg, fx.space, rng);
  auto train = fx.loader({0, 1, 2, 3}, 0, 3);
  auto backbone_params = model->image_encoder().backbone_parameters();
  Tensor before = backbone_params[0]->value.clone();
  core::Trainer trainer(14);
  trainer.phase3_zsc(*model, train, quick(1), /*freeze_backbone=*/false);
  EXPECT_GT(tensor::max_abs_diff(before, backbone_params[0]->value), 1e-9f);
}

TEST(TrainerPhase3, NoProjectionFallsBackToBackboneTraining) {
  Fixture fx;
  fx.model_cfg.image.use_projection = false;
  util::Rng rng(5);
  auto model = core::make_zsc_model(fx.model_cfg, fx.space, rng);
  auto train = fx.loader({0, 1, 2, 3}, 0, 3);
  auto backbone_params = model->image_encoder().backbone_parameters();
  Tensor before = backbone_params[0]->value.clone();
  core::Trainer trainer(15);
  // freeze requested, but with no FC the trainer must train the backbone
  // (Table II rows "ResNet50, pre-train I,III").
  trainer.phase3_zsc(*model, train, quick(1), /*freeze_backbone=*/true);
  EXPECT_GT(tensor::max_abs_diff(before, backbone_params[0]->value), 1e-9f);
}

TEST(TrainerEval, ZscMetricsInRangeAndSized) {
  Fixture fx;
  util::Rng rng(6);
  auto model = core::make_zsc_model(fx.model_cfg, fx.space, rng);
  auto test = fx.loader({6, 7}, 0, 4, false);
  core::Trainer trainer(16);
  auto res = trainer.evaluate_zsc(*model, test);
  EXPECT_EQ(res.n_examples, 8u);
  EXPECT_GE(res.top1, 0.0);
  EXPECT_LE(res.top1, 1.0);
  EXPECT_GE(res.top5, res.top1);  // top-5 dominates top-1
}

TEST(TrainerEval, AttributeMetricsShape) {
  Fixture fx;
  util::Rng rng(7);
  auto model = core::make_zsc_model(fx.model_cfg, fx.space, rng);
  auto test = fx.loader({6, 7}, 0, 4, false);
  core::Trainer trainer(17);
  auto res = trainer.evaluate_attributes(*model, test);
  EXPECT_EQ(res.per_group_top1.size(), 28u);
  EXPECT_EQ(res.per_group_wmap.size(), 28u);
  for (double v : res.per_group_top1) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(TrainerEval, GzslHarmonicMeanConsistent) {
  Fixture fx;
  util::Rng rng(8);
  auto model = core::make_zsc_model(fx.model_cfg, fx.space, rng);
  auto seen_test = fx.loader({0, 1, 2}, 3, 4, false);
  auto unseen_test = fx.loader({6, 7}, 0, 4, false);
  core::Trainer trainer(18);
  auto res = trainer.evaluate_gzsl(*model, seen_test, unseen_test);
  EXPECT_GE(res.seen_acc, 0.0);
  EXPECT_LE(res.seen_acc, 1.0);
  EXPECT_GE(res.unseen_acc, 0.0);
  EXPECT_LE(res.unseen_acc, 1.0);
  const double s = res.seen_acc, u = res.unseen_acc;
  if (s + u > 0.0)
    EXPECT_NEAR(res.harmonic_mean, 2.0 * s * u / (s + u), 1e-12);
  // Harmonic mean never exceeds either operand.
  EXPECT_LE(res.harmonic_mean, std::max(s, u) + 1e-12);
}

TEST(TrainerEval, GzslUnseenAccNeverExceedsZsl) {
  // Enlarging the label space with seen classes can only add confusions.
  Fixture fx;
  util::Rng rng(9);
  auto model = core::make_zsc_model(fx.model_cfg, fx.space, rng);
  auto seen_test = fx.loader({0, 1, 2, 3}, 3, 4, false);
  auto unseen_test = fx.loader({6, 7}, 0, 4, false);
  core::Trainer trainer(19);
  auto zsl = trainer.evaluate_zsc(*model, unseen_test);
  auto gzsl = trainer.evaluate_gzsl(*model, seen_test, unseen_test);
  EXPECT_LE(gzsl.unseen_acc, zsl.top1 + 1e-12);
}

TEST(Pipeline, RunsEndToEndTiny) {
  core::PipelineConfig cfg;
  cfg.n_classes = 8;
  cfg.images_per_class = 4;
  cfg.train_instances = 3;
  cfg.image_size = 16;
  cfg.split = "zs";
  cfg.zs_train_classes = 6;
  cfg.model.image.arch = "resnet_micro";
  cfg.model.image.proj_dim = 32;
  cfg.pretrain_classes = 3;
  cfg.pretrain_images_per_class = 3;
  cfg.phase1 = {1, 8, 3e-3f, 1e-4f, 5.0f, true, false};
  cfg.phase2 = {1, 8, 3e-3f, 1e-4f, 5.0f, true, false};
  cfg.phase3 = {2, 8, 3e-3f, 1e-4f, 5.0f, true, false};
  auto res = core::run_pipeline(cfg);
  EXPECT_EQ(res.zsc.n_examples, 2u * 4u);  // 2 unseen classes x 4 instances
  EXPECT_TRUE(res.has_attribute_metrics);
  EXPECT_GT(res.trainable_parameters, 0u);
  EXPECT_GE(res.zsc.top5, res.zsc.top1);
}

TEST(Pipeline, SeedAggregationStats) {
  core::PipelineConfig cfg;
  cfg.n_classes = 6;
  cfg.images_per_class = 3;
  cfg.train_instances = 2;
  cfg.image_size = 16;
  cfg.zs_train_classes = 4;
  cfg.model.image.arch = "resnet_micro";
  cfg.model.image.proj_dim = 24;
  cfg.run_phase1 = false;
  cfg.run_phase2 = false;
  cfg.phase3 = {1, 8, 3e-3f, 1e-4f, 5.0f, true, false};
  auto ms = core::run_pipeline_seeds(cfg, 2);
  EXPECT_EQ(ms.runs.size(), 2u);
  EXPECT_GE(ms.top1_mean, 0.0);
  EXPECT_GE(ms.top1_std, 0.0);
}

TEST(Pipeline, UnknownSplitThrows) {
  core::PipelineConfig cfg;
  cfg.split = "bogus";
  EXPECT_THROW(core::run_pipeline(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace hdczsc
