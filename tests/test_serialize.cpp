#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "nn/serialize.hpp"
#include "tensor/ops.hpp"
#include "tensor/serialize.hpp"

namespace hdczsc {
namespace {

using tensor::Tensor;

TEST(TensorSerialize, RoundTripStream) {
  util::Rng rng(1);
  Tensor t = Tensor::randn({3, 4, 5}, rng);
  std::stringstream ss;
  tensor::save_tensor(ss, t);
  Tensor back = tensor::load_tensor(ss);
  EXPECT_EQ(back.shape(), t.shape());
  EXPECT_LT(tensor::max_abs_diff(t, back), 0.0f + 1e-12f);
}

TEST(TensorSerialize, RoundTripFile) {
  util::Rng rng(2);
  Tensor t = Tensor::rand_uniform({7}, rng);
  const std::string path = ::testing::TempDir() + "hdczsc_tensor.bin";
  tensor::save_tensor_file(path, t);
  Tensor back = tensor::load_tensor_file(path);
  EXPECT_LT(tensor::max_abs_diff(t, back), 1e-12f);
  std::remove(path.c_str());
}

TEST(TensorSerialize, RejectsBadMagic) {
  std::stringstream ss;
  ss << "NOPE....";
  EXPECT_THROW(tensor::load_tensor(ss), std::runtime_error);
}

TEST(TensorSerialize, RejectsTruncated) {
  util::Rng rng(3);
  Tensor t = Tensor::randn({8, 8}, rng);
  std::stringstream ss;
  tensor::save_tensor(ss, t);
  std::string bytes = ss.str();
  std::stringstream cut(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(tensor::load_tensor(cut), std::runtime_error);
}

TEST(TensorSerialize, EmptyTensorRoundTrips) {
  Tensor t;
  std::stringstream ss;
  tensor::save_tensor(ss, t);
  Tensor back = tensor::load_tensor(ss);
  EXPECT_EQ(back.numel(), 0u);
}

TEST(ParamSerialize, RoundTripRestoresWeights) {
  util::Rng rng(4);
  nn::Sequential model;
  model.emplace<nn::Linear>(4, 6, rng);
  model.emplace<nn::Linear>(6, 2, rng);
  std::stringstream ss;
  nn::save_parameters(ss, model.parameters());

  // Perturb, then load back.
  for (auto* p : model.parameters()) p->value.fill(0.0f);
  nn::load_parameters(ss, model.parameters());
  // Forward on fixed input must match a fresh identically-seeded model.
  util::Rng rng2(4);
  nn::Sequential fresh;
  fresh.emplace<nn::Linear>(4, 6, rng2);
  fresh.emplace<nn::Linear>(6, 2, rng2);
  util::Rng xrng(5);
  Tensor x = Tensor::randn({3, 4}, xrng);
  EXPECT_LT(tensor::max_abs_diff(model.forward(x, false), fresh.forward(x, false)), 1e-6f);
}

TEST(ParamSerialize, CountMismatchRejectedAtomically) {
  util::Rng rng(6);
  nn::Linear a(3, 3, rng), b(3, 3, rng);
  std::stringstream ss;
  nn::save_parameters(ss, a.parameters());

  nn::Sequential two;
  two.emplace<nn::Linear>(3, 3, rng);
  two.emplace<nn::Linear>(3, 3, rng);
  Tensor before = two.parameters()[0]->value.clone();
  EXPECT_THROW(nn::load_parameters(ss, two.parameters()), std::runtime_error);
  EXPECT_LT(tensor::max_abs_diff(before, two.parameters()[0]->value), 1e-12f);
}

TEST(ParamSerialize, ShapeMismatchRejected) {
  util::Rng rng(7);
  nn::Linear small(3, 3, rng);
  nn::Linear big(4, 4, rng);
  std::stringstream ss;
  nn::save_parameters(ss, small.parameters());
  EXPECT_THROW(nn::load_parameters(ss, big.parameters()), std::runtime_error);
}

TEST(ParamSerialize, FileRoundTrip) {
  util::Rng rng(8);
  nn::Linear fc(5, 5, rng);
  const std::string path = ::testing::TempDir() + "hdczsc_params.bin";
  nn::save_parameters_file(path, fc.parameters());
  Tensor orig = fc.weight().value.clone();
  fc.weight().value.fill(9.0f);
  nn::load_parameters_file(path, fc.parameters());
  EXPECT_LT(tensor::max_abs_diff(orig, fc.weight().value), 1e-12f);
  std::remove(path.c_str());
}

TEST(ParamSerialize, MissingFileThrows) {
  util::Rng rng(9);
  nn::Linear fc(2, 2, rng);
  EXPECT_THROW(nn::load_parameters_file("/nonexistent/dir/x.bin", fc.parameters()),
               std::runtime_error);
}

}  // namespace
}  // namespace hdczsc
