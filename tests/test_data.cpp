#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/cub_synthetic.hpp"
#include "data/dataloader.hpp"
#include "data/shapes_synthetic.hpp"
#include "data/splits.hpp"
#include "tensor/ops.hpp"

namespace hdczsc {
namespace {

data::CubSyntheticConfig small_cfg() {
  data::CubSyntheticConfig cfg;
  cfg.n_classes = 10;
  cfg.images_per_class = 4;
  cfg.image_size = 16;
  cfg.seed = 3;
  return cfg;
}

TEST(CubSynthetic, ClassMatrixShapeAndRange) {
  auto space = data::AttributeSpace::cub();
  data::CubSynthetic ds(space, small_cfg());
  const auto& a = ds.class_attribute_matrix();
  EXPECT_EQ(a.shape(), (tensor::Shape{10, 312}));
  EXPECT_GE(a.min(), 0.0f);
  EXPECT_LE(a.max(), 1.0f);
}

TEST(CubSynthetic, DominantValueHasHighestStrength) {
  auto space = data::AttributeSpace::cub();
  data::CubSynthetic ds(space, small_cfg());
  const auto& a = ds.class_attribute_matrix();
  for (std::size_t c = 0; c < ds.n_classes(); ++c) {
    for (std::size_t g = 0; g < space.n_groups(); ++g) {
      const auto& grp = space.group(g);
      const std::size_t dom = ds.dominant_value(c, g);
      for (std::size_t k = 0; k < grp.value_ids.size(); ++k) {
        if (k == dom) continue;
        EXPECT_LE(a.at(c, grp.attr_offset + k), a.at(c, grp.attr_offset + dom));
      }
    }
  }
}

TEST(CubSynthetic, SampleIsDeterministic) {
  auto space = data::AttributeSpace::cub();
  data::CubSynthetic ds(space, small_cfg());
  auto s1 = ds.sample(3, 1);
  auto s2 = ds.sample(3, 1);
  EXPECT_LT(tensor::max_abs_diff(s1.image, s2.image), 1e-9f);
  EXPECT_LT(tensor::max_abs_diff(s1.instance_attributes, s2.instance_attributes), 1e-9f);
}

TEST(CubSynthetic, DifferentInstancesDiffer) {
  auto space = data::AttributeSpace::cub();
  data::CubSynthetic ds(space, small_cfg());
  auto s1 = ds.sample(3, 0);
  auto s2 = ds.sample(3, 1);
  EXPECT_GT(tensor::max_abs_diff(s1.image, s2.image), 1e-3f);
}

TEST(CubSynthetic, ImageInUnitRangeAndLabeled) {
  auto space = data::AttributeSpace::cub();
  data::CubSynthetic ds(space, small_cfg());
  auto s = ds.sample(7, 2);
  EXPECT_EQ(s.label, 7u);
  EXPECT_EQ(s.image.shape(), (tensor::Shape{3, 16, 16}));
  EXPECT_GE(s.image.min(), 0.0f);
  EXPECT_LE(s.image.max(), 1.0f);
}

TEST(CubSynthetic, InstanceAttributesOneHotPerGroup) {
  auto space = data::AttributeSpace::cub();
  data::CubSynthetic ds(space, small_cfg());
  auto s = ds.sample(1, 0);
  for (std::size_t g = 0; g < space.n_groups(); ++g) {
    const auto& grp = space.group(g);
    float sum = 0.0f;
    for (std::size_t k = 0; k < grp.value_ids.size(); ++k)
      sum += s.instance_attributes[grp.attr_offset + k];
    EXPECT_FLOAT_EQ(sum, 1.0f) << "group " << g;
  }
}

TEST(CubSynthetic, OutOfRangeThrows) {
  auto space = data::AttributeSpace::cub();
  data::CubSynthetic ds(space, small_cfg());
  EXPECT_THROW(ds.sample(100, 0), std::out_of_range);
  EXPECT_THROW(ds.class_attribute_rows({99}), std::out_of_range);
}

TEST(ShapesSynthetic, DeterministicAndDistinct) {
  data::ShapesSyntheticConfig cfg;
  cfg.n_classes = 5;
  cfg.image_size = 16;
  data::ShapesSynthetic ds(cfg);
  auto a = ds.sample(0, 0);
  auto b = ds.sample(0, 0);
  EXPECT_LT(tensor::max_abs_diff(a.image, b.image), 1e-9f);
  auto c = ds.sample(1, 0);
  EXPECT_GT(tensor::max_abs_diff(a.image, c.image), 1e-2f);
  EXPECT_EQ(c.label, 1u);
}

TEST(Splits, ZsSplitDisjointAndComplete) {
  auto split = data::make_zs_split(200, 150, 42);
  EXPECT_EQ(split.train_classes.size(), 150u);
  EXPECT_EQ(split.test_classes.size(), 50u);
  EXPECT_FALSE(split.image_level);
  std::set<std::size_t> all(split.train_classes.begin(), split.train_classes.end());
  for (auto c : split.test_classes) EXPECT_EQ(all.count(c), 0u);
  all.insert(split.test_classes.begin(), split.test_classes.end());
  EXPECT_EQ(all.size(), 200u);
}

TEST(Splits, NozsSharesClasses) {
  auto split = data::make_nozs_split(200, 100, 42);
  EXPECT_TRUE(split.image_level);
  EXPECT_EQ(split.train_classes, split.test_classes);
  EXPECT_EQ(split.train_classes.size(), 100u);
}

TEST(Splits, ValidationCarvedFromTrain) {
  auto zs = data::make_zs_split(200, 150, 7);
  auto val = data::make_validation_split(zs, 50, 7);
  EXPECT_EQ(val.train_classes.size(), 100u);
  EXPECT_EQ(val.test_classes.size(), 50u);
  std::set<std::size_t> train_set(zs.train_classes.begin(), zs.train_classes.end());
  for (auto c : val.test_classes) EXPECT_EQ(train_set.count(c), 1u);
  std::set<std::size_t> reduced(val.train_classes.begin(), val.train_classes.end());
  for (auto c : val.test_classes) EXPECT_EQ(reduced.count(c), 0u);
}

TEST(Splits, DeterministicPerSeed) {
  auto a = data::make_zs_split(50, 30, 5);
  auto b = data::make_zs_split(50, 30, 5);
  EXPECT_EQ(a.train_classes, b.train_classes);
  auto c = data::make_zs_split(50, 30, 6);
  EXPECT_NE(a.train_classes, c.train_classes);
}

TEST(Splits, BadArgsThrow) {
  EXPECT_THROW(data::make_zs_split(10, 11, 1), std::invalid_argument);
  EXPECT_THROW(data::make_nozs_split(10, 11, 1), std::invalid_argument);
}

TEST(Augment, RotationPreservesShapeAndRange) {
  auto space = data::AttributeSpace::cub();
  data::CubSynthetic ds(space, small_cfg());
  auto img = ds.sample(0, 0).image;
  auto rot = data::rotate_image(img, 30.0);
  EXPECT_EQ(rot.shape(), img.shape());
  EXPECT_GE(rot.min(), 0.0f);
  EXPECT_LE(rot.max(), 1.0f);
  // Zero rotation is identity.
  EXPECT_LT(tensor::max_abs_diff(data::rotate_image(img, 0.0), img), 1e-9f);
}

TEST(Augment, HflipIsInvolution) {
  auto space = data::AttributeSpace::cub();
  data::CubSynthetic ds(space, small_cfg());
  auto img = ds.sample(0, 0).image;
  EXPECT_LT(tensor::max_abs_diff(data::hflip_image(data::hflip_image(img)), img), 1e-9f);
  EXPECT_GT(tensor::max_abs_diff(data::hflip_image(img), img), 1e-4f);
}

TEST(Augment, CropFractionOneIsIdentity) {
  auto space = data::AttributeSpace::cub();
  data::CubSynthetic ds(space, small_cfg());
  auto img = ds.sample(0, 1).image;
  EXPECT_LT(tensor::max_abs_diff(data::center_crop_zoom(img, 1.0), img), 1e-9f);
  EXPECT_THROW(data::center_crop_zoom(img, 0.0), std::invalid_argument);
}

TEST(DataLoader, BatchesCoverEpochExactlyOnce) {
  auto space = data::AttributeSpace::cub();
  data::CubSynthetic ds(space, small_cfg());
  data::AugmentConfig aug;
  aug.enabled = false;
  data::DataLoader loader(ds, {0, 1, 2}, 0, 4, 5, true, aug, 9);
  EXPECT_EQ(loader.n_examples(), 12u);
  EXPECT_EQ(loader.n_batches(), 3u);
  std::size_t seen = 0;
  while (auto b = loader.next()) seen += b->labels.size();
  EXPECT_EQ(seen, 12u);
  EXPECT_FALSE(loader.next().has_value());
  loader.reset_epoch();
  EXPECT_TRUE(loader.next().has_value());
}

TEST(DataLoader, LocalLabelsMatchClassOrder) {
  auto space = data::AttributeSpace::cub();
  data::CubSynthetic ds(space, small_cfg());
  data::AugmentConfig aug;
  aug.enabled = false;
  data::DataLoader loader(ds, {7, 2, 5}, 0, 2, 64, false, aug, 9);
  auto batch = loader.all_eval();
  // Unshuffled eval order: class-major.
  EXPECT_EQ(batch.labels[0], 0u);  // global class 7 -> local 0
  EXPECT_EQ(batch.labels[2], 1u);  // global class 2 -> local 1
  EXPECT_EQ(batch.labels[4], 2u);
  // Attribute rows follow the same order.
  auto rows = loader.class_attribute_rows();
  auto direct = ds.class_attribute_rows({7, 2, 5});
  EXPECT_LT(tensor::max_abs_diff(rows, direct), 1e-9f);
}

TEST(DataLoader, InstanceRangePartition) {
  auto space = data::AttributeSpace::cub();
  data::CubSynthetic ds(space, small_cfg());
  data::AugmentConfig aug;
  aug.enabled = false;
  data::DataLoader train(ds, {0}, 0, 2, 8, false, aug, 1);
  data::DataLoader test(ds, {0}, 2, 4, 8, false, aug, 1);
  EXPECT_EQ(train.n_examples(), 2u);
  EXPECT_EQ(test.n_examples(), 2u);
  auto tb = train.all_eval();
  auto eb = test.all_eval();
  // Disjoint instances -> different pixels.
  tensor::Tensor t0 = tb.images.reshape({2, 3 * 16 * 16});
  tensor::Tensor e0 = eb.images.reshape({2, 3 * 16 * 16});
  EXPECT_GT(tensor::max_abs_diff(t0, e0), 1e-4f);
}

TEST(DataLoader, InvalidRangesThrow) {
  auto space = data::AttributeSpace::cub();
  data::CubSynthetic ds(space, small_cfg());
  data::AugmentConfig aug;
  EXPECT_THROW(data::DataLoader(ds, {0}, 0, 9, 4, false, aug, 1), std::invalid_argument);
  EXPECT_THROW(data::DataLoader(ds, {0}, 2, 2, 4, false, aug, 1), std::invalid_argument);
  EXPECT_THROW(data::DataLoader(ds, {0}, 0, 2, 0, false, aug, 1), std::invalid_argument);
}

}  // namespace
}  // namespace hdczsc
