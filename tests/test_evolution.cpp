// Live model evolution: versioned copy-on-write prototype stores, online
// class appends, delta snapshots and GZSL auto-calibration
// (docs/evolution.md). The load-bearing claims pinned here:
//
//  * appends share slab planes structurally (no realloc when capacity
//    allows) and never disturb a previously pinned version — a batch
//    pinned to version k scores bit-identical to exact scoring over
//    version k even after k+1/k+2 publish;
//  * an appended engine is bitwise a cold engine built over the
//    concatenated attribute rows (same frozen encoder, same planes);
//  * base .hdcsnap + .hdcdelta chain ≡ the compacted full snapshot,
//    bitwise, whether the chain is applied live (append_delta) or
//    offline (compact_snapshot);
//  * a corrupt delta is rejected with the previously served version
//    intact and answering — even under a concurrent reader;
//  * an append-while-serving storm drops zero requests, and the
//    post-storm top-k is bit-identical to a cold rebuild from the
//    compacted snapshot;
//  * the GZSL penalty recalibrates from the validation split after every
//    append (and the precedence vs the explicit knob / persisted value
//    holds);
//  * the registry exposes version metrics; the HDCN kAppendClasses admin
//    frame round-trips the wire.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <sstream>
#include <thread>
#include <vector>

#include "core/zsc_model.hpp"
#include "data/attribute_space.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "serve/model_registry.hpp"
#include "serve/snapshot_io.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace hdczsc {
namespace {

using serve::InferenceEngine;
using serve::ModelSnapshot;
using serve::ScoringMode;
using serve::SnapshotDelta;
using serve::StoreVersion;
using serve::TopK;
using tensor::Tensor;

/// Minimal untrained model (the serving layers only need eval forwards).
std::shared_ptr<core::ZscModel> make_model(std::size_t n_attributes, std::size_t dim) {
  util::Rng rng(0xABCDULL);
  core::ImageEncoderConfig icfg;
  icfg.arch = "resnet_micro_flat";
  icfg.proj_dim = dim;
  auto img = std::make_unique<core::ImageEncoder>(icfg, rng);
  data::AttributeSpace space = data::AttributeSpace::toy(n_attributes, 1, 1);
  auto attr = std::make_unique<core::HdcAttributeEncoder>(space, img->dim(), rng);
  return std::make_shared<core::ZscModel>(std::move(img), std::move(attr), 4.0f);
}

constexpr std::size_t kAlpha = 24, kDim = 64;

Tensor rand_attrs(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  return Tensor::randn({n, kAlpha}, rng);
}

std::shared_ptr<const ModelSnapshot> make_snapshot(std::size_t classes,
                                                   std::size_t expansion = 2) {
  return std::make_shared<const ModelSnapshot>(make_model(kAlpha, kDim),
                                               rand_attrs(classes, 0x5EEDULL), expansion);
}

std::shared_ptr<ModelSnapshot> make_gzsl(std::size_t n_seen, std::size_t n_unseen) {
  return serve::make_gzsl_snapshot(make_model(kAlpha, kDim), rand_attrs(n_seen, 0xAAULL),
                                   rand_attrs(n_unseen, 0xBBULL), 2);
}

Tensor probe_embeddings(std::size_t n, std::uint64_t seed = 0x9E0BEULL) {
  util::Rng rng(seed);
  return Tensor::randn({n, kDim}, rng);
}

void expect_topk_identical(const std::vector<std::vector<TopK>>& got,
                           const std::vector<std::vector<TopK>>& want,
                           const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t b = 0; b < got.size(); ++b) {
    ASSERT_EQ(got[b].size(), want[b].size()) << what << " query " << b;
    for (std::size_t i = 0; i < got[b].size(); ++i) {
      EXPECT_EQ(got[b][i].label, want[b][i].label) << what << " query " << b << " rank " << i;
      EXPECT_EQ(got[b][i].score, want[b][i].score) << what << " query " << b << " rank " << i;
    }
  }
}

/// Concatenate attribute row blocks (the cold-rebuild reference input).
Tensor concat_attrs(const Tensor& a, const Tensor& b) {
  Tensor out({a.size(0) + b.size(0), a.size(1)});
  std::copy(a.data(), a.data() + a.numel(), out.data());
  std::copy(b.data(), b.data() + b.numel(), out.data() + a.numel());
  return out;
}

// -- copy-on-write slabs + pinned-version stability ---------------------------

TEST(Evolution, AppendSharesSlabPlanesAndPinnedVersionIsBitStable) {
  auto snapshot = make_snapshot(10);
  const InferenceEngine engine(snapshot);
  const auto v0 = engine.pin();
  ASSERT_EQ(v0->version, 0u);
  ASSERT_EQ(v0->n_classes(), 10u);

  const Tensor probe = probe_embeddings(4);
  const Tensor logits_v0 = engine.logits(probe);
  const auto topk_v0 = engine.topk_batch(probe, 3);

  // First append outgrows the loaded store's exact-fit capacity → realloc
  // (no plane sharing); the doubled slab then has room, so the second
  // append *must* structurally share the first append's planes.
  const auto v1 = engine.append_classes(rand_attrs(3, 0xA1ULL));
  EXPECT_EQ(v1->version, 1u);
  EXPECT_EQ(v1->n_classes(), 13u);
  EXPECT_FALSE(v1->store->shares_planes_with(*v0->store));
  EXPECT_GE(v1->store->capacity_rows(), 20u);

  const auto v2 = engine.append_classes(rand_attrs(2, 0xA2ULL));
  EXPECT_EQ(v2->version, 2u);
  EXPECT_EQ(v2->n_classes(), 15u);
  EXPECT_TRUE(v2->store->shares_planes_with(*v1->store));

  // The pinned v0 still scores bit-identically: appends never mutate a
  // published version, shared slabs included.
  EXPECT_EQ(tensor::max_abs_diff(v0->store->score_float(probe), logits_v0), 0.0f);
  expect_topk_identical(v0->sharded->topk_float(probe, 3), topk_v0, "pinned v0 top-k");

  // The grown version ranks the appended labels; its first 10 logit
  // columns are bitwise the v0 columns (structural sharing is visible in
  // the scores, not just the planes).
  const Tensor logits_v2 = engine.logits(probe);
  ASSERT_EQ(logits_v2.size(1), 15u);
  for (std::size_t b = 0; b < probe.size(0); ++b)
    for (std::size_t c = 0; c < 10; ++c)
      EXPECT_EQ(logits_v2.data()[b * 15 + c], logits_v0.data()[b * 10 + c])
          << "query " << b << " class " << c;
}

TEST(Evolution, AppendedEngineIsBitwiseAColdRebuild) {
  const Tensor base_attrs = rand_attrs(12, 0x5EEDULL);
  const Tensor new_attrs = rand_attrs(5, 0xC0FFEEULL);
  auto model = make_model(kAlpha, kDim);

  auto base = std::make_shared<const ModelSnapshot>(model, base_attrs, 2);
  const InferenceEngine live(base, ScoringMode::kBinaryHamming);
  live.append_classes(new_attrs);

  // Live appends default the new classes to unseen, so the equivalent cold
  // snapshot carries the matching partition (12 seen, 5 unseen).
  std::vector<std::uint8_t> mask(17, 1);
  std::fill(mask.begin() + 12, mask.end(), 0);
  auto cold_snap = std::make_shared<const ModelSnapshot>(
      model, concat_attrs(base_attrs, new_attrs), 2, 1, mask);
  const InferenceEngine cold(cold_snap, ScoringMode::kBinaryHamming);

  const auto vl = live.pin(), vc = cold.pin();
  ASSERT_EQ(vl->n_classes(), vc->n_classes());
  EXPECT_EQ(tensor::max_abs_diff(vl->store->normalized_copy(), vc->store->normalized_copy()),
            0.0f);
  EXPECT_EQ(vl->store->packed_copy(), vc->store->packed_copy());
  EXPECT_EQ(vl->content_checksum, vc->content_checksum);

  const Tensor probe = probe_embeddings(6);
  EXPECT_EQ(tensor::max_abs_diff(live.logits(probe), cold.logits(probe)), 0.0f);
  expect_topk_identical(live.topk_batch(probe, 4), cold.topk_batch(probe, 4),
                        "live append vs cold rebuild");
}

// -- delta chains -------------------------------------------------------------

TEST(Evolution, DeltaChainAppliesAndCompactsBitwise) {
  auto snapshot = make_gzsl(9, 4);
  const InferenceEngine writer(snapshot);
  const auto v0 = writer.pin();
  const std::vector<std::uint8_t> flags = {1, 0, 0};
  const auto v1 = writer.append_classes(rand_attrs(3, 0xD1ULL), flags);
  const auto v2 = writer.append_classes(rand_attrs(2, 0xD2ULL));

  SnapshotDelta d1 = serve::make_delta(*v0, *v1);
  SnapshotDelta d2 = serve::make_delta(*v1, *v2);
  EXPECT_EQ(d1.n_new(), 3u);
  EXPECT_EQ(d2.base_version, 1u);

  // Serialization round trip is field-exact.
  std::stringstream ss;
  serve::save_delta(ss, d1);
  const SnapshotDelta r1 = serve::load_delta(ss);
  EXPECT_EQ(r1.base_rows, d1.base_rows);
  EXPECT_EQ(r1.base_checksum, d1.base_checksum);
  EXPECT_EQ(r1.new_checksum, d1.new_checksum);
  EXPECT_EQ(tensor::max_abs_diff(r1.normalized_rows, d1.normalized_rows), 0.0f);
  EXPECT_EQ(r1.packed_words, d1.packed_words);
  EXPECT_EQ(r1.seen_flags, d1.seen_flags);

  // Live application on a fresh engine reaches the writer's end state
  // bitwise.
  const InferenceEngine replica(snapshot);
  replica.append_delta(r1);
  const auto rv2 = replica.append_delta(d2);
  EXPECT_EQ(rv2->version, 2u);
  EXPECT_EQ(rv2->content_checksum, v2->content_checksum);
  EXPECT_EQ(rv2->seen_mask, v2->seen_mask);
  EXPECT_EQ(rv2->store->packed_copy(), v2->store->packed_copy());
  const Tensor probe = probe_embeddings(5);
  EXPECT_EQ(tensor::max_abs_diff(rv2->store->score_float(probe),
                                 v2->store->score_float(probe)),
            0.0f);

  // Offline compaction reaches it too, with the version counter advanced
  // by the chain length — and a full save/load of the compacted artifact
  // preserves every lineage field.
  auto compacted = serve::compact_snapshot(*snapshot, {d1, d2});
  EXPECT_EQ(compacted->store_version(), 2u);
  EXPECT_EQ(compacted->n_classes(), 18u);
  EXPECT_EQ(tensor::max_abs_diff(compacted->prototypes().normalized_copy(),
                                 v2->store->normalized_copy()),
            0.0f);
  EXPECT_EQ(compacted->prototypes().packed_copy(), v2->store->packed_copy());
  EXPECT_EQ(serve::content_checksum(compacted->prototypes(), compacted->seen_mask()),
            v2->content_checksum);

  std::stringstream snap_ss;
  serve::save_snapshot(snap_ss, *compacted);
  auto reloaded = serve::load_snapshot(snap_ss);
  EXPECT_EQ(reloaded->store_version(), 2u);
  EXPECT_EQ(reloaded->prototypes().packed_copy(), v2->store->packed_copy());
}

TEST(Evolution, MismatchedDeltaRejectedWithNothingPublished) {
  auto snapshot = make_snapshot(8);
  const InferenceEngine writer(snapshot);
  const auto v0 = writer.pin();
  const auto v1 = writer.append_classes(rand_attrs(2, 0xE1ULL));
  const auto v2 = writer.append_classes(rand_attrs(2, 0xE2ULL));
  const SnapshotDelta d2 = serve::make_delta(*v1, *v2);

  // Applying the chain's second link first: wrong base triple.
  const InferenceEngine replica(snapshot);
  EXPECT_THROW(replica.append_delta(d2), std::invalid_argument);
  EXPECT_EQ(replica.pin()->version, 0u);

  // A flipped payload byte: base triple matches, end checksum cannot.
  SnapshotDelta d1 = serve::make_delta(*v0, *v1);
  d1.normalized_rows.data()[0] += 1.0f;
  try {
    replica.append_delta(d1);
    FAIL() << "expected the corrupt delta to be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos) << e.what();
  }
  EXPECT_EQ(replica.pin()->version, 0u);
  EXPECT_EQ(replica.pin()->content_checksum, v0->content_checksum);
}

// -- registry: delta routing, strong guarantee under a concurrent reader ------

TEST(Evolution, CorruptDeltaFileLeavesServedVersionAnsweringUnderConcurrentReader) {
  auto snapshot = make_snapshot(10);
  const InferenceEngine writer(snapshot);
  const auto base_ver = writer.pin();  // pin *before* the append publishes
  const SnapshotDelta good =
      serve::make_delta(*base_ver, *writer.append_classes(rand_attrs(3, 0xF1ULL)));

  const std::string good_path = "evolution_good.hdcdelta";
  const std::string bad_path = "evolution_bad.hdcdelta";
  serve::save_delta_file(good_path, good);
  {
    SnapshotDelta bad = good;
    bad.packed_words[0] ^= 0x8000000000000000ULL;  // checksum can no longer land
    serve::save_delta_file(bad_path, bad);
  }
  ASSERT_TRUE(serve::is_delta_file(good_path));

  serve::ServerConfig cfg;
  cfg.n_workers = 1;
  cfg.batch.max_batch = 4;
  cfg.batch.max_delay_ms = 0.2;
  serve::ModelRegistry registry(cfg);
  registry.load("m", snapshot, ScoringMode::kFloatCosine);

  // Reader hammers the model throughout the failed apply; every request
  // must come back kOk against the intact version.
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> served{0}, failed{0};
  std::thread reader([&] {
    util::Rng rng(0x77ULL);
    while (!stop.load()) {
      serve::InferRequest req;
      req.model_key = "m";
      req.input = Tensor::randn({kDim}, rng);
      req.k = 2;
      const serve::InferResult r = registry.submit(std::move(req)).get();
      (r.ok() ? served : failed).fetch_add(1);
    }
  });

  // Let traffic genuinely overlap the failed apply on both sides.
  while (served.load() == 0) std::this_thread::yield();
  EXPECT_THROW(registry.load_file("m", bad_path), std::runtime_error);
  EXPECT_EQ(registry.engine("m")->store_version(), 0u);
  EXPECT_EQ(registry.engine("m")->n_classes(), 10u);

  // The strong guarantee is not "fail once then wedge": the valid delta
  // still applies cleanly afterwards.
  registry.load_file("m", good_path);
  EXPECT_EQ(registry.engine("m")->store_version(), 1u);
  EXPECT_EQ(registry.engine("m")->n_classes(), 13u);
  const std::size_t before_grown = served.load();
  while (served.load() <= before_grown) std::this_thread::yield();

  stop.store(true);
  reader.join();
  EXPECT_EQ(failed.load(), 0u);
  EXPECT_GT(served.load(), 0u);

  std::remove(good_path.c_str());
  std::remove(bad_path.c_str());
}

// -- append-while-serving storm ----------------------------------------------

TEST(Evolution, AppendWhileServingStormDropsNothingAndMatchesColdRebuild) {
  auto snapshot = make_gzsl(12, 6);
  serve::ServerConfig cfg;
  cfg.n_workers = 2;
  cfg.batch.max_batch = 8;
  cfg.batch.max_delay_ms = 0.2;
  cfg.batch.max_queue_depth = 1 << 16;  // admission control must never trip
  serve::ModelRegistry registry(cfg);
  registry.load("m", snapshot, ScoringMode::kBinaryHamming);

  constexpr std::size_t kAppends = 6, kPerAppend = 2, kThreads = 3;
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> served{0}, failed{0};
  std::vector<std::thread> traffic;
  for (std::size_t t = 0; t < kThreads; ++t) {
    traffic.emplace_back([&, t] {
      util::Rng rng(0x1000ULL + t);
      while (!stop.load()) {
        serve::InferRequest req;
        req.model_key = "m";
        req.input = Tensor::randn({kDim}, rng);
        req.k = 3;
        const serve::InferResult r = registry.submit(std::move(req)).get();
        (r.ok() ? served : failed).fetch_add(1);
      }
    });
  }

  // Record the per-append deltas so the end state can be cold-rebuilt.
  std::vector<SnapshotDelta> chain;
  const auto engine = registry.engine("m");
  for (std::size_t a = 0; a < kAppends; ++a) {
    const auto before = engine->pin();
    const std::uint64_t ver = registry.append_classes(
        "m", rand_attrs(kPerAppend, 0x2000ULL + a), a % 2 ? std::vector<std::uint8_t>{1, 0}
                                                          : std::vector<std::uint8_t>{});
    EXPECT_EQ(ver, a + 1);
    chain.push_back(serve::make_delta(*before, *engine->pin()));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (auto& t : traffic) t.join();

  EXPECT_EQ(failed.load(), 0u) << "the storm dropped requests";
  EXPECT_GT(served.load(), 0u);
  EXPECT_EQ(engine->store_version(), kAppends);
  EXPECT_EQ(engine->n_classes(), 18 + kAppends * kPerAppend);

  // Post-swap top-k must be bit-identical to a cold engine rebuilt from
  // the compacted snapshot.
  auto compacted = serve::compact_snapshot(*snapshot, chain);
  const InferenceEngine cold(
      std::shared_ptr<const ModelSnapshot>(std::move(compacted)),
      ScoringMode::kBinaryHamming);
  const Tensor probe = probe_embeddings(8);
  expect_topk_identical(engine->topk_batch(probe, 5), cold.topk_batch(probe, 5),
                        "post-storm live vs compacted cold rebuild");
  EXPECT_EQ(engine->pin()->content_checksum, cold.pin()->content_checksum);
  registry.stop_all();
}

// -- GZSL auto-calibration ----------------------------------------------------

TEST(Evolution, PenaltyRecalibratesFromValidationSplitAfterAppend) {
  auto snapshot = make_gzsl(10, 5);

  // A perfectly separable split: the prototypes themselves, labeled.
  auto calib = std::make_shared<serve::GzslCalibration>();
  calib->embeddings = snapshot->prototypes().normalized_copy();
  calib->labels.resize(snapshot->n_classes());
  for (std::size_t c = 0; c < calib->labels.size(); ++c) calib->labels[c] = c;

  const InferenceEngine engine(snapshot, ScoringMode::kFloatCosine, 1, 0.0f,
                               serve::Precision::kFloat32, serve::RetrievalMode::kExact, 0, 4,
                               calib);
  const auto v0 = engine.pin();
  EXPECT_EQ(v0->penalty.penalty,
            serve::calibrate_seen_penalty(*v0->store, v0->seen_mask, *calib, false));

  const auto v1 = engine.append_classes(rand_attrs(4, 0xCA1ULL));
  EXPECT_EQ(v1->penalty.penalty,
            serve::calibrate_seen_penalty(*v1->store, v1->seen_mask, *calib, false));

  // Precedence: an explicit knob wins over the snapshot's persisted value
  // and survives appends unrecalibrated.
  const InferenceEngine knob(snapshot, ScoringMode::kFloatCosine, 1, 0.75f);
  EXPECT_EQ(knob.pin()->penalty.penalty, 0.75f);
  EXPECT_EQ(knob.append_classes(rand_attrs(2, 0xCA2ULL))->penalty.penalty, 0.75f);
}

TEST(Evolution, PersistedCalibratedPenaltyAdoptedOnLoad) {
  auto snapshot = make_gzsl(10, 5);
  snapshot->set_calibrated_penalty(0.375f);
  std::stringstream ss;
  serve::save_snapshot(ss, *snapshot);
  auto loaded = serve::load_snapshot(ss);
  EXPECT_EQ(loaded->calibrated_penalty(), 0.375f);

  const InferenceEngine engine(std::shared_ptr<const ModelSnapshot>(std::move(loaded)));
  EXPECT_EQ(engine.pin()->penalty.penalty, 0.375f);
}

// -- registry metrics ---------------------------------------------------------

TEST(Evolution, RegistryExportsVersionMetricsAndTableColumn) {
  auto snapshot = make_snapshot(10);
  serve::ModelRegistry registry;
  registry.load("evo-metrics", snapshot, ScoringMode::kFloatCosine);
  auto& reg = obs::default_registry();
  EXPECT_EQ(reg.gauge("serve_store_version", {{"model", "evo-metrics"}})->value(), 0.0);

  registry.append_classes("evo-metrics", rand_attrs(4, 0x31ULL));
  registry.append_classes("evo-metrics", rand_attrs(3, 0x32ULL));
  EXPECT_EQ(reg.gauge("serve_store_version", {{"model", "evo-metrics"}})->value(), 2.0);
  EXPECT_EQ(reg.counter("serve_classes_appended_total", {{"model", "evo-metrics"}})->value(),
            7u);

  const std::string table = registry.to_table().to_text();
  EXPECT_NE(table.find("ver"), std::string::npos);
  registry.stop_all();
}

// -- the wire: kAppendClasses admin frames ------------------------------------

TEST(Evolution, AppendFrameCodecRoundTripsAndRejectsTruncation) {
  net::AppendRequest req;
  req.model_key = "m0";
  req.request_id = 42;
  req.attributes = rand_attrs(3, 0x99ULL);
  req.seen_flags = {1, 0, 1};

  const std::vector<char> frame = net::encode_append_request_frame(req);
  const net::FrameHeader header = net::decode_header(frame.data());
  EXPECT_EQ(header.type, net::FrameType::kAppendClasses);
  const net::AppendRequest back =
      net::decode_append_request_payload(frame.data() + net::kHeaderBytes,
                                         header.payload_bytes);
  EXPECT_EQ(back.model_key, "m0");
  EXPECT_EQ(back.request_id, 42u);
  EXPECT_EQ(back.seen_flags, req.seen_flags);
  EXPECT_EQ(tensor::max_abs_diff(back.attributes, req.attributes), 0.0f);

  // Every strict prefix fails by name, never by crash or partial object.
  for (std::size_t cut = 0; cut < header.payload_bytes; cut += 7)
    EXPECT_THROW(net::decode_append_request_payload(frame.data() + net::kHeaderBytes, cut),
                 net::ProtocolError);

  net::AppendResult res;
  res.request_id = 42;
  res.status = serve::InferStatus::kOk;
  res.version = 3;
  res.n_classes = 21;
  const std::vector<char> rframe = net::encode_append_response_frame(res);
  const net::FrameHeader rheader = net::decode_header(rframe.data());
  EXPECT_EQ(rheader.type, net::FrameType::kAppendResponse);
  const net::AppendResult rback = net::decode_append_response_payload(
      rframe.data() + net::kHeaderBytes, rheader.payload_bytes);
  EXPECT_EQ(rback.version, 3u);
  EXPECT_EQ(rback.n_classes, 21u);
}

TEST(Evolution, WireAppendGrowsServedModelAndRejectsBadShapes) {
  auto snapshot = make_snapshot(10);
  serve::ServerConfig cfg;
  cfg.n_workers = 1;
  cfg.batch.max_batch = 4;
  cfg.batch.max_delay_ms = 0.2;
  serve::ModelRegistry registry(cfg);
  registry.load("m0", snapshot, ScoringMode::kFloatCosine);

  net::NetServerConfig ncfg;
  ncfg.port = 0;
  net::NetServer server(registry, ncfg);
  server.start();
  net::NetClient client("127.0.0.1", server.port());

  // A mismatched attribute width is a named status with nothing published.
  util::Rng bad_rng(0x17ULL);
  net::AppendRequest bad;
  bad.model_key = "m0";
  bad.attributes = Tensor::randn({2, kAlpha + 1}, bad_rng);
  const net::AppendResult bad_res = client.append_classes(std::move(bad));
  EXPECT_NE(bad_res.status, serve::InferStatus::kOk);
  EXPECT_EQ(registry.engine("m0")->store_version(), 0u);

  net::AppendRequest good;
  good.model_key = "m0";
  good.attributes = rand_attrs(4, 0x44ULL);
  good.seen_flags = {0, 1, 0, 0};
  const net::AppendResult res = client.append_classes(std::move(good));
  EXPECT_EQ(res.status, serve::InferStatus::kOk) << res.message;
  EXPECT_EQ(res.version, 1u);
  EXPECT_EQ(res.n_classes, 14u);
  EXPECT_EQ(registry.engine("m0")->n_classes(), 14u);

  // An unknown key resolves to kBadModel, connection intact.
  net::AppendRequest ghost;
  ghost.model_key = "nope";
  ghost.attributes = rand_attrs(1, 0x45ULL);
  EXPECT_EQ(client.append_classes(std::move(ghost)).status, serve::InferStatus::kBadModel);
  EXPECT_TRUE(client.connected());

  // Inference over the grown space works on the same connection.
  serve::InferRequest req;
  req.model_key = "m0";
  req.input = probe_embeddings(1);
  req.k = 14;
  const serve::InferResult r = client.infer(std::move(req));
  EXPECT_TRUE(r.ok()) << r.message;
  EXPECT_EQ(r.topk.size(), 14u);

  client.close();
  server.stop();
  registry.stop_all();
}

}  // namespace
}  // namespace hdczsc
