#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "util/config.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace hdczsc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  util::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  util::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  util::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowUnbiasedRange) {
  util::Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 3000; ++i) {
    const auto v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  util::Rng rng(11);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, RademacherBalanced) {
  util::Rng rng(13);
  long s = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) s += rng.rademacher();
  EXPECT_LT(std::abs(s), n / 25);
}

TEST(Rng, PermutationIsPermutation) {
  util::Rng rng(17);
  auto p = rng.permutation(100);
  std::set<std::size_t> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(*s.begin(), 0u);
  EXPECT_EQ(*s.rbegin(), 99u);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  util::Rng a(23);
  util::Rng b = a.split();
  util::Rng c = a.split();
  EXPECT_NE(b.next_u64(), c.next_u64());
}

TEST(Parallel, CoversAllIndicesOnce) {
  std::vector<std::atomic<int>> hits(1000);
  util::parallel_for(0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); }, 16);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ChunksPartitionRange) {
  std::atomic<std::size_t> total{0};
  util::parallel_for_chunks(5, 777, [&](std::size_t b, std::size_t e) {
    total.fetch_add(e - b);
  }, 10);
  EXPECT_EQ(total.load(), 772u);
}

TEST(Parallel, EmptyRangeIsNoop) {
  bool called = false;
  util::parallel_for(10, 10, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Table, AlignedTextOutput) {
  util::Table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"bb", "22"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  util::Table t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvEscapesCommas) {
  util::Table t;
  t.set_header({"x"});
  t.add_row({"a,b"});
  EXPECT_NE(t.to_csv().find("\"a,b\""), std::string::npos);
}

TEST(Table, MuSigmaFormat) {
  EXPECT_EQ(util::Table::mu_sigma(1.234, 0.05, 2), "1.23 ± 0.05");
}

TEST(ArgMap, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--epochs=5", "--verbose", "--lr=0.5", "positional"};
  util::ArgMap args(5, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("epochs", 0), 5);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(args.get_double("lr", 0.0), 0.5);
  EXPECT_EQ(args.get_str("missing", "dflt"), "dflt");
}

}  // namespace
}  // namespace hdczsc
