#include <gtest/gtest.h>

#include "core/attribute_encoder.hpp"
#include "core/image_encoder.hpp"
#include "core/similarity.hpp"
#include "core/zsc_model.hpp"
#include "tensor/ops.hpp"

namespace hdczsc {
namespace {

using nn::Tensor;

TEST(SimilarityKernel, LogitsAreScaledCosines) {
  core::SimilarityKernel kernel(2.0f);
  Tensor e({1, 2}, std::vector<float>{3, 4});   // unit: (0.6, 0.8)
  Tensor c({2, 2}, std::vector<float>{3, 4, -4, 3});
  Tensor p = kernel.forward(e, c, false);
  EXPECT_NEAR(p.at(0, 0), 2.0f, 1e-5);  // cos=1, scale 2
  EXPECT_NEAR(p.at(0, 1), 0.0f, 1e-5);  // orthogonal
}

TEST(SimilarityKernel, ScaleIsExpOfParameter) {
  core::SimilarityKernel kernel(0.07f);
  EXPECT_NEAR(kernel.scale(), 0.07f, 1e-6);
  kernel.log_scale().value[0] = 0.0f;
  EXPECT_NEAR(kernel.scale(), 1.0f, 1e-6);
  EXPECT_THROW(core::SimilarityKernel(-1.0f), std::invalid_argument);
}

TEST(SimilarityKernel, BackwardBeforeForwardThrows) {
  core::SimilarityKernel kernel(1.0f);
  EXPECT_THROW(kernel.backward(Tensor({1, 1})), std::logic_error);
}

TEST(SimilarityKernel, DimMismatchThrows) {
  core::SimilarityKernel kernel(1.0f);
  EXPECT_THROW(kernel.forward(Tensor({1, 3}), Tensor({2, 4}), false), std::invalid_argument);
}

TEST(HdcEncoder, PhiIsAtimesB) {
  auto space = data::AttributeSpace::toy(3, 2, 4);
  util::Rng rng(1);
  core::HdcAttributeEncoder enc(space, 64, rng);
  EXPECT_EQ(enc.dim(), 64u);
  EXPECT_EQ(enc.n_attributes(), 6u);
  EXPECT_FALSE(enc.trainable());
  EXPECT_TRUE(enc.parameters().empty());

  util::Rng rng2(2);
  Tensor a = Tensor::rand_uniform({5, 6}, rng2);
  Tensor phi = enc.encode(a, false);
  Tensor expect = tensor::matmul(a, enc.dictionary_tensor());
  EXPECT_LT(tensor::max_abs_diff(phi, expect), 1e-5f);
}

TEST(HdcEncoder, DictionaryEntriesAreBoundCodebookPairs) {
  auto space = data::AttributeSpace::cub();
  util::Rng rng(3);
  core::HdcAttributeEncoder enc(space, 256, rng);
  const auto& dict = enc.dictionary();
  EXPECT_EQ(dict.n_groups(), 28u);
  EXPECT_EQ(dict.n_values(), 61u);
  EXPECT_EQ(dict.n_attributes(), 312u);
  // Spot-check binding identity for a few attributes.
  for (std::size_t x : {0u, 100u, 311u}) {
    auto pair = dict.pairs()[x];
    auto expect = dict.groups()[pair.group].bind(dict.values()[pair.value]);
    EXPECT_EQ(dict.attribute_vector(x), expect);
  }
}

TEST(HdcEncoder, BackwardReturnsGradWrtA) {
  auto space = data::AttributeSpace::toy(2, 2, 4);
  util::Rng rng(4);
  core::HdcAttributeEncoder enc(space, 32, rng);
  Tensor grad_phi({3, 32}, 1.0f);
  Tensor da = enc.backward(grad_phi);
  EXPECT_EQ(da.shape(), (tensor::Shape{3, 4}));
}

TEST(MlpEncoder, TrainableWithParameters) {
  util::Rng rng(5);
  core::MlpAttributeEncoder enc(6, 8, 16, rng);
  EXPECT_TRUE(enc.trainable());
  EXPECT_EQ(enc.parameters().size(), 4u);
  EXPECT_EQ(enc.dim(), 16u);
  Tensor a = Tensor::rand_uniform({2, 6}, rng);
  Tensor phi = enc.encode(a, true);
  EXPECT_EQ(phi.shape(), (tensor::Shape{2, 16}));
  Tensor da = enc.backward(Tensor(phi.shape(), 1.0f));
  EXPECT_EQ(da.shape(), a.shape());
}

TEST(MakeAttributeEncoder, FactoryDispatch) {
  auto space = data::AttributeSpace::toy(2, 2, 4);
  util::Rng rng(6);
  EXPECT_EQ(core::make_attribute_encoder("hdc", space, 32, 8, rng)->name(), "hdc");
  EXPECT_EQ(core::make_attribute_encoder("mlp", space, 32, 8, rng)->name(), "mlp");
  EXPECT_THROW(core::make_attribute_encoder("gan", space, 32, 8, rng),
               std::invalid_argument);
}

TEST(ImageEncoder, ProjectionControlsDim) {
  util::Rng rng(7);
  core::ImageEncoderConfig cfg;
  cfg.arch = "resnet_micro";
  cfg.proj_dim = 48;
  core::ImageEncoder with_fc(cfg, rng);
  EXPECT_EQ(with_fc.dim(), 48u);
  EXPECT_TRUE(with_fc.has_projection());

  cfg.use_projection = false;
  core::ImageEncoder without_fc(cfg, rng);
  EXPECT_EQ(without_fc.dim(), without_fc.backbone_feature_dim());
  EXPECT_FALSE(without_fc.has_projection());
  EXPECT_TRUE(without_fc.projection_parameters().empty());
}

TEST(ImageEncoder, ForwardBackwardShapes) {
  util::Rng rng(8);
  core::ImageEncoderConfig cfg;
  cfg.arch = "resnet_micro";
  cfg.proj_dim = 24;
  core::ImageEncoder enc(cfg, rng);
  Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  Tensor e = enc.forward(x, true);
  EXPECT_EQ(e.shape(), (tensor::Shape{2, 24}));
  Tensor gx = enc.backward(Tensor(e.shape(), 0.1f));
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(ImageEncoder, ProjectionOnlyBackwardStopsEarly) {
  util::Rng rng(9);
  core::ImageEncoderConfig cfg;
  cfg.arch = "resnet_micro";
  cfg.proj_dim = 24;
  core::ImageEncoder enc(cfg, rng);
  Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  enc.forward(x, true);
  Tensor g = enc.backward(Tensor({2, 24}, 0.1f), /*through_backbone=*/false);
  // Gradient is returned at the backbone output, not the image.
  EXPECT_EQ(g.shape(), (tensor::Shape{2, enc.backbone_feature_dim()}));
}

TEST(ZscModel, FactoryAndDimsConsistent) {
  auto space = data::AttributeSpace::cub();
  util::Rng rng(10);
  core::ZscModelConfig cfg;
  cfg.image.arch = "resnet_micro";
  cfg.image.proj_dim = 64;
  auto model = core::make_zsc_model(cfg, space, rng);
  EXPECT_EQ(model->dim(), 64u);
  EXPECT_EQ(model->attribute_encoder().dim(), 64u);
}

TEST(ZscModel, ClassLogitsShape) {
  auto space = data::AttributeSpace::cub();
  util::Rng rng(11);
  core::ZscModelConfig cfg;
  cfg.image.arch = "resnet_micro";
  cfg.image.proj_dim = 32;
  auto model = core::make_zsc_model(cfg, space, rng);
  Tensor images = Tensor::rand_uniform({2, 3, 16, 16}, rng);
  Tensor a = Tensor::rand_uniform({7, 312}, rng);
  Tensor p = model->class_logits(images, a, false);
  EXPECT_EQ(p.shape(), (tensor::Shape{2, 7}));
}

TEST(ZscModel, AttributeLogitsRequireHdcEncoder) {
  auto space = data::AttributeSpace::cub();
  util::Rng rng(12);
  core::ZscModelConfig cfg;
  cfg.image.arch = "resnet_micro";
  cfg.image.proj_dim = 32;
  cfg.attribute_encoder = "mlp";
  auto model = core::make_zsc_model(cfg, space, rng);
  Tensor images = Tensor::rand_uniform({1, 3, 16, 16}, rng);
  EXPECT_THROW(model->attribute_logits(images, false), std::logic_error);
}

TEST(ZscModel, AttributeLogitsShapeWithHdc) {
  auto space = data::AttributeSpace::cub();
  util::Rng rng(13);
  core::ZscModelConfig cfg;
  cfg.image.arch = "resnet_micro";
  cfg.image.proj_dim = 32;
  auto model = core::make_zsc_model(cfg, space, rng);
  Tensor images = Tensor::rand_uniform({2, 3, 16, 16}, rng);
  Tensor q = model->attribute_logits(images, false);
  EXPECT_EQ(q.shape(), (tensor::Shape{2, 312}));
}

TEST(ZscModel, HdcAndMlpParameterCountsDiffer) {
  auto space = data::AttributeSpace::cub();
  util::Rng rng(14);
  core::ZscModelConfig cfg;
  cfg.image.arch = "resnet_micro";
  cfg.image.proj_dim = 32;
  auto hdc_model = core::make_zsc_model(cfg, space, rng);
  cfg.attribute_encoder = "mlp";
  cfg.mlp_hidden = 16;
  auto mlp_model = core::make_zsc_model(cfg, space, rng);
  const std::size_t mlp_extra = 312u * 16 + 16 + 16u * 32 + 32;
  EXPECT_EQ(mlp_model->parameter_count(), hdc_model->parameter_count() + mlp_extra);
}

TEST(ZscModel, DimMismatchRejected) {
  auto space = data::AttributeSpace::cub();
  util::Rng rng(15);
  core::ImageEncoderConfig icfg;
  icfg.arch = "resnet_micro";
  icfg.proj_dim = 32;
  auto img = std::make_unique<core::ImageEncoder>(icfg, rng);
  auto attr = core::make_attribute_encoder("hdc", space, 64, 8, rng);
  EXPECT_THROW(core::ZscModel(std::move(img), std::move(attr), 0.05f), std::invalid_argument);
}

}  // namespace
}  // namespace hdczsc
