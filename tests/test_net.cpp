// The HDCN wire protocol and its epoll front-end: codec round-trips, a
// fuzz-style truncation sweep (a malformed or cut-short frame must fail
// with a named ProtocolError, never a crash or a partial read), and
// client/server loopback — network-served predictions bit-identical to the
// in-process engine on both scoring paths, overload surfacing as
// kOverloaded over the wire, and abrupt-disconnect survival.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <future>
#include <vector>

#include "core/pipeline.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "serve/model_registry.hpp"
#include "util/rng.hpp"

namespace hdczsc {
namespace {

using nn::Tensor;

/// One cheap trained pipeline + a live loopback server (float + binary
/// endpoints over the same snapshot) shared by every test in this file.
struct SharedNet {
  core::TrainedPipeline tp;
  std::shared_ptr<const serve::ModelSnapshot> snapshot;
  std::unique_ptr<serve::ModelRegistry> registry;
  std::unique_ptr<net::NetServer> server;

  static SharedNet& get() {
    static SharedNet s;
    return s;
  }

 private:
  SharedNet() {
    core::PipelineConfig cfg;
    cfg.n_classes = 8;
    cfg.images_per_class = 4;
    cfg.train_instances = 3;
    cfg.image_size = 32;
    cfg.split = "zs";
    cfg.zs_train_classes = 4;
    cfg.model.image.proj_dim = 64;
    cfg.run_phase1 = false;
    cfg.run_phase2 = false;
    cfg.phase3 = {2, 16, 1e-2f, 1e-4f, 5.0f, true, false};
    cfg.augment.enabled = false;
    tp = core::run_pipeline_trained(cfg);
    snapshot = std::make_shared<serve::ModelSnapshot>(tp.model, tp.test_class_attributes);

    serve::ServerConfig scfg;
    scfg.n_workers = 1;
    scfg.batch.max_batch = 4;
    scfg.batch.max_delay_ms = 1.0;
    scfg.batch.max_queue_depth = 256;
    registry = std::make_unique<serve::ModelRegistry>(scfg);
    registry->load("float", snapshot, serve::ScoringMode::kFloatCosine);
    registry->load("binary", snapshot, serve::ScoringMode::kBinaryHamming);
    server = std::make_unique<net::NetServer>(*registry, net::NetServerConfig{});
    server->start();
  }
};

serve::InferRequest sample_request() {
  util::Rng rng(11);
  serve::InferRequest req;
  req.model_key = "some.model-v1";
  req.input = Tensor::randn({6}, rng);
  req.k = 3;
  req.scoring = serve::ScoringSelect::kBinaryHamming;
  req.want_logits = true;
  req.request_id = 0xDEADBEEFCAFEULL;
  return req;
}

serve::InferResult sample_result() {
  serve::InferResult res;
  res.request_id = 77;
  res.status = serve::InferStatus::kOk;
  res.topk = {{4, 0.75f}, {1, 0.5f}};
  res.logits = {0.1f, 0.5f, -0.25f, 0.0f, 0.75f};
  res.timings.queue_wait_ms = 0.25;
  res.timings.collect_ms = 0.01;
  res.timings.embed_ms = 1.5;
  res.timings.score_ms = 0.125;
  res.timings.total_ms = 2.0;
  return res;
}

TEST(NetProtocol, HeaderCodecRoundTrip) {
  char buf[net::kHeaderBytes];
  net::encode_header(buf, net::FrameType::kInferRequest, 1234);
  const net::FrameHeader h = net::decode_header(buf);
  EXPECT_EQ(h.type, net::FrameType::kInferRequest);
  EXPECT_EQ(h.payload_bytes, 1234u);
}

TEST(NetProtocol, HeaderRejectsBadMagicVersionTypeAndSize) {
  char good[net::kHeaderBytes];
  net::encode_header(good, net::FrameType::kPing, 0);

  auto expect_status = [&](char* buf, serve::InferStatus want) {
    try {
      net::decode_header(buf);
      FAIL() << "decode_header accepted a malformed header";
    } catch (const net::ProtocolError& e) {
      EXPECT_EQ(e.status(), want);
    }
  };

  char bad[net::kHeaderBytes];
  std::memcpy(bad, good, sizeof(bad));
  bad[0] ^= 0x7F;  // magic
  expect_status(bad, serve::InferStatus::kBadProtocol);

  std::memcpy(bad, good, sizeof(bad));
  bad[4] = 99;  // version
  expect_status(bad, serve::InferStatus::kBadProtocol);

  std::memcpy(bad, good, sizeof(bad));
  bad[5] = 0;  // frame type 0: not assigned
  expect_status(bad, serve::InferStatus::kBadFrame);

  std::memcpy(bad, good, sizeof(bad));
  bad[6] = 1;  // reserved bits must be zero
  expect_status(bad, serve::InferStatus::kBadFrame);

  std::memcpy(bad, good, sizeof(bad));
  const std::uint32_t huge = static_cast<std::uint32_t>(net::kMaxPayloadBytes + 1);
  std::memcpy(bad + 8, &huge, 4);  // oversized payload
  expect_status(bad, serve::InferStatus::kBadFrame);
}

TEST(NetProtocol, RequestPayloadRoundTrip) {
  const serve::InferRequest req = sample_request();
  const std::vector<char> frame = net::encode_request_frame(req);
  const net::FrameHeader h = net::decode_header(frame.data());
  ASSERT_EQ(h.type, net::FrameType::kInferRequest);
  ASSERT_EQ(frame.size(), net::kHeaderBytes + h.payload_bytes);

  const serve::InferRequest back =
      net::decode_request_payload(frame.data() + net::kHeaderBytes, h.payload_bytes);
  EXPECT_EQ(back.model_key, req.model_key);
  EXPECT_EQ(back.k, req.k);
  EXPECT_EQ(back.scoring, req.scoring);
  EXPECT_EQ(back.want_logits, req.want_logits);
  EXPECT_EQ(back.request_id, req.request_id);
  ASSERT_EQ(back.input.shape(), req.input.shape());
  for (std::size_t i = 0; i < req.input.numel(); ++i)
    EXPECT_EQ(back.input.data()[i], req.input.data()[i]);
}

TEST(NetProtocol, ResponsePayloadRoundTrip) {
  const serve::InferResult res = sample_result();
  const std::vector<char> frame = net::encode_response_frame(res);
  const net::FrameHeader h = net::decode_header(frame.data());
  ASSERT_EQ(h.type, net::FrameType::kInferResponse);

  const serve::InferResult back =
      net::decode_response_payload(frame.data() + net::kHeaderBytes, h.payload_bytes);
  EXPECT_EQ(back.request_id, res.request_id);
  EXPECT_EQ(back.status, res.status);
  ASSERT_EQ(back.topk.size(), res.topk.size());
  for (std::size_t i = 0; i < res.topk.size(); ++i) {
    EXPECT_EQ(back.topk[i].label, res.topk[i].label);
    EXPECT_EQ(back.topk[i].score, res.topk[i].score);
  }
  EXPECT_EQ(back.logits, res.logits);
  EXPECT_EQ(back.timings.queue_wait_ms, res.timings.queue_wait_ms);
  EXPECT_EQ(back.timings.total_ms, res.timings.total_ms);
}

TEST(NetProtocol, ErrorResponseRoundTripsMessage) {
  serve::InferResult err = serve::make_error_result(
      12, serve::InferStatus::kOverloaded, "queue full (max_queue_depth=64)");
  const std::vector<char> frame = net::encode_response_frame(err);
  const net::FrameHeader h = net::decode_header(frame.data());
  const serve::InferResult back =
      net::decode_response_payload(frame.data() + net::kHeaderBytes, h.payload_bytes);
  EXPECT_EQ(back.status, serve::InferStatus::kOverloaded);
  EXPECT_EQ(back.message, err.message);
  EXPECT_TRUE(back.topk.empty());
}

/// The satellite's fuzz-style sweep: every strict prefix of a valid
/// payload must decode to a named ProtocolError — no crash, no partial
/// result, no oversized allocation. Trailing bytes are equally malformed.
template <typename Decode>
void truncation_sweep(const std::vector<char>& frame, Decode&& decode) {
  const net::FrameHeader h = net::decode_header(frame.data());
  const char* payload = frame.data() + net::kHeaderBytes;
  for (std::size_t n = 0; n < h.payload_bytes; ++n) {
    try {
      decode(payload, n);
      FAIL() << "decoded a payload truncated to " << n << " of " << h.payload_bytes
             << " bytes";
    } catch (const net::ProtocolError&) {
      // named failure: exactly what a hostile/cut-short frame must produce
    }
  }
  std::vector<char> padded(payload, payload + h.payload_bytes);
  padded.push_back('\0');
  EXPECT_THROW(decode(padded.data(), padded.size()), net::ProtocolError)
      << "trailing bytes after a complete payload must be rejected";
}

TEST(NetProtocol, RequestTruncationSweepFailsNamed) {
  truncation_sweep(net::encode_request_frame(sample_request()),
                   [](const char* d, std::size_t n) { net::decode_request_payload(d, n); });
}

TEST(NetProtocol, ResponseTruncationSweepFailsNamed) {
  truncation_sweep(net::encode_response_frame(sample_result()),
                   [](const char* d, std::size_t n) { net::decode_response_payload(d, n); });
}

TEST(NetProtocol, DeclaredLengthLiesAreRejectedBeforeAllocation) {
  std::vector<char> frame = net::encode_request_frame(sample_request());
  const net::FrameHeader h = net::decode_header(frame.data());
  // The payload opens with the model_key string length (u32): claim a
  // 4 GiB string and make sure the reader refuses up front instead of
  // trying to allocate or read it.
  std::uint32_t huge = ~std::uint32_t{0};
  std::memcpy(frame.data() + net::kHeaderBytes, &huge, sizeof(huge));
  EXPECT_THROW(net::decode_request_payload(frame.data() + net::kHeaderBytes, h.payload_bytes),
               net::ProtocolError);

  // Same for a corrupted scoring byte past the end of the enum.
  frame = net::encode_request_frame(sample_request());
  const std::size_t scoring_off =
      net::kHeaderBytes + 4 + sample_request().model_key.size() + 4;
  frame[scoring_off] = 17;
  EXPECT_THROW(net::decode_request_payload(frame.data() + net::kHeaderBytes, h.payload_bytes),
               net::ProtocolError);
}

// ---------------------------------------------------------------------------
// Loopback: the live client/server pair.
// ---------------------------------------------------------------------------

TEST(NetLoopback, PingPong) {
  auto& s = SharedNet::get();
  net::NetClient client("127.0.0.1", s.server->port());
  EXPECT_TRUE(client.ping());
  EXPECT_TRUE(client.connected());
  client.close();
  EXPECT_FALSE(client.connected());
  EXPECT_FALSE(client.ping());
}

TEST(NetLoopback, ServedTopkBitIdenticalToInProcessOnBothPaths) {
  auto& s = SharedNet::get();
  util::Rng rng(23);
  const std::size_t d = s.snapshot->dim();
  for (const std::string key : {"float", "binary"}) {
    const auto engine = s.registry->engine(key);
    net::NetClient client("127.0.0.1", s.server->port());
    for (std::size_t i = 0; i < 8; ++i) {
      Tensor emb = Tensor::randn({1, d}, rng);
      const auto expected = engine->topk_batch(emb, 4);

      serve::InferRequest req;
      req.model_key = key;
      req.input = emb.reshape({d});
      req.k = 4;
      const serve::InferResult r = client.infer(std::move(req));
      ASSERT_TRUE(r.ok()) << r.message;
      ASSERT_EQ(r.topk.size(), expected[0].size());
      for (std::size_t j = 0; j < r.topk.size(); ++j) {
        EXPECT_EQ(r.topk[j].label, expected[0][j].label);
        EXPECT_EQ(r.topk[j].score, expected[0][j].score) << "wire must not perturb scores";
      }
    }
    client.close();
  }
}

TEST(NetLoopback, PipelinedSubmitsResolveByRequestId) {
  auto& s = SharedNet::get();
  util::Rng rng(31);
  const std::size_t d = s.snapshot->dim();
  net::NetClient client("127.0.0.1", s.server->port());
  std::vector<std::future<serve::InferResult>> futures;
  for (std::uint64_t i = 0; i < 48; ++i) {
    serve::InferRequest req;
    req.model_key = (i % 2 == 0) ? "float" : "binary";
    req.input = Tensor::randn({d}, rng);
    req.request_id = 1000 + i;
    futures.push_back(client.submit(std::move(req)));
  }
  for (std::uint64_t i = 0; i < futures.size(); ++i) {
    const serve::InferResult r = futures[i].get();
    ASSERT_TRUE(r.ok()) << r.message;
    EXPECT_EQ(r.request_id, 1000 + i);
  }
  // A duplicate in-flight id is rejected client-side.
  serve::InferRequest a, b;
  a.model_key = b.model_key = "float";
  a.input = Tensor::randn({d}, rng);
  b.input = Tensor::randn({d}, rng);
  a.request_id = b.request_id = 5;
  auto fa = client.submit(std::move(a));
  auto fb = client.submit(std::move(b));
  EXPECT_EQ(fb.get().status, serve::InferStatus::kBadRequest);
  EXPECT_TRUE(fa.get().ok());
  client.close();
}

TEST(NetLoopback, PerRequestFailuresAreOrdinaryResponses) {
  auto& s = SharedNet::get();
  net::NetClient client("127.0.0.1", s.server->port());
  util::Rng rng(37);

  serve::InferRequest req;
  req.model_key = "no.such.model";
  req.input = Tensor::randn({s.snapshot->dim()}, rng);
  EXPECT_EQ(client.infer(std::move(req)).status, serve::InferStatus::kBadModel);

  req = {};
  req.model_key = "float";
  req.input = Tensor::randn({s.snapshot->dim() + 3}, rng);
  EXPECT_EQ(client.infer(std::move(req)).status, serve::InferStatus::kBadShape);

  // The connection is still healthy after both failures.
  EXPECT_TRUE(client.ping());
  client.close();
}

TEST(NetLoopback, OverloadSurfacesAsKOverloadedOverTheWire) {
  auto& s = SharedNet::get();
  // A dedicated zero-depth registry: every admission is rejected.
  serve::ServerConfig scfg;
  scfg.n_workers = 1;
  scfg.batch.max_batch = 4;
  scfg.batch.max_queue_depth = 0;
  serve::ModelRegistry rejecting(scfg);
  rejecting.load("m0", s.snapshot, serve::ScoringMode::kFloatCosine);
  net::NetServer server(rejecting, net::NetServerConfig{});
  server.start();

  util::Rng rng(41);
  net::NetClient client("127.0.0.1", server.port());
  serve::InferRequest req;
  req.model_key = "m0";
  req.input = Tensor::randn({s.snapshot->dim()}, rng);
  const serve::InferResult r = client.infer(std::move(req));
  EXPECT_EQ(r.status, serve::InferStatus::kOverloaded);
  EXPECT_NE(r.message.find("queue full"), std::string::npos);
  client.close();
  server.stop();
  rejecting.stop_all();
}

TEST(NetLoopback, MalformedFrameAnswersBadFrameAndServerSurvives) {
  auto& s = SharedNet::get();
  net::Fd raw = net::tcp_connect("127.0.0.1", s.server->port());
  char header[net::kHeaderBytes];
  net::encode_header(header, net::FrameType::kInferRequest, 4);
  ASSERT_TRUE(net::send_all(raw.get(), header, sizeof(header)));
  ASSERT_TRUE(net::send_all(raw.get(), "zzzz", 4));

  // The server answers with a named kBadFrame error response...
  char resp_header[net::kHeaderBytes];
  ASSERT_TRUE(net::recv_all(raw.get(), resp_header, sizeof(resp_header)));
  const net::FrameHeader h = net::decode_header(resp_header);
  ASSERT_EQ(h.type, net::FrameType::kInferResponse);
  std::vector<char> payload(h.payload_bytes);
  ASSERT_TRUE(net::recv_all(raw.get(), payload.data(), payload.size()));
  const serve::InferResult r = net::decode_response_payload(payload.data(), payload.size());
  EXPECT_EQ(r.status, serve::InferStatus::kBadFrame);
  // ...then hangs up (framing sync is gone).
  char byte;
  EXPECT_FALSE(net::recv_all(raw.get(), &byte, 1));
  raw.reset();

  // A client frame that is not a request at all gets the same treatment.
  net::Fd pong = net::tcp_connect("127.0.0.1", s.server->port());
  net::encode_header(header, net::FrameType::kPong, 0);
  ASSERT_TRUE(net::send_all(pong.get(), header, sizeof(header)));
  ASSERT_TRUE(net::recv_all(pong.get(), resp_header, sizeof(resp_header)));
  EXPECT_EQ(net::decode_header(resp_header).type, net::FrameType::kInferResponse);
  pong.reset();

  // The server is intact: a fresh well-behaved connection still serves.
  net::NetClient client("127.0.0.1", s.server->port());
  EXPECT_TRUE(client.ping());
  client.close();
}

TEST(NetLoopback, AbruptClientDisconnectLeavesServerServing) {
  auto& s = SharedNet::get();
  util::Rng rng(43);
  {
    // Half a frame, then vanish mid-message.
    net::Fd raw = net::tcp_connect("127.0.0.1", s.server->port());
    char header[net::kHeaderBytes];
    net::encode_header(header, net::FrameType::kInferRequest, 4096);
    ASSERT_TRUE(net::send_all(raw.get(), header, sizeof(header)));
    ASSERT_TRUE(net::send_all(raw.get(), "partial", 7));
    raw.reset();
  }
  {
    // A full request, then vanish before the response can be written.
    net::NetClient client("127.0.0.1", s.server->port());
    serve::InferRequest req;
    req.model_key = "float";
    req.input = Tensor::randn({s.snapshot->dim()}, rng);
    auto fut = client.submit(std::move(req));
    client.close();  // in-flight future resolves with kTransport (or the
                     // response won, in which case it is simply kOk)
    const serve::InferResult r = fut.get();
    EXPECT_TRUE(r.status == serve::InferStatus::kTransport || r.ok());
  }
  // Either way the server keeps serving everyone else.
  net::NetClient client("127.0.0.1", s.server->port());
  serve::InferRequest req;
  req.model_key = "binary";
  req.input = Tensor::randn({s.snapshot->dim()}, rng);
  EXPECT_TRUE(client.infer(std::move(req)).ok());
  client.close();
}

TEST(NetLoopback, ServerStopResolvesClientsWithTransport) {
  auto& s = SharedNet::get();
  serve::ServerConfig scfg;
  scfg.n_workers = 1;
  scfg.batch.max_batch = 4;
  scfg.batch.max_queue_depth = 256;
  serve::ModelRegistry registry(scfg);
  registry.load("m0", s.snapshot, serve::ScoringMode::kFloatCosine);
  auto server = std::make_unique<net::NetServer>(registry, net::NetServerConfig{});
  server->start();

  net::NetClient client("127.0.0.1", server->port());
  ASSERT_TRUE(client.ping());
  server->stop();
  // Whatever is sent after the teardown resolves with a named transport
  // status — never a hang, never an exception.
  util::Rng rng(47);
  serve::InferRequest req;
  req.model_key = "m0";
  req.input = Tensor::randn({s.snapshot->dim()}, rng);
  EXPECT_EQ(client.infer(std::move(req)).status, serve::InferStatus::kTransport);
  client.close();
  registry.stop_all();
}

}  // namespace
}  // namespace hdczsc
