// Serving subsystem: the batched engine must reproduce the training-time
// forward bit-for-bit, a concurrent request storm must complete with the
// same top-1 decisions as direct batch inference, and the bit-packed binary
// prototype path must agree with float cosine in argmax.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/pipeline.hpp"
#include "hdc/hypervector.hpp"
#include "serve/server.hpp"
#include "tensor/ops.hpp"

namespace hdczsc {
namespace {

using nn::Tensor;

/// Copy image `b` of a [N, 3, S, S] batch into its own [3, S, S] tensor.
Tensor slice_image(const Tensor& images, std::size_t b) {
  const std::size_t per = images.numel() / images.size(0);
  Tensor out({images.size(1), images.size(2), images.size(3)});
  const float* src = images.data() + b * per;
  std::copy(src, src + per, out.data());
  return out;
}

/// One cheap trained pipeline + frozen snapshots shared by all serving
/// tests (phase II included: binary/float agreement needs a model whose
/// embeddings actually align with the prototypes).
struct SharedServe {
  core::TrainedPipeline tp;
  std::shared_ptr<const serve::ModelSnapshot> snapshot;           // expansion 1
  std::shared_ptr<const serve::ModelSnapshot> snapshot_expanded;  // sign-LSH x8

  static const SharedServe& get() {
    static SharedServe s;
    return s;
  }

 private:
  SharedServe() {
    core::PipelineConfig cfg;
    cfg.n_classes = 16;
    cfg.images_per_class = 6;
    cfg.train_instances = 4;
    cfg.image_size = 32;
    cfg.split = "zs";
    cfg.zs_train_classes = 12;
    cfg.model.image.arch = "resnet_micro_flat";
    cfg.model.image.proj_dim = 256;
    cfg.model.temp_scale = 4.0f;
    cfg.run_phase1 = false;
    cfg.phase2 = {8, 16, 1e-2f, 1e-4f, 5.0f, true, false};
    cfg.phase3 = {10, 16, 1e-2f, 1e-4f, 5.0f, true, false};
    cfg.augment.enabled = false;
    tp = core::run_pipeline_trained(cfg);
    snapshot = std::make_shared<serve::ModelSnapshot>(tp.model, tp.test_class_attributes);
    snapshot_expanded =
        std::make_shared<serve::ModelSnapshot>(tp.model, tp.test_class_attributes, 8);
  }
};

// -- hamming_many kernel -----------------------------------------------------

TEST(HammingMany, MatchesPairwiseHamming) {
  util::Rng rng(42);
  for (std::size_t d : {64u, 100u, 257u, 1536u}) {
    auto q = hdc::BinaryHV::random(d, rng);
    std::vector<hdc::BinaryHV> protos;
    for (int i = 0; i < 7; ++i) protos.push_back(hdc::BinaryHV::random(d, rng));
    auto h = hdc::hamming_many(q, protos);
    ASSERT_EQ(h.size(), protos.size());
    for (std::size_t i = 0; i < protos.size(); ++i)
      EXPECT_EQ(h[i], q.hamming(protos[i])) << "d=" << d << " i=" << i;
  }
}

TEST(HammingMany, DimensionMismatchThrows) {
  util::Rng rng(43);
  auto q = hdc::BinaryHV::random(128, rng);
  std::vector<hdc::BinaryHV> protos{hdc::BinaryHV::random(64, rng)};
  EXPECT_THROW(hdc::hamming_many(q, protos), std::invalid_argument);
}

/// Naive per-bit Hamming reference, independent of every packed kernel.
std::uint32_t naive_hamming(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t words) {
  std::uint32_t h = 0;
  for (std::size_t w = 0; w < words; ++w)
    for (std::uint64_t x = a[w] ^ b[w]; x != 0; x >>= 1) h += x & 1;
  return h;
}

TEST(HammingMany, RaggedTailsMatchNaiveReferenceOnEveryDispatchPath) {
  // The query-blocked kernel peels queries in blocks of 4 and the packed
  // rows carry a masked tail word whenever the code width is not a
  // multiple of 64 — sweep every remainder shape (n_queries % 4 ∈
  // {0,1,2,3}, ragged widths) against a per-bit reference, pinned to each
  // kernel variant the runtime dispatch can select. The pin is process-
  // global, so restore runtime dispatch unconditionally — even when an
  // assertion bails out of the test body early.
  struct RestoreDispatch {
    ~RestoreDispatch() { hdc::set_hamming_kernel("auto"); }
  } restore;
  const std::vector<std::string> kernels = [] {
    std::vector<std::string> k{"portable"};
    if (hdc::set_hamming_kernel("popcnt")) k.push_back("popcnt");
    hdc::set_hamming_kernel("auto");
    return k;
  }();
  EXPECT_FALSE(hdc::set_hamming_kernel("no-such-kernel"));

  util::Rng rng(44);
  for (const std::string& kernel : kernels) {
    ASSERT_TRUE(hdc::set_hamming_kernel(kernel.c_str())) << kernel;
    ASSERT_STREQ(hdc::hamming_kernel_name(), kernel.c_str());
    for (std::size_t dim : {70u, 130u, 193u, 256u}) {  // three ragged, one exact
      const std::size_t words = (dim + 63) / 64;
      for (std::size_t n_queries : {1u, 2u, 3u, 5u, 6u, 7u, 8u}) {
        const std::size_t n_rows = 23;
        // BinaryHV::random masks the tail bits — exactly what the packed
        // store's rows and encoded queries look like.
        std::vector<std::uint64_t> rows, queries;
        for (std::size_t i = 0; i < n_rows; ++i) {
          const auto hv = hdc::BinaryHV::random(dim, rng);
          rows.insert(rows.end(), hv.words().begin(), hv.words().end());
        }
        for (std::size_t q = 0; q < n_queries; ++q) {
          const auto hv = hdc::BinaryHV::random(dim, rng);
          queries.insert(queries.end(), hv.words().begin(), hv.words().end());
        }
        std::vector<std::uint32_t> multi(n_queries * n_rows), single(n_queries * n_rows);
        hdc::hamming_many_packed_multi(queries.data(), n_queries, rows.data(), n_rows,
                                       words, multi.data());
        for (std::size_t q = 0; q < n_queries; ++q)
          hdc::hamming_many_packed(queries.data() + q * words, rows.data(), n_rows, words,
                                  single.data() + q * n_rows);
        for (std::size_t q = 0; q < n_queries; ++q)
          for (std::size_t i = 0; i < n_rows; ++i) {
            const std::uint32_t want =
                naive_hamming(queries.data() + q * words, rows.data() + i * words, words);
            ASSERT_EQ(multi[q * n_rows + i], want)
                << kernel << " multi dim=" << dim << " q=" << q << "/" << n_queries
                << " row=" << i;
            ASSERT_EQ(single[q * n_rows + i], want)
                << kernel << " single dim=" << dim << " q=" << q << "/" << n_queries
                << " row=" << i;
          }
      }
    }
  }
}

// -- prototype store ---------------------------------------------------------

TEST(PrototypeStore, BinaryEqualsFloatExactlyOnBipolarData) {
  // For ±1-valued prototypes and queries, cosine == 1 - 2·hamming/d exactly,
  // so the two scoring paths must coincide (and share their argmax).
  util::Rng rng(7);
  const std::size_t d = 256, n_classes = 10, n_queries = 20;
  Tensor protos = Tensor::rademacher({n_classes, d}, rng);
  Tensor queries = Tensor::rademacher({n_queries, d}, rng);
  serve::PrototypeStore store(protos, /*scale=*/1.0f);

  Tensor pf = store.score_float(queries);
  Tensor pb = store.score_binary(queries);
  EXPECT_LT(tensor::max_abs_diff(pf, pb), 1e-4f);
  EXPECT_EQ(tensor::argmax_rows(pf), tensor::argmax_rows(pb));
}

TEST(PrototypeStore, BinaryRowsMatchSignBits) {
  util::Rng rng(8);
  Tensor protos = Tensor::randn({5, 130}, rng);
  serve::PrototypeStore store(protos, 1.0f);
  EXPECT_EQ(store.words_per_row(), 3u);
  for (std::size_t c = 0; c < 5; ++c) {
    auto row = store.binary_prototype(c);
    for (std::size_t j = 0; j < 130; ++j)
      EXPECT_EQ(row.get(j), protos.at(c, j) < 0.0f);
  }
  // Packed binary is ~32x smaller than fp32.
  EXPECT_LT(store.binary_bytes() * 16, store.float_bytes());
}

// -- engine vs. model: bit-identical batched inference -----------------------

TEST(InferenceEngine, BatchedLogitsBitIdenticalToModelClassLogits) {
  const auto& s = SharedServe::get();
  serve::InferenceEngine engine(s.snapshot, serve::ScoringMode::kFloatCosine);

  const Tensor& images = s.tp.test_set.images;
  Tensor from_model =
      s.tp.model->class_logits(images, s.tp.test_class_attributes, /*train=*/false);
  Tensor from_engine = engine.logits(images);
  ASSERT_EQ(from_model.shape(), from_engine.shape());
  EXPECT_EQ(tensor::max_abs_diff(from_model, from_engine), 0.0f)
      << "snapshot scoring must be bit-identical to the training-time forward";
}

TEST(InferenceEngine, SingleImageRowsBitIdenticalToBatch) {
  const auto& s = SharedServe::get();
  serve::InferenceEngine engine(s.snapshot, serve::ScoringMode::kFloatCosine);

  const Tensor& images = s.tp.test_set.images;
  const std::size_t n = std::min<std::size_t>(images.size(0), 8);
  Tensor batched = engine.logits(images);
  const std::size_t classes = batched.size(1);
  for (std::size_t b = 0; b < n; ++b) {
    Tensor one = slice_image(images, b).reshape(
        {1, images.size(1), images.size(2), images.size(3)});
    Tensor row = engine.logits(one);
    for (std::size_t c = 0; c < classes; ++c)
      ASSERT_EQ(row.at(0, c), batched.at(b, c)) << "row " << b << " col " << c;
  }
}

// -- binary vs. float argmax on the trained model ----------------------------

TEST(InferenceEngine, BinaryArgmaxAgreesWithFloatOnTrainedModel) {
  // Sign-LSH codes estimate the angle with error ~1/(2·sqrt(D)); Hamming
  // ranking therefore reproduces the cosine argmax except on queries whose
  // float top-2 margin is inside that noise floor. Assert (1) overall
  // agreement, (2) *exact* agreement on every confidently-scored query,
  // (3) served accuracy is preserved.
  const auto& s = SharedServe::get();
  serve::InferenceEngine feng(s.snapshot_expanded, serve::ScoringMode::kFloatCosine);
  serve::InferenceEngine beng(s.snapshot_expanded, serve::ScoringMode::kBinaryHamming);

  const Tensor& images = s.tp.test_set.images;
  Tensor fp = feng.logits(images);
  auto fl = tensor::argmax_rows(fp);
  auto bl = tensor::argmax_rows(beng.logits(images));
  ASSERT_EQ(fl.size(), bl.size());

  const float scale = s.snapshot_expanded->scale();
  std::size_t agree = 0, high_margin = 0, high_margin_agree = 0;
  for (std::size_t i = 0; i < fl.size(); ++i) {
    agree += fl[i] == bl[i];
    // Float top-2 cosine margin of query i.
    float m1 = -2.0f, m2 = -2.0f;
    for (std::size_t c = 0; c < fp.size(1); ++c) {
      const float v = fp.at(i, c) / scale;
      if (v > m1) {
        m2 = m1;
        m1 = v;
      } else if (v > m2) {
        m2 = v;
      }
    }
    if (m1 - m2 > 0.08f) {
      ++high_margin;
      high_margin_agree += fl[i] == bl[i];
    }
  }
  const double rate = static_cast<double>(agree) / static_cast<double>(fl.size());
  EXPECT_GE(rate, 0.6) << "binarized prototype scoring diverged from float cosine";
  ASSERT_GT(high_margin, 0u);
  EXPECT_EQ(high_margin_agree, high_margin)
      << "binary argmax flipped a confidently-scored query";

  // Serving metric: top-1 accuracy must survive binarization.
  const auto& labels = s.tp.test_set.labels;
  std::size_t facc = 0, bacc = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    facc += fl[i] == labels[i];
    bacc += bl[i] == labels[i];
  }
  const double gap = (static_cast<double>(facc) - static_cast<double>(bacc)) /
                     static_cast<double>(labels.size());
  EXPECT_LE(gap, 0.15) << "binary path lost too much accuracy";
}

// -- dynamic batcher ---------------------------------------------------------

using Admit = serve::DynamicBatcher::Admit;

/// Enqueue one request with a no-op completion (batcher-level tests never
/// drain through a worker).
Admit submit_one(serve::DynamicBatcher& batcher, Tensor input = Tensor({3, 2, 2})) {
  serve::InferRequest req;
  req.input = std::move(input);
  serve::InferDone done = [](serve::InferResult&&) {};
  return batcher.submit(req, done);
}

TEST(DynamicBatcher, CoalescesUpToMaxBatch) {
  serve::BatchPolicy policy;
  policy.max_batch = 4;
  policy.max_delay_ms = 0.0;  // don't wait in a single-threaded test
  serve::DynamicBatcher batcher(policy);
  for (int i = 0; i < 5; ++i) ASSERT_EQ(submit_one(batcher), Admit::kAccepted);
  EXPECT_EQ(batcher.depth(), 5u);

  std::vector<serve::DynamicBatcher::Item> items;
  ASSERT_TRUE(batcher.collect(items));
  EXPECT_EQ(items.size(), 4u);
  ASSERT_TRUE(batcher.collect(items));
  EXPECT_EQ(items.size(), 1u);

  batcher.shutdown();
  EXPECT_FALSE(batcher.collect(items));
  EXPECT_EQ(submit_one(batcher), Admit::kShutdown);
}

TEST(DynamicBatcher, AdmissionControlBoundsQueueDepth) {
  serve::BatchPolicy policy;
  policy.max_queue_depth = 3;
  serve::DynamicBatcher batcher(policy);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(submit_one(batcher), Admit::kAccepted);
  EXPECT_EQ(submit_one(batcher), Admit::kQueueFull);
  // A rejected submit must leave the request intact for the caller to
  // resolve (the batcher consumes it only on kAccepted).
  serve::InferRequest rejected;
  rejected.input = Tensor({3, 2, 2});
  rejected.request_id = 77;
  serve::InferDone done = [](serve::InferResult&&) {};
  EXPECT_EQ(batcher.submit(rejected, done), Admit::kQueueFull);
  EXPECT_EQ(rejected.request_id, 77u);
  EXPECT_EQ(rejected.input.numel(), 12u);
  EXPECT_TRUE(static_cast<bool>(done));
  batcher.shutdown();
}

TEST(DynamicBatcher, ShutdownWhileQueuedDrainsEveryItem) {
  // shutdown() rejects new submits immediately but must NOT drop what is
  // already queued: collect() keeps handing out the backlog (completions
  // intact, so the worker can resolve every accepted future) and only
  // reports end-of-stream once the queue is empty.
  serve::BatchPolicy policy;
  policy.max_batch = 3;
  policy.max_delay_ms = 0.0;
  serve::DynamicBatcher batcher(policy);
  for (int i = 0; i < 7; ++i) ASSERT_EQ(submit_one(batcher), Admit::kAccepted);

  batcher.shutdown();
  EXPECT_EQ(submit_one(batcher), Admit::kShutdown);
  EXPECT_EQ(batcher.depth(), 7u);  // the backlog survives the shutdown

  std::size_t drained = 0;
  std::vector<serve::DynamicBatcher::Item> items;
  while (batcher.collect(items)) {
    ASSERT_LE(items.size(), 3u);
    for (const auto& item : items) {
      EXPECT_TRUE(static_cast<bool>(item.done)) << "completion lost in shutdown drain";
      ++drained;
    }
  }
  EXPECT_EQ(drained, 7u);
  EXPECT_EQ(batcher.depth(), 0u);
  EXPECT_FALSE(batcher.collect(items));  // stays terminal once drained
}

TEST(DynamicBatcher, LoneRequestIsReleasedWithinTheDelayBound) {
  // Latency-bound regression: with the batch nowhere near full, a lone
  // request must be held for ~max_delay_ms (the coalescing window) and
  // then released — not a multiple of it. The container clock is noisy, so
  // the upper bound is generous; the buggy failure modes this guards
  // against (wait re-armed off the wrong timestamp, wakeup re-starting
  // the window) overshoot by whole windows, not fractions.
  serve::BatchPolicy policy;
  policy.max_batch = 8;
  policy.max_delay_ms = 50.0;
  serve::DynamicBatcher batcher(policy);

  std::vector<serve::DynamicBatcher::Item> items;
  const auto t0 = serve::DynamicBatcher::Clock::now();
  ASSERT_EQ(submit_one(batcher), Admit::kAccepted);
  std::thread collector([&] { ASSERT_TRUE(batcher.collect(items)); });
  collector.join();
  const double waited_ms =
      std::chrono::duration<double, std::milli>(serve::DynamicBatcher::Clock::now() - t0)
          .count();

  ASSERT_EQ(items.size(), 1u);
  EXPECT_GE(waited_ms, 0.5 * policy.max_delay_ms)
      << "a lone request should be held for the coalescing window";
  EXPECT_LE(waited_ms, 10.0 * policy.max_delay_ms)
      << "a lone request must be released once its delay bound expires";
  batcher.shutdown();
}

TEST(DynamicBatcher, LateArrivalsDoNotExtendTheOldestRequestsDeadline) {
  // The regression this file exists for: the coalescing wait must stay
  // armed off the *oldest* queued request. A feeder keeps injecting fresh
  // requests (each submit also wakes the collector — covering the
  // spurious-wakeup path) well past the first request's deadline; if any
  // wake re-arms the window off a newer enqueue time, the batch release
  // slips indefinitely while the feeder runs.
  serve::BatchPolicy policy;
  policy.max_batch = 1024;  // never fills — only the deadline can release
  policy.max_delay_ms = 60.0;
  policy.max_queue_depth = 4096;
  serve::DynamicBatcher batcher(policy);

  const auto t0 = serve::DynamicBatcher::Clock::now();
  ASSERT_EQ(submit_one(batcher), Admit::kAccepted);

  std::atomic<bool> stop{false};
  std::thread feeder([&] {
    while (!stop.load()) {
      submit_one(batcher);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  std::vector<serve::DynamicBatcher::Item> items;
  ASSERT_TRUE(batcher.collect(items));
  const double waited_ms =
      std::chrono::duration<double, std::milli>(serve::DynamicBatcher::Clock::now() - t0)
          .count();
  stop.store(true);
  feeder.join();

  ASSERT_GE(items.size(), 1u);
  // The batch must contain the oldest request and be released near *its*
  // deadline — the feeder ran for seconds' worth of windows, so any
  // re-arm bug shows up as an order-of-magnitude overshoot.
  EXPECT_LE(waited_ms, 10.0 * policy.max_delay_ms)
      << "late arrivals extended the oldest request's deadline";
  for (std::size_t i = 1; i < items.size(); ++i)
    EXPECT_LE(items[0].enqueued, items[i].enqueued) << "FIFO order lost";
  batcher.shutdown();
}

// -- server runtime ----------------------------------------------------------

TEST(ServerRuntime, MultiThreadedStormCompletesWithCorrectTop1) {
  const auto& s = SharedServe::get();
  auto engine = std::make_shared<serve::InferenceEngine>(s.snapshot,
                                                         serve::ScoringMode::kFloatCosine);
  const Tensor& images = s.tp.test_set.images;
  const std::size_t n_images = images.size(0);
  auto expected = engine->classify_batch(images);

  serve::ServerConfig cfg;
  cfg.n_workers = 1;
  cfg.batch.max_batch = 8;
  cfg.batch.max_delay_ms = 1.0;
  cfg.batch.max_queue_depth = 4096;
  serve::ServerRuntime server(engine, cfg);

  // Phase 1: storm *before* start() so the queue is fully loaded — the
  // drain is then guaranteed to coalesce (deterministic batch histogram).
  // The storm speaks the unified submit(InferRequest) surface: admission
  // failures would come back as statuses on the futures, not exceptions.
  const std::size_t n_threads = 4, reps = 3;
  std::vector<std::vector<std::pair<std::size_t, std::future<serve::InferResult>>>> futs(
      n_threads);
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < n_threads; ++t) {
    clients.emplace_back([&, t] {
      for (std::size_t r = 0; r < reps; ++r)
        for (std::size_t i = 0; i < n_images; ++i) {
          serve::InferRequest req;
          req.input = slice_image(images, i);
          req.request_id = i + 1;
          futs[t].emplace_back(i, server.submit(std::move(req)));
        }
    });
  }
  for (auto& c : clients) c.join();

  server.start();
  std::size_t checked = 0;
  for (auto& per_thread : futs)
    for (auto& [idx, fut] : per_thread) {
      serve::InferResult r = fut.get();
      ASSERT_EQ(r.status, serve::InferStatus::kOk)
          << serve::infer_status_name(r.status) << ": " << r.message;
      ASSERT_EQ(r.request_id, idx + 1);
      ASSERT_EQ(r.top().label, expected[idx].label);
      ASSERT_FLOAT_EQ(r.top().score, expected[idx].score);
      ++checked;
    }
  EXPECT_EQ(checked, n_threads * reps * n_images);
  server.stop();

  const auto stats = server.stats().summary();
  EXPECT_EQ(stats.completed, checked);
  EXPECT_EQ(stats.rejected, 0u);
  // A fully loaded queue must have coalesced into (mostly) full batches.
  EXPECT_GE(stats.mean_batch_size, 4.0);
  std::uint64_t hist_total = 0;
  for (auto c : stats.batch_histogram) hist_total += c;
  EXPECT_EQ(hist_total, stats.batches);
}

TEST(ServerRuntime, MalformedRequestFailsAloneWithoutPoisoningItsBatch) {
  const auto& s = SharedServe::get();
  auto engine = std::make_shared<serve::InferenceEngine>(s.snapshot,
                                                         serve::ScoringMode::kFloatCosine);
  const Tensor& images = s.tp.test_set.images;
  auto expected = engine->classify_batch(images);

  serve::ServerConfig cfg;
  cfg.batch.max_batch = 8;
  serve::ServerRuntime server(engine, cfg);

  auto submit_one = [&](Tensor in) {
    serve::InferRequest req;
    req.input = std::move(in);
    return server.submit(std::move(req));
  };

  // Wrong dimensionality is rejected synchronously, before batching.
  EXPECT_EQ(submit_one(Tensor({4, 4})).get().status, serve::InferStatus::kBadShape);

  // A wrong-sized (but 3-d) image coalesced between valid requests must
  // fail alone; the valid requests around it still complete correctly.
  std::vector<std::future<serve::InferResult>> valid;
  valid.push_back(submit_one(slice_image(images, 0)));
  auto bad = submit_one(Tensor({3, 4, 4}));
  valid.push_back(submit_one(slice_image(images, 1)));
  server.start();
  EXPECT_EQ(valid[0].get().top().label, expected[0].label);
  EXPECT_EQ(valid[1].get().top().label, expected[1].label);
  EXPECT_EQ(bad.get().status, serve::InferStatus::kBadShape);
}

TEST(ServerRuntime, StopIsTerminal) {
  const auto& s = SharedServe::get();
  auto engine = std::make_shared<serve::InferenceEngine>(s.snapshot,
                                                         serve::ScoringMode::kFloatCosine);
  serve::ServerRuntime server(engine, serve::ServerConfig{});
  server.start();
  server.stop();
  EXPECT_THROW(server.start(), std::logic_error);
  serve::InferRequest req;
  req.input = Tensor({3, 2, 2});
  EXPECT_EQ(server.submit(std::move(req)).get().status, serve::InferStatus::kShutdown);
}

TEST(ServerRuntime, RejectsWhenQueueFullThenDrainsAfterStart) {
  const auto& s = SharedServe::get();
  auto engine = std::make_shared<serve::InferenceEngine>(s.snapshot,
                                                         serve::ScoringMode::kBinaryHamming);
  const Tensor& images = s.tp.test_set.images;
  auto expected = engine->classify_batch(images);

  serve::ServerConfig cfg;
  cfg.batch.max_batch = 4;
  cfg.batch.max_queue_depth = 4;
  serve::ServerRuntime server(engine, cfg);

  auto submit_one = [&](Tensor in) {
    serve::InferRequest req;
    req.input = std::move(in);
    return server.submit(std::move(req));
  };
  std::vector<std::future<serve::InferResult>> accepted;
  for (std::size_t i = 0; i < 4; ++i) accepted.push_back(submit_one(slice_image(images, i)));
  EXPECT_EQ(submit_one(slice_image(images, 0)).get().status, serve::InferStatus::kOverloaded);
  EXPECT_EQ(server.stats().summary().rejected, 1u);

  server.start();
  for (std::size_t i = 0; i < accepted.size(); ++i)
    EXPECT_EQ(accepted[i].get().top().label, expected[i].label);
}

}  // namespace
}  // namespace hdczsc
