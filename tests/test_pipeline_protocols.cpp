// Protocol-level invariants of the experiment pipeline, parameterized over
// the paper's split protocols and both attribute encoders: example counts
// follow from the split definition, results are bit-deterministic for a
// fixed seed, and seeds actually change the draw.
#include <gtest/gtest.h>

#include <tuple>

#include "core/pipeline.hpp"

namespace hdczsc {
namespace {

core::PipelineConfig tiny_cfg(const std::string& split, const std::string& encoder) {
  core::PipelineConfig cfg;
  cfg.n_classes = 8;
  cfg.images_per_class = 4;
  cfg.train_instances = 3;
  cfg.image_size = 16;
  cfg.split = split;
  cfg.zs_train_classes = 6;
  cfg.nozs_classes = 6;
  cfg.val_classes = 2;
  cfg.model.image.arch = "resnet_micro";  // GAP variant works at 16px
  cfg.model.image.proj_dim = 32;
  cfg.model.attribute_encoder = encoder;
  cfg.run_phase1 = false;
  cfg.run_phase2 = false;  // keep each parameterized run fast
  cfg.phase3 = {1, 8, 1e-2f, 1e-4f, 5.0f, true, false};
  cfg.augment.enabled = false;
  return cfg;
}

class PipelineProtocols
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {};

TEST_P(PipelineProtocols, ExampleCountMatchesSplitDefinition) {
  auto [split, encoder] = GetParam();
  auto cfg = tiny_cfg(split, encoder);
  auto res = core::run_pipeline(cfg);
  std::size_t expect;
  if (std::string(split) == "zs") {
    expect = (cfg.n_classes - cfg.zs_train_classes) * cfg.images_per_class;
  } else if (std::string(split) == "nozs") {
    expect = cfg.nozs_classes * (cfg.images_per_class - cfg.train_instances);
  } else {  // val
    expect = cfg.val_classes * cfg.images_per_class;
  }
  EXPECT_EQ(res.zsc.n_examples, expect) << split << "/" << encoder;
  EXPECT_GE(res.zsc.top5, res.zsc.top1);
}

TEST_P(PipelineProtocols, DeterministicForFixedSeed) {
  auto [split, encoder] = GetParam();
  auto cfg = tiny_cfg(split, encoder);
  auto a = core::run_pipeline(cfg);
  auto b = core::run_pipeline(cfg);
  EXPECT_DOUBLE_EQ(a.zsc.top1, b.zsc.top1) << split << "/" << encoder;
  EXPECT_DOUBLE_EQ(a.zsc.top5, b.zsc.top5);
  EXPECT_FLOAT_EQ(static_cast<float>(a.phase3_final_loss),
                  static_cast<float>(b.phase3_final_loss));
}

INSTANTIATE_TEST_SUITE_P(
    SplitsAndEncoders, PipelineProtocols,
    ::testing::Combine(::testing::Values("zs", "nozs", "val"),
                       ::testing::Values("hdc", "mlp")),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_" + std::get<1>(info.param);
    });

TEST(PipelineProtocols, SeedOffsetsChangeTheDraw) {
  auto cfg = tiny_cfg("zs", "hdc");
  cfg.phase3.epochs = 2;
  auto a = core::run_pipeline(cfg, 0);
  auto b = core::run_pipeline(cfg, 1);
  // Different seeds -> different splits/weights -> (almost surely)
  // different training loss trajectory.
  EXPECT_NE(a.phase3_final_loss, b.phase3_final_loss);
}

TEST(PipelineProtocols, MultiSeedAggregatesAllRuns) {
  auto cfg = tiny_cfg("zs", "hdc");
  auto ms = core::run_pipeline_seeds(cfg, 3);
  EXPECT_EQ(ms.runs.size(), 3u);
  double mn = 1.0, mx = 0.0;
  for (const auto& r : ms.runs) {
    mn = std::min(mn, r.zsc.top1);
    mx = std::max(mx, r.zsc.top1);
  }
  EXPECT_GE(ms.top1_mean, mn - 1e-12);
  EXPECT_LE(ms.top1_mean, mx + 1e-12);
}

TEST(PipelineProtocols, ParameterCountsConsistentWithEncoders) {
  auto hdc_cfg = tiny_cfg("zs", "hdc");
  auto mlp_cfg = tiny_cfg("zs", "mlp");
  auto hdc_res = core::run_pipeline(hdc_cfg);
  auto mlp_res = core::run_pipeline(mlp_cfg);
  // The HDC encoder is stationary: strictly fewer trainable parameters.
  EXPECT_LT(hdc_res.trainable_parameters, mlp_res.trainable_parameters);
}

}  // namespace
}  // namespace hdczsc
