// Snapshot persistence + multi-model registry: a .hdcsnap round trip must
// be bit-identical on both scoring paths (the float GEMM *and* the packed
// binary rows), corrupt/truncated files must throw naming the offending
// record without ever registering a half-loaded model, and the registry
// must keep serving while models are hot-loaded/unloaded around it.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/zsc_model.hpp"
#include "serve/model_registry.hpp"
#include "serve/snapshot_io.hpp"
#include "tensor/ops.hpp"

namespace hdczsc {
namespace {

using nn::Tensor;

/// A cheap *untrained* model is enough for persistence tests — bit-identity
/// does not care about accuracy. A couple of train-mode forwards move the
/// BatchNorm running statistics off their init so the buffer records are
/// actually load-bearing.
struct Tiny {
  std::shared_ptr<core::ZscModel> model;
  Tensor a;  // class-attribute rows [C, α]
};

Tiny make_tiny(std::uint64_t seed, const std::string& attr_kind = "hdc",
               std::size_t n_classes = 7) {
  auto space = data::AttributeSpace::toy(6, 3, 9);  // α = 18
  core::ZscModelConfig mcfg;
  mcfg.image.arch = "resnet_micro_flat";
  mcfg.image.proj_dim = 64;
  mcfg.attribute_encoder = attr_kind;
  mcfg.mlp_hidden = 32;
  util::Rng rng(seed);
  Tiny t;
  t.model = core::make_zsc_model(mcfg, space, rng);
  util::Rng ir(seed + 1);
  for (int i = 0; i < 2; ++i)
    t.model->image_encoder().forward(Tensor::randn({4, 3, 32, 32}, ir), /*train=*/true);
  t.a = Tensor::rand_uniform({n_classes, space.n_attributes()}, ir);
  return t;
}

Tensor probe_images(std::size_t n, std::uint64_t seed = 0xBEEFULL) {
  util::Rng rng(seed);
  return Tensor::randn({n, 3, 32, 32}, rng);
}

std::string temp_path(const std::string& name) { return testing::TempDir() + name; }

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  return std::string(std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// -- round trips -------------------------------------------------------------

TEST(SnapshotIO, FloatPathRoundTripIsBitIdentical) {
  Tiny t = make_tiny(11);
  serve::ModelSnapshot original(t.model, t.a, /*binary_expansion=*/1);
  const std::string path = temp_path("roundtrip_float.hdcsnap");
  serve::save_snapshot_file(path, original);
  auto loaded = serve::load_snapshot_file(path);

  EXPECT_EQ(loaded->n_classes(), original.n_classes());
  EXPECT_EQ(loaded->dim(), original.dim());
  EXPECT_EQ(loaded->scale(), original.scale());
  EXPECT_EQ(tensor::max_abs_diff(loaded->class_attributes(), original.class_attributes()),
            0.0f);

  // The full serving forward — image encoder (incl. BatchNorm running
  // stats) + normalized prototype GEMM — must reproduce bit-for-bit.
  const Tensor probe = probe_images(6);
  const Tensor expected = original.prototypes().score_float(original.embed(probe));
  const Tensor actual = loaded->prototypes().score_float(loaded->embed(probe));
  EXPECT_EQ(tensor::max_abs_diff(expected, actual), 0.0f)
      << "persisted snapshot diverged from the in-memory one on the float path";

  // Packed binary rows travel verbatim.
  EXPECT_EQ(loaded->prototypes().packed_copy(), original.prototypes().packed_copy());

  // BatchNorm running statistics made the trip (they are not Parameters).
  auto orig_bufs = t.model->buffers();
  auto load_bufs = loaded->model_ptr()->buffers();
  ASSERT_EQ(orig_bufs.size(), load_bufs.size());
  ASSERT_GT(orig_bufs.size(), 0u);
  for (std::size_t i = 0; i < orig_bufs.size(); ++i) {
    EXPECT_EQ(orig_bufs[i].name, load_bufs[i].name);
    EXPECT_EQ(tensor::max_abs_diff(*orig_bufs[i].tensor, *load_bufs[i].tensor), 0.0f)
        << orig_bufs[i].name;
  }
}

TEST(SnapshotIO, BinaryPathRoundTripWithLshExpansion) {
  Tiny t = make_tiny(13);
  serve::ModelSnapshot original(t.model, t.a, /*binary_expansion=*/4);
  const std::string path = temp_path("roundtrip_lsh.hdcsnap");
  serve::save_snapshot_file(path, original);
  auto loaded = serve::load_snapshot_file(path);

  EXPECT_EQ(loaded->prototypes().expansion(), 4u);
  EXPECT_EQ(loaded->prototypes().code_bits(), original.prototypes().code_bits());
  EXPECT_EQ(loaded->prototypes().packed_copy(), original.prototypes().packed_copy());

  // Binary scoring uses the query-side LSH projection, regenerated from the
  // persisted seed — it must give bit-identical Hamming logits.
  const Tensor probe = probe_images(5);
  const Tensor expected = original.prototypes().score_binary(original.embed(probe));
  const Tensor actual = loaded->prototypes().score_binary(loaded->embed(probe));
  EXPECT_EQ(tensor::max_abs_diff(expected, actual), 0.0f);
}

TEST(SnapshotIO, HdcDictionarySurvivesReload) {
  // The stationary dictionary is seed-derived, not a Parameter; the loaded
  // model must still encode *new* attribute rows exactly like the original
  // (GZSL-style label-space extension after cold start).
  Tiny t = make_tiny(17);
  serve::ModelSnapshot original(t.model, t.a);
  const std::string path = temp_path("dict.hdcsnap");
  serve::save_snapshot_file(path, original);
  auto loaded = serve::load_snapshot_file(path);

  util::Rng rng(99);
  Tensor fresh_rows = Tensor::rand_uniform({3, t.a.size(1)}, rng);
  Tensor expected = t.model->attribute_encoder().encode(fresh_rows, /*train=*/false);
  Tensor actual =
      loaded->model_ptr()->attribute_encoder().encode(fresh_rows, /*train=*/false);
  EXPECT_EQ(tensor::max_abs_diff(expected, actual), 0.0f);

  // Only the materialized tensor is persisted; the factored codebook view
  // must refuse to hand out its (stale) placeholder on a restored encoder.
  auto* restored =
      dynamic_cast<core::HdcAttributeEncoder*>(&loaded->model_ptr()->attribute_encoder());
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(tensor::max_abs_diff(
                restored->dictionary_tensor(),
                dynamic_cast<core::HdcAttributeEncoder&>(t.model->attribute_encoder())
                    .dictionary_tensor()),
            0.0f);
  EXPECT_THROW(restored->dictionary(), std::logic_error);
}

TEST(SnapshotIO, MlpEncoderRoundTripsThroughParameters) {
  Tiny t = make_tiny(19, "mlp");
  serve::ModelSnapshot original(t.model, t.a);
  const std::string path = temp_path("mlp.hdcsnap");
  serve::save_snapshot_file(path, original);
  auto loaded = serve::load_snapshot_file(path);

  const Tensor probe = probe_images(4);
  Tensor expected = t.model->class_logits(probe, t.a, /*train=*/false);
  Tensor actual = loaded->model_ptr()->class_logits(probe, t.a, /*train=*/false);
  EXPECT_EQ(tensor::max_abs_diff(expected, actual), 0.0f);
}

TEST(SnapshotIO, InspectReportsTheHeader) {
  Tiny t = make_tiny(23);
  serve::ModelSnapshot snap(t.model, t.a, /*binary_expansion=*/2);
  const std::string path = temp_path("inspect.hdcsnap");
  serve::save_snapshot_file(path, snap);

  const serve::SnapshotInfo info = serve::inspect_snapshot_file(path);
  EXPECT_EQ(info.version, serve::kSnapshotVersion);
  EXPECT_EQ(info.arch, "resnet_micro_flat");
  EXPECT_EQ(info.proj_dim, 64u);
  EXPECT_EQ(info.attribute_encoder, "hdc");
  EXPECT_TRUE(info.has_dictionary);
  EXPECT_EQ(info.n_attributes, 18u);
  EXPECT_EQ(info.n_classes, 7u);
  EXPECT_EQ(info.dim, 64u);
  EXPECT_EQ(info.expansion, 2u);
  EXPECT_EQ(info.code_bits, 128u);
  EXPECT_GT(info.param_records, 0u);
  EXPECT_GT(info.param_elements, 100000u);  // the 2048x64 projection alone
}

// -- corruption and truncation -----------------------------------------------

TEST(SnapshotIO, RejectsBadMagic) {
  Tiny t = make_tiny(29);
  serve::ModelSnapshot snap(t.model, t.a);
  const std::string path = temp_path("magic.hdcsnap");
  serve::save_snapshot_file(path, snap);

  std::string bytes = read_file(path);
  bytes[0] = 'X';
  write_file(path, bytes);
  try {
    serve::load_snapshot_file(path);
    FAIL() << "expected load to reject the corrupt magic";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos) << e.what();
  }
}

TEST(SnapshotIO, RejectsUnsupportedVersion) {
  Tiny t = make_tiny(31);
  serve::ModelSnapshot snap(t.model, t.a);
  const std::string path = temp_path("version.hdcsnap");
  serve::save_snapshot_file(path, snap);

  std::string bytes = read_file(path);
  bytes[4] = 99;  // u32 version field, little-endian low byte
  write_file(path, bytes);
  try {
    serve::load_snapshot_file(path);
    FAIL() << "expected load to reject the future version";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos) << e.what();
  }
}

TEST(SnapshotIO, TruncationAlwaysThrowsAndNamesTheRecord) {
  Tiny t = make_tiny(37);
  serve::ModelSnapshot snap(t.model, t.a);
  const std::string path = temp_path("trunc.hdcsnap");
  serve::save_snapshot_file(path, snap);
  const std::string bytes = read_file(path);

  for (double frac : {0.02, 0.2, 0.5, 0.8, 0.97}) {
    const auto cut = static_cast<std::size_t>(static_cast<double>(bytes.size()) * frac);
    const std::string cut_path = temp_path("trunc_cut.hdcsnap");
    write_file(cut_path, bytes.substr(0, cut));
    EXPECT_THROW(serve::load_snapshot_file(cut_path), std::runtime_error)
        << "truncation at " << frac << " must not load";
  }

  // The parameter block dominates the file; a mid-file cut must name the
  // record it was reading, not just fail generically.
  const std::string cut_path = temp_path("trunc_mid.hdcsnap");
  write_file(cut_path, bytes.substr(0, bytes.size() / 2));
  try {
    serve::load_snapshot_file(cut_path);
    FAIL() << "expected truncated load to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("record"), std::string::npos) << e.what();
  }

  // Cutting just the end marker is caught by the trailer tripwire.
  const std::string tail_path = temp_path("trunc_tail.hdcsnap");
  write_file(tail_path, bytes.substr(0, bytes.size() - 2));
  EXPECT_THROW(serve::load_snapshot_file(tail_path), std::runtime_error);
}

TEST(SnapshotIO, TruncationAtEveryRecordBoundaryThrowsNeverReadsShort) {
  // Regression sweep for every record boundary — and every byte inside the
  // serving-artifact tail, which packs the expansion/seed/scale fields,
  // the prototype rows, the v2 shard record, the v3 partition record and
  // the end marker into its last ~2 KiB. A cut must *always* throw; a
  // loader that reads short would come back with a half-initialized
  // snapshot instead. The parameter block (hundreds of KiB) is swept at a
  // coarse stride; cuts land inside records as well as on their seams.
  Tiny t = make_tiny(61, "hdc", /*n_classes=*/7);
  serve::ModelSnapshot snap(t.model, t.a, /*binary_expansion=*/2);
  std::stringstream full;
  serve::save_snapshot(full, snap);
  const std::string bytes = full.str();
  ASSERT_GT(bytes.size(), 4096u);

  std::vector<std::size_t> cuts;
  for (std::size_t off = 0; off < bytes.size() - 2048; off += 1499) cuts.push_back(off);
  for (std::size_t off = bytes.size() - 2048; off < bytes.size(); ++off) cuts.push_back(off);

  for (std::size_t cut : cuts) {
    std::istringstream in(bytes.substr(0, cut));
    try {
      serve::load_snapshot(in);
      FAIL() << "truncation at byte " << cut << " of " << bytes.size() << " loaded anyway";
    } catch (const std::runtime_error&) {
      // Expected: every cut throws; which record it names depends on where
      // the cut landed.
    }
    // inspect_snapshot walks the same records without rebuilding the model
    // and must be exactly as strict.
    std::istringstream in2(bytes.substr(0, cut));
    EXPECT_THROW(serve::inspect_snapshot(in2), std::runtime_error) << "inspect at " << cut;
  }
}

TEST(SnapshotIO, CorruptPackedWordCountRejectedBeforeReadingShort) {
  // The packed-row count is implied by the already-parsed store geometry
  // (C rows × words/row); a corrupted count must be rejected by name
  // *before* the loader blindly reads (or allocates) that many words and
  // misparses every record after them.
  Tiny t = make_tiny(67, "hdc", /*n_classes=*/7);
  serve::ModelSnapshot snap(t.model, t.a, /*binary_expansion=*/1);  // d=64 ⇒ 1 word/row
  std::stringstream full;
  serve::save_snapshot(full, snap);
  std::string bytes = full.str();

  // Tail layout (fixed widths, back to front): "PANS" | v6 lineage records
  // (u64 store version + f32 penalty + u64 checksum = 20 bytes) | has_ivf
  // u8 (0) | has_quant u8 (0, no quant records follow) | 1 mask word |
  // n_seen u64 | shards u64 | 7 packed words | packed count u64.
  const std::size_t count_off = bytes.size() - 4 - 20 - 1 - 1 - 8 - 8 - 8 - 7 * 8 - 8;
  std::uint64_t count = 0;
  std::memcpy(&count, bytes.data() + count_off, 8);
  ASSERT_EQ(count, 7u) << "tail-layout arithmetic drifted from the format";

  for (std::uint64_t bad : {std::uint64_t{0}, std::uint64_t{6}, std::uint64_t{8},
                            std::uint64_t{1} << 27}) {
    std::string corrupt = bytes;
    std::memcpy(corrupt.data() + count_off, &bad, 8);
    std::istringstream in(corrupt);
    try {
      serve::load_snapshot(in);
      FAIL() << "corrupt packed word count " << bad << " parsed";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("packed word count"), std::string::npos)
          << e.what();
    }
  }
}

// -- v4 quantization records -------------------------------------------------

TEST(SnapshotIO, QuantizedV4RoundTripServesInt8) {
  Tiny t = make_tiny(71, "hdc", /*n_classes=*/7);
  serve::ModelSnapshot original(t.model, t.a, /*binary_expansion=*/2);
  util::Rng rng(72);
  original.quantize(Tensor::randn({24, 3, 32, 32}, rng), nn::CalibMethod::kMinMax);
  ASSERT_TRUE(original.has_quantized());

  const std::string path = temp_path("quant_v4.hdcsnap");
  serve::save_snapshot_file(path, original);
  auto loaded = serve::load_snapshot_file(path);
  ASSERT_TRUE(loaded->has_quantized());

  // Integer weights and qparams travel exactly, so the int8 embed path —
  // and everything float alongside it — must reproduce bit-for-bit.
  const Tensor probe = probe_images(5, 0xA1CEULL);
  EXPECT_EQ(tensor::max_abs_diff(original.embed_int8(probe), loaded->embed_int8(probe)),
            0.0f);
  EXPECT_EQ(tensor::max_abs_diff(original.embed(probe), loaded->embed(probe)), 0.0f);

  // inspect_snapshot surfaces the quantization block without rebuilding.
  std::ifstream f(path, std::ios::binary);
  const auto info = serve::inspect_snapshot(f);
  EXPECT_EQ(info.version, serve::kSnapshotVersion);
  EXPECT_TRUE(info.has_quant);
  EXPECT_EQ(info.quant_method, "minmax");
  EXPECT_EQ(info.quant_conv, original.quantized()->info().n_conv);
  EXPECT_EQ(info.quant_linear, original.quantized()->info().n_linear);
  EXPECT_GT(info.quant_weight_bytes, 0u);
}

TEST(SnapshotIO, CrossVersionLoadMatrixV1ToV6) {
  // One snapshot, every on-disk generation: a current (unquantized, no
  // IVF) v6 file shrinks to a byte-genuine v5 / v4 / v3 / v2 / v1 by
  // stripping exactly the records each version appended — v6 the 20-byte
  // lineage block (u64 version + f32 penalty + u64 checksum), v5 one u8
  // has_ivf flag, v4 one u8 has_quant flag, v3 one u64 seen count +
  // ⌈7/64⌉ = 1 mask word, v2 one u64 shard record — and rewriting the u32
  // version field. Every generation must load, agree on its version via
  // inspect, and score bit-identically to the v6 file.
  Tiny t = make_tiny(73, "hdc", /*n_classes=*/7);
  serve::ModelSnapshot snap(t.model, t.a, /*binary_expansion=*/2);
  std::stringstream full;
  serve::save_snapshot(full, snap);
  const std::string v6 = full.str();
  ASSERT_EQ(v6.substr(v6.size() - 4), "PANS");

  auto downgrade = [&](std::uint32_t version, std::size_t strip) {
    std::string bytes = v6;
    bytes.erase(bytes.size() - 4 - strip, strip);
    bytes.replace(4, 4, reinterpret_cast<const char*>(&version), 4);
    return bytes;
  };
  const std::vector<std::pair<std::uint32_t, std::string>> matrix = {
      {6, v6},
      {5, downgrade(5, 20)},
      {4, downgrade(4, 21)},
      {3, downgrade(3, 22)},
      {2, downgrade(2, 38)},
      {1, downgrade(1, 46)}};

  const Tensor probe = probe_images(4, 0xC0DEULL);
  const Tensor want = snap.prototypes().score_float(snap.embed(probe));
  for (const auto& [version, bytes] : matrix) {
    std::istringstream in(bytes);
    auto loaded = serve::load_snapshot(in);
    EXPECT_FALSE(loaded->has_quantized()) << "v" << version;
    EXPECT_EQ(tensor::max_abs_diff(loaded->prototypes().score_float(loaded->embed(probe)),
                                   want),
              0.0f)
        << "v" << version << " scores diverged";
    EXPECT_FALSE(loaded->has_ivf()) << "v" << version;

    std::istringstream in2(bytes);
    const auto info = serve::inspect_snapshot(in2);
    EXPECT_EQ(info.version, version);
    EXPECT_FALSE(info.has_quant) << "v" << version;
  }
}

TEST(SnapshotIO, TruncationInsideQuantRecordsAlwaysThrows) {
  // The v4 tail appends two records (standalone calibration table +
  // self-contained int8 weights blob) after the has_quant flag. Saving the
  // same snapshot with and without the artifact brackets that region
  // exactly; a cut anywhere inside it must throw — for load_snapshot AND
  // the no-rebuild inspect walk — never read short.
  Tiny t = make_tiny(79, "hdc", /*n_classes=*/7);
  serve::ModelSnapshot snap(t.model, t.a, /*binary_expansion=*/1);
  std::stringstream bare;
  serve::save_snapshot(bare, snap);
  // Quant records sit between the has_quant flag and the v5 has_ivf flag,
  // so in the unquantized file their future position is 5 bytes from the
  // end (has_ivf u8 + "PANS").
  const std::size_t quant_begin = bare.str().size() - 4 - 1;

  util::Rng rng(80);
  snap.quantize(Tensor::randn({16, 3, 32, 32}, rng), nn::CalibMethod::kEntropy);
  std::stringstream full;
  serve::save_snapshot(full, snap);
  const std::string bytes = full.str();
  ASSERT_GT(bytes.size(), quant_begin + 4096);

  std::vector<std::size_t> cuts;
  for (std::size_t off = quant_begin; off < bytes.size(); off += 211) cuts.push_back(off);
  for (std::size_t off = bytes.size() - 256; off < bytes.size(); ++off) cuts.push_back(off);
  for (std::size_t cut : cuts) {
    std::istringstream in(bytes.substr(0, cut));
    EXPECT_THROW(serve::load_snapshot(in), std::runtime_error) << "cut at " << cut;
    std::istringstream in2(bytes.substr(0, cut));
    EXPECT_THROW(serve::inspect_snapshot(in2), std::runtime_error) << "inspect at " << cut;
  }
}

TEST(SnapshotIO, QuantRecordCorruptionNeverLoadsQuietly) {
  // Flip single bytes across the calibration-table record: whatever the
  // byte hits — method id, entry count, a scale, a zero point — the loader
  // must reject (bad qparams or a standalone/embedded table disagreement),
  // never attach a silently different artifact.
  Tiny t = make_tiny(83, "hdc", /*n_classes=*/7);
  serve::ModelSnapshot snap(t.model, t.a, /*binary_expansion=*/1);
  std::stringstream bare;
  serve::save_snapshot(bare, snap);
  // Standalone table starts right after has_quant — 5 bytes from the end
  // of the bare file (v5 has_ivf u8 + "PANS").
  const std::size_t table_off = bare.str().size() - 4 - 1;

  util::Rng rng(84);
  snap.quantize(Tensor::randn({16, 3, 32, 32}, rng));
  std::stringstream full;
  serve::save_snapshot(full, snap);
  const std::string bytes = full.str();

  const std::size_t table_bytes = 1 + 8 + snap.quantized()->table().activations.size() * 12;
  for (std::size_t off = table_off; off < table_off + table_bytes; off += 5) {
    std::string corrupt = bytes;
    corrupt[off] = static_cast<char>(corrupt[off] ^ 0x5A);
    std::istringstream in(corrupt);
    EXPECT_THROW(serve::load_snapshot(in), std::runtime_error)
        << "flipped byte at " << off << " loaded anyway";
  }
}

// -- model registry ----------------------------------------------------------

serve::ServerConfig fast_cfg() {
  serve::ServerConfig cfg;
  cfg.n_workers = 1;
  cfg.batch.max_batch = 4;
  cfg.batch.max_delay_ms = 0.5;
  cfg.batch.max_queue_depth = 1024;
  return cfg;
}

/// One request through the status-based submit surface, resolved.
serve::InferResult submit_one(serve::ModelRegistry& registry, const std::string& key,
                              Tensor input) {
  serve::InferRequest req;
  req.model_key = key;
  req.input = std::move(input);
  req.k = 1;
  return registry.submit(std::move(req)).get();
}

TEST(ModelRegistry, NeverRegistersAHalfLoadedModel) {
  Tiny t = make_tiny(41);
  serve::ModelSnapshot snap(t.model, t.a);
  const std::string path = temp_path("registry_corrupt.hdcsnap");
  serve::save_snapshot_file(path, snap);
  const std::string bytes = read_file(path);
  write_file(path, bytes.substr(0, bytes.size() / 3));

  serve::ModelRegistry registry(fast_cfg());
  EXPECT_THROW(registry.load_file("m", path), std::runtime_error);
  EXPECT_FALSE(registry.has("m"));
  EXPECT_EQ(registry.size(), 0u);

  // And the good file loads into the same registry afterwards.
  write_file(path, bytes);
  registry.load_file("m", path);
  EXPECT_TRUE(registry.has("m"));
  const serve::InferResult r = submit_one(registry, "m", probe_images(1).reshape({3, 32, 32}));
  ASSERT_EQ(r.status, serve::InferStatus::kOk);
  ASSERT_FALSE(r.topk.empty());
  EXPECT_EQ(r.topk[0].label, registry.engine("m")->classify_batch(probe_images(1))[0].label);
}

TEST(ModelRegistry, RoutesRequestsByKey) {
  Tiny ta = make_tiny(43, "hdc", 7);
  Tiny tb = make_tiny(47, "hdc", 5);
  auto snap_a = std::make_shared<const serve::ModelSnapshot>(ta.model, ta.a);
  auto snap_b = std::make_shared<const serve::ModelSnapshot>(tb.model, tb.a);

  serve::ModelRegistry registry(fast_cfg());
  registry.load("a", snap_a);
  registry.load("b", snap_b);
  EXPECT_EQ(registry.size(), 2u);

  const Tensor probe = probe_images(6);
  const auto expect_a = registry.engine("a")->classify_batch(probe);
  const auto expect_b = registry.engine("b")->classify_batch(probe);
  for (std::size_t i = 0; i < probe.size(0); ++i) {
    Tensor one({3, 32, 32});
    std::copy(probe.data() + i * one.numel(), probe.data() + (i + 1) * one.numel(),
              one.data());
    const serve::InferResult pa = submit_one(registry, "a", one);
    const serve::InferResult pb = submit_one(registry, "b", one.clone());
    ASSERT_EQ(pa.status, serve::InferStatus::kOk);
    ASSERT_EQ(pb.status, serve::InferStatus::kOk);
    ASSERT_FALSE(pa.topk.empty());
    ASSERT_FALSE(pb.topk.empty());
    EXPECT_EQ(pa.topk[0].label, expect_a[i].label);
    EXPECT_FLOAT_EQ(pa.topk[0].score, expect_a[i].score);
    EXPECT_EQ(pb.topk[0].label, expect_b[i].label);
    EXPECT_FLOAT_EQ(pb.topk[0].score, expect_b[i].score);
  }

  // Unknown keys are a named status, not an exception (the wire contract).
  EXPECT_EQ(submit_one(registry, "missing", probe_images(1).reshape({3, 32, 32})).status,
            serve::InferStatus::kBadModel);
  EXPECT_TRUE(registry.unload("a"));
  EXPECT_FALSE(registry.unload("a"));
  EXPECT_FALSE(registry.has("a"));
  EXPECT_EQ(submit_one(registry, "a", probe_images(1).reshape({3, 32, 32})).status,
            serve::InferStatus::kBadModel);
  // "b" is untouched by "a"'s unload.
  const serve::InferResult rb = submit_one(registry, "b", probe_images(1).reshape({3, 32, 32}));
  ASSERT_EQ(rb.status, serve::InferStatus::kOk);
  ASSERT_FALSE(rb.topk.empty());
  EXPECT_EQ(rb.topk[0].label, expect_b[0].label);
}

TEST(ModelRegistry, ServesThroughConcurrentHotLoadAndUnload) {
  Tiny ta = make_tiny(53);
  Tiny tb = make_tiny(59);
  auto snap_a = std::make_shared<const serve::ModelSnapshot>(ta.model, ta.a);
  auto snap_b = std::make_shared<const serve::ModelSnapshot>(tb.model, tb.a);

  serve::ModelRegistry registry(fast_cfg());
  registry.load("hot", snap_a);

  // Client threads storm the "hot" key while the control thread swaps the
  // model behind it and churns a side key. Requests racing a swap may come
  // back kShutdown / kOverloaded (a stopping runtime rejects, as on any
  // overloaded server) but every future must resolve with a named status —
  // no deadlock, no lost futures, no exceptions.
  const std::size_t per_client = 60;
  std::atomic<std::size_t> ok{0}, rejected{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      for (std::size_t r = 0; r < per_client; ++r) {
        const serve::InferResult res =
            submit_one(registry, "hot", probe_images(1, 100 + r).reshape({3, 32, 32}));
        if (res.ok()) {
          ++ok;
        } else {
          EXPECT_TRUE(res.status == serve::InferStatus::kShutdown ||
                      res.status == serve::InferStatus::kOverloaded)
              << infer_status_name(res.status);
          ++rejected;
        }
      }
    });
  }
  for (int i = 0; i < 8; ++i) {
    registry.load("hot", i % 2 ? snap_a : snap_b);
    registry.load("side", snap_b);
    registry.unload("side");
  }
  for (auto& c : clients) c.join();

  EXPECT_EQ(ok.load() + rejected.load(), 2 * per_client);
  EXPECT_GT(ok.load(), 0u);
  EXPECT_TRUE(registry.has("hot"));
  EXPECT_FALSE(registry.has("side"));
  // The registry still serves after the churn.
  EXPECT_EQ(submit_one(registry, "hot", probe_images(1).reshape({3, 32, 32})).status,
            serve::InferStatus::kOk);
}

TEST(ModelRegistry, UnloadWhileInflightResolvesEveryFuture) {
  // Queue a burst of accepted requests, then rip the model out from under
  // them. unload() drains the runtime, so every already-accepted future
  // must resolve with a named status — served (kOk) or rejected by the
  // stopping runtime (kShutdown) — never hang, never throw.
  Tiny t = make_tiny(61);
  auto snap = std::make_shared<const serve::ModelSnapshot>(t.model, t.a);
  serve::ServerConfig cfg = fast_cfg();
  cfg.batch.max_delay_ms = 2.0;  // hold a window open so a backlog builds
  serve::ModelRegistry registry(cfg);
  registry.load("doomed", snap);

  std::vector<std::future<serve::InferResult>> futures;
  for (std::size_t r = 0; r < 32; ++r) {
    serve::InferRequest req;
    req.model_key = "doomed";
    req.input = probe_images(1, 700 + r).reshape({3, 32, 32});
    req.k = 1;
    futures.push_back(registry.submit(std::move(req)));
  }
  ASSERT_TRUE(registry.unload("doomed"));
  EXPECT_FALSE(registry.has("doomed"));

  std::size_t ok = 0, shutdown = 0;
  for (auto& f : futures) {
    const serve::InferResult res = f.get();  // must resolve, not hang
    if (res.ok()) {
      EXPECT_EQ(res.topk.size(), 1u);
      ++ok;
    } else {
      EXPECT_EQ(res.status, serve::InferStatus::kShutdown) << infer_status_name(res.status);
      ++shutdown;
    }
  }
  EXPECT_EQ(ok + shutdown, 32u);
  // The key is gone: a fresh submit resolves kBadModel, again by status.
  EXPECT_EQ(submit_one(registry, "doomed", probe_images(1).reshape({3, 32, 32})).status,
            serve::InferStatus::kBadModel);
}

}  // namespace
}  // namespace hdczsc
