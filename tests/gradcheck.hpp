// Central finite-difference gradient checking for layers and kernels.
#pragma once

#include <cmath>
#include <functional>

#include "tensor/tensor.hpp"

namespace hdczsc::testing {

/// Numerically estimate dL/dx[i] for a scalar-valued function of a tensor.
inline double numerical_grad(const std::function<double(const tensor::Tensor&)>& f,
                             tensor::Tensor x, std::size_t i, double eps = 1e-3) {
  const float orig = x[i];
  x[i] = static_cast<float>(orig + eps);
  const double up = f(x);
  x[i] = static_cast<float>(orig - eps);
  const double down = f(x);
  x[i] = orig;
  return (up - down) / (2.0 * eps);
}

/// Relative error between analytic and numerical gradient values, with an
/// absolute floor so near-zero gradients do not blow up the ratio.
inline double grad_rel_err(double analytic, double numeric) {
  const double denom = std::max({std::abs(analytic), std::abs(numeric), 1e-4});
  return std::abs(analytic - numeric) / denom;
}

}  // namespace hdczsc::testing
