#include <gtest/gtest.h>

#include <cmath>

#include "baselines/attribute_head.hpp"
#include "baselines/eszsl.hpp"
#include "baselines/feature_wgan.hpp"
#include "tensor/ops.hpp"

namespace hdczsc {
namespace {

using tensor::Tensor;

/// Synthetic linear ZSL world: features are noisy linear images of class
/// signatures, so a bilinear method must solve it nearly perfectly.
struct LinearWorld {
  Tensor seen_feats, unseen_feats;
  std::vector<std::size_t> seen_labels, unseen_labels;
  Tensor seen_sigs, unseen_sigs;

  LinearWorld(std::size_t d, std::size_t alpha, std::size_t n_seen_cls,
              std::size_t n_unseen_cls, std::size_t per_class, util::Rng& rng,
              float noise = 0.02f) {
    Tensor w = Tensor::randn({alpha, d}, rng);  // ground-truth map sig -> feat
    // Zero-mean signatures keep class means well separated (uniform [0,1)
    // signatures share a large common component and crowd together).
    seen_sigs = Tensor::rand_uniform({n_seen_cls, alpha}, rng, -1.0f, 1.0f);
    unseen_sigs = Tensor::rand_uniform({n_unseen_cls, alpha}, rng, -1.0f, 1.0f);
    auto gen = [&](const Tensor& sigs, std::size_t cls_count, Tensor& feats,
                   std::vector<std::size_t>& labels) {
      feats = Tensor({cls_count * per_class, d});
      labels.resize(cls_count * per_class);
      Tensor mean = tensor::matmul(sigs, w);  // [C, d]
      for (std::size_t c = 0; c < cls_count; ++c) {
        for (std::size_t i = 0; i < per_class; ++i) {
          const std::size_t row = c * per_class + i;
          labels[row] = c;
          for (std::size_t j = 0; j < d; ++j)
            feats[row * d + j] = mean.at(c, j) + static_cast<float>(rng.normal(0.0, noise));
        }
      }
    };
    gen(seen_sigs, n_seen_cls, seen_feats, seen_labels);
    gen(unseen_sigs, n_unseen_cls, unseen_feats, unseen_labels);
  }
};

double top1(const Tensor& scores, const std::vector<std::size_t>& labels) {
  auto preds = tensor::argmax_rows(scores);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < labels.size(); ++i)
    if (preds[i] == labels[i]) ++hits;
  return static_cast<double>(hits) / static_cast<double>(labels.size());
}

TEST(Eszsl, SolvesLinearWorldOnUnseenClasses) {
  // Generalizing the bilinear map to unseen classes requires the seen
  // classes to span attribute space (n_seen >> alpha) — the same reason
  // the paper trains on 150 of the 200 CUB classes. The ±1-regression
  // surrogate does not reach the Bayes optimum even on an exactly linear
  // world (close unseen signatures stay confusable), so the bar is
  // "far above the 0.2 chance level", not perfection.
  util::Rng rng(1);
  LinearWorld world(16, 8, 30, 5, 12, rng, 0.01f);
  baselines::Eszsl model({0.1f, 0.1f});
  model.fit(world.seen_feats, world.seen_labels, world.seen_sigs);
  EXPECT_GT(top1(model.scores(world.unseen_feats, world.unseen_sigs),
                 world.unseen_labels), 0.7);
}

TEST(Eszsl, ChanceLevelOnShuffledSignatures) {
  util::Rng rng(2);
  LinearWorld world(16, 8, 10, 5, 12, rng);
  baselines::Eszsl model;
  model.fit(world.seen_feats, world.seen_labels, world.seen_sigs);
  // Score unseen features against *random* signatures: accuracy collapses.
  Tensor random_sigs = Tensor::rand_uniform({5, 8}, rng);
  const double acc = top1(model.scores(world.unseen_feats, random_sigs),
                          world.unseen_labels);
  EXPECT_LT(acc, 0.6);
}

TEST(Eszsl, CompatibilityShapeAndParamCount) {
  util::Rng rng(3);
  LinearWorld world(12, 6, 8, 3, 6, rng);
  baselines::Eszsl model;
  model.fit(world.seen_feats, world.seen_labels, world.seen_sigs);
  EXPECT_EQ(model.compatibility().shape(), (tensor::Shape{12, 6}));
  EXPECT_EQ(model.param_count(), 72u);
}

TEST(Eszsl, UnfittedScoresThrow) {
  baselines::Eszsl model;
  EXPECT_THROW(model.scores(Tensor({1, 2}), Tensor({1, 2})), std::logic_error);
  EXPECT_THROW(model.fit(Tensor({4}), {0}, Tensor({1, 2})), std::invalid_argument);
}

TEST(Eszsl, RegularizationControlsNorm) {
  util::Rng rng(4);
  LinearWorld world(10, 5, 8, 2, 8, rng);
  baselines::Eszsl weak({1e-3f, 1e-3f});
  baselines::Eszsl strong({100.0f, 100.0f});
  weak.fit(world.seen_feats, world.seen_labels, world.seen_sigs);
  strong.fit(world.seen_feats, world.seen_labels, world.seen_sigs);
  EXPECT_LT(strong.compatibility().norm(), weak.compatibility().norm());
}

TEST(FeatureWgan, GeneratesClassConditionedFeatures) {
  util::Rng rng(5);
  LinearWorld world(8, 4, 6, 3, 20, rng, 0.05f);
  baselines::FeatureWganConfig cfg;
  cfg.epochs = 30;
  cfg.hidden = 32;
  baselines::FeatureWgan gan(8, 4, cfg, rng);
  gan.fit(world.seen_feats, world.seen_labels, world.seen_sigs);
  auto [syn, labels] = gan.generate(world.unseen_sigs, 5);
  EXPECT_EQ(syn.shape(), (tensor::Shape{15, 8}));
  EXPECT_EQ(labels.size(), 15u);
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[14], 2u);
}

TEST(FeatureWgan, ZslBeatsChanceOnLinearWorld) {
  util::Rng rng(6);
  LinearWorld world(8, 4, 16, 4, 30, rng, 0.05f);
  baselines::FeatureWganConfig cfg;
  cfg.epochs = 60;
  cfg.hidden = 48;
  cfg.n_syn_per_class = 60;
  baselines::FeatureWgan gan(8, 4, cfg, rng);
  gan.fit(world.seen_feats, world.seen_labels, world.seen_sigs);
  const double acc = gan.zsl_top1(world.unseen_feats, world.unseen_labels,
                                  world.unseen_sigs);
  EXPECT_GT(acc, 0.35);  // chance is 0.25 over 4 unseen classes
}

TEST(FeatureWgan, MeanMatchingImprovesConditionalFidelity) {
  // With the matching term the synthetic features must land near the
  // class means the generator was conditioned on.
  util::Rng rng(12);
  LinearWorld world(8, 4, 16, 2, 30, rng, 0.05f);
  baselines::FeatureWganConfig cfg;
  cfg.epochs = 60;
  cfg.hidden = 48;
  baselines::FeatureWgan gan(8, 4, cfg, rng);
  gan.fit(world.seen_feats, world.seen_labels, world.seen_sigs);
  auto [syn, labels] = gan.generate(world.seen_sigs, 10);
  // Mean distance of synthetic features to their own class mean must be
  // smaller than to a different class's mean.
  tensor::Tensor means({16, 8});
  std::vector<std::size_t> counts(16, 0);
  for (std::size_t i = 0; i < world.seen_labels.size(); ++i) {
    const std::size_t c = world.seen_labels[i];
    for (std::size_t j = 0; j < 8; ++j)
      means[c * 8 + j] += world.seen_feats.at(i, j);
    ++counts[c];
  }
  for (std::size_t c = 0; c < 16; ++c)
    for (std::size_t j = 0; j < 8; ++j) means[c * 8 + j] /= static_cast<float>(counts[c]);
  double own = 0.0, other = 0.0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const std::size_t c = labels[i];
    const std::size_t alt = (c + 7) % 16;
    for (std::size_t j = 0; j < 8; ++j) {
      const double d_own = syn.at(i, j) - means.at(c, j);
      const double d_alt = syn.at(i, j) - means.at(alt, j);
      own += d_own * d_own;
      other += d_alt * d_alt;
    }
  }
  EXPECT_LT(own, other);
}

TEST(FeatureWgan, ParameterCountFormula) {
  util::Rng rng(7);
  baselines::FeatureWganConfig cfg;
  cfg.z_dim = 4;
  cfg.hidden = 8;
  baselines::FeatureWgan gan(6, 3, cfg, rng);
  // G: (4+3)x8+8 + 8x6+6 ; D: (6+3)x8+8 + 8x1+1
  EXPECT_EQ(gan.parameter_count(), (7u * 8 + 8) + (8u * 6 + 6) + (9u * 8 + 8) + (8u + 1));
}

TEST(ConcatSplit, RoundTrip) {
  util::Rng rng(8);
  Tensor a = Tensor::randn({3, 4}, rng);
  Tensor b = Tensor::randn({3, 2}, rng);
  Tensor cat = baselines::concat_cols(a, b);
  EXPECT_EQ(cat.shape(), (tensor::Shape{3, 6}));
  auto [l, r] = baselines::split_cols(cat, 4);
  EXPECT_LT(tensor::max_abs_diff(l, a), 1e-9f);
  EXPECT_LT(tensor::max_abs_diff(r, b), 1e-9f);
  EXPECT_THROW(baselines::concat_cols(a, Tensor({2, 2})), std::invalid_argument);
}

TEST(AttributeHead, TrainsAndEvaluates) {
  auto space = data::AttributeSpace::cub();
  data::CubSyntheticConfig dcfg;
  dcfg.n_classes = 6;
  dcfg.images_per_class = 4;
  dcfg.image_size = 16;
  data::CubSynthetic ds(space, dcfg);
  data::AugmentConfig aug;
  aug.enabled = false;
  data::DataLoader train(ds, {0, 1, 2, 3}, 0, 3, 8, true, aug, 1);
  data::DataLoader test(ds, {0, 1, 2, 3}, 3, 4, 8, false, aug, 2);

  util::Rng rng(9);
  baselines::AttributeHeadConfig cfg;
  cfg.variant = "finetag";
  cfg.image.arch = "resnet_micro";
  baselines::AttributeHeadBaseline model(space, cfg, rng);
  core::TrainConfig tcfg;
  tcfg.epochs = 2;
  tcfg.batch_size = 8;
  tcfg.lr = 3e-3f;
  model.train(train, tcfg);
  auto res = model.evaluate(test);
  EXPECT_EQ(res.per_group_top1.size(), 28u);
  EXPECT_GE(res.mean_top1, 0.0);
  EXPECT_LE(res.mean_top1, 1.0);
  EXPECT_GT(model.parameter_count(), 0u);
}

TEST(AttributeHead, A3mVariantRuns) {
  auto space = data::AttributeSpace::cub();
  data::CubSyntheticConfig dcfg;
  dcfg.n_classes = 4;
  dcfg.images_per_class = 3;
  dcfg.image_size = 16;
  data::CubSynthetic ds(space, dcfg);
  data::AugmentConfig aug;
  aug.enabled = false;
  data::DataLoader train(ds, {0, 1, 2}, 0, 2, 6, true, aug, 1);

  util::Rng rng(10);
  baselines::AttributeHeadConfig cfg;
  cfg.variant = "a3m";
  cfg.image.arch = "resnet_micro";
  baselines::AttributeHeadBaseline model(space, cfg, rng);
  core::TrainConfig tcfg;
  tcfg.epochs = 1;
  tcfg.batch_size = 6;
  const double loss = model.train(train, tcfg);
  EXPECT_GT(loss, 0.0);
  EXPECT_TRUE(std::isfinite(loss));
}

TEST(AttributeHead, UnknownVariantThrows) {
  auto space = data::AttributeSpace::cub();
  util::Rng rng(11);
  baselines::AttributeHeadConfig cfg;
  cfg.variant = "resnetzsl";
  EXPECT_THROW(baselines::AttributeHeadBaseline(space, cfg, rng), std::invalid_argument);
}

}  // namespace
}  // namespace hdczsc
