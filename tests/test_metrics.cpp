#include <gtest/gtest.h>

#include "metrics/attribute_metrics.hpp"
#include "metrics/classification.hpp"

namespace hdczsc {
namespace {

using tensor::Tensor;

TEST(TopK, PerfectAndWorstCase) {
  Tensor scores({2, 3}, std::vector<float>{0.9f, 0.05f, 0.05f, 0.1f, 0.2f, 0.7f});
  EXPECT_DOUBLE_EQ(metrics::top1_accuracy(scores, {0, 2}), 1.0);
  EXPECT_DOUBLE_EQ(metrics::top1_accuracy(scores, {1, 0}), 0.0);
}

TEST(TopK, Top5CoversMore) {
  Tensor scores({1, 6}, std::vector<float>{6, 5, 4, 3, 2, 1});
  EXPECT_DOUBLE_EQ(metrics::topk_accuracy(scores, {4}, 5), 1.0);
  EXPECT_DOUBLE_EQ(metrics::topk_accuracy(scores, {5}, 5), 0.0);
  EXPECT_DOUBLE_EQ(metrics::top1_accuracy(scores, {0}), 1.0);
}

TEST(TopK, KLargerThanClassesClamped) {
  Tensor scores({1, 2}, std::vector<float>{0.2f, 0.8f});
  EXPECT_DOUBLE_EQ(metrics::topk_accuracy(scores, {0}, 10), 1.0);
}

TEST(TopK, MismatchThrows) {
  Tensor scores({2, 2});
  EXPECT_THROW(metrics::top1_accuracy(scores, {0}), std::invalid_argument);
}

TEST(Confusion, CountsPredictions) {
  Tensor scores({3, 2}, std::vector<float>{0.9f, 0.1f, 0.2f, 0.8f, 0.6f, 0.4f});
  auto cm = metrics::confusion_matrix(scores, {0, 0, 1}, 2);
  EXPECT_EQ(cm[0][0], 1u);  // true 0 predicted 0
  EXPECT_EQ(cm[0][1], 1u);  // true 0 predicted 1
  EXPECT_EQ(cm[1][0], 1u);  // true 1 predicted 0
  EXPECT_EQ(cm[1][1], 0u);
}

TEST(AveragePrecision, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(metrics::average_precision({0.9f, 0.8f, 0.2f, 0.1f}, {1, 1, 0, 0}), 1.0);
}

TEST(AveragePrecision, WorstRankingKnownValue) {
  // Positives at ranks 3 and 4: AP = (1/3 + 2/4)/2 = 5/12.
  EXPECT_NEAR(metrics::average_precision({0.9f, 0.8f, 0.2f, 0.1f}, {0, 0, 1, 1}),
              5.0 / 12.0, 1e-12);
}

TEST(AveragePrecision, NoPositivesIsZero) {
  EXPECT_DOUBLE_EQ(metrics::average_precision({0.5f, 0.4f}, {0, 0}), 0.0);
}

TEST(AveragePrecision, SizeMismatchThrows) {
  EXPECT_THROW(metrics::average_precision({0.5f}, {0, 1}), std::invalid_argument);
}

TEST(PerGroupTop1, ToySpaceExactValues) {
  // 2 groups x 2 values (toy space: group sizes 2, offsets 0 and 2).
  auto space = data::AttributeSpace::toy(2, 2, 4);
  // Sample 0: group0 predicts correctly, group1 wrong.
  Tensor scores({2, 4}, std::vector<float>{0.9f, 0.1f, 0.2f, 0.8f,
                                           0.1f, 0.9f, 0.7f, 0.3f});
  Tensor targets({2, 4}, std::vector<float>{1, 0, 1, 0,
                                            0, 1, 1, 0});
  auto acc = metrics::per_group_top1(scores, targets, space);
  EXPECT_DOUBLE_EQ(acc[0], 1.0);  // both rows correct in group 0
  EXPECT_DOUBLE_EQ(acc[1], 0.5);  // row 0 wrong, row 1 right
}

TEST(PerGroupWmap, PerfectScoresGiveOne) {
  auto space = data::AttributeSpace::toy(1, 3, 3);
  Tensor targets({4, 3}, std::vector<float>{1, 0, 0, 0, 1, 0, 1, 0, 0, 0, 0, 1});
  Tensor scores = targets.clone();  // scores identical to labels: perfect AP
  auto wmap = metrics::per_group_wmap(scores, targets, space);
  EXPECT_NEAR(wmap[0], 1.0, 1e-12);
}

TEST(PerGroupWmap, RareAttributeDominatesWeighting) {
  auto space = data::AttributeSpace::toy(1, 2, 2);
  // Attribute 0: 3 positives (common, predicted perfectly).
  // Attribute 1: 1 positive (rare, predicted at the bottom -> low AP).
  Tensor targets({4, 2}, std::vector<float>{1, 0, 1, 0, 1, 0, 0, 1});
  Tensor scores({4, 2}, std::vector<float>{0.9f, 0.8f, 0.8f, 0.7f, 0.7f, 0.6f, 0.6f, 0.1f});
  auto wmap = metrics::per_group_wmap(scores, targets, space);
  // AP(common)=1; AP(rare)=1/4. Weights ∝ 4/3 vs 4/1 -> wmap = (4/3*1 + 4*0.25)/(4/3+4).
  const double expect = ((4.0 / 3.0) * 1.0 + 4.0 * 0.25) / (4.0 / 3.0 + 4.0);
  EXPECT_NEAR(wmap[0], expect, 1e-9);
  // Unweighted mean would be (1 + 0.25)/2 = 0.625 > wmap: weighting
  // punishes the rare-attribute failure harder.
  EXPECT_LT(wmap[0], 0.625);
}

TEST(PerGroupMetrics, ShapeMismatchThrows) {
  auto space = data::AttributeSpace::toy(2, 2, 4);
  EXPECT_THROW(metrics::per_group_top1(Tensor({2, 3}), Tensor({2, 3}), space),
               std::invalid_argument);
  EXPECT_THROW(metrics::per_group_wmap(Tensor({2, 4}), Tensor({2, 3}), space),
               std::invalid_argument);
}

TEST(MeanOf, HandlesEmptyAndValues) {
  EXPECT_DOUBLE_EQ(metrics::mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(metrics::mean_of({1.0, 2.0, 3.0}), 2.0);
}

}  // namespace
}  // namespace hdczsc
