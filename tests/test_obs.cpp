// Observability layer: the log-bucketed histogram must track exact-sort
// percentiles within its error bound, every primitive must stay correct
// under concurrent recording, the serving stats must hold percentile
// accuracy in fixed memory, the per-request tracer must produce coherent
// stage spans from a real serving runtime, and the exporters must emit
// exact, deterministic Prometheus/JSON text.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

namespace hdczsc {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;

/// Exact percentile with the same rank convention ServingStats has always
/// used (nth_element at floor(q·n), clamped to n-1).
double exact_percentile(std::vector<double> xs, double q) {
  const std::size_t k = static_cast<std::size_t>(std::min<double>(
      static_cast<double>(xs.size()) - 1.0, q * static_cast<double>(xs.size())));
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(k), xs.end());
  return xs[k];
}

// -- histogram ---------------------------------------------------------------

TEST(ObsHistogram, PercentilesWithinTwoPercentOfExactSort) {
  // Log-normal-ish latencies spanning ~3 decades — the shape serving
  // latencies actually have (tight body, long tail).
  util::Rng rng(0x0b5e11ULL);
  Histogram h;
  std::vector<double> xs;
  for (int i = 0; i < 200000; ++i) {
    const double v = std::exp(rng.normal(1.0, 1.2));  // ~0.05 .. ~500 (ms)
    xs.push_back(v);
    h.record(v);
  }
  ASSERT_EQ(h.count(), xs.size());
  for (double q : {0.50, 0.90, 0.99, 0.999}) {
    const double exact = exact_percentile(xs, q);
    const double est = h.percentile(q);
    EXPECT_NEAR(est, exact, 0.02 * exact) << "q=" << q;  // ISSUE gate: 2 % relative
  }
  // Mean from the fixed-point sum, and true (unbucketed) extremes.
  double sum = 0.0;
  for (double v : xs) sum += v;
  EXPECT_NEAR(h.mean(), sum / static_cast<double>(xs.size()),
              1e-2 * sum / static_cast<double>(xs.size()));
  EXPECT_DOUBLE_EQ(h.min(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(h.max(), *std::max_element(xs.begin(), xs.end()));
}

TEST(ObsHistogram, EdgeCases) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  // Non-positive and out-of-range values clamp to edge buckets but still
  // count, and min/max stay exact.
  h.record(0.0);
  h.record(-3.0);
  h.record(1e12);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e12);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.99), 0.0);
}

TEST(ObsHistogram, SingleValueQuantilesClampToObservedRange) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(7.25);
  for (double q : {0.0, 0.5, 0.99, 1.0}) EXPECT_DOUBLE_EQ(h.percentile(q), 7.25);
}

TEST(ObsHistogram, FixedMemoryByConstruction) {
  // The whole point vs the old unbounded latency vector: footprint is a
  // compile-time constant, not a function of sample count.
  static_assert(Histogram::memory_bytes() == sizeof(Histogram));
  Histogram h;
  for (int i = 0; i < 1000000; ++i) h.record(0.5 + (i % 97) * 0.1);
  EXPECT_EQ(Histogram::memory_bytes(), sizeof(Histogram));
  EXPECT_EQ(h.count(), 1000000u);
}

TEST(ObsHistogram, ConcurrentRecordLosesNothing) {
  Histogram h;
  constexpr int kThreads = 4, kPer = 50000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&h, t] {
      util::Rng rng(1000 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPer; ++i) h.record(std::exp(rng.normal(0.0, 1.0)));
    });
  for (auto& th : ts) th.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPer);
  std::uint64_t bucket_total = 0;
  for (const auto& b : h.nonzero_buckets()) bucket_total += b.count;
  EXPECT_EQ(bucket_total, h.count());
}

// -- counter / gauge ---------------------------------------------------------

TEST(ObsCounter, ConcurrentAddsAreExactAfterJoin) {
  Counter c;
  constexpr int kThreads = 8, kPer = 100000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&c] {
      for (int i = 0; i < kPer; ++i) c.add();
    });
  for (auto& th : ts) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPer);
  c.add(41);
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPer + 41);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, ObserveMaxIsMonotone) {
  Gauge g;
  g.observe_max(3.0);
  g.observe_max(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.observe_max(9.5);
  EXPECT_DOUBLE_EQ(g.value(), 9.5);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

// -- registry ----------------------------------------------------------------

TEST(ObsRegistry, GetOrCreateContinuesSeriesAndChecksKind) {
  obs::Registry reg;
  auto c1 = reg.counter("requests", {{"model", "a"}});
  c1->add(5);
  // Same identity → same underlying metric (hot-reload continues series).
  auto c2 = reg.counter("requests", {{"model", "a"}});
  EXPECT_EQ(c1.get(), c2.get());
  EXPECT_EQ(c2->value(), 5u);
  // Different labels → a different series; different kind → an error.
  auto c3 = reg.counter("requests", {{"model", "b"}});
  EXPECT_NE(c1.get(), c3.get());
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_THROW(reg.histogram("requests", {{"model", "a"}}), std::logic_error);
}

// -- exporters ---------------------------------------------------------------

TEST(ObsExport, PrometheusGolden) {
  obs::Registry reg;
  reg.counter("req_total", {{"model", "m0"}}, "completed requests")->add(42);
  reg.gauge("depth_max", {}, "queue high-water")->set(7);
  auto h = reg.histogram("lat_ms", {{"model", "m0"}}, "latency");
  h->record(1.0);  // bucket upper edge for 1.0: first sub-bucket of octave 0
  h->record(1.0);
  const std::string text = obs::to_prometheus(reg);
  const std::string expected =
      "# HELP depth_max queue high-water\n"
      "# TYPE depth_max gauge\n"
      "depth_max 7\n"
      "# HELP lat_ms latency\n"
      "# TYPE lat_ms histogram\n"
      "lat_ms_bucket{model=\"m0\",le=\"1.015625\"} 2\n"
      "lat_ms_bucket{model=\"m0\",le=\"+Inf\"} 2\n"
      "lat_ms_sum{model=\"m0\"} 2\n"
      "lat_ms_count{model=\"m0\"} 2\n"
      "# HELP req_total completed requests\n"
      "# TYPE req_total counter\n"
      "req_total{model=\"m0\"} 42\n";
  EXPECT_EQ(text, expected);
}

TEST(ObsExport, JsonGolden) {
  obs::Registry reg;
  reg.counter("req_total", {{"model", "m0"}})->add(3);
  reg.gauge("depth_max")->set(2.5);
  const std::string text = obs::to_json(reg);
  const std::string expected =
      "{\n"
      "  \"metrics\": [\n"
      "    {\"name\": \"depth_max\", \"labels\": {}, \"type\": \"gauge\", \"value\": 2.5},\n"
      "    {\"name\": \"req_total\", \"labels\": {\"model\": \"m0\"}, \"type\": \"counter\", "
      "\"value\": 3}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(text, expected);
}

TEST(ObsExport, JsonHistogramCarriesQuantiles) {
  obs::Registry reg;
  auto h = reg.histogram("lat_ms");
  for (int i = 1; i <= 100; ++i) h->record(static_cast<double>(i));
  const std::string text = obs::to_json(reg);
  EXPECT_NE(text.find("\"type\": \"histogram\""), std::string::npos);
  EXPECT_NE(text.find("\"count\": 100"), std::string::npos);
  EXPECT_NE(text.find("\"p50\":"), std::string::npos);
  EXPECT_NE(text.find("\"p999\":"), std::string::npos);
}

TEST(ObsExport, DumpMetricsFilePicksFormatByExtension) {
  obs::Registry reg;
  reg.counter("x_total")->add(1);
  const std::string jpath = "test_obs_metrics.json";
  const std::string ppath = "test_obs_metrics.prom";
  obs::dump_metrics_file(jpath, reg);
  obs::dump_metrics_file(ppath, reg);
  std::ifstream jf(jpath), pf(ppath);
  std::string jtext((std::istreambuf_iterator<char>(jf)), std::istreambuf_iterator<char>());
  std::string ptext((std::istreambuf_iterator<char>(pf)), std::istreambuf_iterator<char>());
  EXPECT_EQ(jtext, obs::to_json(reg));
  EXPECT_EQ(ptext, obs::to_prometheus(reg));
  std::remove(jpath.c_str());
  std::remove(ppath.c_str());
}

TEST(ObsExport, PeriodicReporterFiresAndStops) {
  std::atomic<int> fired{0};
  {
    obs::PeriodicReporter rep(0.02, [&fired] { fired.fetch_add(1); });
    while (fired.load() < 2) std::this_thread::sleep_for(std::chrono::milliseconds(5));
    rep.stop();
    const int at_stop = fired.load();
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    EXPECT_EQ(fired.load(), at_stop);  // no firing after stop()
  }
  EXPECT_GE(fired.load(), 2);
}

// -- profiling gate ----------------------------------------------------------

TEST(ObsScopedTimer, GatedByRuntimeFlag) {
  Histogram h;
  obs::set_profiling_enabled(false);
  { obs::ScopedTimer t(&h); }
  EXPECT_EQ(h.count(), 0u);  // disabled: no clock, no record
  obs::set_profiling_enabled(true);
  { obs::ScopedTimer t(&h); }
  obs::set_profiling_enabled(false);
  EXPECT_EQ(h.count(), 1u);
}

// -- serving stats on the bounded core ---------------------------------------

TEST(ObsServingStats, BoundedMemoryHoldsPercentileAccuracyOverOneMillionRecords) {
  // The regression the rewrite exists for: the old implementation kept an
  // unbounded std::vector<double> of every latency (8 MB per million
  // requests, growing forever); the histogram footprint is a constant.
  static_assert(serve::ServingStats::memory_bytes() == 2 * sizeof(Histogram));
  serve::ServingStats stats;
  util::Rng rng(0xfeedULL);
  std::vector<double> xs;
  xs.reserve(1000000);
  for (int i = 0; i < 1000000; ++i) {
    const double v = std::exp(rng.normal(0.5, 1.0));
    xs.push_back(v);
    stats.record_request(v, v * 0.25);
  }
  const auto s = stats.summary();
  EXPECT_EQ(s.completed, 1000000u);
  const double e50 = exact_percentile(xs, 0.50);
  const double e99 = exact_percentile(xs, 0.99);
  EXPECT_NEAR(s.p50_latency_ms, e50, 0.02 * e50);
  EXPECT_NEAR(s.p99_latency_ms, e99, 0.02 * e99);
  EXPECT_GT(s.p999_latency_ms, s.p99_latency_ms * 0.98);
  EXPECT_NEAR(s.p99_queue_wait_ms, 0.25 * e99, 0.05 * e99);
}

TEST(ObsServingStats, BatchHistogramAndDomainsSurvivedTheRewrite) {
  serve::ServingStats stats;
  stats.record_batch(1);
  stats.record_batch(3);
  stats.record_batch(8);
  stats.record_batch(8);
  stats.record_domains(5, 3);
  stats.observe_queue_depth(17);
  const auto s = stats.summary();
  EXPECT_EQ(s.batches, 4u);
  EXPECT_DOUBLE_EQ(s.mean_batch_size, 5.0);
  ASSERT_EQ(s.batch_histogram.size(), 4u);  // buckets: 1 | 2-3 | 4-7 | 8-15
  EXPECT_EQ(s.batch_histogram[0], 1u);
  EXPECT_EQ(s.batch_histogram[1], 1u);
  EXPECT_EQ(s.batch_histogram[2], 0u);
  EXPECT_EQ(s.batch_histogram[3], 2u);
  EXPECT_EQ(s.max_queue_depth, 17u);
  EXPECT_EQ(s.seen_hits, 5u);
  EXPECT_EQ(s.unseen_hits, 3u);
  EXPECT_NEAR(s.domain_harmonic, 2.0 * 0.625 * 0.375, 1e-12);
  stats.reset();
  EXPECT_EQ(stats.summary().batches, 0u);
  EXPECT_EQ(stats.summary().batch_histogram.size(), 0u);
}

// -- tracer ------------------------------------------------------------------

obs::TraceSpan make_span(double total) {
  obs::TraceSpan s;
  s.stage(obs::Stage::kQueueWait) = total * 0.5;
  s.stage(obs::Stage::kEmbed) = total * 0.4;
  s.stage(obs::Stage::kReply) = total * 0.1;
  s.total_ms = total;
  return s;
}

TEST(ObsTracer, SlowestRingKeepsTheLargestTotals) {
  obs::Tracer tracer("", /*slowest_capacity=*/4);
  for (double t : {5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0, 4.0}) tracer.record(make_span(t));
  const auto slow = tracer.slowest();
  ASSERT_EQ(slow.size(), 4u);
  EXPECT_DOUBLE_EQ(slow[0].total_ms, 9.0);
  EXPECT_DOUBLE_EQ(slow[1].total_ms, 8.0);
  EXPECT_DOUBLE_EQ(slow[2].total_ms, 7.0);
  EXPECT_DOUBLE_EQ(slow[3].total_ms, 5.0);
  const auto stats = tracer.stage_stats();
  ASSERT_EQ(stats.size(), obs::kNumStages + 1);
  EXPECT_EQ(stats.back().stage, "total");
  EXPECT_EQ(stats.back().count, 8u);
  tracer.reset();
  EXPECT_TRUE(tracer.slowest().empty());
  EXPECT_EQ(tracer.stage_stats().back().count, 0u);
}

TEST(ObsTracer, DumpSlowestFormatsOneLinePerSpan) {
  obs::Tracer tracer("", 2);
  tracer.record(make_span(4.0));
  tracer.record(make_span(6.0));
  const std::string dump = tracer.dump_slowest();
  EXPECT_NE(dump.find("total=6.000ms"), std::string::npos);
  EXPECT_NE(dump.find("queue-wait=3.000"), std::string::npos);
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 2);
}

// -- end-to-end: spans from a real serving runtime ---------------------------

/// One cheap trained pipeline + snapshot shared by the runtime-facing tests.
struct SharedObsServe {
  core::TrainedPipeline tp;
  std::shared_ptr<const serve::ModelSnapshot> snapshot;

  static const SharedObsServe& get() {
    static SharedObsServe s;
    return s;
  }

 private:
  SharedObsServe() {
    core::PipelineConfig cfg;
    cfg.n_classes = 10;
    cfg.images_per_class = 4;
    cfg.train_instances = 3;
    cfg.image_size = 32;
    cfg.split = "zs";
    cfg.zs_train_classes = 6;
    cfg.model.image.proj_dim = 128;
    cfg.run_phase1 = false;
    cfg.run_phase2 = false;
    cfg.phase3 = {1, 16, 1e-2f, 1e-4f, 5.0f, true, false};
    cfg.augment.enabled = false;
    tp = core::run_pipeline_trained(cfg);
    snapshot = std::make_shared<serve::ModelSnapshot>(tp.model, tp.test_class_attributes);
  }
};

nn::Tensor one_image(const nn::Tensor& images, std::size_t b) {
  const std::size_t per = images.numel() / images.size(0);
  nn::Tensor out({images.size(1), images.size(2), images.size(3)});
  const float* src = images.data() + b * per;
  std::copy(src, src + per, out.data());
  return out;
}

TEST(ObsTracer, ServerProducesCoherentStageSpans) {
  const auto& shared = SharedObsServe::get();
  auto engine = std::make_shared<const serve::InferenceEngine>(shared.snapshot);
  serve::ServerConfig cfg;
  cfg.batch.max_batch = 4;
  cfg.batch.max_delay_ms = 1.0;
  cfg.tracing = true;
  serve::ServerRuntime server(engine, cfg);
  server.start();
  const std::size_t n = 24;
  std::vector<std::future<serve::InferResult>> futs;
  for (std::size_t i = 0; i < n; ++i) {
    serve::InferRequest req;
    req.input = one_image(shared.tp.test_set.images, i % shared.tp.test_set.images.size(0));
    futs.push_back(server.submit(std::move(req)));
  }
  for (auto& f : futs) f.get();
  server.stop();

  // Every request produced a span; per-stage counts match.
  const auto stats = server.tracer().stage_stats();
  ASSERT_EQ(stats.size(), obs::kNumStages + 1);
  for (const auto& s : stats) EXPECT_EQ(s.count, n) << s.stage;

  // Span coherence: stages non-negative, total bounds each stage, and the
  // stages partition the request's lifetime (their sum cannot exceed the
  // total by more than clock jitter).
  const auto slow = server.tracer().slowest();
  ASSERT_FALSE(slow.empty());
  for (const auto& sp : slow) {
    double sum = 0.0;
    for (std::size_t i = 0; i < obs::kNumStages; ++i) {
      EXPECT_GE(sp.stage_ms[i], 0.0);
      EXPECT_LE(sp.stage_ms[i], sp.total_ms + 0.5);
      sum += sp.stage_ms[i];
    }
    EXPECT_LE(sum, sp.total_ms + 0.5);
    EXPECT_GT(sp.total_ms, 0.0);
  }
  // The embed/score stages actually measured work (a CNN forward is not
  // instantaneous), and queue-wait + embed dominate the slowest span.
  EXPECT_GT(stats[static_cast<std::size_t>(obs::Stage::kEmbed)].mean_ms, 0.0);
}

TEST(ObsTracer, DisabledTracingRecordsNoSpans) {
  const auto& shared = SharedObsServe::get();
  auto engine = std::make_shared<const serve::InferenceEngine>(shared.snapshot);
  serve::ServerConfig cfg;
  cfg.batch.max_batch = 4;
  cfg.tracing = false;
  serve::ServerRuntime server(engine, cfg);
  server.start();
  for (int i = 0; i < 6; ++i) {
    serve::InferRequest req;
    req.input = one_image(shared.tp.test_set.images, 0);
    server.submit(std::move(req)).get();
  }
  server.stop();
  EXPECT_EQ(server.tracer().stage_stats().back().count, 0u);
  EXPECT_TRUE(server.tracer().slowest().empty());
  // Metrics still flow with tracing off.
  EXPECT_EQ(server.stats().summary().completed, 6u);
}

TEST(ObsEngine, BatchTimingsSplitDoesNotChangePredictions) {
  const auto& shared = SharedObsServe::get();
  const serve::InferenceEngine engine(shared.snapshot);
  const auto& images = shared.tp.test_set.images;
  nn::Tensor batch({4, images.size(1), images.size(2), images.size(3)});
  std::copy(images.data(), images.data() + batch.numel(), batch.data());

  serve::InferenceEngine::BatchTimings t;
  const auto with = engine.classify_batch(batch, &t);
  const auto without = engine.classify_batch(batch);
  ASSERT_EQ(with.size(), without.size());
  for (std::size_t i = 0; i < with.size(); ++i) {
    EXPECT_EQ(with[i].label, without[i].label);
    EXPECT_EQ(with[i].score, without[i].score);
  }
  EXPECT_GT(t.embed_ms, 0.0);
  EXPECT_GE(t.score_ms, 0.0);
}

}  // namespace
}  // namespace hdczsc
