// The versioned InferRequest/InferResult surface: every failure mode is a
// named status (never an ad-hoc exception), embedding inputs score
// bit-identically to the image path they shortcut, want_logits derives the
// same ranking as topk, and the registry validates endpoint names.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <vector>

#include "core/pipeline.hpp"
#include "serve/model_registry.hpp"

namespace hdczsc {
namespace {

using nn::Tensor;

/// One cheap trained pipeline + snapshot shared by every test in this file.
struct SharedApi {
  core::TrainedPipeline tp;
  std::shared_ptr<const serve::ModelSnapshot> snapshot;

  static const SharedApi& get() {
    static SharedApi s;
    return s;
  }

 private:
  SharedApi() {
    core::PipelineConfig cfg;
    cfg.n_classes = 8;
    cfg.images_per_class = 4;
    cfg.train_instances = 3;
    cfg.image_size = 32;
    cfg.split = "zs";
    cfg.zs_train_classes = 4;
    cfg.model.image.proj_dim = 64;
    cfg.run_phase1 = false;
    cfg.run_phase2 = false;
    cfg.phase3 = {2, 16, 1e-2f, 1e-4f, 5.0f, true, false};
    cfg.augment.enabled = false;
    tp = core::run_pipeline_trained(cfg);
    snapshot = std::make_shared<serve::ModelSnapshot>(tp.model, tp.test_class_attributes);
  }
};

serve::ServerConfig small_config(std::size_t queue_depth = 256) {
  serve::ServerConfig cfg;
  cfg.n_workers = 1;
  cfg.batch.max_batch = 4;
  cfg.batch.max_delay_ms = 1.0;
  cfg.batch.max_queue_depth = queue_depth;
  return cfg;
}

Tensor one_image(std::size_t i = 0) {
  const Tensor& images = SharedApi::get().tp.test_set.images;
  const std::size_t per = images.numel() / images.size(0);
  Tensor out({images.size(1), images.size(2), images.size(3)});
  std::copy(images.data() + i * per, images.data() + (i + 1) * per, out.data());
  return out;
}

TEST(InferApi, StatusNamesAreStable) {
  EXPECT_STREQ(serve::infer_status_name(serve::InferStatus::kOk), "ok");
  EXPECT_STREQ(serve::infer_status_name(serve::InferStatus::kOverloaded), "overloaded");
  EXPECT_STREQ(serve::infer_status_name(serve::InferStatus::kTransport), "transport-error");
}

TEST(InferApi, ModelKeyValidation) {
  EXPECT_TRUE(serve::is_valid_model_key("m0"));
  EXPECT_TRUE(serve::is_valid_model_key("bench.binary-v2_A"));
  EXPECT_FALSE(serve::is_valid_model_key(""));
  EXPECT_FALSE(serve::is_valid_model_key("has space"));
  EXPECT_FALSE(serve::is_valid_model_key("sla/sh"));
  EXPECT_FALSE(serve::is_valid_model_key(std::string(serve::kMaxModelKeyBytes + 1, 'a')));
  EXPECT_TRUE(serve::is_valid_model_key(std::string(serve::kMaxModelKeyBytes, 'a')));
}

TEST(InferApi, SubmitImageEchoesIdAndFillsTimings) {
  const auto& s = SharedApi::get();
  auto engine =
      std::make_shared<const serve::InferenceEngine>(s.snapshot, serve::ScoringMode::kFloatCosine);
  serve::ServerRuntime server(engine, small_config());
  server.start();

  serve::InferRequest req;
  req.input = one_image();
  req.k = 3;
  req.request_id = 4242;
  const serve::InferResult r = server.submit(std::move(req)).get();
  server.stop();

  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_EQ(r.request_id, 4242u);
  ASSERT_EQ(r.topk.size(), 3u);
  EXPECT_EQ(r.top().label, r.topk[0].label);
  EXPECT_GE(r.timings.queue_wait_ms, 0.0);
  EXPECT_GT(r.timings.total_ms, 0.0);
  EXPECT_GT(r.timings.score_ms, 0.0);
  EXPECT_GT(r.timings.embed_ms, 0.0);  // image input pays the backbone
}

TEST(InferApi, EmbeddingInputBitIdenticalToEngineOnBothPaths) {
  const auto& s = SharedApi::get();
  for (const auto mode :
       {serve::ScoringMode::kFloatCosine, serve::ScoringMode::kBinaryHamming}) {
    auto engine = std::make_shared<const serve::InferenceEngine>(s.snapshot, mode);
    serve::ServerRuntime server(engine, small_config());
    server.start();

    const Tensor emb = s.snapshot->embed(
        one_image(1).reshape({1, 3, one_image().size(1), one_image().size(2)}));
    const auto expected = engine->topk_batch(emb, 4);

    // Both admissible embedding shapes: [d] and [1, d].
    for (const bool rank1 : {true, false}) {
      serve::InferRequest req;
      req.input = rank1 ? emb.reshape({emb.size(1)}) : emb;
      req.k = 4;
      const serve::InferResult r = server.submit(std::move(req)).get();
      ASSERT_TRUE(r.ok()) << r.message;
      ASSERT_EQ(r.topk.size(), expected[0].size());
      for (std::size_t j = 0; j < r.topk.size(); ++j) {
        EXPECT_EQ(r.topk[j].label, expected[0][j].label);
        EXPECT_EQ(r.topk[j].score, expected[0][j].score);  // bit-identical
      }
      EXPECT_EQ(r.timings.embed_ms, 0.0);  // scoring-only path
    }
    server.stop();
  }
}

TEST(InferApi, WantLogitsReturnsFullRowWithConsistentTopk) {
  const auto& s = SharedApi::get();
  auto engine =
      std::make_shared<const serve::InferenceEngine>(s.snapshot, serve::ScoringMode::kFloatCosine);
  serve::ServerRuntime server(engine, small_config());
  server.start();

  serve::InferRequest req;
  req.input = one_image(2);
  req.k = 3;
  req.want_logits = true;
  const serve::InferResult r = server.submit(std::move(req)).get();
  server.stop();

  ASSERT_TRUE(r.ok()) << r.message;
  ASSERT_EQ(r.logits.size(), s.snapshot->n_classes());
  ASSERT_EQ(r.topk.size(), 3u);
  // The hits must be the logit row's own (score desc, label asc) ranking.
  std::vector<std::size_t> order(r.logits.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (r.logits[a] != r.logits[b]) return r.logits[a] > r.logits[b];
    return a < b;
  });
  for (std::size_t j = 0; j < r.topk.size(); ++j) {
    EXPECT_EQ(r.topk[j].label, order[j]);
    EXPECT_EQ(r.topk[j].score, r.logits[order[j]]);
  }
}

TEST(InferApi, WantLogitsWithKZeroIsAdmissible) {
  const auto& s = SharedApi::get();
  auto engine =
      std::make_shared<const serve::InferenceEngine>(s.snapshot, serve::ScoringMode::kFloatCosine);
  serve::ServerRuntime server(engine, small_config());
  server.start();

  serve::InferRequest req;
  req.input = one_image();
  req.k = 0;
  req.want_logits = true;
  const serve::InferResult r = server.submit(std::move(req)).get();
  server.stop();
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_TRUE(r.topk.empty());
  EXPECT_EQ(r.logits.size(), s.snapshot->n_classes());
  EXPECT_THROW(r.top(), std::logic_error);
}

TEST(InferApi, NamedStatusesForBadRequests) {
  const auto& s = SharedApi::get();
  auto engine =
      std::make_shared<const serve::InferenceEngine>(s.snapshot, serve::ScoringMode::kFloatCosine);
  serve::ServerRuntime server(engine, small_config());
  server.start();

  auto status_of = [&](serve::InferRequest req) {
    return server.submit(std::move(req)).get().status;
  };

  {  // rank-2 with a batch of 5: neither an image nor a single embedding
    serve::InferRequest req;
    req.input = Tensor({5, 7});
    EXPECT_EQ(status_of(std::move(req)), serve::InferStatus::kBadShape);
  }
  {  // empty tensor
    serve::InferRequest req;
    req.input = Tensor();
    EXPECT_EQ(status_of(std::move(req)), serve::InferStatus::kBadShape);
  }
  {  // embedding with the wrong width
    serve::InferRequest req;
    req.input = Tensor({s.snapshot->dim() + 1});
    const serve::InferResult r = server.submit(std::move(req)).get();
    EXPECT_EQ(r.status, serve::InferStatus::kBadShape);
    EXPECT_NE(r.message.find("does not match the model dim"), std::string::npos);
  }
  {  // k == 0 without logits: semantically empty
    serve::InferRequest req;
    req.input = one_image();
    req.k = 0;
    EXPECT_EQ(status_of(std::move(req)), serve::InferStatus::kBadRequest);
  }
  {  // scoring pin that contradicts the engine's mode
    serve::InferRequest req;
    req.input = one_image();
    req.scoring = serve::ScoringSelect::kBinaryHamming;
    EXPECT_EQ(status_of(std::move(req)), serve::InferStatus::kBadScoring);
  }
  {  // matching pin is fine
    serve::InferRequest req;
    req.input = one_image();
    req.scoring = serve::ScoringSelect::kFloatCosine;
    EXPECT_EQ(status_of(std::move(req)), serve::InferStatus::kOk);
  }
  server.stop();
}

TEST(InferApi, OverloadedAndShutdownStatuses) {
  const auto& s = SharedApi::get();
  auto engine =
      std::make_shared<const serve::InferenceEngine>(s.snapshot, serve::ScoringMode::kFloatCosine);
  {  // a zero-depth queue rejects every admission with kOverloaded
    serve::ServerRuntime server(engine, small_config(/*queue_depth=*/0));
    server.start();
    serve::InferRequest req;
    req.input = one_image();
    const serve::InferResult r = server.submit(std::move(req)).get();
    EXPECT_EQ(r.status, serve::InferStatus::kOverloaded);
    EXPECT_NE(r.message.find("queue full"), std::string::npos);
    server.stop();
  }
  {  // a stopped runtime answers kShutdown, not kOverloaded
    serve::ServerRuntime server(engine, small_config());
    server.start();
    server.stop();
    serve::InferRequest req;
    req.input = one_image();
    EXPECT_EQ(server.submit(std::move(req)).get().status, serve::InferStatus::kShutdown);
  }
}

TEST(InferApi, CallbackFormRunsExactlyOnce) {
  const auto& s = SharedApi::get();
  auto engine =
      std::make_shared<const serve::InferenceEngine>(s.snapshot, serve::ScoringMode::kFloatCosine);
  serve::ServerRuntime server(engine, small_config());
  server.start();

  std::promise<serve::InferResult> prom;
  auto fut = prom.get_future();
  serve::InferRequest req;
  req.input = one_image();
  req.request_id = 9;
  server.submit(std::move(req),
                [&prom](serve::InferResult&& r) { prom.set_value(std::move(r)); });
  const serve::InferResult r = fut.get();
  server.stop();
  EXPECT_TRUE(r.ok()) << r.message;
  EXPECT_EQ(r.request_id, 9u);
}

TEST(InferApi, RegistryRoutesByKeyAndNamesBadModels) {
  const auto& s = SharedApi::get();
  serve::ModelRegistry registry(small_config());
  registry.load("prod.v1", s.snapshot, serve::ScoringMode::kFloatCosine);

  {  // routed fine
    serve::InferRequest req;
    req.model_key = "prod.v1";
    req.input = one_image();
    EXPECT_TRUE(registry.submit(std::move(req)).get().ok());
  }
  {  // unknown key: named status, no exception
    serve::InferRequest req;
    req.model_key = "prod.v2";
    req.input = one_image();
    const serve::InferResult r = registry.submit(std::move(req)).get();
    EXPECT_EQ(r.status, serve::InferStatus::kBadModel);
    EXPECT_NE(r.message.find("prod.v2"), std::string::npos);
  }
  {  // invalid key charset: also kBadModel on the request path
    serve::InferRequest req;
    req.model_key = "not a key!";
    req.input = one_image();
    EXPECT_EQ(registry.submit(std::move(req)).get().status, serve::InferStatus::kBadModel);
  }
  // ...but load() throws: registering an unservable endpoint name is a
  // caller bug, not a request-time condition.
  EXPECT_THROW(registry.load("bad key", s.snapshot), std::invalid_argument);
  EXPECT_THROW(registry.load("", s.snapshot), std::invalid_argument);
  registry.stop_all();
}

}  // namespace
}  // namespace hdczsc
