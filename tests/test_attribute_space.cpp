#include <gtest/gtest.h>

#include <set>

#include "data/attribute_space.hpp"

namespace hdczsc {
namespace {

TEST(AttributeSpace, CubMatchesPaperCounts) {
  // §III-A: G = 28 groups, V = 61 unique values, α = 312 combinations.
  auto s = data::AttributeSpace::cub();
  EXPECT_EQ(s.n_groups(), 28u);
  EXPECT_EQ(s.n_values(), 61u);
  EXPECT_EQ(s.n_attributes(), 312u);
}

TEST(AttributeSpace, CubGroupNamesMatchTableI) {
  auto s = data::AttributeSpace::cub();
  EXPECT_EQ(s.group(0).name, "bill shape");
  EXPECT_EQ(s.group(1).name, "wing color");
  EXPECT_EQ(s.group(18).name, "size");
  EXPECT_EQ(s.group(27).name, "wing pattern");
}

TEST(AttributeSpace, CubGroupSizesMatchCub) {
  auto s = data::AttributeSpace::cub();
  EXPECT_EQ(s.group(0).value_ids.size(), 9u);    // bill shape
  EXPECT_EQ(s.group(1).value_ids.size(), 15u);   // wing color
  EXPECT_EQ(s.group(6).value_ids.size(), 6u);    // tail shape
  EXPECT_EQ(s.group(8).value_ids.size(), 11u);   // head pattern
  EXPECT_EQ(s.group(11).value_ids.size(), 14u);  // eye color
  EXPECT_EQ(s.group(12).value_ids.size(), 3u);   // bill length
  EXPECT_EQ(s.group(19).value_ids.size(), 14u);  // shape
}

TEST(AttributeSpace, OffsetsArePrefixSums) {
  auto s = data::AttributeSpace::cub();
  std::size_t expect = 0;
  for (std::size_t g = 0; g < s.n_groups(); ++g) {
    EXPECT_EQ(s.group(g).attr_offset, expect);
    expect += s.group(g).value_ids.size();
  }
  EXPECT_EQ(expect, s.n_attributes());
}

TEST(AttributeSpace, FlatIndexRoundTrip) {
  auto s = data::AttributeSpace::cub();
  for (std::size_t g = 0; g < s.n_groups(); ++g) {
    for (std::size_t k = 0; k < s.group(g).value_ids.size(); ++k) {
      const std::size_t x = s.attribute_index(g, k);
      EXPECT_EQ(s.group_of(x), g);
      EXPECT_EQ(s.value_of(x), s.group(g).value_ids[k]);
    }
  }
  EXPECT_THROW(s.group_of(312), std::out_of_range);
  EXPECT_THROW(s.attribute_index(0, 99), std::out_of_range);
}

TEST(AttributeSpace, AllValueIdsValid) {
  auto s = data::AttributeSpace::cub();
  std::set<std::size_t> used;
  for (std::size_t g = 0; g < s.n_groups(); ++g)
    for (std::size_t v : s.group(g).value_ids) {
      EXPECT_LT(v, s.n_values());
      used.insert(v);
    }
  // Every value in the vocabulary is used by at least one group.
  EXPECT_EQ(used.size(), s.n_values());
}

TEST(AttributeSpace, HdcPairsMatchStructure) {
  auto s = data::AttributeSpace::cub();
  auto pairs = s.hdc_pairs();
  EXPECT_EQ(pairs.size(), 312u);
  for (std::size_t x = 0; x < pairs.size(); ++x) {
    EXPECT_EQ(pairs[x].group, s.group_of(x));
    EXPECT_EQ(pairs[x].value, s.value_of(x));
  }
}

TEST(AttributeSpace, MemoryReductionIsPaper71Percent) {
  auto s = data::AttributeSpace::cub();
  const double factored = static_cast<double>(s.n_groups() + s.n_values());
  const double flat = static_cast<double>(s.n_attributes());
  EXPECT_NEAR(100.0 * (1.0 - factored / flat), 71.0, 1.0);
}

TEST(AttributeSpace, ToySpaceIsConsistent) {
  auto s = data::AttributeSpace::toy(4, 3, 6);
  EXPECT_EQ(s.n_groups(), 4u);
  EXPECT_EQ(s.n_attributes(), 12u);
  EXPECT_THROW(data::AttributeSpace::toy(2, 9, 4), std::invalid_argument);
}

}  // namespace
}  // namespace hdczsc
