// Cross-module integration: the full HDC-ZSC story on a learnable scale —
// training must beat chance on unseen classes, the HDC dictionary must beat
// a destroyed (shuffled-attribute) descriptor, phase II must help, and the
// binary inference path must agree with the float one.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "hdc/memory_report.hpp"
#include "tensor/ops.hpp"

namespace hdczsc {
namespace {

using nn::Tensor;

core::PipelineConfig learnable_cfg() {
  // 24 seen / 8 unseen classes: enough class coverage of attribute space
  // for compositional zero-shot transfer (cf. the paper's 150/50 split).
  core::PipelineConfig cfg;
  cfg.n_classes = 32;
  cfg.images_per_class = 8;
  cfg.train_instances = 6;
  cfg.image_size = 32;
  cfg.split = "zs";
  cfg.zs_train_classes = 24;
  cfg.model.image.arch = "resnet_micro_flat";
  cfg.model.image.proj_dim = 256;
  cfg.model.temp_scale = 4.0f;
  cfg.run_phase1 = false;  // keep tests fast; phase I covered separately
  cfg.phase2 = {10, 16, 1e-2f, 1e-4f, 5.0f, true, false};
  cfg.phase3 = {12, 16, 1e-2f, 1e-4f, 5.0f, true, false};
  cfg.augment.enabled = false;  // determinism and speed in tests
  return cfg;
}

/// The full-pipeline runs are expensive on one core; train once and let
/// several tests assert on the shared results.
struct SharedRuns {
  core::PipelineResult with_p2;
  core::PipelineResult no_p2;

  static const SharedRuns& get() {
    static SharedRuns runs;
    return runs;
  }

 private:
  SharedRuns() {
    auto cfg = learnable_cfg();
    with_p2 = core::run_pipeline(cfg);
    cfg.run_phase2 = false;
    no_p2 = core::run_pipeline(cfg);
  }
};

TEST(Integration, ZeroShotBeatsChanceOnUnseenClasses) {
  const auto& runs = SharedRuns::get();
  // Chance on 8 unseen classes is 0.125; require a decisive margin.
  EXPECT_GT(runs.with_p2.zsc.top1, 0.125 + 0.25)
      << "ZSC failed to generalize to unseen classes";
  EXPECT_GT(runs.with_p2.zsc.top5, 0.7);
}

TEST(Integration, AttributeExtractionLearnsStructure) {
  const auto& runs = SharedRuns::get();
  ASSERT_TRUE(runs.with_p2.has_attribute_metrics);
  // Attribute metrics are evaluated on *unseen-class* images here; random
  // chance per group ≈ mean(1/|group|) ≈ 0.12 for the CUB space.
  EXPECT_GT(runs.with_p2.attributes.mean_top1, 0.16);
  EXPECT_GT(runs.with_p2.attributes.mean_wmap, 0.14);
}

TEST(Integration, Phase2PretrainingHelpsZsc) {
  const auto& runs = SharedRuns::get();
  EXPECT_GT(runs.with_p2.zsc.top1, runs.no_p2.zsc.top1)
      << "attribute-extraction pre-training must improve ZSC (paper Table II)";
}

TEST(Integration, HdcDictionaryCarriesClassSemantics) {
  // Destroying the attribute descriptors at eval time (shuffling rows of A)
  // must collapse accuracy toward chance: evidence that classification
  // flows through ϕ(A) and not some side channel.
  auto cfg = learnable_cfg();
  const std::uint64_t seed = cfg.seed;

  data::AttributeSpace space = data::AttributeSpace::cub();
  data::CubSyntheticConfig dcfg;
  dcfg.n_classes = cfg.n_classes;
  dcfg.images_per_class = cfg.images_per_class;
  dcfg.image_size = cfg.image_size;
  dcfg.seed = seed;
  data::CubSynthetic dataset(space, dcfg);
  auto split = data::make_zs_split(cfg.n_classes, cfg.zs_train_classes, seed);
  data::AugmentConfig no_aug;
  no_aug.enabled = false;
  data::DataLoader train(dataset, split.train_classes, 0, cfg.train_instances, 16, true,
                         no_aug, seed + 11);
  data::DataLoader test(dataset, split.test_classes, 0, dcfg.images_per_class, 16, false,
                        no_aug, seed + 13);

  util::Rng rng(seed);
  auto model = core::make_zsc_model(cfg.model, space, rng);
  core::Trainer trainer(seed);
  trainer.phase2_attribute_extraction(*model, train, cfg.phase2);
  trainer.phase3_zsc(*model, train, cfg.phase3);

  const auto intact = trainer.evaluate_zsc(*model, test);

  // Shuffle descriptor rows: same model, wrong class descriptions.
  Tensor a = test.class_attribute_rows();
  Tensor shuffled = a.clone();
  const std::size_t c = a.size(0), alpha = a.size(1);
  for (std::size_t i = 0; i < c; ++i)
    for (std::size_t j = 0; j < alpha; ++j)
      shuffled[i * alpha + j] = a.at((i + 1) % c, j);
  data::Batch batch = test.all_eval();
  Tensor e = model->image_encoder().forward(batch.images, false);
  Tensor phi = model->attribute_encoder().encode(shuffled, false);
  Tensor p = model->class_kernel().forward(e, phi, false);
  const double shuffled_top1 = metrics::top1_accuracy(p, batch.labels);

  EXPECT_GT(intact.top1, shuffled_top1 + 0.2)
      << "intact descriptors must beat shuffled ones decisively";
}

TEST(Integration, BinaryInferencePathMatchesFloatSimilarityOrdering) {
  // The packed-binary dictionary (edge deployment, Fig. 1) must induce the
  // same nearest-attribute decisions as the ±1 float dictionary.
  auto space = data::AttributeSpace::cub();
  util::Rng rng(77);
  core::HdcAttributeEncoder enc(space, 512, rng);
  const auto& dict = enc.dictionary();

  // Build packed binary copies of all attribute vectors.
  std::vector<hdc::BinaryHV> packed;
  for (std::size_t x = 0; x < dict.n_attributes(); ++x)
    packed.push_back(dict.attribute_vector(x).to_binary());

  // A query built as a noisy copy of attribute 42.
  hdc::BipolarHV query = dict.attribute_vector(42);
  for (std::size_t i = 0; i < 40; ++i)
    query[i] = static_cast<std::int8_t>(-query[i]);

  // Float path: cosine against the dictionary tensor.
  Tensor q = query.to_tensor().reshape({1, 512});
  Tensor sims = tensor::cosine_similarity(q, enc.dictionary_tensor());
  const std::size_t float_best = tensor::argmax_rows(sims)[0];

  // Binary path: max similarity (min Hamming).
  hdc::BinaryHV bq = query.to_binary();
  std::size_t bin_best = 0;
  double best_sim = -2.0;
  for (std::size_t x = 0; x < packed.size(); ++x) {
    const double s = bq.similarity(packed[x]);
    if (s > best_sim) {
      best_sim = s;
      bin_best = x;
    }
  }
  EXPECT_EQ(float_best, 42u);
  EXPECT_EQ(bin_best, 42u);
}

TEST(Integration, MemoryClaimHoldsAtPaperScale) {
  auto space = data::AttributeSpace::cub();
  auto r = hdc::memory_report(space.n_groups(), space.n_values(), space.n_attributes(), 1536);
  EXPECT_LT(r.factored_bytes, 18 * 1024u);
  EXPECT_GT(r.reduction_percent, 70.0);
}

TEST(Integration, NozsSplitPipelineRuns) {
  auto cfg = learnable_cfg();
  cfg.split = "nozs";
  cfg.nozs_classes = 8;
  cfg.phase2.epochs = 2;
  cfg.phase3.epochs = 2;
  auto res = core::run_pipeline(cfg);
  // noZS: test instances of *seen* classes (image-level split).
  EXPECT_EQ(res.zsc.n_examples, 8u * 2u);  // 8 classes x (8-6) held-out instances
}

TEST(Integration, ValSplitMatchesFig5Protocol) {
  auto cfg = learnable_cfg();
  cfg.split = "val";
  cfg.zs_train_classes = 12;
  cfg.val_classes = 4;
  cfg.phase2.epochs = 1;
  cfg.phase3.epochs = 1;
  auto res = core::run_pipeline(cfg);
  EXPECT_EQ(res.zsc.n_examples, 4u * 8u);
}

}  // namespace
}  // namespace hdczsc
