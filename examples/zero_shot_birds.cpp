// Full three-phase HDC-ZSC run on the synthetic CUB-200-like dataset with
// the paper's ZS split shape (75% train / 25% unseen classes), comparing
// the stationary HDC attribute encoder against the trainable MLP variant —
// the core experiment behind Fig. 4's "ours" points.
//
//   ./examples/zero_shot_birds [--classes=24] [--seeds=2]
#include <cstdio>

#include "core/pipeline.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hdczsc;
  util::ArgMap args(argc, argv);

  core::PipelineConfig cfg;
  cfg.n_classes = static_cast<std::size_t>(args.get_int("classes", 24));
  cfg.images_per_class = 8;
  cfg.train_instances = 6;
  cfg.image_size = 32;
  cfg.split = "zs";
  cfg.zs_train_classes = cfg.n_classes * 3 / 4;
  cfg.model.image.arch = args.get_str("arch", "resnet_micro_flat");
  cfg.model.image.proj_dim = static_cast<std::size_t>(args.get_int("d", 256));
  
  cfg.pretrain_classes = 6;
  cfg.phase1.epochs = 2;
  cfg.phase2.epochs = 4;
  cfg.phase3.epochs = static_cast<std::size_t>(args.get_int("epochs", 8));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  const std::size_t n_seeds = static_cast<std::size_t>(args.get_int("seeds", 2));

  std::printf("zero-shot birds: %zu classes (%zu seen / %zu unseen), %zu seed(s)\n\n",
              cfg.n_classes, cfg.zs_train_classes, cfg.n_classes - cfg.zs_train_classes,
              n_seeds);

  util::Table table("HDC-ZSC vs Trainable-MLP (unseen-class accuracy)");
  table.set_header({"attribute encoder", "top-1 (%)", "top-5 (%)", "params"});

  for (const char* encoder : {"hdc", "mlp"}) {
    cfg.model.attribute_encoder = encoder;
    auto ms = core::run_pipeline_seeds(cfg, n_seeds);
    table.add_row({encoder,
                   util::Table::mu_sigma(100.0 * ms.top1_mean, 100.0 * ms.top1_std, 1),
                   util::Table::mu_sigma(100.0 * ms.top5_mean, 100.0 * ms.top5_std, 1),
                   std::to_string(ms.runs.front().trainable_parameters)});
  }
  table.print();
  std::printf("\nNote: the HDC encoder adds ZERO trainable parameters — its codebooks are\n"
              "random, binary and stationary (the paper's central claim).\n");
  return 0;
}
