// Edge-deployment view of the attribute encoder (Fig. 1 / §V): the
// stationary dictionary lives as *packed binary* codebooks; binding is XOR
// and similarity is a popcount — exactly what the cited in-memory /
// standard-cell HDC accelerators execute. This example reports the memory
// footprint (the 17 KB / 71% claims of §III-A) and demonstrates the binary
// associative lookup agreeing with the float path.
//
//   ./examples/edge_inference [--d=1536]
#include <cstdio>

#include "core/attribute_encoder.hpp"
#include "hdc/memory_report.hpp"
#include "tensor/ops.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace hdczsc;
  util::ArgMap args(argc, argv);
  const std::size_t d = static_cast<std::size_t>(args.get_int("d", 1536));

  auto space = data::AttributeSpace::cub();
  util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  core::HdcAttributeEncoder enc(space, d, rng);
  const auto& dict = enc.dictionary();

  // --- memory accounting (§III-A) -----------------------------------------
  auto report = hdc::memory_report(space.n_groups(), space.n_values(),
                                   space.n_attributes(), d);
  std::printf("%s\n", hdc::to_string(report).c_str());
  std::printf("(paper: ~17 KB and 71%% reduction at d=1536)\n\n");

  // --- binary associative recall under noise -------------------------------
  // Pack all attribute vectors; query with progressively noisier probes.
  std::vector<hdc::BinaryHV> packed;
  packed.reserve(dict.n_attributes());
  for (std::size_t x = 0; x < dict.n_attributes(); ++x)
    packed.push_back(dict.attribute_vector(x).to_binary());

  std::printf("binary associative recall (XOR + popcount only):\n");
  std::printf("  %-18s %s\n", "bit-flip noise", "recall@1 over all 312 attributes");
  for (double noise : {0.0, 0.1, 0.2, 0.3, 0.4}) {
    std::size_t hits = 0;
    util::Rng noise_rng(99);
    for (std::size_t x = 0; x < dict.n_attributes(); ++x) {
      hdc::BipolarHV probe = dict.attribute_vector(x);
      for (std::size_t i = 0; i < probe.dim(); ++i)
        if (noise_rng.bernoulli(noise)) probe[i] = static_cast<std::int8_t>(-probe[i]);
      hdc::BinaryHV bq = probe.to_binary();
      std::size_t best = 0;
      double best_sim = -2.0;
      for (std::size_t y = 0; y < packed.size(); ++y) {
        const double s = bq.similarity(packed[y]);
        if (s > best_sim) {
          best_sim = s;
          best = y;
        }
      }
      if (best == x) ++hits;
    }
    std::printf("  %-18.2f %5.1f %%\n", noise,
                100.0 * static_cast<double>(hits) / static_cast<double>(dict.n_attributes()));
  }
  std::printf("\nRobust recall under heavy bit noise is the property the paper's cited\n"
              "analog in-memory accelerators exploit (§V / [37], [38]).\n");
  return 0;
}
