// Shared training recipe for the serving demos: serve_demo (in-process
// training mode) and snapshot_tool (--save) must train the *same* model for
// the CI smoke's cross-process equivalence claim to mean anything, so both
// build their PipelineConfig here.
#pragma once

#include "core/pipeline.hpp"
#include "util/config.hpp"

namespace hdczsc::examples {

/// Small, phase-1-free ZS recipe driven by the common demo flags
/// (--classes, --seed, --epochs, --image-size).
inline core::PipelineConfig demo_pipeline_config(const util::ArgMap& args) {
  const std::size_t n_classes = static_cast<std::size_t>(args.get_int("classes", 24));
  core::PipelineConfig cfg;
  cfg.n_classes = n_classes;
  cfg.images_per_class = 8;
  cfg.train_instances = 6;
  cfg.image_size = static_cast<std::size_t>(args.get_int("image-size", 32));
  cfg.split = "zs";
  cfg.zs_train_classes = n_classes * 3 / 4;
  cfg.model.image.proj_dim = 256;
  cfg.run_phase1 = false;
  cfg.phase2 = {8, 16, 1e-2f, 1e-4f, 5.0f, true, false};
  cfg.phase3 = {static_cast<std::size_t>(args.get_int("epochs", 10)), 16, 1e-2f, 1e-4f,
                5.0f, true, false};
  cfg.augment.enabled = false;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  return cfg;
}

}  // namespace hdczsc::examples
