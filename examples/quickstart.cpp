// Quickstart: build an HDC-ZSC model, train it through the three phases on
// a small synthetic bird dataset, and classify images of classes the model
// has never seen.
//
//   ./examples/quickstart [--classes=20] [--epochs=6] [--seed=1]
#include <cstdio>

#include "core/pipeline.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace hdczsc;
  util::ArgMap args(argc, argv);

  core::PipelineConfig cfg;
  cfg.n_classes = static_cast<std::size_t>(args.get_int("classes", 20));
  cfg.images_per_class = 8;
  cfg.train_instances = 6;
  cfg.image_size = 32;
  cfg.split = "zs";
  cfg.zs_train_classes = cfg.n_classes * 3 / 4;
  cfg.model.image.arch = args.get_str("arch", "resnet_micro_flat");
  cfg.model.image.proj_dim = static_cast<std::size_t>(args.get_int("d", 256));
  
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.verbose = args.get_bool("verbose", false);

  const std::size_t epochs = static_cast<std::size_t>(args.get_int("epochs", 6));
  cfg.pretrain_classes = 6;
  cfg.phase1.epochs = 2;
  cfg.phase2.epochs = epochs / 2 + 1;
  cfg.phase3.epochs = epochs;

  std::printf("HDC-ZSC quickstart\n");
  std::printf("  dataset : %zu synthetic bird classes (%zu train / %zu unseen)\n",
              cfg.n_classes, cfg.zs_train_classes, cfg.n_classes - cfg.zs_train_classes);
  std::printf("  model   : %s + FC(d=%zu), HDC attribute encoder (stationary)\n",
              cfg.model.image.arch.c_str(), cfg.model.image.proj_dim);

  auto res = core::run_pipeline(cfg);

  std::printf("\nresults on UNSEEN classes:\n");
  std::printf("  top-1 accuracy : %.1f %%\n", 100.0 * res.zsc.top1);
  std::printf("  top-5 accuracy : %.1f %%\n", 100.0 * res.zsc.top5);
  if (res.has_attribute_metrics)
    std::printf("  attribute top-1 (phase II) : %.1f %%\n", 100.0 * res.attributes.mean_top1);
  std::printf("  trainable parameters : %zu\n", res.trainable_parameters);
  std::printf("  wall time : %.1f s\n", res.train_seconds);
  const double chance = 100.0 / static_cast<double>(cfg.n_classes - cfg.zs_train_classes);
  std::printf("  (chance level would be %.1f %%)\n", chance);
  return 0;
}
