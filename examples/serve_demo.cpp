// Serving demo: train an HDC-ZSC model, freeze it into an inference
// snapshot (float prototypes + bit-packed binary prototypes), then serve a
// synthetic request storm through the dynamic-batching runtime and print
// the telemetry block.
//
//   ./serve_demo [--classes=24] [--requests=240] [--clients=4] [--batch=8]
//                [--mode=float|binary] [--expansion=8] [--workers=1]
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "serve/server.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

using namespace hdczsc;

namespace {
nn::Tensor slice_image(const nn::Tensor& images, std::size_t b) {
  const std::size_t per = images.numel() / images.size(0);
  nn::Tensor out({images.size(1), images.size(2), images.size(3)});
  const float* src = images.data() + b * per;
  std::copy(src, src + per, out.data());
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  util::ArgMap args(argc, argv);
  const std::size_t n_classes = static_cast<std::size_t>(args.get_int("classes", 24));
  const std::size_t n_requests = static_cast<std::size_t>(args.get_int("requests", 240));
  const std::size_t clients = static_cast<std::size_t>(args.get_int("clients", 4));
  const std::size_t expansion = static_cast<std::size_t>(args.get_int("expansion", 8));
  const std::string mode = args.get_str("mode", "binary");
  if (mode != "binary" && mode != "float") {
    std::fprintf(stderr, "serve_demo: unknown --mode=%s (expected float|binary)\n",
                 mode.c_str());
    return 2;
  }
  const bool binary = mode == "binary";

  // -- 1. train --------------------------------------------------------------
  core::PipelineConfig cfg;
  cfg.n_classes = n_classes;
  cfg.images_per_class = 8;
  cfg.train_instances = 6;
  cfg.image_size = 32;
  cfg.split = "zs";
  cfg.zs_train_classes = n_classes * 3 / 4;
  cfg.model.image.proj_dim = 256;
  cfg.run_phase1 = false;
  cfg.phase2 = {8, 16, 1e-2f, 1e-4f, 5.0f, true, false};
  cfg.phase3 = {10, 16, 1e-2f, 1e-4f, 5.0f, true, false};
  cfg.augment.enabled = false;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::printf("serve_demo: training on %zu classes, serving the %zu unseen ones\n",
              cfg.zs_train_classes, n_classes - cfg.zs_train_classes);
  auto tp = core::run_pipeline_trained(cfg);
  std::printf("trained: zero-shot top-1 %.1f %% on unseen classes\n\n",
              100.0 * tp.result.zsc.top1);

  // -- 2. snapshot -----------------------------------------------------------
  auto snapshot = std::make_shared<const serve::ModelSnapshot>(
      tp.model, tp.test_class_attributes, expansion);
  const auto& store = snapshot->prototypes();
  util::Table mem("frozen prototype store (" + std::to_string(store.n_classes()) +
                  " classes, d=" + std::to_string(store.dim()) + ")");
  mem.set_header({"form", "bytes"});
  mem.add_row({"float rows (fp32)", std::to_string(store.float_bytes())});
  mem.add_row({"packed binary rows (" + std::to_string(store.code_bits()) + " bits)",
               std::to_string(store.binary_bytes())});
  mem.print();

  // -- 3. serve a request storm ---------------------------------------------
  auto engine = std::make_shared<const serve::InferenceEngine>(
      snapshot, binary ? serve::ScoringMode::kBinaryHamming
                       : serve::ScoringMode::kFloatCosine);
  serve::ServerConfig scfg;
  scfg.n_workers = static_cast<std::size_t>(args.get_int("workers", 1));
  scfg.batch.max_batch = static_cast<std::size_t>(args.get_int("batch", 8));
  scfg.batch.max_delay_ms = args.get_double("delay-ms", 2.0);
  scfg.batch.max_queue_depth = 4096;
  serve::ServerRuntime server(engine, scfg);
  server.start();

  std::printf("\nserving %zu requests from %zu client threads (%s scoring, "
              "max_batch=%zu)...\n",
              n_requests, clients, scoring_mode_name(engine->mode()).c_str(),
              scfg.batch.max_batch);

  const nn::Tensor& images = tp.test_set.images;
  const auto& labels = tp.test_set.labels;
  std::vector<std::size_t> hits(clients, 0), sent(clients, 0);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      const std::size_t per_client = n_requests / clients;
      std::vector<std::pair<std::size_t, std::future<serve::Prediction>>> inflight;
      for (std::size_t r = 0; r < per_client; ++r) {
        const std::size_t idx = (t * per_client + r) % images.size(0);
        inflight.emplace_back(idx, server.classify_async(slice_image(images, idx)));
        if (inflight.size() >= 16) {
          for (auto& [i, f] : inflight) hits[t] += f.get().label == labels[i];
          sent[t] += inflight.size();
          inflight.clear();
        }
      }
      for (auto& [i, f] : inflight) hits[t] += f.get().label == labels[i];
      sent[t] += inflight.size();
    });
  }
  for (auto& th : threads) th.join();
  server.stop();

  std::size_t total_hits = 0, total_sent = 0;
  for (std::size_t t = 0; t < clients; ++t) {
    total_hits += hits[t];
    total_sent += sent[t];
  }

  std::printf("\n");
  server.stats().to_table("serving telemetry").print();
  std::printf("\nserved top-1 accuracy: %.1f %% (%zu/%zu requests)\n",
              100.0 * static_cast<double>(total_hits) / static_cast<double>(total_sent),
              total_hits, total_sent);
  return 0;
}
