// Serving demo: freeze an HDC-ZSC model into an inference snapshot (float +
// bit-packed binary prototypes), host it in the multi-model registry, and
// storm it with synthetic requests, printing per-model telemetry.
//
// Two ways to obtain the model:
//   * train in-process (default):
//       ./serve_demo [--classes=24] [--save-snapshot=model.hdcsnap]
//   * cold-start from a .hdcsnap artifact written by snapshot_tool or
//     run_pipeline_trained — no training, the production path:
//       ./serve_demo --snapshot=model.hdcsnap
//
// Multi-model serving: --models=N registers the snapshot under N keys
// (m0..mN-1), each with its own batcher/workers/stats, and round-robins the
// request storm across them.
//
// Sharded retrieval: --shards=S splits the prototype store into S row-range
// shards (0 = the snapshot's preferred layout) and prints per-shard scan
// telemetry after the storm; --topk=K prints the top-K (label, score) hits
// for a few sample requests via the scatter/gather scan.
//
// GZSL serving: --seen-penalty=P serves the *joint* seen+unseen label
// space with calibrated stacking — in training mode the snapshot is built
// over both domains (training classes first, partition recorded; the
// request pool mixes held-out seen-class images with unseen-class ones),
// in --snapshot mode the artifact's persisted v3 partition is used. The
// penalty is subtracted from every seen-class logit on both scoring
// paths; the storm report adds per-domain accuracy and the seen/unseen
// decision balance.
//
// Observability: --stats-interval=S prints the live registry table every S
// seconds while the storm runs (obs::PeriodicReporter); --metrics-out=PATH
// dumps every registered metric after the storm (.json → JSON, anything
// else → Prometheus text format); --profile additionally enables the
// kernel profiling hooks (gemm / Hamming-scan / shard-scan histograms).
// The final report includes the per-stage latency breakdown (queue-wait /
// collect / embed / score / reply) and the slowest traced requests.
//
// Int8 serving: --precision=int8 routes the embed stage through the
// post-training-quantized backbone. In training mode the demo calibrates
// and quantizes in-process (--calib-method=minmax|entropy); in --snapshot
// mode the artifact must be a v4 file carrying quantization records
// (snapshot_tool --quantize).
//
// Approximate retrieval: --retrieval=ivf probes --nprobe coarse IVF lists
// instead of scanning every prototype row; --retrieval=cascade adds the
// binary-prefilter → float-rerank stage with a rerank·k candidate budget
// (--rerank, 0 = unbounded). The engines adopt the snapshot's persisted
// v5 index or cluster one deterministically at load; the storm report adds
// the probe/prune telemetry line.
//
//   ./serve_demo [--requests=240] [--clients=4] [--batch=8] [--workers=1]
//                [--mode=float|binary] [--precision=float32|int8]
//                [--calib-method=minmax] [--expansion=8] [--models=1]
//                [--shards=0] [--topk=0] [--seen-penalty=0]
//                [--retrieval=exact|ivf|cascade] [--nprobe=0] [--rerank=4]
//                [--stats-interval=0] [--metrics-out=] [--profile]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "demo_pipeline_config.hpp"
#include "obs/export.hpp"
#include "serve/model_registry.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

using namespace hdczsc;

namespace {
nn::Tensor slice_image(const nn::Tensor& images, std::size_t b) {
  const std::size_t per = images.numel() / images.size(0);
  nn::Tensor out({images.size(1), images.size(2), images.size(3)});
  const float* src = images.data() + b * per;
  std::copy(src, src + per, out.data());
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  util::ArgMap args(argc, argv);
  const std::size_t n_requests = static_cast<std::size_t>(args.get_int("requests", 240));
  const std::size_t clients = static_cast<std::size_t>(args.get_int("clients", 4));
  const std::size_t expansion = static_cast<std::size_t>(args.get_int("expansion", 8));
  const std::size_t n_models =
      static_cast<std::size_t>(std::max<long>(1, args.get_int("models", 1)));
  const std::size_t n_shards = static_cast<std::size_t>(args.get_int("shards", 0));
  const std::size_t topk = static_cast<std::size_t>(args.get_int("topk", 0));
  const float seen_penalty = static_cast<float>(args.get_double("seen-penalty", 0.0));
  const bool gzsl = args.has("seen-penalty");
  const double stats_interval = args.get_double("stats-interval", 0.0);
  const std::string metrics_out = args.get_str("metrics-out", "");
  if (args.has("profile")) obs::set_profiling_enabled(true);
  const std::string mode_str = args.get_str("mode", "binary");
  if (mode_str != "binary" && mode_str != "float") {
    std::fprintf(stderr, "serve_demo: unknown --mode=%s (expected float|binary)\n",
                 mode_str.c_str());
    return 2;
  }
  const serve::ScoringMode mode = mode_str == "binary" ? serve::ScoringMode::kBinaryHamming
                                                       : serve::ScoringMode::kFloatCosine;
  serve::Precision precision = serve::Precision::kFloat32;
  try {
    precision = serve::precision_from_name(args.get_str("precision", "float32"));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "serve_demo: %s\n", e.what());
    return 2;
  }
  const nn::CalibMethod calib = args.get_str("calib-method", "minmax") == "entropy"
                                    ? nn::CalibMethod::kEntropy
                                    : nn::CalibMethod::kMinMax;
  serve::RetrievalMode retrieval = serve::RetrievalMode::kExact;
  try {
    retrieval = serve::retrieval_mode_from_name(args.get_str("retrieval", "exact"));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "serve_demo: %s\n", e.what());
    return 2;
  }

  // -- 1. obtain a snapshot: load the artifact, or train and freeze ----------
  std::shared_ptr<const serve::ModelSnapshot> snapshot;
  nn::Tensor images;                 // request pool
  std::vector<std::size_t> labels;   // ground truth (empty in --snapshot mode)
  if (args.has("snapshot")) {
    const std::string path = args.get_str("snapshot", "");
    snapshot = serve::load_snapshot_file(path);
    if (precision == serve::Precision::kInt8 && !snapshot->has_quantized()) {
      std::fprintf(stderr,
                   "serve_demo: --precision=int8 but %s carries no quantization records "
                   "(produce a v4 artifact with snapshot_tool --quantize)\n",
                   path.c_str());
      return 2;
    }
    std::printf("serve_demo: cold-started from %s (%zu classes, d=%zu, x%zu codes%s) — "
                "no retraining\n",
                path.c_str(), snapshot->n_classes(), snapshot->dim(),
                snapshot->prototypes().expansion(),
                snapshot->has_quantized() ? ", int8-capable" : "");
    if (snapshot->has_partition())
      std::printf("serve_demo: GZSL partition: %zu seen + %zu unseen classes\n",
                  snapshot->n_seen(), snapshot->n_unseen());
    // No dataset in this process: storm with a seeded synthetic request pool.
    util::Rng rng(0x9507BEULL);
    images = nn::Tensor::randn({64, 3, 32, 32}, rng);
  } else {
    core::PipelineConfig cfg = examples::demo_pipeline_config(args);
    cfg.snapshot_path = args.get_str("save-snapshot", "");
    cfg.snapshot_expansion = expansion;
    cfg.snapshot_shards = std::max<std::size_t>(1, n_shards);
    cfg.snapshot_gzsl = gzsl;

    if (gzsl)
      std::printf("serve_demo: training on %zu classes, serving the joint %zu-class "
                  "seen+unseen space (calibrated stacking, penalty %g)\n",
                  cfg.zs_train_classes, cfg.n_classes,
                  static_cast<double>(seen_penalty));
    else
      std::printf("serve_demo: training on %zu classes, serving the %zu unseen ones\n",
                  cfg.zs_train_classes, cfg.n_classes - cfg.zs_train_classes);
    auto tp = core::run_pipeline_trained(cfg);
    std::printf("trained: zero-shot top-1 %.1f %% on unseen classes\n",
                100.0 * tp.result.zsc.top1);
    if (!cfg.snapshot_path.empty())
      std::printf("wrote snapshot artifact: %s\n", cfg.snapshot_path.c_str());
    std::shared_ptr<serve::ModelSnapshot> built;
    if (gzsl) {
      // Joint label space, training classes first; the request pool mixes
      // the seen domain's held-out images with the unseen domain's, with
      // ground-truth labels in joint ids.
      built = serve::make_gzsl_snapshot(tp.model, tp.seen_class_attributes,
                                        tp.test_class_attributes, expansion,
                                        std::max<std::size_t>(1, n_shards));
      data::Batch joint = core::joint_gzsl_eval_set(tp);
      images = std::move(joint.images);
      labels = std::move(joint.labels);
    } else {
      built = std::make_shared<serve::ModelSnapshot>(
          tp.model, tp.test_class_attributes, expansion, std::max<std::size_t>(1, n_shards));
      images = tp.test_set.images;
      labels = tp.test_set.labels;
    }
    if (precision == serve::Precision::kInt8) {
      // Calibrate on the request pool itself: PTQ only needs unlabeled
      // images drawn from the serving distribution.
      const auto qi = built->quantize(images, calib)->info();
      std::printf("serve_demo: int8 backbone calibrated (%s) on %zu images "
                  "(%zu conv + %zu linear, %zu weight bytes)\n",
                  nn::calib_method_name(qi.method), images.size(0), qi.n_conv, qi.n_linear,
                  qi.weight_bytes);
    }
    snapshot = built;
  }

  const auto& store = snapshot->prototypes();
  util::Table mem("frozen prototype store (" + std::to_string(store.n_classes()) +
                  " classes, d=" + std::to_string(store.dim()) + ")");
  mem.set_header({"form", "bytes"});
  mem.add_row({"float rows (fp32)", std::to_string(store.float_bytes())});
  mem.add_row({"packed binary rows (" + std::to_string(store.code_bits()) + " bits)",
               std::to_string(store.binary_bytes())});
  mem.print();

  // -- 2. host it in the registry (N aliases = N independent model slots) ----
  serve::ServerConfig scfg;
  scfg.n_workers = static_cast<std::size_t>(args.get_int("workers", 1));
  scfg.batch.max_batch = static_cast<std::size_t>(args.get_int("batch", 8));
  scfg.batch.max_delay_ms = args.get_double("delay-ms", 2.0);
  scfg.batch.max_queue_depth = 4096;
  scfg.n_shards = n_shards;  // 0 = adopt the snapshot's preferred layout
  scfg.seen_penalty = seen_penalty;
  scfg.backbone_precision = precision;
  scfg.retrieval = retrieval;
  scfg.nprobe = static_cast<std::size_t>(args.get_int("nprobe", 0));
  scfg.rerank = static_cast<std::size_t>(args.get_int("rerank", 4));
  if (retrieval != serve::RetrievalMode::kExact)
    std::printf("serve_demo: %s retrieval (%s IVF index, nprobe=%zu%s)\n",
                serve::retrieval_mode_name(retrieval).c_str(),
                snapshot->has_ivf() ? "persisted" : "load-time",
                scfg.nprobe, retrieval == serve::RetrievalMode::kCascade
                                 ? (", rerank=" + std::to_string(scfg.rerank)).c_str()
                                 : "");
  serve::ModelRegistry registry(scfg);
  std::vector<std::string> keys;
  for (std::size_t m = 0; m < n_models; ++m) {
    keys.push_back("m" + std::to_string(m));
    registry.load(keys.back(), snapshot, mode);
  }

  // Reference decisions for the whole request pool, computed directly.
  const auto engine0 = registry.engine(keys[0]);
  const auto expected = engine0->classify_batch(images);

  // -- top-k retrieval preview (scatter/gather over the sharded store) -------
  if (topk > 0) {
    const std::size_t n_preview = std::min<std::size_t>(3, images.size(0));
    nn::Tensor preview({n_preview, images.size(1), images.size(2), images.size(3)});
    std::copy(images.data(), images.data() + preview.numel(), preview.data());
    const auto hits = engine0->topk_batch(preview, topk);
    util::Table tk("top-" + std::to_string(topk) + " retrieval (" +
                   std::to_string(engine0->n_shards()) + " shard(s), " +
                   scoring_mode_name(mode) + ")");
    tk.set_header({"request", "rank", "label", "score"});
    for (std::size_t b = 0; b < hits.size(); ++b)
      for (std::size_t r = 0; r < hits[b].size(); ++r)
        tk.add_row({std::to_string(b), std::to_string(r + 1),
                    std::to_string(hits[b][r].label), util::Table::num(hits[b][r].score, 4)});
    tk.print();
  }

  std::printf("\nserving %zu requests from %zu client threads across %zu model(s) "
              "(%s scoring, max_batch=%zu)...\n",
              n_requests, clients, n_models, scoring_mode_name(mode).c_str(),
              scfg.batch.max_batch);

  // -- 3. request storm, round-robined across model keys ---------------------
  // Live telemetry while the storm runs: every --stats-interval seconds the
  // reporter thread prints the per-model registry table.
  std::unique_ptr<obs::PeriodicReporter> reporter;
  if (stats_interval > 0.0)
    reporter = std::make_unique<obs::PeriodicReporter>(
        stats_interval, [&registry] { registry.to_table("serving telemetry (live)").print(); });

  // The storm speaks the unified submit(InferRequest) surface (the same
  // contract the network front-end serves): failures come back as named
  // statuses on the results, and a status != kOk counts as a mismatch.
  const std::size_t n_images = images.size(0);
  std::vector<std::size_t> hits(clients, 0), matches(clients, 0), sent(clients, 0);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      const std::size_t per_client = n_requests / clients;
      std::vector<std::pair<std::size_t, std::future<serve::InferResult>>> inflight;
      auto settle = [&] {
        for (auto& [i, f] : inflight) {
          const serve::InferResult r = f.get();
          if (!r.ok() || r.topk.empty()) continue;
          matches[t] += r.top().label == expected[i].label;
          if (!labels.empty()) hits[t] += r.top().label == labels[i];
        }
        sent[t] += inflight.size();
        inflight.clear();
      };
      for (std::size_t r = 0; r < per_client; ++r) {
        const std::size_t req = t * per_client + r;
        const std::size_t idx = req % n_images;
        serve::InferRequest ir;
        ir.model_key = keys[req % n_models];
        ir.input = slice_image(images, idx);
        ir.request_id = req + 1;
        inflight.emplace_back(idx, registry.submit(std::move(ir)));
        if (inflight.size() >= 16) settle();
      }
      settle();
    });
  }
  for (auto& th : threads) th.join();
  if (reporter) reporter->stop();

  std::size_t total_hits = 0, total_matches = 0, total_sent = 0;
  for (std::size_t t = 0; t < clients; ++t) {
    total_hits += hits[t];
    total_matches += matches[t];
    total_sent += sent[t];
  }

  std::printf("\n");
  registry.to_table("serving telemetry (per model)").print();

  // Per-stage latency breakdown: where a request's time actually went
  // (queue-wait / collect / embed / score / reply), plus the slowest traced
  // requests for postmortems.
  {
    util::Table stages("per-stage latency (" + keys[0] + ")");
    stages.set_header({"stage", "count", "mean ms", "p50 ms", "p99 ms", "p999 ms", "max ms"});
    for (const auto& s : registry.stage_stats(keys[0]))
      stages.add_row({s.stage, std::to_string(s.count), util::Table::num(s.mean_ms, 3),
                      util::Table::num(s.p50_ms, 3), util::Table::num(s.p99_ms, 3),
                      util::Table::num(s.p999_ms, 3), util::Table::num(s.max_ms, 3)});
    stages.print();
    const auto slow = registry.slow_traces(keys[0]);
    const std::size_t n_slow = std::min<std::size_t>(4, slow.size());
    if (n_slow > 0) std::printf("slowest traced requests (%s):\n", keys[0].c_str());
    for (std::size_t i = 0; i < n_slow; ++i) {
      const auto& sp = slow[i];
      std::printf("  trace #%llu total=%.3fms queue-wait=%.3f collect=%.3f embed=%.3f "
                  "score=%.3f reply=%.3f\n",
                  static_cast<unsigned long long>(sp.id), sp.total_ms,
                  sp.stage(obs::Stage::kQueueWait), sp.stage(obs::Stage::kCollect),
                  sp.stage(obs::Stage::kEmbed), sp.stage(obs::Stage::kScore),
                  sp.stage(obs::Stage::kReply));
    }
  }

  if (engine0->n_shards() > 1) {
    const auto shards = registry.shard_stats(keys[0]);
    util::Table st("prototype scan telemetry (" + keys[0] + ", " +
                   std::to_string(shards.size()) + " shards)");
    st.set_header({"shard", "rows", "row range", "scans", "rows swept", "rows pruned"});
    for (std::size_t s = 0; s < shards.size(); ++s)
      st.add_row({std::to_string(s), std::to_string(shards[s].rows),
                  "[" + std::to_string(shards[s].begin) + ", " +
                      std::to_string(shards[s].begin + shards[s].rows) + ")",
                  std::to_string(shards[s].scans), std::to_string(shards[s].rows_swept),
                  std::to_string(shards[s].rows_pruned)});
    st.print();
  }

  // Approximate-tier telemetry: how much of the label space the probes
  // actually touched, and what the Hamming early exit saved.
  if (const auto ann = registry.ann_stats(keys[0])) {
    std::printf("ivf probes (%s): %llu queries, %llu lists opened, %llu rows swept "
                "(%llu pruned, %llu reranked)\n",
                keys[0].c_str(), static_cast<unsigned long long>(ann->queries),
                static_cast<unsigned long long>(ann->centroids_probed),
                static_cast<unsigned long long>(ann->rows_swept),
                static_cast<unsigned long long>(ann->rows_pruned),
                static_cast<unsigned long long>(ann->rows_reranked));
  }

  // Machine-readable dump of every registered metric (model series, stage
  // histograms, kernel profiles): .json → JSON, anything else → Prometheus.
  if (!metrics_out.empty()) {
    obs::dump_metrics_file(metrics_out);
    std::printf("wrote metrics dump: %s\n", metrics_out.c_str());
  }
  // Aggregate the GZSL decision counters across model slots before the
  // registry tears the runtimes down.
  std::uint64_t dec_seen = 0, dec_unseen = 0;
  for (const auto& key : keys) {
    const auto s = registry.stats(key);
    dec_seen += s.seen_hits;
    dec_unseen += s.unseen_hits;
  }
  registry.stop_all();

  std::printf("\nserved == direct inference: %zu/%zu requests (%s)\n", total_matches,
              total_sent, total_matches == total_sent ? "PASS" : "FAIL");
  if (!labels.empty())
    std::printf("served top-1 accuracy: %.1f %% (%zu/%zu requests)\n",
                100.0 * static_cast<double>(total_hits) / static_cast<double>(total_sent),
                total_hits, total_sent);

  // -- GZSL report: where the decisions landed, and per-domain accuracy ------
  // (partitioned snapshots only: without a partition every class is seen,
  // the penalty is a uniform shift, and there are no domains to report.)
  if (snapshot->has_partition()) {
    const double dec_total = static_cast<double>(dec_seen + dec_unseen);
    const double fs = dec_total > 0 ? static_cast<double>(dec_seen) / dec_total : 0.0;
    const double fu = dec_total > 0 ? static_cast<double>(dec_unseen) / dec_total : 0.0;
    std::printf("gzsl decisions: penalty=%g seen=%llu unseen=%llu H(dom)=%.3f "
                "(%zu seen + %zu unseen classes)\n",
                static_cast<double>(seen_penalty),
                static_cast<unsigned long long>(dec_seen),
                static_cast<unsigned long long>(dec_unseen),
                fs > 0.0 && fu > 0.0 ? 2.0 * fs * fu / (fs + fu) : 0.0,
                snapshot->n_seen(), snapshot->n_unseen());
    if (!labels.empty()) {
      // Ground truth available (training mode): the actual GZSL metric —
      // per-domain accuracy of the *served* decisions and their harmonic
      // mean (predictions were asserted identical to direct inference
      // above, so scoring the expected decisions scores the served ones).
      std::size_t seen_n = 0, seen_ok = 0, unseen_n = 0, unseen_ok = 0;
      for (std::size_t i = 0; i < labels.size(); ++i) {
        const bool seen_domain = snapshot->is_seen(labels[i]);
        (seen_domain ? seen_n : unseen_n) += 1;
        (seen_domain ? seen_ok : unseen_ok) += expected[i].label == labels[i];
      }
      const double sa = seen_n ? static_cast<double>(seen_ok) / seen_n : 0.0;
      const double ua = unseen_n ? static_cast<double>(unseen_ok) / unseen_n : 0.0;
      std::printf("gzsl accuracy: seen %.1f %% (%zu/%zu), unseen %.1f %% (%zu/%zu), "
                  "harmonic mean %.1f %%\n",
                  100.0 * sa, seen_ok, seen_n, 100.0 * ua, unseen_ok, unseen_n,
                  sa + ua > 0.0 ? 100.0 * 2.0 * sa * ua / (sa + ua) : 0.0);
    }
  }
  return total_matches == total_sent ? 0 : 1;
}
