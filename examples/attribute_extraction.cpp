// Zero-shot attribute extraction (phase II of Fig. 2): train the image
// encoder against the *stationary* HDC attribute dictionary and report
// per-group attribute accuracy and WMAP — the Table I task.
//
//   ./examples/attribute_extraction [--classes=16] [--epochs=6]
#include <cstdio>

#include "core/trainer.hpp"
#include "data/splits.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hdczsc;
  util::ArgMap args(argc, argv);

  const std::size_t n_classes = static_cast<std::size_t>(args.get_int("classes", 16));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  auto space = data::AttributeSpace::cub();
  data::CubSyntheticConfig dcfg;
  dcfg.n_classes = n_classes;
  dcfg.images_per_class = 10;
  dcfg.image_size = 32;
  dcfg.seed = seed;
  data::CubSynthetic dataset(space, dcfg);

  // noZS protocol, as in Table I: same classes, image-level split.
  auto split = data::make_nozs_split(n_classes, n_classes, seed);
  data::AugmentConfig aug;  // rotation / crop / flip on the train side
  data::DataLoader train(dataset, split.train_classes, 0, 7, 16, true, aug, seed);
  data::AugmentConfig no_aug;
  no_aug.enabled = false;
  data::DataLoader test(dataset, split.test_classes, 7, 10, 16, false, no_aug, seed);

  core::ZscModelConfig mcfg;
  mcfg.image.arch = args.get_str("arch", "resnet_micro_flat");
  mcfg.image.proj_dim = static_cast<std::size_t>(args.get_int("d", 256));
  
  util::Rng rng(seed);
  auto model = core::make_zsc_model(mcfg, space, rng);

  std::printf("phase II attribute extraction: %zu classes, d=%zu, dictionary %zux%zu "
              "(stationary)\n",
              n_classes, model->dim(), space.n_attributes(), model->dim());

  core::TrainConfig tcfg;
  tcfg.epochs = static_cast<std::size_t>(args.get_int("epochs", 6));
  tcfg.batch_size = 16;
  tcfg.lr = 1e-2f;
  tcfg.verbose = args.get_bool("verbose", false);

  core::Trainer trainer(seed);
  const double loss = trainer.phase2_attribute_extraction(*model, train, tcfg);
  std::printf("final weighted-BCE loss: %.4f\n\n", loss);

  auto res = trainer.evaluate_attributes(*model, test);
  util::Table table("per-group attribute metrics (held-out images)");
  table.set_header({"attribute group", "top-1 acc (%)", "WMAP (%)"});
  for (std::size_t g = 0; g < space.n_groups(); ++g)
    table.add_row({space.group(g).name, util::Table::num(100.0 * res.per_group_top1[g], 1),
                   util::Table::num(100.0 * res.per_group_wmap[g], 1)});
  table.add_row({"average", util::Table::num(100.0 * res.mean_top1, 2),
                 util::Table::num(100.0 * res.mean_wmap, 2)});
  table.print();
  return 0;
}
