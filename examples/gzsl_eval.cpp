// Generalized zero-shot learning (GZSL) evaluation — the stricter protocol
// of the ZSL literature the paper builds on (Xian et al., TPAMI 2018): at
// inference the model must pick among seen AND unseen classes jointly.
// Reports seen accuracy S, unseen accuracy U, and their harmonic mean H.
//
//   ./examples/gzsl_eval [--classes=32] [--seed=1]
#include <cstdio>

#include "core/trainer.hpp"
#include "data/splits.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hdczsc;
  util::ArgMap args(argc, argv);
  const std::size_t n_classes = static_cast<std::size_t>(args.get_int("classes", 32));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  auto space = data::AttributeSpace::cub();
  data::CubSyntheticConfig dcfg;
  dcfg.n_classes = n_classes;
  dcfg.images_per_class = 8;
  dcfg.image_size = 32;
  dcfg.seed = seed;
  data::CubSynthetic dataset(space, dcfg);
  auto split = data::make_zs_split(n_classes, n_classes * 3 / 4, seed);

  data::AugmentConfig no_aug;
  no_aug.enabled = false;
  data::DataLoader train(dataset, split.train_classes, 0, 6, 16, true, no_aug, seed);
  // GZSL test sets: held-out images of seen classes + all unseen images.
  data::DataLoader seen_test(dataset, split.train_classes, 6, 8, 16, false, no_aug, seed);
  data::DataLoader unseen_test(dataset, split.test_classes, 0, 8, 16, false, no_aug, seed);

  core::ZscModelConfig mcfg;  // defaults: micro_flat, d=256, HDC encoder
  util::Rng rng(seed);
  auto model = core::make_zsc_model(mcfg, space, rng);

  core::Trainer trainer(seed);
  core::TrainConfig p2{8, 16, 1e-2f, 1e-4f, 5.0f, true, false};
  core::TrainConfig p3{10, 16, 1e-2f, 1e-4f, 5.0f, true, false};
  std::printf("training HDC-ZSC on %zu seen classes (%zu unseen held out)...\n",
              split.train_classes.size(), split.test_classes.size());
  trainer.phase2_attribute_extraction(*model, train, p2);
  trainer.phase3_zsc(*model, train, p3);

  const auto zsl = trainer.evaluate_zsc(*model, unseen_test);

  util::Table table("GZSL with calibrated stacking (seen-logit penalty γ)");
  table.set_header({"protocol", "S (%)", "U (%)", "H (%)"});
  table.add_row({"ZSL (unseen-only space)", "-", util::Table::num(100.0 * zsl.top1, 1), "-"});
  double best_h = 0.0;
  float best_gamma = 0.0f;
  for (float gamma : {0.0f, 0.5f, 1.0f, 2.0f, 4.0f}) {
    const auto g = trainer.evaluate_gzsl(*model, seen_test, unseen_test, gamma);
    table.add_row({"GZSL, γ=" + util::Table::num(gamma, 1),
                   util::Table::num(100.0 * g.seen_acc, 1),
                   util::Table::num(100.0 * g.unseen_acc, 1),
                   util::Table::num(100.0 * g.harmonic_mean, 1)});
    if (g.harmonic_mean > best_h) {
      best_h = g.harmonic_mean;
      best_gamma = gamma;
    }
  }
  table.print();

  std::printf("\nPlain GZSL (γ=0) shows the classic seen-class bias of non-generative\n"
              "models (U << ZSL top-1); calibrated stacking (best γ=%.1f here, H=%.1f%%)\n"
              "recovers a balanced operating point without retraining.\n",
              best_gamma, 100.0 * best_h);
  return 0;
}
