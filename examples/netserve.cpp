// netserve: host HDC-ZSC model snapshots behind the HDCN binary wire
// protocol (docs/protocol.md) — the network face of the serving stack.
//
// Server mode (default): obtain a model, register it in a ModelRegistry,
// start the epoll front-end and serve until SIGINT/SIGTERM (or for
// --run-seconds). Two ways to obtain the model, mirroring serve_demo:
//
//   * cold-start from a frozen artifact (production path, no training):
//       ./netserve --snapshot=model.hdcsnap [--port=7411] [--mode=binary]
//   * train a small model in-process (demo path; the shared demo pipeline
//     flags --classes/--image-size/--seed/... apply):
//       ./netserve [--port=7411] [--save-snapshot=model.hdcsnap]
//
//   The bound port is printed as "netserve: listening on PORT" (scripts
//   grep this line; --port=0 picks an ephemeral port).
//
// Client mode: connect to a running server, probe liveness and stream a
// few requests through the pipelined client, printing statuses:
//       ./netserve --connect=HOST:PORT [--requests=8] [--dim=256]
//                  [--key=m0] [--k=1] [--send-images] [--image-size=32]
//                  [--append-classes=N --alpha=A [--append-seen=K]]
//   --append-classes sends one admin-plane kAppendClasses frame first:
//   N random attribute rows of width --alpha (the model's attribute
//   dimension) grow the served label space live — the response carries
//   the newly published store version, and the inference stream that
//   follows can rank the appended labels.
//   Requests carry random embeddings of width --dim (the model's projection
//   dimension); a width mismatch comes back as a named kBadShape status —
//   useful for checking a deployment end to end without a dataset.
//   --send-images sends random [3, S, S] images instead, which drives the
//   server's backbone (the way to smoke-test an int8 deployment: an
//   embedding request skips the quantized path entirely).
//
//   ./netserve [--port=0] [--io-threads=1] [--workers=1] [--batch=8]
//              [--queue-depth=4096] [--mode=float|binary] [--models=1]
//              [--precision=float32|int8] [--calib-method=minmax|entropy]
//              [--retrieval=exact|ivf|cascade] [--nprobe=0] [--rerank=4]
//              [--run-seconds=0]
//
//   --precision=int8 serves the backbone through the quantized int8 path:
//   with --snapshot the artifact must be a v4 file carrying quantization
//   records (snapshot_tool --quantize produces one); the in-process demo
//   path calibrates and quantizes the freshly trained model itself.
//
//   --retrieval=ivf|cascade serves top-k through the approximate IVF tier
//   (probing --nprobe coarse lists; cascade float-reranks rerank·k binary
//   survivors). A v5 artifact's persisted index is adopted; otherwise the
//   engines cluster one deterministically at load (snapshot_tool
//   --build-ivf moves that cost offline).
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "demo_pipeline_config.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/model_registry.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"

using namespace hdczsc;

namespace {

std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

int run_client(const util::ArgMap& args, const std::string& connect) {
  const auto colon = connect.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "netserve: --connect wants HOST:PORT, got '%s'\n", connect.c_str());
    return 2;
  }
  const std::string host = connect.substr(0, colon);
  const int port = std::atoi(connect.c_str() + colon + 1);
  const std::size_t n_requests = static_cast<std::size_t>(args.get_int("requests", 8));
  const std::size_t dim = static_cast<std::size_t>(args.get_int("dim", 256));
  const std::size_t k = static_cast<std::size_t>(args.get_int("k", 1));
  const std::string key = args.get_str("key", "m0");
  const bool send_images = args.has("send-images");
  const std::size_t image_size = static_cast<std::size_t>(args.get_int("image-size", 32));

  net::NetClient client(host, static_cast<std::uint16_t>(port));
  if (!client.ping()) {
    std::fprintf(stderr, "netserve: ping to %s failed\n", connect.c_str());
    return 1;
  }
  std::printf("netserve: connected to %s (ping ok)\n", connect.c_str());

  // Admin plane: grow the served model before streaming inference at it.
  const std::size_t n_append = static_cast<std::size_t>(args.get_int("append-classes", 0));
  if (n_append > 0) {
    const std::size_t alpha = static_cast<std::size_t>(args.get_int("alpha", 0));
    if (alpha == 0) {
      std::fprintf(stderr, "netserve: --append-classes needs --alpha=A (the model's "
                           "attribute dimension; a mismatch comes back as a named status)\n");
      return 2;
    }
    const std::size_t n_seen = static_cast<std::size_t>(args.get_int("append-seen", 0));
    util::Rng arng(0xAD0BEULL);
    net::AppendRequest areq;
    areq.model_key = key;
    areq.attributes = nn::Tensor::randn({n_append, alpha}, arng);
    if (n_seen > 0) {
      areq.seen_flags.assign(n_append, 0);
      for (std::size_t i = 0; i < std::min(n_seen, n_append); ++i) areq.seen_flags[i] = 1;
    }
    const net::AppendResult ar = client.append_classes(std::move(areq));
    if (ar.status == serve::InferStatus::kOk) {
      std::printf("netserve: appended %zu classes -> store version %llu (%llu classes)\n",
                  n_append, static_cast<unsigned long long>(ar.version),
                  static_cast<unsigned long long>(ar.n_classes));
    } else {
      std::printf("netserve: append failed: %s: %s\n", serve::infer_status_name(ar.status),
                  ar.message.c_str());
      return 1;
    }
  }

  // Pipelined streaming: every request is in flight before the first
  // response is awaited; the reader thread matches them by request_id.
  util::Rng rng(0xC11E47ULL);
  std::vector<std::future<serve::InferResult>> futures;
  futures.reserve(n_requests);
  for (std::size_t i = 0; i < n_requests; ++i) {
    serve::InferRequest req;
    req.model_key = key;
    // Images drive the server-side backbone (float or int8); embeddings
    // skip it and exercise only the scoring path.
    req.input = send_images ? nn::Tensor::randn({3, image_size, image_size}, rng)
                            : nn::Tensor::randn({dim}, rng);
    req.k = k;
    futures.push_back(client.submit(std::move(req)));
  }
  std::size_t ok = 0;
  for (auto& fut : futures) {
    const serve::InferResult r = fut.get();
    if (r.ok()) {
      ++ok;
      std::printf("  request %llu: top-1 label %zu (score %.4f)\n",
                  static_cast<unsigned long long>(r.request_id),
                  r.top().label, static_cast<double>(r.top().score));
    } else {
      std::printf("  request %llu: %s: %s\n",
                  static_cast<unsigned long long>(r.request_id),
                  serve::infer_status_name(r.status), r.message.c_str());
    }
  }
  std::printf("netserve: %zu/%zu requests ok\n", ok, n_requests);
  return ok == n_requests ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgMap args(argc, argv);
  if (args.has("connect")) return run_client(args, args.get_str("connect", ""));

  const std::string mode_str = args.get_str("mode", "binary");
  if (mode_str != "binary" && mode_str != "float") {
    std::fprintf(stderr, "netserve: unknown --mode=%s (expected float|binary)\n",
                 mode_str.c_str());
    return 2;
  }
  const serve::ScoringMode mode = mode_str == "binary" ? serve::ScoringMode::kBinaryHamming
                                                       : serve::ScoringMode::kFloatCosine;
  const std::size_t n_models =
      static_cast<std::size_t>(std::max<long>(1, args.get_int("models", 1)));
  serve::Precision precision = serve::Precision::kFloat32;
  try {
    precision = serve::precision_from_name(args.get_str("precision", "float32"));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "netserve: %s\n", e.what());
    return 2;
  }
  const nn::CalibMethod calib = args.get_str("calib-method", "minmax") == "entropy"
                                    ? nn::CalibMethod::kEntropy
                                    : nn::CalibMethod::kMinMax;
  serve::RetrievalMode retrieval = serve::RetrievalMode::kExact;
  try {
    retrieval = serve::retrieval_mode_from_name(args.get_str("retrieval", "exact"));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "netserve: %s\n", e.what());
    return 2;
  }

  // -- 1. obtain a snapshot: load the artifact, or train and freeze ----------
  std::shared_ptr<const serve::ModelSnapshot> snapshot;
  if (args.has("snapshot")) {
    const std::string path = args.get_str("snapshot", "");
    auto loaded = serve::load_snapshot_file(path);
    if (precision == serve::Precision::kInt8 && !loaded->has_quantized()) {
      std::fprintf(stderr,
                   "netserve: --precision=int8 but %s carries no quantization records "
                   "(produce a v4 artifact with snapshot_tool --quantize)\n",
                   path.c_str());
      return 2;
    }
    snapshot = loaded;
    std::printf("netserve: cold-started from %s (%zu classes, d=%zu%s)\n", path.c_str(),
                snapshot->n_classes(), snapshot->dim(),
                snapshot->has_quantized() ? ", int8-capable" : "");
  } else {
    core::PipelineConfig cfg = examples::demo_pipeline_config(args);
    cfg.snapshot_path = args.get_str("save-snapshot", "");
    cfg.snapshot_expansion = static_cast<std::size_t>(args.get_int("expansion", 8));
    std::printf("netserve: no --snapshot, training a %zu-class demo model in-process...\n",
                cfg.n_classes);
    auto tp = core::run_pipeline_trained(cfg);
    std::printf("netserve: trained (zero-shot top-1 %.1f %% on unseen classes)\n",
                100.0 * tp.result.zsc.top1);
    if (!cfg.snapshot_path.empty())
      std::printf("netserve: wrote snapshot artifact: %s\n", cfg.snapshot_path.c_str());
    auto built = std::make_shared<serve::ModelSnapshot>(
        tp.model, tp.test_class_attributes, cfg.snapshot_expansion, 1);
    if (precision == serve::Precision::kInt8) {
      // PTQ against the held-out eval images (unlabeled data is all
      // calibration needs) before the snapshot is frozen behind const.
      const auto artifact = built->quantize(tp.test_set.images, calib);
      const auto qi = artifact->info();
      std::printf("netserve: int8 backbone calibrated (%s) on %zu images "
                  "(%zu conv + %zu linear, %zu weight bytes)\n",
                  nn::calib_method_name(qi.method), tp.test_set.images.size(0), qi.n_conv,
                  qi.n_linear, qi.weight_bytes);
    }
    snapshot = built;
  }

  // -- 2. registry + network front-end ---------------------------------------
  serve::ServerConfig scfg;
  scfg.n_workers = static_cast<std::size_t>(args.get_int("workers", 1));
  scfg.batch.max_batch = static_cast<std::size_t>(args.get_int("batch", 8));
  scfg.batch.max_delay_ms = args.get_double("delay-ms", 2.0);
  scfg.batch.max_queue_depth = static_cast<std::size_t>(args.get_int("queue-depth", 4096));
  scfg.backbone_precision = precision;
  scfg.retrieval = retrieval;
  scfg.nprobe = static_cast<std::size_t>(args.get_int("nprobe", 0));
  scfg.rerank = static_cast<std::size_t>(args.get_int("rerank", 4));
  if (retrieval != serve::RetrievalMode::kExact)
    std::printf("netserve: %s retrieval (%s IVF index, nprobe=%zu, rerank=%zu)\n",
                serve::retrieval_mode_name(retrieval).c_str(),
                snapshot->has_ivf() ? "persisted" : "load-time", scfg.nprobe, scfg.rerank);
  serve::ModelRegistry registry(scfg);
  std::vector<std::string> keys;
  for (std::size_t m = 0; m < n_models; ++m) {
    keys.push_back("m" + std::to_string(m));
    registry.load(keys.back(), snapshot, mode);
  }

  net::NetServerConfig ncfg;
  ncfg.port = static_cast<std::uint16_t>(args.get_int("port", 0));
  ncfg.n_io_threads = static_cast<std::size_t>(args.get_int("io-threads", 1));
  net::NetServer server(registry, ncfg);
  server.start();
  std::printf("netserve: serving %zu model(s) [%s] with %s scoring, %s backbone (d=%zu)\n",
              n_models, keys.front().c_str(), scoring_mode_name(mode).c_str(),
              serve::precision_name(precision).c_str(), snapshot->dim());
  std::printf("netserve: listening on %u\n", static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  // -- 3. serve until a signal (or --run-seconds elapses) ---------------------
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  const double run_seconds = args.get_double("run-seconds", 0.0);
  const auto started = std::chrono::steady_clock::now();
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (run_seconds > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count() >=
            run_seconds)
      break;
  }

  server.stop();
  registry.to_table("netserve telemetry").print();
  if (const auto ann = registry.ann_stats(keys.front()))
    std::printf("netserve: ivf probes: %llu queries, %llu lists opened, %llu rows swept "
                "(%llu pruned, %llu reranked)\n",
                static_cast<unsigned long long>(ann->queries),
                static_cast<unsigned long long>(ann->centroids_probed),
                static_cast<unsigned long long>(ann->rows_swept),
                static_cast<unsigned long long>(ann->rows_pruned),
                static_cast<unsigned long long>(ann->rows_reranked));
  registry.stop_all();
  std::printf("netserve: shut down cleanly\n");
  return 0;
}
