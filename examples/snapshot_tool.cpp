// Save / load / inspect .hdcsnap snapshot artifacts.
//
//   ./snapshot_tool --save=model.hdcsnap [--classes=24] [--seed=1]
//                   [--expansion=8] [--epochs=10] [--shards=1] [--gzsl]
//       train a pipeline, write the artifact, verify the round trip
//       in-process, and print the float-path probe checksum. --gzsl
//       freezes the *joint* seen+unseen label space with the v3
//       partition record instead of the unseen-only space.
//   ./snapshot_tool --load=model.hdcsnap
//       load the artifact in *this* process and print the same probe
//       checksum — equal output across processes proves the persistence
//       path is bit-identical end-to-end (model rebuild + BN buffers +
//       frozen prototype rows).
//   ./snapshot_tool --inspect=model.hdcsnap
//       print the header / size table without rebuilding the model.
//   ./snapshot_tool --quantize=model.hdcsnap --out=model.int8.hdcsnap
//                   [--calib-method=minmax|entropy] [--calib-images=64]
//       load a float artifact, post-training-quantize its embed path
//       against a deterministic synthetic calibration batch, and write a
//       v4 artifact carrying the calibration table + int8 weights — the
//       input a server needs to cold-start with --precision=int8. Prints
//       the int8-vs-float probe agreement so drift is visible up front.
//   ./snapshot_tool --build-ivf=model.hdcsnap --out=model.ivf.hdcsnap
//                   [--centroids=0]
//       load an artifact, cluster its prototype store into an IVF coarse
//       index (0 centroids = ~sqrt(C) auto), and write a v5 artifact
//       carrying the centroid + assignment records — servers configured
//       for --retrieval=ivf|cascade then skip the load-time clustering.
//       Building is deterministic, so the persisted index always matches
//       what a server would have built; persisting just moves the k-means
//       cost from every cold start to this one-time step.
//   ./snapshot_tool --append=model.hdcsnap --out=new.hdcdelta
//                   [--classes=N] [--seen=K] [--seed=S]
//       grow the artifact by N synthetic classes (first K marked seen) and
//       write the .hdcdelta append record — the file a running server
//       applies live via ModelRegistry::load_file without a restart.
//   ./snapshot_tool --compact=model.hdcsnap --deltas=D1[,D2...] --out=full.hdcsnap
//       apply a delta chain offline and write the equivalent full v6
//       artifact (bitwise the chain's end state, version counter advanced).
#include <algorithm>
#include <cstdio>

#include "core/pipeline.hpp"
#include "demo_pipeline_config.hpp"
#include "serve/engine.hpp"
#include "serve/snapshot_io.hpp"
#include "tensor/ops.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

using namespace hdczsc;

namespace {

/// Deterministic probe batch shared by --save and --load (fixed seed).
nn::Tensor probe_images(std::size_t n, std::size_t image_size) {
  util::Rng rng(0x9507BEULL);
  return nn::Tensor::randn({n, 3, image_size, image_size}, rng);
}

/// FNV-1a over the raw float bytes of a tensor — a cross-process
/// bit-identity fingerprint.
std::uint64_t fingerprint(const nn::Tensor& t) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto* bytes = reinterpret_cast<const unsigned char*>(t.data());
  for (std::size_t i = 0; i < t.numel() * sizeof(float); ++i) {
    h ^= bytes[i];
    h *= 1099511628211ULL;
  }
  return h;
}

void print_info(const std::string& path) {
  const serve::SnapshotInfo info = serve::inspect_snapshot_file(path);
  util::Table t("snapshot " + path);
  t.set_header({"field", "value"});
  t.add_row({"format version", std::to_string(info.version)});
  t.add_row({"image encoder", info.arch + (info.use_projection
                                               ? " -> d=" + std::to_string(info.proj_dim)
                                               : " (no projection)")});
  t.add_row({"attribute encoder", info.attribute_encoder +
                                      (info.mlp_hidden
                                           ? " (hidden " + std::to_string(info.mlp_hidden) + ")"
                                           : "")});
  t.add_row({"attributes (alpha)", std::to_string(info.n_attributes)});
  t.add_row({"served classes", std::to_string(info.n_classes)});
  t.add_row({"temperature", util::Table::num(info.scale, 4)});
  t.add_row({"parameters", std::to_string(info.param_elements) + " elements in " +
                               std::to_string(info.param_records) + " records"});
  t.add_row({"binary expansion", std::to_string(info.expansion) + " (" +
                                     std::to_string(info.code_bits) + " bits)"});
  t.add_row({"float store bytes", std::to_string(info.float_bytes)});
  t.add_row({"binary store bytes", std::to_string(info.binary_bytes)});
  t.add_row({"preferred shards", std::to_string(info.preferred_shards) +
                                     (info.version < 2 ? " (v1: flat store)" : "")});
  t.add_row({"gzsl partition",
             info.has_partition
                 ? std::to_string(info.n_seen) + " seen + " +
                       std::to_string(info.n_classes - info.n_seen) + " unseen"
                 : (info.version < 3 ? "none (pre-v3: all seen)" : "none (all seen)")});
  t.add_row({"int8 quantization",
             info.has_quant
                 ? info.quant_method + " calibrated: " + std::to_string(info.quant_conv) +
                       " conv + " + std::to_string(info.quant_linear) + " linear, " +
                       std::to_string(info.quant_weight_bytes) + " weight bytes"
                 : (info.version < 4 ? "none (pre-v4: float only)" : "none (float only)")});
  t.add_row({"ivf coarse index",
             info.has_ivf
                 ? std::to_string(info.n_centroids) + " centroids (persisted assignments)"
                 : (info.version < 5 ? "none (pre-v5: built at load)" : "none (built at load)")});
  if (info.has_partition) {
    t.add_row({"gzsl penalty", info.version < 6
                                   ? "none persisted (pre-v6)"
                                   : util::Table::num(info.calibrated_penalty, 4) +
                                         " (calibrated, " + std::to_string(info.n_seen) +
                                         " seen / " +
                                         std::to_string(info.n_classes - info.n_seen) +
                                         " unseen)"});
  }
  if (info.version >= 6) {
    t.add_row({"store version", std::to_string(info.store_version)});
    char hex[24];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(info.content_checksum));
    t.add_row({"content checksum", hex});
  }
  if (info.has_ivf && !info.ivf_list_sizes.empty()) {
    // Coarse-list balance at a glance: min / median / max plus a coarse
    // occupancy histogram (how many lists fall in each size band).
    std::vector<std::size_t> sizes = info.ivf_list_sizes;
    std::sort(sizes.begin(), sizes.end());
    const std::size_t lo = sizes.front(), hi = sizes.back();
    const std::size_t med = sizes[sizes.size() / 2];
    t.add_row({"ivf list sizes", "min " + std::to_string(lo) + ", median " +
                                     std::to_string(med) + ", max " + std::to_string(hi)});
    const std::size_t n_bands = std::min<std::size_t>(5, hi - lo + 1);
    const std::size_t band = (hi - lo) / n_bands + 1;
    for (std::size_t b = 0; b < n_bands; ++b) {
      const std::size_t b_lo = lo + b * band;
      const std::size_t b_hi = std::min(hi, b_lo + band - 1);
      if (b_lo > hi) break;
      const std::size_t count = static_cast<std::size_t>(
          std::count_if(sizes.begin(), sizes.end(),
                        [&](std::size_t s) { return s >= b_lo && s <= b_hi; }));
      t.add_row({"  lists of " + std::to_string(b_lo) + ".." + std::to_string(b_hi),
                 std::to_string(count) + " " + std::string(count, '#')});
    }
  }
  t.print();
}

void print_checksums(const serve::ModelSnapshot& snap, std::size_t n_probe,
                     std::size_t image_size) {
  const nn::Tensor probe = probe_images(n_probe, image_size);
  const nn::Tensor emb = snap.embed(probe);
  std::printf("probe checksum (float): %016llx\n",
              static_cast<unsigned long long>(
                  fingerprint(snap.prototypes().score_float(emb))));
  std::printf("probe checksum (binary): %016llx\n",
              static_cast<unsigned long long>(
                  fingerprint(snap.prototypes().score_binary(emb))));
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgMap args(argc, argv);
  const std::size_t n_probe = static_cast<std::size_t>(args.get_int("probe", 8));
  const std::size_t image_size = static_cast<std::size_t>(args.get_int("image-size", 32));

  if (args.has("inspect")) {
    print_info(args.get_str("inspect", ""));
    return 0;
  }

  if (args.has("quantize")) {
    const std::string in = args.get_str("quantize", "");
    const std::string out = args.get_str("out", "");
    if (out.empty()) {
      std::fprintf(stderr, "snapshot_tool: --quantize needs --out=PATH for the v4 artifact\n");
      return 2;
    }
    const nn::CalibMethod method = args.get_str("calib-method", "minmax") == "entropy"
                                       ? nn::CalibMethod::kEntropy
                                       : nn::CalibMethod::kMinMax;
    const std::size_t n_calib = static_cast<std::size_t>(args.get_int("calib-images", 64));

    auto snap = serve::load_snapshot_file(in);
    // Deterministic synthetic calibration batch (seed differs from the
    // probe batch so calibration never sees the agreement-check inputs).
    util::Rng rng(0xCA11B0ULL);
    const nn::Tensor calib_images =
        nn::Tensor::randn({n_calib, 3, image_size, image_size}, rng);
    const auto qi = snap->quantize(calib_images, method)->info();
    serve::save_snapshot_file(out, *snap);
    std::printf("quantized %s -> %s: %s calibrated, %zu conv + %zu linear, %zu weight "
                "bytes\n",
                in.c_str(), out.c_str(), nn::calib_method_name(qi.method), qi.n_conv,
                qi.n_linear, qi.weight_bytes);

    // Drift report on the held-out probe batch: top-1 agreement between the
    // float and int8 score paths, plus the worst embedding deviation.
    const nn::Tensor probe = probe_images(n_probe, image_size);
    const nn::Tensor ef = snap->embed(probe);
    const nn::Tensor eq = snap->embed_int8(probe);
    const nn::Tensor sf = snap->prototypes().score_float(ef);
    const nn::Tensor sq = snap->prototypes().score_float(eq);
    const std::size_t n_classes = snap->n_classes();
    std::size_t agree = 0;
    for (std::size_t b = 0; b < n_probe; ++b) {
      const float* rf = sf.data() + b * n_classes;
      const float* rq = sq.data() + b * n_classes;
      const std::size_t af = std::max_element(rf, rf + n_classes) - rf;
      const std::size_t aq = std::max_element(rq, rq + n_classes) - rq;
      agree += af == aq;
    }
    std::printf("int8 vs float: top-1 agreement %zu/%zu on the probe batch, "
                "embedding max |diff| = %g\n",
                agree, n_probe, static_cast<double>(tensor::max_abs_diff(ef, eq)));
    print_info(out);
    return 0;
  }

  if (args.has("build-ivf")) {
    const std::string in = args.get_str("build-ivf", "");
    const std::string out = args.get_str("out", "");
    if (out.empty()) {
      std::fprintf(stderr, "snapshot_tool: --build-ivf needs --out=PATH for the v5 artifact\n");
      return 2;
    }
    const std::size_t n_centroids = static_cast<std::size_t>(args.get_int("centroids", 0));
    auto snap = serve::load_snapshot_file(in);
    const auto ivf = snap->build_ivf(n_centroids);
    serve::save_snapshot_file(out, *snap);
    std::printf("clustered %s -> %s: %zu classes into %zu coarse lists "
                "(default nprobe %zu)\n",
                in.c_str(), out.c_str(), snap->n_classes(), ivf->n_centroids(),
                ivf->default_nprobe());
    print_info(out);
    return 0;
  }

  if (args.has("append")) {
    const std::string in = args.get_str("append", "");
    const std::string out = args.get_str("out", "");
    if (out.empty()) {
      std::fprintf(stderr,
                   "snapshot_tool: --append needs --out=PATH for the .hdcdelta artifact\n");
      return 2;
    }
    const std::size_t n_new = static_cast<std::size_t>(args.get_int("classes", 4));
    const std::size_t n_seen_new = static_cast<std::size_t>(args.get_int("seen", 0));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

    auto snap = serve::load_snapshot_file(in);
    const std::size_t alpha = snap->class_attributes().size(1);
    // The engine's version 0 *is* the base artifact's state; appending in
    // process and diffing the two pinned versions yields a delta that any
    // server holding the same artifact can apply bit-identically.
    const serve::InferenceEngine engine(snap);
    const auto base = engine.pin();
    util::Rng rng(seed ^ 0xADDC1A55ULL);
    const nn::Tensor attrs = nn::Tensor::randn({n_new, alpha}, rng);
    std::vector<std::uint8_t> flags;
    if (n_seen_new > 0) {
      flags.assign(n_new, 0);
      for (std::size_t i = 0; i < std::min(n_seen_new, n_new); ++i) flags[i] = 1;
    }
    const auto next = engine.append_classes(attrs, flags);
    const serve::SnapshotDelta delta = serve::make_delta(*base, *next);
    serve::save_delta_file(out, delta);
    std::printf("appended %zu classes (%zu seen) to %s -> %s: base version %llu "
                "(%llu classes, checksum %016llx) -> version %llu (checksum %016llx)\n",
                n_new, std::min(n_seen_new, n_new), in.c_str(), out.c_str(),
                static_cast<unsigned long long>(delta.base_version),
                static_cast<unsigned long long>(delta.base_rows),
                static_cast<unsigned long long>(delta.base_checksum),
                static_cast<unsigned long long>(next->version),
                static_cast<unsigned long long>(delta.new_checksum));
    return 0;
  }

  if (args.has("compact")) {
    const std::string in = args.get_str("compact", "");
    const std::string out = args.get_str("out", "");
    const std::string chain_arg = args.get_str("deltas", "");
    if (out.empty() || chain_arg.empty()) {
      std::fprintf(stderr, "snapshot_tool: --compact needs --deltas=D1[,D2...] and "
                           "--out=PATH for the compacted v6 artifact\n");
      return 2;
    }
    auto base = serve::load_snapshot_file(in);
    std::vector<serve::SnapshotDelta> chain;
    std::size_t start = 0;
    while (start <= chain_arg.size()) {
      const std::size_t comma = chain_arg.find(',', start);
      const std::string piece =
          chain_arg.substr(start, comma == std::string::npos ? std::string::npos
                                                             : comma - start);
      if (!piece.empty()) chain.push_back(serve::load_delta_file(piece));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    auto full = serve::compact_snapshot(*base, chain);
    serve::save_snapshot_file(out, *full);
    std::printf("compacted %s + %zu delta(s) -> %s: %zu classes at store version %llu\n",
                in.c_str(), chain.size(), out.c_str(), full->n_classes(),
                static_cast<unsigned long long>(full->store_version()));
    print_info(out);
    return 0;
  }

  if (args.has("load")) {
    const std::string path = args.get_str("load", "");
    print_info(path);
    auto snap = serve::load_snapshot_file(path);
    print_checksums(*snap, n_probe, image_size);
    std::printf("loaded: %zu classes, d=%zu, expansion x%zu\n", snap->n_classes(),
                snap->dim(), snap->prototypes().expansion());
    return 0;
  }

  if (args.has("save")) {
    const std::string path = args.get_str("save", "");
    core::PipelineConfig cfg = examples::demo_pipeline_config(args);
    cfg.snapshot_path = path;
    cfg.snapshot_expansion = static_cast<std::size_t>(args.get_int("expansion", 8));
    cfg.snapshot_shards = static_cast<std::size_t>(args.get_int("shards", 1));
    cfg.snapshot_gzsl = args.has("gzsl");

    std::printf("training %zu classes (artifact -> %s%s)...\n", cfg.n_classes, path.c_str(),
                cfg.snapshot_gzsl ? ", joint seen+unseen space" : "");
    auto tp = core::run_pipeline_trained(cfg);
    std::printf("trained: zero-shot top-1 %.1f %% on the %zu held-out classes\n",
                100.0 * tp.result.zsc.top1, tp.test_class_attributes.size(0));

    // In-process round-trip check: the artifact must reproduce the
    // in-memory snapshot bit-for-bit on the float path.
    serve::ModelSnapshot in_memory =
        cfg.snapshot_gzsl
            ? *serve::make_gzsl_snapshot(tp.model, tp.seen_class_attributes,
                                         tp.test_class_attributes, cfg.snapshot_expansion)
            : serve::ModelSnapshot(tp.model, tp.test_class_attributes,
                                   cfg.snapshot_expansion);
    auto reloaded = serve::load_snapshot_file(path);
    const nn::Tensor probe = probe_images(n_probe, image_size);
    const float diff = tensor::max_abs_diff(
        in_memory.prototypes().score_float(in_memory.embed(probe)),
        reloaded->prototypes().score_float(reloaded->embed(probe)));
    const bool packed_equal =
        in_memory.prototypes().packed_copy() == reloaded->prototypes().packed_copy();
    std::printf("round-trip: float max |diff| = %g, packed binary rows %s -> %s\n",
                static_cast<double>(diff), packed_equal ? "identical" : "DIVERGED",
                diff == 0.0f && packed_equal ? "OK" : "FAIL");

    print_info(path);
    print_checksums(in_memory, n_probe, image_size);
    return diff == 0.0f && packed_equal ? 0 : 1;
  }

  std::fprintf(stderr,
               "usage: snapshot_tool --save=PATH [--classes=N --seed=S --expansion=K "
               "--epochs=E --shards=S --gzsl] | --load=PATH | --inspect=PATH | "
               "--quantize=PATH --out=PATH [--calib-method=minmax|entropy "
               "--calib-images=N] | --build-ivf=PATH --out=PATH [--centroids=N] | "
               "--append=PATH --out=DELTA [--classes=N --seen=K --seed=S] | "
               "--compact=PATH --deltas=D1[,D2...] --out=PATH\n");
  return 2;
}
