#include "nn/init.hpp"

#include <cmath>

namespace hdczsc::nn {

void kaiming_normal(tensor::Tensor& w, std::size_t fan_in, util::Rng& rng) {
  const float std = std::sqrt(2.0f / static_cast<float>(fan_in));
  for (std::size_t i = 0; i < w.numel(); ++i)
    w[i] = static_cast<float>(rng.normal(0.0, std));
}

void xavier_uniform(tensor::Tensor& w, std::size_t fan_in, std::size_t fan_out, util::Rng& rng) {
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (std::size_t i = 0; i < w.numel(); ++i)
    w[i] = static_cast<float>(rng.uniform(-a, a));
}

}  // namespace hdczsc::nn
