#include "nn/activation.hpp"

#include <cmath>

namespace hdczsc::nn {

Tensor ReLU::forward(const Tensor& x, bool train) {
  if (train) cached_input_ = x;
  Tensor out = x.clone();
  float* o = out.data();
  for (std::size_t i = 0; i < out.numel(); ++i)
    if (o[i] < 0.0f) o[i] = 0.0f;
  return out;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  if (cached_input_.empty()) throw std::logic_error("ReLU::backward before forward(train)");
  Tensor dx = grad_out.clone();
  float* d = dx.data();
  const float* x = cached_input_.data();
  for (std::size_t i = 0; i < dx.numel(); ++i)
    if (x[i] <= 0.0f) d[i] = 0.0f;
  return dx;
}

Tensor LeakyReLU::forward(const Tensor& x, bool train) {
  if (train) cached_input_ = x;
  Tensor out = x.clone();
  float* o = out.data();
  for (std::size_t i = 0; i < out.numel(); ++i)
    if (o[i] < 0.0f) o[i] *= slope_;
  return out;
}

Tensor LeakyReLU::backward(const Tensor& grad_out) {
  if (cached_input_.empty()) throw std::logic_error("LeakyReLU::backward before forward(train)");
  Tensor dx = grad_out.clone();
  float* d = dx.data();
  const float* x = cached_input_.data();
  for (std::size_t i = 0; i < dx.numel(); ++i)
    if (x[i] <= 0.0f) d[i] *= slope_;
  return dx;
}

Tensor Tanh::forward(const Tensor& x, bool train) {
  Tensor out = x.clone();
  float* o = out.data();
  for (std::size_t i = 0; i < out.numel(); ++i) o[i] = std::tanh(o[i]);
  if (train) cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  if (cached_output_.empty()) throw std::logic_error("Tanh::backward before forward(train)");
  Tensor dx = grad_out.clone();
  float* d = dx.data();
  const float* y = cached_output_.data();
  for (std::size_t i = 0; i < dx.numel(); ++i) d[i] *= 1.0f - y[i] * y[i];
  return dx;
}

Tensor Sigmoid::forward(const Tensor& x, bool train) {
  Tensor out = x.clone();
  float* o = out.data();
  for (std::size_t i = 0; i < out.numel(); ++i) o[i] = 1.0f / (1.0f + std::exp(-o[i]));
  if (train) cached_output_ = out;
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_out) {
  if (cached_output_.empty()) throw std::logic_error("Sigmoid::backward before forward(train)");
  Tensor dx = grad_out.clone();
  float* d = dx.data();
  const float* y = cached_output_.data();
  for (std::size_t i = 0; i < dx.numel(); ++i) d[i] *= y[i] * (1.0f - y[i]);
  return dx;
}

Tensor Dropout::forward(const Tensor& x, bool train) {
  if (!train || p_ <= 0.0f) {
    mask_ = Tensor();
    return x;
  }
  mask_ = Tensor(x.shape());
  Tensor out = x.clone();
  const float keep = 1.0f - p_;
  const float scale = 1.0f / keep;
  float* m = mask_.data();
  float* o = out.data();
  for (std::size_t i = 0; i < out.numel(); ++i) {
    m[i] = rng_->bernoulli(keep) ? scale : 0.0f;
    o[i] *= m[i];
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (mask_.empty()) return grad_out;  // forward ran in eval mode
  Tensor dx = grad_out.clone();
  float* d = dx.data();
  const float* m = mask_.data();
  for (std::size_t i = 0; i < dx.numel(); ++i) d[i] *= m[i];
  return dx;
}

}  // namespace hdczsc::nn
