#include "nn/pooling.hpp"

#include <limits>

namespace hdczsc::nn {

Tensor MaxPool2d::forward(const Tensor& x, bool train) {
  if (x.dim() != 4)
    throw std::invalid_argument("MaxPool2d::forward: expected NCHW, got " +
                                tensor::shape_str(x.shape()));
  const std::size_t batch = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
  const std::size_t oh = (h - k_) / stride_ + 1;
  const std::size_t ow = (w - k_) / stride_ + 1;
  Tensor out({batch, c, oh, ow});
  if (train) {
    cached_in_shape_ = x.shape();
    argmax_.assign(out.numel(), 0);
  }
  const float* X = x.data();
  float* O = out.data();
  std::size_t oidx = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = X + (b * c + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++oidx) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ki = 0; ki < k_; ++ki) {
            for (std::size_t kj = 0; kj < k_; ++kj) {
              const std::size_t iy = oy * stride_ + ki;
              const std::size_t ix = ox * stride_ + kj;
              const std::size_t idx = iy * w + ix;
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = (b * c + ch) * h * w + idx;
              }
            }
          }
          O[oidx] = best;
          if (train) argmax_[oidx] = best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  if (cached_in_shape_.empty())
    throw std::logic_error("MaxPool2d::backward before forward(train)");
  Tensor dx(cached_in_shape_);
  float* D = dx.data();
  const float* G = grad_out.data();
  for (std::size_t i = 0; i < grad_out.numel(); ++i) D[argmax_[i]] += G[i];
  return dx;
}

Tensor GlobalAvgPool::forward(const Tensor& x, bool train) {
  if (x.dim() != 4)
    throw std::invalid_argument("GlobalAvgPool::forward: expected NCHW, got " +
                                tensor::shape_str(x.shape()));
  const std::size_t batch = x.size(0), c = x.size(1), spatial = x.size(2) * x.size(3);
  if (train) cached_in_shape_ = x.shape();
  Tensor out({batch, c});
  const float* X = x.data();
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* p = X + (b * c + ch) * spatial;
      double s = 0.0;
      for (std::size_t i = 0; i < spatial; ++i) s += p[i];
      out[b * c + ch] = static_cast<float>(s / static_cast<double>(spatial));
    }
  }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  if (cached_in_shape_.empty())
    throw std::logic_error("GlobalAvgPool::backward before forward(train)");
  const std::size_t batch = cached_in_shape_[0], c = cached_in_shape_[1],
                    spatial = cached_in_shape_[2] * cached_in_shape_[3];
  Tensor dx(cached_in_shape_);
  float* D = dx.data();
  const float* G = grad_out.data();
  const float inv = 1.0f / static_cast<float>(spatial);
  for (std::size_t b = 0; b < batch; ++b)
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float g = G[b * c + ch] * inv;
      float* p = D + (b * c + ch) * spatial;
      for (std::size_t i = 0; i < spatial; ++i) p[i] = g;
    }
  return dx;
}

Tensor Flatten::forward(const Tensor& x, bool train) {
  if (x.dim() < 2)
    throw std::invalid_argument("Flatten::forward: expected batch dim, got " +
                                tensor::shape_str(x.shape()));
  if (train) cached_in_shape_ = x.shape();
  return x.reshape({x.size(0), x.numel() / x.size(0)});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  if (cached_in_shape_.empty()) throw std::logic_error("Flatten::backward before forward(train)");
  return grad_out.reshape(cached_in_shape_);
}

}  // namespace hdczsc::nn
