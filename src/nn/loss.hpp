// Loss functions used across the three training phases (Fig. 2 of the
// paper): cross-entropy for phase-I pre-training and phase-III ZSC, and
// weighted binary cross-entropy with logits for phase-II attribute
// extraction (compensating the strong inactive-attribute class imbalance).
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace hdczsc::nn {

using tensor::Tensor;

/// Value + gradient with respect to the logits.
struct LossResult {
  float value = 0.0f;
  Tensor grad_logits;
};

/// Mean cross-entropy over the batch. logits [B, C]; targets one class id
/// per row.
LossResult cross_entropy(const Tensor& logits, const std::vector<std::size_t>& targets);

/// Mean weighted BCE-with-logits. logits/targets [B, A] with targets in
/// {0, 1} (soft targets allowed). `pos_weight` ([A], optional empty) scales
/// the positive term per attribute, the standard remedy for the CUB
/// attribute imbalance described in §III-A.
LossResult weighted_bce_with_logits(const Tensor& logits, const Tensor& targets,
                                    const Tensor& pos_weight = {});

/// Compute per-attribute positive weights from a target matrix: neg/pos
/// frequency ratio, clamped to [min_w, max_w].
Tensor bce_pos_weights_from_targets(const Tensor& targets, float min_w = 0.5f,
                                    float max_w = 20.0f);

}  // namespace hdczsc::nn
