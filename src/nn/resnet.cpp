#include "nn/resnet.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace hdczsc::nn {

// ---------------------------------------------------------------------------
// BasicBlock
// ---------------------------------------------------------------------------

BasicBlock::BasicBlock(std::size_t in_c, std::size_t out_c, std::size_t stride, util::Rng& rng)
    : conv1_(in_c, out_c, 3, stride, 1, rng),
      bn1_(out_c),
      conv2_(out_c, out_c, 3, 1, 1, rng),
      bn2_(out_c) {
  if (stride != 1 || in_c != out_c) {
    down_conv_ = std::make_unique<Conv2d>(in_c, out_c, 1, stride, 0, rng);
    down_bn_ = std::make_unique<BatchNorm2d>(out_c);
  }
}

Tensor BasicBlock::forward(const Tensor& x, bool train) {
  Tensor identity = x;
  if (down_conv_) {
    identity = down_conv_->forward(x, train);
    identity = down_bn_->forward(identity, train);
  }
  if (train) cached_identity_ = identity;

  Tensor h = conv1_.forward(x, train);
  h = bn1_.forward(h, train);
  h = relu1_.forward(h, train);
  h = conv2_.forward(h, train);
  h = bn2_.forward(h, train);
  h.add_scaled(identity, 1.0f);
  return relu_out_.forward(h, train);
}

Tensor BasicBlock::backward(const Tensor& grad_out) {
  Tensor g = relu_out_.backward(grad_out);
  // g splits into the residual branch and the identity branch.
  Tensor g_main = bn2_.backward(g);
  g_main = conv2_.backward(g_main);
  g_main = relu1_.backward(g_main);
  g_main = bn1_.backward(g_main);
  g_main = conv1_.backward(g_main);

  Tensor g_skip = g;
  if (down_conv_) {
    g_skip = down_bn_->backward(g_skip);
    g_skip = down_conv_->backward(g_skip);
  }
  g_main.add_scaled(g_skip, 1.0f);
  return g_main;
}

std::vector<Parameter*> BasicBlock::parameters() {
  std::vector<Parameter*> out;
  for (Layer* l : std::initializer_list<Layer*>{&conv1_, &bn1_, &conv2_, &bn2_}) {
    auto ps = l->parameters();
    out.insert(out.end(), ps.begin(), ps.end());
  }
  if (down_conv_) {
    auto ps = down_conv_->parameters();
    out.insert(out.end(), ps.begin(), ps.end());
    ps = down_bn_->parameters();
    out.insert(out.end(), ps.begin(), ps.end());
  }
  return out;
}

std::vector<BufferRef> BasicBlock::buffers() {
  std::vector<BufferRef> out;
  for (Layer* l : std::initializer_list<Layer*>{&bn1_, &bn2_}) {
    auto bs = l->buffers();
    out.insert(out.end(), bs.begin(), bs.end());
  }
  if (down_bn_) {
    auto bs = down_bn_->buffers();
    out.insert(out.end(), bs.begin(), bs.end());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Bottleneck
// ---------------------------------------------------------------------------

Bottleneck::Bottleneck(std::size_t in_c, std::size_t mid_c, std::size_t stride, util::Rng& rng)
    : conv1_(in_c, mid_c, 1, 1, 0, rng),
      bn1_(mid_c),
      conv2_(mid_c, mid_c, 3, stride, 1, rng),
      bn2_(mid_c),
      conv3_(mid_c, mid_c * kExpansion, 1, 1, 0, rng),
      bn3_(mid_c * kExpansion) {
  const std::size_t out_c = mid_c * kExpansion;
  if (stride != 1 || in_c != out_c) {
    down_conv_ = std::make_unique<Conv2d>(in_c, out_c, 1, stride, 0, rng);
    down_bn_ = std::make_unique<BatchNorm2d>(out_c);
  }
}

Tensor Bottleneck::forward(const Tensor& x, bool train) {
  Tensor identity = x;
  if (down_conv_) {
    identity = down_conv_->forward(x, train);
    identity = down_bn_->forward(identity, train);
  }
  if (train) cached_identity_ = identity;

  Tensor h = conv1_.forward(x, train);
  h = bn1_.forward(h, train);
  h = relu1_.forward(h, train);
  h = conv2_.forward(h, train);
  h = bn2_.forward(h, train);
  h = relu2_.forward(h, train);
  h = conv3_.forward(h, train);
  h = bn3_.forward(h, train);
  h.add_scaled(identity, 1.0f);
  return relu_out_.forward(h, train);
}

Tensor Bottleneck::backward(const Tensor& grad_out) {
  Tensor g = relu_out_.backward(grad_out);
  Tensor g_main = bn3_.backward(g);
  g_main = conv3_.backward(g_main);
  g_main = relu2_.backward(g_main);
  g_main = bn2_.backward(g_main);
  g_main = conv2_.backward(g_main);
  g_main = relu1_.backward(g_main);
  g_main = bn1_.backward(g_main);
  g_main = conv1_.backward(g_main);

  Tensor g_skip = g;
  if (down_conv_) {
    g_skip = down_bn_->backward(g_skip);
    g_skip = down_conv_->backward(g_skip);
  }
  g_main.add_scaled(g_skip, 1.0f);
  return g_main;
}

std::vector<Parameter*> Bottleneck::parameters() {
  std::vector<Parameter*> out;
  for (Layer* l :
       std::initializer_list<Layer*>{&conv1_, &bn1_, &conv2_, &bn2_, &conv3_, &bn3_}) {
    auto ps = l->parameters();
    out.insert(out.end(), ps.begin(), ps.end());
  }
  if (down_conv_) {
    auto ps = down_conv_->parameters();
    out.insert(out.end(), ps.begin(), ps.end());
    ps = down_bn_->parameters();
    out.insert(out.end(), ps.begin(), ps.end());
  }
  return out;
}

std::vector<BufferRef> Bottleneck::buffers() {
  std::vector<BufferRef> out;
  for (Layer* l : std::initializer_list<Layer*>{&bn1_, &bn2_, &bn3_}) {
    auto bs = l->buffers();
    out.insert(out.end(), bs.begin(), bs.end());
  }
  if (down_bn_) {
    auto bs = down_bn_->buffers();
    out.insert(out.end(), bs.begin(), bs.end());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------------

namespace {

/// ImageNet-style ResNet with Bottleneck blocks.
Backbone build_bottleneck_resnet(const std::string& arch, const std::size_t (&depths)[4],
                                 util::Rng& rng, std::size_t in_channels) {
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2d>(in_channels, 64, 7, 2, 3, rng);
  net->emplace<BatchNorm2d>(64);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(3, 2);

  const std::size_t widths[4] = {64, 128, 256, 512};
  std::size_t in_c = 64;
  for (int stage = 0; stage < 4; ++stage) {
    const std::size_t mid = widths[stage];
    const std::size_t stride = stage == 0 ? 1 : 2;
    for (std::size_t blk = 0; blk < depths[stage]; ++blk) {
      net->emplace<Bottleneck>(in_c, mid, blk == 0 ? stride : 1, rng);
      in_c = mid * Bottleneck::kExpansion;
    }
  }
  net->emplace<GlobalAvgPool>();
  return Backbone{std::move(net), in_c, arch};
}

/// ImageNet-style ResNet with BasicBlocks.
Backbone build_basic_resnet(const std::string& arch, const std::size_t (&depths)[4],
                            util::Rng& rng, std::size_t in_channels) {
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2d>(in_channels, 64, 7, 2, 3, rng);
  net->emplace<BatchNorm2d>(64);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(3, 2);

  const std::size_t widths[4] = {64, 128, 256, 512};
  std::size_t in_c = 64;
  for (int stage = 0; stage < 4; ++stage) {
    const std::size_t out_c = widths[stage];
    const std::size_t stride = stage == 0 ? 1 : 2;
    for (std::size_t blk = 0; blk < depths[stage]; ++blk) {
      net->emplace<BasicBlock>(in_c, out_c, blk == 0 ? stride : 1, rng);
      in_c = out_c;
    }
  }
  net->emplace<GlobalAvgPool>();
  return Backbone{std::move(net), in_c, arch};
}

}  // namespace

Backbone resnet18(util::Rng& rng, std::size_t in_channels) {
  return build_basic_resnet("resnet18", {2, 2, 2, 2}, rng, in_channels);
}

Backbone resnet34(util::Rng& rng, std::size_t in_channels) {
  return build_basic_resnet("resnet34", {3, 4, 6, 3}, rng, in_channels);
}

Backbone resnet50(util::Rng& rng, std::size_t in_channels) {
  return build_bottleneck_resnet("resnet50", {3, 4, 6, 3}, rng, in_channels);
}

Backbone resnet101(util::Rng& rng, std::size_t in_channels) {
  return build_bottleneck_resnet("resnet101", {3, 4, 23, 3}, rng, in_channels);
}

Backbone resnet_mini(util::Rng& rng, std::size_t in_channels, std::size_t width) {
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2d>(in_channels, width, 3, 1, 1, rng);
  net->emplace<BatchNorm2d>(width);
  net->emplace<ReLU>();
  std::size_t in_c = width;
  for (int stage = 0; stage < 3; ++stage) {
    const std::size_t out_c = width << stage;
    const std::size_t stride = stage == 0 ? 1 : 2;
    for (std::size_t blk = 0; blk < 2; ++blk) {
      net->emplace<BasicBlock>(in_c, out_c, blk == 0 ? stride : 1, rng);
      in_c = out_c;
    }
  }
  net->emplace<GlobalAvgPool>();
  return Backbone{std::move(net), in_c, "resnet_mini"};
}

Backbone resnet_micro(util::Rng& rng, std::size_t in_channels) {
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2d>(in_channels, 8, 3, 1, 1, rng);
  net->emplace<BatchNorm2d>(8);
  net->emplace<ReLU>();
  std::size_t in_c = 8;
  for (int stage = 0; stage < 3; ++stage) {
    const std::size_t out_c = std::size_t{8} << stage;
    const std::size_t stride = stage == 0 ? 1 : 2;
    net->emplace<BasicBlock>(in_c, out_c, stride, rng);
    in_c = out_c;
  }
  net->emplace<GlobalAvgPool>();
  return Backbone{std::move(net), in_c, "resnet_micro"};
}

namespace {

/// Shared trunk of the flat variants: stem + 3 stages (1 block each),
/// widths {w, 2w, 4w}, strides {1, 2, 2} -> [4w, S/4, S/4], then Flatten.
Backbone build_flat(const std::string& arch, std::size_t width, std::size_t in_channels,
                    std::size_t input_size, util::Rng& rng) {
  if (input_size % 4 != 0)
    throw std::invalid_argument("flat backbone: input_size must be a multiple of 4");
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2d>(in_channels, width, 3, 1, 1, rng);
  net->emplace<BatchNorm2d>(width);
  net->emplace<ReLU>();
  std::size_t in_c = width;
  for (int stage = 0; stage < 3; ++stage) {
    const std::size_t out_c = width << stage;
    const std::size_t stride = stage == 0 ? 1 : 2;
    net->emplace<BasicBlock>(in_c, out_c, stride, rng);
    in_c = out_c;
  }
  net->emplace<Flatten>();
  const std::size_t grid = input_size / 4;
  return Backbone{std::move(net), in_c * grid * grid, arch};
}

}  // namespace

Backbone resnet_micro_flat(util::Rng& rng, std::size_t in_channels, std::size_t input_size) {
  return build_flat("resnet_micro_flat", 8, in_channels, input_size, rng);
}

Backbone resnet_mini_flat(util::Rng& rng, std::size_t in_channels, std::size_t input_size) {
  return build_flat("resnet_mini_flat", 16, in_channels, input_size, rng);
}

Backbone make_backbone(const std::string& arch, util::Rng& rng, std::size_t in_channels) {
  if (arch == "resnet18") return resnet18(rng, in_channels);
  if (arch == "resnet34") return resnet34(rng, in_channels);
  if (arch == "resnet50") return resnet50(rng, in_channels);
  if (arch == "resnet101") return resnet101(rng, in_channels);
  if (arch == "resnet_mini" || arch == "mini") return resnet_mini(rng, in_channels);
  if (arch == "resnet_mini_wide") return resnet_mini(rng, in_channels, 24);
  if (arch == "resnet_micro" || arch == "micro") return resnet_micro(rng, in_channels);
  if (arch == "resnet_micro_flat" || arch == "micro_flat")
    return resnet_micro_flat(rng, in_channels);
  if (arch == "resnet_mini_flat" || arch == "mini_flat")
    return resnet_mini_flat(rng, in_channels);
  throw std::invalid_argument("make_backbone: unknown architecture '" + arch + "'");
}

}  // namespace hdczsc::nn
