// Batch normalization over NCHW feature maps (per-channel statistics) and
// over 2-D feature matrices (per-feature statistics, "BatchNorm1d").
#pragma once

#include "nn/layer.hpp"

namespace hdczsc::nn {

class BatchNorm2d : public Layer {
 public:
  explicit BatchNorm2d(std::size_t channels, float momentum = 0.1f, float eps = 1e-5f);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&gamma_, &beta_}; }
  std::vector<BufferRef> buffers() override {
    return {{"bn.running_mean", &running_mean_}, {"bn.running_var", &running_var_}};
  }
  std::string name() const override { return "BatchNorm2d"; }

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }
  /// Affine parameters + epsilon — the eval-mode BN is the exact per-channel
  /// affine y = γ(x-μ)/√(σ²+ε) + β, which the quantizer folds into the
  /// preceding conv's weights and bias (nn/quant.hpp).
  const Tensor& gamma() const { return gamma_.value; }
  const Tensor& beta() const { return beta_.value; }
  float eps() const { return eps_; }

 private:
  std::size_t channels_;
  float momentum_, eps_;
  Parameter gamma_, beta_;
  Tensor running_mean_, running_var_;

  // Caches for backward.
  Tensor cached_xhat_;     // normalized input
  Tensor cached_inv_std_;  // [C]
  Shape cached_shape_;
};

}  // namespace hdczsc::nn
