#include "nn/loss.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace hdczsc::nn {

LossResult cross_entropy(const Tensor& logits, const std::vector<std::size_t>& targets) {
  if (logits.dim() != 2)
    throw std::invalid_argument("cross_entropy: logits must be [B, C]");
  const std::size_t batch = logits.size(0), classes = logits.size(1);
  if (targets.size() != batch)
    throw std::invalid_argument("cross_entropy: target count mismatch");

  Tensor log_probs = tensor::log_softmax_rows(logits);
  LossResult res;
  res.grad_logits = tensor::softmax_rows(logits);
  double loss = 0.0;
  float* G = res.grad_logits.data();
  const float* LP = log_probs.data();
  const float inv_b = 1.0f / static_cast<float>(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const std::size_t t = targets[i];
    if (t >= classes) throw std::out_of_range("cross_entropy: target class out of range");
    loss -= LP[i * classes + t];
    G[i * classes + t] -= 1.0f;
  }
  res.grad_logits.scale(inv_b);
  res.value = static_cast<float>(loss / static_cast<double>(batch));
  return res;
}

LossResult weighted_bce_with_logits(const Tensor& logits, const Tensor& targets,
                                    const Tensor& pos_weight) {
  if (logits.shape() != targets.shape())
    throw std::invalid_argument("weighted_bce_with_logits: shape mismatch " +
                                tensor::shape_str(logits.shape()) + " vs " +
                                tensor::shape_str(targets.shape()));
  if (logits.dim() != 2)
    throw std::invalid_argument("weighted_bce_with_logits: logits must be [B, A]");
  const std::size_t batch = logits.size(0), attrs = logits.size(1);
  const bool weighted = !pos_weight.empty();
  if (weighted && (pos_weight.dim() != 1 || pos_weight.size(0) != attrs))
    throw std::invalid_argument("weighted_bce_with_logits: pos_weight must be [A]");

  LossResult res;
  res.grad_logits = Tensor(logits.shape());
  const float* X = logits.data();
  const float* T = targets.data();
  const float* W = weighted ? pos_weight.data() : nullptr;
  float* G = res.grad_logits.data();

  double loss = 0.0;
  const double inv_n = 1.0 / static_cast<double>(batch * attrs);
  for (std::size_t i = 0; i < batch; ++i) {
    for (std::size_t j = 0; j < attrs; ++j) {
      const std::size_t idx = i * attrs + j;
      const double x = X[idx];
      const double t = T[idx];
      const double w = W ? W[j] : 1.0;
      // Numerically stable BCE-with-logits:
      //   l = w*t*softplus(-x) + (1-t)*softplus(x)
      const double sp_neg = x > 0 ? std::log1p(std::exp(-x)) : -x + std::log1p(std::exp(x));
      const double sp_pos = x > 0 ? x + std::log1p(std::exp(-x)) : std::log1p(std::exp(x));
      loss += w * t * sp_neg + (1.0 - t) * sp_pos;
      const double sig = 1.0 / (1.0 + std::exp(-x));
      // d/dx: w*t*(sig-1) + (1-t)*sig
      G[idx] = static_cast<float>((w * t * (sig - 1.0) + (1.0 - t) * sig) * inv_n);
    }
  }
  res.value = static_cast<float>(loss * inv_n);
  return res;
}

Tensor bce_pos_weights_from_targets(const Tensor& targets, float min_w, float max_w) {
  if (targets.dim() != 2)
    throw std::invalid_argument("bce_pos_weights_from_targets: targets must be [N, A]");
  const std::size_t n = targets.size(0), attrs = targets.size(1);
  Tensor w({attrs});
  const float* T = targets.data();
  for (std::size_t j = 0; j < attrs; ++j) {
    double pos = 0.0;
    for (std::size_t i = 0; i < n; ++i) pos += T[i * attrs + j];
    const double neg = static_cast<double>(n) - pos;
    double ratio = pos > 0.0 ? neg / pos : max_w;
    if (ratio < min_w) ratio = min_w;
    if (ratio > max_w) ratio = max_w;
    w[j] = static_cast<float>(ratio);
  }
  return w;
}

}  // namespace hdczsc::nn
