// Post-training INT8 quantization of the embed path (backbone + projection).
//
// Scheme (the standard PTQ recipe, e.g. TensorRT / FBGEMM):
//   * activations: per-tensor asymmetric u8 — real = s_in · (q − zp). The
//     calibration range is always widened to include 0 so zero-padding
//     quantizes exactly to zp, and the zero-point correction below stays
//     exact at image borders.
//   * weights: per-output-channel symmetric s8, BatchNorm folded into the
//     conv first (w' = W·γ/√(σ²+ε), b' = (b−μ)·γ/√(σ²+ε) + β). Codes are
//     clamped to ±63 — the range contract of tensor::gemm_s8u8_accumulate
//     that keeps the AVX2 vpmaddubsw pair sums below the s16 limit, making
//     every ISA path bit-exact.
//   * compute: u8×s8→s32 GEMM (tensor/gemm_int8.hpp); each quantized op
//     dequantizes its s32 accumulator back to float with the zero-point
//     correction  y = s_in·s_w[oc]·(acc − zp·Σw[oc]) + b'[oc],  so the
//     inter-op glue (ReLU, pooling, residual adds) runs in plain float and
//     the next op re-quantizes with its own calibrated range.
//
// Calibration harvests per-tensor input ranges by walking the float model
// over a calibration set: moving min/max (EMA) by default, or a
// KL-divergence ("entropy") threshold search over a 2048-bin |x| histogram.
//
// The quantized graph (QuantizedEmbed) is a frozen, self-contained artifact:
// it owns its folded weights and float glue, holds no pointers back into the
// float model, allocates nothing in steady state (thread-local scratch
// pools), and its const forward is safe to call concurrently from server
// workers. It serializes to the .hdcsnap v4 quantization records
// (serve/snapshot_io.cpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "nn/linear.hpp"
#include "nn/resnet.hpp"
#include "nn/sequential.hpp"

namespace hdczsc::nn {

/// How activation ranges harvested during calibration are reduced to a
/// quantization range.
enum class CalibMethod : unsigned char {
  kMinMax = 0,   ///< EMA of per-batch min/max (fast, outlier-sensitive)
  kEntropy = 1,  ///< KL-divergence threshold search (TensorRT-style)
};

const char* calib_method_name(CalibMethod m);

/// Per-tensor asymmetric u8 parameters: real = scale · (code − zero_point).
struct QuantParams {
  float scale = 1.0f;
  std::int32_t zero_point = 0;  ///< u8 code of real 0.0, in [0, 255]
};

/// Map a harvested range to u8 params. The range is widened to include 0
/// (so padding and ReLU floors are exactly representable) and degenerate
/// ranges collapse to scale=1, zp=0.
QuantParams choose_qparams(float lo, float hi);

/// Streaming range harvester for one activation tensor. Two-phase for
/// entropy calibration: observe() every batch (min/max EMA), then
/// begin_hist() once and observe_hist() every batch, then finalize().
/// kMinMax needs only the observe() phase.
class RangeObserver {
 public:
  void observe(const float* x, std::size_t n);
  void begin_hist();
  void observe_hist(const float* x, std::size_t n);
  QuantParams finalize(CalibMethod method) const;

  float min() const { return min_; }
  float max() const { return max_; }

  static constexpr std::size_t kBins = 2048;         ///< |x| histogram bins
  static constexpr std::size_t kTargetLevels = 128;  ///< quantized levels for KL

 private:
  bool seen_ = false;
  float min_ = 0.0f, max_ = 0.0f;
  float bin_w_ = 0.0f;
  std::vector<std::uint64_t> hist_;
};

/// Calibrated activation ranges in canonical walk order: stem conv input;
/// per residual block conv1, conv2, (conv3,) (downsample,) inputs; then the
/// projection-linear input. One entry per quantized op. Persisted alongside
/// the int8 weights in v4 snapshots so the artifact records *how* it was
/// quantized.
struct CalibrationTable {
  CalibMethod method = CalibMethod::kMinMax;
  std::vector<QuantParams> activations;
};

void save_calibration(std::ostream& os, const CalibrationTable& table);
CalibrationTable load_calibration(std::istream& is);

/// One BN-folded conv with frozen int8 weights. Forward quantizes its float
/// input with `in_q` (padding fills the zero-point), runs the whole batch
/// through one u8 im2col + one s8u8 GEMM, and dequantizes — optionally
/// fusing the trailing ReLU. Steady-state allocation-free (scratch pools)
/// and const-thread-safe.
struct QuantizedConv2d {
  std::size_t in_c = 0, out_c = 0, k = 0, stride = 0, pad = 0;
  bool fuse_relu = false;
  QuantParams in_q;
  std::vector<std::int8_t> weight;  ///< [out_c, in_c*k*k] codes in [-63, 63]
  std::vector<float> w_scale;       ///< per-channel weight scale [out_c]
  std::vector<float> bias;          ///< BN-folded float bias [out_c]
  std::vector<std::int32_t> wsum;   ///< per-channel Σ codes (zp correction)

  std::size_t out_size(std::size_t in) const { return (in + 2 * pad - k) / stride + 1; }
  Tensor forward(const Tensor& x) const;
};

/// Frozen int8 projection layer, same scheme ([out, in] weights).
struct QuantizedLinear {
  std::size_t in_f = 0, out_f = 0;
  QuantParams in_q;
  std::vector<std::int8_t> weight;
  std::vector<float> w_scale;
  std::vector<float> bias;
  std::vector<std::int32_t> wsum;

  Tensor forward(const Tensor& x) const;
};

/// Frozen int8 replica of the embed path γ(·): the backbone Sequential with
/// BN folded away plus the optional projection Linear, as a flat node list.
/// Residual adds, ReLU glue and pooling run in float between quantized ops
/// (the quantized ops dominate runtime; the glue is memory-bound either way).
class QuantizedEmbed {
 public:
  struct Block {
    QuantizedConv2d conv1, conv2;
    std::unique_ptr<QuantizedConv2d> conv3;  ///< Bottleneck only
    std::unique_ptr<QuantizedConv2d> down;   ///< projection shortcut, else identity
  };

  struct Node {
    enum class Kind : unsigned char {
      kConv = 0,     ///< stem conv (+BN+ReLU folded/fused)
      kBlock = 1,    ///< BasicBlock / Bottleneck
      kMaxPool = 2,  ///< float max-pool (ImageNet-style stems)
      kGap = 3,      ///< float global average pool
      kFlatten = 4,  ///< shape bookkeeping
      kLinear = 5,   ///< projection FC
    };
    Kind kind = Kind::kConv;
    QuantizedConv2d conv;
    Block block;
    std::size_t pool_k = 0, pool_stride = 0;
    QuantizedLinear linear;
  };

  /// Walk the float model over `images` [N,3,S,S] in eval mode, harvesting
  /// the input range of every quantizable op (one pass for kMinMax, two for
  /// kEntropy). `projection` may be null (no-projection encoders).
  static CalibrationTable calibrate(Sequential& backbone, Linear* projection,
                                    const Tensor& images, CalibMethod method,
                                    std::size_t batch = 32);

  /// Fold BN into each conv, quantize weights per-channel to ±63, and attach
  /// the calibrated input ranges. Throws std::invalid_argument when the
  /// table's entry count does not match the model's walk (wrong table for
  /// this architecture).
  static std::shared_ptr<QuantizedEmbed> build(Sequential& backbone, Linear* projection,
                                               const CalibrationTable& table);

  /// Embeddings [B, d] from images [B, 3, S, S] — same contract as
  /// ImageEncoder::forward(images, /*train=*/false), computed int8.
  Tensor forward(const Tensor& images) const;

  const CalibrationTable& table() const { return table_; }
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Size summary for snapshot_tool --inspect.
  struct QuantInfo {
    CalibMethod method = CalibMethod::kMinMax;
    std::size_t n_conv = 0;    ///< quantized convs (incl. downsamples)
    std::size_t n_linear = 0;  ///< quantized FC layers
    std::size_t weight_bytes = 0;
  };
  QuantInfo info() const;

  /// Self-contained binary serialization (magic + version header; every
  /// load failure names the offending record and throws std::runtime_error).
  void save(std::ostream& os) const;
  static std::shared_ptr<QuantizedEmbed> load(std::istream& is);

 private:
  QuantizedEmbed() = default;
  std::vector<Node> nodes_;
  CalibrationTable table_;
};

}  // namespace hdczsc::nn
