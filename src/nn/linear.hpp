// Fully connected layer: y = x W^T + b, x [B, in], W [out, in], b [out].
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace hdczsc::nn {

class Linear : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features, util::Rng& rng, bool bias = true);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "Linear"; }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }
  Parameter& weight() { return w_; }
  Parameter& bias() { return b_; }
  bool has_bias() const { return has_bias_; }

 private:
  std::size_t in_, out_;
  bool has_bias_;
  Parameter w_, b_;
  Tensor cached_input_;
};

}  // namespace hdczsc::nn
