#include "nn/sequential.hpp"

namespace hdczsc::nn {

Tensor Sequential::forward(const Tensor& x, bool train) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->forward(h, train);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> out;
  for (auto& layer : layers_) {
    auto ps = layer->parameters();
    out.insert(out.end(), ps.begin(), ps.end());
  }
  return out;
}

std::vector<BufferRef> Sequential::buffers() {
  std::vector<BufferRef> out;
  for (auto& layer : layers_) {
    auto bs = layer->buffers();
    out.insert(out.end(), bs.begin(), bs.end());
  }
  return out;
}

}  // namespace hdczsc::nn
