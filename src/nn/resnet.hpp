// ResNet-v1 family (He et al. 2016) built from the layer library, exactly as
// the paper uses for its image-encoder backbone (ResNet50 / ResNet101), plus
// CPU-scale variants (resnet_mini / resnet_micro) used for the experiment
// runs on this machine (see DESIGN.md §1 and §4).
//
// The backbone output is the post-GlobalAvgPool feature vector of dimension
// `feature_dim()` (2048 for ResNet50/101, matching the paper's d' = 2048).
#pragma once

#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace hdczsc::nn {

/// Two 3x3 convs with identity / projection shortcut (ResNet18/34 and the
/// mini variants).
class BasicBlock : public Layer {
 public:
  BasicBlock(std::size_t in_c, std::size_t out_c, std::size_t stride, util::Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::vector<BufferRef> buffers() override;
  std::string name() const override { return "BasicBlock"; }

  static constexpr std::size_t kExpansion = 1;

  /// Structural accessors for the post-training quantizer (nn/quant.hpp):
  /// it replicates this block's forward graph with BN folded into each conv
  /// and needs the internals in walk order. nullptr = identity shortcut.
  Conv2d& conv1() { return conv1_; }
  BatchNorm2d& bn1() { return bn1_; }
  Conv2d& conv2() { return conv2_; }
  BatchNorm2d& bn2() { return bn2_; }
  Conv2d* down_conv() { return down_conv_.get(); }
  BatchNorm2d* down_bn() { return down_bn_.get(); }

 private:
  Conv2d conv1_;
  BatchNorm2d bn1_;
  ReLU relu1_;
  Conv2d conv2_;
  BatchNorm2d bn2_;
  ReLU relu_out_;
  std::unique_ptr<Conv2d> down_conv_;
  std::unique_ptr<BatchNorm2d> down_bn_;
  Tensor cached_identity_;
};

/// 1x1 -> 3x3 -> 1x1 bottleneck with 4x expansion (ResNet50/101/152).
class Bottleneck : public Layer {
 public:
  Bottleneck(std::size_t in_c, std::size_t mid_c, std::size_t stride, util::Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::vector<BufferRef> buffers() override;
  std::string name() const override { return "Bottleneck"; }

  static constexpr std::size_t kExpansion = 4;

  /// Structural accessors for the post-training quantizer (see BasicBlock).
  Conv2d& conv1() { return conv1_; }
  BatchNorm2d& bn1() { return bn1_; }
  Conv2d& conv2() { return conv2_; }
  BatchNorm2d& bn2() { return bn2_; }
  Conv2d& conv3() { return conv3_; }
  BatchNorm2d& bn3() { return bn3_; }
  Conv2d* down_conv() { return down_conv_.get(); }
  BatchNorm2d* down_bn() { return down_bn_.get(); }

 private:
  Conv2d conv1_;
  BatchNorm2d bn1_;
  ReLU relu1_;
  Conv2d conv2_;
  BatchNorm2d bn2_;
  ReLU relu2_;
  Conv2d conv3_;
  BatchNorm2d bn3_;
  ReLU relu_out_;
  std::unique_ptr<Conv2d> down_conv_;
  std::unique_ptr<BatchNorm2d> down_bn_;
  Tensor cached_identity_;
};

/// Backbone descriptor: a Sequential ending in GlobalAvgPool producing
/// [B, feature_dim] embeddings.
struct Backbone {
  std::unique_ptr<Sequential> net;
  std::size_t feature_dim = 0;
  std::string arch;
};

/// ImageNet-style stems (7x7/2 conv + 3x3/2 maxpool).
Backbone resnet18(util::Rng& rng, std::size_t in_channels = 3);
Backbone resnet34(util::Rng& rng, std::size_t in_channels = 3);
Backbone resnet50(util::Rng& rng, std::size_t in_channels = 3);
Backbone resnet101(util::Rng& rng, std::size_t in_channels = 3);

/// CIFAR-style stem (3x3/1 conv) for 32x32 synthetic images.
/// mini: 3 stages x 2 BasicBlocks, widths {16,32,64} -> feature_dim 64.
Backbone resnet_mini(util::Rng& rng, std::size_t in_channels = 3, std::size_t width = 16);
/// micro: 3 stages x 1 BasicBlock, widths {8,16,32} -> feature_dim 32.
Backbone resnet_micro(util::Rng& rng, std::size_t in_channels = 3);

/// Flatten-tailed CPU-scale variants: identical residual trunk but the
/// final GlobalAvgPool is replaced by Flatten, preserving the spatial
/// layout of the last feature map. On the synthetic substrate the
/// attribute evidence is location-coded (each attribute group owns an
/// image cell, DESIGN.md §1), so a GAP tail at tiny channel counts is an
/// information bottleneck the paper-scale ResNet50 (2048 channels) does
/// not suffer from; the flat tail restores the paper's effective capacity
/// shape. feature_dim is width*4 * (input_size/4)^2 — fixed `input_size`
/// (default 32) is part of the architecture.
Backbone resnet_micro_flat(util::Rng& rng, std::size_t in_channels = 3,
                           std::size_t input_size = 32);
Backbone resnet_mini_flat(util::Rng& rng, std::size_t in_channels = 3,
                          std::size_t input_size = 32);

/// Build a backbone by name:
/// "resnet18|34|50|101|mini|micro|micro_flat|mini_flat".
Backbone make_backbone(const std::string& arch, util::Rng& rng, std::size_t in_channels = 3);

}  // namespace hdczsc::nn
