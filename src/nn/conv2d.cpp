#include "nn/conv2d.hpp"

#include <cstring>

#include "nn/init.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/scratch.hpp"
#include "util/parallel.hpp"

namespace hdczsc::nn {

void im2col(const float* input, std::size_t channels, std::size_t height, std::size_t width,
            std::size_t kh, std::size_t kw, std::size_t stride, std::size_t pad, float* columns,
            std::size_t col_stride) {
  const std::size_t out_h = (height + 2 * pad - kh) / stride + 1;
  const std::size_t out_w = (width + 2 * pad - kw) / stride + 1;
  const std::size_t ncols = out_h * out_w;
  const std::size_t rstride = col_stride == 0 ? ncols : col_stride;
  std::size_t row = 0;
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t ki = 0; ki < kh; ++ki) {
      for (std::size_t kj = 0; kj < kw; ++kj, ++row) {
        float* dst = columns + row * rstride;
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          const long iy = static_cast<long>(oy * stride + ki) - static_cast<long>(pad);
          if (iy < 0 || iy >= static_cast<long>(height)) {
            std::memset(dst + oy * out_w, 0, out_w * sizeof(float));
            continue;
          }
          const float* src_row = input + (c * height + static_cast<std::size_t>(iy)) * width;
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            const long ix = static_cast<long>(ox * stride + kj) - static_cast<long>(pad);
            dst[oy * out_w + ox] =
                (ix < 0 || ix >= static_cast<long>(width)) ? 0.0f
                                                           : src_row[static_cast<std::size_t>(ix)];
          }
        }
      }
    }
  }
}

void col2im(const float* columns, std::size_t channels, std::size_t height, std::size_t width,
            std::size_t kh, std::size_t kw, std::size_t stride, std::size_t pad, float* input,
            std::size_t col_stride) {
  const std::size_t out_h = (height + 2 * pad - kh) / stride + 1;
  const std::size_t out_w = (width + 2 * pad - kw) / stride + 1;
  const std::size_t ncols = out_h * out_w;
  const std::size_t rstride = col_stride == 0 ? ncols : col_stride;
  std::size_t row = 0;
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t ki = 0; ki < kh; ++ki) {
      for (std::size_t kj = 0; kj < kw; ++kj, ++row) {
        const float* src = columns + row * rstride;
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          const long iy = static_cast<long>(oy * stride + ki) - static_cast<long>(pad);
          if (iy < 0 || iy >= static_cast<long>(height)) continue;
          float* dst_row = input + (c * height + static_cast<std::size_t>(iy)) * width;
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            const long ix = static_cast<long>(ox * stride + kj) - static_cast<long>(pad);
            if (ix < 0 || ix >= static_cast<long>(width)) continue;
            dst_row[static_cast<std::size_t>(ix)] += src[oy * out_w + ox];
          }
        }
      }
    }
  }
}

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               std::size_t stride, std::size_t pad, util::Rng& rng, bool bias)
    : in_c_(in_channels), out_c_(out_channels), k_(kernel), stride_(stride), pad_(pad),
      has_bias_(bias) {
  Tensor w({out_c_, in_c_, k_, k_});
  kaiming_normal(w, in_c_ * k_ * k_, rng);
  w_ = Parameter(std::move(w), "conv.weight");
  b_ = Parameter(Tensor({out_c_}), "conv.bias");
}

Tensor Conv2d::forward(const Tensor& x, bool train) {
  if (x.dim() != 4 || x.size(1) != in_c_)
    throw std::invalid_argument("Conv2d::forward: input " + tensor::shape_str(x.shape()) +
                                " incompatible with in_channels=" + std::to_string(in_c_));
  const std::size_t batch = x.size(0), h = x.size(2), w = x.size(3);
  const std::size_t oh = out_size(h), ow = out_size(w);
  if (train) cached_input_ = x;

  Tensor y({batch, out_c_, oh, ow});
  const std::size_t krows = in_c_ * k_ * k_;
  const std::size_t ncols = oh * ow;
  const std::size_t total = batch * ncols;
  const float* W = w_.value.data();
  const float* X = x.data();
  float* Y = y.data();

  // Whole-batch column matrix [krows, batch*ncols]: image b owns the
  // contiguous column slice [b*ncols, (b+1)*ncols).
  float* cols = tensor::scratch_f32(tensor::kScratchConvCols, krows * total);
  util::parallel_for(0, batch, [&](std::size_t b) {
    im2col(X + b * in_c_ * h * w, in_c_, h, w, k_, k_, stride_, pad_, cols + b * ncols, total);
  }, 1);

  // One GEMM for the whole batch: out[out_c, batch*ncols] = W_flat * cols.
  float* out = tensor::scratch_f32(tensor::kScratchConvOut, out_c_ * total);
  std::memset(out, 0, out_c_ * total * sizeof(float));
  tensor::gemm_accumulate(tensor::Trans::N, tensor::Trans::N, out_c_, total, krows, W, krows,
                          cols, total, out, total);

  // Scatter channel-major GEMM rows back to NCHW, folding in the bias.
  util::parallel_for(0, batch, [&](std::size_t b) {
    float* yb = Y + b * out_c_ * ncols;
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      const float* src = out + oc * total + b * ncols;
      float* yrow = yb + oc * ncols;
      if (has_bias_) {
        const float bv = b_.value[oc];
        for (std::size_t c = 0; c < ncols; ++c) yrow[c] = src[c] + bv;
      } else {
        std::memcpy(yrow, src, ncols * sizeof(float));
      }
    }
  }, 1);
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  if (cached_input_.empty())
    throw std::logic_error("Conv2d::backward called before forward(train=true)");
  const Tensor& x = cached_input_;
  const std::size_t batch = x.size(0), h = x.size(2), w = x.size(3);
  const std::size_t oh = out_size(h), ow = out_size(w);
  if (grad_out.dim() != 4 || grad_out.size(0) != batch || grad_out.size(1) != out_c_ ||
      grad_out.size(2) != oh || grad_out.size(3) != ow)
    throw std::invalid_argument("Conv2d::backward: grad shape " +
                                tensor::shape_str(grad_out.shape()));

  const std::size_t krows = in_c_ * k_ * k_;
  const std::size_t ncols = oh * ow;
  const std::size_t total = batch * ncols;
  Tensor dx({batch, in_c_, h, w});
  const float* W = w_.value.data();
  const float* X = x.data();
  const float* G = grad_out.data();
  float* DX = dx.data();
  float* DW = w_.grad.data();
  float* DB = b_.grad.data();

  // Rebuild the whole-batch column matrix (same layout as forward).
  float* cols = tensor::scratch_f32(tensor::kScratchConvCols, krows * total);
  util::parallel_for(0, batch, [&](std::size_t b) {
    im2col(X + b * in_c_ * h * w, in_c_, h, w, k_, k_, stride_, pad_, cols + b * ncols, total);
  }, 1);

  // Gather NCHW output grads into channel-major gbig[out_c, batch*ncols] so
  // both parameter-grad GEMMs see one contiguous matrix.
  float* gbig = tensor::scratch_f32(tensor::kScratchConvOut, out_c_ * total);
  util::parallel_for(0, batch, [&](std::size_t b) {
    const float* gb = G + b * out_c_ * ncols;
    for (std::size_t oc = 0; oc < out_c_; ++oc)
      std::memcpy(gbig + oc * total + b * ncols, gb + oc * ncols, ncols * sizeof(float));
  }, 1);

  // dW[out_c, krows] += gbig * cols^T — one GEMM-NT for the whole batch,
  // accumulating straight into the parameter gradient.
  tensor::gemm_accumulate(tensor::Trans::N, tensor::Trans::T, out_c_, krows, total, gbig, total,
                          cols, total, DW, krows);
  if (has_bias_) {
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      const float* grow = gbig + oc * total;
      double acc = 0.0;
      for (std::size_t c = 0; c < total; ++c) acc += grow[c];
      DB[oc] += static_cast<float>(acc);
    }
  }

  // dcols[krows, batch*ncols] = W^T * gbig — one GEMM-TN — then fold each
  // image's column slice back to input space.
  float* dcols = tensor::scratch_f32(tensor::kScratchConvDCols, krows * total);
  std::memset(dcols, 0, krows * total * sizeof(float));
  tensor::gemm_accumulate(tensor::Trans::T, tensor::Trans::N, krows, total, out_c_, W, krows,
                          gbig, total, dcols, total);
  util::parallel_for(0, batch, [&](std::size_t b) {
    col2im(dcols + b * ncols, in_c_, h, w, k_, k_, stride_, pad_, DX + b * in_c_ * h * w, total);
  }, 1);
  return dx;
}

std::vector<Parameter*> Conv2d::parameters() {
  if (has_bias_) return {&w_, &b_};
  return {&w_};
}

}  // namespace hdczsc::nn
