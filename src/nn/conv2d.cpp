#include "nn/conv2d.hpp"

#include <cstring>

#include "nn/init.hpp"
#include "tensor/ops.hpp"
#include "util/parallel.hpp"

namespace hdczsc::nn {

void im2col(const float* input, std::size_t channels, std::size_t height, std::size_t width,
            std::size_t kh, std::size_t kw, std::size_t stride, std::size_t pad, float* columns) {
  const std::size_t out_h = (height + 2 * pad - kh) / stride + 1;
  const std::size_t out_w = (width + 2 * pad - kw) / stride + 1;
  const std::size_t ncols = out_h * out_w;
  std::size_t row = 0;
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t ki = 0; ki < kh; ++ki) {
      for (std::size_t kj = 0; kj < kw; ++kj, ++row) {
        float* dst = columns + row * ncols;
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          const long iy = static_cast<long>(oy * stride + ki) - static_cast<long>(pad);
          if (iy < 0 || iy >= static_cast<long>(height)) {
            std::memset(dst + oy * out_w, 0, out_w * sizeof(float));
            continue;
          }
          const float* src_row = input + (c * height + static_cast<std::size_t>(iy)) * width;
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            const long ix = static_cast<long>(ox * stride + kj) - static_cast<long>(pad);
            dst[oy * out_w + ox] =
                (ix < 0 || ix >= static_cast<long>(width)) ? 0.0f
                                                           : src_row[static_cast<std::size_t>(ix)];
          }
        }
      }
    }
  }
}

void col2im(const float* columns, std::size_t channels, std::size_t height, std::size_t width,
            std::size_t kh, std::size_t kw, std::size_t stride, std::size_t pad, float* input) {
  const std::size_t out_h = (height + 2 * pad - kh) / stride + 1;
  const std::size_t out_w = (width + 2 * pad - kw) / stride + 1;
  const std::size_t ncols = out_h * out_w;
  std::size_t row = 0;
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t ki = 0; ki < kh; ++ki) {
      for (std::size_t kj = 0; kj < kw; ++kj, ++row) {
        const float* src = columns + row * ncols;
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          const long iy = static_cast<long>(oy * stride + ki) - static_cast<long>(pad);
          if (iy < 0 || iy >= static_cast<long>(height)) continue;
          float* dst_row = input + (c * height + static_cast<std::size_t>(iy)) * width;
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            const long ix = static_cast<long>(ox * stride + kj) - static_cast<long>(pad);
            if (ix < 0 || ix >= static_cast<long>(width)) continue;
            dst_row[static_cast<std::size_t>(ix)] += src[oy * out_w + ox];
          }
        }
      }
    }
  }
}

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               std::size_t stride, std::size_t pad, util::Rng& rng, bool bias)
    : in_c_(in_channels), out_c_(out_channels), k_(kernel), stride_(stride), pad_(pad),
      has_bias_(bias) {
  Tensor w({out_c_, in_c_, k_, k_});
  kaiming_normal(w, in_c_ * k_ * k_, rng);
  w_ = Parameter(std::move(w), "conv.weight");
  b_ = Parameter(Tensor({out_c_}), "conv.bias");
}

Tensor Conv2d::forward(const Tensor& x, bool train) {
  if (x.dim() != 4 || x.size(1) != in_c_)
    throw std::invalid_argument("Conv2d::forward: input " + tensor::shape_str(x.shape()) +
                                " incompatible with in_channels=" + std::to_string(in_c_));
  const std::size_t batch = x.size(0), h = x.size(2), w = x.size(3);
  const std::size_t oh = out_size(h), ow = out_size(w);
  if (train) cached_input_ = x;

  Tensor y({batch, out_c_, oh, ow});
  const std::size_t krows = in_c_ * k_ * k_;
  const std::size_t ncols = oh * ow;
  const float* W = w_.value.data();
  const float* X = x.data();
  float* Y = y.data();

  util::parallel_for(0, batch, [&](std::size_t b) {
    std::vector<float> cols(krows * ncols);
    im2col(X + b * in_c_ * h * w, in_c_, h, w, k_, k_, stride_, pad_, cols.data());
    // Y[b] = W [out_c, krows] * cols [krows, ncols]
    float* yb = Y + b * out_c_ * ncols;
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      float* yrow = yb + oc * ncols;
      const float* wrow = W + oc * krows;
      std::memset(yrow, 0, ncols * sizeof(float));
      for (std::size_t r = 0; r < krows; ++r) {
        const float wv = wrow[r];
        if (wv == 0.0f) continue;
        const float* crow = cols.data() + r * ncols;
        for (std::size_t c = 0; c < ncols; ++c) yrow[c] += wv * crow[c];
      }
      if (has_bias_) {
        const float bv = b_.value[oc];
        for (std::size_t c = 0; c < ncols; ++c) yrow[c] += bv;
      }
    }
  }, 1);
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  if (cached_input_.empty())
    throw std::logic_error("Conv2d::backward called before forward(train=true)");
  const Tensor& x = cached_input_;
  const std::size_t batch = x.size(0), h = x.size(2), w = x.size(3);
  const std::size_t oh = out_size(h), ow = out_size(w);
  if (grad_out.dim() != 4 || grad_out.size(0) != batch || grad_out.size(1) != out_c_ ||
      grad_out.size(2) != oh || grad_out.size(3) != ow)
    throw std::invalid_argument("Conv2d::backward: grad shape " +
                                tensor::shape_str(grad_out.shape()));

  const std::size_t krows = in_c_ * k_ * k_;
  const std::size_t ncols = oh * ow;
  Tensor dx({batch, in_c_, h, w});
  const float* W = w_.value.data();
  const float* X = x.data();
  const float* G = grad_out.data();
  float* DX = dx.data();
  float* DW = w_.grad.data();
  float* DB = b_.grad.data();

  // Serial over batch: parameter gradients accumulate into shared buffers.
  std::vector<float> cols(krows * ncols);
  std::vector<float> dcols(krows * ncols);
  for (std::size_t b = 0; b < batch; ++b) {
    im2col(X + b * in_c_ * h * w, in_c_, h, w, k_, k_, stride_, pad_, cols.data());
    const float* gb = G + b * out_c_ * ncols;
    // dW[oc, r] += sum_c gb[oc, c] * cols[r, c]
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      const float* grow = gb + oc * ncols;
      float* dwrow = DW + oc * krows;
      for (std::size_t r = 0; r < krows; ++r) {
        const float* crow = cols.data() + r * ncols;
        double acc = 0.0;
        for (std::size_t c = 0; c < ncols; ++c) acc += grow[c] * crow[c];
        dwrow[r] += static_cast<float>(acc);
      }
      if (has_bias_) {
        double acc = 0.0;
        for (std::size_t c = 0; c < ncols; ++c) acc += grow[c];
        DB[oc] += static_cast<float>(acc);
      }
    }
    // dcols[r, c] = sum_oc W[oc, r] * gb[oc, c]
    std::memset(dcols.data(), 0, dcols.size() * sizeof(float));
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      const float* grow = gb + oc * ncols;
      const float* wrow = W + oc * krows;
      for (std::size_t r = 0; r < krows; ++r) {
        const float wv = wrow[r];
        if (wv == 0.0f) continue;
        float* drow = dcols.data() + r * ncols;
        for (std::size_t c = 0; c < ncols; ++c) drow[c] += wv * grow[c];
      }
    }
    col2im(dcols.data(), in_c_, h, w, k_, k_, stride_, pad_, DX + b * in_c_ * h * w);
  }
  return dx;
}

std::vector<Parameter*> Conv2d::parameters() {
  if (has_bias_) return {&w_, &b_};
  return {&w_};
}

}  // namespace hdczsc::nn
