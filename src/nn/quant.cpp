#include "nn/quant.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/pooling.hpp"
#include "tensor/gemm_int8.hpp"
#include "tensor/ops.hpp"
#include "tensor/scratch.hpp"
#include "tensor/serialize.hpp"
#include "util/parallel.hpp"

namespace hdczsc::nn {

namespace {

using tensor::io::check_readable;
using tensor::io::read_pod;
using tensor::io::write_pod;

constexpr char kQuantMagic[4] = {'H', 'Q', 'N', 'T'};
constexpr std::uint32_t kQuantFormatVersion = 1;
/// Weight-code limit — the gemm_s8u8_accumulate range contract (±63 keeps
/// the AVX2 vpmaddubsw pair sums below the s16 saturation point).
constexpr int kWeightMax = 63;

inline std::uint8_t quantize_u8(float v, float inv_scale, std::int32_t zp) {
  const float r = v * inv_scale;
  int q = static_cast<int>(r >= 0.0f ? r + 0.5f : r - 0.5f) + zp;
  if (q < 0) q = 0;
  if (q > 255) q = 255;
  return static_cast<std::uint8_t>(q);
}

/// u8 analogue of nn::im2col: quantizes on the fly and fills padding with
/// the zero-point (the exact u8 code of real 0.0). Same [C*kh*kw, out_h*out_w]
/// row layout and col_stride semantics as the float version.
void im2col_u8(const float* input, std::size_t channels, std::size_t height, std::size_t width,
               std::size_t kh, std::size_t kw, std::size_t stride, std::size_t pad,
               float inv_scale, std::int32_t zp, std::uint8_t* columns, std::size_t col_stride) {
  const std::size_t out_h = (height + 2 * pad - kh) / stride + 1;
  const std::size_t out_w = (width + 2 * pad - kw) / stride + 1;
  const std::size_t ncols = out_h * out_w;
  const std::size_t rstride = col_stride == 0 ? ncols : col_stride;
  const std::uint8_t zp8 = static_cast<std::uint8_t>(zp);
  std::size_t row = 0;
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t ki = 0; ki < kh; ++ki) {
      for (std::size_t kj = 0; kj < kw; ++kj, ++row) {
        std::uint8_t* dst = columns + row * rstride;
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          const long iy = static_cast<long>(oy * stride + ki) - static_cast<long>(pad);
          if (iy < 0 || iy >= static_cast<long>(height)) {
            std::memset(dst + oy * out_w, zp8, out_w);
            continue;
          }
          const float* src_row = input + (c * height + static_cast<std::size_t>(iy)) * width;
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            const long ix = static_cast<long>(ox * stride + kj) - static_cast<long>(pad);
            dst[oy * out_w + ox] =
                (ix < 0 || ix >= static_cast<long>(width))
                    ? zp8
                    : quantize_u8(src_row[static_cast<std::size_t>(ix)], inv_scale, zp);
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------- float glue

void relu_inplace(Tensor& t) {
  float* d = t.data();
  const std::size_t n = t.numel();
  for (std::size_t i = 0; i < n; ++i)
    if (d[i] < 0.0f) d[i] = 0.0f;
}

void add_relu_inplace(Tensor& h, const Tensor& identity) {
  if (h.numel() != identity.numel())
    throw std::logic_error("quant: residual shape mismatch");
  float* d = h.data();
  const float* id = identity.data();
  const std::size_t n = h.numel();
  for (std::size_t i = 0; i < n; ++i) {
    const float v = d[i] + id[i];
    d[i] = v > 0.0f ? v : 0.0f;
  }
}

Tensor maxpool_f(const Tensor& x, std::size_t k, std::size_t stride) {
  const std::size_t b = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
  const std::size_t oh = (h - k) / stride + 1, ow = (w - k) / stride + 1;
  Tensor y({b, c, oh, ow});
  const float* X = x.data();
  float* Y = y.data();
  util::parallel_for(0, b * c, [&](std::size_t bc) {
    const float* in = X + bc * h * w;
    float* out = Y + bc * oh * ow;
    for (std::size_t oy = 0; oy < oh; ++oy)
      for (std::size_t ox = 0; ox < ow; ++ox) {
        float best = -std::numeric_limits<float>::infinity();
        for (std::size_t ki = 0; ki < k; ++ki)
          for (std::size_t kj = 0; kj < k; ++kj)
            best = std::max(best, in[(oy * stride + ki) * w + ox * stride + kj]);
        out[oy * ow + ox] = best;
      }
  }, 1);
  return y;
}

Tensor gap_f(const Tensor& x) {
  const std::size_t b = x.size(0), c = x.size(1), hw = x.size(2) * x.size(3);
  Tensor y({b, c});
  const float* X = x.data();
  float* Y = y.data();
  const float inv = 1.0f / static_cast<float>(hw);
  for (std::size_t bc = 0; bc < b * c; ++bc) {
    const float* in = X + bc * hw;
    float acc = 0.0f;
    for (std::size_t i = 0; i < hw; ++i) acc += in[i];
    Y[bc] = acc * inv;
  }
  return y;
}

// ----------------------------------------------------- backbone graph walk

/// Flat description of the backbone Sequential in quantization walk order.
/// Both calibrate() and build() traverse this same list, so the observer /
/// table indices cannot drift between the two.
struct WalkItem {
  enum Kind { kStemConv, kMaxPool, kGap, kFlatten, kBasic, kBottleneck } kind;
  Layer* layer = nullptr;  ///< the Sequential entry itself
  // kStemConv
  Conv2d* conv = nullptr;
  BatchNorm2d* bn = nullptr;
  bool relu = false;
  // kMaxPool
  MaxPool2d* pool = nullptr;
  // blocks
  BasicBlock* basic = nullptr;
  Bottleneck* bottleneck = nullptr;
};

std::vector<WalkItem> parse_backbone(Sequential& seq) {
  std::vector<WalkItem> items;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    Layer& l = seq[i];
    const std::string n = l.name();
    WalkItem it;
    it.layer = &l;
    if (n == "Conv2d") {
      it.kind = WalkItem::kStemConv;
      it.conv = dynamic_cast<Conv2d*>(&l);
      if (i + 1 < seq.size() && seq[i + 1].name() == "BatchNorm2d")
        it.bn = dynamic_cast<BatchNorm2d*>(&seq[++i]);
      if (i + 1 < seq.size() && seq[i + 1].name() == "ReLU") {
        it.relu = true;
        ++i;
      }
    } else if (n == "MaxPool2d") {
      it.kind = WalkItem::kMaxPool;
      it.pool = dynamic_cast<MaxPool2d*>(&l);
    } else if (n == "BasicBlock") {
      it.kind = WalkItem::kBasic;
      it.basic = dynamic_cast<BasicBlock*>(&l);
    } else if (n == "Bottleneck") {
      it.kind = WalkItem::kBottleneck;
      it.bottleneck = dynamic_cast<Bottleneck*>(&l);
    } else if (n == "GlobalAvgPool") {
      it.kind = WalkItem::kGap;
    } else if (n == "Flatten") {
      it.kind = WalkItem::kFlatten;
    } else {
      throw std::invalid_argument("quantize: unsupported backbone layer '" + n + "'");
    }
    items.push_back(it);
  }
  return items;
}

std::size_t quantized_op_count(const std::vector<WalkItem>& items, bool has_projection) {
  std::size_t n = 0;
  for (const WalkItem& it : items) {
    switch (it.kind) {
      case WalkItem::kStemConv: n += 1; break;
      case WalkItem::kBasic: n += 2 + (it.basic->down_conv() ? 1 : 0); break;
      case WalkItem::kBottleneck: n += 3 + (it.bottleneck->down_conv() ? 1 : 0); break;
      default: break;
    }
  }
  return n + (has_projection ? 1 : 0);
}

/// One calibration forward pass in eval mode, feeding each quantizable op's
/// input to its observer (min/max pass or histogram pass).
void calib_forward(const std::vector<WalkItem>& items, Linear* projection, const Tensor& input,
                   std::vector<RangeObserver>& obs, bool hist) {
  std::size_t idx = 0;
  auto see = [&](const Tensor& t) {
    if (hist)
      obs[idx++].observe_hist(t.data(), t.numel());
    else
      obs[idx++].observe(t.data(), t.numel());
  };
  Tensor x = input;
  for (const WalkItem& it : items) {
    switch (it.kind) {
      case WalkItem::kStemConv: {
        see(x);
        x = it.conv->forward(x, false);
        if (it.bn) x = it.bn->forward(x, false);
        if (it.relu) relu_inplace(x);
        break;
      }
      case WalkItem::kBasic: {
        BasicBlock* b = it.basic;
        see(x);
        Tensor h = b->bn1().forward(b->conv1().forward(x, false), false);
        relu_inplace(h);
        see(h);
        h = b->bn2().forward(b->conv2().forward(h, false), false);
        Tensor identity = x;
        if (b->down_conv()) {
          see(x);
          identity = b->down_bn()->forward(b->down_conv()->forward(x, false), false);
        }
        add_relu_inplace(h, identity);
        x = std::move(h);
        break;
      }
      case WalkItem::kBottleneck: {
        Bottleneck* b = it.bottleneck;
        see(x);
        Tensor h = b->bn1().forward(b->conv1().forward(x, false), false);
        relu_inplace(h);
        see(h);
        h = b->bn2().forward(b->conv2().forward(h, false), false);
        relu_inplace(h);
        see(h);
        h = b->bn3().forward(b->conv3().forward(h, false), false);
        Tensor identity = x;
        if (b->down_conv()) {
          see(x);
          identity = b->down_bn()->forward(b->down_conv()->forward(x, false), false);
        }
        add_relu_inplace(h, identity);
        x = std::move(h);
        break;
      }
      case WalkItem::kMaxPool:
      case WalkItem::kGap:
      case WalkItem::kFlatten:
        x = it.layer->forward(x, false);
        break;
    }
  }
  if (projection) {
    see(x);
    x = projection->forward(x, false);
  }
}

// -------------------------------------------------------------- BN folding

/// Fold the (optional) trailing BatchNorm into the conv and quantize the
/// result per-output-channel to ±kWeightMax symmetric codes.
QuantizedConv2d fold_conv(Conv2d& conv, BatchNorm2d* bn, bool fuse_relu,
                          const QuantParams& in_q) {
  QuantizedConv2d q;
  q.in_c = conv.in_channels();
  q.out_c = conv.out_channels();
  q.k = conv.kernel();
  q.stride = conv.stride();
  q.pad = conv.padding();
  q.fuse_relu = fuse_relu;
  q.in_q = in_q;
  const std::size_t krows = q.in_c * q.k * q.k;
  q.weight.resize(q.out_c * krows);
  q.w_scale.resize(q.out_c);
  q.bias.resize(q.out_c);
  q.wsum.resize(q.out_c);

  const float* W = conv.weight().value.data();
  const float* cb = conv.has_bias() ? conv.bias().value.data() : nullptr;
  std::vector<float> wf(krows);
  for (std::size_t oc = 0; oc < q.out_c; ++oc) {
    float a = 1.0f, shift = 0.0f;
    if (bn) {
      const float inv_std = 1.0f / std::sqrt(bn->running_var()[oc] + bn->eps());
      a = bn->gamma()[oc] * inv_std;
      shift = bn->beta()[oc] - bn->running_mean()[oc] * a;
    }
    q.bias[oc] = (cb ? cb[oc] : 0.0f) * a + shift;

    const float* wrow = W + oc * krows;
    float max_abs = 0.0f;
    for (std::size_t r = 0; r < krows; ++r) {
      wf[r] = wrow[r] * a;
      max_abs = std::max(max_abs, std::fabs(wf[r]));
    }
    const float s = max_abs > 0.0f ? max_abs / static_cast<float>(kWeightMax) : 1.0f;
    q.w_scale[oc] = s;
    const float inv_s = 1.0f / s;
    std::int32_t sum = 0;
    for (std::size_t r = 0; r < krows; ++r) {
      const float v = wf[r] * inv_s;
      int code = static_cast<int>(v >= 0.0f ? v + 0.5f : v - 0.5f);
      code = std::clamp(code, -kWeightMax, kWeightMax);
      q.weight[oc * krows + r] = static_cast<std::int8_t>(code);
      sum += code;
    }
    q.wsum[oc] = sum;
  }
  return q;
}

QuantizedLinear fold_linear(Linear& fc, const QuantParams& in_q) {
  QuantizedLinear q;
  q.in_f = fc.in_features();
  q.out_f = fc.out_features();
  q.in_q = in_q;
  q.weight.resize(q.out_f * q.in_f);
  q.w_scale.resize(q.out_f);
  q.bias.resize(q.out_f);
  q.wsum.resize(q.out_f);
  const float* W = fc.weight().value.data();
  const float* b = fc.has_bias() ? fc.bias().value.data() : nullptr;
  for (std::size_t o = 0; o < q.out_f; ++o) {
    q.bias[o] = b ? b[o] : 0.0f;
    const float* wrow = W + o * q.in_f;
    float max_abs = 0.0f;
    for (std::size_t j = 0; j < q.in_f; ++j) max_abs = std::max(max_abs, std::fabs(wrow[j]));
    const float s = max_abs > 0.0f ? max_abs / static_cast<float>(kWeightMax) : 1.0f;
    q.w_scale[o] = s;
    const float inv_s = 1.0f / s;
    std::int32_t sum = 0;
    for (std::size_t j = 0; j < q.in_f; ++j) {
      const float v = wrow[j] * inv_s;
      int code = static_cast<int>(v >= 0.0f ? v + 0.5f : v - 0.5f);
      code = std::clamp(code, -kWeightMax, kWeightMax);
      q.weight[o * q.in_f + j] = static_cast<std::int8_t>(code);
      sum += code;
    }
    q.wsum[o] = sum;
  }
  return q;
}

// ------------------------------------------------------------ serialization

void write_qparams(std::ostream& os, const QuantParams& p) {
  write_pod<float>(os, p.scale);
  write_pod<std::int32_t>(os, p.zero_point);
}

QuantParams read_qparams(std::istream& is, const char* what) {
  QuantParams p;
  p.scale = read_pod<float>(is, what);
  p.zero_point = read_pod<std::int32_t>(is, what);
  if (!(p.scale > 0.0f) || !std::isfinite(p.scale) || p.zero_point < 0 || p.zero_point > 255)
    throw std::runtime_error(std::string("quant: corrupt record '") + what + "': scale " +
                             std::to_string(p.scale) + ", zero_point " +
                             std::to_string(p.zero_point));
  return p;
}

void write_f32_vec(std::ostream& os, const std::vector<float>& v) {
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(float)));
}

void read_f32_vec(std::istream& is, std::vector<float>& v, std::size_t n, const char* what) {
  check_readable(is, n, sizeof(float), what);
  v.resize(n);
  is.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(n * sizeof(float)));
  if (!is) throw std::runtime_error(std::string("quant: truncated reading ") + what);
}

void write_conv(std::ostream& os, const QuantizedConv2d& q) {
  write_pod<std::uint64_t>(os, q.in_c);
  write_pod<std::uint64_t>(os, q.out_c);
  write_pod<std::uint64_t>(os, q.k);
  write_pod<std::uint64_t>(os, q.stride);
  write_pod<std::uint64_t>(os, q.pad);
  write_pod<std::uint8_t>(os, q.fuse_relu ? 1 : 0);
  write_qparams(os, q.in_q);
  os.write(reinterpret_cast<const char*>(q.weight.data()),
           static_cast<std::streamsize>(q.weight.size()));
  write_f32_vec(os, q.w_scale);
  write_f32_vec(os, q.bias);
}

QuantizedConv2d read_conv(std::istream& is) {
  QuantizedConv2d q;
  q.in_c = static_cast<std::size_t>(read_pod<std::uint64_t>(is, "conv in_c"));
  q.out_c = static_cast<std::size_t>(read_pod<std::uint64_t>(is, "conv out_c"));
  q.k = static_cast<std::size_t>(read_pod<std::uint64_t>(is, "conv kernel"));
  q.stride = static_cast<std::size_t>(read_pod<std::uint64_t>(is, "conv stride"));
  q.pad = static_cast<std::size_t>(read_pod<std::uint64_t>(is, "conv pad"));
  if (q.out_c == 0 || q.in_c == 0 || q.k == 0 || q.stride == 0 || q.out_c > (1u << 20) ||
      q.in_c > (1u << 20) || q.k > 64)
    throw std::runtime_error("quant: corrupt record 'conv geometry'");
  q.fuse_relu = read_pod<std::uint8_t>(is, "conv fuse_relu") != 0;
  q.in_q = read_qparams(is, "conv input qparams");
  const std::size_t krows = q.in_c * q.k * q.k;
  check_readable(is, q.out_c * krows, 1, "conv int8 weights");
  q.weight.resize(q.out_c * krows);
  is.read(reinterpret_cast<char*>(q.weight.data()),
          static_cast<std::streamsize>(q.weight.size()));
  if (!is) throw std::runtime_error("quant: truncated reading conv int8 weights");
  read_f32_vec(is, q.w_scale, q.out_c, "conv weight scales");
  read_f32_vec(is, q.bias, q.out_c, "conv bias");
  // Recompute the zero-point correction sums and re-assert the ±63 range
  // contract — a corrupt weight byte must not silently break the GEMM's
  // exactness guarantee.
  q.wsum.assign(q.out_c, 0);
  for (std::size_t oc = 0; oc < q.out_c; ++oc) {
    std::int32_t sum = 0;
    for (std::size_t r = 0; r < krows; ++r) {
      const int code = q.weight[oc * krows + r];
      if (code < -kWeightMax || code > kWeightMax)
        throw std::runtime_error("quant: corrupt record 'conv int8 weights': code " +
                                 std::to_string(code) + " outside [-63, 63]");
      sum += code;
    }
    q.wsum[oc] = sum;
  }
  return q;
}

void write_linear(std::ostream& os, const QuantizedLinear& q) {
  write_pod<std::uint64_t>(os, q.in_f);
  write_pod<std::uint64_t>(os, q.out_f);
  write_qparams(os, q.in_q);
  os.write(reinterpret_cast<const char*>(q.weight.data()),
           static_cast<std::streamsize>(q.weight.size()));
  write_f32_vec(os, q.w_scale);
  write_f32_vec(os, q.bias);
}

QuantizedLinear read_linear(std::istream& is) {
  QuantizedLinear q;
  q.in_f = static_cast<std::size_t>(read_pod<std::uint64_t>(is, "linear in_features"));
  q.out_f = static_cast<std::size_t>(read_pod<std::uint64_t>(is, "linear out_features"));
  if (q.in_f == 0 || q.out_f == 0 || q.in_f > (1u << 24) || q.out_f > (1u << 24))
    throw std::runtime_error("quant: corrupt record 'linear geometry'");
  q.in_q = read_qparams(is, "linear input qparams");
  check_readable(is, q.out_f * q.in_f, 1, "linear int8 weights");
  q.weight.resize(q.out_f * q.in_f);
  is.read(reinterpret_cast<char*>(q.weight.data()),
          static_cast<std::streamsize>(q.weight.size()));
  if (!is) throw std::runtime_error("quant: truncated reading linear int8 weights");
  read_f32_vec(is, q.w_scale, q.out_f, "linear weight scales");
  read_f32_vec(is, q.bias, q.out_f, "linear bias");
  q.wsum.assign(q.out_f, 0);
  for (std::size_t o = 0; o < q.out_f; ++o) {
    std::int32_t sum = 0;
    for (std::size_t j = 0; j < q.in_f; ++j) {
      const int code = q.weight[o * q.in_f + j];
      if (code < -kWeightMax || code > kWeightMax)
        throw std::runtime_error("quant: corrupt record 'linear int8 weights': code " +
                                 std::to_string(code) + " outside [-63, 63]");
      sum += code;
    }
    q.wsum[o] = sum;
  }
  return q;
}

}  // namespace

// ---------------------------------------------------------------- qparams

const char* calib_method_name(CalibMethod m) {
  switch (m) {
    case CalibMethod::kMinMax: return "minmax";
    case CalibMethod::kEntropy: return "entropy";
  }
  return "?";
}

QuantParams choose_qparams(float lo, float hi) {
  lo = std::min(lo, 0.0f);
  hi = std::max(hi, 0.0f);
  QuantParams p;
  const float range = hi - lo;
  if (!(range > 0.0f) || !std::isfinite(range)) return p;  // degenerate: scale 1, zp 0
  p.scale = range / 255.0f;
  const float zpf = -lo / p.scale;
  p.zero_point = std::clamp(static_cast<std::int32_t>(zpf + 0.5f), 0, 255);
  return p;
}

void RangeObserver::observe(const float* x, std::size_t n) {
  if (n == 0) return;
  float lo = x[0], hi = x[0];
  for (std::size_t i = 1; i < n; ++i) {
    lo = std::min(lo, x[i]);
    hi = std::max(hi, x[i]);
  }
  // Moving-average min/max (PyTorch MovingAverageMinMaxObserver, α = 0.3):
  // smooths per-batch outliers without a full histogram.
  constexpr float kAlpha = 0.3f;
  if (!seen_) {
    min_ = lo;
    max_ = hi;
    seen_ = true;
  } else {
    min_ = (1.0f - kAlpha) * min_ + kAlpha * lo;
    max_ = (1.0f - kAlpha) * max_ + kAlpha * hi;
  }
}

void RangeObserver::begin_hist() {
  const float max_abs = std::max(std::fabs(min_), std::fabs(max_));
  bin_w_ = max_abs > 0.0f ? max_abs / static_cast<float>(kBins) : 1e-12f;
  hist_.assign(kBins, 0);
}

void RangeObserver::observe_hist(const float* x, std::size_t n) {
  if (hist_.empty()) throw std::logic_error("RangeObserver: observe_hist before begin_hist");
  const float inv_w = 1.0f / bin_w_;
  for (std::size_t i = 0; i < n; ++i) {
    const float a = std::fabs(x[i]);
    // Exact zeros (ReLU floors, padding) quantize exactly at any threshold;
    // keeping their mass in the histogram only skews the KL search toward
    // over-tight clips, so the reference implementations drop them too.
    if (a == 0.0f) continue;
    std::size_t idx = static_cast<std::size_t>(a * inv_w);
    if (idx >= kBins) idx = kBins - 1;
    ++hist_[idx];
  }
}

QuantParams RangeObserver::finalize(CalibMethod method) const {
  if (method == CalibMethod::kMinMax || hist_.empty()) return choose_qparams(min_, max_);

  // TensorRT-style KL threshold search: find the clip threshold T whose
  // clipped-and-requantized distribution (kTargetLevels levels) diverges
  // least from the full-precision reference.
  std::uint64_t total = 0;
  for (std::uint64_t h : hist_) total += h;
  if (total == 0) return choose_qparams(min_, max_);

  double best_kl = std::numeric_limits<double>::infinity();
  std::size_t best_t = kBins;
  std::vector<double> P, Q;
  for (std::size_t t = kTargetLevels; t <= kBins; t += 8) {
    // Reference: bins [0, t) with everything beyond t clamped into bin t-1.
    P.assign(hist_.begin(), hist_.begin() + static_cast<std::ptrdiff_t>(t));
    double outliers = 0.0;
    for (std::size_t i = t; i < kBins; ++i) outliers += static_cast<double>(hist_[i]);
    P[t - 1] += outliers;
    // Candidate: the t bins collapsed into kTargetLevels groups, each group's
    // mass spread uniformly back over its originally-nonempty bins.
    Q.assign(t, 0.0);
    const double group = static_cast<double>(t) / static_cast<double>(kTargetLevels);
    for (std::size_t g = 0; g < kTargetLevels; ++g) {
      const std::size_t start = static_cast<std::size_t>(static_cast<double>(g) * group);
      std::size_t end = static_cast<std::size_t>(static_cast<double>(g + 1) * group);
      if (g + 1 == kTargetLevels) end = t;
      double mass = 0.0;
      std::size_t nonzero = 0;
      for (std::size_t i = start; i < end; ++i) {
        mass += static_cast<double>(hist_[i]);
        if (hist_[i] != 0) ++nonzero;
      }
      if (nonzero == 0) continue;
      const double val = mass / static_cast<double>(nonzero);
      for (std::size_t i = start; i < end; ++i)
        if (hist_[i] != 0) Q[i] = val;
    }
    double psum = 0.0, qsum = 0.0;
    for (std::size_t i = 0; i < t; ++i) {
      psum += P[i];
      qsum += Q[i];
    }
    if (psum <= 0.0 || qsum <= 0.0) continue;
    double kl = 0.0;
    for (std::size_t i = 0; i < t; ++i) {
      if (P[i] <= 0.0) continue;
      const double p = P[i] / psum;
      const double q = std::max(Q[i] / qsum, 1e-12);
      kl += p * std::log(p / q);
    }
    if (kl < best_kl) {
      best_kl = kl;
      best_t = t;
    }
  }
  const float threshold = (static_cast<float>(best_t) + 0.5f) * bin_w_;
  return choose_qparams(std::max(min_, -threshold), std::min(max_, threshold));
}

void save_calibration(std::ostream& os, const CalibrationTable& table) {
  write_pod<std::uint8_t>(os, static_cast<std::uint8_t>(table.method));
  write_pod<std::uint64_t>(os, table.activations.size());
  for (const QuantParams& p : table.activations) write_qparams(os, p);
}

CalibrationTable load_calibration(std::istream& is) {
  CalibrationTable t;
  const auto m = read_pod<std::uint8_t>(is, "calibration method");
  if (m > static_cast<std::uint8_t>(CalibMethod::kEntropy))
    throw std::runtime_error("quant: corrupt record 'calibration method': " + std::to_string(m));
  t.method = static_cast<CalibMethod>(m);
  const auto n = read_pod<std::uint64_t>(is, "calibration entry count");
  check_readable(is, n, sizeof(float) + sizeof(std::int32_t), "calibration entries");
  t.activations.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i)
    t.activations.push_back(read_qparams(is, "calibration entry"));
  return t;
}

// ------------------------------------------------------------- quantized ops

Tensor QuantizedConv2d::forward(const Tensor& x) const {
  if (x.dim() != 4 || x.size(1) != in_c)
    throw std::invalid_argument("QuantizedConv2d::forward: input " +
                                tensor::shape_str(x.shape()) +
                                " incompatible with in_channels=" + std::to_string(in_c));
  const std::size_t batch = x.size(0), h = x.size(2), w = x.size(3);
  const std::size_t oh = out_size(h), ow = out_size(w);
  Tensor y({batch, out_c, oh, ow});
  const std::size_t krows = in_c * k * k;
  const std::size_t ncols = oh * ow;
  const std::size_t total = batch * ncols;
  const float* X = x.data();
  float* Y = y.data();

  // Whole-batch u8 column matrix, same layout as the float conv: image b
  // owns the contiguous column slice [b*ncols, (b+1)*ncols).
  std::uint8_t* cols = tensor::scratch_u8(tensor::kScratchConvCols, krows * total);
  const float inv_scale = 1.0f / in_q.scale;
  const std::int32_t zp = in_q.zero_point;
  util::parallel_for(0, batch, [&](std::size_t b) {
    im2col_u8(X + b * in_c * h * w, in_c, h, w, k, k, stride, pad, inv_scale, zp,
              cols + b * ncols, total);
  }, 1);

  // One integer GEMM for the whole batch: acc[out_c, batch*ncols] s32.
  std::int32_t* acc = tensor::scratch_i32(tensor::kScratchConvOut, out_c * total);
  std::memset(acc, 0, out_c * total * sizeof(std::int32_t));
  tensor::gemm_s8u8_accumulate(out_c, total, krows, weight.data(), krows, cols, total, acc,
                               total);

  // Dequantize with the zero-point correction, fold in bias (+ fused ReLU),
  // scatter channel-major rows back to NCHW.
  const float s_in = in_q.scale;
  util::parallel_for(0, batch, [&](std::size_t b) {
    float* yb = Y + b * out_c * ncols;
    for (std::size_t oc = 0; oc < out_c; ++oc) {
      const std::int32_t* src = acc + oc * total + b * ncols;
      const float sc = s_in * w_scale[oc];
      const std::int32_t corr = zp * wsum[oc];
      const float bv = bias[oc];
      float* yrow = yb + oc * ncols;
      if (fuse_relu) {
        for (std::size_t c = 0; c < ncols; ++c) {
          const float v = sc * static_cast<float>(src[c] - corr) + bv;
          yrow[c] = v > 0.0f ? v : 0.0f;
        }
      } else {
        for (std::size_t c = 0; c < ncols; ++c)
          yrow[c] = sc * static_cast<float>(src[c] - corr) + bv;
      }
    }
  }, 1);
  return y;
}

Tensor QuantizedLinear::forward(const Tensor& x) const {
  if (x.dim() != 2 || x.size(1) != in_f)
    throw std::invalid_argument("QuantizedLinear::forward: input " +
                                tensor::shape_str(x.shape()) +
                                " incompatible with in_features=" + std::to_string(in_f));
  const std::size_t batch = x.size(0);
  Tensor y({batch, out_f});
  const float* X = x.data();
  float* Y = y.data();

  // Quantize x transposed to [in_f, batch] so the GEMM runs weights-major:
  // acc[out_f, batch] = W[out_f, in_f] · xqT[in_f, batch].
  std::uint8_t* xqT = tensor::scratch_u8(tensor::kScratchConvCols, in_f * batch);
  const float inv_scale = 1.0f / in_q.scale;
  const std::int32_t zp = in_q.zero_point;
  util::parallel_for(0, batch, [&](std::size_t b) {
    const float* xb = X + b * in_f;
    for (std::size_t j = 0; j < in_f; ++j) xqT[j * batch + b] = quantize_u8(xb[j], inv_scale, zp);
  }, 1);

  std::int32_t* acc = tensor::scratch_i32(tensor::kScratchConvOut, out_f * batch);
  std::memset(acc, 0, out_f * batch * sizeof(std::int32_t));
  tensor::gemm_s8u8_accumulate(out_f, batch, in_f, weight.data(), in_f, xqT, batch, acc, batch);

  const float s_in = in_q.scale;
  util::parallel_for(0, batch, [&](std::size_t b) {
    float* yb = Y + b * out_f;
    for (std::size_t o = 0; o < out_f; ++o)
      yb[o] = s_in * w_scale[o] * static_cast<float>(acc[o * batch + b] - zp * wsum[o]) + bias[o];
  }, 1);
  return y;
}

// ------------------------------------------------------------ QuantizedEmbed

CalibrationTable QuantizedEmbed::calibrate(Sequential& backbone, Linear* projection,
                                           const Tensor& images, CalibMethod method,
                                           std::size_t batch) {
  if (images.dim() != 4)
    throw std::invalid_argument("QuantizedEmbed::calibrate: images must be [N,3,S,S], got " +
                                tensor::shape_str(images.shape()));
  const std::size_t n = images.size(0);
  if (n == 0) throw std::invalid_argument("QuantizedEmbed::calibrate: empty calibration set");
  if (batch == 0) batch = 32;
  const auto items = parse_backbone(backbone);
  std::vector<RangeObserver> obs(quantized_op_count(items, projection != nullptr));

  const std::size_t per_img = images.size(1) * images.size(2) * images.size(3);
  auto run_pass = [&](bool hist) {
    for (std::size_t b0 = 0; b0 < n; b0 += batch) {
      const std::size_t bs = std::min(batch, n - b0);
      Tensor xb({bs, images.size(1), images.size(2), images.size(3)});
      std::memcpy(xb.data(), images.data() + b0 * per_img, bs * per_img * sizeof(float));
      calib_forward(items, projection, xb, obs, hist);
    }
  };
  run_pass(false);
  if (method == CalibMethod::kEntropy) {
    for (auto& o : obs) o.begin_hist();
    run_pass(true);
  }

  CalibrationTable table;
  table.method = method;
  table.activations.reserve(obs.size());
  for (const auto& o : obs) table.activations.push_back(o.finalize(method));
  return table;
}

std::shared_ptr<QuantizedEmbed> QuantizedEmbed::build(Sequential& backbone, Linear* projection,
                                                      const CalibrationTable& table) {
  const auto items = parse_backbone(backbone);
  const std::size_t want = quantized_op_count(items, projection != nullptr);
  if (table.activations.size() != want)
    throw std::invalid_argument("QuantizedEmbed::build: calibration table has " +
                                std::to_string(table.activations.size()) + " entries but this " +
                                "model walk needs " + std::to_string(want) +
                                " (table from a different architecture?)");
  std::size_t idx = 0;
  auto next_q = [&]() -> const QuantParams& { return table.activations[idx++]; };

  auto embed = std::shared_ptr<QuantizedEmbed>(new QuantizedEmbed());
  embed->table_ = table;
  for (const WalkItem& it : items) {
    Node node;
    switch (it.kind) {
      case WalkItem::kStemConv:
        node.kind = Node::Kind::kConv;
        node.conv = fold_conv(*it.conv, it.bn, it.relu, next_q());
        break;
      case WalkItem::kBasic: {
        BasicBlock* b = it.basic;
        node.kind = Node::Kind::kBlock;
        node.block.conv1 = fold_conv(b->conv1(), &b->bn1(), /*fuse_relu=*/true, next_q());
        node.block.conv2 = fold_conv(b->conv2(), &b->bn2(), /*fuse_relu=*/false, next_q());
        if (b->down_conv())
          node.block.down = std::make_unique<QuantizedConv2d>(
              fold_conv(*b->down_conv(), b->down_bn(), /*fuse_relu=*/false, next_q()));
        break;
      }
      case WalkItem::kBottleneck: {
        Bottleneck* b = it.bottleneck;
        node.kind = Node::Kind::kBlock;
        node.block.conv1 = fold_conv(b->conv1(), &b->bn1(), /*fuse_relu=*/true, next_q());
        node.block.conv2 = fold_conv(b->conv2(), &b->bn2(), /*fuse_relu=*/true, next_q());
        node.block.conv3 = std::make_unique<QuantizedConv2d>(
            fold_conv(b->conv3(), &b->bn3(), /*fuse_relu=*/false, next_q()));
        if (b->down_conv())
          node.block.down = std::make_unique<QuantizedConv2d>(
              fold_conv(*b->down_conv(), b->down_bn(), /*fuse_relu=*/false, next_q()));
        break;
      }
      case WalkItem::kMaxPool:
        node.kind = Node::Kind::kMaxPool;
        node.pool_k = it.pool->kernel();
        node.pool_stride = it.pool->stride();
        break;
      case WalkItem::kGap:
        node.kind = Node::Kind::kGap;
        break;
      case WalkItem::kFlatten:
        node.kind = Node::Kind::kFlatten;
        break;
    }
    embed->nodes_.push_back(std::move(node));
  }
  if (projection) {
    Node node;
    node.kind = Node::Kind::kLinear;
    node.linear = fold_linear(*projection, next_q());
    embed->nodes_.push_back(std::move(node));
  }
  return embed;
}

Tensor QuantizedEmbed::forward(const Tensor& images) const {
  Tensor x = images;
  for (const Node& n : nodes_) {
    switch (n.kind) {
      case Node::Kind::kConv:
        x = n.conv.forward(x);
        break;
      case Node::Kind::kBlock: {
        Tensor h = n.block.conv1.forward(x);
        h = n.block.conv2.forward(h);
        if (n.block.conv3) h = n.block.conv3->forward(h);
        if (n.block.down) {
          Tensor identity = n.block.down->forward(x);
          add_relu_inplace(h, identity);
        } else {
          add_relu_inplace(h, x);
        }
        x = std::move(h);
        break;
      }
      case Node::Kind::kMaxPool:
        x = maxpool_f(x, n.pool_k, n.pool_stride);
        break;
      case Node::Kind::kGap:
        x = gap_f(x);
        break;
      case Node::Kind::kFlatten:
        x = x.reshape({x.size(0), x.numel() / x.size(0)});
        break;
      case Node::Kind::kLinear:
        x = n.linear.forward(x);
        break;
    }
  }
  return x;
}

QuantizedEmbed::QuantInfo QuantizedEmbed::info() const {
  QuantInfo qi;
  qi.method = table_.method;
  auto count_conv = [&](const QuantizedConv2d& c) {
    ++qi.n_conv;
    qi.weight_bytes += c.weight.size();
  };
  for (const Node& n : nodes_) {
    switch (n.kind) {
      case Node::Kind::kConv:
        count_conv(n.conv);
        break;
      case Node::Kind::kBlock:
        count_conv(n.block.conv1);
        count_conv(n.block.conv2);
        if (n.block.conv3) count_conv(*n.block.conv3);
        if (n.block.down) count_conv(*n.block.down);
        break;
      case Node::Kind::kLinear:
        ++qi.n_linear;
        qi.weight_bytes += n.linear.weight.size();
        break;
      default:
        break;
    }
  }
  return qi;
}

void QuantizedEmbed::save(std::ostream& os) const {
  os.write(kQuantMagic, 4);
  write_pod<std::uint32_t>(os, kQuantFormatVersion);
  save_calibration(os, table_);
  write_pod<std::uint64_t>(os, nodes_.size());
  for (const Node& n : nodes_) {
    write_pod<std::uint8_t>(os, static_cast<std::uint8_t>(n.kind));
    switch (n.kind) {
      case Node::Kind::kConv:
        write_conv(os, n.conv);
        break;
      case Node::Kind::kBlock:
        write_pod<std::uint8_t>(os, n.block.conv3 ? 1 : 0);
        write_pod<std::uint8_t>(os, n.block.down ? 1 : 0);
        write_conv(os, n.block.conv1);
        write_conv(os, n.block.conv2);
        if (n.block.conv3) write_conv(os, *n.block.conv3);
        if (n.block.down) write_conv(os, *n.block.down);
        break;
      case Node::Kind::kMaxPool:
        write_pod<std::uint64_t>(os, n.pool_k);
        write_pod<std::uint64_t>(os, n.pool_stride);
        break;
      case Node::Kind::kGap:
      case Node::Kind::kFlatten:
        break;
      case Node::Kind::kLinear:
        write_linear(os, n.linear);
        break;
    }
  }
}

std::shared_ptr<QuantizedEmbed> QuantizedEmbed::load(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  if (!is || std::string(magic, 4) != std::string(kQuantMagic, 4))
    throw std::runtime_error("quant: bad magic (not a quantized-embed record)");
  const auto version = read_pod<std::uint32_t>(is, "quant format version");
  if (version == 0 || version > kQuantFormatVersion)
    throw std::runtime_error("quant: unsupported quant record version " +
                             std::to_string(version));
  auto embed = std::shared_ptr<QuantizedEmbed>(new QuantizedEmbed());
  embed->table_ = load_calibration(is);
  const auto n_nodes = read_pod<std::uint64_t>(is, "quant node count");
  if (n_nodes > 4096) throw std::runtime_error("quant: corrupt record 'quant node count'");
  for (std::uint64_t i = 0; i < n_nodes; ++i) {
    const auto kind = read_pod<std::uint8_t>(is, "quant node kind");
    Node node;
    switch (static_cast<Node::Kind>(kind)) {
      case Node::Kind::kConv:
        node.kind = Node::Kind::kConv;
        node.conv = read_conv(is);
        break;
      case Node::Kind::kBlock: {
        node.kind = Node::Kind::kBlock;
        const bool has3 = read_pod<std::uint8_t>(is, "block conv3 flag") != 0;
        const bool hasdown = read_pod<std::uint8_t>(is, "block downsample flag") != 0;
        node.block.conv1 = read_conv(is);
        node.block.conv2 = read_conv(is);
        if (has3) node.block.conv3 = std::make_unique<QuantizedConv2d>(read_conv(is));
        if (hasdown) node.block.down = std::make_unique<QuantizedConv2d>(read_conv(is));
        break;
      }
      case Node::Kind::kMaxPool:
        node.kind = Node::Kind::kMaxPool;
        node.pool_k = static_cast<std::size_t>(read_pod<std::uint64_t>(is, "pool kernel"));
        node.pool_stride = static_cast<std::size_t>(read_pod<std::uint64_t>(is, "pool stride"));
        if (node.pool_k == 0 || node.pool_stride == 0)
          throw std::runtime_error("quant: corrupt record 'pool geometry'");
        break;
      case Node::Kind::kGap:
        node.kind = Node::Kind::kGap;
        break;
      case Node::Kind::kFlatten:
        node.kind = Node::Kind::kFlatten;
        break;
      case Node::Kind::kLinear:
        node.kind = Node::Kind::kLinear;
        node.linear = read_linear(is);
        break;
      default:
        throw std::runtime_error("quant: corrupt record 'quant node kind': " +
                                 std::to_string(kind));
    }
    embed->nodes_.push_back(std::move(node));
  }
  return embed;
}

}  // namespace hdczsc::nn
