// Layer abstraction with explicit forward/backward (define-by-layer
// backpropagation, the style of classic C++ DNN frameworks).
//
// Each layer caches what it needs during forward(train=true) and consumes
// the cache in backward(). Parameters accumulate gradients; optimizers
// consume Parameter::grad and the trainer zeroes them between steps.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace hdczsc::nn {

using tensor::Shape;
using tensor::Tensor;

/// A named reference to a non-trainable state tensor (BatchNorm running
/// statistics). Buffers are invisible to optimizers but must be persisted
/// alongside the parameters for eval-mode forwards to be reproducible.
struct BufferRef {
  std::string name;
  Tensor* tensor = nullptr;
};

/// A learnable tensor with its gradient accumulator.
struct Parameter {
  Tensor value;
  Tensor grad;
  std::string name;
  bool requires_grad = true;

  explicit Parameter(Tensor v = {}, std::string n = "")
      : value(std::move(v)), grad(value.shape()), name(std::move(n)) {}

  void zero_grad() { grad.zero(); }
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass. When `train` is true the layer caches activations for
  /// backward() and uses batch statistics (BatchNorm) / active dropout.
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  /// Backward pass: takes dL/d(output), accumulates parameter grads,
  /// returns dL/d(input). Must be preceded by forward(train=true).
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// All learnable parameters (empty for stateless layers).
  virtual std::vector<Parameter*> parameters() { return {}; }

  /// All non-trainable state tensors (empty for layers whose eval forward
  /// depends only on parameters).
  virtual std::vector<BufferRef> buffers() { return {}; }

  virtual std::string name() const = 0;

  /// Freeze/unfreeze: frozen layers still backprop input grads but their
  /// parameters are marked requires_grad=false so optimizers skip them.
  void set_frozen(bool frozen) {
    for (Parameter* p : parameters()) p->requires_grad = !frozen;
  }

  /// Total parameter element count.
  std::size_t parameter_count() {
    std::size_t n = 0;
    for (Parameter* p : parameters()) n += p->value.numel();
    return n;
  }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace hdczsc::nn
