// 2-D convolution via whole-batch im2col + one GEMM per direction.
// Input layout is NCHW; weight layout is [out_c, in_c, kh, kw].
//
// forward unfolds the entire batch into a single [in_c*kh*kw, B*oh*ow]
// column matrix (each image owns a contiguous column slice) and runs one
// blocked GEMM against the flattened weights; backward reuses the same
// matrix for dW (one GEMM against the gathered output grads) and dx (one
// transposed GEMM + per-image col2im). All workspaces live in thread-local
// tensor::scratch slots, so steady-state passes perform no workspace
// allocation (asserted via scratch_grow_count in tests; the output/grad
// Tensors themselves are still allocated per call) and concurrent eval-mode
// forwards on a shared layer stay race-free.
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace hdczsc::nn {

/// Unfold input [C, H, W] into columns [C*kh*kw, out_h*out_w]. When
/// `col_stride` is nonzero the destination rows are spaced `col_stride`
/// floats apart (used to write one image's slice of a whole-batch column
/// matrix); 0 means tightly packed (out_h*out_w).
void im2col(const float* input, std::size_t channels, std::size_t height, std::size_t width,
            std::size_t kh, std::size_t kw, std::size_t stride, std::size_t pad, float* columns,
            std::size_t col_stride = 0);

/// Fold columns back into an input-shaped gradient (accumulates).
/// `col_stride` mirrors im2col: spacing between source rows (0 = tight).
void col2im(const float* columns, std::size_t channels, std::size_t height, std::size_t width,
            std::size_t kh, std::size_t kw, std::size_t stride, std::size_t pad, float* input,
            std::size_t col_stride = 0);

class Conv2d : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t stride, std::size_t pad, util::Rng& rng, bool bias = false);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "Conv2d"; }

  std::size_t in_channels() const { return in_c_; }
  std::size_t out_channels() const { return out_c_; }
  std::size_t kernel() const { return k_; }
  std::size_t stride() const { return stride_; }
  std::size_t padding() const { return pad_; }
  bool has_bias() const { return has_bias_; }
  /// Direct parameter handles (the post-training quantizer folds BN scale
  /// into the weights and needs the raw values; see nn/quant.hpp).
  Parameter& weight() { return w_; }
  Parameter& bias() { return b_; }

  /// Output spatial size for a given input size.
  std::size_t out_size(std::size_t in) const { return (in + 2 * pad_ - k_) / stride_ + 1; }

 private:
  std::size_t in_c_, out_c_, k_, stride_, pad_;
  bool has_bias_;
  Parameter w_, b_;
  Tensor cached_input_;
};

}  // namespace hdczsc::nn
