// 2-D convolution via im2col + GEMM, with full backward (dW, db, dx).
// Input layout is NCHW; weight layout is [out_c, in_c, kh, kw].
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace hdczsc::nn {

/// Unfold input [C, H, W] into columns [C*kh*kw, out_h*out_w].
void im2col(const float* input, std::size_t channels, std::size_t height, std::size_t width,
            std::size_t kh, std::size_t kw, std::size_t stride, std::size_t pad, float* columns);

/// Fold columns back into an input-shaped gradient (accumulates).
void col2im(const float* columns, std::size_t channels, std::size_t height, std::size_t width,
            std::size_t kh, std::size_t kw, std::size_t stride, std::size_t pad, float* input);

class Conv2d : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t stride, std::size_t pad, util::Rng& rng, bool bias = false);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "Conv2d"; }

  std::size_t in_channels() const { return in_c_; }
  std::size_t out_channels() const { return out_c_; }
  std::size_t kernel() const { return k_; }
  std::size_t stride() const { return stride_; }
  std::size_t padding() const { return pad_; }

  /// Output spatial size for a given input size.
  std::size_t out_size(std::size_t in) const { return (in + 2 * pad_ - k_) / stride_ + 1; }

 private:
  std::size_t in_c_, out_c_, k_, stride_, pad_;
  bool has_bias_;
  Parameter w_, b_;
  Tensor cached_input_;
};

}  // namespace hdczsc::nn
