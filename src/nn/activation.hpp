// Stateless activations (ReLU, LeakyReLU, Tanh, Sigmoid) and Dropout.
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace hdczsc::nn {

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

class LeakyReLU : public Layer {
 public:
  explicit LeakyReLU(float slope = 0.2f) : slope_(slope) {}
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "LeakyReLU"; }

 private:
  float slope_;
  Tensor cached_input_;
};

class Tanh : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "Tanh"; }

 private:
  Tensor cached_output_;
};

class Sigmoid : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "Sigmoid"; }

 private:
  Tensor cached_output_;
};

/// Inverted dropout: activations are scaled by 1/(1-p) at train time so
/// inference is a no-op.
class Dropout : public Layer {
 public:
  Dropout(float p, util::Rng& rng) : p_(p), rng_(&rng) {}
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "Dropout"; }

 private:
  float p_;
  util::Rng* rng_;
  Tensor mask_;
};

}  // namespace hdczsc::nn
