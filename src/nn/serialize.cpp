#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

#include "tensor/serialize.hpp"

namespace hdczsc::nn {

namespace {

using tensor::io::read_pod;
using tensor::io::read_string;
using tensor::io::write_pod;
using tensor::io::write_string;

/// One destination slot of a record stream: its expected name and the tensor
/// the staged value will be written into.
struct RecordSlot {
  const std::string* name;
  tensor::Tensor* dest;
};

/// Read a count-prefixed (name, tensor) record stream into staged tensors,
/// enforcing count/name/shape agreement with `slots`. Every failure —
/// including a truncation mid-record — names the record being read, and
/// nothing is written into the destinations until the whole stream parsed.
void load_records(std::istream& is, const char* what, const std::vector<RecordSlot>& slots) {
  std::uint64_t count = 0;
  try {
    count = read_pod<std::uint64_t>(is);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string(what) + ": truncated before record count (" +
                             e.what() + ")");
  }
  if (count != slots.size())
    throw std::runtime_error(std::string(what) + ": record count mismatch (file " +
                             std::to_string(count) + ", model " +
                             std::to_string(slots.size()) + ")");
  std::vector<tensor::Tensor> staged;
  staged.reserve(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const std::string& expect = *slots[i].name;
    std::string name;
    tensor::Tensor t;
    try {
      name = read_string(is);
      t = tensor::load_tensor(is);
    } catch (const std::exception& e) {
      throw std::runtime_error(std::string(what) + ": corrupt or truncated record " +
                               std::to_string(i) + " ('" + expect + "'): " + e.what());
    }
    if (name != expect)
      throw std::runtime_error(std::string(what) + ": name mismatch at index " +
                               std::to_string(i) + " (file '" + name + "', model '" +
                               expect + "')");
    if (t.shape() != slots[i].dest->shape())
      throw std::runtime_error(std::string(what) + ": shape mismatch for '" + name +
                               "' (file " + tensor::shape_str(t.shape()) + ", model " +
                               tensor::shape_str(slots[i].dest->shape()) + ")");
    staged.push_back(std::move(t));
  }
  for (std::size_t i = 0; i < slots.size(); ++i) *slots[i].dest = std::move(staged[i]);
}

}  // namespace

void save_parameters(std::ostream& os, const std::vector<Parameter*>& params) {
  write_pod<std::uint64_t>(os, params.size());
  for (const Parameter* p : params) {
    write_string(os, p->name);
    tensor::save_tensor(os, p->value);
  }
}

void load_parameters(std::istream& is, const std::vector<Parameter*>& params) {
  std::vector<RecordSlot> slots;
  slots.reserve(params.size());
  for (Parameter* p : params) slots.push_back({&p->name, &p->value});
  load_records(is, "load_parameters", slots);
}

void save_buffers(std::ostream& os, const std::vector<BufferRef>& bufs) {
  write_pod<std::uint64_t>(os, bufs.size());
  for (const BufferRef& b : bufs) {
    write_string(os, b.name);
    tensor::save_tensor(os, *b.tensor);
  }
}

void load_buffers(std::istream& is, const std::vector<BufferRef>& bufs) {
  std::vector<RecordSlot> slots;
  slots.reserve(bufs.size());
  for (const BufferRef& b : bufs) slots.push_back({&b.name, b.tensor});
  load_records(is, "load_buffers", slots);
}

void save_parameters_file(const std::string& path, const std::vector<Parameter*>& params) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("save_parameters_file: cannot open " + path);
  save_parameters(f, params);
}

void load_parameters_file(const std::string& path, const std::vector<Parameter*>& params) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("load_parameters_file: cannot open " + path);
  load_parameters(f, params);
}

}  // namespace hdczsc::nn
