#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

#include "tensor/serialize.hpp"

namespace hdczsc::nn {

namespace {

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("nn::serialize: truncated stream");
  return v;
}

void write_string(std::ostream& os, const std::string& s) {
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const auto n = read_pod<std::uint32_t>(is);
  if (n > (1u << 20)) throw std::runtime_error("nn::serialize: implausible string length");
  std::string s(n, '\0');
  is.read(s.data(), n);
  if (!is) throw std::runtime_error("nn::serialize: truncated stream");
  return s;
}

}  // namespace

void save_parameters(std::ostream& os, const std::vector<Parameter*>& params) {
  write_pod<std::uint64_t>(os, params.size());
  for (const Parameter* p : params) {
    write_string(os, p->name);
    tensor::save_tensor(os, p->value);
  }
}

void load_parameters(std::istream& is, const std::vector<Parameter*>& params) {
  const auto count = read_pod<std::uint64_t>(is);
  if (count != params.size())
    throw std::runtime_error("load_parameters: parameter count mismatch (file " +
                             std::to_string(count) + ", model " +
                             std::to_string(params.size()) + ")");
  // Stage everything first so a failure cannot leave the model half-loaded.
  std::vector<tensor::Tensor> staged;
  staged.reserve(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    const std::string name = read_string(is);
    if (name != params[i]->name)
      throw std::runtime_error("load_parameters: name mismatch at index " +
                               std::to_string(i) + " (file '" + name + "', model '" +
                               params[i]->name + "')");
    tensor::Tensor t = tensor::load_tensor(is);
    if (t.shape() != params[i]->value.shape())
      throw std::runtime_error("load_parameters: shape mismatch for '" + name + "'");
    staged.push_back(std::move(t));
  }
  for (std::size_t i = 0; i < params.size(); ++i) params[i]->value = staged[i];
}

void save_parameters_file(const std::string& path, const std::vector<Parameter*>& params) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("save_parameters_file: cannot open " + path);
  save_parameters(f, params);
}

void load_parameters_file(const std::string& path, const std::vector<Parameter*>& params) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("load_parameters_file: cannot open " + path);
  load_parameters(f, params);
}

}  // namespace hdczsc::nn
