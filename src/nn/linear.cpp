#include "nn/linear.hpp"

#include "nn/init.hpp"
#include "tensor/ops.hpp"

namespace hdczsc::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, util::Rng& rng, bool bias)
    : in_(in_features), out_(out_features), has_bias_(bias) {
  Tensor w({out_, in_});
  xavier_uniform(w, in_, out_, rng);
  w_ = Parameter(std::move(w), "linear.weight");
  b_ = Parameter(Tensor({out_}), "linear.bias");
}

Tensor Linear::forward(const Tensor& x, bool train) {
  if (x.dim() != 2 || x.size(1) != in_)
    throw std::invalid_argument("Linear::forward: input " + tensor::shape_str(x.shape()) +
                                " incompatible with in_features=" + std::to_string(in_));
  if (train) cached_input_ = x;
  Tensor y = tensor::matmul_nt(x, w_.value);  // [B, out]
  if (has_bias_) {
    const std::size_t batch = y.size(0);
    float* Y = y.data();
    const float* B = b_.value.data();
    for (std::size_t i = 0; i < batch; ++i)
      for (std::size_t j = 0; j < out_; ++j) Y[i * out_ + j] += B[j];
  }
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  if (cached_input_.empty())
    throw std::logic_error("Linear::backward called before forward(train=true)");
  // dW = grad_out^T x, db = sum_rows(grad_out), dx = grad_out W.
  Tensor dw = tensor::matmul_tn(grad_out, cached_input_);  // [out, in]
  w_.grad.add_scaled(dw, 1.0f);
  if (has_bias_) {
    Tensor db = tensor::sum_rows(grad_out);
    b_.grad.add_scaled(db, 1.0f);
  }
  return tensor::matmul(grad_out, w_.value);  // [B, in]
}

std::vector<Parameter*> Linear::parameters() {
  if (has_bias_) return {&w_, &b_};
  return {&w_};
}

}  // namespace hdczsc::nn
