// Checkpointing for layer stacks: save/load every Parameter of a model by
// (order, name, shape) — used to cache the phase-I/II matured image encoder
// between experiments, mirroring how the paper reuses its pre-trained
// backbone across phases.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace hdczsc::nn {

/// Save parameters as a count-prefixed sequence of (name, tensor) records.
void save_parameters(std::ostream& os, const std::vector<Parameter*>& params);
void save_parameters_file(const std::string& path, const std::vector<Parameter*>& params);

/// Load parameters back into the same layer stack. Count, order, names and
/// shapes must match exactly (same architecture); otherwise throws and
/// leaves the model untouched.
void load_parameters(std::istream& is, const std::vector<Parameter*>& params);
void load_parameters_file(const std::string& path, const std::vector<Parameter*>& params);

}  // namespace hdczsc::nn
