// Checkpointing for layer stacks: save/load every Parameter of a model by
// (order, name, shape) — used to cache the phase-I/II matured image encoder
// between experiments, mirroring how the paper reuses its pre-trained
// backbone across phases.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace hdczsc::nn {

/// Save parameters as a count-prefixed sequence of (name, tensor) records.
void save_parameters(std::ostream& os, const std::vector<Parameter*>& params);
void save_parameters_file(const std::string& path, const std::vector<Parameter*>& params);

/// Load parameters back into the same layer stack. Count, order, names and
/// shapes must match exactly (same architecture); otherwise throws — naming
/// the offending record — and leaves the model untouched (all records are
/// staged before any parameter is written).
void load_parameters(std::istream& is, const std::vector<Parameter*>& params);
void load_parameters_file(const std::string& path, const std::vector<Parameter*>& params);

/// Save non-trainable state tensors (Layer::buffers(): BatchNorm running
/// statistics) in the same count-prefixed (name, tensor) record format.
/// Buffers are not covered by save_parameters but are required for loaded
/// models to reproduce eval-mode forwards bit-for-bit.
void save_buffers(std::ostream& os, const std::vector<BufferRef>& bufs);

/// Load buffers back; same all-or-nothing contract as load_parameters.
void load_buffers(std::istream& is, const std::vector<BufferRef>& bufs);

}  // namespace hdczsc::nn
