// Spatial pooling layers over NCHW maps, plus Flatten.
#pragma once

#include "nn/layer.hpp"

namespace hdczsc::nn {

class MaxPool2d : public Layer {
 public:
  MaxPool2d(std::size_t kernel, std::size_t stride) : k_(kernel), stride_(stride) {}
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "MaxPool2d"; }

  std::size_t kernel() const { return k_; }
  std::size_t stride() const { return stride_; }

 private:
  std::size_t k_, stride_;
  Shape cached_in_shape_;
  std::vector<std::size_t> argmax_;  // flat input index of each output max
};

/// Global average pooling: [B,C,H,W] -> [B,C].
class GlobalAvgPool : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "GlobalAvgPool"; }

 private:
  Shape cached_in_shape_;
};

/// Flatten [B, ...] -> [B, prod(...)]. Shape bookkeeping only.
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "Flatten"; }

 private:
  Shape cached_in_shape_;
};

}  // namespace hdczsc::nn
