#include "nn/batchnorm.hpp"

#include <cmath>

namespace hdczsc::nn {

BatchNorm2d::BatchNorm2d(std::size_t channels, float momentum, float eps)
    : channels_(channels), momentum_(momentum), eps_(eps),
      gamma_(Tensor({channels}, 1.0f), "bn.gamma"),
      beta_(Tensor({channels}), "bn.beta"),
      running_mean_({channels}),
      running_var_(Shape{channels}, 1.0f) {}

Tensor BatchNorm2d::forward(const Tensor& x, bool train) {
  if (x.dim() != 4 || x.size(1) != channels_)
    throw std::invalid_argument("BatchNorm2d::forward: input " + tensor::shape_str(x.shape()) +
                                " incompatible with channels=" + std::to_string(channels_));
  const std::size_t batch = x.size(0), c = channels_, h = x.size(2), w = x.size(3);
  const std::size_t spatial = h * w;
  const std::size_t n = batch * spatial;  // samples per channel

  Tensor out(x.shape());
  const float* X = x.data();
  float* O = out.data();

  Tensor mean({c}), var({c});
  if (train) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      double s = 0.0;
      for (std::size_t b = 0; b < batch; ++b) {
        const float* p = X + (b * c + ch) * spatial;
        for (std::size_t i = 0; i < spatial; ++i) s += p[i];
      }
      mean[ch] = static_cast<float>(s / static_cast<double>(n));
      double v = 0.0;
      for (std::size_t b = 0; b < batch; ++b) {
        const float* p = X + (b * c + ch) * spatial;
        for (std::size_t i = 0; i < spatial; ++i) {
          const double d = p[i] - mean[ch];
          v += d * d;
        }
      }
      var[ch] = static_cast<float>(v / static_cast<double>(n));
      running_mean_[ch] = (1.0f - momentum_) * running_mean_[ch] + momentum_ * mean[ch];
      // Unbiased variance for the running estimate, as in torch.
      const float unbiased = n > 1 ? var[ch] * static_cast<float>(n) / static_cast<float>(n - 1)
                                   : var[ch];
      running_var_[ch] = (1.0f - momentum_) * running_var_[ch] + momentum_ * unbiased;
    }
  } else {
    mean = running_mean_.clone();
    var = running_var_.clone();
  }

  Tensor inv_std({c});
  for (std::size_t ch = 0; ch < c; ++ch)
    inv_std[ch] = 1.0f / std::sqrt(var[ch] + eps_);

  Tensor xhat(x.shape());
  float* XH = xhat.data();
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float m = mean[ch], is = inv_std[ch];
      const float g = gamma_.value[ch], be = beta_.value[ch];
      const float* p = X + (b * c + ch) * spatial;
      float* xh = XH + (b * c + ch) * spatial;
      float* o = O + (b * c + ch) * spatial;
      for (std::size_t i = 0; i < spatial; ++i) {
        xh[i] = (p[i] - m) * is;
        o[i] = g * xh[i] + be;
      }
    }
  }

  if (train) {
    cached_xhat_ = xhat;
    cached_inv_std_ = inv_std;
    cached_shape_ = x.shape();
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  if (cached_xhat_.empty())
    throw std::logic_error("BatchNorm2d::backward called before forward(train=true)");
  const std::size_t batch = cached_shape_[0], c = channels_, h = cached_shape_[2],
                    w = cached_shape_[3];
  const std::size_t spatial = h * w;
  const double n = static_cast<double>(batch * spatial);

  Tensor dx(cached_shape_);
  const float* G = grad_out.data();
  const float* XH = cached_xhat_.data();
  float* DX = dx.data();

  for (std::size_t ch = 0; ch < c; ++ch) {
    // Channel-wise sums needed by the BN backward formula.
    double sum_g = 0.0, sum_gx = 0.0;
    for (std::size_t b = 0; b < batch; ++b) {
      const float* g = G + (b * c + ch) * spatial;
      const float* xh = XH + (b * c + ch) * spatial;
      for (std::size_t i = 0; i < spatial; ++i) {
        sum_g += g[i];
        sum_gx += static_cast<double>(g[i]) * xh[i];
      }
    }
    gamma_.grad[ch] += static_cast<float>(sum_gx);
    beta_.grad[ch] += static_cast<float>(sum_g);

    const double gm = gamma_.value[ch];
    const double is = cached_inv_std_[ch];
    const double k1 = sum_g / n;
    const double k2 = sum_gx / n;
    for (std::size_t b = 0; b < batch; ++b) {
      const float* g = G + (b * c + ch) * spatial;
      const float* xh = XH + (b * c + ch) * spatial;
      float* d = DX + (b * c + ch) * spatial;
      for (std::size_t i = 0; i < spatial; ++i)
        d[i] = static_cast<float>(gm * is * (g[i] - k1 - xh[i] * k2));
    }
  }
  return dx;
}

}  // namespace hdczsc::nn
