// Sequential container: owns a list of layers, forwards/backwards through
// them in order, and aggregates their parameters.
#pragma once

#include "nn/layer.hpp"

namespace hdczsc::nn {

class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Append a layer (takes ownership); returns a typed handle to it.
  template <typename L, typename... Args>
  L* emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  void push_back(LayerPtr layer) { layers_.push_back(std::move(layer)); }

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::vector<BufferRef> buffers() override;
  std::string name() const override { return "Sequential"; }

  std::size_t size() const { return layers_.size(); }
  Layer& operator[](std::size_t i) { return *layers_.at(i); }

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace hdczsc::nn
