// Weight initialization schemes (Kaiming/He for conv+ReLU stacks,
// Xavier/Glorot for linear projections).
#pragma once

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace hdczsc::nn {

/// He-normal: N(0, sqrt(2 / fan_in)).
void kaiming_normal(tensor::Tensor& w, std::size_t fan_in, util::Rng& rng);

/// Glorot-uniform: U(-a, a), a = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(tensor::Tensor& w, std::size_t fan_in, std::size_t fan_out, util::Rng& rng);

}  // namespace hdczsc::nn
