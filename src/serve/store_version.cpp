#include "serve/store_version.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hdczsc::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_bytes(std::uint64_t h, const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t extend_content_checksum(std::uint64_t h, const PrototypeStore& store,
                                      const std::vector<std::uint8_t>& seen_mask,
                                      std::size_t begin_row) {
  const std::size_t d = store.dim();
  const std::size_t wpr = store.words_per_row();
  const float* F = store.float_rows();
  const std::uint64_t* P = store.packed_data();
  for (std::size_t c = begin_row; c < store.n_classes(); ++c) {
    h = fnv_bytes(h, F + c * d, d * sizeof(float));
    h = fnv_bytes(h, P + c * wpr, wpr * sizeof(std::uint64_t));
    const unsigned char seen = seen_mask.empty() || seen_mask[c] != 0 ? 1 : 0;
    h = fnv_bytes(h, &seen, 1);
  }
  return h;
}

std::uint64_t content_checksum(const PrototypeStore& store,
                               const std::vector<std::uint8_t>& seen_mask) {
  return extend_content_checksum(kFnvOffset, store, seen_mask, 0);
}

std::vector<std::uint8_t> extend_seen_mask(const std::vector<std::uint8_t>& base_mask,
                                           std::size_t base_rows,
                                           const std::vector<std::uint8_t>& flags,
                                           std::size_t n_new) {
  std::vector<std::uint8_t> mask;
  if (base_mask.empty())
    mask.assign(base_rows, 1);
  else
    mask = base_mask;
  mask.reserve(base_rows + n_new);
  for (std::size_t i = 0; i < n_new; ++i)
    mask.push_back(!flags.empty() && flags[i] != 0 ? 1 : 0);
  if (std::all_of(mask.begin(), mask.end(), [](std::uint8_t m) { return m != 0; }))
    mask.clear();  // all-seen ≡ no partition
  return mask;
}

std::vector<std::uint32_t> extend_ivf_assignments(const tensor::Tensor& centroids,
                                                  std::vector<std::uint32_t> assignments,
                                                  const PrototypeStore& grown,
                                                  std::size_t first_new_row) {
  const std::size_t cc = centroids.size(0);
  const std::size_t d = centroids.size(1);
  const float* cent = centroids.data();
  std::vector<std::uint32_t> out = std::move(assignments);
  out.reserve(grown.n_classes());
  for (std::size_t r = first_new_row; r < grown.n_classes(); ++r) {
    const float* row = grown.float_rows() + r * d;
    std::uint32_t best = 0;
    float best_dot = -std::numeric_limits<float>::infinity();
    for (std::size_t c = 0; c < cc; ++c) {
      float dot = 0.0f;
      const float* cr = cent + c * d;
      for (std::size_t j = 0; j < d; ++j) dot += row[j] * cr[j];
      if (dot > best_dot) {
        best_dot = dot;
        best = static_cast<std::uint32_t>(c);
      }
    }
    out.push_back(best);
  }
  return out;
}

float calibrate_seen_penalty(const PrototypeStore& store,
                             const std::vector<std::uint8_t>& seen_mask,
                             const GzslCalibration& calibration, bool binary) {
  const std::size_t C = store.n_classes();
  if (seen_mask.empty() || seen_mask.size() != C) return 0.0f;  // no partition
  bool any_seen = false, any_unseen = false;
  for (std::uint8_t m : seen_mask) (m != 0 ? any_seen : any_unseen) = true;
  if (!any_seen || !any_unseen) return 0.0f;

  const tensor::Tensor& emb = calibration.embeddings;
  if (emb.dim() != 2 || emb.size(0) == 0 || emb.size(1) != store.dim()) return 0.0f;
  const std::size_t N = std::min(emb.size(0), calibration.labels.size());
  if (N == 0) return 0.0f;

  // Unpenalized logits once; every candidate penalty is then a pure
  // per-sample comparison between the best seen and best unseen column.
  const tensor::Tensor logits =
      binary ? store.score_binary(emb) : store.score_float(emb);

  struct Sample {
    std::size_t label = 0;
    bool label_seen = false;
    float best_seen = 0.0f;
    float best_unseen = 0.0f;
    std::size_t seen_arg = 0;
    std::size_t unseen_arg = 0;
  };
  std::vector<Sample> samples;
  samples.reserve(N);
  const float* L = logits.data();
  for (std::size_t i = 0; i < N; ++i) {
    const std::size_t label = calibration.labels[i];
    if (label >= C) continue;  // split predates an append; skip
    Sample s;
    s.label = label;
    s.label_seen = seen_mask[label] != 0;
    s.best_seen = -std::numeric_limits<float>::infinity();
    s.best_unseen = -std::numeric_limits<float>::infinity();
    const float* row = L + i * C;
    for (std::size_t c = 0; c < C; ++c) {
      if (seen_mask[c] != 0) {
        if (row[c] > s.best_seen) {
          s.best_seen = row[c];
          s.seen_arg = c;
        }
      } else if (row[c] > s.best_unseen) {
        s.best_unseen = row[c];
        s.unseen_arg = c;
      }
    }
    samples.push_back(s);
  }
  if (samples.empty()) return 0.0f;

  // Candidate penalties: 0, plus one just past each sample's seen-unseen
  // decision margin — the exact points where a decision flips domain.
  std::vector<float> candidates{0.0f};
  for (const Sample& s : samples) {
    const float margin = s.best_seen - s.best_unseen;
    if (margin >= 0.0f && std::isfinite(margin))
      candidates.push_back(std::nextafter(margin, std::numeric_limits<float>::max()));
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());

  const auto harmonic = [&](float p) {
    std::size_t seen_total = 0, seen_ok = 0, unseen_total = 0, unseen_ok = 0;
    for (const Sample& s : samples) {
      // The penalized argmax decides seen iff best_seen - p still beats
      // best_unseen (first-max tie rule: the lower column index wins).
      const float ps = s.best_seen - p;
      const bool pick_seen =
          ps > s.best_unseen || (ps == s.best_unseen && s.seen_arg < s.unseen_arg);
      const std::size_t pred = pick_seen ? s.seen_arg : s.unseen_arg;
      if (s.label_seen) {
        ++seen_total;
        seen_ok += pred == s.label;
      } else {
        ++unseen_total;
        unseen_ok += pred == s.label;
      }
    }
    const double as = seen_total ? static_cast<double>(seen_ok) / seen_total : 0.0;
    const double au = unseen_total ? static_cast<double>(unseen_ok) / unseen_total : 0.0;
    return as + au > 0.0 ? 2.0 * as * au / (as + au) : 0.0;
  };

  float best_p = 0.0f;
  double best_h = -1.0;
  for (float p : candidates) {
    const double h = harmonic(p);
    if (h > best_h) {  // ties keep the earlier (smaller) penalty
      best_h = h;
      best_p = p;
    }
  }
  return best_p;
}

}  // namespace hdczsc::serve
