// Versioned on-disk snapshot format (".hdcsnap") — the deployable artifact
// of a trained HDC-ZSC model, so server fleets cold-start from a file
// instead of retraining (the Triton/TensorRT "frozen engine" pattern).
//
// The full record table, field widths and versioning rules live in
// docs/snapshot_format.md; the shape of the file (version 3):
//
//   "HDCS"  magic, u32 format version
//   -- model architecture (enough to rebuild the layer stack exactly) --
//   arch string, projection dim d, use_projection, attribute-encoder
//   kind + MLP hidden width, α, similarity temperature
//   -- model state --
//   nn::save_parameters records, nn::save_buffers records (BatchNorm
//   running statistics), optional HDC dictionary tensor B [α, d]
//   -- frozen serving artifacts --
//   class-attribute matrix A [C, α]; expansion k, LSH seed, store scale;
//   normalized float prototype rows [C, d]; packed binary words
//   -- serving layout (version ≥ 2) --
//   u64     preferred shard count S (sharded_store.hpp scatter/gather
//           layout hint; version-1 files carry no record and load as
//           S = 1, the flat store)
//   -- GZSL label-space partition (version ≥ 3) --
//   u64     seen-class count n_seen
//   u64[]   seen mask, ⌈C/64⌉ words, bit c = 1 iff serving label c is a
//           seen class (tail bits zero). Version-1/2 files carry no
//           record and load with no partition — every class seen.
//   -- INT8 quantization record pair (version ≥ 4) --
//   u8      has_quant flag; when set, two records follow:
//   record  activation calibration table (nn::save_calibration)
//   record  quantized embed graph — "HQNT" magic, BN-folded per-channel
//           int8 weights + per-op input qparams (nn::QuantizedEmbed::save).
//           Pre-v4 files carry neither and load float-only.
//   -- IVF coarse-index record pair (version ≥ 5) --
//   u8      has_ivf flag; when set, two records follow:
//   record  centroid tensor [Cc, d] — the unit-norm spherical k-means
//           centroids of the IVF coarse quantizer (ann_store.hpp)
//   u64     assignment count (must equal C), then u32[C] per-row centroid
//           assignments, each < Cc. Inverted lists and packed centroid
//           codes are rebuilt deterministically from these on load, so a
//           loaded index probes identically to the saved one. Pre-v5
//           files carry neither and load exact-only (engines rebuild on
//           demand).
//   -- evolution lineage (version ≥ 6) --
//   u64     store version counter (0 = fresh build; advanced by delta
//           compaction — see serve/store_version.hpp)
//   f32     auto-calibrated GZSL seen-penalty (0 = none persisted)
//   u64     FNV-1a content checksum over the per-row store stream
//           (serve::content_checksum) — validated against the loaded rows,
//           and the anchor delta files chain from. Pre-v6 files carry none
//           and load with version 0 / penalty 0.
//   "PANS"  end marker (truncation tripwire)
//
// Delta snapshots (".hdcdelta", magic "HDCD") carry *only* the classes
// appended since a base artifact: the base's row count / version /
// content checksum (rejected on mismatch before anything is applied),
// the new class-attribute rows, the pre-normalized float rows and packed
// binary words (adopted verbatim, so base + delta chain reconstitutes
// bit-identically to the equivalent full snapshot), per-row seen flags,
// optional IVF assignments, and the end-state checksum the chained apply
// must reach. See docs/evolution.md.
//
// Both prototype forms are stored verbatim (not recomputed on load), and
// BatchNorm running statistics ride along with the parameters, so a loaded
// snapshot serves scores bit-identical to the one that was saved — float
// and packed-binary paths alike. Loaders accept every version up to the
// current one (new records are appended, so older files parse under the
// newer reader with defaults); writers always emit the current version.
// Every load failure names the offending record and nothing
// half-constructed ever escapes: the model is built and populated in full
// before the ModelSnapshot exists.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "serve/snapshot.hpp"

namespace hdczsc::serve {

/// Current .hdcsnap format version (writers emit this; loaders accept
/// 1..kSnapshotVersion — see docs/snapshot_format.md for the version log).
inline constexpr std::uint32_t kSnapshotVersion = 6;

/// Current .hdcdelta format version.
inline constexpr std::uint32_t kDeltaVersion = 1;

/// Serialize a snapshot (model architecture + parameters + buffers + frozen
/// prototype store) to a stream / file.
void save_snapshot(std::ostream& os, const ModelSnapshot& snap);
void save_snapshot_file(const std::string& path, const ModelSnapshot& snap);

/// Deserialize: rebuilds the model architecture from the header, loads
/// parameters/buffers/dictionary into it, and adopts the stored prototype
/// rows verbatim. Throws std::runtime_error (with the offending record
/// named) on any corruption or truncation.
std::shared_ptr<ModelSnapshot> load_snapshot(std::istream& is);
std::shared_ptr<ModelSnapshot> load_snapshot_file(const std::string& path);

/// Header + size summary of a snapshot stream, parsed without rebuilding
/// the model (for `snapshot_tool --inspect`).
struct SnapshotInfo {
  std::uint32_t version = 0;
  std::string arch;
  std::size_t proj_dim = 0;
  bool use_projection = true;
  std::string attribute_encoder;
  std::size_t mlp_hidden = 0;
  std::size_t n_attributes = 0;
  float scale = 0.0f;
  std::size_t param_records = 0;
  std::size_t param_elements = 0;
  bool has_dictionary = false;
  std::size_t n_classes = 0;
  std::size_t dim = 0;
  std::size_t expansion = 0;
  std::size_t code_bits = 0;
  std::size_t float_bytes = 0;   ///< normalized prototype rows, fp32
  std::size_t binary_bytes = 0;  ///< packed binary rows
  /// Recommended scatter/gather shard count (1 for version-1 files).
  std::size_t preferred_shards = 1;
  /// GZSL partition (version ≥ 3): true when the artifact carries a
  /// seen/unseen split with at least one unseen class. Pre-v3 files (and
  /// single-space artifacts) report n_seen == n_classes.
  bool has_partition = false;
  std::size_t n_seen = 0;
  /// INT8 quantization records (version ≥ 4): present iff the artifact can
  /// cold-start int8 serving. Pre-v4 files report has_quant == false.
  bool has_quant = false;
  std::string quant_method;           ///< "minmax" / "entropy"
  std::size_t quant_conv = 0;         ///< quantized convs (incl. downsamples)
  std::size_t quant_linear = 0;       ///< quantized FC layers
  std::size_t quant_weight_bytes = 0; ///< total int8 weight payload
  /// IVF coarse-index records (version ≥ 5): present iff the artifact
  /// cold-starts approximate retrieval without re-clustering. Pre-v5 files
  /// report has_ivf == false.
  bool has_ivf = false;
  std::size_t n_centroids = 0;  ///< coarse-quantizer centroid count Cc
  /// Per-centroid inverted-list sizes (sums to n_classes; empty when
  /// has_ivf is false) — the `--inspect` list-size histogram input.
  std::vector<std::size_t> ivf_list_sizes;
  /// Evolution lineage (version ≥ 6; pre-v6 files report 0 / 0 / 0).
  std::uint64_t store_version = 0;
  float calibrated_penalty = 0.0f;
  std::uint64_t content_checksum = 0;
};

SnapshotInfo inspect_snapshot(std::istream& is);
SnapshotInfo inspect_snapshot_file(const std::string& path);

class InferenceEngine;  // serve/engine.hpp
struct StoreVersion;    // serve/store_version.hpp

/// One persisted append: everything needed to grow a base artifact by n
/// classes, bit-identically to the version the writer published. Applied
/// through InferenceEngine::append_delta (live) or compact_snapshot
/// (offline); produced by make_delta from two versions of one lineage.
struct SnapshotDelta {
  /// Base-identity triple — all three must match the state the delta is
  /// applied to (class count, version counter, content checksum).
  std::uint64_t base_rows = 0;
  std::uint64_t base_version = 0;
  std::uint64_t base_checksum = 0;
  tensor::Tensor attributes;       ///< appended class-attribute rows [n, α]
  tensor::Tensor normalized_rows;  ///< appended L2-normalized ϕ(a) rows [n, d]
  std::vector<std::uint64_t> packed_words;  ///< appended packed rows, n · wpr words
  /// Per-new-row seen flags (non-zero = seen); empty = all unseen.
  std::vector<std::uint8_t> seen_flags;
  bool has_ivf = false;  ///< whether per-new-row IVF assignments ride along
  std::vector<std::uint32_t> ivf_assignments;  ///< [n] when has_ivf
  /// Content checksum of base + these rows — the chained apply must land
  /// exactly here or the delta is rejected (nothing published).
  std::uint64_t new_checksum = 0;

  std::size_t n_new() const { return normalized_rows.dim() == 2 ? normalized_rows.size(0) : 0; }
};

/// Diff two versions of one engine lineage (`next` must extend `base`):
/// captures rows [base.n_classes, next.n_classes) with their attributes,
/// seen flags and IVF assignments. Throws std::invalid_argument when the
/// versions are not an extension pair.
SnapshotDelta make_delta(const StoreVersion& base, const StoreVersion& next);

void save_delta(std::ostream& os, const SnapshotDelta& delta);
void save_delta_file(const std::string& path, const SnapshotDelta& delta);
SnapshotDelta load_delta(std::istream& is);
SnapshotDelta load_delta_file(const std::string& path);

/// True when the file leads with the delta magic "HDCD" (false for full
/// snapshots, missing or short files) — how ModelRegistry::load_file and
/// snapshot_tool route a path to the right loader.
bool is_delta_file(const std::string& path);

/// Offline delta-chain compaction: apply `deltas` in order to `base` and
/// return a full snapshot whose store planes, seen mask, class attributes
/// and IVF assignments are *bitwise* the chain's end state, with the
/// store-version counter advanced by the chain length (what a v6 writer
/// persists). Each link's base triple and end checksum are validated;
/// any mismatch throws with nothing half-applied. `base` itself is not
/// modified.
std::shared_ptr<ModelSnapshot> compact_snapshot(const ModelSnapshot& base,
                                                const std::vector<SnapshotDelta>& deltas);

}  // namespace hdczsc::serve
