// Versioned on-disk snapshot format (".hdcsnap") — the deployable artifact
// of a trained HDC-ZSC model, so server fleets cold-start from a file
// instead of retraining (the Triton/TensorRT "frozen engine" pattern).
//
// Layout (little-endian, version 1):
//
//   "HDCS"  magic                                  4 bytes
//   u32     format version (= 1)
//   -- model architecture (enough to rebuild the layer stack exactly) --
//   str     image-encoder arch ("resnet_micro_flat", ...)
//   u64     projection dim d
//   u8      use_projection
//   str     attribute-encoder kind ("hdc" | "mlp")
//   u64     mlp hidden width (0 for "hdc")
//   u64     α (attribute count)
//   f32     similarity temperature s (informational; the learned log-scale
//           parameters travel in the parameter records)
//   -- model state --
//   records nn::save_parameters  (count-prefixed (name, tensor) records)
//   records nn::save_buffers     (BatchNorm running statistics)
//   u8      has_dictionary; tensor B [α, d] when 1 (the stationary HDC
//           dictionary is seed-derived, not a parameter — without it a
//           rebuilt model could not re-encode new attribute rows)
//   -- frozen serving artifacts --
//   tensor  class-attribute matrix A [C, α]
//   u64     expansion k, u64 lsh_seed, f32 store scale
//   tensor  normalized float prototype rows [C, d]
//   u64     packed word count, raw u64 words (bit-packed binary rows)
//   "PANS"  end marker (truncation tripwire)
//
// Both prototype forms are stored verbatim (not recomputed on load), and
// BatchNorm running statistics ride along with the parameters, so a loaded
// snapshot serves scores bit-identical to the one that was saved — float
// and packed-binary paths alike. Every load failure names the offending
// record and nothing half-constructed ever escapes: the model is built and
// populated in full before the ModelSnapshot exists.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "serve/snapshot.hpp"

namespace hdczsc::serve {

/// Current .hdcsnap format version.
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Serialize a snapshot (model architecture + parameters + buffers + frozen
/// prototype store) to a stream / file.
void save_snapshot(std::ostream& os, const ModelSnapshot& snap);
void save_snapshot_file(const std::string& path, const ModelSnapshot& snap);

/// Deserialize: rebuilds the model architecture from the header, loads
/// parameters/buffers/dictionary into it, and adopts the stored prototype
/// rows verbatim. Throws std::runtime_error (with the offending record
/// named) on any corruption or truncation.
std::shared_ptr<ModelSnapshot> load_snapshot(std::istream& is);
std::shared_ptr<ModelSnapshot> load_snapshot_file(const std::string& path);

/// Header + size summary of a snapshot stream, parsed without rebuilding
/// the model (for `snapshot_tool --inspect`).
struct SnapshotInfo {
  std::uint32_t version = 0;
  std::string arch;
  std::size_t proj_dim = 0;
  bool use_projection = true;
  std::string attribute_encoder;
  std::size_t mlp_hidden = 0;
  std::size_t n_attributes = 0;
  float scale = 0.0f;
  std::size_t param_records = 0;
  std::size_t param_elements = 0;
  bool has_dictionary = false;
  std::size_t n_classes = 0;
  std::size_t dim = 0;
  std::size_t expansion = 0;
  std::size_t code_bits = 0;
  std::size_t float_bytes = 0;   ///< normalized prototype rows, fp32
  std::size_t binary_bytes = 0;  ///< packed binary rows
};

SnapshotInfo inspect_snapshot(std::istream& is);
SnapshotInfo inspect_snapshot_file(const std::string& path);

}  // namespace hdczsc::serve
