// Versioned on-disk snapshot format (".hdcsnap") — the deployable artifact
// of a trained HDC-ZSC model, so server fleets cold-start from a file
// instead of retraining (the Triton/TensorRT "frozen engine" pattern).
//
// The full record table, field widths and versioning rules live in
// docs/snapshot_format.md; the shape of the file (version 3):
//
//   "HDCS"  magic, u32 format version
//   -- model architecture (enough to rebuild the layer stack exactly) --
//   arch string, projection dim d, use_projection, attribute-encoder
//   kind + MLP hidden width, α, similarity temperature
//   -- model state --
//   nn::save_parameters records, nn::save_buffers records (BatchNorm
//   running statistics), optional HDC dictionary tensor B [α, d]
//   -- frozen serving artifacts --
//   class-attribute matrix A [C, α]; expansion k, LSH seed, store scale;
//   normalized float prototype rows [C, d]; packed binary words
//   -- serving layout (version ≥ 2) --
//   u64     preferred shard count S (sharded_store.hpp scatter/gather
//           layout hint; version-1 files carry no record and load as
//           S = 1, the flat store)
//   -- GZSL label-space partition (version ≥ 3) --
//   u64     seen-class count n_seen
//   u64[]   seen mask, ⌈C/64⌉ words, bit c = 1 iff serving label c is a
//           seen class (tail bits zero). Version-1/2 files carry no
//           record and load with no partition — every class seen.
//   -- INT8 quantization record pair (version ≥ 4) --
//   u8      has_quant flag; when set, two records follow:
//   record  activation calibration table (nn::save_calibration)
//   record  quantized embed graph — "HQNT" magic, BN-folded per-channel
//           int8 weights + per-op input qparams (nn::QuantizedEmbed::save).
//           Pre-v4 files carry neither and load float-only.
//   -- IVF coarse-index record pair (version ≥ 5) --
//   u8      has_ivf flag; when set, two records follow:
//   record  centroid tensor [Cc, d] — the unit-norm spherical k-means
//           centroids of the IVF coarse quantizer (ann_store.hpp)
//   u64     assignment count (must equal C), then u32[C] per-row centroid
//           assignments, each < Cc. Inverted lists and packed centroid
//           codes are rebuilt deterministically from these on load, so a
//           loaded index probes identically to the saved one. Pre-v5
//           files carry neither and load exact-only (engines rebuild on
//           demand).
//   "PANS"  end marker (truncation tripwire)
//
// Both prototype forms are stored verbatim (not recomputed on load), and
// BatchNorm running statistics ride along with the parameters, so a loaded
// snapshot serves scores bit-identical to the one that was saved — float
// and packed-binary paths alike. Loaders accept every version up to the
// current one (new records are appended, so older files parse under the
// newer reader with defaults); writers always emit the current version.
// Every load failure names the offending record and nothing
// half-constructed ever escapes: the model is built and populated in full
// before the ModelSnapshot exists.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "serve/snapshot.hpp"

namespace hdczsc::serve {

/// Current .hdcsnap format version (writers emit this; loaders accept
/// 1..kSnapshotVersion — see docs/snapshot_format.md for the version log).
inline constexpr std::uint32_t kSnapshotVersion = 5;

/// Serialize a snapshot (model architecture + parameters + buffers + frozen
/// prototype store) to a stream / file.
void save_snapshot(std::ostream& os, const ModelSnapshot& snap);
void save_snapshot_file(const std::string& path, const ModelSnapshot& snap);

/// Deserialize: rebuilds the model architecture from the header, loads
/// parameters/buffers/dictionary into it, and adopts the stored prototype
/// rows verbatim. Throws std::runtime_error (with the offending record
/// named) on any corruption or truncation.
std::shared_ptr<ModelSnapshot> load_snapshot(std::istream& is);
std::shared_ptr<ModelSnapshot> load_snapshot_file(const std::string& path);

/// Header + size summary of a snapshot stream, parsed without rebuilding
/// the model (for `snapshot_tool --inspect`).
struct SnapshotInfo {
  std::uint32_t version = 0;
  std::string arch;
  std::size_t proj_dim = 0;
  bool use_projection = true;
  std::string attribute_encoder;
  std::size_t mlp_hidden = 0;
  std::size_t n_attributes = 0;
  float scale = 0.0f;
  std::size_t param_records = 0;
  std::size_t param_elements = 0;
  bool has_dictionary = false;
  std::size_t n_classes = 0;
  std::size_t dim = 0;
  std::size_t expansion = 0;
  std::size_t code_bits = 0;
  std::size_t float_bytes = 0;   ///< normalized prototype rows, fp32
  std::size_t binary_bytes = 0;  ///< packed binary rows
  /// Recommended scatter/gather shard count (1 for version-1 files).
  std::size_t preferred_shards = 1;
  /// GZSL partition (version ≥ 3): true when the artifact carries a
  /// seen/unseen split with at least one unseen class. Pre-v3 files (and
  /// single-space artifacts) report n_seen == n_classes.
  bool has_partition = false;
  std::size_t n_seen = 0;
  /// INT8 quantization records (version ≥ 4): present iff the artifact can
  /// cold-start int8 serving. Pre-v4 files report has_quant == false.
  bool has_quant = false;
  std::string quant_method;           ///< "minmax" / "entropy"
  std::size_t quant_conv = 0;         ///< quantized convs (incl. downsamples)
  std::size_t quant_linear = 0;       ///< quantized FC layers
  std::size_t quant_weight_bytes = 0; ///< total int8 weight payload
  /// IVF coarse-index records (version ≥ 5): present iff the artifact
  /// cold-starts approximate retrieval without re-clustering. Pre-v5 files
  /// report has_ivf == false.
  bool has_ivf = false;
  std::size_t n_centroids = 0;  ///< coarse-quantizer centroid count Cc
};

SnapshotInfo inspect_snapshot(std::istream& is);
SnapshotInfo inspect_snapshot_file(const std::string& path);

}  // namespace hdczsc::serve
