#include "serve/model_registry.hpp"

#include "obs/metrics.hpp"

namespace hdczsc::serve {

namespace {

/// Evolution telemetry: the lineage counter as a gauge (scrapes show which
/// version each replica serves) and a monotone appended-classes counter.
void record_version_metrics(const std::string& key, std::uint64_t version,
                            std::size_t appended) {
  obs::default_registry()
      .gauge("serve_store_version", {{"model", key}},
             "store version counter of the currently served prototype state")
      ->set(static_cast<double>(version));
  if (appended > 0)
    obs::default_registry()
        .counter("serve_classes_appended_total", {{"model", key}},
                 "classes appended to live models")
        ->add(appended);
}

}  // namespace

ModelRegistry::ModelRegistry(ServerConfig default_cfg) : default_cfg_(default_cfg) {}

ModelRegistry::~ModelRegistry() { stop_all(); }

void ModelRegistry::load(const std::string& key, std::shared_ptr<const ModelSnapshot> snapshot,
                         ScoringMode mode, std::optional<ServerConfig> cfg) {
  if (!is_valid_model_key(key))
    throw std::invalid_argument("ModelRegistry::load: invalid key '" + key +
                                "' (want 1.." + std::to_string(kMaxModelKeyBytes) +
                                " chars of [A-Za-z0-9._-])");
  if (!snapshot) throw std::invalid_argument("ModelRegistry::load: null snapshot");
  // Build and start outside the lock: worker spawn must not stall routing.
  ServerConfig rcfg = cfg.value_or(default_cfg_);
  // The model key is the metric namespace: serve_*{model=key} series in
  // obs::default_registry(). A reload under the same key continues them.
  if (rcfg.name.empty()) rcfg.name = key;
  auto engine = std::make_shared<const InferenceEngine>(
      std::move(snapshot), mode, rcfg.n_shards, rcfg.seen_penalty, rcfg.backbone_precision,
      rcfg.retrieval, rcfg.nprobe, rcfg.rerank, rcfg.gzsl_calibration);
  record_version_metrics(rcfg.name, engine->store_version(), 0);
  auto runtime = std::make_shared<ServerRuntime>(std::move(engine), rcfg);
  runtime->start();

  std::shared_ptr<ServerRuntime> replaced;
  {
    std::unique_lock lock(mu_);
    auto& slot = models_[key];
    replaced = std::move(slot);
    slot = std::move(runtime);
  }
  // Drain the replaced runtime after the swap: requests it already accepted
  // complete; new requests route to the replacement.
  if (replaced) replaced->stop();
}

void ModelRegistry::load_file(const std::string& key, const std::string& path,
                              ScoringMode mode, std::optional<ServerConfig> cfg) {
  if (is_delta_file(path)) {
    // Live append onto the already-registered runtime. Every validation —
    // parse, base identity triple, end-state checksum — throws *before*
    // the engine publishes, so the previously served version keeps
    // answering (the strong guarantee, even under concurrent readers).
    const std::shared_ptr<ServerRuntime> runtime = find(key);
    const SnapshotDelta delta = load_delta_file(path);
    const auto ver = runtime->engine().append_delta(delta);
    record_version_metrics(key, ver->version, delta.n_new());
    return;
  }
  // load_snapshot_file throws on corruption *before* the registry is
  // touched — a half-loaded model is never registered.
  load(key, load_snapshot_file(path), mode, cfg);
}

std::uint64_t ModelRegistry::append_classes(const std::string& key,
                                            const tensor::Tensor& attributes,
                                            const std::vector<std::uint8_t>& seen_flags) {
  const std::shared_ptr<ServerRuntime> runtime = find(key);
  const auto ver = runtime->engine().append_classes(attributes, seen_flags);
  record_version_metrics(key, ver->version, attributes.size(0));
  return ver->version;
}

bool ModelRegistry::unload(const std::string& key) {
  std::shared_ptr<ServerRuntime> removed;
  {
    std::unique_lock lock(mu_);
    auto it = models_.find(key);
    if (it == models_.end()) return false;
    removed = std::move(it->second);
    models_.erase(it);
  }
  removed->stop();  // drains the queue: every accepted request resolves
  return true;
}

std::shared_ptr<ServerRuntime> ModelRegistry::find(const std::string& key) const {
  std::shared_lock lock(mu_);
  auto it = models_.find(key);
  if (it == models_.end()) throw ModelNotFound(key);
  return it->second;
}

void ModelRegistry::submit(InferRequest req, InferDone done) {
  // Routing failures are statuses, not exceptions: the wire protocol
  // carries kBadModel back to the client verbatim. Validating the key
  // *before* the map lookup keeps the error distinguishable from a merely
  // unregistered name only in the message — both are kBadModel.
  if (!is_valid_model_key(req.model_key)) {
    done(make_error_result(req.request_id, InferStatus::kBadModel,
                           "invalid model key (want 1.." + std::to_string(kMaxModelKeyBytes) +
                               " chars of [A-Za-z0-9._-])"));
    return;
  }
  std::shared_ptr<ServerRuntime> runtime;
  {
    std::shared_lock lock(mu_);
    auto it = models_.find(req.model_key);
    if (it != models_.end()) runtime = it->second;
  }
  if (!runtime) {
    done(make_error_result(req.request_id, InferStatus::kBadModel,
                           "no model registered under key '" + req.model_key + "'"));
    return;
  }
  // The submit (and the batched forward it feeds) runs with no registry
  // lock held.
  runtime->submit(std::move(req), std::move(done));
}

std::future<InferResult> ModelRegistry::submit(InferRequest req) {
  auto prom = std::make_shared<std::promise<InferResult>>();
  std::future<InferResult> fut = prom->get_future();
  submit(std::move(req), [prom](InferResult&& r) { prom->set_value(std::move(r)); });
  return fut;
}

bool ModelRegistry::has(const std::string& key) const {
  std::shared_lock lock(mu_);
  return models_.count(key) > 0;
}

std::size_t ModelRegistry::size() const {
  std::shared_lock lock(mu_);
  return models_.size();
}

std::vector<std::string> ModelRegistry::keys() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [key, runtime] : models_) out.push_back(key);
  return out;
}

ServingStats::Summary ModelRegistry::stats(const std::string& key) const {
  return find(key)->stats().summary();
}

std::vector<obs::Tracer::StageStat> ModelRegistry::stage_stats(const std::string& key) const {
  return find(key)->tracer().stage_stats();
}

std::vector<obs::TraceSpan> ModelRegistry::slow_traces(const std::string& key) const {
  return find(key)->tracer().slowest();
}

std::vector<ShardedPrototypeStore::ShardInfo> ModelRegistry::shard_stats(
    const std::string& key) const {
  return find(key)->engine().shard_stats();
}

std::optional<IvfIndex::ProbeStats> ModelRegistry::ann_stats(const std::string& key) const {
  const auto ivf = find(key)->engine().ivf();
  if (!ivf) return std::nullopt;
  return ivf->probe_stats();
}

std::shared_ptr<const InferenceEngine> ModelRegistry::engine(const std::string& key) const {
  return find(key)->engine_ptr();
}

util::Table ModelRegistry::to_table(const std::string& title) const {
  // Snapshot the runtimes first; summaries are computed outside the lock.
  std::vector<std::pair<std::string, std::shared_ptr<ServerRuntime>>> entries;
  {
    std::shared_lock lock(mu_);
    entries.assign(models_.begin(), models_.end());
  }
  util::Table t(title);
  t.set_header({"key", "scoring", "prec", "retr", "ver", "classes", "shards", "penalty",
                "completed", "rejected", "req/s", "q-wait ms", "p50 ms", "p99 ms", "p999 ms",
                "seen", "unseen", "H(dom)"});
  for (const auto& [key, runtime] : entries) {
    const auto s = runtime->stats().summary();
    const InferenceEngine& engine = runtime->engine();
    // One pinned version per row, so the ver / classes / penalty columns
    // are mutually consistent even while an append is publishing.
    const std::shared_ptr<const StoreVersion> ver = engine.pin();
    // GZSL columns only carry signal for partitioned versions: without a
    // partition every decision counts as seen and H is identically 0.
    const bool gzsl = ver->has_partition();
    t.add_row({key, scoring_mode_name(engine.mode()), precision_name(engine.precision()),
               retrieval_mode_name(engine.retrieval()), std::to_string(ver->version),
               gzsl ? std::to_string(ver->seen_count()) + "+" +
                          std::to_string(ver->unseen_count())
                    : std::to_string(ver->n_classes()),
               std::to_string(ver->sharded->n_shards()),
               gzsl || ver->penalty.penalty != 0.0f
                   ? util::Table::num(ver->penalty.penalty, 2)
                   : "-",
               std::to_string(s.completed), std::to_string(s.rejected),
               util::Table::num(s.throughput_rps, 1),
               util::Table::num(s.mean_queue_wait_ms, 2),
               util::Table::num(s.p50_latency_ms, 2), util::Table::num(s.p99_latency_ms, 2),
               util::Table::num(s.p999_latency_ms, 2),
               gzsl ? std::to_string(s.seen_hits) : "-",
               gzsl ? std::to_string(s.unseen_hits) : "-",
               gzsl ? util::Table::num(s.domain_harmonic, 3) : "-"});
  }
  return t;
}

void ModelRegistry::stop_all() {
  std::vector<std::shared_ptr<ServerRuntime>> stopping;
  {
    std::unique_lock lock(mu_);
    for (auto& [key, runtime] : models_) stopping.push_back(std::move(runtime));
    models_.clear();
  }
  for (auto& runtime : stopping) runtime->stop();
}

}  // namespace hdczsc::serve
