#include "serve/prototype_store.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace hdczsc::serve {

namespace {

/// Sign-pack `n_rows` rows of `code_bits` floats each into pre-zeroed
/// 64-bit words (bit 1 ↔ negative component), `wpr` words per row.
void pack_signs(const float* src, std::size_t n_rows, std::size_t code_bits, std::size_t wpr,
                std::uint64_t* dst) {
  for (std::size_t c = 0; c < n_rows; ++c) {
    std::uint64_t* row = dst + c * wpr;
    const float* s = src + c * code_bits;
    for (std::size_t j = 0; j < code_bits; ++j)
      if (s[j] < 0.0f) row[j / 64] |= std::uint64_t{1} << (j % 64);
  }
}

}  // namespace

void PrototypeStore::init_planes(std::size_t rows) {
  capacity_rows_ = rows;
  packed_plane_ = std::make_shared<std::vector<std::uint64_t>>(rows * words_per_row_, 0);
  committed_ = std::make_shared<std::atomic<std::size_t>>(rows);
}

void PrototypeStore::pack_rows_into(const tensor::Tensor& rows, std::size_t first_row,
                                    std::size_t n_rows) {
  pack_signs(rows.data(), n_rows, code_bits_, words_per_row_,
             packed_plane_->data() + first_row * words_per_row_);
}

PrototypeStore::PrototypeStore(const tensor::Tensor& prototypes, float scale,
                               std::size_t expansion, std::uint64_t lsh_seed)
    : expansion_(expansion == 0 ? 1 : expansion), lsh_seed_(lsh_seed), scale_(scale) {
  if (prototypes.dim() != 2 || prototypes.size(0) == 0)
    throw std::invalid_argument("PrototypeStore: prototypes must be a non-empty [C, d] matrix");
  n_classes_ = prototypes.size(0);
  dim_ = prototypes.size(1);
  code_bits_ = dim_ * expansion_;
  words_per_row_ = (code_bits_ + 63) / 64;

  // The initial float slab *is* the normalized matrix (capacity == C); the
  // first append grows it geometrically.
  float_plane_ = tensor::l2_normalize_rows(prototypes);
  init_planes(n_classes_);

  if (expansion_ == 1) {
    // Signs are norm-invariant; pack the raw rows directly.
    pack_rows_into(prototypes, 0, n_classes_);
  } else {
    util::Rng rng(lsh_seed);
    projection_ = tensor::Tensor::rademacher({code_bits_, dim_}, rng);
    pack_rows_into(tensor::matmul_nt(prototypes, projection_), 0, n_classes_);
  }
}

PrototypeStore PrototypeStore::from_parts(tensor::Tensor normalized_rows,
                                          std::vector<std::uint64_t> packed_words, float scale,
                                          std::size_t expansion, std::uint64_t lsh_seed) {
  if (normalized_rows.dim() != 2 || normalized_rows.size(0) == 0)
    throw std::invalid_argument(
        "PrototypeStore::from_parts: normalized rows must be a non-empty [C, d] matrix");
  PrototypeStore s;
  s.expansion_ = expansion == 0 ? 1 : expansion;
  s.lsh_seed_ = lsh_seed;
  s.scale_ = scale;
  s.n_classes_ = normalized_rows.size(0);
  s.dim_ = normalized_rows.size(1);
  s.code_bits_ = s.dim_ * s.expansion_;
  s.words_per_row_ = (s.code_bits_ + 63) / 64;
  if (packed_words.size() != s.n_classes_ * s.words_per_row_)
    throw std::invalid_argument(
        "PrototypeStore::from_parts: packed words/shape disagree (" +
        std::to_string(packed_words.size()) + " words for " + std::to_string(s.n_classes_) +
        " rows x " + std::to_string(s.words_per_row_) + " words/row)");
  s.float_plane_ = std::move(normalized_rows);
  s.capacity_rows_ = s.n_classes_;
  s.packed_plane_ =
      std::make_shared<std::vector<std::uint64_t>>(std::move(packed_words));
  s.committed_ = std::make_shared<std::atomic<std::size_t>>(s.n_classes_);
  if (s.expansion_ > 1) {
    util::Rng rng(lsh_seed);
    s.projection_ = tensor::Tensor::rademacher({s.code_bits_, s.dim_}, rng);
  }
  return s;
}

PrototypeStore PrototypeStore::append_rows(const tensor::Tensor& raw_rows) const {
  if (raw_rows.dim() != 2 || raw_rows.size(0) == 0 || raw_rows.size(1) != dim_)
    throw std::invalid_argument("PrototypeStore::append_rows: need non-empty [n, " +
                                std::to_string(dim_) + "] rows, got " +
                                tensor::shape_str(raw_rows.shape()));
  const std::size_t n_new = raw_rows.size(0);
  const tensor::Tensor normalized = tensor::l2_normalize_rows(raw_rows);
  std::vector<std::uint64_t> packed(n_new * words_per_row_, 0);
  if (expansion_ == 1) {
    pack_signs(raw_rows.data(), n_new, code_bits_, words_per_row_, packed.data());
  } else {
    const tensor::Tensor projected = tensor::matmul_nt(raw_rows, projection_);
    pack_signs(projected.data(), n_new, code_bits_, words_per_row_, packed.data());
  }
  return append_impl(normalized, packed);
}

PrototypeStore PrototypeStore::append_parts(
    const tensor::Tensor& normalized_rows, const std::vector<std::uint64_t>& packed_words) const {
  if (normalized_rows.dim() != 2 || normalized_rows.size(0) == 0 ||
      normalized_rows.size(1) != dim_)
    throw std::invalid_argument("PrototypeStore::append_parts: need non-empty [n, " +
                                std::to_string(dim_) + "] rows, got " +
                                tensor::shape_str(normalized_rows.shape()));
  if (packed_words.size() != normalized_rows.size(0) * words_per_row_)
    throw std::invalid_argument(
        "PrototypeStore::append_parts: packed words/shape disagree (" +
        std::to_string(packed_words.size()) + " words for " +
        std::to_string(normalized_rows.size(0)) + " rows x " +
        std::to_string(words_per_row_) + " words/row)");
  return append_impl(normalized_rows, packed_words);
}

PrototypeStore PrototypeStore::append_impl(
    const tensor::Tensor& normalized_rows, const std::vector<std::uint64_t>& packed_words) const {
  const std::size_t n_new = normalized_rows.size(0);
  const std::size_t total = n_classes_ + n_new;

  PrototypeStore out = *this;  // O(1): shares the slabs
  out.n_classes_ = total;

  // Fast path: claim rows [n_classes_, total) of the shared slabs with one
  // CAS and write in place. Those addresses are past every published
  // value's visible prefix, so no reader can observe the write; the new
  // value is published through a shared_ptr swap whose release/acquire
  // edge orders these stores for its readers.
  std::size_t expected = n_classes_;
  if (total <= capacity_rows_ &&
      committed_->compare_exchange_strong(expected, total)) {
    std::copy(normalized_rows.data(), normalized_rows.data() + n_new * dim_,
              out.float_plane_.data() + n_classes_ * dim_);
    std::copy(packed_words.begin(), packed_words.end(),
              out.packed_plane_->data() + n_classes_ * words_per_row_);
    return out;
  }

  // Slow path: capacity exhausted (or a concurrent appender claimed the
  // tail first) — reallocate with geometric headroom and copy the prefix.
  // The old value keeps its slabs; its readers are untouched.
  std::size_t cap = std::max<std::size_t>(capacity_rows_, 1);
  while (cap < total) cap *= 2;
  out.capacity_rows_ = cap;
  out.float_plane_ = tensor::Tensor({cap, dim_});
  std::copy(float_rows(), float_rows() + n_classes_ * dim_, out.float_plane_.data());
  std::copy(normalized_rows.data(), normalized_rows.data() + n_new * dim_,
            out.float_plane_.data() + n_classes_ * dim_);
  out.packed_plane_ =
      std::make_shared<std::vector<std::uint64_t>>(cap * words_per_row_, 0);
  std::copy(packed_data(), packed_data() + n_classes_ * words_per_row_,
            out.packed_plane_->data());
  std::copy(packed_words.begin(), packed_words.end(),
            out.packed_plane_->data() + n_classes_ * words_per_row_);
  out.committed_ = std::make_shared<std::atomic<std::size_t>>(total);
  return out;
}

tensor::Tensor PrototypeStore::normalized_copy() const {
  tensor::Tensor out({n_classes_, dim_});
  std::copy(float_rows(), float_rows() + n_classes_ * dim_, out.data());
  return out;
}

std::vector<std::uint64_t> PrototypeStore::packed_copy() const {
  const std::uint64_t* p = packed_data();
  return std::vector<std::uint64_t>(p, p + n_classes_ * words_per_row_);
}

SeenPenalty PrototypeStore::resolve_penalty(float penalty,
                                            const std::vector<std::uint8_t>& seen_mask) const {
  if (!seen_mask.empty() && seen_mask.size() != n_classes_)
    throw std::invalid_argument("PrototypeStore::resolve_penalty: seen mask has " +
                                std::to_string(seen_mask.size()) + " entries for " +
                                std::to_string(n_classes_) + " classes");
  SeenPenalty p;
  p.penalty = penalty;
  if (penalty == 0.0f) return p;  // inactive: no per-row tables needed

  // Hamming-domain translation: penalty == scale · 2Δ/D for an integer
  // Δ ≥ 0 makes the handicap an exact integer offset on the seen rows'
  // Hamming counts. The double products below are exact (f32 values times
  // a < 2²⁴ integer), so `delta` is integral iff the real quotient is —
  // up to one part in 2⁵³, far beyond float resolution either way. The
  // offset must also keep h + Δ ≤ D + Δ < 2²⁴, the range where distinct
  // integer scores cannot round to the same float logit.
  if (scale_ > 0.0f && penalty > 0.0f) {
    const double delta = static_cast<double>(penalty) * static_cast<double>(code_bits_) /
                         (2.0 * static_cast<double>(scale_));
    if (delta == std::floor(delta) &&
        static_cast<double>(code_bits_) + delta < static_cast<double>(1u << 24)) {
      p.integer_exact = true;
      p.offset = static_cast<std::uint32_t>(delta);
    }
  }

  const auto seen = [&](std::size_t c) { return seen_mask.empty() || seen_mask[c] != 0; };
  p.row_penalty.resize(n_classes_, 0.0f);
  p.row_offset.resize(n_classes_, 0);
  for (std::size_t c = 0; c < n_classes_; ++c) {
    if (!seen(c)) continue;
    p.row_penalty[c] = penalty;
    p.row_offset[c] = p.offset;
  }
  return p;
}

tensor::Tensor PrototypeStore::score_float(const tensor::Tensor& embeddings,
                                           const SeenPenalty* penalty) const {
  if (embeddings.dim() != 2 || embeddings.size(1) != dim_)
    throw std::invalid_argument("PrototypeStore::score_float: need [B, " +
                                std::to_string(dim_) + "] embeddings, got " +
                                tensor::shape_str(embeddings.shape()));
  const std::size_t batch = embeddings.size(0);
  tensor::Tensor e_hat = tensor::l2_normalize_rows(embeddings);
  // Zero-init + gemm_accumulate over the slab prefix is exactly what
  // matmul_nt(e_hat, normalized) computed when the rows were a standalone
  // [C, d] tensor — bit-identical, just with the slab as B.
  tensor::Tensor cos({batch, n_classes_});
  tensor::gemm_accumulate(tensor::Trans::N, tensor::Trans::T, batch, n_classes_, dim_,
                          e_hat.data(), dim_, float_rows(), dim_, cos.data(), n_classes_);
  tensor::Tensor logits = tensor::mul_scalar(cos, scale_);
  if (penalty && penalty->active()) {
    // Calibrated stacking, the evaluate_gzsl form: handicap the seen
    // columns after the temperature is applied.
    float* L = logits.data();
    const float* adj = penalty->row_penalty.data();
    for (std::size_t b = 0; b < logits.size(0); ++b)
      for (std::size_t c = 0; c < n_classes_; ++c) L[b * n_classes_ + c] -= adj[c];
  }
  return logits;
}

hdc::BinaryHV PrototypeStore::encode_query(const float* row) const {
  hdc::BinaryHV b(code_bits_);
  if (expansion_ == 1) {
    for (std::size_t j = 0; j < code_bits_; ++j)
      if (row[j] < 0.0f) b.set(j, true);
    return b;
  }
  const float* R = projection_.data();
  for (std::size_t j = 0; j < code_bits_; ++j) {
    const float* prow = R + j * dim_;
    float acc = 0.0f;
    for (std::size_t k = 0; k < dim_; ++k) acc += prow[k] * row[k];
    if (acc < 0.0f) b.set(j, true);
  }
  return b;
}

tensor::Tensor PrototypeStore::score_binary(const tensor::Tensor& embeddings,
                                            const SeenPenalty* penalty) const {
  if (embeddings.dim() != 2 || embeddings.size(1) != dim_)
    throw std::invalid_argument("PrototypeStore::score_binary: need [B, " +
                                std::to_string(dim_) + "] embeddings, got " +
                                tensor::shape_str(embeddings.shape()));
  const std::size_t batch = embeddings.size(0);
  tensor::Tensor logits({batch, n_classes_});
  const float* E = embeddings.data();
  float* L = logits.data();
  std::vector<std::uint32_t> h(n_classes_);
  const float inv_d = 1.0f / static_cast<float>(code_bits_);
  const bool penalized = penalty && penalty->active();
  const std::uint32_t* off =
      penalized && penalty->integer_exact ? penalty->row_offset.data() : nullptr;
  const float* adj = penalized && !penalty->integer_exact ? penalty->row_penalty.data()
                                                          : nullptr;
  for (std::size_t b = 0; b < batch; ++b) {
    hdc::BinaryHV q = encode_query(E + b * dim_);
    hdc::hamming_many_packed(q.words().data(), packed_data(), n_classes_, words_per_row_,
                             h.data());
    float* out = L + b * n_classes_;
    if (off) {
      // Integer-exact handicap: seen rows are scored as if their Hamming
      // distance were h + Δ — the identical expression the sharded scan
      // evaluates for its gathered candidates (bit-identical by design).
      for (std::size_t c = 0; c < n_classes_; ++c)
        out[c] = scale_ * (1.0f - 2.0f * static_cast<float>(h[c] + off[c]) * inv_d);
    } else if (adj) {
      for (std::size_t c = 0; c < n_classes_; ++c)
        out[c] = scale_ * (1.0f - 2.0f * static_cast<float>(h[c]) * inv_d) - adj[c];
    } else {
      for (std::size_t c = 0; c < n_classes_; ++c)
        out[c] = scale_ * (1.0f - 2.0f * static_cast<float>(h[c]) * inv_d);
    }
  }
  return logits;
}

hdc::BinaryHV PrototypeStore::binary_prototype(std::size_t i) const {
  if (i >= n_classes_)
    throw std::out_of_range("PrototypeStore::binary_prototype: index out of range");
  hdc::BinaryHV b(code_bits_);
  const std::uint64_t* row = packed_data() + i * words_per_row_;
  for (std::size_t j = 0; j < code_bits_; ++j)
    if ((row[j / 64] >> (j % 64)) & 1) b.set(j, true);
  return b;
}

}  // namespace hdczsc::serve
