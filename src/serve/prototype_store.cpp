#include "serve/prototype_store.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace hdczsc::serve {

PrototypeStore::PrototypeStore(const tensor::Tensor& prototypes, float scale,
                               std::size_t expansion, std::uint64_t lsh_seed)
    : expansion_(expansion == 0 ? 1 : expansion), lsh_seed_(lsh_seed), scale_(scale) {
  if (prototypes.dim() != 2 || prototypes.size(0) == 0)
    throw std::invalid_argument("PrototypeStore: prototypes must be a non-empty [C, d] matrix");
  n_classes_ = prototypes.size(0);
  dim_ = prototypes.size(1);
  code_bits_ = dim_ * expansion_;
  words_per_row_ = (code_bits_ + 63) / 64;

  normalized_ = tensor::l2_normalize_rows(prototypes);

  if (expansion_ == 1) {
    // Signs are norm-invariant; pack the raw rows directly.
    pack_rows(prototypes);
  } else {
    util::Rng rng(lsh_seed);
    projection_ = tensor::Tensor::rademacher({code_bits_, dim_}, rng);
    pack_rows(tensor::matmul_nt(prototypes, projection_));
  }
}

PrototypeStore PrototypeStore::from_parts(tensor::Tensor normalized_rows,
                                          std::vector<std::uint64_t> packed_words, float scale,
                                          std::size_t expansion, std::uint64_t lsh_seed) {
  if (normalized_rows.dim() != 2 || normalized_rows.size(0) == 0)
    throw std::invalid_argument(
        "PrototypeStore::from_parts: normalized rows must be a non-empty [C, d] matrix");
  PrototypeStore s;
  s.expansion_ = expansion == 0 ? 1 : expansion;
  s.lsh_seed_ = lsh_seed;
  s.scale_ = scale;
  s.n_classes_ = normalized_rows.size(0);
  s.dim_ = normalized_rows.size(1);
  s.code_bits_ = s.dim_ * s.expansion_;
  s.words_per_row_ = (s.code_bits_ + 63) / 64;
  if (packed_words.size() != s.n_classes_ * s.words_per_row_)
    throw std::invalid_argument(
        "PrototypeStore::from_parts: packed words/shape disagree (" +
        std::to_string(packed_words.size()) + " words for " + std::to_string(s.n_classes_) +
        " rows x " + std::to_string(s.words_per_row_) + " words/row)");
  s.normalized_ = std::move(normalized_rows);
  s.packed_ = std::move(packed_words);
  if (s.expansion_ > 1) {
    util::Rng rng(lsh_seed);
    s.projection_ = tensor::Tensor::rademacher({s.code_bits_, s.dim_}, rng);
  }
  return s;
}

void PrototypeStore::pack_rows(const tensor::Tensor& rows) {
  packed_.assign(n_classes_ * words_per_row_, 0);
  const float* R = rows.data();
  for (std::size_t c = 0; c < n_classes_; ++c) {
    std::uint64_t* row = packed_.data() + c * words_per_row_;
    const float* src = R + c * code_bits_;
    for (std::size_t j = 0; j < code_bits_; ++j)
      if (src[j] < 0.0f) row[j / 64] |= std::uint64_t{1} << (j % 64);
  }
}

SeenPenalty PrototypeStore::resolve_penalty(float penalty,
                                            const std::vector<std::uint8_t>& seen_mask) const {
  if (!seen_mask.empty() && seen_mask.size() != n_classes_)
    throw std::invalid_argument("PrototypeStore::resolve_penalty: seen mask has " +
                                std::to_string(seen_mask.size()) + " entries for " +
                                std::to_string(n_classes_) + " classes");
  SeenPenalty p;
  p.penalty = penalty;
  if (penalty == 0.0f) return p;  // inactive: no per-row tables needed

  // Hamming-domain translation: penalty == scale · 2Δ/D for an integer
  // Δ ≥ 0 makes the handicap an exact integer offset on the seen rows'
  // Hamming counts. The double products below are exact (f32 values times
  // a < 2²⁴ integer), so `delta` is integral iff the real quotient is —
  // up to one part in 2⁵³, far beyond float resolution either way. The
  // offset must also keep h + Δ ≤ D + Δ < 2²⁴, the range where distinct
  // integer scores cannot round to the same float logit.
  if (scale_ > 0.0f && penalty > 0.0f) {
    const double delta = static_cast<double>(penalty) * static_cast<double>(code_bits_) /
                         (2.0 * static_cast<double>(scale_));
    if (delta == std::floor(delta) &&
        static_cast<double>(code_bits_) + delta < static_cast<double>(1u << 24)) {
      p.integer_exact = true;
      p.offset = static_cast<std::uint32_t>(delta);
    }
  }

  const auto seen = [&](std::size_t c) { return seen_mask.empty() || seen_mask[c] != 0; };
  p.row_penalty.resize(n_classes_, 0.0f);
  p.row_offset.resize(n_classes_, 0);
  for (std::size_t c = 0; c < n_classes_; ++c) {
    if (!seen(c)) continue;
    p.row_penalty[c] = penalty;
    p.row_offset[c] = p.offset;
  }
  return p;
}

tensor::Tensor PrototypeStore::score_float(const tensor::Tensor& embeddings,
                                           const SeenPenalty* penalty) const {
  if (embeddings.dim() != 2 || embeddings.size(1) != dim_)
    throw std::invalid_argument("PrototypeStore::score_float: need [B, " +
                                std::to_string(dim_) + "] embeddings, got " +
                                tensor::shape_str(embeddings.shape()));
  tensor::Tensor e_hat = tensor::l2_normalize_rows(embeddings);
  tensor::Tensor cos = tensor::matmul_nt(e_hat, normalized_);
  tensor::Tensor logits = tensor::mul_scalar(cos, scale_);
  if (penalty && penalty->active()) {
    // Calibrated stacking, the evaluate_gzsl form: handicap the seen
    // columns after the temperature is applied.
    float* L = logits.data();
    const float* adj = penalty->row_penalty.data();
    for (std::size_t b = 0; b < logits.size(0); ++b)
      for (std::size_t c = 0; c < n_classes_; ++c) L[b * n_classes_ + c] -= adj[c];
  }
  return logits;
}

hdc::BinaryHV PrototypeStore::encode_query(const float* row) const {
  hdc::BinaryHV b(code_bits_);
  if (expansion_ == 1) {
    for (std::size_t j = 0; j < code_bits_; ++j)
      if (row[j] < 0.0f) b.set(j, true);
    return b;
  }
  const float* R = projection_.data();
  for (std::size_t j = 0; j < code_bits_; ++j) {
    const float* prow = R + j * dim_;
    float acc = 0.0f;
    for (std::size_t k = 0; k < dim_; ++k) acc += prow[k] * row[k];
    if (acc < 0.0f) b.set(j, true);
  }
  return b;
}

tensor::Tensor PrototypeStore::score_binary(const tensor::Tensor& embeddings,
                                            const SeenPenalty* penalty) const {
  if (embeddings.dim() != 2 || embeddings.size(1) != dim_)
    throw std::invalid_argument("PrototypeStore::score_binary: need [B, " +
                                std::to_string(dim_) + "] embeddings, got " +
                                tensor::shape_str(embeddings.shape()));
  const std::size_t batch = embeddings.size(0);
  tensor::Tensor logits({batch, n_classes_});
  const float* E = embeddings.data();
  float* L = logits.data();
  std::vector<std::uint32_t> h(n_classes_);
  const float inv_d = 1.0f / static_cast<float>(code_bits_);
  const bool penalized = penalty && penalty->active();
  const std::uint32_t* off =
      penalized && penalty->integer_exact ? penalty->row_offset.data() : nullptr;
  const float* adj = penalized && !penalty->integer_exact ? penalty->row_penalty.data()
                                                          : nullptr;
  for (std::size_t b = 0; b < batch; ++b) {
    hdc::BinaryHV q = encode_query(E + b * dim_);
    hdc::hamming_many_packed(q.words().data(), packed_.data(), n_classes_, words_per_row_,
                             h.data());
    float* out = L + b * n_classes_;
    if (off) {
      // Integer-exact handicap: seen rows are scored as if their Hamming
      // distance were h + Δ — the identical expression the sharded scan
      // evaluates for its gathered candidates (bit-identical by design).
      for (std::size_t c = 0; c < n_classes_; ++c)
        out[c] = scale_ * (1.0f - 2.0f * static_cast<float>(h[c] + off[c]) * inv_d);
    } else if (adj) {
      for (std::size_t c = 0; c < n_classes_; ++c)
        out[c] = scale_ * (1.0f - 2.0f * static_cast<float>(h[c]) * inv_d) - adj[c];
    } else {
      for (std::size_t c = 0; c < n_classes_; ++c)
        out[c] = scale_ * (1.0f - 2.0f * static_cast<float>(h[c]) * inv_d);
    }
  }
  return logits;
}

hdc::BinaryHV PrototypeStore::binary_prototype(std::size_t i) const {
  if (i >= n_classes_)
    throw std::out_of_range("PrototypeStore::binary_prototype: index out of range");
  hdc::BinaryHV b(code_bits_);
  const std::uint64_t* row = packed_.data() + i * words_per_row_;
  for (std::size_t j = 0; j < code_bits_; ++j)
    if ((row[j / 64] >> (j % 64)) & 1) b.set(j, true);
  return b;
}

}  // namespace hdczsc::serve
