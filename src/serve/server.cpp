#include "serve/server.hpp"

#include <algorithm>

namespace hdczsc::serve {

ServerRuntime::ServerRuntime(std::shared_ptr<const InferenceEngine> engine, ServerConfig cfg)
    : engine_(std::move(engine)), cfg_(cfg), batcher_(cfg.batch) {
  if (!engine_) throw std::invalid_argument("ServerRuntime: null engine");
  if (cfg_.n_workers == 0) cfg_.n_workers = 1;
}

ServerRuntime::~ServerRuntime() { stop(); }

void ServerRuntime::start() {
  if (stopped_.load())
    throw std::logic_error("ServerRuntime::start: runtime already stopped (one-shot)");
  if (running_.exchange(true)) return;
  workers_.reserve(cfg_.n_workers);
  for (std::size_t i = 0; i < cfg_.n_workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

void ServerRuntime::stop() {
  stopped_.store(true);
  batcher_.shutdown();
  for (auto& w : workers_) w.join();
  workers_.clear();
  running_.store(false);
}

std::future<Prediction> ServerRuntime::classify_async(tensor::Tensor image) {
  // Reject malformed requests synchronously, before they can join a batch.
  if (!(image.dim() == 3 || (image.dim() == 4 && image.size(0) == 1)))
    throw std::invalid_argument("serve: request image must be [3,S,S] or [1,3,S,S]");
  auto fut = batcher_.submit(std::move(image));
  if (!fut) {
    stats_.record_reject();
    throw ServerOverloaded();
  }
  return std::move(*fut);
}

Prediction ServerRuntime::classify(tensor::Tensor image) {
  return classify_async(std::move(image)).get();
}

void ServerRuntime::worker_loop() {
  std::vector<DynamicBatcher::Item> items;
  while (batcher_.collect(items)) {
    if (items.empty()) continue;
    stats_.observe_queue_depth(batcher_.depth() + items.size());

    // The first request of the batch sets the image shape; requests that
    // don't match it fail individually instead of poisoning the batch.
    const tensor::Tensor& first = items[0].image;
    const std::size_t per_image = first.numel();
    tensor::Shape shape = first.dim() == 3
                              ? tensor::Shape{0, first.size(0), first.size(1), first.size(2)}
                              : tensor::Shape{0, first.size(1), first.size(2), first.size(3)};
    std::vector<std::size_t> good;
    good.reserve(items.size());
    for (std::size_t b = 0; b < items.size(); ++b) {
      if (items[b].image.numel() == per_image) {
        good.push_back(b);
      } else {
        items[b].promise.set_exception(std::make_exception_ptr(std::invalid_argument(
            "serve: request image shape differs from the rest of the batch")));
      }
    }

    shape[0] = good.size();
    tensor::Tensor input(shape);
    float* dst = input.data();
    for (std::size_t g = 0; g < good.size(); ++g) {
      const float* src = items[good[g]].image.data();
      std::copy(src, src + per_image, dst + g * per_image);
    }

    try {
      std::vector<Prediction> preds = engine_->classify_batch(input);
      const auto done = DynamicBatcher::Clock::now();
      stats_.record_batch(good.size());
      // GZSL telemetry: count where the decisions landed in the
      // seen/unseen partition. Only recorded for partitioned snapshots —
      // without one every label counts as seen, and an all-seen counter
      // would be indistinguishable from the one-domain collapse the
      // balance metric exists to flag.
      const ModelSnapshot& snap = engine_->snapshot();
      if (snap.has_partition()) {
        std::size_t seen = 0;
        for (const Prediction& p : preds) seen += snap.is_seen(p.label);
        stats_.record_domains(seen, preds.size() - seen);
      }
      for (std::size_t g = 0; g < good.size(); ++g) {
        items[good[g]].promise.set_value(preds[g]);
        stats_.record_request(
            std::chrono::duration<double, std::milli>(done - items[good[g]].enqueued)
                .count());
      }
    } catch (...) {
      auto eptr = std::current_exception();
      for (std::size_t g : good) items[g].promise.set_exception(eptr);
    }
  }
}

}  // namespace hdczsc::serve
