#include "serve/server.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace hdczsc::serve {

ServerRuntime::ServerRuntime(std::shared_ptr<const InferenceEngine> engine, ServerConfig cfg)
    : engine_(std::move(engine)), cfg_(std::move(cfg)), batcher_(cfg_.batch), stats_(cfg_.name),
      trace_(cfg_.name) {
  if (!engine_) throw std::invalid_argument("ServerRuntime: null engine");
  if (cfg_.n_workers == 0) cfg_.n_workers = 1;
  trace_.set_enabled(cfg_.tracing);
}

ServerRuntime::~ServerRuntime() { stop(); }

void ServerRuntime::start() {
  if (stopped_.load())
    throw std::logic_error("ServerRuntime::start: runtime already stopped (one-shot)");
  if (running_.exchange(true)) return;
  workers_.reserve(cfg_.n_workers);
  for (std::size_t i = 0; i < cfg_.n_workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

void ServerRuntime::stop() {
  stopped_.store(true);
  batcher_.shutdown();
  for (auto& w : workers_) w.join();
  workers_.clear();
  running_.store(false);
}

std::future<Prediction> ServerRuntime::classify_async(tensor::Tensor image) {
  // Reject malformed requests synchronously, before they can join a batch.
  if (!(image.dim() == 3 || (image.dim() == 4 && image.size(0) == 1)))
    throw std::invalid_argument("serve: request image must be [3,S,S] or [1,3,S,S]");
  auto fut = batcher_.submit(std::move(image));
  if (!fut) {
    stats_.record_reject();
    throw ServerOverloaded();
  }
  return std::move(*fut);
}

Prediction ServerRuntime::classify(tensor::Tensor image) {
  return classify_async(std::move(image)).get();
}

void ServerRuntime::worker_loop() {
  using Clock = DynamicBatcher::Clock;
  const auto ms = [](Clock::duration d) {
    return std::chrono::duration<double, std::milli>(d).count();
  };

  std::vector<DynamicBatcher::Item> items;
  while (batcher_.collect(items)) {
    if (items.empty()) continue;
    // Tracing sampled once per batch: off, the only clocks read are the
    // two the latency metric has always needed (collect + done).
    const bool tracing = trace_.enabled();
    const auto collected = Clock::now();
    stats_.observe_queue_depth(batcher_.depth() + items.size());

    // The first request of the batch sets the image shape; requests that
    // don't match it fail individually instead of poisoning the batch.
    const tensor::Tensor& first = items[0].image;
    const std::size_t per_image = first.numel();
    tensor::Shape shape = first.dim() == 3
                              ? tensor::Shape{0, first.size(0), first.size(1), first.size(2)}
                              : tensor::Shape{0, first.size(1), first.size(2), first.size(3)};
    std::vector<std::size_t> good;
    good.reserve(items.size());
    for (std::size_t b = 0; b < items.size(); ++b) {
      if (items[b].image.numel() == per_image) {
        good.push_back(b);
      } else {
        util::log_warn("serve: request image shape differs from the rest of the batch (",
                       items[b].image.numel(), " elements vs ", per_image, "), failing it");
        items[b].promise.set_exception(std::make_exception_ptr(std::invalid_argument(
            "serve: request image shape differs from the rest of the batch")));
      }
    }

    shape[0] = good.size();
    tensor::Tensor input(shape);
    float* dst = input.data();
    for (std::size_t g = 0; g < good.size(); ++g) {
      const float* src = items[good[g]].image.data();
      std::copy(src, src + per_image, dst + g * per_image);
    }
    const auto assembled = tracing ? Clock::now() : collected;

    try {
      InferenceEngine::BatchTimings timings;
      std::vector<Prediction> preds =
          engine_->classify_batch(input, tracing ? &timings : nullptr);
      const auto done = Clock::now();
      stats_.record_batch(good.size());
      // GZSL telemetry: count where the decisions landed in the
      // seen/unseen partition. Only recorded for partitioned snapshots —
      // without one every label counts as seen, and an all-seen counter
      // would be indistinguishable from the one-domain collapse the
      // balance metric exists to flag.
      const ModelSnapshot& snap = engine_->snapshot();
      if (snap.has_partition()) {
        std::size_t seen = 0;
        for (const Prediction& p : preds) seen += snap.is_seen(p.label);
        stats_.record_domains(seen, preds.size() - seen);
      }
      // All telemetry is recorded *before* the promises are fulfilled: a
      // client that sees its future resolve is guaranteed its request is
      // already counted, so shutdown reads of the stats/traces are coherent.
      for (std::size_t g : good) {
        stats_.record_request(ms(done - items[g].enqueued),
                              ms(collected - items[g].enqueued));
      }
      if (tracing) {
        // Batch-shared stages (collect/embed/score/reply) are identical for
        // every member — the batch is the unit of that work; queue-wait and
        // total are per request. The reply span covers the post-compute
        // bookkeeping (domain counting, stats) up to the promise handoff.
        const auto replied = Clock::now();
        const double collect_ms = ms(assembled - collected);
        const double reply_ms = ms(replied - done);
        for (std::size_t g : good) {
          obs::TraceSpan span;
          span.stage(obs::Stage::kQueueWait) = ms(collected - items[g].enqueued);
          span.stage(obs::Stage::kCollect) = collect_ms;
          span.stage(obs::Stage::kEmbed) = timings.embed_ms;
          span.stage(obs::Stage::kScore) = timings.score_ms;
          span.stage(obs::Stage::kReply) = reply_ms;
          span.total_ms = ms(replied - items[g].enqueued);
          trace_.record(span);
        }
      }
      for (std::size_t g = 0; g < good.size(); ++g) {
        items[good[g]].promise.set_value(preds[g]);
      }
    } catch (const std::exception& e) {
      util::log_warn("serve: batch of ", good.size(), " failed: ", e.what());
      auto eptr = std::current_exception();
      for (std::size_t g : good) items[g].promise.set_exception(eptr);
    } catch (...) {
      util::log_warn("serve: batch of ", good.size(), " failed with a non-std exception");
      auto eptr = std::current_exception();
      for (std::size_t g : good) items[g].promise.set_exception(eptr);
    }
  }
}

}  // namespace hdczsc::serve
