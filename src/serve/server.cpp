#include "serve/server.hpp"

#include <algorithm>
#include <numeric>

#include "util/log.hpp"

namespace hdczsc::serve {

ServerRuntime::ServerRuntime(std::shared_ptr<const InferenceEngine> engine, ServerConfig cfg)
    : engine_(std::move(engine)), cfg_(std::move(cfg)), batcher_(cfg_.batch), stats_(cfg_.name),
      trace_(cfg_.name) {
  if (!engine_) throw std::invalid_argument("ServerRuntime: null engine");
  if (cfg_.n_workers == 0) cfg_.n_workers = 1;
  trace_.set_enabled(cfg_.tracing);
  // Expose the backbone numeric path alongside the serve_* series so an
  // exporter scrape distinguishes int8 replicas from float32 ones. The
  // engine's precision is authoritative (construction already validated the
  // snapshot carries a quantized artifact when int8 was requested).
  if (!cfg_.name.empty()) {
    obs::default_registry()
        .gauge("serve_embed_precision", {{"model", cfg_.name}},
               "backbone numeric path (0 = float32, 1 = int8)")
        ->set(static_cast<double>(static_cast<unsigned>(engine_->precision())));
    obs::default_registry()
        .gauge("serve_retrieval_mode", {{"model", cfg_.name}},
               "top-k retrieval tier (0 = exact, 1 = ivf, 2 = cascade)")
        ->set(static_cast<double>(static_cast<unsigned>(engine_->retrieval())));
  }
}

ServerRuntime::~ServerRuntime() { stop(); }

void ServerRuntime::start() {
  if (stopped_.load())
    throw std::logic_error("ServerRuntime::start: runtime already stopped (one-shot)");
  if (running_.exchange(true)) return;
  workers_.reserve(cfg_.n_workers);
  for (std::size_t i = 0; i < cfg_.n_workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

void ServerRuntime::stop() {
  stopped_.store(true);
  batcher_.shutdown();
  for (auto& w : workers_) w.join();
  workers_.clear();
  running_.store(false);
}

std::optional<InferResult> ServerRuntime::validate(const InferRequest& req) const {
  const tensor::Tensor& in = req.input;
  const bool image = in.dim() == 3 || (in.dim() == 4 && in.size(0) == 1);
  const bool embedding = in.dim() == 1 || (in.dim() == 2 && in.size(0) == 1);
  if (!(image || embedding) || in.numel() == 0)
    return make_error_result(req.request_id, InferStatus::kBadShape,
                             "input must be an image [3,S,S] / [1,3,S,S] or an embedding "
                             "[d] / [1,d]");
  if (embedding) {
    const std::size_t d = in.dim() == 1 ? in.size(0) : in.size(1);
    if (d != engine_->snapshot().dim())
      return make_error_result(req.request_id, InferStatus::kBadShape,
                               "embedding width " + std::to_string(d) +
                                   " does not match the model dim " +
                                   std::to_string(engine_->snapshot().dim()));
  }
  if (req.k == 0 && !req.want_logits)
    return make_error_result(req.request_id, InferStatus::kBadRequest,
                             "k == 0 with want_logits false requests nothing");
  if (req.scoring != ScoringSelect::kModelDefault) {
    const bool want_float = req.scoring == ScoringSelect::kFloatCosine;
    const bool is_float = engine_->mode() == ScoringMode::kFloatCosine;
    if (want_float != is_float)
      return make_error_result(req.request_id, InferStatus::kBadScoring,
                               "request pinned " +
                                   scoring_mode_name(want_float ? ScoringMode::kFloatCosine
                                                                : ScoringMode::kBinaryHamming) +
                                   " but the model serves " + scoring_mode_name(engine_->mode()));
  }
  return std::nullopt;
}

void ServerRuntime::submit(InferRequest req, InferDone done) {
  if (auto err = validate(req)) {
    done(std::move(*err));
    return;
  }
  const std::uint64_t id = req.request_id;
  switch (batcher_.submit(req, done)) {
    case DynamicBatcher::Admit::kAccepted:
      return;
    case DynamicBatcher::Admit::kQueueFull:
      stats_.record_reject();
      done(make_error_result(id, InferStatus::kOverloaded,
                             "queue full (max_queue_depth=" +
                                 std::to_string(batcher_.policy().max_queue_depth) + ")"));
      return;
    case DynamicBatcher::Admit::kShutdown:
      stats_.record_reject();
      done(make_error_result(id, InferStatus::kShutdown, "runtime stopped"));
      return;
  }
}

std::future<InferResult> ServerRuntime::submit(InferRequest req) {
  auto prom = std::make_shared<std::promise<InferResult>>();
  std::future<InferResult> fut = prom->get_future();
  submit(std::move(req), [prom](InferResult&& r) { prom->set_value(std::move(r)); });
  return fut;
}

void ServerRuntime::worker_loop() {
  using Clock = DynamicBatcher::Clock;
  const auto ms = [](Clock::duration d) {
    return std::chrono::duration<double, std::milli>(d).count();
  };

  std::vector<DynamicBatcher::Item> items;
  while (batcher_.collect(items)) {
    if (items.empty()) continue;
    const bool tracing = trace_.enabled();
    const auto collected = Clock::now();
    stats_.observe_queue_depth(batcher_.depth() + items.size());

    // The first request of the batch sets its input kind (image vs
    // pre-computed embedding) and element count; requests that don't match
    // both fail individually instead of poisoning the batch. validate()
    // already pinned every embedding to the model dim, so an embedding can
    // only be split from the batch by an image whose numel coincides —
    // which the kind check catches.
    const tensor::Tensor& first = items[0].req.input;
    const bool embed_kind = first.dim() <= 2;
    const std::size_t per_input = first.numel();
    std::vector<std::size_t> good;
    good.reserve(items.size());
    for (std::size_t b = 0; b < items.size(); ++b) {
      const tensor::Tensor& in = items[b].req.input;
      if ((in.dim() <= 2) == embed_kind && in.numel() == per_input) {
        good.push_back(b);
      } else {
        util::log_warn("serve: request input differs from the rest of the batch (",
                       in.numel(), " elements vs ", per_input, "), failing it");
        items[b].done(make_error_result(items[b].req.request_id, InferStatus::kBadShape,
                                        "request input differs from the rest of the batch"));
      }
    }

    tensor::Shape shape;
    if (embed_kind) {
      shape = {0, per_input};
    } else {
      shape = first.dim() == 3 ? tensor::Shape{0, first.size(0), first.size(1), first.size(2)}
                               : tensor::Shape{0, first.size(1), first.size(2), first.size(3)};
    }
    shape[0] = good.size();
    tensor::Tensor input(shape);
    float* dst = input.data();
    for (std::size_t g = 0; g < good.size(); ++g) {
      const float* src = items[good[g]].req.input.data();
      std::copy(src, src + per_input, dst + g * per_input);
    }
    const auto assembled = Clock::now();

    std::size_t kmax = 0;
    bool any_logits = false;
    for (std::size_t g : good) {
      kmax = std::max<std::size_t>(kmax, items[g].req.k);
      any_logits |= items[g].req.want_logits;
    }

    try {
      InferenceEngine::BatchTimings timings;
      std::vector<std::vector<TopK>> hits;
      tensor::Tensor lg;
      if (any_logits) {
        // One flat-scan forward serves the whole batch; per-item top-k is
        // derived from each row by (score desc, label asc) — the exact
        // ordering the sharded scatter/gather retrieval produces, so the
        // two execution paths stay bit-identical (tests/test_infer_api).
        lg = engine_->logits(input, &timings);
      } else {
        hits = engine_->topk_batch(input, kmax, &timings);
      }
      const auto done_ts = Clock::now();

      std::vector<InferResult> results(good.size());
      for (std::size_t g = 0; g < good.size(); ++g) {
        const InferRequest& req = items[good[g]].req;
        InferResult& r = results[g];
        r.request_id = req.request_id;
        if (any_logits) {
          const std::size_t classes = lg.size(1);
          const float* row = lg.data() + g * classes;
          const std::size_t k = std::min<std::size_t>(req.k, classes);
          if (k > 0) {
            std::vector<std::size_t> idx(classes);
            std::iota(idx.begin(), idx.end(), std::size_t{0});
            std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                              [row](std::size_t a, std::size_t b) {
                                if (row[a] != row[b]) return row[a] > row[b];
                                return a < b;
                              });
            r.topk.reserve(k);
            for (std::size_t i = 0; i < k; ++i) r.topk.push_back(TopK{idx[i], row[idx[i]]});
          }
          if (req.want_logits) r.logits.assign(row, row + classes);
        } else {
          r.topk = std::move(hits[g]);
          if (r.topk.size() > req.k) r.topk.resize(req.k);
        }
        r.timings.queue_wait_ms = ms(collected - items[good[g]].enqueued);
        r.timings.collect_ms = ms(assembled - collected);
        r.timings.embed_ms = timings.embed_ms;
        r.timings.score_ms = timings.score_ms;
        r.timings.total_ms = ms(done_ts - items[good[g]].enqueued);
      }

      stats_.record_batch(good.size());
      // GZSL telemetry: count where the top-1 decisions landed in the
      // seen/unseen partition. Only recorded for partitioned versions —
      // without one every label counts as seen, and an all-seen counter
      // would be indistinguishable from the one-domain collapse the
      // balance metric exists to flag. The partition is read off a freshly
      // pinned StoreVersion, not the snapshot: appended classes live past
      // the snapshot's fixed-size mask, and any version at least as new as
      // the one that scored the batch classifies its labels correctly
      // (appends only extend the space, never re-partition existing rows).
      const std::shared_ptr<const StoreVersion> ver = engine_->pin();
      if (ver->has_partition()) {
        std::size_t seen = 0, decided = 0;
        for (const InferResult& r : results) {
          if (r.topk.empty()) continue;
          ++decided;
          seen += r.topk[0].label < ver->n_classes() && ver->is_seen(r.topk[0].label);
        }
        if (decided > 0) stats_.record_domains(seen, decided - seen);
      }
      // All telemetry is recorded *before* the completions run: a client
      // that sees its result is guaranteed its request is already counted,
      // so shutdown reads of the stats/traces are coherent.
      for (std::size_t g : good) {
        stats_.record_request(ms(done_ts - items[g].enqueued),
                              ms(collected - items[g].enqueued));
      }
      if (tracing) {
        // Batch-shared stages (collect/embed/score/reply) are identical for
        // every member — the batch is the unit of that work; queue-wait and
        // total are per request. The reply span covers the post-compute
        // bookkeeping (result assembly, domain counting, stats) up to the
        // completion handoff.
        const auto replied = Clock::now();
        const double collect_ms = ms(assembled - collected);
        const double reply_ms = ms(replied - done_ts);
        for (std::size_t g : good) {
          obs::TraceSpan span;
          span.stage(obs::Stage::kQueueWait) = ms(collected - items[g].enqueued);
          span.stage(obs::Stage::kCollect) = collect_ms;
          span.stage(obs::Stage::kEmbed) = timings.embed_ms;
          span.stage(obs::Stage::kScore) = timings.score_ms;
          span.stage(obs::Stage::kReply) = reply_ms;
          span.total_ms = ms(replied - items[g].enqueued);
          trace_.record(span);
        }
      }
      for (std::size_t g = 0; g < good.size(); ++g) {
        items[good[g]].done(std::move(results[g]));
      }
    } catch (const std::exception& e) {
      util::log_warn("serve: batch of ", good.size(), " failed: ", e.what());
      for (std::size_t g : good)
        items[g].done(
            make_error_result(items[g].req.request_id, InferStatus::kInternal, e.what()));
    } catch (...) {
      util::log_warn("serve: batch of ", good.size(), " failed with a non-std exception");
      for (std::size_t g : good)
        items[g].done(make_error_result(items[g].req.request_id, InferStatus::kInternal,
                                        "non-std exception"));
    }
  }
}

}  // namespace hdczsc::serve
