// StoreVersion: one immutable, shareable version of a model's servable
// prototype state — the unit of live model evolution.
//
// The serving stack used to assume a fixed class count: the engine held
// one sharded store, one resolved GZSL penalty and one optional IVF index
// for the lifetime of the process. Online class appends break that
// assumption, so everything a scoring path reads is now bundled into a
// StoreVersion value:
//
//   * the PrototypeStore (copy-on-write slabs — an appended version
//     structurally shares the previous version's rows),
//   * the ShardedPrototypeStore view over those rows,
//   * the seen/unseen partition mask and the SeenPenalty resolved against
//     *this* version's class count,
//   * the optional IvfIndex (appends extend the assignment vector by
//     nearest-centroid without re-clustering),
//   * the frozen class-attribute rows the prototypes were encoded from,
//   * a running content checksum over (float rows, packed rows, seen
//     bytes) that anchors delta-snapshot chains.
//
// Versions are published through shared_ptr swaps (InferenceEngine pins
// one version per batch; ModelRegistry re-exposes the counter), so a
// batch scored against version k is bit-identical to exact scoring over
// version k even while k+1 is being appended and published. Old versions
// stay valid as long as anyone pins them — nothing is ever mutated.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "serve/ann_store.hpp"
#include "serve/prototype_store.hpp"
#include "serve/sharded_store.hpp"
#include "tensor/tensor.hpp"

namespace hdczsc::serve {

struct StoreVersion {
  /// Monotone per-model version counter: the snapshot's persisted value at
  /// load, +1 per append. Surfaced as the `ver` registry column and the
  /// serve_store_version gauge.
  std::uint64_t version = 0;
  std::shared_ptr<const PrototypeStore> store;
  std::shared_ptr<const ShardedPrototypeStore> sharded;
  /// Per-class partition mask (1 = seen); empty = no partition, every
  /// class counts as seen. Appended classes default to *unseen* — serving
  /// them is the whole point of zero-shot evolution.
  std::vector<std::uint8_t> seen_mask;
  std::size_t n_seen = 0;  ///< popcount of seen_mask (0 when mask empty)
  /// Calibrated-stacking handicap resolved against this version's store
  /// and mask (auto-recalibrated after appends when the engine carries a
  /// validation split).
  SeenPenalty penalty;
  /// Optional IVF coarse index over this version's rows (null = exact
  /// retrieval only).
  std::shared_ptr<const IvfIndex> ivf;
  /// The class-attribute rows A [C, α] the prototypes were encoded from —
  /// grows with appends, persisted by delta snapshots.
  tensor::Tensor class_attributes;
  /// FNV-1a 64 over the per-row content stream (see content_checksum) —
  /// the bitwise identity a delta chain is validated against.
  std::uint64_t content_checksum = 0;

  std::size_t n_classes() const { return store->n_classes(); }
  bool has_partition() const { return !seen_mask.empty(); }
  std::size_t seen_count() const { return has_partition() ? n_seen : n_classes(); }
  std::size_t unseen_count() const { return n_classes() - seen_count(); }
  bool is_seen(std::size_t c) const { return seen_mask.empty() || seen_mask[c] != 0; }
  const SeenPenalty* penalty_ptr() const { return penalty.active() ? &penalty : nullptr; }
};

/// FNV-1a 64 over the store's per-row content stream: for each visible row
/// c — the d·4 bytes of the normalized float row, the words_per_row·8
/// bytes of the packed binary row, then one seen byte (1 when the mask is
/// empty or non-zero at c, else 0). Appending rows extends the stream, so
/// checksum(base + delta rows) == extend_content_checksum(checksum(base),
/// appended store, mask, base rows) — the invariant delta-snapshot chains
/// are validated with.
std::uint64_t content_checksum(const PrototypeStore& store,
                               const std::vector<std::uint8_t>& seen_mask);
/// Continue a row-stream checksum over rows [begin_row, store.n_classes()).
std::uint64_t extend_content_checksum(std::uint64_t h, const PrototypeStore& store,
                                      const std::vector<std::uint8_t>& seen_mask,
                                      std::size_t begin_row);

/// Held-out validation split for GZSL seen-penalty auto-calibration:
/// pre-computed embeddings [N, d] with their true serving labels. Carried
/// by ServerConfig; the engine recalibrates on load and after every append
/// so freshly added unseen classes are immediately served under a
/// calibrated decision rule.
struct GzslCalibration {
  tensor::Tensor embeddings;        // [N, d]
  std::vector<std::size_t> labels;  // [N], serving-label space
};

/// Extend a partition mask by `n_new` appended rows. An empty base mask
/// ("no partition, everything seen") is materialized to all-1s the moment a
/// non-seen row arrives; conversely a resulting all-seen mask collapses
/// back to empty. `flags` (one byte per new row, non-zero = seen) may be
/// empty — the zero-shot default, every appended class unseen. Checksum
/// semantics are unaffected by the materialization: empty and all-1s masks
/// hash identically.
std::vector<std::uint8_t> extend_seen_mask(const std::vector<std::uint8_t>& base_mask,
                                           std::size_t base_rows,
                                           const std::vector<std::uint8_t>& flags,
                                           std::size_t n_new);

/// Extend an IVF assignment vector over a grown store: rows
/// [first_new_row, grown.n_classes()) are assigned to their nearest
/// centroid (max float dot over the L2-normalized rows — the k-means
/// metric the index was built with; ties → lower centroid) and appended to
/// `assignments`. No re-clustering: appends only extend the vector, so a
/// persisted delta's assignments reproduce exactly.
std::vector<std::uint32_t> extend_ivf_assignments(const tensor::Tensor& centroids,
                                                  std::vector<std::uint32_t> assignments,
                                                  const PrototypeStore& grown,
                                                  std::size_t first_new_row);

/// Sweep the calibrated-stacking penalty over the split's decision margins
/// and return the value maximizing the harmonic mean of seen-class and
/// unseen-class top-1 accuracy (ties -> the smaller penalty; 0 when the
/// store has no genuine partition or the split decides nothing). `binary`
/// selects the scoring path the decisions are computed under. Labels >=
/// n_classes (a split captured before an append) are ignored.
float calibrate_seen_penalty(const PrototypeStore& store,
                             const std::vector<std::uint8_t>& seen_mask,
                             const GzslCalibration& calibration, bool binary);

}  // namespace hdczsc::serve
