#include "serve/batcher.hpp"

namespace hdczsc::serve {

DynamicBatcher::DynamicBatcher(BatchPolicy policy) : policy_(policy) {
  if (policy_.max_batch == 0) policy_.max_batch = 1;
}

DynamicBatcher::Admit DynamicBatcher::submit(InferRequest& req, InferDone& done) {
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) return Admit::kShutdown;
  if (queue_.size() >= policy_.max_queue_depth) return Admit::kQueueFull;
  Item item;
  item.req = std::move(req);
  item.done = std::move(done);
  item.enqueued = Clock::now();
  queue_.push_back(std::move(item));
  lock.unlock();
  cv_.notify_one();
  return Admit::kAccepted;
}

bool DynamicBatcher::collect(std::vector<Item>& out) {
  out.clear();
  const auto delay = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(policy_.max_delay_ms));
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) return false;  // shut down and drained

    // Coalescing window: wait for a full batch, but never hold the oldest
    // request past the delay bound. The deadline is re-derived from the
    // *current* front on every wake — the front is always the oldest
    // queued request (FIFO), so a spurious wakeup or a late-arriving
    // request can never re-arm the wait off a newer enqueue time, and if
    // another worker takes the request this pass was armed on, the next
    // pass waits for the new oldest (a later deadline — each request is
    // bounded by its *own* enqueue + max_delay, never the batch's).
    while (!shutdown_ && queue_.size() < policy_.max_batch) {
      const auto deadline = queue_.front().enqueued + delay;
      if (Clock::now() >= deadline) break;  // oldest request is due
      cv_.wait_until(lock, deadline);
      // The queue may have been drained by another worker while the mutex
      // was released inside wait_until; never hand out an empty batch —
      // fall through to the outer wait.
      if (queue_.empty()) break;
    }
    if (!queue_.empty() || shutdown_) break;
  }
  if (queue_.empty()) return false;

  const std::size_t take = std::min(queue_.size(), policy_.max_batch);
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return true;
}

void DynamicBatcher::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

std::size_t DynamicBatcher::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace hdczsc::serve
