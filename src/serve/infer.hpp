// The one versioned request/response contract of the serving stack.
//
// Every scoring entrypoint — in-process (`ServerRuntime::submit`,
// `ModelRegistry::submit`) and over the wire (src/net/) — speaks the same
// pair of types:
//
//   InferRequest  { model_key, input, k, scoring, want_logits, request_id }
//   InferResult   { request_id, status, topk hits, logits?, stage timings }
//
// and every failure mode is a *named status code* on the result, not an
// ad-hoc exception type: the wire protocol serializes both structs
// verbatim (docs/protocol.md), so a network client sees exactly the
// statuses an in-process caller sees.
//
// Inputs come in two shapes (the Triton-style "the tensor is the
// contract" rule):
//   * an image  [3, S, S] or [1, 3, S, S] — the full embed + score path;
//   * a pre-computed embedding [d] or [1, d] with d == the model's
//     projection dim — scoring only. This is the split-inference shape:
//     an edge device runs the backbone locally (examples/edge_inference)
//     and ships the d-dimensional query, ~10-50x smaller than the image,
//     to the prototype store.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <string>
#include <vector>

#include "serve/sharded_store.hpp"
#include "tensor/tensor.hpp"

namespace hdczsc::serve {

/// Result status of one inference request. Append-only: codes are
/// mirrored verbatim in the wire protocol (docs/protocol.md), so values
/// never change meaning and new codes only ever extend the list.
enum class InferStatus : std::uint8_t {
  kOk = 0,
  kBadModel = 1,     ///< model_key invalid or not registered
  kBadShape = 2,     ///< input is not an admissible image/embedding shape
  kBadScoring = 3,   ///< request pinned a scoring mode the model does not serve
  kBadRequest = 4,   ///< semantically empty request (k == 0, no logits)
  kOverloaded = 5,   ///< admission control: bounded queue full, retry later
  kShutdown = 6,     ///< runtime stopped; no further requests served
  kInternal = 7,     ///< execution failed server-side (message has details)
  kBadFrame = 8,     ///< wire: malformed/truncated frame payload
  kBadProtocol = 9,  ///< wire: magic/version mismatch
  kTransport = 10,   ///< client-side: connection lost before a response
};

const char* infer_status_name(InferStatus s);

/// Scoring-mode pin on a request. kModelDefault defers to whatever mode
/// the model was loaded with; a non-default value is a contract assertion
/// — if it differs from the model's serving mode the request fails with
/// kBadScoring instead of silently scoring under the other path.
enum class ScoringSelect : std::uint8_t {
  kModelDefault = 0,
  kFloatCosine = 1,
  kBinaryHamming = 2,
};

/// One inference request (the unit the wire protocol frames).
struct InferRequest {
  /// Registry endpoint name (see is_valid_model_key). Ignored when
  /// submitting straight to a single-model ServerRuntime.
  std::string model_key;
  /// Image [3, S, S] / [1, 3, S, S], or embedding [d] / [1, d].
  tensor::Tensor input;
  /// Top-k hits wanted (clamped to the model's class count). k == 0 is
  /// admissible only with want_logits — "just give me the row".
  std::uint32_t k = 1;
  ScoringSelect scoring = ScoringSelect::kModelDefault;
  /// Also return the full C-wide logit row (flat-scan path).
  bool want_logits = false;
  /// Client-chosen correlation id, echoed verbatim on the result. The
  /// network client auto-assigns one per connection when left 0.
  std::uint64_t request_id = 0;
};

/// Server-side stage wall times of one request (milliseconds). The
/// queue-wait → score chain joins the per-request obs::Tracer spans; the
/// network layer adds its own net_* histograms around them.
struct InferTimings {
  double queue_wait_ms = 0.0;  ///< submit → batch collected
  double collect_ms = 0.0;     ///< shape check + batch assembly
  double embed_ms = 0.0;       ///< backbone forward (0 for embedding inputs)
  double score_ms = 0.0;       ///< prototype scan / top-k
  double total_ms = 0.0;       ///< submit → result built
};

/// One inference result. status != kOk carries a human-readable `message`
/// and empty payload fields.
struct InferResult {
  std::uint64_t request_id = 0;
  InferStatus status = InferStatus::kOk;
  std::string message;
  /// min(k, C) hits ordered by (score desc, label asc) — identical to the
  /// sharded scatter/gather ranking and to the flat argsort.
  std::vector<TopK> topk;
  /// Full logit row [C] iff want_logits was set.
  std::vector<float> logits;
  InferTimings timings;

  bool ok() const { return status == InferStatus::kOk; }
  /// The winning hit; throws std::logic_error when there is none.
  const TopK& top() const;
};

/// Completion callback: invoked exactly once per submitted request —
/// synchronously on rejection (admission control / validation), from a
/// worker thread otherwise. The network front-end serves responses from
/// this hook; future-returning submit() is implemented on top of it.
using InferDone = std::function<void(InferResult&&)>;

/// Registry keys are stable endpoint names, mirrored verbatim in the wire
/// protocol and in obs metric labels: 1..64 chars of [A-Za-z0-9._-].
inline constexpr std::size_t kMaxModelKeyBytes = 64;
bool is_valid_model_key(const std::string& key);

/// Error-result constructor (payload empty, message attached).
InferResult make_error_result(std::uint64_t request_id, InferStatus status,
                              std::string message);
/// A future already resolved to `r` (synchronous-rejection plumbing).
std::future<InferResult> make_ready_result(InferResult r);

}  // namespace hdczsc::serve
