// Shared k-bounded selection primitives for prototype retrieval.
//
// Extracted from the sharded scatter/gather scan (sharded_store.cpp) so the
// approximate retrieval tier (ann_store.hpp) selects candidates with the
// *identical* machinery — same ordering, same block-skip thresholds, same
// float/integer domains. That identity is what makes the "nprobe == C and
// unbounded rerank degenerates bit-identically to the exact path" property
// provable instead of merely plausible (tests/test_ann_retrieval.cpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

namespace hdczsc::serve {

struct TopK;  // serve/sharded_store.hpp

namespace detail {

/// The one retrieval order both scoring paths and all store layouts share:
/// score descending, label ascending on exact score ties. The flat
/// reference (full argsort of score_float / score_binary logits) under this
/// order is what every scatter/gather and approximate result is asserted
/// against.
template <typename Hit>
inline bool better(const Hit& a, const Hit& b) {
  return a.score > b.score || (a.score == b.score && a.label < b.label);
}

/// Rows per block-skip test in the selection loops: once a cutoff is
/// known, a whole block is skipped with one vectorizable compare-reduce
/// over its scores, so the steady-state selection cost drops well below
/// one branch per row. 16 keeps the reduce inside two SSE registers.
inline constexpr std::size_t kSelectBlock = 16;

/// k-bounded candidate selection over caller-provided storage (one flat
/// slot per (shard, query), so the scatter allocates nothing per scan): a
/// binary heap with the *worst* kept candidate on top (std::push_heap with
/// `better` as the ordering puts the minimum there), so the steady-state
/// cost per scanned row is one score compare against the current cutoff.
template <typename Hit>
class BoundedTopK {
 public:
  BoundedTopK(Hit* slot, std::size_t k) : slot_(slot), k_(k) {}

  void offer(Hit c) {
    if (n_ < k_) {
      slot_[n_++] = c;
      std::push_heap(slot_, slot_ + n_, better<Hit>);
      return;
    }
    if (!better(c, slot_[0])) return;  // cutoff miss: the common case
    std::pop_heap(slot_, slot_ + n_, better<Hit>);
    slot_[n_ - 1] = c;
    std::push_heap(slot_, slot_ + n_, better<Hit>);
  }

  std::size_t size() const { return n_; }
  /// Block-skip threshold: scores strictly below it cannot enter (equal
  /// scores still can, via the label tie-break), -inf while filling.
  float cutoff_score() const {
    return n_ == k_ ? slot_[0].score : -std::numeric_limits<float>::infinity();
  }

 private:
  Hit* slot_;
  std::size_t k_;
  std::size_t n_ = 0;
};

/// Integer-domain variant of BoundedTopK for the binary path: candidates
/// are packed (hamming << 32) | label keys, so the retrieval order
/// (score desc, label asc) becomes a single u64 compare (h asc, label asc)
/// and the fast path is one predictable compare per scanned row.
///
/// Exactness precondition (checked by the caller): the two orders coincide
/// iff distinct Hamming counts never round to the same float logit.
/// score = scale·(1 − 2h/D) is weakly decreasing in h under float rounding
/// (for scale > 0), and strictly so while 1/D stays above float resolution
/// — i.e. for D < 2^24 code bits, far beyond any practical code width.
/// Wider codes (or non-positive scales) take the float-domain path.
class BoundedTopKHamming {
 public:
  /// `bound` is a global-cutoff hint: a key value known to have at least k
  /// better keys somewhere in the store (another shard's k-th best).
  /// Anything at or above it cannot make the global top-k and is dropped
  /// before touching the local heap — keys are unique (the label is in the
  /// low bits), so `>=` never discards a genuine tie.
  BoundedTopKHamming(std::uint64_t* slot, std::size_t k, std::uint64_t bound)
      : slot_(slot), k_(k), bound_(bound) {}

  void offer(std::uint32_t h, std::size_t label) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(h) << 32) | static_cast<std::uint64_t>(label);
    if (key >= bound_) return;  // cutoff miss: the common case
    if (n_ < k_) {
      slot_[n_++] = key;
      std::push_heap(slot_, slot_ + n_);  // max-key (worst candidate) on top
      if (n_ == k_) bound_ = std::min(bound_, slot_[0]);
      return;
    }
    std::pop_heap(slot_, slot_ + n_);
    slot_[n_ - 1] = key;
    std::push_heap(slot_, slot_ + n_);
    bound_ = std::min(bound_, slot_[0]);
  }

  std::size_t size() const { return n_; }
  /// The local k-th best key once full (the caller publishes it as the
  /// next shard's starting bound).
  std::uint64_t cutoff() const { return n_ == k_ ? slot_[0] : ~std::uint64_t{0}; }
  /// Block-skip threshold in the Hamming domain: rows with h strictly
  /// above it cannot beat the bound (h == threshold may, via the label
  /// bits), so a whole block of rows above it is skipped wholesale. The
  /// same inequality makes the prefix-word early exit admissible: a row
  /// whose *partial* Hamming count already exceeds the threshold cannot
  /// complete to a kept key, because the remaining words only add to h
  /// (ann_store.cpp).
  std::uint32_t threshold() const { return static_cast<std::uint32_t>(bound_ >> 32); }

 private:
  std::uint64_t* slot_;
  std::size_t k_;
  std::size_t n_ = 0;
  std::uint64_t bound_;
};

}  // namespace detail
}  // namespace hdczsc::serve
