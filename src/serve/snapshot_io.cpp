#include "serve/snapshot_io.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "core/zsc_model.hpp"
#include "data/attribute_space.hpp"
#include "nn/serialize.hpp"
#include "serve/ann_store.hpp"
#include "serve/store_version.hpp"
#include "tensor/serialize.hpp"

namespace hdczsc::serve {

namespace {

constexpr char kMagic[4] = {'H', 'D', 'C', 'S'};
constexpr char kDeltaMagic[4] = {'H', 'D', 'C', 'D'};
constexpr char kEndMarker[4] = {'P', 'A', 'N', 'S'};

using tensor::io::read_pod;
using tensor::io::read_string;
using tensor::io::write_pod;
using tensor::io::write_string;

tensor::Tensor read_tensor(std::istream& is, const char* what) {
  try {
    return tensor::load_tensor(is);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("snapshot_io: corrupt tensor record '") + what +
                             "': " + e.what());
  }
}

/// Everything up to (and including) the f32 temperature field.
struct Header {
  std::uint32_t version = 0;
  std::string arch;
  std::size_t proj_dim = 0;
  bool use_projection = true;
  std::string attr_kind;
  std::size_t mlp_hidden = 0;
  std::size_t n_attributes = 0;
  float scale = 0.0f;
};

Header read_header(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  if (!is || std::string(magic, 4) != std::string(kMagic, 4))
    throw std::runtime_error("snapshot_io: bad magic (not a .hdcsnap file)");
  const auto version = read_pod<std::uint32_t>(is, "format version");
  // Forward-only compatibility: every version up to the current one parses
  // (later versions only append records); files from a newer writer are
  // rejected rather than misread.
  if (version == 0 || version > kSnapshotVersion)
    throw std::runtime_error("snapshot_io: unsupported snapshot version " +
                             std::to_string(version) + " (this reader supports 1.." +
                             std::to_string(kSnapshotVersion) + ")");
  Header h;
  h.version = version;
  h.arch = read_string(is, "image-encoder arch");
  h.proj_dim = static_cast<std::size_t>(read_pod<std::uint64_t>(is, "projection dim"));
  h.use_projection = read_pod<std::uint8_t>(is, "use_projection flag") != 0;
  h.attr_kind = read_string(is, "attribute-encoder kind");
  h.mlp_hidden = static_cast<std::size_t>(read_pod<std::uint64_t>(is, "mlp hidden width"));
  h.n_attributes = static_cast<std::size_t>(read_pod<std::uint64_t>(is, "attribute count"));
  h.scale = read_pod<float>(is, "temperature");
  return h;
}

void read_end_marker(std::istream& is) {
  char tail[4];
  is.read(tail, 4);
  if (!is || std::string(tail, 4) != std::string(kEndMarker, 4))
    throw std::runtime_error("snapshot_io: truncated file (missing end marker)");
}

/// `expected_words` is what the already-parsed store geometry implies
/// (C rows × ⌈k·d/64⌉ words/row). A corrupted count is rejected by name
/// *before* any blind allocation or read — a short (or long) word array
/// must never parse as a smaller store with trailing records misaligned.
std::vector<std::uint64_t> read_packed_words(std::istream& is, std::size_t expected_words) {
  const auto n_words = read_pod<std::uint64_t>(is, "packed word count");
  if (n_words != expected_words)
    throw std::runtime_error("snapshot_io: corrupt record 'packed word count': " +
                             std::to_string(n_words) + " words, but the prototype rows imply " +
                             std::to_string(expected_words));
  tensor::io::check_readable(is, n_words, sizeof(std::uint64_t), "packed binary rows");
  std::vector<std::uint64_t> words(expected_words);
  is.read(reinterpret_cast<char*>(words.data()),
          static_cast<std::streamsize>(words.size() * sizeof(std::uint64_t)));
  if (!is) throw std::runtime_error("snapshot_io: truncated reading packed binary rows");
  return words;
}

/// GZSL label-space partition record (version ≥ 3): u64 seen count, then
/// ⌈C/64⌉ packed mask words. Internally consistent or rejected by name:
/// the count must match the mask popcount and tail bits must be zero.
/// Returns the per-class mask; empty when every class is seen (≡ no
/// partition, exactly how pre-v3 files load).
std::vector<std::uint8_t> read_partition(std::istream& is, std::size_t n_classes) {
  const auto n_seen = read_pod<std::uint64_t>(is, "seen-class count");
  if (n_seen > n_classes)
    throw std::runtime_error("snapshot_io: corrupt record 'seen-class count': " +
                             std::to_string(n_seen) + " seen of " +
                             std::to_string(n_classes) + " classes");
  const std::size_t n_words = (n_classes + 63) / 64;
  tensor::io::check_readable(is, n_words, sizeof(std::uint64_t), "seen mask");
  std::vector<std::uint64_t> words(n_words);
  is.read(reinterpret_cast<char*>(words.data()),
          static_cast<std::streamsize>(n_words * sizeof(std::uint64_t)));
  if (!is) throw std::runtime_error("snapshot_io: truncated reading seen mask");
  const std::size_t tail = n_classes % 64;
  if (tail != 0 && (words.back() >> tail) != 0)
    throw std::runtime_error(
        "snapshot_io: corrupt record 'seen mask': bits set beyond the class count");
  std::size_t bits = 0;
  for (std::uint64_t w : words) bits += static_cast<std::size_t>(std::popcount(w));
  if (bits != n_seen)
    throw std::runtime_error("snapshot_io: corrupt record 'seen mask': popcount " +
                             std::to_string(bits) + " != seen-class count " +
                             std::to_string(n_seen));
  if (n_seen == n_classes) return {};  // all seen ≡ no partition
  std::vector<std::uint8_t> mask(n_classes);
  for (std::size_t c = 0; c < n_classes; ++c)
    mask[c] = static_cast<std::uint8_t>((words[c / 64] >> (c % 64)) & 1);
  return mask;
}

void write_partition(std::ostream& os, const ModelSnapshot& snap) {
  const std::size_t c = snap.n_classes();
  std::vector<std::uint64_t> words((c + 63) / 64, 0);
  for (std::size_t i = 0; i < c; ++i)
    if (snap.is_seen(i)) words[i / 64] |= std::uint64_t{1} << (i % 64);
  write_pod<std::uint64_t>(os, snap.n_seen());
  os.write(reinterpret_cast<const char*>(words.data()),
           static_cast<std::streamsize>(words.size() * sizeof(std::uint64_t)));
}

}  // namespace

void save_snapshot(std::ostream& os, const ModelSnapshot& snap) {
  core::ZscModel& model = *snap.model_ptr();
  auto* mlp = dynamic_cast<core::MlpAttributeEncoder*>(&model.attribute_encoder());
  auto* hdc_enc = dynamic_cast<core::HdcAttributeEncoder*>(&model.attribute_encoder());

  os.write(kMagic, 4);
  write_pod<std::uint32_t>(os, kSnapshotVersion);
  write_string(os, model.image_encoder().arch());
  write_pod<std::uint64_t>(os, model.dim());
  write_pod<std::uint8_t>(os, model.image_encoder().has_projection() ? 1 : 0);
  write_string(os, model.attribute_encoder().name());
  write_pod<std::uint64_t>(os, mlp ? mlp->hidden() : 0);
  write_pod<std::uint64_t>(os, model.attribute_encoder().n_attributes());
  write_pod<float>(os, snap.scale());

  nn::save_parameters(os, model.parameters());
  nn::save_buffers(os, model.buffers());
  write_pod<std::uint8_t>(os, hdc_enc ? 1 : 0);
  if (hdc_enc) tensor::save_tensor(os, hdc_enc->dictionary_tensor());

  tensor::save_tensor(os, snap.class_attributes());
  const PrototypeStore& store = snap.prototypes();
  write_pod<std::uint64_t>(os, store.expansion());
  write_pod<std::uint64_t>(os, store.lsh_seed());
  write_pod<float>(os, store.scale());
  // Materialize the slabs' visible prefix once for serialization.
  tensor::save_tensor(os, store.normalized_copy());
  const std::vector<std::uint64_t> packed = store.packed_copy();
  write_pod<std::uint64_t>(os, packed.size());
  os.write(reinterpret_cast<const char*>(packed.data()),
           static_cast<std::streamsize>(packed.size() * sizeof(std::uint64_t)));
  write_pod<std::uint64_t>(os, snap.preferred_shards());  // v2 shard-layout record
  write_partition(os, snap);                              // v3 GZSL partition record
  // v4 INT8 quantization record pair: calibration table + quantized weights.
  write_pod<std::uint8_t>(os, snap.has_quantized() ? 1 : 0);
  if (snap.has_quantized()) {
    nn::save_calibration(os, snap.quantized()->table());
    snap.quantized()->save(os);
  }
  // v5 IVF coarse-index record pair: centroids + per-row assignments (the
  // inverted-list layout and packed centroid codes are derived, not stored).
  write_pod<std::uint8_t>(os, snap.has_ivf() ? 1 : 0);
  if (snap.has_ivf()) {
    const IvfIndex& ivf = *snap.ivf();
    tensor::save_tensor(os, ivf.centroids());
    write_pod<std::uint64_t>(os, ivf.assignments().size());
    os.write(reinterpret_cast<const char*>(ivf.assignments().data()),
             static_cast<std::streamsize>(ivf.assignments().size() * sizeof(std::uint32_t)));
  }
  // v6 evolution-lineage records: version counter, persisted auto-calibrated
  // penalty, content checksum (the delta-chain anchor — also a load-time
  // integrity check over the prototype rows + seen bytes).
  write_pod<std::uint64_t>(os, snap.store_version());
  write_pod<float>(os, snap.calibrated_penalty());
  write_pod<std::uint64_t>(os, content_checksum(store, snap.seen_mask()));
  os.write(kEndMarker, 4);
  if (!os) throw std::runtime_error("save_snapshot: write failed");
}

namespace {

/// v4 quantization record pair: u8 flag, then the calibration table and the
/// quantized embed graph. The standalone table record is the artifact's
/// stated calibration; it must agree entry-for-entry with the one embedded
/// in the weights record, or the pair is rejected as inconsistent.
std::shared_ptr<const nn::QuantizedEmbed> read_quant_records(std::istream& is) {
  if (read_pod<std::uint8_t>(is, "quantization flag") == 0) return nullptr;
  const nn::CalibrationTable table = nn::load_calibration(is);
  std::shared_ptr<nn::QuantizedEmbed> quant = nn::QuantizedEmbed::load(is);
  const nn::CalibrationTable& embedded = quant->table();
  if (embedded.method != table.method ||
      embedded.activations.size() != table.activations.size())
    throw std::runtime_error(
        "snapshot_io: quantization records disagree (calibration table vs int8 weights)");
  for (std::size_t i = 0; i < table.activations.size(); ++i)
    if (table.activations[i].scale != embedded.activations[i].scale ||
        table.activations[i].zero_point != embedded.activations[i].zero_point)
      throw std::runtime_error("snapshot_io: quantization records disagree at entry " +
                               std::to_string(i));
  return quant;
}

/// v5 IVF record pair: u8 flag, then the centroid tensor and the per-row
/// assignment array. Validated against the already-parsed store geometry
/// by name before anything is adopted: the centroid width must match the
/// store dim, the assignment count must match C, and every assignment must
/// land in [0, Cc).
struct IvfRecords {
  bool present = false;
  tensor::Tensor centroids;
  std::vector<std::uint32_t> assignments;
};

IvfRecords read_ivf_records(std::istream& is, std::size_t n_classes, std::size_t dim) {
  IvfRecords r;
  if (read_pod<std::uint8_t>(is, "ivf flag") == 0) return r;
  r.centroids = read_tensor(is, "ivf centroids");
  if (r.centroids.dim() != 2 || r.centroids.size(0) == 0 || r.centroids.size(1) != dim)
    throw std::runtime_error("snapshot_io: corrupt record 'ivf centroids': " +
                             tensor::shape_str(r.centroids.shape()) + ", expected [Cc, " +
                             std::to_string(dim) + "]");
  const auto count = read_pod<std::uint64_t>(is, "ivf assignment count");
  if (count != n_classes)
    throw std::runtime_error("snapshot_io: corrupt record 'ivf assignment count': " +
                             std::to_string(count) + " assignments for " +
                             std::to_string(n_classes) + " prototype rows");
  tensor::io::check_readable(is, count, sizeof(std::uint32_t), "ivf assignments");
  r.assignments.resize(n_classes);
  is.read(reinterpret_cast<char*>(r.assignments.data()),
          static_cast<std::streamsize>(n_classes * sizeof(std::uint32_t)));
  if (!is) throw std::runtime_error("snapshot_io: truncated reading ivf assignments");
  const std::size_t cc = r.centroids.size(0);
  for (std::uint32_t a : r.assignments)
    if (a >= cc)
      throw std::runtime_error("snapshot_io: corrupt record 'ivf assignments': value " +
                               std::to_string(a) + " out of range for " + std::to_string(cc) +
                               " centroids");
  r.present = true;
  return r;
}

}  // namespace

std::shared_ptr<ModelSnapshot> load_snapshot(std::istream& is) {
  const Header h = read_header(is);

  // Rebuild the architecture; every random initialization below is
  // overwritten by the parameter/buffer/dictionary records.
  util::Rng rng(0xC0FFEEULL);
  core::ImageEncoderConfig icfg;
  icfg.arch = h.arch;
  icfg.proj_dim = h.proj_dim;
  icfg.use_projection = h.use_projection;
  auto img = std::make_unique<core::ImageEncoder>(icfg, rng);
  const std::size_t d = img->dim();

  std::unique_ptr<core::AttributeEncoder> attr;
  if (h.attr_kind == "hdc") {
    // The encoder's codebook structure is irrelevant once the materialized
    // dictionary is restored below; the flattest space with the right α is
    // enough (one single-value group per attribute).
    data::AttributeSpace space = data::AttributeSpace::toy(h.n_attributes, 1, 1);
    attr = std::make_unique<core::HdcAttributeEncoder>(space, d, rng);
  } else if (h.attr_kind == "mlp") {
    attr = std::make_unique<core::MlpAttributeEncoder>(h.n_attributes, h.mlp_hidden, d, rng);
  } else {
    throw std::runtime_error("snapshot_io: unknown attribute-encoder kind '" + h.attr_kind +
                             "'");
  }

  auto model = std::make_shared<core::ZscModel>(std::move(img), std::move(attr), h.scale);
  nn::load_parameters(is, model->parameters());
  nn::load_buffers(is, model->buffers());

  const bool has_dict = read_pod<std::uint8_t>(is, "dictionary flag") != 0;
  auto* hdc_enc = dynamic_cast<core::HdcAttributeEncoder*>(&model->attribute_encoder());
  if (has_dict != (hdc_enc != nullptr))
    throw std::runtime_error("snapshot_io: dictionary record disagrees with encoder kind '" +
                             h.attr_kind + "'");
  if (hdc_enc) hdc_enc->set_dictionary(read_tensor(is, "hdc dictionary"));

  tensor::Tensor a = read_tensor(is, "class-attribute matrix");
  if (a.dim() != 2 || a.size(1) != h.n_attributes)
    throw std::runtime_error("snapshot_io: class-attribute matrix is " +
                             tensor::shape_str(a.shape()) + ", expected [C, " +
                             std::to_string(h.n_attributes) + "]");

  const auto expansion = static_cast<std::size_t>(read_pod<std::uint64_t>(is, "expansion"));
  const auto lsh_seed = read_pod<std::uint64_t>(is, "lsh seed");
  const float store_scale = read_pod<float>(is, "store scale");
  tensor::Tensor normalized = read_tensor(is, "normalized prototype rows");
  if (normalized.dim() != 2 || normalized.size(0) == 0)
    throw std::runtime_error("snapshot_io: normalized prototype rows are " +
                             tensor::shape_str(normalized.shape()) + ", expected [C, d]");
  const std::size_t n_classes = normalized.size(0);
  const std::size_t words_per_row =
      (normalized.size(1) * std::max<std::size_t>(expansion, 1) + 63) / 64;
  std::vector<std::uint64_t> packed = read_packed_words(is, n_classes * words_per_row);
  // Version-1 files predate sharding and load as S = 1 (the flat store).
  const std::size_t shards =
      h.version >= 2
          ? static_cast<std::size_t>(read_pod<std::uint64_t>(is, "preferred shard count"))
          : 1;
  // Version-1/2 files predate the GZSL partition and load with every class
  // seen (empty mask).
  std::vector<std::uint8_t> seen_mask =
      h.version >= 3 ? read_partition(is, n_classes) : std::vector<std::uint8_t>{};
  // Version-1..3 files predate quantization and load float-only.
  std::shared_ptr<const nn::QuantizedEmbed> quant =
      h.version >= 4 ? read_quant_records(is) : nullptr;
  // Version-1..4 files predate the IVF tier and load exact-only (engines
  // configured for approximate retrieval rebuild the index on demand).
  IvfRecords ivf = h.version >= 5
                       ? read_ivf_records(is, n_classes, normalized.size(1))
                       : IvfRecords{};
  // Version-1..5 files predate the evolution lineage and load with version
  // 0, no persisted calibration, and no stored checksum to validate.
  std::uint64_t store_version = 0;
  float calibrated_penalty = 0.0f;
  std::uint64_t stored_checksum = 0;
  if (h.version >= 6) {
    store_version = read_pod<std::uint64_t>(is, "store version");
    calibrated_penalty = read_pod<float>(is, "calibrated penalty");
    stored_checksum = read_pod<std::uint64_t>(is, "content checksum");
  }
  read_end_marker(is);

  PrototypeStore store = PrototypeStore::from_parts(std::move(normalized), std::move(packed),
                                                    store_scale, expansion, lsh_seed);
  if (store.n_classes() != a.size(0))
    throw std::runtime_error("snapshot_io: prototype store rows (" +
                             std::to_string(store.n_classes()) +
                             ") != class-attribute rows (" + std::to_string(a.size(0)) + ")");
  if (h.version >= 6 && content_checksum(store, seen_mask) != stored_checksum)
    throw std::runtime_error(
        "snapshot_io: corrupt record 'content checksum': the stored prototype rows do not "
        "hash to the stated checksum");
  auto snap = std::make_shared<ModelSnapshot>(std::move(model), std::move(a), std::move(store),
                                              shards, std::move(seen_mask));
  if (quant) snap->attach_quantized(std::move(quant));
  // The reconstituted index borrows the snapshot's own (heap-held) store.
  if (ivf.present)
    snap->attach_ivf(std::make_shared<const IvfIndex>(IvfIndex::from_parts(
        snap->prototypes(), std::move(ivf.centroids), std::move(ivf.assignments))));
  snap->set_store_version(store_version);
  snap->set_calibrated_penalty(calibrated_penalty);
  return snap;
}

void save_snapshot_file(const std::string& path, const ModelSnapshot& snap) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("save_snapshot_file: cannot open " + path);
  save_snapshot(f, snap);
}

std::shared_ptr<ModelSnapshot> load_snapshot_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("load_snapshot_file: cannot open " + path);
  return load_snapshot(f);
}

SnapshotInfo inspect_snapshot(std::istream& is) {
  const Header h = read_header(is);
  SnapshotInfo info;
  info.version = h.version;
  info.arch = h.arch;
  info.proj_dim = h.proj_dim;
  info.use_projection = h.use_projection;
  info.attribute_encoder = h.attr_kind;
  info.mlp_hidden = h.mlp_hidden;
  info.n_attributes = h.n_attributes;
  info.scale = h.scale;

  // Parameter and buffer records, walked structurally (no model rebuild).
  for (const char* block : {"parameter", "buffer"}) {
    const auto count = read_pod<std::uint64_t>(is, block);
    if (count > (1u << 20))
      throw std::runtime_error(std::string("snapshot_io: implausible ") + block + " count");
    for (std::uint64_t i = 0; i < count; ++i) {
      read_string(is, block);
      const tensor::Tensor t = read_tensor(is, block);
      if (block[0] == 'p') {
        ++info.param_records;
        info.param_elements += t.numel();
      }
    }
  }
  info.has_dictionary = read_pod<std::uint8_t>(is, "dictionary flag") != 0;
  if (info.has_dictionary) read_tensor(is, "hdc dictionary");

  const tensor::Tensor a = read_tensor(is, "class-attribute matrix");
  info.n_classes = a.size(0);
  info.expansion = static_cast<std::size_t>(read_pod<std::uint64_t>(is, "expansion"));
  read_pod<std::uint64_t>(is, "lsh seed");
  read_pod<float>(is, "store scale");
  const tensor::Tensor normalized = read_tensor(is, "normalized prototype rows");
  if (normalized.dim() != 2 || normalized.size(0) == 0)
    throw std::runtime_error("snapshot_io: normalized prototype rows are " +
                             tensor::shape_str(normalized.shape()) + ", expected [C, d]");
  info.dim = normalized.size(1);
  info.code_bits = info.dim * std::max<std::size_t>(info.expansion, 1);
  info.float_bytes = normalized.numel() * sizeof(float);
  const std::size_t words_per_row = (info.code_bits + 63) / 64;
  info.binary_bytes =
      read_packed_words(is, normalized.size(0) * words_per_row).size() *
      sizeof(std::uint64_t);
  if (h.version >= 2)
    info.preferred_shards =
        static_cast<std::size_t>(read_pod<std::uint64_t>(is, "preferred shard count"));
  info.n_seen = info.n_classes;
  if (h.version >= 3) {
    const std::vector<std::uint8_t> mask = read_partition(is, normalized.size(0));
    if (!mask.empty()) {
      info.has_partition = true;
      info.n_seen = 0;
      for (std::uint8_t m : mask) info.n_seen += m != 0;
    }
  }
  if (h.version >= 4) {
    const auto quant = read_quant_records(is);
    if (quant) {
      const nn::QuantizedEmbed::QuantInfo qi = quant->info();
      info.has_quant = true;
      info.quant_method = nn::calib_method_name(qi.method);
      info.quant_conv = qi.n_conv;
      info.quant_linear = qi.n_linear;
      info.quant_weight_bytes = qi.weight_bytes;
    }
  }
  if (h.version >= 5) {
    const IvfRecords ivf = read_ivf_records(is, normalized.size(0), normalized.size(1));
    if (ivf.present) {
      info.has_ivf = true;
      info.n_centroids = ivf.centroids.size(0);
      info.ivf_list_sizes.assign(info.n_centroids, 0);
      for (std::uint32_t a : ivf.assignments) ++info.ivf_list_sizes[a];
    }
  }
  if (h.version >= 6) {
    info.store_version = read_pod<std::uint64_t>(is, "store version");
    info.calibrated_penalty = read_pod<float>(is, "calibrated penalty");
    info.content_checksum = read_pod<std::uint64_t>(is, "content checksum");
  }
  read_end_marker(is);
  return info;
}

SnapshotInfo inspect_snapshot_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("inspect_snapshot_file: cannot open " + path);
  return inspect_snapshot(f);
}

// -- delta snapshots ("HDCD") -------------------------------------------------

SnapshotDelta make_delta(const StoreVersion& base, const StoreVersion& next) {
  if (!base.store || !next.store)
    throw std::invalid_argument("make_delta: null store version");
  const std::size_t base_rows = base.n_classes();
  const std::size_t next_rows = next.n_classes();
  const std::size_t d = base.store->dim();
  if (next_rows <= base_rows || next.store->dim() != d ||
      next.version <= base.version)
    throw std::invalid_argument(
        "make_delta: 'next' (version " + std::to_string(next.version) + ", " +
        std::to_string(next_rows) + " classes) does not extend 'base' (version " +
        std::to_string(base.version) + ", " + std::to_string(base_rows) + " classes)");
  const std::size_t n = next_rows - base_rows;
  const std::size_t wpr = next.store->words_per_row();
  const std::size_t alpha = next.class_attributes.size(1);

  SnapshotDelta delta;
  delta.base_rows = base_rows;
  delta.base_version = base.version;
  delta.base_checksum = base.content_checksum;
  delta.new_checksum = next.content_checksum;

  delta.attributes = tensor::Tensor({n, alpha});
  std::copy(next.class_attributes.data() + base_rows * alpha,
            next.class_attributes.data() + next_rows * alpha, delta.attributes.data());
  delta.normalized_rows = tensor::Tensor({n, d});
  std::copy(next.store->float_rows() + base_rows * d, next.store->float_rows() + next_rows * d,
            delta.normalized_rows.data());
  delta.packed_words.assign(next.store->packed_data() + base_rows * wpr,
                            next.store->packed_data() + next_rows * wpr);
  // Seen flags are written explicitly (empty means "all unseen" on apply,
  // which is only the default, not necessarily next's actual partition).
  delta.seen_flags.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    delta.seen_flags[i] = next.is_seen(base_rows + i) ? 1 : 0;
  if (next.ivf) {
    delta.has_ivf = true;
    delta.ivf_assignments.assign(next.ivf->assignments().begin() +
                                     static_cast<std::ptrdiff_t>(base_rows),
                                 next.ivf->assignments().end());
  }
  return delta;
}

void save_delta(std::ostream& os, const SnapshotDelta& delta) {
  const std::size_t n = delta.n_new();
  if (n == 0) throw std::invalid_argument("save_delta: delta appends no rows");
  os.write(kDeltaMagic, 4);
  write_pod<std::uint32_t>(os, kDeltaVersion);
  write_pod<std::uint64_t>(os, delta.base_rows);
  write_pod<std::uint64_t>(os, delta.base_version);
  write_pod<std::uint64_t>(os, delta.base_checksum);
  tensor::save_tensor(os, delta.attributes);
  tensor::save_tensor(os, delta.normalized_rows);
  write_pod<std::uint64_t>(os, delta.packed_words.size());
  os.write(reinterpret_cast<const char*>(delta.packed_words.data()),
           static_cast<std::streamsize>(delta.packed_words.size() * sizeof(std::uint64_t)));
  write_pod<std::uint64_t>(os, delta.seen_flags.size());
  if (!delta.seen_flags.empty())
    os.write(reinterpret_cast<const char*>(delta.seen_flags.data()),
             static_cast<std::streamsize>(delta.seen_flags.size()));
  write_pod<std::uint8_t>(os, delta.has_ivf ? 1 : 0);
  if (delta.has_ivf) {
    write_pod<std::uint64_t>(os, delta.ivf_assignments.size());
    os.write(reinterpret_cast<const char*>(delta.ivf_assignments.data()),
             static_cast<std::streamsize>(delta.ivf_assignments.size() * sizeof(std::uint32_t)));
  }
  write_pod<std::uint64_t>(os, delta.new_checksum);
  os.write(kEndMarker, 4);
  if (!os) throw std::runtime_error("save_delta: write failed");
}

void save_delta_file(const std::string& path, const SnapshotDelta& delta) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("save_delta_file: cannot open " + path);
  save_delta(f, delta);
}

SnapshotDelta load_delta(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  if (!is || std::string(magic, 4) != std::string(kDeltaMagic, 4))
    throw std::runtime_error("snapshot_io: bad magic (not a .hdcdelta file)");
  const auto version = read_pod<std::uint32_t>(is, "delta format version");
  if (version == 0 || version > kDeltaVersion)
    throw std::runtime_error("snapshot_io: unsupported delta version " +
                             std::to_string(version) + " (this reader supports 1.." +
                             std::to_string(kDeltaVersion) + ")");
  SnapshotDelta delta;
  delta.base_rows = read_pod<std::uint64_t>(is, "delta base rows");
  delta.base_version = read_pod<std::uint64_t>(is, "delta base version");
  delta.base_checksum = read_pod<std::uint64_t>(is, "delta base checksum");
  delta.attributes = read_tensor(is, "delta class-attribute rows");
  delta.normalized_rows = read_tensor(is, "delta normalized rows");
  if (delta.normalized_rows.dim() != 2 || delta.normalized_rows.size(0) == 0)
    throw std::runtime_error("snapshot_io: delta normalized rows are " +
                             tensor::shape_str(delta.normalized_rows.shape()) +
                             ", expected [n, d]");
  const std::size_t n = delta.normalized_rows.size(0);
  if (delta.attributes.dim() != 2 || delta.attributes.size(0) != n)
    throw std::runtime_error(
        "snapshot_io: delta class-attribute rows disagree with the normalized rows");
  const auto n_words = read_pod<std::uint64_t>(is, "delta packed word count");
  // The base's store geometry (expansion → words/row) is unknown until
  // apply time; here the count only needs to be row-divisible and honest
  // about the remaining bytes.
  if (n_words == 0 || n_words % n != 0)
    throw std::runtime_error("snapshot_io: corrupt record 'delta packed word count': " +
                             std::to_string(n_words) + " words for " + std::to_string(n) +
                             " rows");
  tensor::io::check_readable(is, n_words, sizeof(std::uint64_t), "delta packed rows");
  delta.packed_words.resize(n_words);
  is.read(reinterpret_cast<char*>(delta.packed_words.data()),
          static_cast<std::streamsize>(n_words * sizeof(std::uint64_t)));
  if (!is) throw std::runtime_error("snapshot_io: truncated reading delta packed rows");
  const auto n_flags = read_pod<std::uint64_t>(is, "delta seen-flag count");
  if (n_flags != 0 && n_flags != n)
    throw std::runtime_error("snapshot_io: corrupt record 'delta seen-flag count': " +
                             std::to_string(n_flags) + " flags for " + std::to_string(n) +
                             " rows");
  if (n_flags != 0) {
    tensor::io::check_readable(is, n_flags, 1, "delta seen flags");
    delta.seen_flags.resize(n_flags);
    is.read(reinterpret_cast<char*>(delta.seen_flags.data()),
            static_cast<std::streamsize>(n_flags));
    if (!is) throw std::runtime_error("snapshot_io: truncated reading delta seen flags");
  }
  delta.has_ivf = read_pod<std::uint8_t>(is, "delta ivf flag") != 0;
  if (delta.has_ivf) {
    const auto count = read_pod<std::uint64_t>(is, "delta ivf assignment count");
    if (count != n)
      throw std::runtime_error("snapshot_io: corrupt record 'delta ivf assignment count': " +
                               std::to_string(count) + " assignments for " +
                               std::to_string(n) + " rows");
    tensor::io::check_readable(is, count, sizeof(std::uint32_t), "delta ivf assignments");
    delta.ivf_assignments.resize(n);
    is.read(reinterpret_cast<char*>(delta.ivf_assignments.data()),
            static_cast<std::streamsize>(n * sizeof(std::uint32_t)));
    if (!is) throw std::runtime_error("snapshot_io: truncated reading delta ivf assignments");
  }
  delta.new_checksum = read_pod<std::uint64_t>(is, "delta new checksum");
  read_end_marker(is);
  return delta;
}

SnapshotDelta load_delta_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("load_delta_file: cannot open " + path);
  return load_delta(f);
}

bool is_delta_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  char magic[4];
  f.read(magic, 4);
  return f && std::string(magic, 4) == std::string(kDeltaMagic, 4);
}

std::shared_ptr<ModelSnapshot> compact_snapshot(const ModelSnapshot& base,
                                                const std::vector<SnapshotDelta>& deltas) {
  // Chain state: store values share slabs with the base (copy-on-write),
  // so the whole compaction is one pass of appends + checksum extensions.
  PrototypeStore store = base.prototypes();
  std::vector<std::uint8_t> mask = base.seen_mask();
  tensor::Tensor attrs = base.class_attributes();
  std::uint64_t version = base.store_version();
  std::uint64_t checksum = content_checksum(store, mask);
  std::vector<std::uint32_t> assignments;
  if (base.has_ivf()) assignments = base.ivf()->assignments();

  for (std::size_t li = 0; li < deltas.size(); ++li) {
    const SnapshotDelta& delta = deltas[li];
    const std::string link = "delta " + std::to_string(li);
    if (delta.base_rows != store.n_classes() || delta.base_version != version)
      throw std::runtime_error("compact_snapshot: " + link + " expects base version " +
                               std::to_string(delta.base_version) + " with " +
                               std::to_string(delta.base_rows) + " classes, but the chain is "
                               "at version " + std::to_string(version) + " with " +
                               std::to_string(store.n_classes()) + " classes");
    if (delta.base_checksum != checksum)
      throw std::runtime_error("compact_snapshot: " + link +
                               " base content checksum mismatch");
    if (delta.attributes.size(1) != attrs.size(1))
      throw std::runtime_error("compact_snapshot: " + link +
                               " attribute width disagrees with the base");
    const std::size_t n = delta.n_new();
    const std::size_t prev_rows = store.n_classes();
    PrototypeStore grown = store.append_parts(delta.normalized_rows, delta.packed_words);
    std::vector<std::uint8_t> new_mask =
        extend_seen_mask(mask, prev_rows, delta.seen_flags, n);
    const std::uint64_t chained =
        extend_content_checksum(checksum, grown, new_mask, prev_rows);
    if (chained != delta.new_checksum)
      throw std::runtime_error("compact_snapshot: " + link +
                               " content checksum mismatch after append (corrupt payload)");
    if (base.has_ivf()) {
      if (delta.has_ivf) {
        const std::size_t cc = base.ivf()->n_centroids();
        for (std::uint32_t a : delta.ivf_assignments)
          if (a >= cc)
            throw std::runtime_error("compact_snapshot: " + link +
                                     " ivf assignment out of centroid range");
        assignments.insert(assignments.end(), delta.ivf_assignments.begin(),
                           delta.ivf_assignments.end());
      } else {
        assignments = extend_ivf_assignments(base.ivf()->centroids(), std::move(assignments),
                                             grown, prev_rows);
      }
    }
    tensor::Tensor new_attrs({attrs.size(0) + n, attrs.size(1)});
    std::copy(attrs.data(), attrs.data() + attrs.numel(), new_attrs.data());
    std::copy(delta.attributes.data(), delta.attributes.data() + delta.attributes.numel(),
              new_attrs.data() + attrs.numel());
    attrs = std::move(new_attrs);
    mask = std::move(new_mask);
    store = std::move(grown);
    checksum = chained;
    ++version;
  }

  auto snap = std::make_shared<ModelSnapshot>(base.model_ptr(), std::move(attrs),
                                              std::move(store), base.preferred_shards(),
                                              std::move(mask));
  if (base.has_quantized()) snap->attach_quantized(base.quantized());
  if (base.has_ivf())
    snap->attach_ivf(std::make_shared<const IvfIndex>(IvfIndex::from_parts(
        snap->prototypes(), base.ivf()->centroids(), std::move(assignments))));
  snap->set_store_version(version);
  snap->set_calibrated_penalty(base.calibrated_penalty());
  return snap;
}

}  // namespace hdczsc::serve
