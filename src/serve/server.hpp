// Serving runtime: N worker threads draining a DynamicBatcher into an
// InferenceEngine, with admission control and telemetry.
//
// The request surface is the unified InferRequest → InferResult contract
// (serve/infer.hpp): submit() never throws for per-request conditions —
// bad shape, scoring-mode mismatch, overload and shutdown all come back
// as named statuses on the result, exactly as they appear on the wire
// (src/net/). The callback overload is the zero-future path the network
// front-end serves responses from.
//
// Lifecycle: construct → (optionally submit; requests queue up) → start()
// → submit from any number of client threads → stop() (drains the
// queue, joins workers). stop() is terminal — the underlying queue stays
// shut down, so construct a new runtime to serve again. Eval-mode forwards
// are read-only, so workers share the snapshot without locking; on a
// single core one worker is optimal and is the default.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>

#include "obs/trace.hpp"
#include "serve/batcher.hpp"
#include "serve/engine.hpp"
#include "serve/stats.hpp"

namespace hdczsc::serve {

struct ServerConfig {
  std::size_t n_workers = 1;
  BatchPolicy batch;
  /// Prototype-store shard count for the engines ModelRegistry builds from
  /// this config (sharded_store.hpp). 0 = use the snapshot's preferred
  /// shard layout; explicit values override it (clamped to [1, C]).
  std::size_t n_shards = 0;
  /// GZSL calibrated-stacking handicap for the engines ModelRegistry
  /// builds from this config: subtracted from every seen-class logit (per
  /// the snapshot's partition mask) on both scoring paths. 0 = plain
  /// single-space serving (see InferenceEngine).
  float seen_penalty = 0.0f;
  /// Backbone embed precision for the engines ModelRegistry builds from
  /// this config. kInt8 requires the snapshot to carry a quantized artifact
  /// (a v4 .hdcsnap with quant records, or ModelSnapshot::quantize) — the
  /// load fails up front otherwise. Scoring is unaffected; only the embed
  /// stage changes numeric path (see serve::Precision).
  Precision backbone_precision = Precision::kFloat32;
  /// Top-k retrieval tier for the engines ModelRegistry builds from this
  /// config (ann_store.hpp): kExact scans every prototype row; kIvf probes
  /// `nprobe` coarse lists in the model's scoring mode; kCascade adds the
  /// binary-prefilter → float-rerank stage. Approximate tiers adopt the
  /// snapshot's persisted IVF index (v5 .hdcsnap) or cluster one
  /// deterministically at load.
  RetrievalMode retrieval = RetrievalMode::kExact;
  /// Coarse lists probed per query by the approximate tiers (0 = the index
  /// default, ~Cc/8; clamped to [1, Cc]). Ignored under kExact.
  std::size_t nprobe = 0;
  /// Cascade candidate budget multiplier: rerank·k binary survivors get
  /// float-reranked (0 = unbounded — every probed row). Ignored outside
  /// kCascade.
  std::size_t rerank = 4;
  /// Held-out GZSL validation split (store_version.hpp): when set, the
  /// engines ModelRegistry builds from this config auto-calibrate the seen
  /// penalty against it — on load and again after every class append — and
  /// `seen_penalty` above is ignored. Null = no auto-calibration.
  std::shared_ptr<const GzslCalibration> gzsl_calibration;
  /// Metric namespace: non-empty registers this runtime's telemetry (stats
  /// and per-stage trace histograms) in obs::default_registry() under
  /// serve_*{model=name} so the exporters see it. ModelRegistry sets it to
  /// the model key on load.
  std::string name;
  /// Per-request stage tracing (obs/trace.hpp). Off, no spans are recorded
  /// (InferResult timings are still filled — they cost a handful of clock
  /// reads per *batch*, not per request).
  bool tracing = true;
};

class ServerRuntime {
 public:
  ServerRuntime(std::shared_ptr<const InferenceEngine> engine, ServerConfig cfg);
  ~ServerRuntime();

  ServerRuntime(const ServerRuntime&) = delete;
  ServerRuntime& operator=(const ServerRuntime&) = delete;

  /// Spawn the worker threads. Idempotent while serving; throws
  /// std::logic_error after stop() (the runtime is one-shot).
  void start();
  /// Drain the queue, join workers. Idempotent; also run by the destructor.
  /// Terminal: subsequent submissions are rejected and start() refuses.
  void stop();

  /// Enqueue one request (req.model_key is ignored — this runtime *is*
  /// the model). The future always resolves; failures are named statuses
  /// (kBadShape / kBadScoring / kBadRequest synchronously, kOverloaded /
  /// kShutdown on admission rejection, kInternal on execution failure) —
  /// never exceptions.
  std::future<InferResult> submit(InferRequest req);

  /// Callback form (the network front-end's path): `done` is invoked
  /// exactly once — synchronously on the caller's thread for validation /
  /// admission failures, from a worker thread otherwise.
  void submit(InferRequest req, InferDone done);

  const InferenceEngine& engine() const { return *engine_; }
  /// Shared handle for callers that may outlive this runtime (the registry's
  /// hot-unload path).
  const std::shared_ptr<const InferenceEngine>& engine_ptr() const { return engine_; }
  ServingStats& stats() { return stats_; }
  const ServingStats& stats() const { return stats_; }
  /// Per-request stage tracer: admit → queue-wait → collect → embed →
  /// score → reply breakdowns plus the slowest-span postmortem ring.
  obs::Tracer& tracer() { return trace_; }
  const obs::Tracer& tracer() const { return trace_; }
  std::size_t queue_depth() const { return batcher_.depth(); }
  bool running() const { return running_.load(); }

 private:
  /// Synchronous per-request validation: nullopt when admissible, else the
  /// ready-to-return error result (shape / scoring pin / empty request).
  std::optional<InferResult> validate(const InferRequest& req) const;
  void worker_loop();

  std::shared_ptr<const InferenceEngine> engine_;
  ServerConfig cfg_;
  DynamicBatcher batcher_;
  ServingStats stats_;
  obs::Tracer trace_;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace hdczsc::serve
