// Approximate retrieval tier: IVF coarse probing + Hamming early-exit +
// binary→float rerank cascade over a frozen PrototypeStore.
//
// The exact sharded scatter/gather (sharded_store.hpp) sweeps every packed
// prototype row per query — cost linear in the label space C. At
// million-class scale that linear sweep is the bottleneck, so this tier
// trades a measured sliver of recall for sublinear scan cost, in three
// composable stages:
//
//  1. IVF coarse quantizer — spherical k-means clusters the store's
//     normalized prototype rows into Cc centroids (built once, persisted in
//     .hdcsnap v5, or rebuilt deterministically on load of older files).
//     Rows are regrouped into per-centroid inverted lists whose packed
//     binary codes are stored contiguously, FAISS-IVF style. A query probes
//     its `nprobe` nearest centroids (float dot for float/cascade queries,
//     Hamming over packed centroid codes for binary queries) and scans only
//     those lists: the swept fraction is ~nprobe/Cc.
//
//  2. Hamming early-exit — each list's codes are split into a word *prefix*
//     block and a *suffix* block. The prefix Hamming count of every row is
//     computed with the batched popcount kernel; since the suffix can only
//     add to the count, a row whose prefix count (plus its GZSL integer
//     offset) already exceeds the current k-heap threshold can never enter
//     the top-k, and its suffix words are never read. The prune reuses the
//     exact path's block-skip machinery (topk_select.hpp), so it is
//     *admissible*: with nprobe == Cc the result is bit-identical to the
//     exact sharded top-k, early exit and all.
//
//  3. Binary-prefilter → float-rerank cascade — the top rerank·k binary
//     candidates from the probed lists are re-scored with exact float
//     cosine dots (double-accumulated, matching the naive GEMM kernel's
//     summation exactly), recovering float-quality ranking at binary-scan
//     cost. rerank == 0 means unbounded: every probed row is reranked, so
//     nprobe == Cc degenerates to the exact float top-k.
//
// All three respect the retrieval contract shared with the exact paths:
// results ordered by (score desc, label asc), scores computed by the same
// expressions score_float / score_binary materialize, GZSL seen-penalties
// applied identically (integer Hamming offsets where exact, float subtract
// form otherwise). Thread-safe after construction (telemetry is atomic);
// the set_prefix_words test hook is the one non-const exception.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/prototype_store.hpp"
#include "serve/sharded_store.hpp"
#include "tensor/tensor.hpp"

namespace hdczsc::serve {

/// Retrieval tier selection, threaded from ServerConfig through
/// InferenceEngine: exact sharded scatter/gather, IVF-probed scan in the
/// engine's scoring mode, or the IVF + binary-prefilter + float-rerank
/// cascade.
enum class RetrievalMode : unsigned char { kExact = 0, kIvf = 1, kCascade = 2 };

std::string retrieval_mode_name(RetrievalMode mode);
/// Parse "exact" / "ivf" / "cascade" (the ServerConfig / CLI spellings);
/// throws std::invalid_argument on anything else.
RetrievalMode retrieval_mode_from_name(const std::string& name);

class IvfIndex {
 public:
  /// Default k-means rounds; the coarse quantizer needs rough Voronoi
  /// structure, not convergence.
  static constexpr std::size_t kBuildIters = 6;
  /// k-means trains on min(C, kSamplePerCentroid·Cc) sampled rows (the
  /// FAISS max_points_per_centroid pattern); only the final assignment
  /// pass touches every row.
  static constexpr std::size_t kSamplePerCentroid = 128;
  /// Deterministic build seed: the same store always clusters identically,
  /// so an index rebuilt on load of a pre-v5 snapshot matches the one a
  /// v5 writer would have persisted.
  static constexpr std::uint64_t kBuildSeed = 0x1BF5EEDULL;

  /// Build by spherical k-means over the store's normalized float rows.
  /// `n_centroids` == 0 picks ~√C (clamped to [1, C]). `base` must outlive
  /// this index (ModelSnapshot owns both for the serving stack).
  explicit IvfIndex(const PrototypeStore& base, std::size_t n_centroids = 0,
                    std::size_t iters = kBuildIters, std::uint64_t seed = kBuildSeed);

  /// Adopt persisted centroids + assignments (snapshot_io v5 load path):
  /// nothing is re-clustered, so a loaded index probes identically to the
  /// one that was saved. Packed centroid codes and the inverted-list
  /// layout are rebuilt deterministically from the parts. Throws
  /// std::invalid_argument when the parts disagree with the store
  /// geometry (centroid width, assignment count/range).
  static IvfIndex from_parts(const PrototypeStore& base, tensor::Tensor centroids,
                             std::vector<std::uint32_t> assignments);

  std::size_t n_centroids() const { return list_offsets_.size() - 1; }
  std::size_t n_rows() const { return base_->n_classes(); }
  const PrototypeStore& base() const { return *base_; }
  /// L2-normalized centroid rows [Cc, d] (the v5 persistence payload,
  /// together with assignments()).
  const tensor::Tensor& centroids() const { return centroids_; }
  /// Per-row centroid assignment [C], values in [0, Cc).
  const std::vector<std::uint32_t>& assignments() const { return assignments_; }
  std::size_t list_size(std::size_t c) const {
    return list_offsets_[c + 1] - list_offsets_[c];
  }

  /// The nprobe an `nprobe == 0` request resolves to: Cc/8, at least 1 —
  /// scan ~1/8 of the label space before early exit trims further.
  std::size_t default_nprobe() const { return std::max<std::size_t>(1, n_centroids() / 8); }
  /// Resolve a caller nprobe: 0 → default_nprobe(), clamped to [1, Cc].
  std::size_t resolve_nprobe(std::size_t nprobe) const;

  /// Early-exit split: how many leading words of each packed row the
  /// prefix pass scores before the prune test. In [1, words_per_row];
  /// == words_per_row disables the early exit (one full-width pass).
  std::size_t prefix_words() const { return prefix_words_; }
  /// Test/diagnostics hook: repack the list codes under a different split
  /// (0 = the automatic choice). NOT thread-safe — call before serving,
  /// never concurrently with a scan.
  void set_prefix_words(std::size_t words);

  /// IVF top-k on the float-cosine path: probe `nprobe` centroids by float
  /// dot, score every row of the probed lists with a double-accumulated
  /// cosine dot (the naive GEMM kernel's exact summation), select with the
  /// exact path's k-bounded heap. result[b] holds min(k, probed rows)
  /// entries ordered by (score desc, label asc). With nprobe == Cc the
  /// result is the exact float top-k (bit-identical to the sharded scan
  /// wherever the GEMM runs its naive kernel — see tests). `penalty` as in
  /// ShardedPrototypeStore::topk_float.
  std::vector<std::vector<TopK>> topk_float(const tensor::Tensor& embeddings, std::size_t k,
                                            std::size_t nprobe,
                                            const SeenPenalty* penalty = nullptr) const;

  /// IVF top-k on the binary-Hamming path: probe by centroid-code Hamming,
  /// then the prefix/early-exit scan over the probed lists' packed codes,
  /// selecting in the integer key domain exactly as the exact sharded scan
  /// does (same integer-exactness preconditions; pathological widths and
  /// non-integer GZSL handicaps take a full-width float-domain scan). With
  /// nprobe == Cc the result is bit-identical to
  /// ShardedPrototypeStore::topk_binary — the early exit is admissible and
  /// never drops a true top-k row.
  std::vector<std::vector<TopK>> topk_binary(const tensor::Tensor& embeddings, std::size_t k,
                                             std::size_t nprobe,
                                             const SeenPenalty* penalty = nullptr) const;

  /// Cascade: binary-prefilter the probed lists down to rerank·k candidate
  /// rows (early-exit scan, integer keys), then re-score those candidates
  /// with exact float cosine dots and select the final k. rerank == 0
  /// means unbounded — every probed row is reranked — so nprobe == Cc +
  /// rerank == 0 degenerates to the exact float top-k. GZSL handicaps:
  /// the prefilter folds the integer offset where exact (otherwise it
  /// ranks unpenalized raw Hamming); the float rerank always applies the
  /// exact row_penalty subtraction.
  std::vector<std::vector<TopK>> topk_cascade(const tensor::Tensor& embeddings, std::size_t k,
                                              std::size_t nprobe, std::size_t rerank,
                                              const SeenPenalty* penalty = nullptr) const;

  /// Cumulative probe/prune telemetry (process-lifetime totals also feed
  /// the serve_ivf_* counters in obs::default_registry()).
  struct ProbeStats {
    std::uint64_t queries = 0;           ///< single-query probes served
    std::uint64_t centroids_probed = 0;  ///< inverted lists opened
    std::uint64_t rows_swept = 0;        ///< rows whose prefix was scored
    std::uint64_t rows_pruned = 0;       ///< rows early-exited before their
                                         ///< suffix words were read
    std::uint64_t rows_reranked = 0;     ///< cascade float re-scores
  };
  ProbeStats probe_stats() const;

 private:
  IvfIndex() = default;  // used by from_parts

  /// Derive list offsets/rows from assignments_ and repack the codes.
  void build_lists();
  /// Split every list row's packed words into the contiguous prefix/suffix
  /// blocks under prefix_words_.
  void repack_codes();
  /// Probed-centroid ids for one query, nearest first: float-dot order for
  /// the float/cascade paths, centroid-code Hamming order for binary.
  std::vector<std::uint32_t> probe_float(const float* dots, std::size_t nprobe) const;
  std::vector<std::uint32_t> probe_binary(const std::uint64_t* qwords,
                                          std::size_t nprobe) const;

  const PrototypeStore* base_ = nullptr;
  tensor::Tensor centroids_;                    // [Cc, d], unit rows
  std::vector<std::uint64_t> centroid_codes_;   // [Cc * words_per_row]
  std::vector<std::uint32_t> assignments_;      // [C], row -> centroid
  std::vector<std::size_t> list_offsets_;       // [Cc + 1] into list_rows_
  std::vector<std::uint32_t> list_rows_;        // [C], row ids grouped by list
  std::vector<std::uint64_t> codes_prefix_;     // [C * prefix_words_], list order
  std::vector<std::uint64_t> codes_suffix_;     // [C * suffix words], list order
  std::size_t prefix_words_ = 0;
  std::size_t max_list_ = 0;  // longest list (scan scratch sizing)

  struct Counters {
    std::atomic<std::uint64_t> queries{0};
    std::atomic<std::uint64_t> centroids_probed{0};
    std::atomic<std::uint64_t> rows_swept{0};
    std::atomic<std::uint64_t> rows_pruned{0};
    std::atomic<std::uint64_t> rows_reranked{0};

    // Movable so from_parts can return the index by value; moves happen
    // only before the index is shared, never concurrently with scans.
    Counters() = default;
    Counters(Counters&& o) noexcept { *this = std::move(o); }
    Counters& operator=(Counters&& o) noexcept {
      queries.store(o.queries.load(std::memory_order_relaxed), std::memory_order_relaxed);
      centroids_probed.store(o.centroids_probed.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
      rows_swept.store(o.rows_swept.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      rows_pruned.store(o.rows_pruned.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      rows_reranked.store(o.rows_reranked.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
      return *this;
    }
  };
  mutable Counters counters_;
};

}  // namespace hdczsc::serve
