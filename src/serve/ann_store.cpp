#include "serve/ann_store.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "hdc/hypervector.hpp"
#include "obs/metrics.hpp"
#include "serve/topk_select.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace hdczsc::serve {

namespace {

using detail::BoundedTopKHamming;
using BoundedTopKFloat = detail::BoundedTopK<TopK>;

/// Rows per k-means assignment chunk: bounds the gathered-row and dot
/// scratch to a few MB regardless of store size, and gives the worker pool
/// enough chunks to balance.
constexpr std::size_t kAssignChunk = 1024;

/// Automatic early-exit split: score a quarter of the words up front, keep
/// the early exit off for codes too narrow for a meaningful prefix (the
/// prune test would cost more than the skipped words).
std::size_t auto_prefix_words(std::size_t words_per_row) {
  return words_per_row <= 2 ? words_per_row
                            : std::max<std::size_t>(1, words_per_row / 4);
}

/// Per-query scratch for the probed-list scans, sized to the longest
/// inverted list so every list reuses the same three blocks.
struct ScanScratch {
  std::vector<std::uint32_t> hpre;       // batched prefix Hamming counts
  std::vector<std::uint32_t> hsuf;       // batched suffix counts (dense pass)
  std::vector<std::uint32_t> survivors;  // in-list indices that beat the bound
  explicit ScanScratch(std::size_t max_list)
      : hpre(max_list), hsuf(max_list), survivors(max_list) {}
};

/// One query's early-exit sweep over the probed lists in the integer key
/// domain — shared by the IVF binary path and the cascade prefilter. Per
/// list: one batched popcount sweep over the contiguous prefix block, the
/// admissible prune against the heap threshold (a prefix count above it
/// cannot complete to a kept key, the suffix only adds; equality survives
/// for the label tie-break), then a suffix pass over the survivors.
///
/// The suffix pass is adaptive: a dense survivor set (prune barely firing,
/// the common case when the heap bound sits among cluster-mates) takes one
/// batched sweep over the list's whole contiguous suffix block, amortizing
/// the kernel dispatch that a row-at-a-time loop pays per survivor; a
/// sparse set reads only the survivors' suffix words, re-testing against
/// the live bound as it tightens. Either way the offered keys are
/// identical — the heap drops anything at or above its bound — so the
/// choice moves scan cost only, never results.
void scan_probed_lists(const std::uint64_t* qw, const std::vector<std::uint32_t>& probes,
                       const std::vector<std::size_t>& list_offsets,
                       const std::vector<std::uint32_t>& list_rows,
                       const std::vector<std::uint64_t>& codes_prefix,
                       const std::vector<std::uint64_t>& codes_suffix, std::size_t wp,
                       std::size_t ws, const std::uint32_t* row_offset,
                       BoundedTopKHamming& heap, ScanScratch& scratch, std::uint64_t& swept,
                       std::uint64_t& pruned) {
  std::uint32_t* hpre = scratch.hpre.data();
  std::uint32_t* hsuf = scratch.hsuf.data();
  std::uint32_t* survivors = scratch.survivors.data();
  for (std::uint32_t c : probes) {
    const std::size_t off = list_offsets[c];
    const std::size_t len = list_offsets[c + 1] - off;
    if (len == 0) continue;
    swept += len;
    hdc::hamming_many_packed(qw, codes_prefix.data() + off * wp, len, wp, hpre);
    if (row_offset) {
      // Fold the GZSL handicap into the prefix counts up front: the prune
      // bound, the heap keys and the score conversion then all see one
      // consistent h + Δ integer domain.
      for (std::size_t i = 0; i < len; ++i) hpre[i] += row_offset[list_rows[off + i]];
    }
    const std::uint32_t t0 = heap.threshold();
    std::size_t n_sur = 0;
    for (std::size_t i = 0; i < len; ++i) {
      if (hpre[i] > t0)
        ++pruned;
      else
        survivors[n_sur++] = static_cast<std::uint32_t>(i);
    }
    if (n_sur == 0) continue;
    if (ws == 0) {
      for (std::size_t s = 0; s < n_sur; ++s) {
        const std::uint32_t i = survivors[s];
        heap.offer(hpre[i], list_rows[off + i]);
      }
    } else if (3 * n_sur > len) {
      hdc::hamming_many_packed(qw + wp, codes_suffix.data() + off * ws, len, ws, hsuf);
      for (std::size_t s = 0; s < n_sur; ++s) {
        const std::uint32_t i = survivors[s];
        heap.offer(hpre[i] + hsuf[i], list_rows[off + i]);
      }
    } else {
      for (std::size_t s = 0; s < n_sur; ++s) {
        const std::uint32_t i = survivors[s];
        // The bound keeps tightening as rows land; re-test before paying
        // for this row's suffix words.
        if (hpre[i] > heap.threshold()) {
          ++pruned;
          continue;
        }
        std::uint32_t hs = 0;
        hdc::hamming_many_packed(qw + wp, codes_suffix.data() + (off + i) * ws, 1, ws, &hs);
        heap.offer(hpre[i] + hs, list_rows[off + i]);
      }
    }
  }
}

/// Full-width variant for the float-domain fallbacks: no admissible bound
/// exists there, every row's complete count is needed, so the suffix sweep
/// is always batched. Calls `emit(global_row, h)` per row in list order.
template <typename Emit>
void scan_probed_lists_full(const std::uint64_t* qw, const std::vector<std::uint32_t>& probes,
                            const std::vector<std::size_t>& list_offsets,
                            const std::vector<std::uint32_t>& list_rows,
                            const std::vector<std::uint64_t>& codes_prefix,
                            const std::vector<std::uint64_t>& codes_suffix, std::size_t wp,
                            std::size_t ws, ScanScratch& scratch, std::uint64_t& swept,
                            Emit&& emit) {
  std::uint32_t* hpre = scratch.hpre.data();
  std::uint32_t* hsuf = scratch.hsuf.data();
  for (std::uint32_t c : probes) {
    const std::size_t off = list_offsets[c];
    const std::size_t len = list_offsets[c + 1] - off;
    if (len == 0) continue;
    swept += len;
    hdc::hamming_many_packed(qw, codes_prefix.data() + off * wp, len, wp, hpre);
    if (ws)
      hdc::hamming_many_packed(qw + wp, codes_suffix.data() + off * ws, len, ws, hsuf);
    for (std::size_t i = 0; i < len; ++i)
      emit(list_rows[off + i], ws ? hpre[i] + hsuf[i] : hpre[i]);
  }
}

/// Process-wide probe/prune telemetry in obs::default_registry(), the
/// approximate-tier mirror of the serve_shard_* counters. Magic statics so
/// the hot loops pay one pointer load, no registry lookups.
obs::Counter& ivf_centroids_probed_total() {
  static const std::shared_ptr<obs::Counter> c = obs::default_registry().counter(
      "serve_ivf_centroids_probed_total", {}, "inverted lists opened by IVF probes");
  return *c;
}
obs::Counter& ivf_rows_swept_total() {
  static const std::shared_ptr<obs::Counter> c = obs::default_registry().counter(
      "serve_ivf_rows_swept_total", {}, "prototype rows prefix-scored by IVF scans");
  return *c;
}
obs::Counter& ivf_rows_pruned_total() {
  static const std::shared_ptr<obs::Counter> c = obs::default_registry().counter(
      "serve_ivf_rows_pruned_total", {},
      "rows early-exited by the Hamming prefix bound before their suffix was read");
  return *c;
}
obs::Counter& ivf_rows_reranked_total() {
  static const std::shared_ptr<obs::Counter> c = obs::default_registry().counter(
      "serve_ivf_rows_reranked_total", {}, "binary candidates re-scored in float by the cascade");
  return *c;
}

void check_embeddings(const tensor::Tensor& embeddings, std::size_t dim, const char* what) {
  if (embeddings.dim() != 2 || embeddings.size(1) != dim)
    throw std::invalid_argument(std::string("IvfIndex::") + what + ": need [B, " +
                                std::to_string(dim) + "] embeddings, got " +
                                tensor::shape_str(embeddings.shape()));
}

}  // namespace

std::string retrieval_mode_name(RetrievalMode mode) {
  switch (mode) {
    case RetrievalMode::kIvf:
      return "ivf";
    case RetrievalMode::kCascade:
      return "cascade";
    case RetrievalMode::kExact:
      break;
  }
  return "exact";
}

RetrievalMode retrieval_mode_from_name(const std::string& name) {
  if (name == "exact") return RetrievalMode::kExact;
  if (name == "ivf") return RetrievalMode::kIvf;
  if (name == "cascade") return RetrievalMode::kCascade;
  throw std::invalid_argument("unknown retrieval mode '" + name +
                              "' (expected exact, ivf or cascade)");
}

IvfIndex::IvfIndex(const PrototypeStore& base, std::size_t n_centroids, std::size_t iters,
                   std::uint64_t seed)
    : base_(&base) {
  const std::size_t rows = base.n_classes();
  const std::size_t d = base.dim();
  std::size_t cc =
      n_centroids == 0
          ? static_cast<std::size_t>(std::lround(std::sqrt(static_cast<double>(rows))))
          : n_centroids;
  cc = std::clamp<std::size_t>(cc, 1, rows);

  const float* P = base.float_rows();
  util::Rng rng(seed);
  const std::vector<std::size_t> perm = rng.permutation(rows);

  // Init: Cc distinct random rows (already unit-norm).
  centroids_ = tensor::Tensor({cc, d});
  float* Cm = centroids_.data();
  for (std::size_t c = 0; c < cc; ++c)
    std::copy(P + perm[c] * d, P + (perm[c] + 1) * d, Cm + c * d);

  // Nearest-centroid assignment by chunked GEMM: gather (for sampled ids)
  // or slice (ids == nullptr: the contiguous range [0, n)) a chunk of
  // rows, one [chunk, Cc] dot block, argmax per row under (dot desc, id
  // asc). Centroids are read-only during a pass, so chunks fan out across
  // the worker pool.
  const auto assign_rows = [&](const std::size_t* ids, std::size_t n,
                               std::uint32_t* out_assign) {
    const std::size_t n_chunks = (n + kAssignChunk - 1) / kAssignChunk;
    util::parallel_for(
        0, n_chunks,
        [&](std::size_t ch) {
          const std::size_t lo = ch * kAssignChunk;
          const std::size_t hi = std::min(n, lo + kAssignChunk);
          const std::size_t cn = hi - lo;
          std::vector<float> gathered;
          const float* src;
          if (ids) {
            gathered.resize(cn * d);
            for (std::size_t r = 0; r < cn; ++r)
              std::copy(P + ids[lo + r] * d, P + (ids[lo + r] + 1) * d,
                        gathered.data() + r * d);
            src = gathered.data();
          } else {
            src = P + lo * d;
          }
          std::vector<float> dots(cn * cc, 0.0f);
          tensor::gemm_accumulate(tensor::Trans::N, tensor::Trans::T, cn, cc, d, src, d, Cm, d,
                                  dots.data(), cc);
          for (std::size_t r = 0; r < cn; ++r) {
            const float* row = dots.data() + r * cc;
            std::size_t best = 0;
            for (std::size_t c = 1; c < cc; ++c)
              if (row[c] > row[best]) best = c;
            out_assign[lo + r] = static_cast<std::uint32_t>(best);
          }
        },
        /*grain=*/1);
  };

  // Spherical k-means on a bounded sample (kSamplePerCentroid rows per
  // centroid, FAISS-style): the coarse quantizer needs Voronoi structure,
  // not convergence, and the sample keeps build cost sublinear in C for
  // huge stores. Only the final assignment pass below touches every row.
  const std::size_t sample_n = std::min(rows, cc * kSamplePerCentroid);
  std::vector<std::uint32_t> sassign(sample_n);
  std::vector<double> sums(cc * d);
  std::vector<std::uint32_t> counts(cc);
  for (std::size_t it = 0; it < iters; ++it) {
    assign_rows(perm.data(), sample_n, sassign.data());
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0u);
    for (std::size_t s = 0; s < sample_n; ++s) {
      const float* row = P + perm[s] * d;
      double* acc = sums.data() + sassign[s] * d;
      for (std::size_t j = 0; j < d; ++j) acc[j] += row[j];
      ++counts[sassign[s]];
    }
    for (std::size_t c = 0; c < cc; ++c) {
      float* dst = Cm + c * d;
      double norm2 = 0.0;
      const double* acc = sums.data() + c * d;
      for (std::size_t j = 0; j < d; ++j) norm2 += acc[j] * acc[j];
      if (counts[c] == 0 || norm2 < 1e-20) {
        // Empty (or degenerate) cluster: reseed to a random sample row so
        // every centroid keeps earning rows.
        const std::size_t r = perm[rng.next_below(sample_n)];
        std::copy(P + r * d, P + (r + 1) * d, dst);
        continue;
      }
      const double inv = 1.0 / std::sqrt(norm2);
      for (std::size_t j = 0; j < d; ++j) dst[j] = static_cast<float>(acc[j] * inv);
    }
  }

  assignments_.resize(rows);
  assign_rows(nullptr, rows, assignments_.data());
  prefix_words_ = auto_prefix_words(base.words_per_row());
  build_lists();
}

IvfIndex IvfIndex::from_parts(const PrototypeStore& base, tensor::Tensor centroids,
                              std::vector<std::uint32_t> assignments) {
  if (centroids.dim() != 2 || centroids.size(0) == 0 || centroids.size(1) != base.dim())
    throw std::invalid_argument("IvfIndex::from_parts: centroids are " +
                                tensor::shape_str(centroids.shape()) + ", expected [Cc, " +
                                std::to_string(base.dim()) + "]");
  if (assignments.size() != base.n_classes())
    throw std::invalid_argument(
        "IvfIndex::from_parts: " + std::to_string(assignments.size()) + " assignments for " +
        std::to_string(base.n_classes()) + " prototype rows");
  const std::size_t cc = centroids.size(0);
  for (std::uint32_t a : assignments)
    if (a >= cc)
      throw std::invalid_argument("IvfIndex::from_parts: assignment " + std::to_string(a) +
                                  " out of range for " + std::to_string(cc) + " centroids");
  IvfIndex idx;
  idx.base_ = &base;
  idx.centroids_ = std::move(centroids);
  idx.assignments_ = std::move(assignments);
  idx.prefix_words_ = auto_prefix_words(base.words_per_row());
  idx.build_lists();
  return idx;
}

void IvfIndex::build_lists() {
  const std::size_t rows = base_->n_classes();
  const std::size_t cc = centroids_.size(0);
  const std::size_t d = base_->dim();
  const std::size_t wpr = base_->words_per_row();

  // Packed centroid codes (the binary path's probe targets), encoded with
  // the store's own query encoder so expansion/LSH behave identically.
  centroid_codes_.assign(cc * wpr, 0);
  for (std::size_t c = 0; c < cc; ++c) {
    const hdc::BinaryHV code = base_->encode_query(centroids_.data() + c * d);
    std::copy(code.words().begin(), code.words().end(), centroid_codes_.begin() + c * wpr);
  }

  // Inverted lists: counting sort of row ids by centroid — rows stay
  // ascending within each list, so a full probe enumerates labels in the
  // same per-list order every time.
  std::vector<std::size_t> counts(cc, 0);
  for (std::uint32_t a : assignments_) ++counts[a];
  list_offsets_.assign(cc + 1, 0);
  for (std::size_t c = 0; c < cc; ++c) list_offsets_[c + 1] = list_offsets_[c] + counts[c];
  list_rows_.resize(rows);
  std::vector<std::size_t> cursor(list_offsets_.begin(), list_offsets_.end() - 1);
  for (std::size_t r = 0; r < rows; ++r)
    list_rows_[cursor[assignments_[r]]++] = static_cast<std::uint32_t>(r);
  max_list_ = 0;
  for (std::size_t c = 0; c < cc; ++c) max_list_ = std::max(max_list_, counts[c]);
  repack_codes();
}

void IvfIndex::repack_codes() {
  const std::size_t rows = base_->n_classes();
  const std::size_t wpr = base_->words_per_row();
  const std::size_t wp = prefix_words_;
  const std::size_t ws = wpr - wp;
  const std::uint64_t* packed = base_->packed_data();
  codes_prefix_.resize(rows * wp);
  codes_suffix_.resize(rows * ws);
  for (std::size_t i = 0; i < rows; ++i) {
    const std::uint64_t* src = packed + list_rows_[i] * wpr;
    std::copy(src, src + wp, codes_prefix_.data() + i * wp);
    if (ws) std::copy(src + wp, src + wpr, codes_suffix_.data() + i * ws);
  }
}

void IvfIndex::set_prefix_words(std::size_t words) {
  const std::size_t wpr = base_->words_per_row();
  prefix_words_ =
      words == 0 ? auto_prefix_words(wpr) : std::clamp<std::size_t>(words, 1, wpr);
  repack_codes();
}

std::size_t IvfIndex::resolve_nprobe(std::size_t nprobe) const {
  if (nprobe == 0) nprobe = default_nprobe();
  return std::clamp<std::size_t>(nprobe, 1, n_centroids());
}

std::vector<std::uint32_t> IvfIndex::probe_float(const float* dots,
                                                 std::size_t nprobe) const {
  const std::size_t cc = n_centroids();
  std::vector<std::uint32_t> ids(cc);
  std::iota(ids.begin(), ids.end(), 0u);
  std::partial_sort(ids.begin(), ids.begin() + nprobe, ids.end(),
                    [dots](std::uint32_t a, std::uint32_t b) {
                      if (dots[a] != dots[b]) return dots[a] > dots[b];
                      return a < b;
                    });
  ids.resize(nprobe);
  return ids;
}

std::vector<std::uint32_t> IvfIndex::probe_binary(const std::uint64_t* qwords,
                                                  std::size_t nprobe) const {
  const std::size_t cc = n_centroids();
  const std::size_t wpr = base_->words_per_row();
  std::vector<std::uint32_t> h(cc);
  hdc::hamming_many_packed(qwords, centroid_codes_.data(), cc, wpr, h.data());
  std::vector<std::uint32_t> ids(cc);
  std::iota(ids.begin(), ids.end(), 0u);
  std::partial_sort(ids.begin(), ids.begin() + nprobe, ids.end(),
                    [&h](std::uint32_t a, std::uint32_t b) {
                      if (h[a] != h[b]) return h[a] < h[b];
                      return a < b;
                    });
  ids.resize(nprobe);
  return ids;
}

IvfIndex::ProbeStats IvfIndex::probe_stats() const {
  ProbeStats s;
  s.queries = counters_.queries.load(std::memory_order_relaxed);
  s.centroids_probed = counters_.centroids_probed.load(std::memory_order_relaxed);
  s.rows_swept = counters_.rows_swept.load(std::memory_order_relaxed);
  s.rows_pruned = counters_.rows_pruned.load(std::memory_order_relaxed);
  s.rows_reranked = counters_.rows_reranked.load(std::memory_order_relaxed);
  return s;
}

std::vector<std::vector<TopK>> IvfIndex::topk_float(const tensor::Tensor& embeddings,
                                                    std::size_t k, std::size_t nprobe,
                                                    const SeenPenalty* penalty) const {
  check_embeddings(embeddings, base_->dim(), "topk_float");
  const std::size_t batch = embeddings.size(0);
  std::vector<std::vector<TopK>> out(batch);
  if (k == 0 || batch == 0) return out;

  const std::size_t d = base_->dim();
  const std::size_t cc = n_centroids();
  const std::size_t np = resolve_nprobe(nprobe);
  const float scale = base_->scale();
  const tensor::Tensor e_hat = tensor::l2_normalize_rows(embeddings);
  const float* E = e_hat.data();
  const float* P = base_->float_rows();
  const bool penalized = penalty && penalty->active();
  const std::size_t kk = std::min(k, n_rows());

  // Probe: one [B, Cc] dot block against the centroids for the whole batch.
  std::vector<float> cdots(batch * cc, 0.0f);
  tensor::gemm_accumulate(tensor::Trans::N, tensor::Trans::T, batch, cc, d, E, d,
                          centroids_.data(), d, cdots.data(), cc);

  util::parallel_for(
      0, batch,
      [&](std::size_t b) {
        const std::vector<std::uint32_t> probes = probe_float(cdots.data() + b * cc, np);
        const float* erow = E + b * d;
        std::uint64_t swept = 0;
        std::vector<TopK> slots(kk);
        BoundedTopKFloat heap(slots.data(), kk);
        for (std::uint32_t c : probes) {
          const std::size_t off = list_offsets_[c];
          const std::size_t len = list_offsets_[c + 1] - off;
          swept += len;
          for (std::size_t i = 0; i < len; ++i) {
            const std::size_t row = list_rows_[off + i];
            // Double-accumulated row dot — the exact summation the naive
            // GEMM kernel (tensor/gemm.cpp N×T path) performs, so a full
            // probe reproduces the exact path's scores bit-for-bit
            // wherever that kernel runs.
            const float* prow = P + row * d;
            double acc = 0.0;
            for (std::size_t j = 0; j < d; ++j) acc += erow[j] * prow[j];
            float s = scale * static_cast<float>(acc);
            if (penalized) s -= penalty->row_penalty[row];
            heap.offer(TopK{row, s});
          }
        }
        std::vector<TopK>& merged = out[b];
        merged.assign(slots.begin(), slots.begin() + heap.size());
        std::sort(merged.begin(), merged.end(), detail::better<TopK>);
        counters_.queries.fetch_add(1, std::memory_order_relaxed);
        counters_.centroids_probed.fetch_add(probes.size(), std::memory_order_relaxed);
        counters_.rows_swept.fetch_add(swept, std::memory_order_relaxed);
        ivf_centroids_probed_total().add(probes.size());
        ivf_rows_swept_total().add(swept);
      },
      /*grain=*/1);
  return out;
}

std::vector<std::vector<TopK>> IvfIndex::topk_binary(const tensor::Tensor& embeddings,
                                                     std::size_t k, std::size_t nprobe,
                                                     const SeenPenalty* penalty) const {
  check_embeddings(embeddings, base_->dim(), "topk_binary");
  const std::size_t batch = embeddings.size(0);
  std::vector<std::vector<TopK>> out(batch);
  if (k == 0 || batch == 0) return out;

  const std::size_t d = base_->dim();
  const std::size_t np = resolve_nprobe(nprobe);
  const std::size_t wpr = base_->words_per_row();
  const std::size_t wp = prefix_words_;
  const std::size_t ws = wpr - wp;
  const float scale = base_->scale();
  const float inv_d = 1.0f / static_cast<float>(base_->code_bits());
  const bool penalized = penalty && penalty->active();
  const std::size_t kk = std::min(k, n_rows());
  // Same integer-domain precondition as the exact sharded scan
  // (topk_select.hpp): integer keys — and with them the early exit — need
  // the (h asc, label asc) order to coincide with (score desc, label asc).
  const bool integer_select = scale > 0.0f && base_->code_bits() < (std::size_t{1} << 24) &&
                              (!penalized || penalty->integer_exact);

  std::vector<std::uint64_t> qwords(batch * wpr);
  for (std::size_t b = 0; b < batch; ++b) {
    const hdc::BinaryHV q = base_->encode_query(embeddings.data() + b * d);
    std::copy(q.words().begin(), q.words().end(), qwords.begin() + b * wpr);
  }

  util::parallel_for(
      0, batch,
      [&](std::size_t b) {
        const std::uint64_t* qw = qwords.data() + b * wpr;
        const std::vector<std::uint32_t> probes = probe_binary(qw, np);
        std::uint64_t swept = 0, pruned = 0;
        ScanScratch scratch(max_list_);
        std::vector<TopK>& merged = out[b];

        if (integer_select) {
          std::vector<std::uint64_t> keys(kk);
          BoundedTopKHamming heap(keys.data(), kk, ~std::uint64_t{0});
          scan_probed_lists(qw, probes, list_offsets_, list_rows_, codes_prefix_,
                            codes_suffix_, wp, ws,
                            penalized ? penalty->row_offset.data() : nullptr, heap, scratch,
                            swept, pruned);
          // Ascending keys == (h asc, label asc) == (score desc, label asc)
          // under the integer-select precondition — the exact gather order.
          std::sort(keys.begin(), keys.begin() + heap.size());
          merged.resize(heap.size());
          for (std::size_t i = 0; i < heap.size(); ++i) {
            const auto hv = static_cast<float>(keys[i] >> 32);
            merged[i] = TopK{static_cast<std::size_t>(keys[i] & 0xffffffffu),
                             scale * (1.0f - 2.0f * hv * inv_d)};
          }
        } else {
          // Float-domain fallback (pathological widths, non-positive
          // scale, or a non-integer GZSL handicap): full-width scan,
          // subtract-form scores — exactly the exact path's fallback. No
          // early exit: without integer keys there is no admissible
          // integer bound to prune on.
          const float* adj = penalized ? penalty->row_penalty.data() : nullptr;
          std::vector<TopK> slots(kk);
          BoundedTopKFloat heap(slots.data(), kk);
          scan_probed_lists_full(qw, probes, list_offsets_, list_rows_, codes_prefix_,
                                 codes_suffix_, wp, ws, scratch, swept,
                                 [&](std::uint32_t row, std::uint32_t h) {
                                   if (adj) {
                                     heap.offer(TopK{row, scale * (1.0f -
                                                                   2.0f * static_cast<float>(h) *
                                                                       inv_d) -
                                                              adj[row]});
                                   } else {
                                     heap.offer(TopK{row, scale * (1.0f -
                                                                   2.0f * static_cast<float>(h) *
                                                                       inv_d)});
                                   }
                                 });
          merged.assign(slots.begin(), slots.begin() + heap.size());
          std::sort(merged.begin(), merged.end(), detail::better<TopK>);
        }

        counters_.queries.fetch_add(1, std::memory_order_relaxed);
        counters_.centroids_probed.fetch_add(probes.size(), std::memory_order_relaxed);
        counters_.rows_swept.fetch_add(swept, std::memory_order_relaxed);
        counters_.rows_pruned.fetch_add(pruned, std::memory_order_relaxed);
        ivf_centroids_probed_total().add(probes.size());
        ivf_rows_swept_total().add(swept);
        ivf_rows_pruned_total().add(pruned);
      },
      /*grain=*/1);
  return out;
}

std::vector<std::vector<TopK>> IvfIndex::topk_cascade(const tensor::Tensor& embeddings,
                                                      std::size_t k, std::size_t nprobe,
                                                      std::size_t rerank,
                                                      const SeenPenalty* penalty) const {
  check_embeddings(embeddings, base_->dim(), "topk_cascade");
  const std::size_t batch = embeddings.size(0);
  std::vector<std::vector<TopK>> out(batch);
  if (k == 0 || batch == 0) return out;

  const std::size_t d = base_->dim();
  const std::size_t cc = n_centroids();
  const std::size_t np = resolve_nprobe(nprobe);
  const std::size_t wpr = base_->words_per_row();
  const std::size_t wp = prefix_words_;
  const std::size_t ws = wpr - wp;
  const float scale = base_->scale();
  const bool penalized = penalty && penalty->active();
  const std::size_t kk = std::min(k, n_rows());
  // The prefilter ranks raw integer Hamming keys; an integer-exact GZSL
  // handicap folds in, any other handicap is applied only by the float
  // rerank (the prefilter then ranks unpenalized — documented contract).
  const bool integer_keys = scale > 0.0f && base_->code_bits() < (std::size_t{1} << 24);
  const bool fold_offsets = penalized && penalty->integer_exact;

  const tensor::Tensor e_hat = tensor::l2_normalize_rows(embeddings);
  const float* E = e_hat.data();
  const float* P = base_->float_rows();

  // Probe in the float domain (the rerank needs e_hat anyway).
  std::vector<float> cdots(batch * cc, 0.0f);
  tensor::gemm_accumulate(tensor::Trans::N, tensor::Trans::T, batch, cc, d, E, d,
                          centroids_.data(), d, cdots.data(), cc);

  std::vector<std::uint64_t> qwords(batch * wpr);
  for (std::size_t b = 0; b < batch; ++b) {
    const hdc::BinaryHV q = base_->encode_query(embeddings.data() + b * d);
    std::copy(q.words().begin(), q.words().end(), qwords.begin() + b * wpr);
  }

  util::parallel_for(
      0, batch,
      [&](std::size_t b) {
        const std::vector<std::uint32_t> probes = probe_float(cdots.data() + b * cc, np);
        const std::uint64_t* qw = qwords.data() + b * wpr;
        const float* erow = E + b * d;
        std::uint64_t swept = 0, pruned = 0;

        std::size_t total = 0;
        for (std::uint32_t c : probes) total += list_offsets_[c + 1] - list_offsets_[c];
        // rerank == 0 is the unbounded sentinel; a budget covering every
        // probed row skips the prefilter outright — with nprobe == Cc that
        // is exactly the exact float top-k.
        const std::size_t kprime =
            (rerank == 0 || rerank >= (total + kk - 1) / kk) ? total : rerank * kk;

        std::vector<std::uint32_t> cands;
        if (kprime >= total) {
          cands.reserve(total);
          for (std::uint32_t c : probes) {
            const std::size_t off = list_offsets_[c];
            const std::size_t len = list_offsets_[c + 1] - off;
            cands.insert(cands.end(), list_rows_.begin() + off,
                         list_rows_.begin() + off + len);
          }
        } else if (integer_keys) {
          // Binary prefilter with the same early-exit scan the IVF binary
          // path runs, k-heap bounded at rerank·k.
          ScanScratch scratch(max_list_);
          std::vector<std::uint64_t> keys(kprime);
          BoundedTopKHamming heap(keys.data(), kprime, ~std::uint64_t{0});
          scan_probed_lists(qw, probes, list_offsets_, list_rows_, codes_prefix_,
                            codes_suffix_, wp, ws,
                            fold_offsets ? penalty->row_offset.data() : nullptr, heap,
                            scratch, swept, pruned);
          cands.reserve(heap.size());
          for (std::size_t i = 0; i < heap.size(); ++i)
            cands.push_back(static_cast<std::uint32_t>(keys[i] & 0xffffffffu));
        } else {
          // No integer key order (non-positive scale or ≥ 2²⁴-bit codes):
          // full-width float-domain prefilter on unpenalized binary scores.
          const float inv_d = 1.0f / static_cast<float>(base_->code_bits());
          ScanScratch scratch(max_list_);
          std::vector<TopK> slots(kprime);
          BoundedTopKFloat heap(slots.data(), kprime);
          scan_probed_lists_full(
              qw, probes, list_offsets_, list_rows_, codes_prefix_, codes_suffix_, wp, ws,
              scratch, swept, [&](std::uint32_t row, std::uint32_t h) {
                heap.offer(TopK{row, scale * (1.0f - 2.0f * static_cast<float>(h) * inv_d)});
              });
          cands.reserve(heap.size());
          for (std::size_t i = 0; i < heap.size(); ++i)
            cands.push_back(static_cast<std::uint32_t>(slots[i].label));
        }

        // Float rerank: exact cosine dots (double-accumulated, the naive
        // GEMM summation) over the surviving candidates only.
        std::vector<TopK> slots(kk);
        BoundedTopKFloat final_heap(slots.data(), kk);
        for (std::uint32_t row : cands) {
          const float* prow = P + static_cast<std::size_t>(row) * d;
          double acc = 0.0;
          for (std::size_t j = 0; j < d; ++j) acc += erow[j] * prow[j];
          float s = scale * static_cast<float>(acc);
          if (penalized) s -= penalty->row_penalty[row];
          final_heap.offer(TopK{row, s});
        }
        std::vector<TopK>& merged = out[b];
        merged.assign(slots.begin(), slots.begin() + final_heap.size());
        std::sort(merged.begin(), merged.end(), detail::better<TopK>);

        counters_.queries.fetch_add(1, std::memory_order_relaxed);
        counters_.centroids_probed.fetch_add(probes.size(), std::memory_order_relaxed);
        counters_.rows_swept.fetch_add(swept, std::memory_order_relaxed);
        counters_.rows_pruned.fetch_add(pruned, std::memory_order_relaxed);
        counters_.rows_reranked.fetch_add(cands.size(), std::memory_order_relaxed);
        ivf_centroids_probed_total().add(probes.size());
        ivf_rows_swept_total().add(swept);
        ivf_rows_pruned_total().add(pruned);
        ivf_rows_reranked_total().add(cands.size());
      },
      /*grain=*/1);
  return out;
}

}  // namespace hdczsc::serve
