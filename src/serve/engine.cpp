#include "serve/engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "serve/snapshot_io.hpp"
#include "tensor/ops.hpp"
#include "util/timer.hpp"

namespace hdczsc::serve {

namespace {

tensor::Tensor concat_rows(const tensor::Tensor& a, const tensor::Tensor& b) {
  tensor::Tensor out({a.size(0) + b.size(0), a.size(1)});
  std::copy(a.data(), a.data() + a.numel(), out.data());
  std::copy(b.data(), b.data() + b.numel(), out.data() + a.numel());
  return out;
}

}  // namespace

std::string scoring_mode_name(ScoringMode mode) {
  return mode == ScoringMode::kFloatCosine ? "float-cosine" : "binary-hamming";
}

std::string precision_name(Precision p) {
  return p == Precision::kInt8 ? "int8" : "float32";
}

Precision precision_from_name(const std::string& name) {
  if (name == "float32" || name == "fp32" || name == "float") return Precision::kFloat32;
  if (name == "int8") return Precision::kInt8;
  throw std::invalid_argument("unknown backbone precision '" + name +
                              "' (expected float32 or int8)");
}

InferenceEngine::InferenceEngine(std::shared_ptr<const ModelSnapshot> snapshot,
                                 ScoringMode mode, std::size_t n_shards, float seen_penalty,
                                 Precision precision, RetrievalMode retrieval,
                                 std::size_t nprobe, std::size_t rerank,
                                 std::shared_ptr<const GzslCalibration> calibration)
    : snapshot_(std::move(snapshot)),
      mode_(mode),
      precision_(precision),
      cfg_penalty_(seen_penalty),
      retrieval_(retrieval),
      nprobe_(nprobe),
      rerank_(rerank),
      calibration_(std::move(calibration)) {
  if (!snapshot_) throw std::invalid_argument("InferenceEngine: null snapshot");
  if (precision_ == Precision::kInt8 && !snapshot_->has_quantized())
    throw std::invalid_argument(
        "InferenceEngine: int8 precision requested but the snapshot carries no quantized "
        "artifact (quantize it, or load a v4 .hdcsnap with quantization records)");
  shard_target_ = n_shards == 0 ? snapshot_->preferred_shards() : n_shards;

  // Version 0 of this engine's lineage: the snapshot's state, re-bundled.
  auto v = std::make_shared<StoreVersion>();
  v->version = snapshot_->store_version();
  v->store = snapshot_->store_ptr();
  v->seen_mask = snapshot_->seen_mask();
  v->n_seen = v->seen_mask.empty() ? 0 : snapshot_->n_seen();
  v->class_attributes = snapshot_->class_attributes();
  v->sharded = std::make_shared<const ShardedPrototypeStore>(*v->store, shard_target_);
  if (retrieval_ != RetrievalMode::kExact) {
    // Adopt the snapshot's persisted index (v5 .hdcsnap) when there is
    // one; otherwise cluster here — deterministic, so a rebuilt index
    // matches what a v5 writer would have saved for this store.
    v->ivf = snapshot_->has_ivf() ? snapshot_->ivf()
                                  : std::make_shared<const IvfIndex>(*v->store);
  }
  v->penalty =
      v->store->resolve_penalty(effective_penalty(*v->store, v->seen_mask), v->seen_mask);
  v->content_checksum = content_checksum(*v->store, v->seen_mask);
  version_ = std::move(v);
}

float InferenceEngine::effective_penalty(const PrototypeStore& store,
                                         const std::vector<std::uint8_t>& seen_mask) const {
  if (calibration_)
    return calibrate_seen_penalty(store, seen_mask, *calibration_,
                                  mode_ == ScoringMode::kBinaryHamming);
  if (cfg_penalty_ != 0.0f) return cfg_penalty_;
  return snapshot_->calibrated_penalty();
}

std::shared_ptr<const StoreVersion> InferenceEngine::pin() const {
  std::shared_lock lock(ver_mu_);
  return version_;
}

tensor::Tensor InferenceEngine::embed_inputs(const tensor::Tensor& inputs,
                                             double* embed_ms) const {
  // Split inference: a [B, d] batch already *is* the embedding (the
  // backbone ran on the client/edge — examples/edge_inference) and only
  // needs a width check; images run the whole-batch eval-mode forward.
  if (inputs.dim() == 2) {
    if (inputs.size(1) != snapshot_->dim())
      throw std::invalid_argument(
          "InferenceEngine: embedding width " + std::to_string(inputs.size(1)) +
          " does not match the model dim " + std::to_string(snapshot_->dim()));
    if (embed_ms) *embed_ms = 0.0;
    return inputs;
  }
  util::Timer clock;
  tensor::Tensor emb = precision_ == Precision::kInt8 ? snapshot_->embed_int8(inputs)
                                                      : snapshot_->embed(inputs);
  if (embed_ms) *embed_ms = clock.millis();
  return emb;
}

tensor::Tensor InferenceEngine::logits(const tensor::Tensor& inputs,
                                       BatchTimings* timings) const {
  double embed_ms = 0.0;
  tensor::Tensor emb = embed_inputs(inputs, &embed_ms);
  util::Timer clock;
  const std::shared_ptr<const StoreVersion> ver = pin();  // one version per batch
  tensor::Tensor out = mode_ == ScoringMode::kFloatCosine
                           ? ver->store->score_float(emb, ver->penalty_ptr())
                           : ver->store->score_binary(emb, ver->penalty_ptr());
  if (timings) {
    timings->embed_ms = embed_ms;
    timings->score_ms = clock.millis();
  }
  return out;
}

std::vector<std::vector<TopK>> InferenceEngine::topk_embedded(const StoreVersion& ver,
                                                              const tensor::Tensor& emb,
                                                              std::size_t k) const {
  switch (retrieval_) {
    case RetrievalMode::kIvf:
      return mode_ == ScoringMode::kFloatCosine
                 ? ver.ivf->topk_float(emb, k, nprobe_, ver.penalty_ptr())
                 : ver.ivf->topk_binary(emb, k, nprobe_, ver.penalty_ptr());
    case RetrievalMode::kCascade:
      // Cascade scores are float-domain regardless of the engine's scoring
      // mode: the binary stage only prefilters, the rerank decides.
      return ver.ivf->topk_cascade(emb, k, nprobe_, rerank_, ver.penalty_ptr());
    case RetrievalMode::kExact:
      break;
  }
  return mode_ == ScoringMode::kFloatCosine
             ? ver.sharded->topk_float(emb, k, ver.penalty_ptr())
             : ver.sharded->topk_binary(emb, k, ver.penalty_ptr());
}

std::vector<std::vector<TopK>> InferenceEngine::topk_batch(const tensor::Tensor& inputs,
                                                           std::size_t k,
                                                           BatchTimings* timings) const {
  double embed_ms = 0.0;
  tensor::Tensor emb = embed_inputs(inputs, &embed_ms);
  util::Timer clock;
  const std::shared_ptr<const StoreVersion> ver = pin();  // one version per batch
  auto out = topk_embedded(*ver, emb, k);
  if (timings) {
    timings->embed_ms = embed_ms;
    timings->score_ms = clock.millis();
  }
  return out;
}

std::vector<Prediction> InferenceEngine::classify_batch(const tensor::Tensor& inputs,
                                                        BatchTimings* timings) const {
  // One coalesced forward end-to-end: the backbone runs a single whole-batch
  // im2col + GEMM per conv layer (tensor/gemm.hpp), so a batch of B images
  // is substantially cheaper than B single-image forwards — dynamic batching
  // now amortizes the embed, not just the prototype scan. The embed runs
  // here (not inside logits/topk_batch) so the two stages can be timed
  // separately for the per-request tracer; the computation is unchanged.
  double embed_ms = 0.0;
  tensor::Tensor emb = embed_inputs(inputs, &embed_ms);
  util::Timer clock;
  const std::shared_ptr<const StoreVersion> ver = pin();  // one version per batch

  std::vector<Prediction> out;
  if (retrieval_ != RetrievalMode::kExact || ver->sharded->n_shards() > 1) {
    // Approximate tiers and the sharded store: classify is the k = 1
    // retrieval — no [B, C] logits materialization, no full-width argmax
    // sweep. An IVF probe can in principle come back empty (every probed
    // list empty); that degenerates to "no prediction", reported as label
    // 0 with a -inf score rather than UB.
    const auto hits = topk_embedded(*ver, emb, 1);
    out.resize(hits.size());
    for (std::size_t b = 0; b < hits.size(); ++b)
      out[b] = hits[b].empty()
                   ? Prediction{0, -std::numeric_limits<float>::infinity()}
                   : Prediction{hits[b][0].label, hits[b][0].score};
  } else {
    tensor::Tensor p = mode_ == ScoringMode::kFloatCosine
                           ? ver->store->score_float(emb, ver->penalty_ptr())
                           : ver->store->score_binary(emb, ver->penalty_ptr());
    const std::size_t classes = p.size(1);
    const std::vector<std::size_t> best = tensor::argmax_rows(p);
    out.resize(best.size());
    const float* P = p.data();
    for (std::size_t b = 0; b < best.size(); ++b)
      out[b] = Prediction{best[b], P[b * classes + best[b]]};
  }
  if (timings) {
    timings->embed_ms = embed_ms;
    timings->score_ms = clock.millis();
  }
  return out;
}

std::shared_ptr<const StoreVersion> InferenceEngine::publish_appended(
    const std::shared_ptr<const StoreVersion>& cur,
    std::shared_ptr<const PrototypeStore> new_store, std::vector<std::uint8_t> new_mask,
    tensor::Tensor new_attrs, std::vector<std::uint32_t> ivf_assignments) const {
  auto v = std::make_shared<StoreVersion>();
  v->version = cur->version + 1;
  v->store = std::move(new_store);
  v->seen_mask = std::move(new_mask);
  for (std::uint8_t m : v->seen_mask) v->n_seen += m != 0;
  v->class_attributes = std::move(new_attrs);
  v->sharded = std::make_shared<const ShardedPrototypeStore>(*v->store, shard_target_);
  if (cur->ivf)
    v->ivf = std::make_shared<const IvfIndex>(IvfIndex::from_parts(
        *v->store, cur->ivf->centroids(), std::move(ivf_assignments)));
  v->penalty =
      v->store->resolve_penalty(effective_penalty(*v->store, v->seen_mask), v->seen_mask);
  // Checksums chain: only the new rows are hashed. The base rows' seen
  // bytes are unchanged by mask materialization (empty mask and all-1s mask
  // hash identically), so the extension equals a from-scratch checksum.
  v->content_checksum =
      extend_content_checksum(cur->content_checksum, *v->store, v->seen_mask,
                              cur->n_classes());
  std::unique_lock lock(ver_mu_);
  version_ = v;
  return v;
}

std::shared_ptr<const StoreVersion> InferenceEngine::append_classes(
    const tensor::Tensor& attributes, const std::vector<std::uint8_t>& seen_flags) const {
  // encode_attributes validates the [n, α] shape before the lock is taken.
  const tensor::Tensor phi = snapshot_->encode_attributes(attributes);
  const std::size_t n_new = phi.size(0);
  if (!seen_flags.empty() && seen_flags.size() != n_new)
    throw std::invalid_argument("InferenceEngine::append_classes: " +
                                std::to_string(seen_flags.size()) + " seen flags for " +
                                std::to_string(n_new) + " appended classes");

  std::lock_guard evolve(evolve_mu_);
  const std::shared_ptr<const StoreVersion> cur = pin();
  auto new_store =
      std::make_shared<const PrototypeStore>(cur->store->append_rows(phi));
  std::vector<std::uint8_t> new_mask =
      extend_seen_mask(cur->seen_mask, cur->n_classes(), seen_flags, n_new);
  std::vector<std::uint32_t> assignments;
  if (cur->ivf)
    assignments = extend_ivf_assignments(cur->ivf->centroids(), cur->ivf->assignments(),
                                         *new_store, cur->n_classes());
  return publish_appended(cur, std::move(new_store), std::move(new_mask),
                          concat_rows(cur->class_attributes, attributes),
                          std::move(assignments));
}

std::shared_ptr<const StoreVersion> InferenceEngine::append_delta(
    const SnapshotDelta& delta) const {
  std::lock_guard evolve(evolve_mu_);
  const std::shared_ptr<const StoreVersion> cur = pin();
  if (delta.base_rows != cur->n_classes() || delta.base_version != cur->version)
    throw std::invalid_argument(
        "InferenceEngine::append_delta: delta expects base version " +
        std::to_string(delta.base_version) + " with " + std::to_string(delta.base_rows) +
        " classes, but version " + std::to_string(cur->version) + " with " +
        std::to_string(cur->n_classes()) + " classes is serving");
  if (delta.base_checksum != cur->content_checksum)
    throw std::runtime_error(
        "InferenceEngine::append_delta: base content checksum mismatch — the delta was "
        "written against different store content");
  const std::size_t n_new = delta.normalized_rows.size(0);
  if (delta.attributes.dim() != 2 || delta.attributes.size(0) != n_new ||
      delta.attributes.size(1) != cur->class_attributes.size(1))
    throw std::invalid_argument(
        "InferenceEngine::append_delta: attribute rows disagree with the delta's "
        "prototype rows");
  if (!delta.seen_flags.empty() && delta.seen_flags.size() != n_new)
    throw std::invalid_argument(
        "InferenceEngine::append_delta: seen-flag count disagrees with the delta's rows");
  if (delta.has_ivf && delta.ivf_assignments.size() != n_new)
    throw std::invalid_argument(
        "InferenceEngine::append_delta: IVF assignment count disagrees with the delta's "
        "rows");

  // Adopt the serialized rows verbatim — bitwise what the writer appended.
  auto new_store = std::make_shared<const PrototypeStore>(
      cur->store->append_parts(delta.normalized_rows, delta.packed_words));
  std::vector<std::uint8_t> new_mask =
      extend_seen_mask(cur->seen_mask, cur->n_classes(), delta.seen_flags, n_new);
  const std::uint64_t chained =
      extend_content_checksum(cur->content_checksum, *new_store, new_mask,
                              cur->n_classes());
  if (chained != delta.new_checksum)
    throw std::runtime_error(
        "InferenceEngine::append_delta: content checksum mismatch after append (corrupt "
        "delta payload) — keeping the current version");

  std::vector<std::uint32_t> assignments;
  if (cur->ivf) {
    if (delta.has_ivf) {
      assignments = cur->ivf->assignments();
      assignments.reserve(new_store->n_classes());
      const std::size_t cc = cur->ivf->n_centroids();
      for (std::uint32_t a : delta.ivf_assignments) {
        if (a >= cc)
          throw std::invalid_argument(
              "InferenceEngine::append_delta: IVF assignment out of centroid range");
        assignments.push_back(a);
      }
    } else {
      assignments = extend_ivf_assignments(cur->ivf->centroids(), cur->ivf->assignments(),
                                           *new_store, cur->n_classes());
    }
  }
  return publish_appended(cur, std::move(new_store), std::move(new_mask),
                          concat_rows(cur->class_attributes, delta.attributes),
                          std::move(assignments));
}

}  // namespace hdczsc::serve
