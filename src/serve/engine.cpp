#include "serve/engine.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace hdczsc::serve {

std::string scoring_mode_name(ScoringMode mode) {
  return mode == ScoringMode::kFloatCosine ? "float-cosine" : "binary-hamming";
}

InferenceEngine::InferenceEngine(std::shared_ptr<const ModelSnapshot> snapshot,
                                 ScoringMode mode)
    : snapshot_(std::move(snapshot)), mode_(mode) {
  if (!snapshot_) throw std::invalid_argument("InferenceEngine: null snapshot");
}

tensor::Tensor InferenceEngine::logits(const tensor::Tensor& images) const {
  tensor::Tensor emb = snapshot_->embed(images);
  const PrototypeStore& store = snapshot_->prototypes();
  return mode_ == ScoringMode::kFloatCosine ? store.score_float(emb)
                                            : store.score_binary(emb);
}

std::vector<Prediction> InferenceEngine::classify_batch(const tensor::Tensor& images) const {
  // One coalesced forward end-to-end: the backbone runs a single whole-batch
  // im2col + GEMM per conv layer (tensor/gemm.hpp), so a batch of B images
  // is substantially cheaper than B single-image forwards — dynamic batching
  // now amortizes the embed, not just the prototype scan.
  tensor::Tensor p = logits(images);
  const std::size_t classes = p.size(1);
  const std::vector<std::size_t> best = tensor::argmax_rows(p);
  std::vector<Prediction> out(best.size());
  const float* P = p.data();
  for (std::size_t b = 0; b < best.size(); ++b)
    out[b] = Prediction{best[b], P[b * classes + best[b]]};
  return out;
}

}  // namespace hdczsc::serve
