#include "serve/engine.hpp"

#include <limits>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/timer.hpp"

namespace hdczsc::serve {

namespace {
const ModelSnapshot& deref(const std::shared_ptr<const ModelSnapshot>& snapshot) {
  if (!snapshot) throw std::invalid_argument("InferenceEngine: null snapshot");
  return *snapshot;
}
}  // namespace

std::string scoring_mode_name(ScoringMode mode) {
  return mode == ScoringMode::kFloatCosine ? "float-cosine" : "binary-hamming";
}

std::string precision_name(Precision p) {
  return p == Precision::kInt8 ? "int8" : "float32";
}

Precision precision_from_name(const std::string& name) {
  if (name == "float32" || name == "fp32" || name == "float") return Precision::kFloat32;
  if (name == "int8") return Precision::kInt8;
  throw std::invalid_argument("unknown backbone precision '" + name +
                              "' (expected float32 or int8)");
}

InferenceEngine::InferenceEngine(std::shared_ptr<const ModelSnapshot> snapshot,
                                 ScoringMode mode, std::size_t n_shards, float seen_penalty,
                                 Precision precision, RetrievalMode retrieval,
                                 std::size_t nprobe, std::size_t rerank)
    : snapshot_(std::move(snapshot)),
      mode_(mode),
      precision_(precision),
      // Both arguments null-check through deref: their evaluation order is
      // unspecified, so neither may touch snapshot_ bare.
      sharded_(deref(snapshot_).prototypes(),
               n_shards == 0 ? deref(snapshot_).preferred_shards() : n_shards),
      penalty_(snapshot_->prototypes().resolve_penalty(seen_penalty,
                                                       snapshot_->seen_mask())),
      retrieval_(retrieval),
      nprobe_(nprobe),
      rerank_(rerank) {
  if (precision_ == Precision::kInt8 && !snapshot_->has_quantized())
    throw std::invalid_argument(
        "InferenceEngine: int8 precision requested but the snapshot carries no quantized "
        "artifact (quantize it, or load a v4 .hdcsnap with quantization records)");
  if (retrieval_ != RetrievalMode::kExact) {
    // Adopt the snapshot's persisted index (v5 .hdcsnap) when there is
    // one; otherwise cluster here — deterministic, so a rebuilt index
    // matches what a v5 writer would have saved for this store.
    ivf_ = snapshot_->has_ivf()
               ? snapshot_->ivf()
               : std::make_shared<const IvfIndex>(snapshot_->prototypes());
  }
}

tensor::Tensor InferenceEngine::embed_inputs(const tensor::Tensor& inputs,
                                             double* embed_ms) const {
  // Split inference: a [B, d] batch already *is* the embedding (the
  // backbone ran on the client/edge — examples/edge_inference) and only
  // needs a width check; images run the whole-batch eval-mode forward.
  if (inputs.dim() == 2) {
    if (inputs.size(1) != snapshot_->dim())
      throw std::invalid_argument(
          "InferenceEngine: embedding width " + std::to_string(inputs.size(1)) +
          " does not match the model dim " + std::to_string(snapshot_->dim()));
    if (embed_ms) *embed_ms = 0.0;
    return inputs;
  }
  util::Timer clock;
  tensor::Tensor emb = precision_ == Precision::kInt8 ? snapshot_->embed_int8(inputs)
                                                      : snapshot_->embed(inputs);
  if (embed_ms) *embed_ms = clock.millis();
  return emb;
}

tensor::Tensor InferenceEngine::logits(const tensor::Tensor& inputs,
                                       BatchTimings* timings) const {
  double embed_ms = 0.0;
  tensor::Tensor emb = embed_inputs(inputs, &embed_ms);
  util::Timer clock;
  const PrototypeStore& store = snapshot_->prototypes();
  tensor::Tensor out = mode_ == ScoringMode::kFloatCosine
                           ? store.score_float(emb, penalty_ptr())
                           : store.score_binary(emb, penalty_ptr());
  if (timings) {
    timings->embed_ms = embed_ms;
    timings->score_ms = clock.millis();
  }
  return out;
}

std::vector<std::vector<TopK>> InferenceEngine::topk_embedded(const tensor::Tensor& emb,
                                                              std::size_t k) const {
  switch (retrieval_) {
    case RetrievalMode::kIvf:
      return mode_ == ScoringMode::kFloatCosine
                 ? ivf_->topk_float(emb, k, nprobe_, penalty_ptr())
                 : ivf_->topk_binary(emb, k, nprobe_, penalty_ptr());
    case RetrievalMode::kCascade:
      // Cascade scores are float-domain regardless of the engine's scoring
      // mode: the binary stage only prefilters, the rerank decides.
      return ivf_->topk_cascade(emb, k, nprobe_, rerank_, penalty_ptr());
    case RetrievalMode::kExact:
      break;
  }
  return mode_ == ScoringMode::kFloatCosine ? sharded_.topk_float(emb, k, penalty_ptr())
                                            : sharded_.topk_binary(emb, k, penalty_ptr());
}

std::vector<std::vector<TopK>> InferenceEngine::topk_batch(const tensor::Tensor& inputs,
                                                           std::size_t k,
                                                           BatchTimings* timings) const {
  double embed_ms = 0.0;
  tensor::Tensor emb = embed_inputs(inputs, &embed_ms);
  util::Timer clock;
  auto out = topk_embedded(emb, k);
  if (timings) {
    timings->embed_ms = embed_ms;
    timings->score_ms = clock.millis();
  }
  return out;
}

std::vector<Prediction> InferenceEngine::classify_batch(const tensor::Tensor& inputs,
                                                        BatchTimings* timings) const {
  // One coalesced forward end-to-end: the backbone runs a single whole-batch
  // im2col + GEMM per conv layer (tensor/gemm.hpp), so a batch of B images
  // is substantially cheaper than B single-image forwards — dynamic batching
  // now amortizes the embed, not just the prototype scan. The embed runs
  // here (not inside logits/topk_batch) so the two stages can be timed
  // separately for the per-request tracer; the computation is unchanged.
  double embed_ms = 0.0;
  tensor::Tensor emb = embed_inputs(inputs, &embed_ms);
  util::Timer clock;

  std::vector<Prediction> out;
  if (retrieval_ != RetrievalMode::kExact || sharded_.n_shards() > 1) {
    // Approximate tiers and the sharded store: classify is the k = 1
    // retrieval — no [B, C] logits materialization, no full-width argmax
    // sweep. An IVF probe can in principle come back empty (every probed
    // list empty); that degenerates to "no prediction", reported as label
    // 0 with a -inf score rather than UB.
    const auto hits = topk_embedded(emb, 1);
    out.resize(hits.size());
    for (std::size_t b = 0; b < hits.size(); ++b)
      out[b] = hits[b].empty()
                   ? Prediction{0, -std::numeric_limits<float>::infinity()}
                   : Prediction{hits[b][0].label, hits[b][0].score};
  } else {
    const PrototypeStore& store = snapshot_->prototypes();
    tensor::Tensor p = mode_ == ScoringMode::kFloatCosine ? store.score_float(emb, penalty_ptr())
                                                          : store.score_binary(emb, penalty_ptr());
    const std::size_t classes = p.size(1);
    const std::vector<std::size_t> best = tensor::argmax_rows(p);
    out.resize(best.size());
    const float* P = p.data();
    for (std::size_t b = 0; b < best.size(); ++b)
      out[b] = Prediction{best[b], P[b * classes + best[b]]};
  }
  if (timings) {
    timings->embed_ms = embed_ms;
    timings->score_ms = clock.millis();
  }
  return out;
}

}  // namespace hdczsc::serve
