#include "serve/engine.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace hdczsc::serve {

std::string scoring_mode_name(ScoringMode mode) {
  return mode == ScoringMode::kFloatCosine ? "float-cosine" : "binary-hamming";
}

InferenceEngine::InferenceEngine(std::shared_ptr<const ModelSnapshot> snapshot,
                                 ScoringMode mode)
    : snapshot_(std::move(snapshot)), mode_(mode) {
  if (!snapshot_) throw std::invalid_argument("InferenceEngine: null snapshot");
}

tensor::Tensor InferenceEngine::logits(const tensor::Tensor& images) const {
  tensor::Tensor emb = snapshot_->embed(images);
  const PrototypeStore& store = snapshot_->prototypes();
  return mode_ == ScoringMode::kFloatCosine ? store.score_float(emb)
                                            : store.score_binary(emb);
}

std::vector<Prediction> InferenceEngine::classify_batch(const tensor::Tensor& images) const {
  tensor::Tensor p = logits(images);
  const std::size_t batch = p.size(0), classes = p.size(1);
  std::vector<Prediction> out(batch);
  const float* P = p.data();
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = P + b * classes;
    std::size_t best = 0;
    for (std::size_t c = 1; c < classes; ++c)
      if (row[c] > row[best]) best = c;
    out[b] = Prediction{best, row[best]};
  }
  return out;
}

}  // namespace hdczsc::serve
