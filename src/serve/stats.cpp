#include "serve/stats.hpp"

#include <algorithm>
#include <cmath>

namespace hdczsc::serve {

void ServingStats::record_request(double latency_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  ++completed_;
  latencies_ms_.push_back(latency_ms);
}

void ServingStats::record_reject() {
  std::lock_guard<std::mutex> lock(mu_);
  ++rejected_;
}

void ServingStats::record_batch(std::size_t batch_size) {
  std::lock_guard<std::mutex> lock(mu_);
  ++batches_;
  batch_size_sum_ += batch_size;
  std::size_t bucket = 0;
  for (std::size_t s = batch_size; s > 1; s >>= 1) ++bucket;
  if (batch_histogram_.size() <= bucket) batch_histogram_.resize(bucket + 1, 0);
  ++batch_histogram_[bucket];
}

void ServingStats::record_domains(std::size_t seen, std::size_t unseen) {
  std::lock_guard<std::mutex> lock(mu_);
  seen_hits_ += seen;
  unseen_hits_ += unseen;
}

void ServingStats::observe_queue_depth(std::size_t depth) {
  std::lock_guard<std::mutex> lock(mu_);
  max_queue_depth_ = std::max(max_queue_depth_, depth);
}

double ServingStats::percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  const std::size_t k = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(xs.size()) - 1.0,
                       q * static_cast<double>(xs.size())));
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(k), xs.end());
  return xs[k];
}

ServingStats::Summary ServingStats::summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  Summary s;
  s.completed = completed_;
  s.rejected = rejected_;
  s.batches = batches_;
  s.wall_seconds = wall_.seconds();
  s.throughput_rps =
      s.wall_seconds > 0.0 ? static_cast<double>(completed_) / s.wall_seconds : 0.0;
  if (!latencies_ms_.empty()) {
    double sum = 0.0;
    for (double x : latencies_ms_) sum += x;
    s.mean_latency_ms = sum / static_cast<double>(latencies_ms_.size());
    s.p50_latency_ms = percentile(latencies_ms_, 0.50);
    s.p99_latency_ms = percentile(latencies_ms_, 0.99);
  }
  s.mean_batch_size =
      batches_ > 0 ? static_cast<double>(batch_size_sum_) / static_cast<double>(batches_) : 0.0;
  s.max_queue_depth = max_queue_depth_;
  s.seen_hits = seen_hits_;
  s.unseen_hits = unseen_hits_;
  const double domains = static_cast<double>(seen_hits_ + unseen_hits_);
  if (seen_hits_ > 0 && unseen_hits_ > 0) {
    const double fs = static_cast<double>(seen_hits_) / domains;
    const double fu = static_cast<double>(unseen_hits_) / domains;
    s.domain_harmonic = 2.0 * fs * fu / (fs + fu);
  }
  s.batch_histogram = batch_histogram_;
  return s;
}

util::Table ServingStats::to_table(const std::string& title) const {
  const Summary s = summary();
  util::Table t(title);
  t.set_header({"metric", "value"});
  t.add_row({"completed", std::to_string(s.completed)});
  t.add_row({"rejected", std::to_string(s.rejected)});
  t.add_row({"batches", std::to_string(s.batches)});
  t.add_row({"throughput (req/s)", util::Table::num(s.throughput_rps, 1)});
  t.add_row({"latency mean (ms)", util::Table::num(s.mean_latency_ms, 3)});
  t.add_row({"latency p50 (ms)", util::Table::num(s.p50_latency_ms, 3)});
  t.add_row({"latency p99 (ms)", util::Table::num(s.p99_latency_ms, 3)});
  t.add_row({"mean batch size", util::Table::num(s.mean_batch_size, 2)});
  t.add_row({"max queue depth", std::to_string(s.max_queue_depth)});
  if (s.seen_hits + s.unseen_hits > 0) {
    t.add_row({"seen-class predictions", std::to_string(s.seen_hits)});
    t.add_row({"unseen-class predictions", std::to_string(s.unseen_hits)});
    t.add_row({"domain balance H", util::Table::num(s.domain_harmonic, 3)});
  }
  for (std::size_t k = 0; k < s.batch_histogram.size(); ++k) {
    const std::size_t lo = std::size_t{1} << k;
    const std::size_t hi = (std::size_t{1} << (k + 1)) - 1;
    const std::string range =
        lo == hi ? std::to_string(lo) : std::to_string(lo) + "-" + std::to_string(hi);
    t.add_row({"batches of size " + range, std::to_string(s.batch_histogram[k])});
  }
  return t;
}

void ServingStats::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  wall_.reset();
  completed_ = 0;
  rejected_ = 0;
  batches_ = 0;
  batch_size_sum_ = 0;
  seen_hits_ = 0;
  unseen_hits_ = 0;
  max_queue_depth_ = 0;
  latencies_ms_.clear();
  batch_histogram_.clear();
}

}  // namespace hdczsc::serve
