#include "serve/stats.hpp"

#include <algorithm>
#include <cmath>

namespace hdczsc::serve {

ServingStats::ServingStats() { init(""); }
ServingStats::ServingStats(const std::string& model) { init(model); }

void ServingStats::init(const std::string& model) {
  if (model.empty()) {
    completed_ = std::make_shared<obs::Counter>();
    rejected_ = std::make_shared<obs::Counter>();
    batches_ = std::make_shared<obs::Counter>();
    seen_hits_ = std::make_shared<obs::Counter>();
    unseen_hits_ = std::make_shared<obs::Counter>();
    latency_ms_ = std::make_shared<obs::Histogram>();
    queue_wait_ms_ = std::make_shared<obs::Histogram>();
    batch_size_ = std::make_shared<obs::Histogram>();
    max_queue_depth_ = std::make_shared<obs::Gauge>();
    return;
  }
  obs::Registry& reg = obs::default_registry();
  const obs::Labels labels = {{"model", model}};
  completed_ = reg.counter("serve_requests_total", labels, "completed requests");
  rejected_ = reg.counter("serve_rejected_total", labels, "admission-control rejections");
  batches_ = reg.counter("serve_batches_total", labels, "executed coalesced batches");
  seen_hits_ =
      reg.counter("serve_seen_predictions_total", labels, "predictions on seen classes (GZSL)");
  unseen_hits_ = reg.counter("serve_unseen_predictions_total", labels,
                             "predictions on unseen classes (GZSL)");
  latency_ms_ =
      reg.histogram("serve_latency_ms", labels, "end-to-end request latency (ms), submit to reply");
  queue_wait_ms_ = reg.histogram("serve_queue_wait_ms", labels,
                                 "time spent queued before batch collection (ms)");
  batch_size_ = reg.histogram("serve_batch_size", labels, "coalesced batch sizes");
  max_queue_depth_ =
      reg.gauge("serve_queue_depth_max", labels, "high-water mark of the batcher queue depth");
}

void ServingStats::record_request(double latency_ms, double queue_wait_ms) {
  completed_->add();
  latency_ms_->record(latency_ms);
  queue_wait_ms_->record(queue_wait_ms);
}

void ServingStats::record_reject() { rejected_->add(); }

void ServingStats::record_batch(std::size_t batch_size) {
  batches_->add();
  batch_size_->record(static_cast<double>(batch_size));
  batch_size_sum_.fetch_add(batch_size, std::memory_order_relaxed);
  std::size_t bucket = 0;
  for (std::size_t s = batch_size; s > 1; s >>= 1) ++bucket;
  bucket = std::min(bucket, kBatchBuckets - 1);
  batch_hist_[bucket].fetch_add(1, std::memory_order_relaxed);
}

void ServingStats::record_domains(std::size_t seen, std::size_t unseen) {
  if (seen) seen_hits_->add(seen);
  if (unseen) unseen_hits_->add(unseen);
}

void ServingStats::observe_queue_depth(std::size_t depth) {
  max_queue_depth_->observe_max(static_cast<double>(depth));
}

ServingStats::Summary ServingStats::summary() const {
  Summary s;
  s.completed = completed_->value();
  s.rejected = rejected_->value();
  s.batches = batches_->value();
  s.wall_seconds = wall_.seconds();
  s.throughput_rps =
      s.wall_seconds > 0.0 ? static_cast<double>(s.completed) / s.wall_seconds : 0.0;
  s.mean_latency_ms = latency_ms_->mean();
  s.p50_latency_ms = latency_ms_->percentile(0.50);
  s.p99_latency_ms = latency_ms_->percentile(0.99);
  s.p999_latency_ms = latency_ms_->percentile(0.999);
  s.mean_queue_wait_ms = queue_wait_ms_->mean();
  s.p99_queue_wait_ms = queue_wait_ms_->percentile(0.99);
  const std::uint64_t batch_sum = batch_size_sum_.load(std::memory_order_relaxed);
  s.mean_batch_size =
      s.batches > 0 ? static_cast<double>(batch_sum) / static_cast<double>(s.batches) : 0.0;
  s.max_queue_depth = static_cast<std::size_t>(max_queue_depth_->value());
  s.seen_hits = seen_hits_->value();
  s.unseen_hits = unseen_hits_->value();
  const double domains = static_cast<double>(s.seen_hits + s.unseen_hits);
  if (s.seen_hits > 0 && s.unseen_hits > 0) {
    const double fs = static_cast<double>(s.seen_hits) / domains;
    const double fu = static_cast<double>(s.unseen_hits) / domains;
    s.domain_harmonic = 2.0 * fs * fu / (fs + fu);
  }
  std::size_t top = 0;
  for (std::size_t k = 0; k < kBatchBuckets; ++k)
    if (batch_hist_[k].load(std::memory_order_relaxed) > 0) top = k + 1;
  s.batch_histogram.resize(top);
  for (std::size_t k = 0; k < top; ++k)
    s.batch_histogram[k] = batch_hist_[k].load(std::memory_order_relaxed);
  return s;
}

util::Table ServingStats::to_table(const std::string& title) const {
  const Summary s = summary();
  util::Table t(title);
  t.set_header({"metric", "value"});
  t.add_row({"completed", std::to_string(s.completed)});
  t.add_row({"rejected", std::to_string(s.rejected)});
  t.add_row({"batches", std::to_string(s.batches)});
  t.add_row({"throughput (req/s)", util::Table::num(s.throughput_rps, 1)});
  t.add_row({"latency mean (ms)", util::Table::num(s.mean_latency_ms, 3)});
  t.add_row({"latency p50 (ms)", util::Table::num(s.p50_latency_ms, 3)});
  t.add_row({"latency p99 (ms)", util::Table::num(s.p99_latency_ms, 3)});
  t.add_row({"latency p999 (ms)", util::Table::num(s.p999_latency_ms, 3)});
  t.add_row({"queue wait mean (ms)", util::Table::num(s.mean_queue_wait_ms, 3)});
  t.add_row({"queue wait p99 (ms)", util::Table::num(s.p99_queue_wait_ms, 3)});
  t.add_row({"mean batch size", util::Table::num(s.mean_batch_size, 2)});
  t.add_row({"max queue depth", std::to_string(s.max_queue_depth)});
  if (s.seen_hits + s.unseen_hits > 0) {
    t.add_row({"seen-class predictions", std::to_string(s.seen_hits)});
    t.add_row({"unseen-class predictions", std::to_string(s.unseen_hits)});
    t.add_row({"domain balance H", util::Table::num(s.domain_harmonic, 3)});
  }
  for (std::size_t k = 0; k < s.batch_histogram.size(); ++k) {
    const std::size_t lo = std::size_t{1} << k;
    const std::size_t hi = (std::size_t{1} << (k + 1)) - 1;
    const std::string range =
        lo == hi ? std::to_string(lo) : std::to_string(lo) + "-" + std::to_string(hi);
    t.add_row({"batches of size " + range, std::to_string(s.batch_histogram[k])});
  }
  return t;
}

void ServingStats::reset() {
  wall_.reset();
  completed_->reset();
  rejected_->reset();
  batches_->reset();
  seen_hits_->reset();
  unseen_hits_->reset();
  latency_ms_->reset();
  queue_wait_ms_->reset();
  batch_size_->reset();
  max_queue_depth_->reset();
  batch_size_sum_.store(0, std::memory_order_relaxed);
  for (auto& b : batch_hist_) b.store(0, std::memory_order_relaxed);
}

}  // namespace hdczsc::serve
