#include "serve/snapshot.hpp"

#include <algorithm>
#include <stdexcept>

#include "serve/ann_store.hpp"

namespace hdczsc::serve {

namespace {
std::shared_ptr<const PrototypeStore> build_store(
    const std::shared_ptr<core::ZscModel>& model, const tensor::Tensor& class_attributes,
    std::size_t binary_expansion) {
  if (!model) throw std::invalid_argument("ModelSnapshot: null model");
  if (class_attributes.dim() != 2)
    throw std::invalid_argument("ModelSnapshot: class_attributes must be [C, alpha]");
  tensor::Tensor phi = model->attribute_encoder().encode(class_attributes, /*train=*/false);
  return std::make_shared<const PrototypeStore>(phi, model->class_kernel().scale(),
                                                binary_expansion);
}
}  // namespace

ModelSnapshot::ModelSnapshot(std::shared_ptr<core::ZscModel> model,
                             const tensor::Tensor& class_attributes,
                             std::size_t binary_expansion, std::size_t preferred_shards,
                             std::vector<std::uint8_t> seen_mask)
    : model_(std::move(model)),
      class_attributes_(class_attributes),
      store_(build_store(model_, class_attributes, binary_expansion)),
      preferred_shards_(preferred_shards == 0 ? 1 : preferred_shards) {
  adopt_seen_mask(std::move(seen_mask));
}

ModelSnapshot::ModelSnapshot(std::shared_ptr<core::ZscModel> model,
                             tensor::Tensor class_attributes, PrototypeStore store,
                             std::size_t preferred_shards, std::vector<std::uint8_t> seen_mask)
    : model_(std::move(model)),
      class_attributes_(std::move(class_attributes)),
      store_(std::make_shared<const PrototypeStore>(std::move(store))),
      preferred_shards_(preferred_shards == 0 ? 1 : preferred_shards) {
  if (!model_) throw std::invalid_argument("ModelSnapshot: null model");
  if (model_->dim() != store_->dim())
    throw std::invalid_argument("ModelSnapshot: model dim " + std::to_string(model_->dim()) +
                                " != prototype store dim " + std::to_string(store_->dim()));
  adopt_seen_mask(std::move(seen_mask));
}

void ModelSnapshot::adopt_seen_mask(std::vector<std::uint8_t> seen_mask) {
  if (seen_mask.empty()) return;  // no partition: every class counts as seen
  if (seen_mask.size() != store_->n_classes())
    throw std::invalid_argument("ModelSnapshot: seen mask has " +
                                std::to_string(seen_mask.size()) + " entries for " +
                                std::to_string(store_->n_classes()) + " classes");
  std::size_t seen = 0;
  for (std::uint8_t m : seen_mask) seen += m != 0;
  if (seen == seen_mask.size()) return;  // all-seen mask ≡ no partition
  seen_mask_ = std::move(seen_mask);
  n_seen_ = seen;
}

tensor::Tensor ModelSnapshot::embed(const tensor::Tensor& images) const {
  return model_->image_encoder().forward(images, /*train=*/false);
}

tensor::Tensor ModelSnapshot::embed_int8(const tensor::Tensor& images) const {
  if (!quant_)
    throw std::logic_error(
        "ModelSnapshot::embed_int8: no quantized artifact attached (quantize the snapshot or "
        "load a v4 .hdcsnap with quantization records)");
  return quant_->forward(images);
}

std::shared_ptr<const IvfIndex> ModelSnapshot::build_ivf(std::size_t n_centroids) {
  ivf_ = std::make_shared<const IvfIndex>(*store_, n_centroids);
  return ivf_;
}

tensor::Tensor ModelSnapshot::encode_attributes(const tensor::Tensor& attributes) const {
  if (attributes.dim() != 2 || attributes.size(0) == 0 ||
      attributes.size(1) != class_attributes_.size(1))
    throw std::invalid_argument(
        "ModelSnapshot::encode_attributes: need non-empty [n, " +
        std::to_string(class_attributes_.size(1)) + "] attribute rows, got " +
        tensor::shape_str(attributes.shape()));
  return model_->attribute_encoder().encode(attributes, /*train=*/false);
}

std::shared_ptr<const nn::QuantizedEmbed> ModelSnapshot::quantize(
    const tensor::Tensor& calibration_images, nn::CalibMethod method, std::size_t batch) {
  core::ImageEncoder& enc = model_->image_encoder();
  const nn::CalibrationTable table =
      nn::QuantizedEmbed::calibrate(enc.backbone(), enc.projection(), calibration_images,
                                    method, batch);
  quant_ = nn::QuantizedEmbed::build(enc.backbone(), enc.projection(), table);
  return quant_;
}

std::shared_ptr<ModelSnapshot> make_gzsl_snapshot(std::shared_ptr<core::ZscModel> model,
                                                  const tensor::Tensor& seen_attributes,
                                                  const tensor::Tensor& unseen_attributes,
                                                  std::size_t binary_expansion,
                                                  std::size_t preferred_shards) {
  if (seen_attributes.dim() != 2 || unseen_attributes.dim() != 2 ||
      seen_attributes.size(1) != unseen_attributes.size(1))
    throw std::invalid_argument(
        "make_gzsl_snapshot: seen/unseen attribute matrices must both be [C, alpha] with "
        "matching alpha");
  const std::size_t n_seen = seen_attributes.size(0);
  const std::size_t n_unseen = unseen_attributes.size(0);
  const std::size_t alpha = seen_attributes.size(1);
  tensor::Tensor joint({n_seen + n_unseen, alpha});
  std::copy(seen_attributes.data(), seen_attributes.data() + seen_attributes.numel(),
            joint.data());
  std::copy(unseen_attributes.data(), unseen_attributes.data() + unseen_attributes.numel(),
            joint.data() + seen_attributes.numel());
  std::vector<std::uint8_t> mask(n_seen + n_unseen, 0);
  std::fill(mask.begin(), mask.begin() + static_cast<std::ptrdiff_t>(n_seen), 1);
  return std::make_shared<ModelSnapshot>(std::move(model), joint, binary_expansion,
                                         preferred_shards, std::move(mask));
}

}  // namespace hdczsc::serve
