#include "serve/snapshot.hpp"

#include <stdexcept>

namespace hdczsc::serve {

namespace {
PrototypeStore build_store(const std::shared_ptr<core::ZscModel>& model,
                           const tensor::Tensor& class_attributes,
                           std::size_t binary_expansion) {
  if (!model) throw std::invalid_argument("ModelSnapshot: null model");
  if (class_attributes.dim() != 2)
    throw std::invalid_argument("ModelSnapshot: class_attributes must be [C, alpha]");
  tensor::Tensor phi = model->attribute_encoder().encode(class_attributes, /*train=*/false);
  return PrototypeStore(phi, model->class_kernel().scale(), binary_expansion);
}
}  // namespace

ModelSnapshot::ModelSnapshot(std::shared_ptr<core::ZscModel> model,
                             const tensor::Tensor& class_attributes,
                             std::size_t binary_expansion)
    : model_(std::move(model)),
      store_(build_store(model_, class_attributes, binary_expansion)) {}

tensor::Tensor ModelSnapshot::embed(const tensor::Tensor& images) const {
  return model_->image_encoder().forward(images, /*train=*/false);
}

}  // namespace hdczsc::serve
