#include "serve/snapshot.hpp"

#include <stdexcept>

namespace hdczsc::serve {

namespace {
PrototypeStore build_store(const std::shared_ptr<core::ZscModel>& model,
                           const tensor::Tensor& class_attributes,
                           std::size_t binary_expansion) {
  if (!model) throw std::invalid_argument("ModelSnapshot: null model");
  if (class_attributes.dim() != 2)
    throw std::invalid_argument("ModelSnapshot: class_attributes must be [C, alpha]");
  tensor::Tensor phi = model->attribute_encoder().encode(class_attributes, /*train=*/false);
  return PrototypeStore(phi, model->class_kernel().scale(), binary_expansion);
}
}  // namespace

ModelSnapshot::ModelSnapshot(std::shared_ptr<core::ZscModel> model,
                             const tensor::Tensor& class_attributes,
                             std::size_t binary_expansion, std::size_t preferred_shards)
    : model_(std::move(model)),
      class_attributes_(class_attributes),
      store_(build_store(model_, class_attributes, binary_expansion)),
      preferred_shards_(preferred_shards == 0 ? 1 : preferred_shards) {}

ModelSnapshot::ModelSnapshot(std::shared_ptr<core::ZscModel> model,
                             tensor::Tensor class_attributes, PrototypeStore store,
                             std::size_t preferred_shards)
    : model_(std::move(model)),
      class_attributes_(std::move(class_attributes)),
      store_(std::move(store)),
      preferred_shards_(preferred_shards == 0 ? 1 : preferred_shards) {
  if (!model_) throw std::invalid_argument("ModelSnapshot: null model");
  if (model_->dim() != store_.dim())
    throw std::invalid_argument("ModelSnapshot: model dim " + std::to_string(model_->dim()) +
                                " != prototype store dim " + std::to_string(store_.dim()));
}

tensor::Tensor ModelSnapshot::embed(const tensor::Tensor& images) const {
  return model_->image_encoder().forward(images, /*train=*/false);
}

}  // namespace hdczsc::serve
