// Frozen class-prototype store for inference serving — now a *versioned*
// copy-on-write value that can grow while requests are in flight.
//
// At snapshot time the class prototype matrix ϕ(A) [C, d] is computed once
// and stored in two forms:
//  * float: L2-normalized rows, so scoring is a single [B,d]x[C,d]ᵀ GEMM
//    (the cosine numerator; the denominator is baked into the rows).
//  * binary: sign-bit-packed rows (64 components/word, bit 1 ↔ negative,
//    matching BipolarHV::to_binary), so scoring is XOR + popcount Hamming
//    similarity 1 - 2h/D — the paper's stationary binary-ops edge form.
//
// `expansion` controls the binary fidelity/latency trade-off:
//  * 1 (default): bits are the signs of the raw ϕ(A) components (D = d).
//    Cheapest possible query — d sign tests + C·d/64 XOR+popcount words —
//    but at CPU-scale d the 1-bit quantization is lossy between highly
//    correlated prototypes.
//  * k > 1: sign-LSH re-expansion into hyperdimensional binary space, the
//    regime the paper's accelerators operate in. Bits are signs of a fixed
//    Rademacher projection R [D=k·d, d] applied to prototypes (at build
//    time) and queries (at score time); E[hamming/D] = θ/π estimates the
//    *angle*, so Hamming ranking converges to the exact cosine ranking as
//    k grows (error ~ 1/(2·sqrt(D))).
//
// Both paths multiply by the model's learned temperature scale s = 1/K so
// their outputs are directly comparable to ZscModel::class_logits.
//
// -- copy-on-write slabs ------------------------------------------------------
//
// Zero-shot's whole point is that a new class is just one ϕ(a) row, so the
// store supports structural-sharing appends: both planes (the float rows
// and the packed binary words) live in *slabs* — allocations that may hold
// more rows than the store's visible prefix [0, n_classes). A store value
// is therefore (slab handles, visible row count): copying it is O(1) and
// shares the slabs.
//
// append_rows / append_parts return a *new* store value with n more rows.
// When the slab has spare capacity, the appender claims rows
// [n_classes, n_classes + n) with one CAS on the slab's shared commit
// counter and writes them in place — addresses no published store value
// can read (every reader's prefix ends at or before the claim start), so
// the write is race-free; the new value is made visible to other threads
// only through an owning shared_ptr publication (see serve::StoreVersion),
// whose release/acquire edge orders the row writes. When capacity is
// exhausted (or another appender won the CAS), the planes are reallocated
// with geometric headroom and the prefix is copied — the old value keeps
// its slabs, so existing readers are never invalidated.
//
// score_float / score_binary are the *flat* scans: one sweep over all C
// rows, materializing full [B, C] logits. For top-k retrieval over large
// label spaces, serve/sharded_store.hpp partitions these same rows into
// row-range shards and runs a scatter/gather scan that never materializes
// the logits matrix; the flat scans remain the reference (and the right
// call when the caller wants every logit, e.g. for calibration).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "hdc/hypervector.hpp"
#include "tensor/tensor.hpp"

namespace hdczsc::serve {

/// Calibrated stacking (Chao et al. 2016) resolved against one store: the
/// constant `penalty` is subtracted from every *seen*-class logit to
/// counter the seen-class bias in generalized zero-shot serving — the
/// serving-side form of Trainer::evaluate_gzsl. Built via
/// PrototypeStore::resolve_penalty, consumed by both flat scoring paths
/// and the sharded scatter/gather scan.
///
/// On the binary path the handicap is translated into the integer Hamming
/// domain whenever it is exactly representable there: a seen-class row is
/// scored as if its Hamming distance were h + `offset`, where
/// penalty = scale · 2·offset/D. That keeps the sharded store's packed
/// (h << 32) | label heap selection and cross-shard cutoff hints exact
/// with respect to the penalized float scores — both flat and sharded
/// paths then evaluate the identical expression
/// scale·(1 − 2·(h + offset)/D). When no exact integer offset exists
/// (`integer_exact` false: fractional offset, non-positive penalty or
/// scale, or h + offset would leave the float-exact range < 2²⁴), both
/// paths fall back to the float form scale·(1 − 2h/D) − penalty and the
/// sharded scan selects in the float domain.
struct SeenPenalty {
  float penalty = 0.0f;  ///< p, subtracted from every seen-class logit
  /// Per-class float handicap: penalty for seen rows, 0 for unseen ([C]).
  std::vector<float> row_penalty;
  /// Per-class Hamming-domain handicap: `offset` for seen rows, 0 for
  /// unseen ([C]); meaningful only when integer_exact.
  std::vector<std::uint32_t> row_offset;
  std::uint32_t offset = 0;    ///< Δ = p·D/(2s) when integer_exact
  bool integer_exact = false;  ///< binary path may select on h + offset

  bool active() const { return penalty != 0.0f; }
};

class PrototypeStore {
 public:
  /// `prototypes` are the raw ϕ(A) rows [C, d]; `scale` the similarity
  /// temperature s applied to both scoring paths. `expansion` k sets the
  /// binary code width D = k·d (see file comment); `lsh_seed` fixes the
  /// projection so snapshots are reproducible.
  PrototypeStore(const tensor::Tensor& prototypes, float scale, std::size_t expansion = 1,
                 std::uint64_t lsh_seed = 0x5EEDULL);

  /// Reconstitute a store from serialized parts (snapshot_io load path): the
  /// already-normalized float rows and the already-packed binary words are
  /// adopted verbatim — nothing is recomputed, so the round trip is
  /// bit-identical on both scoring paths. The LSH projection (expansion > 1)
  /// is regenerated deterministically from `lsh_seed`, exactly as the
  /// building constructor derived it. Throws std::invalid_argument when the
  /// parts disagree (packed size vs. [C, d] x expansion).
  static PrototypeStore from_parts(tensor::Tensor normalized_rows,
                                   std::vector<std::uint64_t> packed_words, float scale,
                                   std::size_t expansion, std::uint64_t lsh_seed);

  /// Copy-on-write append of raw ϕ(a) rows [n, d]: returns a new store value
  /// with n_classes() + n visible rows whose first n_classes() rows are
  /// *bitwise* this store's rows (structurally shared when slab capacity
  /// allows — see file comment). New rows are normalized and sign-packed
  /// exactly as the building constructor would have (signs of the raw
  /// components at expansion 1, signs of the shared LSH projection
  /// otherwise), so the appended store is bitwise-identical to one built
  /// cold from the concatenated prototype matrix. Thread-safe against
  /// concurrent readers of any published store value and against concurrent
  /// appenders (losers of the slab CAS reallocate).
  PrototypeStore append_rows(const tensor::Tensor& raw_rows) const;

  /// Append already-normalized rows + already-packed words verbatim (the
  /// delta-snapshot load path) — same slab semantics as append_rows, nothing
  /// recomputed, so a base + delta chain reconstitutes bit-identically.
  PrototypeStore append_parts(const tensor::Tensor& normalized_rows,
                              const std::vector<std::uint64_t>& packed_words) const;

  std::size_t n_classes() const { return n_classes_; }
  std::size_t dim() const { return dim_; }
  float scale() const { return scale_; }
  /// Binary code width D (== dim() when expansion == 1).
  std::size_t code_bits() const { return code_bits_; }
  std::size_t expansion() const { return expansion_; }
  std::size_t words_per_row() const { return words_per_row_; }
  std::uint64_t lsh_seed() const { return lsh_seed_; }
  /// Rows the slabs can hold before an append must reallocate.
  std::size_t capacity_rows() const { return capacity_rows_; }
  /// Whether two store values share the same underlying slabs (an appended
  /// value that fit in capacity does; a reallocated one does not).
  bool shares_planes_with(const PrototypeStore& o) const {
    return float_plane_.shares_storage(o.float_plane_) && packed_plane_ == o.packed_plane_;
  }

  /// Float cosine path: logits [B, C] = s · Ê P̂ᵀ from embeddings e [B, d].
  /// Bit-identical to SimilarityKernel::forward in eval mode. With a
  /// resolved `penalty`, row_penalty[c] is subtracted from column c —
  /// exactly how Trainer::evaluate_gzsl handicaps the seen columns.
  tensor::Tensor score_float(const tensor::Tensor& embeddings,
                             const SeenPenalty* penalty = nullptr) const;

  /// Binary Hamming path: encode each embedding row into a D-bit code
  /// (sign, optionally after the LSH projection), then
  /// logits [B, C] = s · (1 − 2·hamming/D) via the packed popcount kernel.
  /// With a resolved `penalty`: s · (1 − 2·(h + row_offset[c])/D) when the
  /// handicap is integer_exact in the Hamming domain, else the float form
  /// s · (1 − 2h/D) − row_penalty[c] (see SeenPenalty).
  tensor::Tensor score_binary(const tensor::Tensor& embeddings,
                              const SeenPenalty* penalty = nullptr) const;

  /// Resolve a calibrated-stacking handicap against this store (see
  /// SeenPenalty). `seen_mask` is one byte per class (non-zero = seen);
  /// empty means *all* classes are seen (the un-partitioned legacy space —
  /// a uniform handicap, harmless to the ranking). Throws
  /// std::invalid_argument when the mask length disagrees with n_classes().
  SeenPenalty resolve_penalty(float penalty,
                              const std::vector<std::uint8_t>& seen_mask) const;

  /// Encode one embedding row [d] into its D-bit binary code.
  hdc::BinaryHV encode_query(const float* row) const;

  /// L2-normalized float rows, row-major with leading dimension dim() —
  /// valid for the visible prefix [0, n_classes()). The slab may extend
  /// beyond the prefix; never index past n_classes().
  const float* float_rows() const { return float_plane_.data(); }
  /// Packed binary rows, `words_per_row()` words each, row-major — same
  /// visible-prefix contract as float_rows().
  const std::uint64_t* packed_data() const { return packed_plane_->data(); }
  /// Materialize the visible float rows as an owned [C, d] tensor
  /// (serialization/diagnostics — the scan paths use float_rows()).
  tensor::Tensor normalized_copy() const;
  /// Materialize the visible packed words (serialization/diagnostics).
  std::vector<std::uint64_t> packed_copy() const;
  /// Unpack row `i` (for diagnostics/tests).
  hdc::BinaryHV binary_prototype(std::size_t i) const;

  /// Storage of the float store (visible normalized rows, fp32).
  std::size_t float_bytes() const { return n_classes_ * dim_ * sizeof(float); }
  /// Storage of the binary store (visible packed words only).
  std::size_t binary_bytes() const {
    return n_classes_ * words_per_row_ * sizeof(std::uint64_t);
  }

 private:
  PrototypeStore() = default;  // used by from_parts / append_impl

  /// Shared-slab append core: claim rows via CAS when capacity allows,
  /// else reallocate with geometric headroom + prefix copy.
  PrototypeStore append_impl(const tensor::Tensor& normalized_rows,
                             const std::vector<std::uint64_t>& packed_words) const;

  std::size_t n_classes_ = 0;  // visible prefix of the slabs
  std::size_t dim_ = 0;
  std::size_t code_bits_ = 0;
  std::size_t expansion_ = 1;
  std::size_t words_per_row_ = 0;
  std::uint64_t lsh_seed_ = 0;
  float scale_ = 1.0f;
  std::size_t capacity_rows_ = 0;  // rows the slabs can hold
  tensor::Tensor float_plane_;     // [capacity, d] slab; rows [0, C) visible
  tensor::Tensor projection_;      // [D, d] Rademacher (empty when expansion == 1)
  /// Packed slab [capacity * words_per_row]; shared across appended values.
  std::shared_ptr<std::vector<std::uint64_t>> packed_plane_;
  /// Rows claimed in the shared slabs (>= any sharing value's n_classes_);
  /// appenders CAS n_classes_ -> n_classes_ + n to claim the tail in place.
  std::shared_ptr<std::atomic<std::size_t>> committed_;

  void init_planes(std::size_t rows);
  void pack_rows_into(const tensor::Tensor& rows, std::size_t first_row, std::size_t n_rows);
};

}  // namespace hdczsc::serve
