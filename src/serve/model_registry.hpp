// Multi-model serving host: one process serving several frozen snapshots
// (per-split or per-d variants), each behind its own DynamicBatcher, worker
// pool and ServingStats, routed by a model key on the request.
//
// Concurrency contract (the Triton-style model-repository pattern):
//  * The registry map is guarded by a shared_mutex, but the score path only
//    ever takes a *shared* lock long enough to copy the model's
//    shared_ptr<ServerRuntime> — embedding and scoring run entirely outside
//    any registry lock, so serving one model never blocks on another (or on
//    a concurrent load).
//  * load()/unload() build/start (resp. drain/join) the runtime *outside*
//    the lock and only swap the map entry under the exclusive lock. Requests
//    already routed to a replaced/unloaded runtime drain to completion —
//    their futures all resolve; requests racing the swap may come back
//    with InferStatus::kShutdown, exactly as a stopping single-model
//    server would report them.
//  * load_file() gives the strong guarantee: a corrupt or truncated
//    .hdcsnap throws before the registry is touched — a half-loaded model
//    is never registered.
#pragma once

#include <map>
#include <optional>
#include <shared_mutex>

#include "serve/server.hpp"
#include "serve/snapshot_io.hpp"

namespace hdczsc::serve {

/// Thrown when a request names a key with no registered model.
class ModelNotFound : public std::runtime_error {
 public:
  explicit ModelNotFound(const std::string& key)
      : std::runtime_error("serve: no model registered under key '" + key + "'") {}
};

class ModelRegistry {
 public:
  /// `default_cfg` is applied to every load() that does not pass its own
  /// per-model ServerConfig.
  explicit ModelRegistry(ServerConfig default_cfg = {});
  ~ModelRegistry();

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Hot-register `snapshot` under `key` (replacing any previous model with
  /// that key): builds an engine + runtime, starts its workers, then swaps
  /// it into the map. A replaced runtime drains its queue and joins after
  /// the swap, outside the registry lock. Keys are stable endpoint names —
  /// 1..64 chars of [A-Za-z0-9._-] (is_valid_model_key), the charset the
  /// wire protocol and the obs metric labels carry verbatim — anything else
  /// throws std::invalid_argument.
  void load(const std::string& key, std::shared_ptr<const ModelSnapshot> snapshot,
            ScoringMode mode = ScoringMode::kFloatCosine,
            std::optional<ServerConfig> cfg = std::nullopt);

  /// Deserialize a serving artifact and register (or evolve) `key`:
  ///  * a full .hdcsnap loads as before — on any read error the exception
  ///    propagates and the registry is untouched;
  ///  * a .hdcdelta ("HDCD" magic) is applied *live* to the model already
  ///    registered under `key` (ModelNotFound when there is none; `mode` /
  ///    `cfg` are ignored — the runtime keeps its configuration). The
  ///    strong guarantee holds end to end: a corrupt, truncated or
  ///    mismatched delta throws before anything is published, and the
  ///    previously served version keeps answering — even for readers
  ///    concurrently mid-batch.
  void load_file(const std::string& key, const std::string& path,
                 ScoringMode mode = ScoringMode::kFloatCosine,
                 std::optional<ServerConfig> cfg = std::nullopt);

  /// Append classes to a served model online: encodes ϕ(a) for the
  /// attribute rows [n, α] with the model's frozen attribute encoder and
  /// publishes the next store version atomically — in-flight batches keep
  /// the version they pinned, every later batch sees the grown label
  /// space. `seen_flags` (optional, one byte per row, non-zero = seen)
  /// defaults to all-unseen. Returns the published version counter (also
  /// exported as serve_store_version{model=key}; the row count feeds
  /// serve_classes_appended_total). Throws ModelNotFound / shape errors
  /// with nothing published.
  std::uint64_t append_classes(const std::string& key, const tensor::Tensor& attributes,
                               const std::vector<std::uint8_t>& seen_flags = {});

  /// Remove the model and drain its queue (every accepted request still
  /// completes). Returns false when the key was not registered.
  bool unload(const std::string& key);

  /// Route one request to the model named by req.model_key. Never throws
  /// for per-request conditions: an invalid or unregistered key resolves to
  /// InferStatus::kBadModel, everything else follows ServerRuntime::submit's
  /// status contract. This is the network front-end's dispatch point.
  std::future<InferResult> submit(InferRequest req);
  /// Callback form: `done` runs exactly once (synchronously for routing /
  /// validation / admission failures, from a worker thread otherwise).
  void submit(InferRequest req, InferDone done);

  bool has(const std::string& key) const;
  std::size_t size() const;
  std::vector<std::string> keys() const;

  /// Per-model telemetry. Throws ModelNotFound for an unknown key.
  ServingStats::Summary stats(const std::string& key) const;
  /// Per-stage latency breakdown (queue-wait/collect/embed/score/reply +
  /// total) from the model's request tracer. Throws ModelNotFound.
  std::vector<obs::Tracer::StageStat> stage_stats(const std::string& key) const;
  /// The model's slowest traced requests, total_ms descending (postmortem
  /// ring, obs/trace.hpp). Throws ModelNotFound.
  std::vector<obs::TraceSpan> slow_traces(const std::string& key) const;
  /// Per-shard scan telemetry of the model's sharded prototype store
  /// (one entry per shard, S = 1 for flat stores). Throws ModelNotFound.
  std::vector<ShardedPrototypeStore::ShardInfo> shard_stats(const std::string& key) const;
  /// Probe/prune/rerank telemetry of the model's IVF index — nullopt when
  /// the model serves exact retrieval (no index). Throws ModelNotFound.
  std::optional<IvfIndex::ProbeStats> ann_stats(const std::string& key) const;
  /// Shared handle (not a reference): the engine may outlive a concurrent
  /// unload/replace of the key, so the caller keeps it alive.
  std::shared_ptr<const InferenceEngine> engine(const std::string& key) const;

  /// One row per model: key, scoring mode, retrieval tier, store version,
  /// classes (seen+unseen for partitioned versions), shards, calibrated-stacking
  /// penalty, completed/rejected, req/s, mean queue-wait, p50/p99/p999, and — for
  /// GZSL models — the seen/unseen prediction counters with their harmonic domain
  /// balance. Version, class counts and penalty are read off each model's
  /// *current* store version, so the table tracks live appends.
  util::Table to_table(const std::string& title = "model registry") const;

  /// Stop every runtime (drains all queues). Further requests are rejected;
  /// also run by the destructor.
  void stop_all();

 private:
  std::shared_ptr<ServerRuntime> find(const std::string& key) const;

  ServerConfig default_cfg_;
  mutable std::shared_mutex mu_;
  std::map<std::string, std::shared_ptr<ServerRuntime>> models_;
};

}  // namespace hdczsc::serve
