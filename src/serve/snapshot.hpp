// Frozen inference artifact: a trained ZscModel snapshotted against a fixed
// class-attribute matrix A.
//
// Snapshotting performs, once:
//  * ϕ(A) — the attribute-encoder forward over all C classes (the per-call
//    cost that dominates naive `class_logits` serving),
//  * the PrototypeStore build (normalized float rows + bit-packed binary
//    rows),
// and freezes the similarity temperature. After construction the snapshot
// only ever runs eval-mode forwards, which are read-only across the whole
// layer stack — so one snapshot can be shared by any number of worker
// threads without locking.
#pragma once

#include <memory>

#include "core/zsc_model.hpp"
#include "nn/quant.hpp"
#include "serve/prototype_store.hpp"

namespace hdczsc::serve {

class IvfIndex;  // serve/ann_store.hpp

class ModelSnapshot {
 public:
  /// `class_attributes` is A [C, α] in serving-label order; row c of the
  /// prototype store scores class c. `binary_expansion` is forwarded to the
  /// PrototypeStore (1 = direct d-bit sign codes; k > 1 = k·d-bit sign-LSH
  /// codes with higher cosine fidelity). `preferred_shards` records the
  /// shard layout the artifact was sized for (see sharded_store.hpp); it is
  /// a serving hint, not a property of the scores — engines may override it.
  /// `seen_mask` is the GZSL label-space partition: one byte per class,
  /// non-zero = *seen* (a training class, eligible for the calibrated-
  /// stacking handicap); empty = no partition, every class counts as seen
  /// (the plain single-space artifact — exactly how pre-v3 .hdcsnap files
  /// load).
  ModelSnapshot(std::shared_ptr<core::ZscModel> model,
                const tensor::Tensor& class_attributes, std::size_t binary_expansion = 1,
                std::size_t preferred_shards = 1, std::vector<std::uint8_t> seen_mask = {});

  /// Reconstituting constructor (snapshot_io load path): adopt an
  /// already-built PrototypeStore instead of re-encoding ϕ(A) — the store
  /// carries the exact serialized rows, so a loaded snapshot scores
  /// bit-identically to the one that was saved.
  ModelSnapshot(std::shared_ptr<core::ZscModel> model, tensor::Tensor class_attributes,
                PrototypeStore store, std::size_t preferred_shards = 1,
                std::vector<std::uint8_t> seen_mask = {});

  std::size_t n_classes() const { return store_->n_classes(); }
  std::size_t dim() const { return store_->dim(); }
  float scale() const { return store_->scale(); }
  /// Shard count the artifact recommends for its label space (≥ 1; old
  /// version-1 .hdcsnap files carry no record and load as 1 = flat).
  std::size_t preferred_shards() const { return preferred_shards_; }

  /// True when the artifact carries a genuine seen/unseen partition (a
  /// non-empty mask with at least one unseen class). Without one the whole
  /// label space counts as seen and a seen-class handicap is a uniform —
  /// ranking-neutral — shift.
  bool has_partition() const { return !seen_mask_.empty(); }
  /// Seen-class count (== n_classes() when there is no partition).
  std::size_t n_seen() const { return has_partition() ? n_seen_ : n_classes(); }
  std::size_t n_unseen() const { return n_classes() - n_seen(); }
  /// Whether serving label `c` is a seen (training) class.
  bool is_seen(std::size_t c) const { return seen_mask_.empty() || seen_mask_[c] != 0; }
  /// Per-class partition mask (empty = no partition = all seen).
  const std::vector<std::uint8_t>& seen_mask() const { return seen_mask_; }

  /// Eval-mode image-encoder forward: embeddings [B, d] from images
  /// [B, 3, S, S]. Thread-safe (no train-mode caching is touched).
  tensor::Tensor embed(const tensor::Tensor& images) const;

  /// INT8 embed path — same contract as embed(), computed through the
  /// attached quantized backbone. Throws std::logic_error when the snapshot
  /// carries no quantized artifact (check has_quantized(), or request
  /// Precision::kInt8 through the engine which validates at construction).
  tensor::Tensor embed_int8(const tensor::Tensor& images) const;

  /// True when an INT8 artifact (weights + calibration) rides along — set
  /// by quantize(), attach_quantized(), or loading a v4 .hdcsnap that
  /// carries the quantization records.
  bool has_quantized() const { return quant_ != nullptr; }
  const std::shared_ptr<const nn::QuantizedEmbed>& quantized() const { return quant_; }

  /// Post-training-quantize this snapshot's embed path against a
  /// calibration set (images [N, 3, S, S]) and attach the result; returns
  /// the artifact. Idempotent re-runs replace the previous artifact.
  std::shared_ptr<const nn::QuantizedEmbed> quantize(
      const tensor::Tensor& calibration_images,
      nn::CalibMethod method = nn::CalibMethod::kMinMax, std::size_t batch = 32);

  /// Adopt an already-built quantized embed (snapshot_io v4 load path).
  void attach_quantized(std::shared_ptr<const nn::QuantizedEmbed> quant) {
    quant_ = std::move(quant);
  }

  /// True when an IVF coarse index rides along — built by build_ivf(),
  /// attached from a v5 .hdcsnap's centroid records, or lazily by an engine
  /// configured for approximate retrieval.
  bool has_ivf() const { return ivf_ != nullptr; }
  const std::shared_ptr<const IvfIndex>& ivf() const { return ivf_; }

  /// Cluster this snapshot's prototype store into an IVF coarse index and
  /// attach it (n_centroids == 0 → ~√C; see IvfIndex). Deterministic — the
  /// same store always yields the same index. Replaces any previous index.
  /// The index borrows this snapshot's store, so it must not outlive the
  /// snapshot (the serving stack holds both through one shared_ptr).
  std::shared_ptr<const IvfIndex> build_ivf(std::size_t n_centroids = 0);

  /// Adopt a reconstituted index (snapshot_io v5 load path).
  void attach_ivf(std::shared_ptr<const IvfIndex> ivf) { ivf_ = std::move(ivf); }

  const PrototypeStore& prototypes() const { return *store_; }
  /// Owning handle to the store — serve::StoreVersion shares it so store
  /// views (sharded/IVF) stay valid however long a pinned version lives.
  const std::shared_ptr<const PrototypeStore>& store_ptr() const { return store_; }
  const core::ZscModel& model() const { return *model_; }
  /// The frozen class-attribute rows A [C, α] the store was built against.
  const tensor::Tensor& class_attributes() const { return class_attributes_; }

  /// Encode class-attribute rows [n, α] into raw ϕ(a) prototype rows
  /// [n, d] with this snapshot's frozen attribute encoder (eval mode) —
  /// the online class-append path. α must match class_attributes().
  tensor::Tensor encode_attributes(const tensor::Tensor& attributes) const;

  /// Store-version counter persisted in v6 .hdcsnap files: 0 for a fresh
  /// build, advanced by delta compaction so evolved artifacts keep their
  /// lineage. Engines seed their live version counter from it.
  std::uint64_t store_version() const { return store_version_; }
  void set_store_version(std::uint64_t v) { store_version_ = v; }
  /// Auto-calibrated GZSL seen-penalty persisted alongside (0 = none) —
  /// engines without an explicit penalty or a validation split serve it.
  float calibrated_penalty() const { return calibrated_penalty_; }
  void set_calibrated_penalty(float p) { calibrated_penalty_ = p; }

  /// Shared handle to the underlying model — snapshot_io needs the mutable
  /// parameter/buffer lists for serialization; serving code should use the
  /// const accessors above.
  const std::shared_ptr<core::ZscModel>& model_ptr() const { return model_; }

 private:
  std::shared_ptr<core::ZscModel> model_;
  tensor::Tensor class_attributes_;
  std::shared_ptr<const PrototypeStore> store_;
  std::size_t preferred_shards_ = 1;
  std::uint64_t store_version_ = 0;  // v6 lineage counter
  float calibrated_penalty_ = 0.0f;  // v6 persisted auto-calibration
  std::vector<std::uint8_t> seen_mask_;  // [C] (1 = seen) or empty = all seen
  std::size_t n_seen_ = 0;               // popcount of seen_mask_ (cached)
  std::shared_ptr<const nn::QuantizedEmbed> quant_;  // optional INT8 artifact
  std::shared_ptr<const IvfIndex> ivf_;              // optional IVF coarse index

  void adopt_seen_mask(std::vector<std::uint8_t> seen_mask);
};

/// Build a joint seen+unseen GZSL snapshot from the two label spaces'
/// attribute rows: serving labels [0, C_seen) are the seen (training)
/// classes, [C_seen, C_seen + C_unseen) the unseen ones — the label order
/// of Trainer::evaluate_gzsl — with the partition mask set accordingly.
std::shared_ptr<ModelSnapshot> make_gzsl_snapshot(std::shared_ptr<core::ZscModel> model,
                                                  const tensor::Tensor& seen_attributes,
                                                  const tensor::Tensor& unseen_attributes,
                                                  std::size_t binary_expansion = 1,
                                                  std::size_t preferred_shards = 1);

}  // namespace hdczsc::serve
