// Frozen inference artifact: a trained ZscModel snapshotted against a fixed
// class-attribute matrix A.
//
// Snapshotting performs, once:
//  * ϕ(A) — the attribute-encoder forward over all C classes (the per-call
//    cost that dominates naive `class_logits` serving),
//  * the PrototypeStore build (normalized float rows + bit-packed binary
//    rows),
// and freezes the similarity temperature. After construction the snapshot
// only ever runs eval-mode forwards, which are read-only across the whole
// layer stack — so one snapshot can be shared by any number of worker
// threads without locking.
#pragma once

#include <memory>

#include "core/zsc_model.hpp"
#include "serve/prototype_store.hpp"

namespace hdczsc::serve {

class ModelSnapshot {
 public:
  /// `class_attributes` is A [C, α] in serving-label order; row c of the
  /// prototype store scores class c. `binary_expansion` is forwarded to the
  /// PrototypeStore (1 = direct d-bit sign codes; k > 1 = k·d-bit sign-LSH
  /// codes with higher cosine fidelity). `preferred_shards` records the
  /// shard layout the artifact was sized for (see sharded_store.hpp); it is
  /// a serving hint, not a property of the scores — engines may override it.
  ModelSnapshot(std::shared_ptr<core::ZscModel> model,
                const tensor::Tensor& class_attributes, std::size_t binary_expansion = 1,
                std::size_t preferred_shards = 1);

  /// Reconstituting constructor (snapshot_io load path): adopt an
  /// already-built PrototypeStore instead of re-encoding ϕ(A) — the store
  /// carries the exact serialized rows, so a loaded snapshot scores
  /// bit-identically to the one that was saved.
  ModelSnapshot(std::shared_ptr<core::ZscModel> model, tensor::Tensor class_attributes,
                PrototypeStore store, std::size_t preferred_shards = 1);

  std::size_t n_classes() const { return store_.n_classes(); }
  std::size_t dim() const { return store_.dim(); }
  float scale() const { return store_.scale(); }
  /// Shard count the artifact recommends for its label space (≥ 1; old
  /// version-1 .hdcsnap files carry no record and load as 1 = flat).
  std::size_t preferred_shards() const { return preferred_shards_; }

  /// Eval-mode image-encoder forward: embeddings [B, d] from images
  /// [B, 3, S, S]. Thread-safe (no train-mode caching is touched).
  tensor::Tensor embed(const tensor::Tensor& images) const;

  const PrototypeStore& prototypes() const { return store_; }
  const core::ZscModel& model() const { return *model_; }
  /// The frozen class-attribute rows A [C, α] the store was built against.
  const tensor::Tensor& class_attributes() const { return class_attributes_; }

  /// Shared handle to the underlying model — snapshot_io needs the mutable
  /// parameter/buffer lists for serialization; serving code should use the
  /// const accessors above.
  const std::shared_ptr<core::ZscModel>& model_ptr() const { return model_; }

 private:
  std::shared_ptr<core::ZscModel> model_;
  tensor::Tensor class_attributes_;
  PrototypeStore store_;
  std::size_t preferred_shards_ = 1;
};

}  // namespace hdczsc::serve
