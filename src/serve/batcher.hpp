// Dynamic request batcher (the Triton-style coalescing queue).
//
// Producer threads submit InferRequests paired with completion callbacks;
// consumer (worker) threads call collect(), which blocks until at least one
// request is queued and then waits — at most until the *oldest* request has
// aged `max_delay_ms` — for up to `max_batch` requests to coalesce. Under
// load batches fill instantly; when idle a lone request pays at most the
// delay bound. A bounded queue provides admission control: submissions
// beyond `max_queue_depth` are rejected up front instead of building an
// unbounded backlog — the caller maps a rejection to kOverloaded/kShutdown
// (the batcher never invokes `done` itself; the worker draining collect()
// does, exactly once per accepted request).
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "serve/infer.hpp"
#include "tensor/tensor.hpp"

namespace hdczsc::serve {

struct BatchPolicy {
  std::size_t max_batch = 8;          ///< coalescing cap per forward
  double max_delay_ms = 2.0;          ///< max age of the oldest queued request
  std::size_t max_queue_depth = 256;  ///< admission-control bound
};

class DynamicBatcher {
 public:
  using Clock = std::chrono::steady_clock;

  struct Item {
    InferRequest req;  ///< input [3,S,S] / [1,3,S,S] image or [d] / [1,d] embedding
    InferDone done;    ///< invoked exactly once by the draining worker
    Clock::time_point enqueued;
  };

  /// Admission-control outcome of one submit.
  enum class Admit { kAccepted, kQueueFull, kShutdown };

  explicit DynamicBatcher(BatchPolicy policy);

  /// Enqueue one request. `req` and `done` are consumed only on
  /// kAccepted — on rejection both are left intact so the caller can
  /// resolve `done` with the matching status itself.
  Admit submit(InferRequest& req, InferDone& done);

  /// Block until requests are available (or shutdown), then move up to
  /// max_batch of them into `out` (cleared first), honoring the delay
  /// policy. Returns false iff shut down with an empty queue.
  ///
  /// Latency contract: the coalescing wait is armed off the enqueue time
  /// of the *oldest* queued request and re-derived on every wake, so no
  /// request is ever held past its own `enqueued + max_delay_ms` by
  /// spurious wakeups or by requests that arrive mid-window (regression:
  /// tests/test_serve.cpp DynamicBatcher latency-bound tests).
  bool collect(std::vector<Item>& out);

  /// Wake all waiters; subsequent submits are rejected. collect() keeps
  /// returning true until the queue drains.
  void shutdown();

  std::size_t depth() const;
  const BatchPolicy& policy() const { return policy_; }

 private:
  BatchPolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Item> queue_;
  bool shutdown_ = false;
};

}  // namespace hdczsc::serve
