#include "serve/infer.hpp"

#include <stdexcept>

namespace hdczsc::serve {

const char* infer_status_name(InferStatus s) {
  switch (s) {
    case InferStatus::kOk: return "ok";
    case InferStatus::kBadModel: return "bad-model";
    case InferStatus::kBadShape: return "bad-shape";
    case InferStatus::kBadScoring: return "bad-scoring-mode";
    case InferStatus::kBadRequest: return "bad-request";
    case InferStatus::kOverloaded: return "overloaded";
    case InferStatus::kShutdown: return "shutdown";
    case InferStatus::kInternal: return "internal-error";
    case InferStatus::kBadFrame: return "bad-frame";
    case InferStatus::kBadProtocol: return "bad-protocol";
    case InferStatus::kTransport: return "transport-error";
  }
  return "unknown";
}

const TopK& InferResult::top() const {
  if (topk.empty())
    throw std::logic_error(std::string("InferResult::top: no hits (status ") +
                           infer_status_name(status) + ")");
  return topk.front();
}

bool is_valid_model_key(const std::string& key) {
  if (key.empty() || key.size() > kMaxModelKeyBytes) return false;
  for (const char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

InferResult make_error_result(std::uint64_t request_id, InferStatus status,
                              std::string message) {
  InferResult r;
  r.request_id = request_id;
  r.status = status;
  r.message = std::move(message);
  return r;
}

std::future<InferResult> make_ready_result(InferResult r) {
  std::promise<InferResult> p;
  std::future<InferResult> f = p.get_future();
  p.set_value(std::move(r));
  return f;
}

}  // namespace hdczsc::serve
