// Sharded prototype retrieval: scatter/gather top-k over row-range shards.
//
// A PrototypeStore keeps the whole label space in one flat packed matrix;
// scoring it returns full [B, C] logits and retrieval argsorts C scores per
// query. That is the right shape for CUB-scale label spaces, but it stops
// scaling long before the "very large label space" serving regime: the
// logits materialization alone is O(B·C) writes, and the argsort touches
// every class again through an index indirection.
//
// ShardedPrototypeStore partitions the store's rows into S contiguous
// row-range shards (balanced: C/S rows each, the first C%S shards one row
// longer) and retrieves top-k by scatter/gather:
//
//   scatter  each shard scans only its own rows — the packed-binary path
//            sweeps the shard's word range once for the whole query batch
//            (hdc::hamming_many_packed_multi: every prototype row is
//            loaded once per 4-query block), the float path runs one
//            cache-blocked GEMM per shard — and folds the scores into a
//            k-bounded candidate heap as they are produced. No full-width
//            logits row is ever materialized.
//   gather   the S candidate heaps (≤ S·k entries) are merged and the
//            global top-k is cut, ordered by (score desc, label asc).
//
// Shards fan out across util::parallel_for workers, so on multi-core
// serving hosts the scan parallelizes across shards; on one core the win
// is still large and architectural — the shard is the cache tile (its
// packed words stay L1/L2-resident across the query block) and the query
// block is the register tile (independent popcount chains instead of one
// latency-bound chain), plus k-bounded selection in place of a C-wide
// argsort over a materialized [B, C] tensor. Results are exact, not
// approximate: the gathered top-k equals the flat store's full argsort
// under the same (score desc, label asc) order — asserted for both scoring
// paths in tests/test_sharded_store.cpp.
//
// The shards are row *ranges* over the existing store, not copies: shard s
// scores class rows [begin(s), end(s)) of the same packed words and the
// same normalized float rows the flat store scans, so S is a pure serving
// knob — any S yields the same ranking, and an S=1 store behaves exactly
// like the flat path. Per-shard scan counters (scans, rows swept, rows
// pruned by the heap-cutoff block-skip) are kept for telemetry and
// surfaced through ServerRuntime/ModelRegistry; scan wall time feeds the
// profiling-gated serve_shard_scan_ms histogram (obs/metrics.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "serve/prototype_store.hpp"
#include "tensor/tensor.hpp"

namespace hdczsc::serve {

/// One retrieval hit: a prototype-store row and its logit under the
/// requested scoring path (same value the flat score_* path produces).
struct TopK {
  std::size_t label = 0;
  float score = 0.0f;
};

class ShardedPrototypeStore {
 public:
  /// Shard `base` into `n_shards` balanced row ranges. `n_shards` is
  /// clamped to [1, C] — more shards than classes degenerates to one row
  /// per shard. `base` must outlive this view (ModelSnapshot owns it for
  /// the serving stack).
  ShardedPrototypeStore(const PrototypeStore& base, std::size_t n_shards);

  std::size_t n_shards() const { return shards_.size(); }
  std::size_t n_classes() const { return base_->n_classes(); }
  const PrototypeStore& base() const { return *base_; }

  /// Row range [begin, end) of shard `s`.
  std::size_t shard_begin(std::size_t s) const { return shards_[s].begin; }
  std::size_t shard_end(std::size_t s) const { return shards_[s].end; }

  /// Scatter/gather top-k on the float-cosine path from embeddings [B, d]:
  /// per shard one GEMM over its row range, k-bounded local selection,
  /// global merge. result[b] holds min(k, C) entries ordered by
  /// (score desc, label asc). k == 0 yields empty results. A resolved
  /// `penalty` (GZSL calibrated stacking, see SeenPenalty) handicaps the
  /// seen rows inside the selection loop — the ranking and scores equal
  /// the flat score_float(emb, penalty) full argsort.
  std::vector<std::vector<TopK>> topk_float(const tensor::Tensor& embeddings, std::size_t k,
                                            const SeenPenalty* penalty = nullptr) const;

  /// Scatter/gather top-k on the binary-Hamming path: per shard one
  /// hamming_many_packed sweep over its word range, selection directly in
  /// the integer Hamming domain, scores converted only for the ≤ S·k
  /// gathered candidates. Same ordering contract as topk_float. With a
  /// `penalty` whose handicap is integer_exact, seen rows select on
  /// h + offset — still pure u64-key compares, still exact vs. the flat
  /// score_binary(emb, penalty) argsort; otherwise the scan falls back to
  /// float-domain selection with the same subtract-form scores.
  std::vector<std::vector<TopK>> topk_binary(const tensor::Tensor& embeddings, std::size_t k,
                                             const SeenPenalty* penalty = nullptr) const;

  /// Per-shard telemetry snapshot.
  struct ShardInfo {
    std::size_t begin = 0;          ///< first prototype row of the shard
    std::size_t rows = 0;           ///< shard height
    std::uint64_t scans = 0;        ///< (query, shard) scatter scans executed
    std::uint64_t rows_swept = 0;   ///< prototype rows swept in those scans
    std::uint64_t rows_pruned = 0;  ///< rows skipped wholesale by the
                                    ///< block-skip cutoff (subset of swept;
                                    ///< the heap-cutoff prune rate is
                                    ///< rows_pruned / rows_swept)
  };
  std::vector<ShardInfo> shard_stats() const;

 private:
  struct Shard {
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  /// Merge the flat (shard × query × k) candidate slots the scatter filled
  /// into per-query globally ordered top-k lists.
  std::vector<std::vector<TopK>> gather(std::size_t batch, std::size_t k,
                                        const std::vector<TopK>& cand,
                                        const std::vector<std::uint32_t>& cand_n) const;
  /// Telemetry (mutable: scoring is logically const). A few relaxed
  /// fetch_adds per (batch, shard) scatter scan.
  struct Counters {
    std::atomic<std::uint64_t> scans{0};
    std::atomic<std::uint64_t> rows_swept{0};
    std::atomic<std::uint64_t> rows_pruned{0};
  };

  const PrototypeStore* base_;
  std::vector<Shard> shards_;
  mutable std::unique_ptr<Counters[]> counters_;
};

}  // namespace hdczsc::serve
