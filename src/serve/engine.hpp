// Inference engine: stateless execution wrapper over a ModelSnapshot.
//
// classify_batch runs the eval-mode embed once for the whole batch — the
// CNN backbone does one whole-batch im2col + blocked GEMM per conv layer,
// so batching speeds up the embed itself, not just what follows — then
// scores against the frozen prototype store via either
//  * kFloatCosine   — s · cosine(e, ϕ(A)), bit-identical to
//                     ZscModel::class_logits in eval mode, or
//  * kBinaryHamming — sign-binarized query vs. bit-packed prototypes,
//                     word-level XOR + popcount (the edge/accelerator path).
//
// Retrieval comes in two shapes:
//  * logits()      — the full [B, C] logit matrix (flat store scan), and
//  * topk_batch()  — the top-k (label, score) hits per image via the
//    sharded scatter/gather scan (sharded_store.hpp). With n_shards == 1
//    the sharded store degenerates to the flat layout; either way the
//    ranking equals the flat path's full argsort. classify_batch is the
//    k = 1 case and routes through the sharded scan when n_shards > 1.
//
// GZSL serving: when the snapshot carries a seen/unseen partition, the
// `seen_penalty` knob applies calibrated stacking — the constant is
// subtracted from every seen-class logit on *both* scoring paths (as an
// exact integer Hamming-domain offset on the binary path where possible),
// consistently across logits / topk_batch / classify_batch.
//
// Approximate retrieval: `retrieval` selects the top-k tier (ann_store.hpp)
// — kExact scans every row (the default, results equal the flat argsort);
// kIvf probes `nprobe` coarse-quantizer lists and scans only those, in the
// engine's scoring mode; kCascade adds the binary-prefilter → float-rerank
// stage. The engine reuses the snapshot's persisted IVF index (v5
// .hdcsnap) or builds one deterministically at construction. logits() is
// always exact — the full [B, C] matrix has no approximate form.
// Thread-safe: all state is read-only after construction (the sharded
// store's and IVF index's telemetry counters are atomic).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "serve/ann_store.hpp"
#include "serve/sharded_store.hpp"
#include "serve/snapshot.hpp"

namespace hdczsc::serve {

enum class ScoringMode { kFloatCosine, kBinaryHamming };

std::string scoring_mode_name(ScoringMode mode);

/// Numeric precision of the backbone embed stage. kInt8 routes images
/// through the snapshot's attached quantized artifact (nn/quant.hpp) —
/// u8×s8→s32 GEMMs instead of fp32 — and requires a snapshot that carries
/// one (quantize() at build time, or a v4 .hdcsnap with quant records).
/// Scoring always runs float/binary exactly as before; only the embed
/// changes.
enum class Precision : unsigned char { kFloat32 = 0, kInt8 = 1 };

std::string precision_name(Precision p);
/// Parse "float32" / "int8" (the ServerConfig / CLI spellings); throws
/// std::invalid_argument on anything else.
Precision precision_from_name(const std::string& name);

/// One classified request.
struct Prediction {
  std::size_t label = 0;  ///< argmax class (prototype-store row)
  float score = 0.0f;     ///< winning logit
};

class InferenceEngine {
 public:
  /// `n_shards` splits the prototype store into that many row-range shards
  /// for the top-k retrieval path (clamped to [1, C]; 0 means "use the
  /// snapshot's preferred shard layout"). Sharding never changes results —
  /// only how the scan is scattered.
  ///
  /// `seen_penalty` is the GZSL calibrated-stacking knob (Chao et al.
  /// 2016, the serving-side form of Trainer::evaluate_gzsl): it is
  /// subtracted from every *seen*-class logit — per the snapshot's
  /// partition mask — on both scoring paths, in logits(), topk_batch()
  /// and classify_batch() alike. On the binary path the handicap runs as
  /// an exact integer Hamming-domain offset whenever one exists, so the
  /// sharded integer-key selection stays exact (see SeenPenalty). 0
  /// disables it; a snapshot without a partition treats every class as
  /// seen, making the handicap a uniform, ranking-neutral shift.
  /// `precision` selects the embed stage's numeric path; kInt8 throws
  /// std::invalid_argument at construction when the snapshot carries no
  /// quantized artifact (fail at load, not on the first request).
  ///
  /// `retrieval` picks the top-k tier. Anything but kExact adopts the
  /// snapshot's IVF index — or clusters one deterministically here when
  /// the snapshot carries none (pre-v5 artifacts). `nprobe` (0 = the
  /// index default, ~Cc/8) bounds the probed coarse lists; `rerank` is the
  /// cascade's candidate budget multiplier (rerank·k binary survivors get
  /// float-reranked; 0 = unbounded, every probed row).
  InferenceEngine(std::shared_ptr<const ModelSnapshot> snapshot,
                  ScoringMode mode = ScoringMode::kFloatCosine, std::size_t n_shards = 0,
                  float seen_penalty = 0.0f, Precision precision = Precision::kFloat32,
                  RetrievalMode retrieval = RetrievalMode::kExact, std::size_t nprobe = 0,
                  std::size_t rerank = 4);

  /// Wall time of one batch forward split at the embed/score boundary —
  /// the two stages the per-request tracer (obs/trace.hpp) reports
  /// separately so "slow request" resolves to backbone vs prototype scan.
  /// Embedding inputs report embed_ms == 0 (no backbone ran).
  struct BatchTimings {
    double embed_ms = 0.0;
    double score_ms = 0.0;
  };

  /// Full logits [B, C] via the flat store scan. `inputs` is either an
  /// image batch [B, 3, S, S] (embedded by the backbone) or a
  /// pre-computed embedding batch [B, d] (split inference: the backbone
  /// ran on the client/edge, only the prototype scan runs here).
  tensor::Tensor logits(const tensor::Tensor& inputs, BatchTimings* timings = nullptr) const;

  /// Top-k (label, score) hits per input, ordered by (score desc, label
  /// asc), via the sharded scatter/gather scan. Returns min(k, C) entries
  /// per input; k == 0 yields empty results. Accepts the same image /
  /// embedding input shapes as logits().
  std::vector<std::vector<TopK>> topk_batch(const tensor::Tensor& inputs, std::size_t k,
                                            BatchTimings* timings = nullptr) const;

  /// Argmax + winning score per input (images or embeddings, as above).
  /// `timings`, when non-null, receives the embed/score wall-time split;
  /// results are identical either way.
  std::vector<Prediction> classify_batch(const tensor::Tensor& inputs,
                                         BatchTimings* timings = nullptr) const;

  ScoringMode mode() const { return mode_; }
  Precision precision() const { return precision_; }
  RetrievalMode retrieval() const { return retrieval_; }
  /// Probe width for approximate retrieval (0 = the index default).
  std::size_t nprobe() const { return nprobe_; }
  /// Cascade rerank budget multiplier (0 = unbounded).
  std::size_t rerank() const { return rerank_; }
  /// The engine's IVF index — null iff retrieval() == kExact.
  const std::shared_ptr<const IvfIndex>& ivf() const { return ivf_; }
  std::size_t n_shards() const { return sharded_.n_shards(); }
  /// Calibrated-stacking handicap subtracted from seen-class logits
  /// (0 = plain single-space serving).
  float seen_penalty() const { return penalty_.penalty; }
  const ShardedPrototypeStore& sharded_store() const { return sharded_; }
  const ModelSnapshot& snapshot() const { return *snapshot_; }

 private:
  /// Rank-2 inputs [B, d] are pre-computed embeddings and pass through
  /// (width-checked against the store dim); everything else runs the
  /// eval-mode backbone. `embed_ms` receives the backbone wall time
  /// (0 for the passthrough).
  tensor::Tensor embed_inputs(const tensor::Tensor& inputs, double* embed_ms) const;

  /// Top-k over an already-embedded batch, routed by retrieval_ / mode_.
  std::vector<std::vector<TopK>> topk_embedded(const tensor::Tensor& emb, std::size_t k) const;

  std::shared_ptr<const ModelSnapshot> snapshot_;
  ScoringMode mode_;
  Precision precision_;
  ShardedPrototypeStore sharded_;
  SeenPenalty penalty_;  // resolved once against the snapshot's store/mask
  RetrievalMode retrieval_ = RetrievalMode::kExact;
  std::size_t nprobe_ = 0;
  std::size_t rerank_ = 4;
  std::shared_ptr<const IvfIndex> ivf_;  // set iff retrieval_ != kExact

  const SeenPenalty* penalty_ptr() const { return penalty_.active() ? &penalty_ : nullptr; }
};

}  // namespace hdczsc::serve
