// Inference engine: execution wrapper over a ModelSnapshot that serves an
// *evolving* label space through immutable store versions.
//
// classify_batch runs the eval-mode embed once for the whole batch — the
// CNN backbone does one whole-batch im2col + blocked GEMM per conv layer,
// so batching speeds up the embed itself, not just what follows — then
// scores against the pinned prototype store via either
//  * kFloatCosine   — s · cosine(e, ϕ(A)), bit-identical to
//                     ZscModel::class_logits in eval mode, or
//  * kBinaryHamming — sign-binarized query vs. bit-packed prototypes,
//                     word-level XOR + popcount (the edge/accelerator path).
//
// Retrieval comes in two shapes:
//  * logits()      — the full [B, C] logit matrix (flat store scan), and
//  * topk_batch()  — the top-k (label, score) hits per image via the
//    sharded scatter/gather scan (sharded_store.hpp). With n_shards == 1
//    the sharded store degenerates to the flat layout; either way the
//    ranking equals the flat path's full argsort. classify_batch is the
//    k = 1 case and routes through the sharded scan when n_shards > 1.
//
// GZSL serving: when the version carries a seen/unseen partition, the
// calibrated-stacking penalty is subtracted from every seen-class logit on
// *both* scoring paths (as an exact integer Hamming-domain offset on the
// binary path where possible), consistently across logits / topk_batch /
// classify_batch. The penalty source, in precedence order: a
// GzslCalibration validation split (auto-recalibrated on load and after
// every append), the explicit `seen_penalty` knob, the snapshot's
// persisted calibrated penalty (v6 .hdcsnap).
//
// Approximate retrieval: `retrieval` selects the top-k tier (ann_store.hpp)
// — kExact scans every row (the default, results equal the flat argsort);
// kIvf probes `nprobe` coarse-quantizer lists and scans only those, in the
// engine's scoring mode; kCascade adds the binary-prefilter → float-rerank
// stage. The engine reuses the snapshot's persisted IVF index (v5
// .hdcsnap) or builds one deterministically at construction. logits() is
// always exact — the full [B, C] matrix has no approximate form.
//
// -- live model evolution -----------------------------------------------------
//
// Everything a scoring path reads is bundled in an immutable StoreVersion
// (store_version.hpp) behind one shared_ptr. Every entrypoint pins
// *exactly one* version for its whole batch (pin() — a shared-lock
// pointer copy), so a batch scored while append_classes() publishes
// version k+1 is bit-identical to exact scoring over the version k it
// pinned: versions are never mutated, and the copy-on-write store slabs
// guarantee even structurally shared rows are bitwise stable.
//
// append_classes() encodes ϕ(a) for the new attribute rows with the
// snapshot's frozen attribute encoder, appends them to the store
// (structural sharing), extends the seen mask (new classes default
// unseen), re-derives the sharded view, extends the IVF assignment vector
// by nearest centroid (no re-clustering), recalibrates the GZSL penalty,
// extends the content checksum, and publishes the new version with one
// shared_ptr swap. append_delta() does the same from a persisted
// SnapshotDelta (snapshot_io.hpp), validating the delta's base
// row-count/version/checksum first — a mismatched or corrupt delta throws
// *before* anything is published (strong guarantee). Appends are
// logically-const (the registry shares engines as shared_ptr<const>);
// concurrent appends serialize on an internal mutex.
#pragma once

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "serve/ann_store.hpp"
#include "serve/sharded_store.hpp"
#include "serve/snapshot.hpp"
#include "serve/store_version.hpp"

namespace hdczsc::serve {

struct SnapshotDelta;  // serve/snapshot_io.hpp

enum class ScoringMode { kFloatCosine, kBinaryHamming };

std::string scoring_mode_name(ScoringMode mode);

/// Numeric precision of the backbone embed stage. kInt8 routes images
/// through the snapshot's attached quantized artifact (nn/quant.hpp) —
/// u8×s8→s32 GEMMs instead of fp32 — and requires a snapshot that carries
/// one (quantize() at build time, or a v4 .hdcsnap with quant records).
/// Scoring always runs float/binary exactly as before; only the embed
/// changes.
enum class Precision : unsigned char { kFloat32 = 0, kInt8 = 1 };

std::string precision_name(Precision p);
/// Parse "float32" / "int8" (the ServerConfig / CLI spellings); throws
/// std::invalid_argument on anything else.
Precision precision_from_name(const std::string& name);

/// One classified request.
struct Prediction {
  std::size_t label = 0;  ///< argmax class (prototype-store row)
  float score = 0.0f;     ///< winning logit
};

class InferenceEngine {
 public:
  /// `n_shards` splits the prototype store into that many row-range shards
  /// for the top-k retrieval path (clamped to [1, C]; 0 means "use the
  /// snapshot's preferred shard layout"). Sharding never changes results —
  /// only how the scan is scattered.
  ///
  /// `seen_penalty` is the GZSL calibrated-stacking knob (Chao et al.
  /// 2016, the serving-side form of Trainer::evaluate_gzsl): it is
  /// subtracted from every *seen*-class logit — per the version's
  /// partition mask — on both scoring paths, in logits(), topk_batch()
  /// and classify_batch() alike. On the binary path the handicap runs as
  /// an exact integer Hamming-domain offset whenever one exists, so the
  /// sharded integer-key selection stays exact (see SeenPenalty). 0
  /// defers to `calibration` (when given) or the snapshot's persisted
  /// calibrated penalty; a snapshot without a partition treats every class
  /// as seen, making the handicap a uniform, ranking-neutral shift.
  /// `precision` selects the embed stage's numeric path; kInt8 throws
  /// std::invalid_argument at construction when the snapshot carries no
  /// quantized artifact (fail at load, not on the first request).
  ///
  /// `retrieval` picks the top-k tier. Anything but kExact adopts the
  /// snapshot's IVF index — or clusters one deterministically here when
  /// the snapshot carries none (pre-v5 artifacts). `nprobe` (0 = the
  /// index default, ~Cc/8) bounds the probed coarse lists; `rerank` is the
  /// cascade's candidate budget multiplier (rerank·k binary survivors get
  /// float-reranked; 0 = unbounded, every probed row).
  ///
  /// `calibration` is the held-out GZSL validation split: when non-null,
  /// the seen penalty is swept against it at construction and after every
  /// append (overriding `seen_penalty`), so evolving label spaces keep a
  /// calibrated decision rule without operator intervention.
  InferenceEngine(std::shared_ptr<const ModelSnapshot> snapshot,
                  ScoringMode mode = ScoringMode::kFloatCosine, std::size_t n_shards = 0,
                  float seen_penalty = 0.0f, Precision precision = Precision::kFloat32,
                  RetrievalMode retrieval = RetrievalMode::kExact, std::size_t nprobe = 0,
                  std::size_t rerank = 4,
                  std::shared_ptr<const GzslCalibration> calibration = nullptr);

  /// Wall time of one batch forward split at the embed/score boundary —
  /// the two stages the per-request tracer (obs/trace.hpp) reports
  /// separately so "slow request" resolves to backbone vs prototype scan.
  /// Embedding inputs report embed_ms == 0 (no backbone ran).
  struct BatchTimings {
    double embed_ms = 0.0;
    double score_ms = 0.0;
  };

  /// Full logits [B, C] via the flat store scan (C = the pinned version's
  /// class count). `inputs` is either an image batch [B, 3, S, S]
  /// (embedded by the backbone) or a pre-computed embedding batch [B, d]
  /// (split inference: the backbone ran on the client/edge, only the
  /// prototype scan runs here).
  tensor::Tensor logits(const tensor::Tensor& inputs, BatchTimings* timings = nullptr) const;

  /// Top-k (label, score) hits per input, ordered by (score desc, label
  /// asc), via the sharded scatter/gather scan. Returns min(k, C) entries
  /// per input; k == 0 yields empty results. Accepts the same image /
  /// embedding input shapes as logits().
  std::vector<std::vector<TopK>> topk_batch(const tensor::Tensor& inputs, std::size_t k,
                                            BatchTimings* timings = nullptr) const;

  /// Argmax + winning score per input (images or embeddings, as above).
  /// `timings`, when non-null, receives the embed/score wall-time split;
  /// results are identical either way.
  std::vector<Prediction> classify_batch(const tensor::Tensor& inputs,
                                         BatchTimings* timings = nullptr) const;

  /// Pin the current store version: an O(1) shared-lock pointer copy.
  /// Every scoring entrypoint pins exactly once per batch; callers needing
  /// multi-call consistency (telemetry, exactness tests) pin their own.
  std::shared_ptr<const StoreVersion> pin() const;

  /// Append classes online: encode ϕ(a) for `attributes` [n, α], build
  /// the next store version (see file comment) and publish it atomically.
  /// `seen_flags`, when non-empty, must have n entries (non-zero = seen);
  /// empty marks every new class unseen — the zero-shot default. Returns
  /// the published version. Thread-safe; concurrent appends serialize,
  /// in-flight batches keep their pinned versions. Throws
  /// std::invalid_argument on shape mismatch (nothing published).
  std::shared_ptr<const StoreVersion> append_classes(
      const tensor::Tensor& attributes, const std::vector<std::uint8_t>& seen_flags = {}) const;

  /// Apply a persisted delta-snapshot record (snapshot_io.hpp): validates
  /// the delta's base rows/version/content-checksum against the *current*
  /// version and its own end-state checksum, then appends the delta's
  /// pre-normalized rows and packed words verbatim — so the resulting
  /// version is bitwise the one the delta writer serialized. Throws
  /// std::invalid_argument / std::runtime_error on any mismatch, with the
  /// previous version still serving (strong guarantee).
  std::shared_ptr<const StoreVersion> append_delta(const SnapshotDelta& delta) const;

  ScoringMode mode() const { return mode_; }
  Precision precision() const { return precision_; }
  RetrievalMode retrieval() const { return retrieval_; }
  /// Probe width for approximate retrieval (0 = the index default).
  std::size_t nprobe() const { return nprobe_; }
  /// Cascade rerank budget multiplier (0 = unbounded).
  std::size_t rerank() const { return rerank_; }
  /// The current version's IVF index — null iff retrieval() == kExact.
  std::shared_ptr<const IvfIndex> ivf() const { return pin()->ivf; }
  /// Current version counter (the `ver` registry column).
  std::uint64_t store_version() const { return pin()->version; }
  /// Current class count (grows with appends).
  std::size_t n_classes() const { return pin()->n_classes(); }
  std::size_t n_shards() const { return pin()->sharded->n_shards(); }
  /// Calibrated-stacking handicap of the current version
  /// (0 = plain single-space serving).
  float seen_penalty() const { return pin()->penalty.penalty; }
  /// Per-shard scan telemetry of the current version's sharded view.
  std::vector<ShardedPrototypeStore::ShardInfo> shard_stats() const {
    return pin()->sharded->shard_stats();
  }
  const ModelSnapshot& snapshot() const { return *snapshot_; }

 private:
  /// Rank-2 inputs [B, d] are pre-computed embeddings and pass through
  /// (width-checked against the store dim); everything else runs the
  /// eval-mode backbone. `embed_ms` receives the backbone wall time
  /// (0 for the passthrough).
  tensor::Tensor embed_inputs(const tensor::Tensor& inputs, double* embed_ms) const;

  /// Top-k over an already-embedded batch against one pinned version,
  /// routed by retrieval_ / mode_.
  std::vector<std::vector<TopK>> topk_embedded(const StoreVersion& ver,
                                               const tensor::Tensor& emb, std::size_t k) const;

  /// Resolve the effective GZSL penalty for a (store, mask) pair under the
  /// engine's precedence: calibration split > explicit knob > snapshot's
  /// persisted calibrated penalty.
  float effective_penalty(const PrototypeStore& store,
                          const std::vector<std::uint8_t>& seen_mask) const;

  /// Shared append tail: build + publish the next version from the
  /// already-appended store. Caller holds evolve_mu_.
  std::shared_ptr<const StoreVersion> publish_appended(
      const std::shared_ptr<const StoreVersion>& cur,
      std::shared_ptr<const PrototypeStore> new_store, std::vector<std::uint8_t> new_mask,
      tensor::Tensor new_attrs, std::vector<std::uint32_t> ivf_assignments) const;

  std::shared_ptr<const ModelSnapshot> snapshot_;
  ScoringMode mode_;
  Precision precision_;
  std::size_t shard_target_ = 0;  // ctor n_shards resolved (0 → snapshot preference)
  float cfg_penalty_ = 0.0f;       // explicit seen_penalty knob
  RetrievalMode retrieval_ = RetrievalMode::kExact;
  std::size_t nprobe_ = 0;
  std::size_t rerank_ = 4;
  std::shared_ptr<const GzslCalibration> calibration_;

  /// The published version. ver_mu_ is held shared for the O(1) pin copy
  /// and exclusively only for the swap itself; evolve_mu_ serializes the
  /// (potentially expensive) version *construction* so appenders never
  /// build against a stale base.
  mutable std::shared_mutex ver_mu_;
  mutable std::shared_ptr<const StoreVersion> version_;
  mutable std::mutex evolve_mu_;
};

}  // namespace hdczsc::serve
