// Inference engine: stateless execution wrapper over a ModelSnapshot.
//
// classify_batch runs the eval-mode embed once for the whole batch — the
// CNN backbone does one whole-batch im2col + blocked GEMM per conv layer,
// so batching speeds up the embed itself, not just what follows — then
// scores against the frozen prototype store via either
//  * kFloatCosine   — s · cosine(e, ϕ(A)), bit-identical to
//                     ZscModel::class_logits in eval mode, or
//  * kBinaryHamming — sign-binarized query vs. bit-packed prototypes,
//                     word-level XOR + popcount (the edge/accelerator path).
// Thread-safe: all state is read-only after construction.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "serve/snapshot.hpp"

namespace hdczsc::serve {

enum class ScoringMode { kFloatCosine, kBinaryHamming };

std::string scoring_mode_name(ScoringMode mode);

/// One classified request.
struct Prediction {
  std::size_t label = 0;  ///< argmax class (prototype-store row)
  float score = 0.0f;     ///< winning logit
};

class InferenceEngine {
 public:
  InferenceEngine(std::shared_ptr<const ModelSnapshot> snapshot,
                  ScoringMode mode = ScoringMode::kFloatCosine);

  /// Full logits [B, C] for images [B, 3, S, S].
  tensor::Tensor logits(const tensor::Tensor& images) const;

  /// Argmax + winning score per image.
  std::vector<Prediction> classify_batch(const tensor::Tensor& images) const;

  ScoringMode mode() const { return mode_; }
  const ModelSnapshot& snapshot() const { return *snapshot_; }

 private:
  std::shared_ptr<const ModelSnapshot> snapshot_;
  ScoringMode mode_;
};

}  // namespace hdczsc::serve
