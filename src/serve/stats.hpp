// Serving telemetry: counters, latency percentiles, queue-depth high-water
// mark and a batch-size histogram, rendered via util::Table.
//
// record_* methods are thread-safe and cheap (one mutex; latencies are kept
// in full so percentiles are exact — at serving-bench scales this is a few
// MB at most).
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "util/table.hpp"
#include "util/timer.hpp"

namespace hdczsc::serve {

class ServingStats {
 public:
  ServingStats() = default;

  /// One completed request with its end-to-end (enqueue→reply) latency.
  void record_request(double latency_ms);
  /// One admission-control rejection.
  void record_reject();
  /// One executed forward with its coalesced batch size.
  void record_batch(std::size_t batch_size);
  /// Predicted-label domains of one batch (GZSL serving): how many
  /// predictions landed on seen vs. unseen classes. Ground truth is not
  /// known at serving time — these count where the *decisions* land, the
  /// live signal for whether the calibrated-stacking penalty keeps both
  /// domains in play.
  void record_domains(std::size_t seen, std::size_t unseen);
  /// Queue depth observed when a batch was collected (tracks the high-water
  /// mark).
  void observe_queue_depth(std::size_t depth);

  struct Summary {
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t batches = 0;
    double wall_seconds = 0.0;    ///< since construction / reset
    double throughput_rps = 0.0;  ///< completed / wall_seconds
    double mean_latency_ms = 0.0;
    double p50_latency_ms = 0.0;
    double p99_latency_ms = 0.0;
    double mean_batch_size = 0.0;
    std::size_t max_queue_depth = 0;
    /// Predictions that landed on seen / unseen classes (GZSL serving;
    /// both 0 unless record_domains was ever called).
    std::uint64_t seen_hits = 0;
    std::uint64_t unseen_hits = 0;
    /// Harmonic mean of the two domains' shares of all predictions,
    /// H = 2·f_s·f_u / (f_s + f_u) ∈ [0, 0.5]: 0 when every decision
    /// collapses into one domain (the failure mode calibrated stacking
    /// exists to fix), 0.5 at a perfect 50/50 balance.
    double domain_harmonic = 0.0;
    /// histogram[k] counts batches with size in [2^k, 2^(k+1)) (bucket 0 is
    /// exactly size 1).
    std::vector<std::uint64_t> batch_histogram;
  };
  Summary summary() const;

  /// Render the summary (plus the batch-size histogram) as a util::Table.
  util::Table to_table(const std::string& title = "serving stats") const;

  void reset();

 private:
  mutable std::mutex mu_;
  util::Timer wall_;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t batch_size_sum_ = 0;
  std::uint64_t seen_hits_ = 0;
  std::uint64_t unseen_hits_ = 0;
  std::size_t max_queue_depth_ = 0;
  std::vector<double> latencies_ms_;
  std::vector<std::uint64_t> batch_histogram_;

  static double percentile(std::vector<double> xs, double q);
};

}  // namespace hdczsc::serve
