// Serving telemetry, rebuilt on the obs metrics core.
//
// Every record_* path is lock-free (sharded counters, log-bucketed
// histograms) — the old design took a mutex per completed request and kept
// every latency in an unbounded vector so percentiles could be exact; at
// sustained serving rates that is both a contention point on the hot path
// and memory that grows forever. Percentiles now come from fixed-memory
// obs::Histogram buckets (≤ ~0.8 % relative error; tests/test_obs.cpp gates
// 2 %), and memory_bytes() is a compile-time constant regardless of how
// many requests were recorded.
//
// Constructed with a model name, every metric is also registered in
// obs::default_registry() under serve_*{model=...} so the exporters
// (Prometheus text / JSON) see live serving telemetry without any extra
// plumbing. A default-constructed instance keeps its metrics private
// (tests, ad-hoc benches).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace hdczsc::serve {

class ServingStats {
 public:
  /// Private (unregistered) metrics.
  ServingStats();
  /// Registered metrics: serve_requests_total{model=...} etc. in
  /// obs::default_registry(). Re-creating under the same name (model hot
  /// reload) continues the same series.
  explicit ServingStats(const std::string& model);

  /// One completed request with its end-to-end (enqueue→reply) latency and
  /// the share of it spent waiting in the batcher queue.
  void record_request(double latency_ms, double queue_wait_ms = 0.0);
  /// One admission-control rejection.
  void record_reject();
  /// One executed forward with its coalesced batch size.
  void record_batch(std::size_t batch_size);
  /// Predicted-label domains of one batch (GZSL serving): how many
  /// predictions landed on seen vs. unseen classes. Ground truth is not
  /// known at serving time — these count where the *decisions* land, the
  /// live signal for whether the calibrated-stacking penalty keeps both
  /// domains in play.
  void record_domains(std::size_t seen, std::size_t unseen);
  /// Queue depth observed when a batch was collected (tracks the high-water
  /// mark).
  void observe_queue_depth(std::size_t depth);

  struct Summary {
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t batches = 0;
    double wall_seconds = 0.0;    ///< since construction / reset
    double throughput_rps = 0.0;  ///< completed / wall_seconds
    double mean_latency_ms = 0.0;
    double p50_latency_ms = 0.0;
    double p99_latency_ms = 0.0;
    double p999_latency_ms = 0.0;
    double mean_queue_wait_ms = 0.0;
    double p99_queue_wait_ms = 0.0;
    double mean_batch_size = 0.0;
    std::size_t max_queue_depth = 0;
    /// Predictions that landed on seen / unseen classes (GZSL serving;
    /// both 0 unless record_domains was ever called).
    std::uint64_t seen_hits = 0;
    std::uint64_t unseen_hits = 0;
    /// Harmonic mean of the two domains' shares of all predictions,
    /// H = 2·f_s·f_u / (f_s + f_u) ∈ [0, 0.5]: 0 when every decision
    /// collapses into one domain (the failure mode calibrated stacking
    /// exists to fix), 0.5 at a perfect 50/50 balance.
    double domain_harmonic = 0.0;
    /// histogram[k] counts batches with size in [2^k, 2^(k+1)) (bucket 0 is
    /// exactly size 1).
    std::vector<std::uint64_t> batch_histogram;
  };
  Summary summary() const;

  /// Render the summary (plus the batch-size histogram) as a util::Table.
  util::Table to_table(const std::string& title = "serving stats") const;

  void reset();

  /// Bytes retained for latency bookkeeping — a constant, not a function of
  /// the number of requests recorded (the regression test records 1M and
  /// checks this does not move).
  static constexpr std::size_t memory_bytes() { return 2 * sizeof(obs::Histogram); }

 private:
  void init(const std::string& model);

  util::Timer wall_;
  std::shared_ptr<obs::Counter> completed_;
  std::shared_ptr<obs::Counter> rejected_;
  std::shared_ptr<obs::Counter> batches_;
  std::shared_ptr<obs::Counter> seen_hits_;
  std::shared_ptr<obs::Counter> unseen_hits_;
  std::shared_ptr<obs::Histogram> latency_ms_;
  std::shared_ptr<obs::Histogram> queue_wait_ms_;
  std::shared_ptr<obs::Histogram> batch_size_;
  std::shared_ptr<obs::Gauge> max_queue_depth_;

  /// Exact log2 batch-size histogram (back-compat with the Summary field and
  /// its table rows). Batches beyond 2^(kBatchBuckets-1) clamp to the last
  /// bucket — far above any admissible BatchPolicy::max_batch.
  static constexpr std::size_t kBatchBuckets = 24;
  std::array<std::atomic<std::uint64_t>, kBatchBuckets> batch_hist_{};
  std::atomic<std::uint64_t> batch_size_sum_{0};
};

}  // namespace hdczsc::serve
