#include "serve/sharded_store.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "serve/topk_select.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "util/parallel.hpp"

namespace hdczsc::serve {

namespace {

// Selection primitives shared with the approximate tier (topk_select.hpp):
// same (score desc, label asc) order, same block-skip thresholds, same
// integer-key Hamming domain — the basis of the exact/approximate
// bit-identity properties in tests/test_ann_retrieval.cpp.
using detail::kSelectBlock;
using BoundedTopK = detail::BoundedTopK<TopK>;
using detail::BoundedTopKHamming;
inline bool better(const TopK& a, const TopK& b) { return detail::better(a, b); }

/// Process-wide scan telemetry in obs::default_registry(): per-shard scan
/// wall time (profiling-gated, see obs::ScopedTimer) and swept/pruned row
/// totals across every sharded store in the process. Magic statics so the
/// hot loops pay one pointer load, no registry lookups.
obs::Histogram* shard_scan_hist() {
  static const std::shared_ptr<obs::Histogram> h = obs::default_registry().histogram(
      "serve_shard_scan_ms", {}, "wall time of one (shard, batch) scatter scan");
  return h.get();
}
obs::Counter& rows_swept_total() {
  static const std::shared_ptr<obs::Counter> c = obs::default_registry().counter(
      "serve_shard_rows_swept_total", {}, "prototype rows swept by sharded scatter scans");
  return *c;
}
obs::Counter& rows_pruned_total() {
  static const std::shared_ptr<obs::Counter> c = obs::default_registry().counter(
      "serve_shard_rows_pruned_total", {},
      "rows skipped wholesale by the heap-cutoff block-skip prefilter");
  return *c;
}

void check_embeddings(const tensor::Tensor& embeddings, std::size_t dim, const char* what) {
  if (embeddings.dim() != 2 || embeddings.size(1) != dim)
    throw std::invalid_argument(std::string("ShardedPrototypeStore::") + what + ": need [B, " +
                                std::to_string(dim) + "] embeddings, got " +
                                tensor::shape_str(embeddings.shape()));
}

}  // namespace

ShardedPrototypeStore::ShardedPrototypeStore(const PrototypeStore& base, std::size_t n_shards)
    : base_(&base) {
  const std::size_t c = base.n_classes();
  const std::size_t s = std::clamp<std::size_t>(n_shards, 1, c);
  shards_.reserve(s);
  const std::size_t rows = c / s, extra = c % s;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < s; ++i) {
    const std::size_t end = begin + rows + (i < extra ? 1 : 0);
    shards_.push_back({begin, end});
    begin = end;
  }
  counters_ = std::make_unique<Counters[]>(s);
}

std::vector<std::vector<TopK>> ShardedPrototypeStore::gather(
    std::size_t batch, std::size_t k, const std::vector<TopK>& cand,
    const std::vector<std::uint32_t>& cand_n) const {
  const std::size_t n_sh = shards_.size();
  std::vector<std::vector<TopK>> out(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    std::vector<TopK>& merged = out[b];
    merged.reserve(std::min(k, base_->n_classes()));
    for (std::size_t s = 0; s < n_sh; ++s) {
      const TopK* slot = cand.data() + (s * batch + b) * k;
      merged.insert(merged.end(), slot, slot + cand_n[s * batch + b]);
    }
    std::sort(merged.begin(), merged.end(), better);
    if (merged.size() > k) merged.resize(k);
  }
  return out;
}

std::vector<std::vector<TopK>> ShardedPrototypeStore::topk_float(
    const tensor::Tensor& embeddings, std::size_t k, const SeenPenalty* penalty) const {
  check_embeddings(embeddings, base_->dim(), "topk_float");
  const std::size_t batch = embeddings.size(0);
  if (k == 0) return std::vector<std::vector<TopK>>(batch);

  const std::size_t d = base_->dim();
  const float scale = base_->scale();
  const tensor::Tensor e_hat = tensor::l2_normalize_rows(embeddings);
  const float* E = e_hat.data();
  const float* P = base_->float_rows();
  const bool penalized = penalty && penalty->active();

  // Scatter: one GEMM per shard over its row range of the normalized
  // prototype matrix (the rows are contiguous, so the shard is a pointer
  // offset, not a copy), then k-bounded selection per query straight into
  // this (shard, query)'s candidate slot. Shards fan out across the
  // worker pool; each works in its own shard-local score buffer and
  // writes only its own candidate slots.
  const std::size_t n_sh = shards_.size();
  std::vector<TopK> cand(n_sh * batch * k);
  std::vector<std::uint32_t> cand_n(n_sh * batch, 0);
  util::parallel_for(
      0, n_sh,
      [&](std::size_t s) {
        const obs::ScopedTimer scan_timer(shard_scan_hist());
        const Shard sh = shards_[s];
        const std::size_t rows = sh.end - sh.begin;
        std::uint64_t pruned = 0;
        // Shard-local scores, O(B·C/S) — the full [B, C] logit matrix is
        // never materialized. Zeroed: gemm accumulates.
        std::vector<float> cos(batch * rows, 0.0f);
        tensor::gemm_accumulate(tensor::Trans::N, tensor::Trans::T, batch, rows, d, E, d,
                                P + sh.begin * d, d, cos.data(), rows);
        // Finalize the buffer to logits in place — fl(s·cos), then the
        // calibrated-stacking handicap on seen rows — so the selection
        // loop compares exactly the values the flat penalized
        // score_float path materializes.
        for (std::size_t b = 0; b < batch; ++b) {
          float* row = cos.data() + b * rows;
          for (std::size_t i = 0; i < rows; ++i) row[i] = scale * row[i];
          if (penalized) {
            const float* adj = penalty->row_penalty.data() + sh.begin;
            for (std::size_t i = 0; i < rows; ++i) row[i] -= adj[i];
          }
        }
        for (std::size_t b = 0; b < batch; ++b) {
          const float* row = cos.data() + b * rows;
          BoundedTopK local(cand.data() + (s * batch + b) * k, k);
          std::size_t i = 0;
          for (; i + kSelectBlock <= rows; i += kSelectBlock) {
            const float cut = local.cutoff_score();
            std::uint32_t any = 0;
            for (std::size_t j = 0; j < kSelectBlock; ++j)
              any |= row[i + j] >= cut ? 1u : 0u;
            if (!any) {
              pruned += kSelectBlock;
              continue;
            }
            for (std::size_t j = 0; j < kSelectBlock; ++j)
              local.offer(TopK{sh.begin + i + j, row[i + j]});
          }
          for (; i < rows; ++i) local.offer(TopK{sh.begin + i, row[i]});
          cand_n[s * batch + b] = static_cast<std::uint32_t>(local.size());
        }
        counters_[s].scans.fetch_add(batch, std::memory_order_relaxed);
        counters_[s].rows_swept.fetch_add(batch * rows, std::memory_order_relaxed);
        counters_[s].rows_pruned.fetch_add(pruned, std::memory_order_relaxed);
        rows_swept_total().add(batch * rows);
        rows_pruned_total().add(pruned);
      },
      /*grain=*/1);

  return gather(batch, k, cand, cand_n);
}

std::vector<std::vector<TopK>> ShardedPrototypeStore::topk_binary(
    const tensor::Tensor& embeddings, std::size_t k, const SeenPenalty* penalty) const {
  check_embeddings(embeddings, base_->dim(), "topk_binary");
  const std::size_t batch = embeddings.size(0);
  if (k == 0) return std::vector<std::vector<TopK>>(batch);
  const bool penalized = penalty && penalty->active();

  // Encode every query once, up front, into one contiguous packed buffer
  // (the query-blocked kernel reads them side by side).
  const std::size_t wpr = base_->words_per_row();
  std::vector<std::uint64_t> qwords(batch * wpr);
  for (std::size_t b = 0; b < batch; ++b) {
    const hdc::BinaryHV q = base_->encode_query(embeddings.data() + b * base_->dim());
    std::copy(q.words().begin(), q.words().end(), qwords.begin() + b * wpr);
  }

  const std::uint64_t* packed = base_->packed_data();
  const float scale = base_->scale();
  const float inv_d = 1.0f / static_cast<float>(base_->code_bits());

  // Scatter: each shard sweeps its (cache-resident) word range once for
  // the whole query batch — hamming_many_packed_multi loads every
  // prototype row once per 4-query block — then folds the shard's distance
  // buffer into per-query candidate slots. Selection compares in the same
  // scale·(1 − 2h/D) float domain score_binary materializes, so gathered
  // scores are bit-identical to the flat path.
  const std::size_t n_sh = shards_.size();
  std::vector<TopK> cand(n_sh * batch * k);
  std::vector<std::uint32_t> cand_n(n_sh * batch, 0);
  // Integer-domain selection is order-identical to the float logits while
  // distinct Hamming counts cannot round to the same score (see
  // BoundedTopKHamming); pathological widths take the float-domain loop.
  // A calibrated-stacking penalty joins the integer domain only when it is
  // an exact Hamming offset (SeenPenalty::integer_exact, which also
  // guarantees h + Δ stays inside the < 2²⁴ float-exact range); any other
  // handicap forces the float-domain loop with subtract-form scores.
  const bool integer_select = scale > 0.0f && base_->code_bits() < (std::size_t{1} << 24) &&
                              (!penalized || penalty->integer_exact);
  std::vector<std::uint64_t> keys(integer_select ? n_sh * batch * k : 0);
  // Cross-shard cutoff hints, one per query: the first shard to fill its
  // heap publishes its k-th best key, and every shard scanning that query
  // afterwards starts with that bound already in place (sequential shards
  // on one worker get a near-global cutoff for free; concurrent shards
  // just see a laggier hint — the bound is conservative either way).
  std::unique_ptr<std::atomic<std::uint64_t>[]> hints;
  if (integer_select) {
    hints = std::make_unique<std::atomic<std::uint64_t>[]>(batch);
    for (std::size_t b = 0; b < batch; ++b)
      hints[b].store(~std::uint64_t{0}, std::memory_order_relaxed);
  }
  util::parallel_for(
      0, n_sh,
      [&](std::size_t s) {
        const obs::ScopedTimer scan_timer(shard_scan_hist());
        const Shard sh = shards_[s];
        const std::size_t rows = sh.end - sh.begin;
        std::uint64_t pruned = 0;
        // Shard-local distance buffer, O(B·C/S) and for-overwrite (the
        // kernel fills every slot read back) — the full [B, C] matrix is
        // never materialized.
        auto h = std::make_unique_for_overwrite<std::uint32_t[]>(batch * rows);
        hdc::hamming_many_packed_multi(qwords.data(), batch, packed + sh.begin * wpr, rows,
                                       wpr, h.get());
        if (penalized && integer_select) {
          // Fold the handicap into the Hamming counts up front: seen rows
          // carry h + Δ from here on, so the key selection, the cross-shard
          // hints and the final score conversion all see one consistent
          // integer domain (and the conversion below stays the exact
          // expression the flat penalized score_binary materializes).
          const std::uint32_t* off = penalty->row_offset.data() + sh.begin;
          for (std::size_t b = 0; b < batch; ++b) {
            std::uint32_t* hb = h.get() + b * rows;
            for (std::size_t i = 0; i < rows; ++i) hb[i] += off[i];
          }
        }
        const float* adj =
            penalized && !integer_select ? penalty->row_penalty.data() + sh.begin : nullptr;
        for (std::size_t b = 0; b < batch; ++b) {
          const std::uint32_t* hb = h.get() + b * rows;
          TopK* slot = cand.data() + (s * batch + b) * k;
          if (integer_select) {
            BoundedTopKHamming local(keys.data() + (s * batch + b) * k, k,
                                     hints[b].load(std::memory_order_relaxed));
            std::size_t i = 0;
            for (; i + kSelectBlock <= rows; i += kSelectBlock) {
              const std::uint32_t t = local.threshold();
              std::uint32_t any = 0;
              for (std::size_t j = 0; j < kSelectBlock; ++j)
                any |= hb[i + j] <= t ? 1u : 0u;
              if (!any) {
                pruned += kSelectBlock;
                continue;
              }
              for (std::size_t j = 0; j < kSelectBlock; ++j)
                local.offer(hb[i + j], sh.begin + i + j);
            }
            for (; i < rows; ++i) local.offer(hb[i], sh.begin + i);
            // Publish this shard's cutoff if it tightens the hint.
            std::uint64_t cut = local.cutoff();
            std::uint64_t seen = hints[b].load(std::memory_order_relaxed);
            while (cut < seen &&
                   !hints[b].compare_exchange_weak(seen, cut, std::memory_order_relaxed)) {
            }
            const std::uint64_t* kept = keys.data() + (s * batch + b) * k;
            for (std::size_t i = 0; i < local.size(); ++i) {
              const auto hv = static_cast<float>(kept[i] >> 32);
              slot[i] = TopK{static_cast<std::size_t>(kept[i] & 0xffffffffu),
                             scale * (1.0f - 2.0f * hv * inv_d)};
            }
            cand_n[s * batch + b] = static_cast<std::uint32_t>(local.size());
          } else {
            BoundedTopK local(slot, k);
            if (adj) {
              for (std::size_t i = 0; i < rows; ++i)
                local.offer(
                    TopK{sh.begin + i,
                         scale * (1.0f - 2.0f * static_cast<float>(hb[i]) * inv_d) - adj[i]});
            } else {
              for (std::size_t i = 0; i < rows; ++i)
                local.offer(TopK{sh.begin + i,
                                 scale * (1.0f - 2.0f * static_cast<float>(hb[i]) * inv_d)});
            }
            cand_n[s * batch + b] = static_cast<std::uint32_t>(local.size());
          }
        }
        counters_[s].scans.fetch_add(batch, std::memory_order_relaxed);
        counters_[s].rows_swept.fetch_add(batch * rows, std::memory_order_relaxed);
        counters_[s].rows_pruned.fetch_add(pruned, std::memory_order_relaxed);
        rows_swept_total().add(batch * rows);
        rows_pruned_total().add(pruned);
      },
      /*grain=*/1);

  return gather(batch, k, cand, cand_n);
}

std::vector<ShardedPrototypeStore::ShardInfo> ShardedPrototypeStore::shard_stats() const {
  std::vector<ShardInfo> out(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    out[s].begin = shards_[s].begin;
    out[s].rows = shards_[s].end - shards_[s].begin;
    out[s].scans = counters_[s].scans.load(std::memory_order_relaxed);
    out[s].rows_swept = counters_[s].rows_swept.load(std::memory_order_relaxed);
    out[s].rows_pruned = counters_[s].rows_pruned.load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace hdczsc::serve
