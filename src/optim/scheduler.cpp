#include "optim/scheduler.hpp"

#include <cmath>
#include <numbers>

namespace hdczsc::optim {

float CosineAnnealingLR::lr_at(long t) const {
  if (t_max_ <= 0) return base_lr_;
  if (t > t_max_) t = t_max_;
  const double cosv = std::cos(std::numbers::pi * static_cast<double>(t) /
                               static_cast<double>(t_max_));
  return eta_min_ + 0.5f * (base_lr_ - eta_min_) * static_cast<float>(1.0 + cosv);
}

float StepLR::lr_at(long t) const {
  const long k = step_size_ > 0 ? t / step_size_ : 0;
  return base_lr_ * std::pow(gamma_, static_cast<float>(k));
}

}  // namespace hdczsc::optim
