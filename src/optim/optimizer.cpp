#include "optim/optimizer.hpp"

#include <cmath>

namespace hdczsc::optim {

float Optimizer::clip_grad_norm(float max_norm) {
  double total = 0.0;
  for (Parameter* p : params_) {
    if (!p->requires_grad) continue;
    const float* g = p->grad.data();
    for (std::size_t i = 0; i < p->grad.numel(); ++i) total += static_cast<double>(g[i]) * g[i];
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Parameter* p : params_) {
      if (!p->requires_grad) continue;
      p->grad.scale(scale);
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum, float weight_decay)
    : Optimizer(std::move(params), lr), momentum_(momentum), weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Parameter* p = params_[k];
    if (!p->requires_grad) continue;
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* v = velocity_[k].data();
    for (std::size_t i = 0; i < p->value.numel(); ++i) {
      float grad = g[i] + weight_decay_ * w[i];
      if (momentum_ != 0.0f) {
        v[i] = momentum_ * v[i] + grad;
        grad = v[i];
      }
      w[i] -= lr_ * grad;
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2, float eps,
           float weight_decay)
    : Optimizer(std::move(params), lr), beta1_(beta1), beta2_(beta2), eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Parameter* p = params_[k];
    if (!p->requires_grad) continue;
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* m = m_[k].data();
    float* v = v_[k].data();
    for (std::size_t i = 0; i < p->value.numel(); ++i) {
      float grad = g[i];
      if (!decoupled_decay_ && weight_decay_ != 0.0f) grad += weight_decay_ * w[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * grad;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * grad * grad;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
      if (decoupled_decay_ && weight_decay_ != 0.0f) w[i] -= lr_ * weight_decay_ * w[i];
    }
  }
}

AdamW::AdamW(std::vector<Parameter*> params, float lr, float weight_decay, float beta1,
             float beta2, float eps)
    : Adam(std::move(params), lr, beta1, beta2, eps, weight_decay) {
  decoupled_decay_ = true;
}

}  // namespace hdczsc::optim
