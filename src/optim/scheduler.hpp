// Learning-rate schedules. CosineAnnealingLR follows SGDR (Loshchilov &
// Hutter 2016) without restarts — the paper's scheduler.
#pragma once

#include "optim/optimizer.hpp"

namespace hdczsc::optim {

class LrScheduler {
 public:
  explicit LrScheduler(Optimizer& opt) : opt_(&opt), base_lr_(opt.lr()) {}
  virtual ~LrScheduler() = default;

  /// Advance one epoch (or step, caller's choice of granularity).
  void step() {
    ++t_;
    opt_->set_lr(lr_at(t_));
  }

  virtual float lr_at(long t) const = 0;
  long current_step() const { return t_; }

 protected:
  Optimizer* opt_;
  float base_lr_;
  long t_ = 0;
};

/// eta_t = eta_min + 0.5 (eta_max - eta_min)(1 + cos(pi t / T_max)).
class CosineAnnealingLR : public LrScheduler {
 public:
  CosineAnnealingLR(Optimizer& opt, long t_max, float eta_min = 0.0f)
      : LrScheduler(opt), t_max_(t_max), eta_min_(eta_min) {}
  float lr_at(long t) const override;

 private:
  long t_max_;
  float eta_min_;
};

/// Multiply lr by gamma every `step_size` steps.
class StepLR : public LrScheduler {
 public:
  StepLR(Optimizer& opt, long step_size, float gamma = 0.1f)
      : LrScheduler(opt), step_size_(step_size), gamma_(gamma) {}
  float lr_at(long t) const override;

 private:
  long step_size_;
  float gamma_;
};

}  // namespace hdczsc::optim
