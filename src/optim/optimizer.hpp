// First-order optimizers over a flat parameter list. AdamW implements the
// decoupled weight decay of Loshchilov & Hutter (the paper's optimizer);
// SGD(+momentum) and Adam are provided for baselines and ablations.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace hdczsc::optim {

using nn::Parameter;

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params, float lr)
      : params_(std::move(params)), lr_(lr) {}
  virtual ~Optimizer() = default;

  /// Apply one update using the accumulated gradients. Parameters with
  /// requires_grad == false are skipped (frozen modules).
  virtual void step() = 0;

  void zero_grad() {
    for (Parameter* p : params_) p->zero_grad();
  }

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

  /// Global L2 gradient-norm clipping; returns the pre-clip norm.
  float clip_grad_norm(float max_norm);

  const std::vector<Parameter*>& params() const { return params_; }

 protected:
  std::vector<Parameter*> params_;
  float lr_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, float lr, float momentum = 0.0f, float weight_decay = 0.0f);
  void step() override;

 private:
  float momentum_, weight_decay_;
  std::vector<tensor::Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, float lr, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f, float weight_decay = 0.0f);
  void step() override;

 protected:
  float beta1_, beta2_, eps_, weight_decay_;
  long t_ = 0;
  std::vector<tensor::Tensor> m_, v_;
  bool decoupled_decay_ = false;
};

/// AdamW: Adam with decoupled weight decay (the paper's optimizer, default
/// PyTorch hyper-parameters beta=(0.9,0.999), eps=1e-8).
class AdamW : public Adam {
 public:
  AdamW(std::vector<Parameter*> params, float lr, float weight_decay = 1e-2f,
        float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f);
};

}  // namespace hdczsc::optim
