// Attribute-extraction metrics of §IV-A(b):
//  * per-group top-1 accuracy ("top-1% acc" in Table I): within each
//    attribute group, the predicted value is the argmax of the similarity
//    scores restricted to the group; correct iff it matches the ground-truth
//    active value.
//  * Average Precision per attribute and Weighted Mean Average Precision
//    (WMAP) per group: AP weighted to compensate attributes that are rare
//    in the dataset (weight ∝ 1/frequency, normalized within the group).
#pragma once

#include <vector>

#include "data/attribute_space.hpp"
#include "tensor/tensor.hpp"

namespace hdczsc::metrics {

/// Per-group top-1 accuracy. scores/targets [N, α]; targets are one-hot (or
/// soft — argmax within group is used as ground truth). Returns one accuracy
/// in [0,1] per group.
std::vector<double> per_group_top1(const tensor::Tensor& scores, const tensor::Tensor& targets,
                                   const data::AttributeSpace& space);

/// Binary-label average precision for one attribute: scores [N], labels [N]
/// in {0,1}. Returns 0 when there is no positive example.
double average_precision(const std::vector<float>& scores, const std::vector<float>& labels);

/// WMAP per group: AP of each attribute in the group, combined with weights
/// inversely proportional to attribute frequency (normalized within the
/// group). Attributes with zero positives are skipped.
std::vector<double> per_group_wmap(const tensor::Tensor& scores, const tensor::Tensor& targets,
                                   const data::AttributeSpace& space);

/// Mean of a vector of doubles.
double mean_of(const std::vector<double>& xs);

}  // namespace hdczsc::metrics
