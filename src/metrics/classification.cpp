#include "metrics/classification.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace hdczsc::metrics {

double topk_accuracy(const tensor::Tensor& scores, const std::vector<std::size_t>& labels,
                     std::size_t k) {
  if (scores.dim() != 2) throw std::invalid_argument("topk_accuracy: scores must be [N, C]");
  if (labels.size() != scores.size(0))
    throw std::invalid_argument("topk_accuracy: label count mismatch");
  if (labels.empty()) return 0.0;
  auto top = tensor::topk_rows(scores, std::min(k, scores.size(1)));
  std::size_t hits = 0;
  for (std::size_t i = 0; i < labels.size(); ++i)
    for (std::size_t j : top[i])
      if (j == labels[i]) {
        ++hits;
        break;
      }
  return static_cast<double>(hits) / static_cast<double>(labels.size());
}

std::vector<std::vector<std::size_t>> confusion_matrix(
    const tensor::Tensor& scores, const std::vector<std::size_t>& labels,
    std::size_t n_classes) {
  if (scores.dim() != 2 || scores.size(1) != n_classes)
    throw std::invalid_argument("confusion_matrix: scores must be [N, n_classes]");
  auto preds = tensor::argmax_rows(scores);
  std::vector<std::vector<std::size_t>> cm(n_classes, std::vector<std::size_t>(n_classes, 0));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] >= n_classes) throw std::out_of_range("confusion_matrix: label out of range");
    cm[labels[i]][preds[i]] += 1;
  }
  return cm;
}

}  // namespace hdczsc::metrics
