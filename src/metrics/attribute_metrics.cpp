#include "metrics/attribute_metrics.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace hdczsc::metrics {

std::vector<double> per_group_top1(const tensor::Tensor& scores, const tensor::Tensor& targets,
                                   const data::AttributeSpace& space) {
  if (scores.shape() != targets.shape() || scores.dim() != 2)
    throw std::invalid_argument("per_group_top1: scores/targets must be matching [N, alpha]");
  const std::size_t n = scores.size(0), alpha = scores.size(1);
  if (alpha != space.n_attributes())
    throw std::invalid_argument("per_group_top1: attribute dimension mismatch");

  std::vector<double> acc(space.n_groups(), 0.0);
  const float* S = scores.data();
  const float* T = targets.data();
  for (std::size_t g = 0; g < space.n_groups(); ++g) {
    const auto& grp = space.group(g);
    const std::size_t off = grp.attr_offset, w = grp.value_ids.size();
    std::size_t hits = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const float* srow = S + i * alpha + off;
      const float* trow = T + i * alpha + off;
      std::size_t pred = 0, truth = 0;
      for (std::size_t k = 1; k < w; ++k) {
        if (srow[k] > srow[pred]) pred = k;
        if (trow[k] > trow[truth]) truth = k;
      }
      if (pred == truth) ++hits;
    }
    acc[g] = n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
  return acc;
}

double average_precision(const std::vector<float>& scores, const std::vector<float>& labels) {
  if (scores.size() != labels.size())
    throw std::invalid_argument("average_precision: size mismatch");
  const std::size_t n = scores.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&scores](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });
  double positives = 0.0;
  for (float l : labels) positives += l > 0.5f ? 1.0 : 0.0;
  if (positives == 0.0) return 0.0;

  double hits = 0.0, ap = 0.0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    if (labels[order[rank]] > 0.5f) {
      hits += 1.0;
      ap += hits / static_cast<double>(rank + 1);
    }
  }
  return ap / positives;
}

std::vector<double> per_group_wmap(const tensor::Tensor& scores, const tensor::Tensor& targets,
                                   const data::AttributeSpace& space) {
  if (scores.shape() != targets.shape() || scores.dim() != 2)
    throw std::invalid_argument("per_group_wmap: scores/targets must be matching [N, alpha]");
  const std::size_t n = scores.size(0), alpha = scores.size(1);
  if (alpha != space.n_attributes())
    throw std::invalid_argument("per_group_wmap: attribute dimension mismatch");

  const float* S = scores.data();
  const float* T = targets.data();
  std::vector<double> wmap(space.n_groups(), 0.0);
  std::vector<float> col_scores(n), col_labels(n);
  for (std::size_t g = 0; g < space.n_groups(); ++g) {
    const auto& grp = space.group(g);
    double weight_sum = 0.0, weighted_ap = 0.0;
    for (std::size_t k = 0; k < grp.value_ids.size(); ++k) {
      const std::size_t a = grp.attr_offset + k;
      double freq = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        col_scores[i] = S[i * alpha + a];
        col_labels[i] = T[i * alpha + a] > 0.5f ? 1.0f : 0.0f;
        freq += col_labels[i];
      }
      if (freq == 0.0) continue;  // no positives: AP undefined, skip
      const double ap = average_precision(col_scores, col_labels);
      const double weight = static_cast<double>(n) / freq;  // ∝ 1/frequency
      weighted_ap += weight * ap;
      weight_sum += weight;
    }
    wmap[g] = weight_sum > 0.0 ? weighted_ap / weight_sum : 0.0;
  }
  return wmap;
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

}  // namespace hdczsc::metrics
