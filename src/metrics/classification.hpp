// Classification metrics: top-k accuracy (the paper reports top-1 and top-5
// for ZSC) and a confusion-matrix helper.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace hdczsc::metrics {

/// Fraction of rows whose true label is among the k highest-scoring columns.
/// scores [N, C]; labels: one class id per row. Returns value in [0, 1].
double topk_accuracy(const tensor::Tensor& scores, const std::vector<std::size_t>& labels,
                     std::size_t k);

inline double top1_accuracy(const tensor::Tensor& scores,
                            const std::vector<std::size_t>& labels) {
  return topk_accuracy(scores, labels, 1);
}

/// Row-normalized confusion counts: confusion[i][j] = #examples of class i
/// predicted as class j.
std::vector<std::vector<std::size_t>> confusion_matrix(
    const tensor::Tensor& scores, const std::vector<std::size_t>& labels,
    std::size_t n_classes);

}  // namespace hdczsc::metrics
