// Dense linear algebra needed by the ESZSL baseline's closed-form solution:
// symmetric positive-definite solves (Cholesky) and general inversion
// (Gauss-Jordan with partial pivoting).
#pragma once

#include "tensor/tensor.hpp"

namespace hdczsc::tensor {

/// Cholesky factor L (lower triangular) of an SPD matrix A = L L^T.
/// Throws std::domain_error if A is not positive definite.
Tensor cholesky(const Tensor& a);

/// Solve A X = B for SPD A [n,n] and B [n,m] via Cholesky.
Tensor solve_spd(const Tensor& a, const Tensor& b);

/// General matrix inverse via Gauss-Jordan with partial pivoting.
/// Throws std::domain_error on (numerically) singular input.
Tensor inverse(const Tensor& a);

/// Solve the general system A X = B via Gauss elimination with partial
/// pivoting (A [n,n], B [n,m]).
Tensor solve(const Tensor& a, const Tensor& b);

}  // namespace hdczsc::tensor
