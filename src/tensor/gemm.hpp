// Cache-blocked single-precision GEMM over raw row-major buffers.
//
// This is the compute core every dense hot path routes through:
// tensor::matmul / matmul_nt / matmul_tn, Linear forward/backward, and the
// whole-batch im2col convolution. The design is the classic three-level
// blocking scheme (BLIS-style):
//
//   * B is packed into NR-wide column panels (KC x NC block),
//   * A is packed into MR-tall row panels (MC x KC block),
//     — each (column-block, row-block) task packs both panels into its own
//     thread-local scratch, so B panels are re-packed once per row block of
//     the same column block (redundancy that is O(k*n) against the O(m*n*k)
//     compute it parallelizes race-free),
//   * a register-tiled MR x NR micro-kernel runs down the shared KC dimension
//     with a local accumulator array the compiler keeps in vector registers.
//
// The micro-kernel is stamped out once per ISA (portable / AVX2+FMA /
// AVX-512) with plain autovectorizable loops — no intrinsics — and the best
// variant the CPU supports is selected once at runtime. Row blocks fan out
// across util::parallel_for workers; transposed operands are handled inside
// the packing routines so all variants share one kernel.
#pragma once

#include <cstddef>

namespace hdczsc::tensor {

enum class Trans : unsigned char { N, T };

/// C[m,n] += op(A) * op(B) with op(X) = X or X^T.
///
/// All matrices are dense row-major with explicit leading dimensions:
/// op(A)(i,p) reads A[i*lda + p] (Trans::N, A is [m,k]) or A[p*lda + i]
/// (Trans::T, A is [k,m]); op(B) analogously. C is always [m, ldc>=n].
/// Accumulates into C — callers wanting C = A*B zero C first.
///
/// Accumulation is single precision, but structured: each C element is the
/// sum of KC-deep register partial sums spread across NR vector lanes, so
/// rounding error grows with k/KC rather than k (measured ~2e-5 relative at
/// k=65536 on N(0,1) data — tighter than a serial float loop, looser than
/// the old matmul_nt double path; tests pin 1e-4 at k=16384).
void gemm_accumulate(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
                     const float* A, std::size_t lda, const float* B, std::size_t ldb, float* C,
                     std::size_t ldc);

/// Reference implementation with the same contract (triple loop, no packing,
/// no threading). Kept for equivalence tests and speedup benchmarks.
void gemm_naive(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k, const float* A,
                std::size_t lda, const float* B, std::size_t ldb, float* C, std::size_t ldc);

/// Name of the micro-kernel variant selected for this CPU
/// ("avx512" / "avx2" / "portable") — surfaced in benches and logs.
const char* gemm_kernel_name();

}  // namespace hdczsc::tensor
