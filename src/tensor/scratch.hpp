// Thread-local scratch buffers for hot-path workspaces (GEMM panel packing,
// whole-batch im2col matrices, conv gradient staging).
//
// Buffers grow monotonically and are reused across calls, so a steady-state
// forward/backward pass performs no heap allocation. Each slot is one buffer
// per thread; callers that need several live workspaces at once (e.g. conv
// backward holds columns + gathered grads + column grads while GEMM packs
// panels underneath) take distinct slots from the fixed map below.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hdczsc::tensor {

/// Fixed slot assignments. Slots may be held live simultaneously, so every
/// concurrent consumer gets its own id; GEMM pack slots are distinct from the
/// conv slots because conv calls GEMM while its workspaces are live.
enum ScratchSlot : std::size_t {
  kScratchGemmPackA = 0,  ///< per-thread packed A panel (one per GEMM block task)
  kScratchGemmPackB = 1,  ///< per-thread packed B panel (one per GEMM block task)
  kScratchConvCols = 2,   ///< whole-batch im2col matrix [krows, B*oh*ow]
  kScratchConvOut = 3,    ///< conv forward GEMM output / backward gathered grads
  kScratchConvDCols = 4,  ///< conv backward column-gradient matrix
  kScratchGeneric = 5,    ///< unassigned general-purpose workspace
  kScratchSlots = 6
};

/// Return a thread-local float buffer with room for at least `count`
/// elements, growing it if needed. Contents are unspecified (not zeroed);
/// the pointer stays valid until the same slot is requested with a larger
/// count on the same thread.
float* scratch_f32(std::size_t slot, std::size_t count);

/// Byte-typed and s32-typed variants for the int8 quantized path (packed
/// int8 GEMM panels, quantized im2col matrices, s32 accumulators). Each
/// element type owns an independent per-thread pool, so the same slot id
/// can be live in scratch_f32 and scratch_u8 at once — slot ids only
/// collide within one type. Same growth/validity contract as scratch_f32.
std::uint8_t* scratch_u8(std::size_t slot, std::size_t count);
std::int32_t* scratch_i32(std::size_t slot, std::size_t count);

/// Process-wide number of scratch grow events (allocations) since start.
/// Steady-state hot loops must keep this constant — asserted in tests.
std::size_t scratch_grow_count();

}  // namespace hdczsc::tensor
