// Binary tensor / parameter-set serialization for checkpointing trained
// models (e.g., caching the phase-I/II matured image encoder between
// experiments, as the paper reuses its ImageNet-pretrained backbone).
//
// Format: magic "HDCT", u32 version, u32 rank, u64 dims..., f32 data
// (little-endian, the only platform this targets). Parameter sets are a
// count-prefixed sequence of (name, tensor) records.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace hdczsc::tensor::io {

// Shared little-endian stream primitives used by every binary format in the
// repo (tensor records, nn parameter/buffer records, .hdcsnap snapshots) —
// one implementation so the formats cannot drift.

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is, const char* what = "value") {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error(std::string("serialize: truncated reading ") + what);
  return v;
}

void write_string(std::ostream& os, const std::string& s);
std::string read_string(std::istream& is, const char* what = "string");

/// Bounds check a declared element count against what the stream actually
/// holds *before* allocating for it: on a seekable stream, throws
/// std::runtime_error("... truncated ...") unless `count * item_bytes`
/// bytes remain past the current position. Non-seekable streams pass (the
/// subsequent read still fails cleanly on truncation) — but every consumer
/// in the repo (snapshot/tensor files, wire frames via imemstream) is
/// seekable, so a frame that *declares* more data than it carries is
/// rejected up front instead of first allocating gigabytes for it.
void check_readable(std::istream& is, std::uint64_t count, std::size_t item_bytes,
                    const char* what);

}  // namespace hdczsc::tensor::io

namespace hdczsc::tensor {

/// Write one tensor to a stream / file.
void save_tensor(std::ostream& os, const Tensor& t);
void save_tensor_file(const std::string& path, const Tensor& t);

/// Read one tensor back. Throws std::runtime_error on malformed input.
Tensor load_tensor(std::istream& is);
Tensor load_tensor_file(const std::string& path);

}  // namespace hdczsc::tensor
