// Binary tensor / parameter-set serialization for checkpointing trained
// models (e.g., caching the phase-I/II matured image encoder between
// experiments, as the paper reuses its ImageNet-pretrained backbone).
//
// Format: magic "HDCT", u32 version, u32 rank, u64 dims..., f32 data
// (little-endian, the only platform this targets). Parameter sets are a
// count-prefixed sequence of (name, tensor) records.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace hdczsc::tensor {

/// Write one tensor to a stream / file.
void save_tensor(std::ostream& os, const Tensor& t);
void save_tensor_file(const std::string& path, const Tensor& t);

/// Read one tensor back. Throws std::runtime_error on malformed input.
Tensor load_tensor(std::istream& is);
Tensor load_tensor_file(const std::string& path);

}  // namespace hdczsc::tensor
