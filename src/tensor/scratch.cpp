#include "tensor/scratch.hpp"

#include <atomic>
#include <stdexcept>
#include <vector>

namespace hdczsc::tensor {

namespace {
std::atomic<std::size_t> g_grow_count{0};
}  // namespace

namespace {
template <typename T>
T* scratch_impl(std::size_t slot, std::size_t count) {
  if (slot >= kScratchSlots) throw std::out_of_range("scratch: bad slot");
  thread_local std::vector<T> buffers[kScratchSlots];
  std::vector<T>& buf = buffers[slot];
  if (buf.size() < count) {
    buf.resize(count);
    g_grow_count.fetch_add(1, std::memory_order_relaxed);
  }
  return buf.data();
}
}  // namespace

float* scratch_f32(std::size_t slot, std::size_t count) {
  return scratch_impl<float>(slot, count);
}

std::uint8_t* scratch_u8(std::size_t slot, std::size_t count) {
  return scratch_impl<std::uint8_t>(slot, count);
}

std::int32_t* scratch_i32(std::size_t slot, std::size_t count) {
  return scratch_impl<std::int32_t>(slot, count);
}

std::size_t scratch_grow_count() { return g_grow_count.load(std::memory_order_relaxed); }

}  // namespace hdczsc::tensor
