#include "tensor/scratch.hpp"

#include <atomic>
#include <stdexcept>
#include <vector>

namespace hdczsc::tensor {

namespace {
std::atomic<std::size_t> g_grow_count{0};
}  // namespace

float* scratch_f32(std::size_t slot, std::size_t count) {
  if (slot >= kScratchSlots) throw std::out_of_range("scratch_f32: bad slot");
  thread_local std::vector<float> buffers[kScratchSlots];
  std::vector<float>& buf = buffers[slot];
  if (buf.size() < count) {
    buf.resize(count);
    g_grow_count.fetch_add(1, std::memory_order_relaxed);
  }
  return buf.data();
}

std::size_t scratch_grow_count() { return g_grow_count.load(std::memory_order_relaxed); }

}  // namespace hdczsc::tensor
