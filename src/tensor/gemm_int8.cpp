#include "tensor/gemm_int8.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "obs/metrics.hpp"
#include "tensor/scratch.hpp"
#include "util/parallel.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HDCZSC_GEMM_INT8_X86 1
#include <immintrin.h>
#endif

namespace hdczsc::tensor {

namespace {

obs::Histogram* gemm_int8_hist() {
  static const std::shared_ptr<obs::Histogram> h = obs::default_registry().histogram(
      "tensor_gemm_int8_ms", {}, "wall time of one gemm_s8u8_accumulate call");
  return h.get();
}

// Cache blocking: bytes are a quarter of floats, so KC runs twice as deep as
// the float core's while an MC x KC packed A block still stays well inside
// L2; NC keeps one (jc, ic) task a meaty parallel unit. KC is a multiple of
// 4 so only the final k-block ever carries a ragged quad.
constexpr std::size_t kMC = 256;
constexpr std::size_t kKC = 512;
constexpr std::size_t kNC = 2048;

// Below this flop count the plain triple loop wins: packing + dispatch cost
// more than they save.
constexpr std::size_t kNaiveCutoff = 32 * 32 * 32;

/// Pack A[ic:ic+mc, pc:pc+kc] into MR-tall panels of k-quads: within a
/// panel, quad g holds rows' bytes [i][4g..4g+3] contiguously per row —
/// the 4-byte broadcast unit of the micro-kernels. Ragged rows and the
/// ragged final quad are zero-filled (zero *weights*, so padded lanes
/// contribute exactly 0 regardless of the activation bytes against them).
void pack_a(const std::int8_t* A, std::size_t lda, std::size_t ic, std::size_t pc,
            std::size_t mc, std::size_t kc, std::size_t mr_tile, std::int8_t* buf) {
  const std::size_t full_g = kc / 4;  // quads with all four k-values in range
  const std::size_t kg = (kc + 3) / 4;
  for (std::size_t ir = 0; ir < mc; ir += mr_tile) {
    const std::size_t mr = std::min(mr_tile, mc - ir);
    const std::int8_t* base = A + (ic + ir) * lda + pc;
    for (std::size_t g = 0; g < full_g; ++g) {
      for (std::size_t i = 0; i < mr; ++i) {
        std::memcpy(buf, base + i * lda + 4 * g, 4);
        buf += 4;
      }
      for (std::size_t i = mr; i < mr_tile; ++i) {
        std::memset(buf, 0, 4);
        buf += 4;
      }
    }
    if (full_g < kg) {  // ragged final quad, zero-padded past kc
      for (std::size_t i = 0; i < mr_tile; ++i) {
        for (std::size_t b = 0; b < 4; ++b) {
          const std::size_t p = 4 * full_g + b;
          *buf++ = (i < mr && p < kc) ? base[i * lda + p] : std::int8_t{0};
        }
      }
    }
  }
}

/// Pack B[pc:pc+kc, jc:jc+nc] into NR-wide panels of k-quads: within a
/// panel, quad g holds each column j's bytes [4g..4g+3][j] contiguously —
/// the layout vpmaddubsw/vpdpbusd consume directly. Ragged columns and the
/// final quad are zero-filled (they only ever meet zero-padded A rows or
/// are masked by the ragged-tile store).
void pack_b(const std::uint8_t* B, std::size_t ldb, std::size_t pc, std::size_t jc,
            std::size_t kc, std::size_t nc, std::size_t nr_tile, std::uint8_t* buf) {
  const std::size_t full_g = kc / 4;
  const std::size_t kg = (kc + 3) / 4;
  for (std::size_t jr = 0; jr < nc; jr += nr_tile) {
    const std::size_t nr = std::min(nr_tile, nc - jr);
    const std::uint8_t* col0 = B + pc * ldb + jc + jr;
    for (std::size_t g = 0; g < full_g; ++g) {
      // Four consecutive B rows interleaved column-by-column: each j emits
      // the k-quad [r0[j], r1[j], r2[j], r3[j]] the SIMD kernels consume.
      const std::uint8_t* r0 = col0 + 4 * g * ldb;
      const std::uint8_t* r1 = r0 + ldb;
      const std::uint8_t* r2 = r1 + ldb;
      const std::uint8_t* r3 = r2 + ldb;
      for (std::size_t j = 0; j < nr; ++j) {
        buf[0] = r0[j];
        buf[1] = r1[j];
        buf[2] = r2[j];
        buf[3] = r3[j];
        buf += 4;
      }
      for (std::size_t j = nr; j < nr_tile; ++j) {
        std::memset(buf, 0, 4);
        buf += 4;
      }
    }
    if (full_g < kg) {
      for (std::size_t j = 0; j < nr_tile; ++j) {
        for (std::size_t b = 0; b < 4; ++b) {
          const std::size_t p = 4 * full_g + b;
          *buf++ = (j < nr && p < kc) ? col0[p * ldb + j] : std::uint8_t{0};
        }
      }
    }
  }
}

using MacroKernelFn = void (*)(const std::int8_t* apack, const std::uint8_t* bpack,
                               std::size_t mc, std::size_t nc, std::size_t kg, std::int32_t* C,
                               std::size_t ldc);

// ---------------------------------------------------------------------------
// Portable micro-kernel: 4x8 tile over the shared k-quad panel layout. Plain
// int loops — the compiler widens to whatever the baseline target offers.
// ---------------------------------------------------------------------------

void micro_portable(const std::int8_t* a, const std::uint8_t* b, std::size_t kg,
                    std::int32_t* C, std::size_t ldc, std::size_t mr, std::size_t nr) {
  constexpr std::size_t MR = 4, NR = 8;
  std::int32_t acc[MR][NR] = {};
  for (std::size_t g = 0; g < kg; ++g) {
    for (std::size_t i = 0; i < MR; ++i) {
      const std::int8_t* av = a + 4 * i;
      for (std::size_t j = 0; j < NR; ++j) {
        const std::uint8_t* bv = b + 4 * j;
        acc[i][j] += static_cast<std::int32_t>(av[0]) * bv[0] +
                     static_cast<std::int32_t>(av[1]) * bv[1] +
                     static_cast<std::int32_t>(av[2]) * bv[2] +
                     static_cast<std::int32_t>(av[3]) * bv[3];
      }
    }
    a += MR * 4;
    b += NR * 4;
  }
  for (std::size_t i = 0; i < mr; ++i)
    for (std::size_t j = 0; j < nr; ++j) C[i * ldc + j] += acc[i][j];
}

void macro_portable(const std::int8_t* apack, const std::uint8_t* bpack, std::size_t mc,
                    std::size_t nc, std::size_t kg, std::int32_t* C, std::size_t ldc) {
  constexpr std::size_t MR = 4, NR = 8;
  for (std::size_t jr = 0; jr < nc; jr += NR) {
    const std::size_t nr = std::min(NR, nc - jr);
    const std::uint8_t* bp = bpack + (jr / NR) * (kg * 4 * NR);
    for (std::size_t ir = 0; ir < mc; ir += MR) {
      const std::size_t mr = std::min(MR, mc - ir);
      const std::int8_t* ap = apack + (ir / MR) * (kg * 4 * MR);
      micro_portable(ap, bp, kg, C + ir * ldc + jr, ldc, mr, nr);
    }
  }
}

#if defined(HDCZSC_GEMM_INT8_X86)

// ---------------------------------------------------------------------------
// AVX2 micro-kernel: 4x16 tile, 8 ymm s32 accumulators. Per k-quad and
// 8-column vector: vpmaddubsw(activations_u8, weights_s8_broadcast) sums
// byte pairs into s16 (safe from saturation by the |A| <= 64 contract),
// vpmaddwd against ones folds the two pair sums into one s32 per column,
// vpaddd accumulates — 32 MACs per three ALU ops vs the float FMA's 8.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i bcast_quad(const std::int8_t* p) {
  std::int32_t w;
  std::memcpy(&w, p, 4);
  return _mm256_set1_epi32(w);
}

__attribute__((target("avx2"))) void micro_avx2(const std::int8_t* a, const std::uint8_t* b,
                                                std::size_t kg, std::int32_t* C,
                                                std::size_t ldc, std::size_t mr,
                                                std::size_t nr) {
  constexpr std::size_t MR = 4, NR = 16;
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i acc[MR][2];
  for (std::size_t i = 0; i < MR; ++i) acc[i][0] = acc[i][1] = _mm256_setzero_si256();
  for (std::size_t g = 0; g < kg; ++g) {
    const __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
    const __m256i b1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + 32));
    for (std::size_t i = 0; i < MR; ++i) {
      const __m256i av = bcast_quad(a + 4 * i);
      acc[i][0] = _mm256_add_epi32(
          acc[i][0], _mm256_madd_epi16(_mm256_maddubs_epi16(b0, av), ones));
      acc[i][1] = _mm256_add_epi32(
          acc[i][1], _mm256_madd_epi16(_mm256_maddubs_epi16(b1, av), ones));
    }
    a += MR * 4;
    b += NR * 4;
  }
  if (mr == MR && nr == NR) {
    for (std::size_t i = 0; i < MR; ++i) {
      std::int32_t* crow = C + i * ldc;
      __m256i c0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(crow));
      __m256i c1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(crow + 8));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow), _mm256_add_epi32(c0, acc[i][0]));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + 8),
                          _mm256_add_epi32(c1, acc[i][1]));
    }
  } else {
    alignas(32) std::int32_t tmp[MR][NR];
    for (std::size_t i = 0; i < MR; ++i) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(&tmp[i][0]), acc[i][0]);
      _mm256_store_si256(reinterpret_cast<__m256i*>(&tmp[i][8]), acc[i][1]);
    }
    for (std::size_t i = 0; i < mr; ++i)
      for (std::size_t j = 0; j < nr; ++j) C[i * ldc + j] += tmp[i][j];
  }
}

__attribute__((target("avx2"))) void macro_avx2(const std::int8_t* apack,
                                               const std::uint8_t* bpack, std::size_t mc,
                                               std::size_t nc, std::size_t kg, std::int32_t* C,
                                               std::size_t ldc) {
  constexpr std::size_t MR = 4, NR = 16;
  for (std::size_t jr = 0; jr < nc; jr += NR) {
    const std::size_t nr = std::min(NR, nc - jr);
    const std::uint8_t* bp = bpack + (jr / NR) * (kg * 4 * NR);
    for (std::size_t ir = 0; ir < mc; ir += MR) {
      const std::size_t mr = std::min(MR, mc - ir);
      const std::int8_t* ap = apack + (ir / MR) * (kg * 4 * MR);
      micro_avx2(ap, bp, kg, C + ir * ldc + jr, ldc, mr, nr);
    }
  }
}

// ---------------------------------------------------------------------------
// AVX-512 VNNI micro-kernel: 4x32 tile, 8 zmm s32 accumulators. vpdpbusd
// fuses the whole u8·s8 k-quad dot product into the accumulator — 64 MACs
// per instruction, no s16 intermediate at all.
// ---------------------------------------------------------------------------

#define HDCZSC_VNNI_TARGET "avx512f,avx512bw,avx512vl,avx512vnni"

__attribute__((target(HDCZSC_VNNI_TARGET))) void micro_vnni(const std::int8_t* a,
                                                            const std::uint8_t* b,
                                                            std::size_t kg, std::int32_t* C,
                                                            std::size_t ldc, std::size_t mr,
                                                            std::size_t nr) {
  constexpr std::size_t MR = 4, NR = 32;
  __m512i acc[MR][2];
  for (std::size_t i = 0; i < MR; ++i) acc[i][0] = acc[i][1] = _mm512_setzero_si512();
  for (std::size_t g = 0; g < kg; ++g) {
    const __m512i b0 = _mm512_loadu_si512(b);
    const __m512i b1 = _mm512_loadu_si512(b + 64);
    for (std::size_t i = 0; i < MR; ++i) {
      std::int32_t w;
      std::memcpy(&w, a + 4 * i, 4);
      const __m512i av = _mm512_set1_epi32(w);
      acc[i][0] = _mm512_dpbusd_epi32(acc[i][0], b0, av);
      acc[i][1] = _mm512_dpbusd_epi32(acc[i][1], b1, av);
    }
    a += MR * 4;
    b += NR * 4;
  }
  if (mr == MR && nr == NR) {
    for (std::size_t i = 0; i < MR; ++i) {
      std::int32_t* crow = C + i * ldc;
      _mm512_storeu_si512(crow, _mm512_add_epi32(_mm512_loadu_si512(crow), acc[i][0]));
      _mm512_storeu_si512(crow + 16,
                          _mm512_add_epi32(_mm512_loadu_si512(crow + 16), acc[i][1]));
    }
  } else {
    alignas(64) std::int32_t tmp[MR][NR];
    for (std::size_t i = 0; i < MR; ++i) {
      _mm512_store_si512(&tmp[i][0], acc[i][0]);
      _mm512_store_si512(&tmp[i][16], acc[i][1]);
    }
    for (std::size_t i = 0; i < mr; ++i)
      for (std::size_t j = 0; j < nr; ++j) C[i * ldc + j] += tmp[i][j];
  }
}

__attribute__((target(HDCZSC_VNNI_TARGET))) void macro_vnni(const std::int8_t* apack,
                                                            const std::uint8_t* bpack,
                                                            std::size_t mc, std::size_t nc,
                                                            std::size_t kg, std::int32_t* C,
                                                            std::size_t ldc) {
  constexpr std::size_t MR = 4, NR = 32;
  for (std::size_t jr = 0; jr < nc; jr += NR) {
    const std::size_t nr = std::min(NR, nc - jr);
    const std::uint8_t* bp = bpack + (jr / NR) * (kg * 4 * NR);
    for (std::size_t ir = 0; ir < mc; ir += MR) {
      const std::size_t mr = std::min(MR, mc - ir);
      const std::int8_t* ap = apack + (ir / MR) * (kg * 4 * MR);
      micro_vnni(ap, bp, kg, C + ir * ldc + jr, ldc, mr, nr);
    }
  }
}

#endif  // HDCZSC_GEMM_INT8_X86

struct KernelConfig {
  std::size_t mr, nr;
  MacroKernelFn macro;
  const char* name;
};

constexpr KernelConfig kPortable{4, 8, macro_portable, "portable"};
#if defined(HDCZSC_GEMM_INT8_X86)
constexpr KernelConfig kAvx2{4, 16, macro_avx2, "avx2"};
constexpr KernelConfig kVnni{4, 32, macro_vnni, "avx512vnni"};

bool cpu_supports(const KernelConfig& cfg) {
  __builtin_cpu_init();
  if (cfg.macro == macro_avx2) return __builtin_cpu_supports("avx2");
  if (cfg.macro == macro_vnni)
    return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
           __builtin_cpu_supports("avx512vl") && __builtin_cpu_supports("avx512vnni");
  return true;
}
#else
bool cpu_supports(const KernelConfig& cfg) { return cfg.macro == macro_portable; }
#endif

const KernelConfig* detect_kernel() {
#if defined(HDCZSC_GEMM_INT8_X86)
  if (cpu_supports(kVnni)) return &kVnni;
  if (cpu_supports(kAvx2)) return &kAvx2;
#endif
  return &kPortable;
}

std::atomic<const KernelConfig*>& active_kernel() {
  static std::atomic<const KernelConfig*> active{detect_kernel()};
  return active;
}

}  // namespace

const char* gemm_int8_kernel_name() { return active_kernel().load()->name; }

bool gemm_int8_force_kernel(const char* name) {
  if (name == nullptr || std::strcmp(name, "auto") == 0) {
    active_kernel().store(detect_kernel());
    return true;
  }
  const KernelConfig* candidates[] = {
    &kPortable,
#if defined(HDCZSC_GEMM_INT8_X86)
    &kAvx2,
    &kVnni,
#endif
  };
  for (const KernelConfig* cfg : candidates) {
    if (std::strcmp(name, cfg->name) == 0 && cpu_supports(*cfg)) {
      active_kernel().store(cfg);
      return true;
    }
  }
  return false;
}

void gemm_s32_naive(std::size_t m, std::size_t n, std::size_t k, const std::int8_t* A,
                    std::size_t lda, const std::uint8_t* B, std::size_t ldb, std::int32_t* C,
                    std::size_t ldc) {
  if (m == 0 || n == 0 || k == 0) return;
  // i-k-j: unit stride over B and C rows, mirroring the float gemm_naive.
  for (std::size_t i = 0; i < m; ++i) {
    std::int32_t* crow = C + i * ldc;
    const std::int8_t* arow = A + i * lda;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const std::int32_t av = arow[kk];
      if (av == 0) continue;
      const std::uint8_t* brow = B + kk * ldb;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * static_cast<std::int32_t>(brow[j]);
    }
  }
}

void gemm_s8u8_accumulate(std::size_t m, std::size_t n, std::size_t k, const std::int8_t* A,
                          std::size_t lda, const std::uint8_t* B, std::size_t ldb,
                          std::int32_t* C, std::size_t ldc) {
  if (m == 0 || n == 0 || k == 0) return;
  const obs::ScopedTimer profile(gemm_int8_hist());
  if (m * n * k < kNaiveCutoff) {
    gemm_s32_naive(m, n, k, A, lda, B, ldb, C, ldc);
    return;
  }
  const KernelConfig& cfg = *active_kernel().load();
  // Same worker-aware row-block shrink as the float core: split rows only as
  // far as the pool can use, never below two tile rows.
  std::size_t mc_blk = kMC;
  const std::size_t workers = util::worker_count();
  if (workers > 1) {
    const std::size_t jblocks = (n + kNC - 1) / kNC;
    const std::size_t want_iblocks = (workers + jblocks - 1) / jblocks;
    if (want_iblocks > 1) {
      std::size_t per = (m + want_iblocks - 1) / want_iblocks;
      per = std::max(per, 2 * cfg.mr);
      mc_blk = std::min(kMC, (per + cfg.mr - 1) / cfg.mr * cfg.mr);
    }
  }
  const std::size_t n_iblocks = (m + mc_blk - 1) / mc_blk;
  const std::size_t n_jblocks = (n + kNC - 1) / kNC;

  util::parallel_for(0, n_iblocks * n_jblocks, [&](std::size_t task) {
    const std::size_t ic = (task % n_iblocks) * mc_blk;
    const std::size_t jc = (task / n_iblocks) * kNC;
    const std::size_t mc = std::min(mc_blk, m - ic);
    const std::size_t nc = std::min(kNC, n - jc);
    const std::size_t mc_padded = (mc + cfg.mr - 1) / cfg.mr * cfg.mr;
    const std::size_t nc_padded = (nc + cfg.nr - 1) / cfg.nr * cfg.nr;
    auto* apack =
        reinterpret_cast<std::int8_t*>(scratch_u8(kScratchGemmPackA, mc_padded * kKC));
    std::uint8_t* bpack = scratch_u8(kScratchGemmPackB, nc_padded * kKC);
    for (std::size_t pc = 0; pc < k; pc += kKC) {
      const std::size_t kc = std::min(kKC, k - pc);
      const std::size_t kg = (kc + 3) / 4;
      pack_b(B, ldb, pc, jc, kc, nc, cfg.nr, bpack);
      pack_a(A, lda, ic, pc, mc, kc, cfg.mr, apack);
      cfg.macro(apack, bpack, mc, nc, kg, C + ic * ldc + jc, ldc);
    }
  }, 1);
}

}  // namespace hdczsc::tensor
