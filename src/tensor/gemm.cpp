#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstddef>

#include "obs/metrics.hpp"
#include "tensor/scratch.hpp"
#include "util/parallel.hpp"

namespace hdczsc::tensor {

namespace {

/// Profiling hook (obs::set_profiling_enabled): wall time of each top-level
/// gemm_accumulate call. Magic static — one pointer load per call; with
/// profiling off the ScopedTimer reads no clock.
obs::Histogram* gemm_hist() {
  static const std::shared_ptr<obs::Histogram> h = obs::default_registry().histogram(
      "tensor_gemm_ms", {}, "wall time of one gemm_accumulate call");
  return h.get();
}

// Cache blocking: an MC x KC packed A block (~128 KiB) stays L2-resident
// while a KC x NC packed B block streams through; KC deep enough to amortize
// the C-tile load/store in the micro-kernel, NC sized so one (jc, ic) task is
// meaty enough to be a parallel work unit on its own.
constexpr std::size_t kMC = 128;
constexpr std::size_t kKC = 256;
constexpr std::size_t kNC = 1024;

// Problems below this flop count run the plain triple loop: packing plus
// dispatch costs more than it saves (gradcheck-sized matmuls, tiny convs).
constexpr std::size_t kNaiveCutoff = 32 * 32 * 32;

/// Logical element (i, p) of op(A) for either transpose state.
inline float at(const float* M, std::size_t ld, Trans t, std::size_t i, std::size_t p) {
  return t == Trans::N ? M[i * ld + p] : M[p * ld + i];
}

/// Pack op(A)[ic:ic+mc, pc:pc+kc] into MR-tall panels, k-major within each
/// panel; ragged bottom rows are zero-filled so the micro-kernel always runs
/// a full MR x NR tile.
void pack_a(const float* A, std::size_t lda, Trans ta, std::size_t ic, std::size_t pc,
            std::size_t mc, std::size_t kc, std::size_t mr_tile, float* buf) {
  for (std::size_t ir = 0; ir < mc; ir += mr_tile) {
    const std::size_t mr = std::min(mr_tile, mc - ir);
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t i = 0; i < mr; ++i) *buf++ = at(A, lda, ta, ic + ir + i, pc + p);
      for (std::size_t i = mr; i < mr_tile; ++i) *buf++ = 0.0f;
    }
  }
}

/// Pack op(B)[pc:pc+kc, jc:jc+nc] into NR-wide panels, k-major within each
/// panel; ragged right columns are zero-filled.
void pack_b(const float* B, std::size_t ldb, Trans tb, std::size_t pc, std::size_t jc,
            std::size_t kc, std::size_t nc, std::size_t nr_tile, float* buf) {
  for (std::size_t jr = 0; jr < nc; jr += nr_tile) {
    const std::size_t nr = std::min(nr_tile, nc - jr);
    if (tb == Trans::N) {
      for (std::size_t p = 0; p < kc; ++p) {
        const float* brow = B + (pc + p) * ldb + jc + jr;
        for (std::size_t j = 0; j < nr; ++j) *buf++ = brow[j];
        for (std::size_t j = nr; j < nr_tile; ++j) *buf++ = 0.0f;
      }
    } else {
      for (std::size_t p = 0; p < kc; ++p) {
        for (std::size_t j = 0; j < nr; ++j) *buf++ = B[(jc + jr + j) * ldb + pc + p];
        for (std::size_t j = nr; j < nr_tile; ++j) *buf++ = 0.0f;
      }
    }
  }
}

using MacroKernelFn = void (*)(const float* apack, const float* bpack, std::size_t mc,
                               std::size_t nc, std::size_t kc, float* C, std::size_t ldc);

// One micro + macro kernel pair per ISA. The micro-kernel keeps an MR x NR
// accumulator block in registers across the whole KC depth; the loops are
// plain counted loops over contiguous packed panels, which every supported
// compiler turns into broadcast-FMA vector code for the annotated target.
// Tile shapes are per-ISA: they are chosen so the accumulator block fills
// (but does not spill) that ISA's vector register file.
#define HDCZSC_DEFINE_GEMM_KERNEL(suffix, attrs, MR_, NR_)                                \
  attrs static void micro_##suffix(const float* a, const float* b, std::size_t kc,        \
                                   float* C, std::size_t ldc, std::size_t mr,             \
                                   std::size_t nr) {                                      \
    constexpr std::size_t MR = (MR_), NR = (NR_);                                         \
    float acc[MR][NR] = {};                                                               \
    for (std::size_t p = 0; p < kc; ++p) {                                                \
      for (std::size_t i = 0; i < MR; ++i) {                                              \
        const float av = a[i];                                                            \
        for (std::size_t j = 0; j < NR; ++j) acc[i][j] += av * b[j];                      \
      }                                                                                   \
      a += MR;                                                                            \
      b += NR;                                                                            \
    }                                                                                     \
    if (mr == MR && nr == NR) {                                                           \
      for (std::size_t i = 0; i < MR; ++i)                                                \
        for (std::size_t j = 0; j < NR; ++j) C[i * ldc + j] += acc[i][j];                 \
    } else {                                                                              \
      for (std::size_t i = 0; i < mr; ++i)                                                \
        for (std::size_t j = 0; j < nr; ++j) C[i * ldc + j] += acc[i][j];                 \
    }                                                                                     \
  }                                                                                       \
  attrs static void macro_##suffix(const float* apack, const float* bpack, std::size_t mc, \
                                   std::size_t nc, std::size_t kc, float* C,              \
                                   std::size_t ldc) {                                     \
    constexpr std::size_t MR = (MR_), NR = (NR_);                                         \
    for (std::size_t jr = 0; jr < nc; jr += NR) {                                         \
      const std::size_t nr = std::min(NR, nc - jr);                                       \
      const float* bp = bpack + (jr / NR) * (kc * NR);                                    \
      for (std::size_t ir = 0; ir < mc; ir += MR) {                                       \
        const std::size_t mr = std::min(MR, mc - ir);                                     \
        const float* ap = apack + (ir / MR) * (kc * MR);                                  \
        micro_##suffix(ap, bp, kc, C + ir * ldc + jr + 0, ldc, mr, nr);                   \
      }                                                                                   \
    }                                                                                     \
  }

// Portable variant: no target annotation, vectorized for whatever the build
// targets (baseline SSE2 on x86-64). 4x24 measured ~2x the naive loop there.
HDCZSC_DEFINE_GEMM_KERNEL(portable, , 4, 24)

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HDCZSC_GEMM_X86_DISPATCH 1
// AVX2: 4x24 = 12 ymm accumulators + broadcast + B loads stays in 16 regs.
HDCZSC_DEFINE_GEMM_KERNEL(avx2, __attribute__((target("avx2,fma"))), 4, 24)
// AVX-512: 8x32 = 16 zmm accumulators, deep enough to hide FMA latency.
HDCZSC_DEFINE_GEMM_KERNEL(avx512,
                          __attribute__((target("avx512f,avx512dq,avx512bw,avx512vl,fma"))), 8,
                          32)
#endif

struct KernelConfig {
  std::size_t mr, nr;
  MacroKernelFn macro;
  const char* name;
};

KernelConfig pick_kernel() {
#if defined(HDCZSC_GEMM_X86_DISPATCH)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512bw") && __builtin_cpu_supports("avx512vl") &&
      __builtin_cpu_supports("fma"))
    return {8, 32, macro_avx512, "avx512"};
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return {4, 24, macro_avx2, "avx2"};
#endif
  return {4, 24, macro_portable, "portable"};
}

const KernelConfig& kernel() {
  static const KernelConfig cfg = pick_kernel();
  return cfg;
}

}  // namespace

const char* gemm_kernel_name() { return kernel().name; }

void gemm_naive(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k, const float* A,
                std::size_t lda, const float* B, std::size_t ldb, float* C, std::size_t ldc) {
  if (m == 0 || n == 0 || k == 0) return;  // degenerate: C += op(A)*op(B) is a no-op
  if (ta == Trans::N && tb == Trans::N) {
    // i-k-j: unit stride over B and C rows (the seed matmul loop).
    for (std::size_t i = 0; i < m; ++i) {
      float* crow = C + i * ldc;
      const float* arow = A + i * lda;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        if (av == 0.0f) continue;
        const float* brow = B + kk * ldb;
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else if (ta == Trans::N && tb == Trans::T) {
    // Row-row dot products (the seed matmul_nt loop).
    for (std::size_t i = 0; i < m; ++i) {
      const float* arow = A + i * lda;
      float* crow = C + i * ldc;
      for (std::size_t j = 0; j < n; ++j) {
        const float* brow = B + j * ldb;
        double acc = 0.0;
        for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        crow[j] += static_cast<float>(acc);
      }
    }
  } else if (ta == Trans::T && tb == Trans::N) {
    // k-outer: unit stride over A rows, B rows and C rows (the seed
    // matmul_tn loop).
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float* arow = A + kk * lda;
      const float* brow = B + kk * ldb;
      for (std::size_t i = 0; i < m; ++i) {
        const float av = arow[i];
        if (av == 0.0f) continue;
        float* crow = C + i * ldc;
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else {  // T x T
    for (std::size_t i = 0; i < m; ++i) {
      float* crow = C + i * ldc;
      for (std::size_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (std::size_t kk = 0; kk < k; ++kk) acc += A[kk * lda + i] * B[j * ldb + kk];
        crow[j] += static_cast<float>(acc);
      }
    }
  }
}

void gemm_accumulate(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
                     const float* A, std::size_t lda, const float* B, std::size_t ldb, float* C,
                     std::size_t ldc) {
  if (m == 0 || n == 0 || k == 0) return;
  const obs::ScopedTimer profile(gemm_hist());
  if (m * n * k < kNaiveCutoff) {
    gemm_naive(ta, tb, m, n, k, A, lda, B, ldb, C, ldc);
    return;
  }
  const KernelConfig& cfg = kernel();
  // Shrink the row-block height when the (jc, ic) grid alone would leave
  // workers idle (e.g. Linear layers: m = batch <= 128, n <= 1024 is a
  // single MC x NC block). Extra row blocks re-pack B redundantly, so only
  // split as far as the pool can use, never below two tile rows.
  std::size_t mc_blk = kMC;
  const std::size_t workers = util::worker_count();
  if (workers > 1) {
    const std::size_t jblocks = (n + kNC - 1) / kNC;
    const std::size_t want_iblocks = (workers + jblocks - 1) / jblocks;
    if (want_iblocks > 1) {
      std::size_t per = (m + want_iblocks - 1) / want_iblocks;
      per = std::max(per, 2 * cfg.mr);
      mc_blk = std::min(kMC, (per + cfg.mr - 1) / cfg.mr * cfg.mr);
    }
  }
  const std::size_t n_iblocks = (m + mc_blk - 1) / mc_blk;
  const std::size_t n_jblocks = (n + kNC - 1) / kNC;

  // Flattened (jc, ic) task grid: every task packs its own panels into
  // thread-local scratch, so workers never share pack buffers. B sub-panels
  // are re-packed once per row block of the same column block — redundant
  // work that is O(k*n) against the O(m*n*k) compute it unlocks.
  util::parallel_for(0, n_iblocks * n_jblocks, [&](std::size_t task) {
    const std::size_t ic = (task % n_iblocks) * mc_blk;
    const std::size_t jc = (task / n_iblocks) * kNC;
    const std::size_t mc = std::min(mc_blk, m - ic);
    const std::size_t nc = std::min(kNC, n - jc);
    const std::size_t mc_padded = (mc + cfg.mr - 1) / cfg.mr * cfg.mr;
    const std::size_t nc_padded = (nc + cfg.nr - 1) / cfg.nr * cfg.nr;
    float* apack = scratch_f32(kScratchGemmPackA, mc_padded * kKC);
    float* bpack = scratch_f32(kScratchGemmPackB, nc_padded * kKC);
    for (std::size_t pc = 0; pc < k; pc += kKC) {
      const std::size_t kc = std::min(kKC, k - pc);
      pack_b(B, ldb, tb, pc, jc, kc, nc, cfg.nr, bpack);
      pack_a(A, lda, ta, ic, pc, mc, kc, cfg.mr, apack);
      cfg.macro(apack, bpack, mc, nc, kc, C + ic * ldc + jc, ldc);
    }
  }, 1);
}

}  // namespace hdczsc::tensor
