// Cache-blocked integer GEMM over raw row-major buffers: the u8×s8→s32
// compute core of the quantized backbone (nn/quant.hpp).
//
// Same three-level blocking scheme as the float core (gemm.hpp) — packed
// MR-tall A panels, NR-wide B panels, a register-tiled micro-kernel down the
// shared KC depth, thread-local pack scratch, flattened (jc, ic) task grid
// over util::parallel_for — but the panels are packed in groups of four
// k-values so one SIMD instruction consumes a whole k-quad:
//
//   * AVX2:        vpmaddubsw (u8×s8 → s16 pair sums) + vpmaddwd against
//                  ones + vpaddd — 32 MACs per three instructions,
//   * AVX-512 VNNI: vpdpbusd — 64 MACs per single instruction,
//   * portable:    plain int loops over the same k-quad panel layout.
//
// The kernels are stamped per ISA with __attribute__((target)) and the best
// variant the CPU supports is picked once at runtime, exactly like the float
// dispatch. Unlike the float core the micro-kernels use intrinsics: the
// whole point of int8 is vpmaddubsw/vpdpbusd, which no compiler autovectorizes
// from scalar loops.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hdczsc::tensor {

/// C[m,n] (s32) += A[m,k] (s8) * B[k,n] (u8). Dense row-major with explicit
/// leading dimensions; accumulates into C (callers wanting C = A*B zero C
/// first). Integer accumulation is exact — every ISA path returns
/// bit-identical results, asserted against gemm_s32_naive in tests.
///
/// Contract: A values must lie in [-64, 63]. The quantizer emits symmetric
/// ±63 weight codes (nn/quant.hpp) precisely so the AVX2 vpmaddubsw pair sum
/// — at most 2·255·64 = 32640 in magnitude — cannot saturate its s16
/// intermediate; with that range every path computes the same exact s32.
/// B is the full [0, 255] activation range. Degenerate shapes (m, n or
/// k == 0) return immediately without touching scratch or packing.
void gemm_s8u8_accumulate(std::size_t m, std::size_t n, std::size_t k, const std::int8_t* A,
                          std::size_t lda, const std::uint8_t* B, std::size_t ldb,
                          std::int32_t* C, std::size_t ldc);

/// Reference implementation with the same contract (triple loop, no packing,
/// no threading, no range requirement on A). Kept for equivalence tests and
/// speedup benchmarks.
void gemm_s32_naive(std::size_t m, std::size_t n, std::size_t k, const std::int8_t* A,
                    std::size_t lda, const std::uint8_t* B, std::size_t ldb, std::int32_t* C,
                    std::size_t ldc);

/// Name of the active int8 micro-kernel ("avx512vnni" / "avx2" /
/// "portable") — surfaced in benches and logs.
const char* gemm_int8_kernel_name();

/// Pin the active kernel by name ("portable" / "avx2" / "avx512vnni"), or
/// restore runtime auto-detection with "auto" / nullptr. Returns false —
/// leaving the active kernel unchanged — when this CPU cannot run the named
/// variant. Test/bench hook: lets one machine exercise every path it
/// supports and compare each against gemm_s32_naive.
bool gemm_int8_force_kernel(const char* name);

}  // namespace hdczsc::tensor
