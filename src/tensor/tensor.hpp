// A minimal dense float32 tensor with value-style API and shared storage.
//
// Design notes:
//  * Storage is contiguous row-major; `reshape` returns a view sharing the
//    same buffer, `clone` deep-copies.
//  * Copying a Tensor is cheap (shared_ptr bump); mutation through any copy
//    is visible to all copies — call clone() when isolation is needed.
//    This mirrors the semantics of the frameworks the paper's code uses.
//  * All shape errors throw std::invalid_argument with a diagnostic message.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace hdczsc::tensor {

using Shape = std::vector<std::size_t>;

/// Render a shape as "[2, 3, 4]" for error messages.
std::string shape_str(const Shape& s);

class Tensor {
 public:
  /// Empty tensor (numel == 0, dim == 0).
  Tensor() : storage_(std::make_shared<std::vector<float>>()) {}

  /// Uninitialized-to-zero tensor of the given shape.
  explicit Tensor(Shape shape);
  Tensor(Shape shape, float fill);
  /// From explicit values (size must match shape product).
  Tensor(Shape shape, std::vector<float> values);

  // -- factories ------------------------------------------------------------
  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  /// i.i.d. N(mean, stddev^2).
  static Tensor randn(Shape shape, util::Rng& rng, float mean = 0.0f, float stddev = 1.0f);
  /// i.i.d. U[lo, hi).
  static Tensor rand_uniform(Shape shape, util::Rng& rng, float lo = 0.0f, float hi = 1.0f);
  /// i.i.d. Rademacher (+1/-1).
  static Tensor rademacher(Shape shape, util::Rng& rng);
  /// Identity matrix [n, n].
  static Tensor eye(std::size_t n);
  /// 1-D tensor from values.
  static Tensor from_vector(std::vector<float> values);

  // -- shape ----------------------------------------------------------------
  const Shape& shape() const { return shape_; }
  std::size_t dim() const { return shape_.size(); }
  std::size_t size(std::size_t axis) const;
  std::size_t numel() const { return numel_; }
  bool empty() const { return numel_ == 0; }

  /// View with a new shape (same storage; product must match numel).
  /// A single `-1`-like wildcard is not supported; shapes are explicit.
  Tensor reshape(Shape new_shape) const;
  /// Deep copy.
  Tensor clone() const;
  /// Whether two tensors share storage.
  bool shares_storage(const Tensor& other) const { return storage_ == other.storage_; }

  // -- element access -------------------------------------------------------
  float* data() { return storage_->data(); }
  const float* data() const { return storage_->data(); }

  float& operator[](std::size_t i) { return (*storage_)[i]; }
  float operator[](std::size_t i) const { return (*storage_)[i]; }

  /// Bounds-checked multi-index access (up to 4 indices).
  float& at(std::size_t i);
  float& at(std::size_t i, std::size_t j);
  float& at(std::size_t i, std::size_t j, std::size_t k);
  float& at(std::size_t i, std::size_t j, std::size_t k, std::size_t l);
  float at(std::size_t i) const { return const_cast<Tensor*>(this)->at(i); }
  float at(std::size_t i, std::size_t j) const { return const_cast<Tensor*>(this)->at(i, j); }
  float at(std::size_t i, std::size_t j, std::size_t k) const {
    return const_cast<Tensor*>(this)->at(i, j, k);
  }
  float at(std::size_t i, std::size_t j, std::size_t k, std::size_t l) const {
    return const_cast<Tensor*>(this)->at(i, j, k, l);
  }

  // -- in-place helpers -------------------------------------------------------
  void fill(float v);
  void zero() { fill(0.0f); }
  /// this += alpha * other (shapes must match).
  void add_scaled(const Tensor& other, float alpha);
  /// this *= alpha.
  void scale(float alpha);

  // -- reductions -------------------------------------------------------------
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  /// L2 norm of the flattened tensor.
  float norm() const;

 private:
  void check_shape_product(const Shape& s, std::size_t expect) const;

  Shape shape_;
  std::size_t numel_ = 0;
  std::shared_ptr<std::vector<float>> storage_;
};

}  // namespace hdczsc::tensor
