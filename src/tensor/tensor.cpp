#include "tensor/tensor.hpp"

#include <cmath>
#include <numeric>
#include <sstream>

namespace hdczsc::tensor {

std::string shape_str(const Shape& s) {
  std::ostringstream oss;
  oss << '[';
  for (std::size_t i = 0; i < s.size(); ++i) {
    oss << s[i];
    if (i + 1 < s.size()) oss << ", ";
  }
  oss << ']';
  return oss.str();
}

namespace {
std::size_t product(const Shape& s) {
  std::size_t p = 1;
  for (auto d : s) p *= d;
  return p;
}
}  // namespace

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      numel_(product(shape_)),
      storage_(std::make_shared<std::vector<float>>(numel_, 0.0f)) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)),
      numel_(product(shape_)),
      storage_(std::make_shared<std::vector<float>>(numel_, fill)) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), numel_(product(shape_)) {
  if (values.size() != numel_)
    throw std::invalid_argument("Tensor: value count " + std::to_string(values.size()) +
                                " does not match shape " + shape_str(shape_));
  storage_ = std::make_shared<std::vector<float>>(std::move(values));
}

Tensor Tensor::randn(Shape shape, util::Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, util::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::rademacher(Shape shape, util::Rng& rng) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.rademacher());
  return t;
}

Tensor Tensor::eye(std::size_t n) {
  Tensor t({n, n});
  for (std::size_t i = 0; i < n; ++i) t[i * n + i] = 1.0f;
  return t;
}

Tensor Tensor::from_vector(std::vector<float> values) {
  Shape s{values.size()};
  return Tensor(std::move(s), std::move(values));
}

std::size_t Tensor::size(std::size_t axis) const {
  if (axis >= shape_.size())
    throw std::invalid_argument("Tensor::size: axis " + std::to_string(axis) +
                                " out of range for shape " + shape_str(shape_));
  return shape_[axis];
}

Tensor Tensor::reshape(Shape new_shape) const {
  check_shape_product(new_shape, numel_);
  Tensor view;
  view.shape_ = std::move(new_shape);
  view.numel_ = numel_;
  view.storage_ = storage_;
  return view;
}

Tensor Tensor::clone() const {
  Tensor copy;
  copy.shape_ = shape_;
  copy.numel_ = numel_;
  copy.storage_ = std::make_shared<std::vector<float>>(*storage_);
  return copy;
}

void Tensor::check_shape_product(const Shape& s, std::size_t expect) const {
  if (product(s) != expect)
    throw std::invalid_argument("Tensor::reshape: cannot view " + shape_str(shape_) + " as " +
                                shape_str(s));
}

float& Tensor::at(std::size_t i) {
  if (dim() != 1 || i >= shape_[0])
    throw std::out_of_range("Tensor::at(i): bad index for shape " + shape_str(shape_));
  return (*storage_)[i];
}

float& Tensor::at(std::size_t i, std::size_t j) {
  if (dim() != 2 || i >= shape_[0] || j >= shape_[1])
    throw std::out_of_range("Tensor::at(i,j): bad index for shape " + shape_str(shape_));
  return (*storage_)[i * shape_[1] + j];
}

float& Tensor::at(std::size_t i, std::size_t j, std::size_t k) {
  if (dim() != 3 || i >= shape_[0] || j >= shape_[1] || k >= shape_[2])
    throw std::out_of_range("Tensor::at(i,j,k): bad index for shape " + shape_str(shape_));
  return (*storage_)[(i * shape_[1] + j) * shape_[2] + k];
}

float& Tensor::at(std::size_t i, std::size_t j, std::size_t k, std::size_t l) {
  if (dim() != 4 || i >= shape_[0] || j >= shape_[1] || k >= shape_[2] || l >= shape_[3])
    throw std::out_of_range("Tensor::at(i,j,k,l): bad index for shape " + shape_str(shape_));
  return (*storage_)[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
}

void Tensor::fill(float v) {
  for (auto& x : *storage_) x = v;
}

void Tensor::add_scaled(const Tensor& other, float alpha) {
  if (other.numel() != numel_)
    throw std::invalid_argument("Tensor::add_scaled: shape mismatch " + shape_str(shape_) +
                                " vs " + shape_str(other.shape_));
  const float* src = other.data();
  float* dst = data();
  for (std::size_t i = 0; i < numel_; ++i) dst[i] += alpha * src[i];
}

void Tensor::scale(float alpha) {
  for (auto& x : *storage_) x *= alpha;
}

float Tensor::sum() const {
  double s = 0.0;
  for (std::size_t i = 0; i < numel_; ++i) s += (*storage_)[i];
  return static_cast<float>(s);
}

float Tensor::mean() const { return numel_ == 0 ? 0.0f : sum() / static_cast<float>(numel_); }

float Tensor::min() const {
  if (numel_ == 0) throw std::logic_error("Tensor::min on empty tensor");
  float m = (*storage_)[0];
  for (std::size_t i = 1; i < numel_; ++i) m = std::min(m, (*storage_)[i]);
  return m;
}

float Tensor::max() const {
  if (numel_ == 0) throw std::logic_error("Tensor::max on empty tensor");
  float m = (*storage_)[0];
  for (std::size_t i = 1; i < numel_; ++i) m = std::max(m, (*storage_)[i]);
  return m;
}

float Tensor::norm() const {
  double s = 0.0;
  for (std::size_t i = 0; i < numel_; ++i) {
    double v = (*storage_)[i];
    s += v * v;
  }
  return static_cast<float>(std::sqrt(s));
}

}  // namespace hdczsc::tensor
