// Free-function tensor operations: elementwise arithmetic, GEMM variants,
// reductions, row-wise softmax / normalization, cosine-similarity matrices.
//
// Convention: matrices are row-major 2-D tensors [rows, cols]. All matmul
// variants route through the cache-blocked, runtime-ISA-dispatched kernel in
// tensor/gemm.hpp (packed panels, register-tiled micro-kernel, parallel over
// block tasks); tiny products fall back to a plain triple loop.
#pragma once

#include "tensor/tensor.hpp"

namespace hdczsc::tensor {

// -- elementwise -------------------------------------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);  ///< Hadamard product
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);
/// Apply fn to every element (returns new tensor).
Tensor map(const Tensor& a, float (*fn)(float));

// -- GEMM family ---------------------------------------------------------------
/// C[m,n] = A[m,k] * B[k,n]
Tensor matmul(const Tensor& a, const Tensor& b);
/// C[m,n] = A[k,m]^T * B[k,n]
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// C[m,n] = A[m,k] * B[n,k]^T
Tensor matmul_nt(const Tensor& a, const Tensor& b);
/// y[m] = A[m,k] * x[k]
Tensor matvec(const Tensor& a, const Tensor& x);

/// Transpose a 2-D tensor.
Tensor transpose(const Tensor& a);

// -- reductions / row ops -----------------------------------------------------
/// Sum over rows -> [cols] (axis 0) of a 2-D tensor.
Tensor sum_rows(const Tensor& a);
/// Sum over cols -> [rows] (axis 1) of a 2-D tensor.
Tensor sum_cols(const Tensor& a);
/// Row-wise argmax of a 2-D tensor.
std::vector<std::size_t> argmax_rows(const Tensor& a);
/// Indices of the k largest entries of each row (descending score).
std::vector<std::vector<std::size_t>> topk_rows(const Tensor& a, std::size_t k);

/// Numerically stable row-wise softmax of logits [n, c].
Tensor softmax_rows(const Tensor& logits);
/// Row-wise log-softmax.
Tensor log_softmax_rows(const Tensor& logits);

/// L2-normalize each row; rows with norm < eps are left untouched.
/// If `norms_out` is non-null it receives the pre-normalization row norms [n].
Tensor l2_normalize_rows(const Tensor& a, Tensor* norms_out = nullptr, float eps = 1e-12f);

/// Cosine-similarity matrix between rows of A [n,d] and rows of B [m,d] -> [n,m].
Tensor cosine_similarity(const Tensor& a, const Tensor& b, float eps = 1e-12f);

/// Mean and (population) stddev of a sequence of scalars.
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};
MeanStd mean_std(const std::vector<double>& xs);

/// Max |a - b| over all elements (shapes must match).
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace hdczsc::tensor
