#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/gemm.hpp"

namespace hdczsc::tensor {

namespace {

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape())
    throw std::invalid_argument(std::string(op) + ": shape mismatch " + shape_str(a.shape()) +
                                " vs " + shape_str(b.shape()));
}

void check_matrix(const Tensor& a, const char* op) {
  if (a.dim() != 2)
    throw std::invalid_argument(std::string(op) + ": expected 2-D tensor, got " +
                                shape_str(a.shape()));
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out = a.clone();
  out.add_scaled(b, 1.0f);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out = a.clone();
  out.add_scaled(b, -1.0f);
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor out = a.clone();
  float* o = out.data();
  const float* bb = b.data();
  for (std::size_t i = 0; i < out.numel(); ++i) o[i] *= bb[i];
  return out;
}

Tensor add_scalar(const Tensor& a, float s) {
  Tensor out = a.clone();
  float* o = out.data();
  for (std::size_t i = 0; i < out.numel(); ++i) o[i] += s;
  return out;
}

Tensor mul_scalar(const Tensor& a, float s) {
  Tensor out = a.clone();
  out.scale(s);
  return out;
}

Tensor map(const Tensor& a, float (*fn)(float)) {
  Tensor out = a.clone();
  float* o = out.data();
  for (std::size_t i = 0; i < out.numel(); ++i) o[i] = fn(o[i]);
  return out;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_matrix(a, "matmul(A)");
  check_matrix(b, "matmul(B)");
  const std::size_t m = a.size(0), k = a.size(1), n = b.size(1);
  if (b.size(0) != k)
    throw std::invalid_argument("matmul: inner dims differ: " + shape_str(a.shape()) + " x " +
                                shape_str(b.shape()));
  Tensor c({m, n});
  gemm_accumulate(Trans::N, Trans::N, m, n, k, a.data(), k, b.data(), n, c.data(), n);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_matrix(a, "matmul_tn(A)");
  check_matrix(b, "matmul_tn(B)");
  const std::size_t k = a.size(0), m = a.size(1), n = b.size(1);
  if (b.size(0) != k)
    throw std::invalid_argument("matmul_tn: inner dims differ: " + shape_str(a.shape()) +
                                "^T x " + shape_str(b.shape()));
  Tensor c({m, n});
  gemm_accumulate(Trans::T, Trans::N, m, n, k, a.data(), m, b.data(), n, c.data(), n);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_matrix(a, "matmul_nt(A)");
  check_matrix(b, "matmul_nt(B)");
  const std::size_t m = a.size(0), k = a.size(1), n = b.size(0);
  if (b.size(1) != k)
    throw std::invalid_argument("matmul_nt: inner dims differ: " + shape_str(a.shape()) + " x " +
                                shape_str(b.shape()) + "^T");
  Tensor c({m, n});
  gemm_accumulate(Trans::N, Trans::T, m, n, k, a.data(), k, b.data(), k, c.data(), n);
  return c;
}

Tensor matvec(const Tensor& a, const Tensor& x) {
  check_matrix(a, "matvec(A)");
  if (x.dim() != 1 || x.size(0) != a.size(1))
    throw std::invalid_argument("matvec: shape mismatch " + shape_str(a.shape()) + " x " +
                                shape_str(x.shape()));
  const std::size_t m = a.size(0), k = a.size(1);
  Tensor y({m});
  const float* A = a.data();
  const float* X = x.data();
  for (std::size_t i = 0; i < m; ++i) {
    double acc = 0.0;
    const float* arow = A + i * k;
    for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * X[kk];
    y[i] = static_cast<float>(acc);
  }
  return y;
}

Tensor transpose(const Tensor& a) {
  check_matrix(a, "transpose");
  const std::size_t m = a.size(0), n = a.size(1);
  Tensor t({n, m});
  const float* A = a.data();
  float* T = t.data();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) T[j * m + i] = A[i * n + j];
  return t;
}

Tensor sum_rows(const Tensor& a) {
  check_matrix(a, "sum_rows");
  const std::size_t m = a.size(0), n = a.size(1);
  Tensor out({n});
  const float* A = a.data();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) out[j] += A[i * n + j];
  return out;
}

Tensor sum_cols(const Tensor& a) {
  check_matrix(a, "sum_cols");
  const std::size_t m = a.size(0), n = a.size(1);
  Tensor out({m});
  const float* A = a.data();
  for (std::size_t i = 0; i < m; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) acc += A[i * n + j];
    out[i] = static_cast<float>(acc);
  }
  return out;
}

std::vector<std::size_t> argmax_rows(const Tensor& a) {
  check_matrix(a, "argmax_rows");
  const std::size_t m = a.size(0), n = a.size(1);
  std::vector<std::size_t> idx(m, 0);
  const float* A = a.data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = A + i * n;
    std::size_t best = 0;
    for (std::size_t j = 1; j < n; ++j)
      if (row[j] > row[best]) best = j;
    idx[i] = best;
  }
  return idx;
}

std::vector<std::vector<std::size_t>> topk_rows(const Tensor& a, std::size_t k) {
  check_matrix(a, "topk_rows");
  const std::size_t m = a.size(0), n = a.size(1);
  if (k > n) throw std::invalid_argument("topk_rows: k > columns");
  std::vector<std::vector<std::size_t>> out(m);
  const float* A = a.data();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = A + i * n;
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(k), order.end(),
                      [row](std::size_t x, std::size_t y) { return row[x] > row[y]; });
    out[i].assign(order.begin(), order.begin() + static_cast<long>(k));
  }
  return out;
}

Tensor softmax_rows(const Tensor& logits) {
  check_matrix(logits, "softmax_rows");
  const std::size_t m = logits.size(0), n = logits.size(1);
  Tensor out({m, n});
  const float* L = logits.data();
  float* O = out.data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = L + i * n;
    float* orow = O + i * n;
    float mx = row[0];
    for (std::size_t j = 1; j < n; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      orow[j] = std::exp(row[j] - mx);
      denom += orow[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::size_t j = 0; j < n; ++j) orow[j] *= inv;
  }
  return out;
}

Tensor log_softmax_rows(const Tensor& logits) {
  check_matrix(logits, "log_softmax_rows");
  const std::size_t m = logits.size(0), n = logits.size(1);
  Tensor out({m, n});
  const float* L = logits.data();
  float* O = out.data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = L + i * n;
    float* orow = O + i * n;
    float mx = row[0];
    for (std::size_t j = 1; j < n; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (std::size_t j = 0; j < n; ++j) denom += std::exp(row[j] - mx);
    const float lse = mx + static_cast<float>(std::log(denom));
    for (std::size_t j = 0; j < n; ++j) orow[j] = row[j] - lse;
  }
  return out;
}

Tensor l2_normalize_rows(const Tensor& a, Tensor* norms_out, float eps) {
  check_matrix(a, "l2_normalize_rows");
  const std::size_t m = a.size(0), n = a.size(1);
  Tensor out = a.clone();
  Tensor norms({m});
  float* O = out.data();
  for (std::size_t i = 0; i < m; ++i) {
    float* row = O + i * n;
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) s += static_cast<double>(row[j]) * row[j];
    const float nrm = static_cast<float>(std::sqrt(s));
    norms[i] = nrm;
    if (nrm > eps) {
      const float inv = 1.0f / nrm;
      for (std::size_t j = 0; j < n; ++j) row[j] *= inv;
    }
  }
  if (norms_out) *norms_out = norms;
  return out;
}

Tensor cosine_similarity(const Tensor& a, const Tensor& b, float eps) {
  Tensor an = l2_normalize_rows(a, nullptr, eps);
  Tensor bn = l2_normalize_rows(b, nullptr, eps);
  return matmul_nt(an, bn);
}

MeanStd mean_std(const std::vector<double>& xs) {
  MeanStd out;
  if (xs.empty()) return out;
  double s = 0.0;
  for (double x : xs) s += x;
  out.mean = s / static_cast<double>(xs.size());
  double v = 0.0;
  for (double x : xs) v += (x - out.mean) * (x - out.mean);
  out.stddev = std::sqrt(v / static_cast<double>(xs.size()));
  return out;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "max_abs_diff");
  float m = 0.0f;
  const float* A = a.data();
  const float* B = b.data();
  for (std::size_t i = 0; i < a.numel(); ++i) m = std::max(m, std::abs(A[i] - B[i]));
  return m;
}

}  // namespace hdczsc::tensor
