#include "tensor/linalg.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace hdczsc::tensor {

namespace {
void check_square(const Tensor& a, const char* op) {
  if (a.dim() != 2 || a.size(0) != a.size(1))
    throw std::invalid_argument(std::string(op) + ": expected square matrix, got " +
                                shape_str(a.shape()));
}
}  // namespace

Tensor cholesky(const Tensor& a) {
  check_square(a, "cholesky");
  const std::size_t n = a.size(0);
  Tensor l({n, n});
  const float* A = a.data();
  float* L = l.data();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = A[i * n + j];
      for (std::size_t k = 0; k < j; ++k) s -= static_cast<double>(L[i * n + k]) * L[j * n + k];
      if (i == j) {
        if (s <= 0.0) throw std::domain_error("cholesky: matrix not positive definite");
        L[i * n + j] = static_cast<float>(std::sqrt(s));
      } else {
        L[i * n + j] = static_cast<float>(s / L[j * n + j]);
      }
    }
  }
  return l;
}

Tensor solve_spd(const Tensor& a, const Tensor& b) {
  check_square(a, "solve_spd");
  if (b.dim() != 2 || b.size(0) != a.size(0))
    throw std::invalid_argument("solve_spd: rhs shape " + shape_str(b.shape()) +
                                " incompatible with " + shape_str(a.shape()));
  const std::size_t n = a.size(0), m = b.size(1);
  Tensor l = cholesky(a);
  const float* L = l.data();
  // Forward substitution: L Y = B.
  Tensor y = b.clone();
  float* Y = y.data();
  for (std::size_t c = 0; c < m; ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      double s = Y[i * m + c];
      for (std::size_t k = 0; k < i; ++k) s -= static_cast<double>(L[i * n + k]) * Y[k * m + c];
      Y[i * m + c] = static_cast<float>(s / L[i * n + i]);
    }
  }
  // Back substitution: L^T X = Y.
  Tensor x = y.clone();
  float* X = x.data();
  for (std::size_t c = 0; c < m; ++c) {
    for (std::size_t ii = n; ii > 0; --ii) {
      const std::size_t i = ii - 1;
      double s = X[i * m + c];
      for (std::size_t k = i + 1; k < n; ++k)
        s -= static_cast<double>(L[k * n + i]) * X[k * m + c];
      X[i * m + c] = static_cast<float>(s / L[i * n + i]);
    }
  }
  return x;
}

Tensor solve(const Tensor& a, const Tensor& b) {
  check_square(a, "solve");
  if (b.dim() != 2 || b.size(0) != a.size(0))
    throw std::invalid_argument("solve: rhs shape " + shape_str(b.shape()) +
                                " incompatible with " + shape_str(a.shape()));
  const std::size_t n = a.size(0), m = b.size(1);
  Tensor aug = a.clone();
  Tensor rhs = b.clone();
  float* A = aug.data();
  float* B = rhs.data();
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t piv = col;
    float best = std::abs(A[col * n + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const float v = std::abs(A[r * n + col]);
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best < 1e-12f) throw std::domain_error("solve: singular matrix");
    if (piv != col) {
      for (std::size_t j = 0; j < n; ++j) std::swap(A[piv * n + j], A[col * n + j]);
      for (std::size_t j = 0; j < m; ++j) std::swap(B[piv * m + j], B[col * m + j]);
    }
    const float inv = 1.0f / A[col * n + col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const float f = A[r * n + col] * inv;
      if (f == 0.0f) continue;
      for (std::size_t j = col; j < n; ++j) A[r * n + j] -= f * A[col * n + j];
      for (std::size_t j = 0; j < m; ++j) B[r * m + j] -= f * B[col * m + j];
    }
  }
  // Back substitution.
  Tensor x({n, m});
  float* X = x.data();
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    for (std::size_t j = 0; j < m; ++j) {
      double s = B[i * m + j];
      for (std::size_t k = i + 1; k < n; ++k) s -= static_cast<double>(A[i * n + k]) * X[k * m + j];
      X[i * m + j] = static_cast<float>(s / A[i * n + i]);
    }
  }
  return x;
}

Tensor inverse(const Tensor& a) {
  check_square(a, "inverse");
  return solve(a, Tensor::eye(a.size(0)));
}

}  // namespace hdczsc::tensor
