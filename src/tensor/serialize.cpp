#include "tensor/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace hdczsc::tensor {

namespace io {

void write_string(std::ostream& os, const std::string& s) {
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is, const char* what) {
  const auto n = read_pod<std::uint32_t>(is, what);
  if (n > (1u << 20))
    throw std::runtime_error(std::string("serialize: implausible length for ") + what);
  check_readable(is, n, 1, what);
  std::string s(n, '\0');
  is.read(s.data(), n);
  if (!is) throw std::runtime_error(std::string("serialize: truncated reading ") + what);
  return s;
}

void check_readable(std::istream& is, std::uint64_t count, std::size_t item_bytes,
                    const char* what) {
  const auto pos = is.tellg();
  if (pos < 0) return;  // non-seekable: the read itself still fails cleanly
  is.seekg(0, std::ios::end);
  const auto end = is.tellg();
  is.seekg(pos);
  if (!is || end < pos)
    throw std::runtime_error(std::string("serialize: cannot size stream for ") + what);
  const auto remaining = static_cast<std::uint64_t>(end - pos);
  // Divide instead of multiplying: count * item_bytes can overflow u64 on
  // a hostile declared length, remaining / item_bytes cannot.
  if (item_bytes != 0 && remaining / item_bytes < count)
    throw std::runtime_error(std::string("serialize: truncated ") + what + " (declared " +
                             std::to_string(count) + " items of " +
                             std::to_string(item_bytes) + " bytes, " +
                             std::to_string(remaining) + " bytes remain)");
}

}  // namespace io

namespace {

constexpr char kMagic[4] = {'H', 'D', 'C', 'T'};
constexpr std::uint32_t kVersion = 1;

using io::read_pod;
using io::write_pod;

}  // namespace

void save_tensor(std::ostream& os, const Tensor& t) {
  os.write(kMagic, 4);
  write_pod(os, kVersion);
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(t.dim()));
  for (std::size_t d = 0; d < t.dim(); ++d)
    write_pod<std::uint64_t>(os, t.size(d));
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!os) throw std::runtime_error("save_tensor: write failed");
}

Tensor load_tensor(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  if (!is || std::string(magic, 4) != std::string(kMagic, 4))
    throw std::runtime_error("load_tensor: bad magic");
  const auto version = read_pod<std::uint32_t>(is);
  if (version != kVersion)
    throw std::runtime_error("load_tensor: unsupported version " + std::to_string(version));
  const auto rank = read_pod<std::uint32_t>(is);
  if (rank > 8) throw std::runtime_error("load_tensor: implausible rank");
  if (rank == 0) return Tensor();  // empty tensor (rank-0 record carries no data)
  Shape shape(rank);
  std::size_t numel = 1;
  for (auto& d : shape) {
    d = static_cast<std::size_t>(read_pod<std::uint64_t>(is));
    numel *= d;
  }
  if (numel > (std::size_t{1} << 31))
    throw std::runtime_error("load_tensor: implausible element count");
  io::check_readable(is, numel, sizeof(float), "tensor data");
  Tensor t(shape);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(numel * sizeof(float)));
  if (!is) throw std::runtime_error("load_tensor: truncated data");
  return t;
}

void save_tensor_file(const std::string& path, const Tensor& t) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("save_tensor_file: cannot open " + path);
  save_tensor(f, t);
}

Tensor load_tensor_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("load_tensor_file: cannot open " + path);
  return load_tensor(f);
}

}  // namespace hdczsc::tensor
