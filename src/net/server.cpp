#include "net/server.hpp"

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#include <unordered_map>

#include "util/log.hpp"

namespace hdczsc::net {

namespace {
using SteadyClock = std::chrono::steady_clock;
}

/// One accepted connection. The write side (out buffer, EPOLLOUT arming,
/// closed flag) is shared between its io thread and serving-worker
/// completion callbacks and is guarded by `mu`; the read side is touched
/// only by the owning io thread. The Conn carries its own copies of the
/// tx-side metric handles so completions never reach back into the server.
struct NetServer::Conn : std::enable_shared_from_this<NetServer::Conn> {
  Fd fd;
  std::shared_ptr<IoLoop> loop;
  std::size_t max_write_buffer = 0;

  std::mutex mu;
  bool closed = false;
  bool want_write = false;       // EPOLLOUT currently armed
  bool close_after_flush = false;
  std::vector<char> out;
  std::size_t out_off = 0;

  // io-thread-only read state
  std::vector<char> in;
  std::size_t in_off = 0;
  bool discard_input = false;  // protocol error: drain the reply, read no more

  std::shared_ptr<obs::Counter> tx_frames, tx_bytes, dropped;
};

/// One io thread's epoll set. Connections register with their fd as the
/// epoll user datum and are resolved through `conns` (guarded: the accept
/// path on io thread 0 inserts into other loops' maps, and stop() sweeps
/// them all).
struct NetServer::IoLoop {
  Fd epoll;
  Fd wake;  // eventfd: stop() pokes it to break epoll_wait
  std::mutex conns_mu;
  std::unordered_map<int, std::shared_ptr<Conn>> conns;
};

NetServer::NetServer(serve::ModelRegistry& registry, NetServerConfig cfg)
    : registry_(registry), cfg_(cfg) {
  if (cfg_.n_io_threads == 0) cfg_.n_io_threads = 1;
  auto& reg = obs::default_registry();
  connections_total_ = reg.counter("net_connections_total", {}, "accepted TCP connections");
  rx_frames_ = reg.counter("net_rx_frames_total", {}, "frames received");
  tx_frames_ = reg.counter("net_tx_frames_total", {}, "frames sent");
  rx_bytes_ = reg.counter("net_rx_bytes_total", {}, "bytes received");
  tx_bytes_ = reg.counter("net_tx_bytes_total", {}, "bytes sent");
  protocol_errors_ = reg.counter("net_protocol_errors_total", {},
                                 "frames rejected as malformed or wrong-protocol");
  dropped_responses_ = reg.counter("net_dropped_responses_total", {},
                                   "responses dropped because the client disconnected");
  active_conns_ = reg.gauge("net_active_connections", {}, "currently open connections");
  request_us_ = reg.histogram("net_request_us", {},
                              "request decoded to response queued, microseconds");
}

NetServer::~NetServer() { stop(); }

void NetServer::start() {
  if (running_.exchange(true)) return;
  stopping_.store(false);
  listener_ = tcp_listen(cfg_.port);
  port_ = local_port(listener_.get());
  set_nonblocking(listener_.get(), true);

  loops_.clear();
  for (std::size_t i = 0; i < cfg_.n_io_threads; ++i) {
    auto loop = std::make_shared<IoLoop>();
    loop->epoll.reset(::epoll_create1(0));
    if (!loop->epoll.valid()) throw std::runtime_error("net: epoll_create1 failed");
    loop->wake.reset(::eventfd(0, EFD_NONBLOCK));
    if (!loop->wake.valid()) throw std::runtime_error("net: eventfd failed");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->wake.get();
    if (::epoll_ctl(loop->epoll.get(), EPOLL_CTL_ADD, loop->wake.get(), &ev) != 0)
      throw std::runtime_error("net: epoll_ctl(wake) failed");
    loops_.push_back(std::move(loop));
  }
  // The listener lives on io thread 0's set only — no thundering herd.
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listener_.get();
  if (::epoll_ctl(loops_[0]->epoll.get(), EPOLL_CTL_ADD, listener_.get(), &ev) != 0)
    throw std::runtime_error("net: epoll_ctl(listener) failed");

  threads_.reserve(loops_.size());
  for (std::size_t i = 0; i < loops_.size(); ++i)
    threads_.emplace_back([this, i] { io_thread(i); });
}

void NetServer::stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  const std::uint64_t one = 1;
  for (auto& loop : loops_) {
    if (loop->wake.valid() && ::write(loop->wake.get(), &one, sizeof(one)) < 0)
      util::log_warn("net: wake write failed: ", std::strerror(errno));
  }
  for (auto& t : threads_) t.join();
  threads_.clear();
  listener_.reset();
  std::size_t open = 0;
  for (auto& loop : loops_) {
    std::lock_guard<std::mutex> guard(loop->conns_mu);
    for (auto& [fd, conn] : loop->conns) {
      std::lock_guard<std::mutex> cguard(conn->mu);
      conn->closed = true;
      conn->fd.reset();
      ++open;
    }
    loop->conns.clear();
  }
  if (open > 0) active_conns_->set(0.0);
  // loops_ (and their epoll fds) stay alive until destruction: a late
  // completion callback still holds shared_ptr<Conn> → shared_ptr<IoLoop>,
  // and must find the handles it checks `closed` against intact.
  running_.store(false);
}

std::size_t NetServer::active_connections() const {
  std::size_t n = 0;
  for (const auto& loop : loops_) {
    std::lock_guard<std::mutex> guard(loop->conns_mu);
    n += loop->conns.size();
  }
  return n;
}

void NetServer::io_thread(std::size_t idx) {
  IoLoop& loop = *loops_[idx];
  std::array<epoll_event, 64> events;
  while (!stopping_.load()) {
    const int n = ::epoll_wait(loop.epoll.get(), events.data(),
                               static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      util::log_warn("net: epoll_wait failed: ", std::strerror(errno));
      break;
    }
    for (int i = 0; i < n && !stopping_.load(); ++i) {
      const int fd = events[i].data.fd;
      if (fd == loop.wake.get()) {
        std::uint64_t drain;
        while (::read(loop.wake.get(), &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (idx == 0 && fd == listener_.get()) {
        accept_ready();
        continue;
      }
      std::shared_ptr<Conn> conn;
      {
        std::lock_guard<std::mutex> guard(loop.conns_mu);
        auto it = loop.conns.find(fd);
        if (it != loop.conns.end()) conn = it->second;
      }
      if (!conn) continue;
      bool ok = (events[i].events & (EPOLLHUP | EPOLLERR)) == 0;
      if (ok && (events[i].events & EPOLLIN)) ok = handle_readable(conn);
      if (ok && (events[i].events & EPOLLOUT)) ok = handle_writable(conn);
      if (!ok) close_conn(conn);
    }
  }
}

void NetServer::accept_ready() {
  for (;;) {
    const int raw = ::accept4(listener_.get(), nullptr, nullptr, SOCK_NONBLOCK);
    if (raw < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      util::log_warn("net: accept failed: ", std::strerror(errno));
      return;
    }
    auto conn = std::make_shared<Conn>();
    conn->fd.reset(raw);
    try {
      set_nodelay(raw);
    } catch (const std::exception&) {
      // Best-effort: a socket that raced into reset still gets torn down
      // by its first read.
    }
    conn->loop = loops_[next_loop_.fetch_add(1) % loops_.size()];
    conn->max_write_buffer = cfg_.max_write_buffer;
    conn->tx_frames = tx_frames_;
    conn->tx_bytes = tx_bytes_;
    conn->dropped = dropped_responses_;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = raw;
    {
      std::lock_guard<std::mutex> guard(conn->loop->conns_mu);
      conn->loop->conns.emplace(raw, conn);
    }
    if (::epoll_ctl(conn->loop->epoll.get(), EPOLL_CTL_ADD, raw, &ev) != 0) {
      util::log_warn("net: epoll_ctl(conn) failed: ", std::strerror(errno));
      close_conn(conn);
      continue;
    }
    connections_total_->add();
    active_conns_->set(static_cast<double>(active_connections()));
  }
}

bool NetServer::handle_readable(const std::shared_ptr<Conn>& conn) {
  char buf[64 * 1024];
  for (;;) {
    const ssize_t r = ::recv(conn->fd.get(), buf, sizeof(buf), 0);
    if (r == 0) return false;  // clean EOF
    if (r < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    rx_bytes_->add(static_cast<std::uint64_t>(r));
    if (conn->discard_input) continue;  // protocol error: reply is in flight
    conn->in.insert(conn->in.end(), buf, buf + r);
  }

  // Dispatch every complete frame in the buffer.
  while (!conn->discard_input && conn->in.size() - conn->in_off >= kHeaderBytes) {
    FrameHeader header;
    try {
      header = decode_header(conn->in.data() + conn->in_off);
    } catch (const ProtocolError& e) {
      protocol_errors_->add();
      queue_frame(conn,
                  encode_response_frame(serve::make_error_result(0, e.status(), e.what())),
                  /*close_after_flush=*/true);
      conn->discard_input = true;
      break;
    }
    if (conn->in.size() - conn->in_off < kHeaderBytes + header.payload_bytes) break;
    dispatch_frame(conn, header, conn->in.data() + conn->in_off + kHeaderBytes);
    conn->in_off += kHeaderBytes + header.payload_bytes;
  }
  if (conn->in_off > 0) {
    conn->in.erase(conn->in.begin(),
                   conn->in.begin() + static_cast<std::ptrdiff_t>(conn->in_off));
    conn->in_off = 0;
  }
  return true;
}

void NetServer::dispatch_frame(const std::shared_ptr<Conn>& conn, FrameHeader header,
                               const char* payload) {
  rx_frames_->add();
  switch (header.type) {
    case FrameType::kPing:
      queue_frame(conn, encode_control_frame(FrameType::kPong), false);
      return;
    case FrameType::kPong:
    case FrameType::kInferResponse:
    case FrameType::kAppendResponse: {
      // A client has no business sending these; framing is suspect.
      protocol_errors_->add();
      queue_frame(conn,
                  encode_response_frame(serve::make_error_result(
                      0, serve::InferStatus::kBadFrame, "unexpected frame type from client")),
                  true);
      conn->discard_input = true;
      return;
    }
    case FrameType::kAppendClasses: {
      handle_append(conn, header, payload);
      return;
    }
    case FrameType::kInferRequest:
      break;
  }

  serve::InferRequest req;
  try {
    req = decode_request_payload(payload, header.payload_bytes);
  } catch (const ProtocolError& e) {
    protocol_errors_->add();
    queue_frame(conn,
                encode_response_frame(serve::make_error_result(0, e.status(), e.what())),
                true);
    conn->discard_input = true;
    return;
  }

  // Hand off to the serving stack. The completion (worker thread, or this
  // thread for synchronous rejections) owns only the Conn and the metric
  // handles — never the server, which may stop() before it fires.
  const auto started = SteadyClock::now();
  auto hist = request_us_;
  registry_.submit(std::move(req),
                   [conn, hist, started](serve::InferResult&& res) {
                     queue_frame(conn, encode_response_frame(res), false);
                     hist->record(std::chrono::duration<double, std::micro>(
                                      SteadyClock::now() - started)
                                      .count());
                   });
}

void NetServer::handle_append(const std::shared_ptr<Conn>& conn, FrameHeader header,
                              const char* payload) {
  AppendResult res;
  AppendRequest req;
  try {
    req = decode_append_request_payload(payload, header.payload_bytes);
  } catch (const ProtocolError& e) {
    protocol_errors_->add();
    res.status = e.status();
    res.message = e.what();
    queue_frame(conn, encode_append_response_frame(res), true);
    conn->discard_input = true;
    return;
  }
  res.request_id = req.request_id;
  try {
    res.version = registry_.append_classes(req.model_key, req.attributes, req.seen_flags);
    res.n_classes = registry_.engine(req.model_key)->n_classes();
  } catch (const serve::ModelNotFound& e) {
    res.status = serve::InferStatus::kBadModel;
    res.message = e.what();
  } catch (const std::invalid_argument& e) {
    res.status = serve::InferStatus::kBadRequest;
    res.message = e.what();
  } catch (const std::exception& e) {
    res.status = serve::InferStatus::kInternal;
    res.message = e.what();
  }
  queue_frame(conn, encode_append_response_frame(res), false);
}

void NetServer::queue_frame(const std::shared_ptr<Conn>& conn, std::vector<char> frame,
                            bool close_after_flush) {
  std::lock_guard<std::mutex> guard(conn->mu);
  if (conn->closed) {
    conn->dropped->add();
    return;
  }
  if (conn->out.size() - conn->out_off + frame.size() > conn->max_write_buffer) {
    // Slow consumer: drop the response and let the io thread tear the
    // connection down on its next pass rather than buffering unboundedly.
    conn->dropped->add();
    conn->close_after_flush = true;
    return;
  }
  conn->out.insert(conn->out.end(), frame.begin(), frame.end());
  conn->close_after_flush |= close_after_flush;
  conn->tx_frames->add();
  if (!conn->want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT;
    ev.data.fd = conn->fd.get();
    if (::epoll_ctl(conn->loop->epoll.get(), EPOLL_CTL_MOD, conn->fd.get(), &ev) == 0)
      conn->want_write = true;
  }
}

bool NetServer::handle_writable(const std::shared_ptr<Conn>& conn) {
  std::lock_guard<std::mutex> guard(conn->mu);
  if (conn->closed) return false;
  while (conn->out_off < conn->out.size()) {
    const ssize_t w = ::send(conn->fd.get(), conn->out.data() + conn->out_off,
                             conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // stay armed
      if (errno == EINTR) continue;
      return false;
    }
    tx_bytes_->add(static_cast<std::uint64_t>(w));
    conn->out_off += static_cast<std::size_t>(w);
  }
  conn->out.clear();
  conn->out_off = 0;
  if (conn->close_after_flush) return false;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = conn->fd.get();
  if (::epoll_ctl(conn->loop->epoll.get(), EPOLL_CTL_MOD, conn->fd.get(), &ev) == 0)
    conn->want_write = false;
  return true;
}

void NetServer::close_conn(const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> guard(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
    if (conn->fd.valid())
      ::epoll_ctl(conn->loop->epoll.get(), EPOLL_CTL_DEL, conn->fd.get(), nullptr);
    conn->fd.reset();
  }
  {
    std::lock_guard<std::mutex> guard(conn->loop->conns_mu);
    for (auto it = conn->loop->conns.begin(); it != conn->loop->conns.end(); ++it) {
      if (it->second == conn) {
        conn->loop->conns.erase(it);
        break;
      }
    }
  }
  active_conns_->set(static_cast<double>(active_connections()));
}

}  // namespace hdczsc::net
