#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <stdexcept>
#include <sys/socket.h>
#include <unistd.h>

namespace hdczsc::net {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("net: " + what + ": " + std::strerror(errno));
}

}  // namespace

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Fd tcp_listen(std::uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0)
    fail("setsockopt(SO_REUSEADDR)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    fail("bind(port " + std::to_string(port) + ")");
  if (::listen(fd.get(), backlog) != 0) fail("listen");
  return fd;
}

Fd tcp_connect(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (rc != 0)
    throw std::runtime_error("net: resolve '" + host + "': " + gai_strerror(rc));
  Fd fd;
  int last_errno = 0;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    Fd candidate(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!candidate.valid()) {
      last_errno = errno;
      continue;
    }
    if (::connect(candidate.get(), ai->ai_addr, ai->ai_addrlen) == 0) {
      fd = std::move(candidate);
      break;
    }
    last_errno = errno;
  }
  ::freeaddrinfo(res);
  if (!fd.valid()) {
    errno = last_errno;
    fail("connect to " + host + ":" + std::to_string(port));
  }
  set_nodelay(fd.get());
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) fail("getsockname");
  return ntohs(addr.sin_port);
}

void set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) fail("fcntl(F_GETFL)");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, want) != 0) fail("fcntl(F_SETFL)");
}

void set_nodelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0)
    fail("setsockopt(TCP_NODELAY)");
}

bool send_all(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the process.
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      fail("send");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool recv_all(int fd, void* buf, std::size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t r = ::recv(fd, p, n, 0);
    if (r == 0) return false;  // EOF
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) return false;
      fail("recv");
    }
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace hdczsc::net
