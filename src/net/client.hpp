// C++ client for the HDCN wire protocol (docs/protocol.md).
//
// Two usage modes over one connection:
//
//  * blocking  — infer() sends a request and waits for its response:
//        NetClient c("127.0.0.1", port);
//        serve::InferResult r = c.infer(req);
//
//  * pipelined streaming — submit() returns a future immediately and many
//    requests ride the connection back-to-back; a reader thread matches
//    responses to futures by request_id (the server may interleave
//    responses across batches in any order):
//        auto f1 = c.submit(req1);  auto f2 = c.submit(req2);
//        f2.get();  f1.get();
//
// request_id is the correlation key: left 0, the client assigns a unique
// one per connection (echoed on the result); caller-chosen nonzero ids
// must be unique among in-flight requests — a duplicate is rejected
// client-side with kBadRequest.
//
// Failure model: every failure is a named status on the InferResult, never
// an exception (matching the in-process submit() contract) — except the
// constructor, which throws if the host is unreachable. A lost connection
// resolves every in-flight and subsequent request with kTransport.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "serve/infer.hpp"

namespace hdczsc::net {

class NetClient {
 public:
  /// Blocking connect (throws std::runtime_error when unreachable).
  NetClient(const std::string& host, std::uint16_t port);
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Pipelined submit: sends the frame now, resolves the future when the
  /// response with the matching request_id arrives.
  std::future<serve::InferResult> submit(serve::InferRequest req);

  /// Blocking round-trip: submit + wait.
  serve::InferResult infer(serve::InferRequest req);

  /// Admin plane, pipelined: send an append-classes frame now, resolve the
  /// future when the server's kAppendResponse with the matching request_id
  /// arrives. Shares the connection's request-id namespace with inference.
  std::future<AppendResult> submit_append(AppendRequest req);

  /// Blocking admin round-trip: append classes to the served model and
  /// wait for the published store version. Failures are named statuses on
  /// the AppendResult, never exceptions.
  AppendResult append_classes(AppendRequest req);

  /// Liveness probe: ping frame, wait for the pong. False once the
  /// connection is lost.
  bool ping();

  /// True until a transport failure is observed.
  bool connected() const { return !dead_.load(); }

  /// Close the socket; every in-flight future resolves with kTransport.
  void close();

 private:
  void reader_loop();
  /// Resolve every pending future with kTransport and mark the connection
  /// dead.
  void fail_all(const std::string& why);

  Fd fd_;
  std::atomic<bool> dead_{false};
  std::atomic<std::uint64_t> next_id_{1};

  std::mutex write_mu_;  // frames are written whole, one sender at a time

  std::mutex pending_mu_;
  std::map<std::uint64_t, std::promise<serve::InferResult>> pending_;
  std::map<std::uint64_t, std::promise<AppendResult>> pending_appends_;
  std::vector<std::promise<bool>> pending_pings_;  // FIFO: pongs are ordered

  std::thread reader_;
};

}  // namespace hdczsc::net
