// Epoll-based TCP front-end over the ModelRegistry.
//
// Architecture (one box per thread kind):
//
//   accept + io threads (epoll, level-triggered)     ServerRuntime workers
//   ┌───────────────────────────────────────────┐    ┌───────────────────┐
//   │ read frames → decode → registry.submit ───┼───▶│ batcher → engine  │
//   │ write queued response frames ◀────────────┼────┤ completion hook   │
//   └───────────────────────────────────────────┘    └───────────────────┘
//
// Each io thread runs its own epoll set; accepted connections are
// distributed round-robin. Requests are decoded on the io thread and handed
// to ModelRegistry::submit with a completion callback; the callback (run on
// a serving worker) serializes the response, appends it to the
// connection's write buffer and arms EPOLLOUT — responses therefore never
// block a worker on a slow client, and admission control stays where it
// belongs (the bounded batcher queue → kOverloaded responses).
//
// Failure containment: a frame with a bad magic/version gets a
// kBadProtocol response and the connection is closed (the peer doesn't
// speak HDCN); a malformed request payload gets kBadFrame and also closes
// (framing sync is lost); per-request failures (kBadModel/kBadShape/...)
// are ordinary responses on a healthy connection. An abrupt client
// disconnect cancels nothing that is already queued — in-flight
// completions find the connection closed and drop their responses.
//
// Telemetry: net_* counters/gauges in obs::default_registry()
// (connections, frames, bytes, protocol errors, dropped responses) plus a
// net_request_us histogram measuring frame-decoded → response-queued, the
// span that joins the queue-wait→score trace the serving runtime records.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "serve/model_registry.hpp"

namespace hdczsc::net {

struct NetServerConfig {
  std::uint16_t port = 0;     ///< 0 = ephemeral (read back with port())
  std::size_t n_io_threads = 1;
  /// Per-connection pending-write cap: a consumer that stops reading while
  /// responses pile up past this is disconnected instead of growing the
  /// buffer without bound.
  std::size_t max_write_buffer = 64u << 20;
};

class NetServer {
 public:
  /// `registry` must outlive the server (the typical owner constructs both
  /// and stops the server first).
  NetServer(serve::ModelRegistry& registry, NetServerConfig cfg);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Bind + listen + spawn the io threads. Throws on bind failure.
  void start();
  /// Close the listener and every connection, join io threads. In-flight
  /// serving completions are not waited for — they drop their responses
  /// against closed connections. Idempotent; also run by the destructor.
  void stop();

  /// The bound port (valid after start()).
  std::uint16_t port() const { return port_; }
  bool running() const { return running_.load(); }
  /// Connections currently open across all io threads.
  std::size_t active_connections() const;

 private:
  struct Conn;
  struct IoLoop;

  void io_thread(std::size_t idx);
  void accept_ready();
  /// Drain readable bytes and dispatch complete frames; returns false when
  /// the connection must close.
  bool handle_readable(const std::shared_ptr<Conn>& conn);
  bool handle_writable(const std::shared_ptr<Conn>& conn);
  void dispatch_frame(const std::shared_ptr<Conn>& conn, FrameHeader header,
                      const char* payload);
  /// Admin plane: decode a kAppendClasses payload, run the registry append
  /// synchronously (version construction is serialized engine-side; the
  /// data plane keeps answering off the previous version throughout), and
  /// queue the kAppendResponse. Every failure is a named status on the
  /// response — nothing published, the connection stays up.
  void handle_append(const std::shared_ptr<Conn>& conn, FrameHeader header,
                     const char* payload);
  /// Append one frame to the connection's write buffer and arm EPOLLOUT.
  /// Static on purpose: serving-worker completion callbacks call it after
  /// NetServer::stop() may have returned (stop does not wait for in-flight
  /// submits), so it must not touch the server object — everything it
  /// needs (epoll handle, buffers, counters) lives on the Conn, and a
  /// closed connection makes it a counted no-op.
  static void queue_frame(const std::shared_ptr<Conn>& conn, std::vector<char> frame,
                          bool close_after_flush);
  void close_conn(const std::shared_ptr<Conn>& conn);

  serve::ModelRegistry& registry_;
  NetServerConfig cfg_;
  Fd listener_;
  std::uint16_t port_ = 0;
  std::vector<std::shared_ptr<IoLoop>> loops_;
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> next_loop_{0};

  // net_* telemetry (obs::default_registry()).
  std::shared_ptr<obs::Counter> connections_total_;
  std::shared_ptr<obs::Counter> rx_frames_;
  std::shared_ptr<obs::Counter> tx_frames_;
  std::shared_ptr<obs::Counter> rx_bytes_;
  std::shared_ptr<obs::Counter> tx_bytes_;
  std::shared_ptr<obs::Counter> protocol_errors_;
  std::shared_ptr<obs::Counter> dropped_responses_;
  std::shared_ptr<obs::Gauge> active_conns_;
  std::shared_ptr<obs::Histogram> request_us_;
};

}  // namespace hdczsc::net
