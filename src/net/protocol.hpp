// Wire protocol of the network serving front-end (docs/protocol.md is the
// normative layout description).
//
// Every message is one length-prefixed frame:
//
//   offset  size  field
//   0       4     magic  "HDCN" (0x4E434448 as a little-endian u32)
//   4       1     protocol version (kProtocolVersion = 1)
//   5       1     frame type (FrameType)
//   6       2     reserved, must be 0
//   8       4     payload_bytes (u32 LE, ≤ kMaxPayloadBytes)
//   12      ...   payload
//
// Payloads reuse the repo's one set of bounds-checked binary readers
// (tensor::io::read_pod / read_string / load_tensor + check_readable), fed
// through a seekable in-memory stream — the exact helpers the .hdcsnap
// snapshot loader parses files with, so a truncated or hostile frame fails
// the same named-error way a truncated snapshot does: before any oversized
// allocation, never as a partial read or a crash.
//
// Versioning rules (docs/protocol.md): the magic and the header layout
// never change; bumping kProtocolVersion is reserved for payload-layout
// changes. Status codes and frame types are append-only. A server rejects
// frames whose version it does not speak with kBadProtocol.
#pragma once

#include <cstdint>
#include <istream>
#include <stdexcept>
#include <streambuf>
#include <string>
#include <vector>

#include "serve/infer.hpp"

namespace hdczsc::net {

inline constexpr std::uint32_t kMagic = 0x4E434448u;  // "HDCN" little-endian
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderBytes = 12;
/// Hard payload bound: a header declaring more is rejected (kBadFrame)
/// before any buffering. 64 MiB comfortably holds the largest admissible
/// request (one image / embedding) and response (top-k + a logit row).
inline constexpr std::size_t kMaxPayloadBytes = 64u << 20;

enum class FrameType : std::uint8_t {
  kInferRequest = 1,
  kInferResponse = 2,
  kPing = 3,  ///< empty payload; the server echoes kPong (liveness probe)
  kPong = 4,
  kAppendClasses = 5,   ///< admin plane: append classes to a served model
  kAppendResponse = 6,  ///< server's reply to kAppendClasses
};

struct FrameHeader {
  FrameType type = FrameType::kPing;
  std::uint32_t payload_bytes = 0;
};

/// Decode/encode failure. `status` is the named InferStatus the failure
/// maps to on the wire: kBadProtocol for magic/version mismatches (the
/// peer does not speak this protocol — hang up), kBadFrame for a
/// malformed/truncated frame within a valid protocol.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(serve::InferStatus status, const std::string& msg)
      : std::runtime_error("protocol: " + msg), status_(status) {}
  serve::InferStatus status() const { return status_; }

 private:
  serve::InferStatus status_;
};

/// Seekable read-only stream over a byte buffer — what lets the wire
/// payload codecs share tensor::io's bounds-checked readers (they size the
/// stream via seek to reject declared-length lies up front).
class imemstream : private std::streambuf, public std::istream {
 public:
  imemstream(const char* data, std::size_t n) : std::istream(this) {
    char* p = const_cast<char*>(data);
    setg(p, p, p + n);
  }

 protected:
  std::streambuf::pos_type seekoff(std::streambuf::off_type off, std::ios_base::seekdir dir,
                                   std::ios_base::openmode) override {
    if (dir == std::ios_base::cur)
      gbump(static_cast<int>(off));
    else if (dir == std::ios_base::end)
      setg(eback(), egptr() + off, egptr());
    else
      setg(eback(), eback() + off, egptr());
    if (gptr() < eback() || gptr() > egptr())
      return std::streambuf::pos_type(std::streambuf::off_type(-1));
    return gptr() - eback();
  }
  std::streambuf::pos_type seekpos(std::streambuf::pos_type pos,
                                   std::ios_base::openmode which) override {
    return seekoff(std::streambuf::off_type(pos), std::ios_base::beg, which);
  }
};

/// Header codec. decode_header throws ProtocolError (kBadProtocol on
/// magic/version mismatch, kBadFrame on a bad type / nonzero reserved
/// bits / oversized payload). `buf` must hold kHeaderBytes.
void encode_header(char* buf, FrameType type, std::uint32_t payload_bytes);
FrameHeader decode_header(const char* buf);

/// Admin-plane append request: grow the model under `model_key` by the
/// attribute rows [n, α] (encoded server-side with the model's frozen
/// attribute encoder). `seen_flags` is empty (all-unseen) or one byte per
/// row (non-zero = seen). request_id correlates the kAppendResponse, with
/// the same client-assigned-when-0 convention as inference.
struct AppendRequest {
  std::string model_key;
  std::uint64_t request_id = 0;
  tensor::Tensor attributes;
  std::vector<std::uint8_t> seen_flags;
};

/// Reply to an AppendRequest. On kOk, `version` is the just-published
/// store version and `n_classes` the grown label-space size; on any error
/// status nothing was published and both echo the pre-call state (0 when
/// the model key never resolved).
struct AppendResult {
  std::uint64_t request_id = 0;
  serve::InferStatus status = serve::InferStatus::kOk;
  std::string message;
  std::uint64_t version = 0;
  std::uint64_t n_classes = 0;
};

/// Whole-frame encoders (header + payload, ready to send).
std::vector<char> encode_request_frame(const serve::InferRequest& req);
std::vector<char> encode_response_frame(const serve::InferResult& res);
std::vector<char> encode_control_frame(FrameType type);  // kPing / kPong
std::vector<char> encode_append_request_frame(const AppendRequest& req);
std::vector<char> encode_append_response_frame(const AppendResult& res);

/// Payload decoders (the transport strips the header). Throw ProtocolError
/// kBadFrame on any malformation — truncation, declared-length lies,
/// trailing bytes.
serve::InferRequest decode_request_payload(const char* data, std::size_t n);
serve::InferResult decode_response_payload(const char* data, std::size_t n);
AppendRequest decode_append_request_payload(const char* data, std::size_t n);
AppendResult decode_append_response_payload(const char* data, std::size_t n);

}  // namespace hdczsc::net
