#include "net/protocol.hpp"

#include <cstring>
#include <sstream>

#include "tensor/serialize.hpp"

namespace hdczsc::net {

namespace {

using tensor::io::check_readable;
using tensor::io::read_pod;
using tensor::io::read_string;
using tensor::io::write_pod;
using tensor::io::write_string;

constexpr std::uint8_t kMaxFrameType = static_cast<std::uint8_t>(FrameType::kAppendResponse);
constexpr std::uint8_t kMaxStatus = static_cast<std::uint8_t>(serve::InferStatus::kTransport);
constexpr std::uint8_t kMaxScoring =
    static_cast<std::uint8_t>(serve::ScoringSelect::kBinaryHamming);

std::vector<char> frame_from_payload(FrameType type, const std::string& payload) {
  if (payload.size() > kMaxPayloadBytes)
    throw ProtocolError(serve::InferStatus::kBadFrame,
                        "payload of " + std::to_string(payload.size()) +
                            " bytes exceeds the frame bound");
  std::vector<char> frame(kHeaderBytes + payload.size());
  encode_header(frame.data(), type, static_cast<std::uint32_t>(payload.size()));
  std::memcpy(frame.data() + kHeaderBytes, payload.data(), payload.size());
  return frame;
}

/// Every payload decoder runs under this wrapper: tensor::io's named
/// truncation errors (and any other std::exception from a hostile buffer)
/// surface as ProtocolError kBadFrame, and trailing bytes are rejected —
/// a frame parses completely or not at all.
template <typename Fn>
auto decode_payload(const char* data, std::size_t n, const char* what, Fn fn) {
  imemstream is(data, n);
  try {
    auto v = fn(is);
    const auto pos = is.tellg();
    if (pos < 0 || static_cast<std::size_t>(pos) != n)
      throw std::runtime_error("trailing bytes after payload");
    return v;
  } catch (const ProtocolError&) {
    throw;
  } catch (const std::exception& e) {
    throw ProtocolError(serve::InferStatus::kBadFrame,
                        std::string("malformed ") + what + ": " + e.what());
  }
}

}  // namespace

void encode_header(char* buf, FrameType type, std::uint32_t payload_bytes) {
  std::memcpy(buf, &kMagic, 4);
  buf[4] = static_cast<char>(kProtocolVersion);
  buf[5] = static_cast<char>(type);
  buf[6] = 0;
  buf[7] = 0;
  std::memcpy(buf + 8, &payload_bytes, 4);
}

FrameHeader decode_header(const char* buf) {
  std::uint32_t magic = 0;
  std::memcpy(&magic, buf, 4);
  if (magic != kMagic)
    throw ProtocolError(serve::InferStatus::kBadProtocol, "bad magic (not an HDCN peer)");
  const auto version = static_cast<std::uint8_t>(buf[4]);
  if (version != kProtocolVersion)
    throw ProtocolError(serve::InferStatus::kBadProtocol,
                        "protocol version " + std::to_string(version) +
                            " not supported (this peer speaks " +
                            std::to_string(kProtocolVersion) + ")");
  const auto type = static_cast<std::uint8_t>(buf[5]);
  if (type == 0 || type > kMaxFrameType)
    throw ProtocolError(serve::InferStatus::kBadFrame,
                        "unknown frame type " + std::to_string(type));
  if (buf[6] != 0 || buf[7] != 0)
    throw ProtocolError(serve::InferStatus::kBadFrame, "reserved header bytes set");
  FrameHeader h;
  h.type = static_cast<FrameType>(type);
  std::memcpy(&h.payload_bytes, buf + 8, 4);
  if (h.payload_bytes > kMaxPayloadBytes)
    throw ProtocolError(serve::InferStatus::kBadFrame,
                        "declared payload of " + std::to_string(h.payload_bytes) +
                            " bytes exceeds the frame bound");
  return h;
}

std::vector<char> encode_request_frame(const serve::InferRequest& req) {
  std::ostringstream os;
  write_string(os, req.model_key);
  write_pod<std::uint32_t>(os, req.k);
  write_pod<std::uint8_t>(os, static_cast<std::uint8_t>(req.scoring));
  write_pod<std::uint8_t>(os, req.want_logits ? 1 : 0);
  write_pod<std::uint64_t>(os, req.request_id);
  tensor::save_tensor(os, req.input);
  return frame_from_payload(FrameType::kInferRequest, os.str());
}

serve::InferRequest decode_request_payload(const char* data, std::size_t n) {
  return decode_payload(data, n, "request", [](std::istream& is) {
    serve::InferRequest req;
    req.model_key = read_string(is, "model key");
    req.k = read_pod<std::uint32_t>(is, "k");
    const auto scoring = read_pod<std::uint8_t>(is, "scoring mode");
    if (scoring > kMaxScoring)
      throw std::runtime_error("unknown scoring selector " + std::to_string(scoring));
    req.scoring = static_cast<serve::ScoringSelect>(scoring);
    req.want_logits = read_pod<std::uint8_t>(is, "want_logits flag") != 0;
    req.request_id = read_pod<std::uint64_t>(is, "request id");
    req.input = tensor::load_tensor(is);
    return req;
  });
}

std::vector<char> encode_response_frame(const serve::InferResult& res) {
  std::ostringstream os;
  write_pod<std::uint64_t>(os, res.request_id);
  write_pod<std::uint8_t>(os, static_cast<std::uint8_t>(res.status));
  write_string(os, res.message);
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(res.topk.size()));
  for (const serve::TopK& hit : res.topk) {
    write_pod<std::uint64_t>(os, hit.label);
    write_pod<float>(os, hit.score);
  }
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(res.logits.size()));
  os.write(reinterpret_cast<const char*>(res.logits.data()),
           static_cast<std::streamsize>(res.logits.size() * sizeof(float)));
  write_pod<double>(os, res.timings.queue_wait_ms);
  write_pod<double>(os, res.timings.collect_ms);
  write_pod<double>(os, res.timings.embed_ms);
  write_pod<double>(os, res.timings.score_ms);
  write_pod<double>(os, res.timings.total_ms);
  return frame_from_payload(FrameType::kInferResponse, os.str());
}

serve::InferResult decode_response_payload(const char* data, std::size_t n) {
  return decode_payload(data, n, "response", [](std::istream& is) {
    serve::InferResult res;
    res.request_id = read_pod<std::uint64_t>(is, "request id");
    const auto status = read_pod<std::uint8_t>(is, "status");
    if (status > kMaxStatus)
      throw std::runtime_error("unknown status code " + std::to_string(status));
    res.status = static_cast<serve::InferStatus>(status);
    res.message = read_string(is, "message");
    const auto n_topk = read_pod<std::uint32_t>(is, "topk count");
    check_readable(is, n_topk, sizeof(std::uint64_t) + sizeof(float), "topk hits");
    res.topk.reserve(n_topk);
    for (std::uint32_t i = 0; i < n_topk; ++i) {
      serve::TopK hit;
      hit.label = static_cast<std::size_t>(read_pod<std::uint64_t>(is, "topk label"));
      hit.score = read_pod<float>(is, "topk score");
      res.topk.push_back(hit);
    }
    const auto n_logits = read_pod<std::uint32_t>(is, "logit count");
    check_readable(is, n_logits, sizeof(float), "logit row");
    res.logits.resize(n_logits);
    is.read(reinterpret_cast<char*>(res.logits.data()),
            static_cast<std::streamsize>(n_logits * sizeof(float)));
    if (!is) throw std::runtime_error("truncated logit row");
    res.timings.queue_wait_ms = read_pod<double>(is, "queue-wait timing");
    res.timings.collect_ms = read_pod<double>(is, "collect timing");
    res.timings.embed_ms = read_pod<double>(is, "embed timing");
    res.timings.score_ms = read_pod<double>(is, "score timing");
    res.timings.total_ms = read_pod<double>(is, "total timing");
    return res;
  });
}

std::vector<char> encode_control_frame(FrameType type) {
  std::vector<char> frame(kHeaderBytes);
  encode_header(frame.data(), type, 0);
  return frame;
}

std::vector<char> encode_append_request_frame(const AppendRequest& req) {
  std::ostringstream os;
  write_string(os, req.model_key);
  write_pod<std::uint64_t>(os, req.request_id);
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(req.seen_flags.size()));
  os.write(reinterpret_cast<const char*>(req.seen_flags.data()),
           static_cast<std::streamsize>(req.seen_flags.size()));
  tensor::save_tensor(os, req.attributes);
  return frame_from_payload(FrameType::kAppendClasses, os.str());
}

AppendRequest decode_append_request_payload(const char* data, std::size_t n) {
  return decode_payload(data, n, "append request", [](std::istream& is) {
    AppendRequest req;
    req.model_key = read_string(is, "model key");
    req.request_id = read_pod<std::uint64_t>(is, "request id");
    const auto n_flags = read_pod<std::uint32_t>(is, "seen-flag count");
    check_readable(is, n_flags, 1, "seen flags");
    req.seen_flags.resize(n_flags);
    is.read(reinterpret_cast<char*>(req.seen_flags.data()),
            static_cast<std::streamsize>(n_flags));
    if (!is) throw std::runtime_error("truncated seen flags");
    req.attributes = tensor::load_tensor(is);
    if (!req.seen_flags.empty() && req.attributes.dim() >= 1 &&
        req.seen_flags.size() != static_cast<std::size_t>(req.attributes.size(0)))
      throw std::runtime_error("seen-flag count disagrees with the attribute row count");
    return req;
  });
}

std::vector<char> encode_append_response_frame(const AppendResult& res) {
  std::ostringstream os;
  write_pod<std::uint64_t>(os, res.request_id);
  write_pod<std::uint8_t>(os, static_cast<std::uint8_t>(res.status));
  write_string(os, res.message);
  write_pod<std::uint64_t>(os, res.version);
  write_pod<std::uint64_t>(os, res.n_classes);
  return frame_from_payload(FrameType::kAppendResponse, os.str());
}

AppendResult decode_append_response_payload(const char* data, std::size_t n) {
  return decode_payload(data, n, "append response", [](std::istream& is) {
    AppendResult res;
    res.request_id = read_pod<std::uint64_t>(is, "request id");
    const auto status = read_pod<std::uint8_t>(is, "status");
    if (status > kMaxStatus)
      throw std::runtime_error("unknown status code " + std::to_string(status));
    res.status = static_cast<serve::InferStatus>(status);
    res.message = read_string(is, "message");
    res.version = read_pod<std::uint64_t>(is, "store version");
    res.n_classes = read_pod<std::uint64_t>(is, "class count");
    return res;
  });
}

}  // namespace hdczsc::net
